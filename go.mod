module compact

go 1.22

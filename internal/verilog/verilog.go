// Package verilog reads the gate-level structural Verilog subset that
// synthesis benchmarks use — the third input format the paper lists next
// to BLIF and PLA. Supported constructs:
//
//   - module header with port list, input/output/wire declarations,
//     including vectors ([msb:lsb], expanded to name[i] bit signals)
//   - gate primitive instantiations: and, nand, or, nor, xor, xnor,
//     not, buf (output terminal first, as in the Verilog standard)
//   - continuous assignments with ~ & ^ | ?: operators, parentheses,
//     bit-selects and the constants 1'b0 / 1'b1
//
// Behavioural constructs (always blocks, registers, arithmetic) are
// rejected with a descriptive error.
package verilog

import (
	"fmt"
	"io"
	"strings"
	"unicode"

	"compact/internal/logic"
)

// Parse reads one module from r and elaborates it into a logic.Network.
func Parse(r io.Reader) (*logic.Network, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("verilog: read: %w", err)
	}
	toks, err := tokenize(string(src))
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseModule()
}

// --- Lexer ---------------------------------------------------------------

type tokKind uint8

const (
	tokIdent tokKind = iota
	tokSymbol
	tokNumber
	tokEOF
)

type token struct {
	kind tokKind
	text string
	line int
}

func tokenize(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("verilog: line %d: unterminated block comment", line)
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case isIdentStart(rune(c)):
			// Start at i+1: '\' begins an escaped identifier but is not an
			// identifier character itself, and the scan must always consume
			// at least the start byte to make progress.
			j := i + 1
			for j < len(src) && isIdentChar(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], line})
			i = j
		case c >= '0' && c <= '9':
			// Number, possibly sized like 1'b0.
			j := i
			for j < len(src) && (isIdentChar(rune(src[j])) || src[j] == '\'') {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], line})
			i = j
		case strings.ContainsRune("()[]{},;:=~&|^?.#", rune(c)):
			toks = append(toks, token{tokSymbol, string(c), line})
			i++
		default:
			return nil, fmt.Errorf("verilog: line %d: unexpected character %q", line, c)
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '\\' || r == '$'
}

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '$'
}

// --- Parser --------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) expectSym(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("verilog: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) expectIdent(s string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != s {
		return fmt.Errorf("verilog: line %d: expected %q, got %q", t.line, s, t.text)
	}
	return nil
}

func (p *parser) acceptSym(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

// statement kinds captured before elaboration.
type gateInst struct {
	prim string
	out  string
	ins  []string
	line int
}

type assignStmt struct {
	lhs  string
	rhs  expr
	line int
}

// expr is the AST of an assign right-hand side.
type expr interface{ exprNode() }

type refExpr struct{ name string }
type constExpr struct{ val bool }
type unaryExpr struct{ x expr } // ~x
type binExpr struct {
	op   byte // '&', '|', '^'
	a, b expr
}
type condExpr struct{ c, t, f expr }

func (refExpr) exprNode()   {}
func (constExpr) exprNode() {}
func (unaryExpr) exprNode() {}
func (binExpr) exprNode()   {}
func (condExpr) exprNode()  {}

var gatePrims = map[string]logic.GateType{
	"and": logic.And, "nand": logic.Nand, "or": logic.Or, "nor": logic.Nor,
	"xor": logic.Xor, "xnor": logic.Xnor, "not": logic.Not, "buf": logic.Buf,
}

func (p *parser) parseModule() (*logic.Network, error) {
	if err := p.expectIdent("module"); err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, fmt.Errorf("verilog: line %d: expected module name", nameTok.line)
	}
	// Port list (names only; directions come from declarations).
	if p.acceptSym("(") {
		for !p.acceptSym(")") {
			t := p.next()
			if t.kind == tokEOF {
				return nil, fmt.Errorf("verilog: unterminated port list")
			}
			// Port names and commas; ANSI-style "input a" in the header is
			// handled by treating direction keywords as declarations below.
		}
	}
	if err := p.expectSym(";"); err != nil {
		return nil, err
	}

	var inputs, outputs []string
	declared := map[string]bool{}
	var gates []gateInst
	var assigns []assignStmt

	for {
		t := p.peek()
		if t.kind == tokEOF {
			return nil, fmt.Errorf("verilog: missing endmodule")
		}
		if t.kind == tokIdent && t.text == "endmodule" {
			p.pos++
			break
		}
		if t.kind != tokIdent {
			return nil, fmt.Errorf("verilog: line %d: unexpected token %q", t.line, t.text)
		}
		switch t.text {
		case "input", "output", "wire":
			kind := t.text
			p.pos++
			names, err := p.parseDeclNames()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				switch kind {
				case "input":
					if !declared[n] {
						inputs = append(inputs, n)
					}
				case "output":
					if !declared[n] {
						outputs = append(outputs, n)
					}
				}
				declared[n] = true
			}
		case "assign":
			p.pos++
			a, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			assigns = append(assigns, a)
		case "always", "reg", "initial", "specify", "parameter":
			return nil, fmt.Errorf("verilog: line %d: behavioural construct %q unsupported (structural subset only)", t.line, t.text)
		default:
			if _, ok := gatePrims[t.text]; ok {
				g, err := p.parseGate()
				if err != nil {
					return nil, err
				}
				gates = append(gates, g)
				continue
			}
			return nil, fmt.Errorf("verilog: line %d: unsupported statement %q (module instantiation not supported)", t.line, t.text)
		}
	}
	return elaborate(nameTok.text, inputs, outputs, gates, assigns)
}

// parseDeclNames handles "a, b, c;" and "[3:0] bus, other;".
func (p *parser) parseDeclNames() ([]string, error) {
	msb, lsb, hasRange, err := p.parseOptRange()
	if err != nil {
		return nil, err
	}
	var names []string
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("verilog: line %d: expected signal name, got %q", t.line, t.text)
		}
		if hasRange {
			lo, hi := lsb, msb
			if lo > hi {
				lo, hi = hi, lo
			}
			for i := lo; i <= hi; i++ {
				names = append(names, fmt.Sprintf("%s[%d]", t.text, i))
			}
		} else {
			names = append(names, t.text)
		}
		if p.acceptSym(";") {
			return names, nil
		}
		if err := p.expectSym(","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseOptRange() (msb, lsb int, ok bool, err error) {
	if !p.acceptSym("[") {
		return 0, 0, false, nil
	}
	msb, err = p.parseInt()
	if err != nil {
		return 0, 0, false, err
	}
	if err := p.expectSym(":"); err != nil {
		return 0, 0, false, err
	}
	lsb, err = p.parseInt()
	if err != nil {
		return 0, 0, false, err
	}
	if err := p.expectSym("]"); err != nil {
		return 0, 0, false, err
	}
	return msb, lsb, true, nil
}

func (p *parser) parseInt() (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("verilog: line %d: expected number, got %q", t.line, t.text)
	}
	v := 0
	for _, c := range t.text {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("verilog: line %d: bad index %q", t.line, t.text)
		}
		v = v*10 + int(c-'0')
	}
	return v, nil
}

// parseSignalRef reads name or name[i].
func (p *parser) parseSignalRef() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("verilog: line %d: expected signal, got %q", t.line, t.text)
	}
	name := t.text
	if p.acceptSym("[") {
		idx, err := p.parseInt()
		if err != nil {
			return "", err
		}
		if err := p.expectSym("]"); err != nil {
			return "", err
		}
		name = fmt.Sprintf("%s[%d]", name, idx)
	}
	return name, nil
}

// parseGate handles "and g1 (out, in1, in2);" with an optional instance
// name.
func (p *parser) parseGate() (gateInst, error) {
	prim := p.next() // already validated
	g := gateInst{prim: prim.text, line: prim.line}
	if t := p.peek(); t.kind == tokIdent {
		p.pos++ // instance name (ignored)
	}
	if err := p.expectSym("("); err != nil {
		return g, err
	}
	var terms []string
	for {
		s, err := p.parseSignalRef()
		if err != nil {
			return g, err
		}
		terms = append(terms, s)
		if p.acceptSym(")") {
			break
		}
		if err := p.expectSym(","); err != nil {
			return g, err
		}
	}
	if err := p.expectSym(";"); err != nil {
		return g, err
	}
	if len(terms) < 2 {
		return g, fmt.Errorf("verilog: line %d: gate needs an output and at least one input", prim.line)
	}
	g.out, g.ins = terms[0], terms[1:]
	return g, nil
}

func (p *parser) parseAssign() (assignStmt, error) {
	lhs, err := p.parseSignalRef()
	if err != nil {
		return assignStmt{}, err
	}
	line := p.peek().line
	if err := p.expectSym("="); err != nil {
		return assignStmt{}, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return assignStmt{}, err
	}
	if err := p.expectSym(";"); err != nil {
		return assignStmt{}, err
	}
	return assignStmt{lhs: lhs, rhs: rhs, line: line}, nil
}

// Expression grammar (lowest to highest binding):
// cond := or ('?' cond ':' cond)?
// or   := xor ('|' xor)*
// xor  := and ('^' and)*
// and  := unary ('&' unary)*
// unary := '~' unary | '(' cond ')' | const | signal
func (p *parser) parseExpr() (expr, error) {
	c, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.acceptSym("?") {
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(":"); err != nil {
			return nil, err
		}
		f, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return condExpr{c, t, f}, nil
	}
	return c, nil
}

func (p *parser) parseOr() (expr, error) {
	a, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.acceptSym("|") {
		b, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		a = binExpr{'|', a, b}
	}
	return a, nil
}

func (p *parser) parseXor() (expr, error) {
	a, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptSym("^") {
		b, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		a = binExpr{'^', a, b}
	}
	return a, nil
}

func (p *parser) parseAnd() (expr, error) {
	a, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptSym("&") {
		b, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		a = binExpr{'&', a, b}
	}
	return a, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.acceptSym("~") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{x}, nil
	}
	if p.acceptSym("(") {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	t := p.peek()
	if t.kind == tokNumber {
		p.pos++
		switch t.text {
		case "1'b0", "0":
			return constExpr{false}, nil
		case "1'b1", "1":
			return constExpr{true}, nil
		}
		return nil, fmt.Errorf("verilog: line %d: unsupported constant %q (only 1-bit)", t.line, t.text)
	}
	name, err := p.parseSignalRef()
	if err != nil {
		return nil, err
	}
	return refExpr{name}, nil
}

// --- Elaboration -----------------------------------------------------------

// driver is whatever defines a signal: a gate instance or an assign.
type driver struct {
	gate   *gateInst
	assign *assignStmt
}

func elaborate(name string, inputs, outputs []string, gates []gateInst, assigns []assignStmt) (*logic.Network, error) {
	drivers := map[string]driver{}
	addDriver := func(sig string, d driver, line int) error {
		if _, dup := drivers[sig]; dup {
			return fmt.Errorf("verilog: line %d: signal %q driven twice", line, sig)
		}
		drivers[sig] = d
		return nil
	}
	for i := range gates {
		if err := addDriver(gates[i].out, driver{gate: &gates[i]}, gates[i].line); err != nil {
			return nil, err
		}
	}
	for i := range assigns {
		if err := addDriver(assigns[i].lhs, driver{assign: &assigns[i]}, assigns[i].line); err != nil {
			return nil, err
		}
	}

	b := logic.NewBuilder(name)
	ids := map[string]int{}
	for _, in := range inputs {
		ids[in] = b.Input(in)
	}
	var build func(sig string, stack []string) (int, error)
	var buildExpr func(e expr, stack []string) (int, error)
	build = func(sig string, stack []string) (int, error) {
		if id, ok := ids[sig]; ok {
			return id, nil
		}
		for _, s := range stack {
			if s == sig {
				return 0, fmt.Errorf("verilog: combinational cycle through %q", sig)
			}
		}
		d, ok := drivers[sig]
		if !ok {
			return 0, fmt.Errorf("verilog: signal %q has no driver", sig)
		}
		stack = append(stack, sig)
		var id int
		var err error
		if d.gate != nil {
			fan := make([]int, len(d.gate.ins))
			for i, in := range d.gate.ins {
				if fan[i], err = build(in, stack); err != nil {
					return 0, err
				}
			}
			switch gatePrims[d.gate.prim] {
			case logic.And:
				id = b.And(fan...)
			case logic.Nand:
				id = b.Nand(fan...)
			case logic.Or:
				id = b.Or(fan...)
			case logic.Nor:
				id = b.Nor(fan...)
			case logic.Xor:
				id = b.Xor(fan...)
			case logic.Xnor:
				id = b.Xnor(fan...)
			case logic.Not:
				id = b.Not(fan[0])
			case logic.Buf:
				id = b.Buf(fan[0])
			}
		} else {
			if id, err = buildExpr(d.assign.rhs, stack); err != nil {
				return 0, err
			}
		}
		ids[sig] = id
		return id, nil
	}
	buildExpr = func(e expr, stack []string) (int, error) {
		switch x := e.(type) {
		case refExpr:
			return build(x.name, stack)
		case constExpr:
			if x.val {
				return b.Const1(), nil
			}
			return b.Const0(), nil
		case unaryExpr:
			id, err := buildExpr(x.x, stack)
			if err != nil {
				return 0, err
			}
			return b.Not(id), nil
		case binExpr:
			a, err := buildExpr(x.a, stack)
			if err != nil {
				return 0, err
			}
			c, err := buildExpr(x.b, stack)
			if err != nil {
				return 0, err
			}
			switch x.op {
			case '&':
				return b.And(a, c), nil
			case '|':
				return b.Or(a, c), nil
			default:
				return b.Xor(a, c), nil
			}
		case condExpr:
			c, err := buildExpr(x.c, stack)
			if err != nil {
				return 0, err
			}
			tv, err := buildExpr(x.t, stack)
			if err != nil {
				return 0, err
			}
			fv, err := buildExpr(x.f, stack)
			if err != nil {
				return 0, err
			}
			return b.Mux(c, fv, tv), nil
		}
		return 0, fmt.Errorf("verilog: unknown expression node %T", e)
	}
	for _, out := range outputs {
		id, err := build(out, nil)
		if err != nil {
			return nil, err
		}
		b.Output(out, id)
	}
	nw := b.Build()
	if err := nw.Validate(); err != nil {
		return nil, fmt.Errorf("verilog: %w", err)
	}
	return nw, nil
}

package verilog

import (
	"strings"
	"testing"
)

// FuzzParse asserts the structural-Verilog reader never panics: every input
// either yields a network or a plain error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"module m (a, f); input a; output f; assign f = ~a; endmodule",
		"module fig2 (a, b, c, f);\n input a, b, c;\n output f;\n wire t1;\n and g1 (t1, a, b);\n or g2 (f, t1, c);\nendmodule\n",
		"module m (f); output f; assign f = 1'b1; endmodule",
		"module m (f); output f; assign f = 2'b10; endmodule",
		"module m (a, b, f); input a, b; output f; assign f = a ? b : ~b; endmodule",
		"module m (a, f); input [3:0] a; output f; assign f = a[0] ^ a[3]; endmodule",
		// Comments, both kinds, including unterminated.
		"// line\nmodule m (f); output f; /* block */ assign f = 1'b0; endmodule",
		"/* unterminated",
		// Truncations at every structural level.
		"module",
		"module m",
		"module m (",
		"module m (a, f); input a; output f; assign f = ",
		"module m (a, f); input a; output f; and g1 (f, a",
		"module m (a, f); input a; output f; assign f = a; ",
		// Bad tokens and references.
		"module m (f); output f; assign f = 9'bx; endmodule",
		"module m (f); output f; assign f = nosuch; endmodule",
		"module m (a, f); input [0:3] a; output f; assign f = a[7]; endmodule",
		"module m (f); output f; xor (); endmodule",
		"endmodule",
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nw, err := Parse(strings.NewReader(src))
		if err == nil && nw == nil {
			t.Fatal("nil network with nil error")
		}
	})
}

package verilog

import (
	"strings"
	"testing"
)

func TestGateLevelModule(t *testing.T) {
	src := `
// Paper's fig2: f = (a & b) | c
module fig2 (a, b, c, f);
  input a, b, c;
  output f;
  wire t1;
  and g1 (t1, a, b);
  or  g2 (f, t1, c);
endmodule
`
	nw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name != "fig2" || nw.NumInputs() != 3 || nw.NumOutputs() != 1 {
		t.Fatalf("shape wrong: %s", nw)
	}
	for v := 0; v < 8; v++ {
		a, b, c := v&1 != 0, v&2 != 0, v&4 != 0
		if got, want := nw.Eval([]bool{a, b, c})[0], (a && b) || c; got != want {
			t.Errorf("f(%v,%v,%v) = %v", a, b, c, got)
		}
	}
}

func TestAssignExpressions(t *testing.T) {
	src := `
module expr (a, b, c, f, g, h);
  input a, b, c;
  output f, g, h;
  assign f = ~a & b | c;        /* precedence: (~a & b) | c */
  assign g = a ^ b ^ c;
  assign h = a ? b : (c | 1'b0);
endmodule
`
	nw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		a, b, c := v&1 != 0, v&2 != 0, v&4 != 0
		out := nw.Eval([]bool{a, b, c})
		if out[0] != ((!a && b) || c) {
			t.Errorf("f(%v,%v,%v) = %v", a, b, c, out[0])
		}
		if out[1] != (a != b != c) {
			t.Errorf("g wrong")
		}
		want := c
		if a {
			want = b
		}
		if out[2] != want {
			t.Errorf("h wrong")
		}
	}
}

func TestVectors(t *testing.T) {
	src := `
module vec (x, y);
  input [2:0] x;
  output [1:0] y;
  assign y[0] = x[0] & x[1];
  assign y[1] = x[1] | x[2];
endmodule
`
	nw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumInputs() != 3 || nw.NumOutputs() != 2 {
		t.Fatalf("shape: %s", nw)
	}
	if nw.InputIndex("x[0]") < 0 || nw.OutputIndex("y[1]") < 0 {
		t.Fatalf("bit names wrong: %v / %v", nw.InputNames(), nw.OutputNames)
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		out := nw.Eval(in)
		if out[0] != (in[0] && in[1]) || out[1] != (in[1] || in[2]) {
			t.Errorf("vec(%03b) = %v", v, out)
		}
	}
}

func TestGatesWithoutInstanceNames(t *testing.T) {
	src := `
module anon (a, b, f);
  input a, b; output f;
  nand (f, a, b);
endmodule
`
	nw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Eval([]bool{true, true})[0] || !nw.Eval([]bool{true, false})[0] {
		t.Error("nand semantics wrong")
	}
}

func TestOutOfOrderAndChains(t *testing.T) {
	src := `
module ooo (a, f);
  input a; output f;
  wire w1, w2;
  not (f, w2);
  buf (w2, w1);
  not (w1, a);
endmodule
`
	nw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []bool{false, true} {
		if nw.Eval([]bool{a})[0] != a {
			t.Errorf("double negation through chain wrong for %v", a)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"always":     "module m (a); input a; always @(a) x = a; endmodule",
		"undriven":   "module m (a, f); input a; output f; endmodule",
		"cycle":      "module m (f); output f; wire w; and (f, w, w); and (w, f, f); endmodule",
		"double":     "module m (a, f); input a; output f; and (f, a, a); or (f, a, a); endmodule",
		"no end":     "module m (a); input a;",
		"submodule":  "module m (a, f); input a; output f; sub u1 (f, a); endmodule",
		"wide const": "module m (f); output f; assign f = 2'b10; endmodule",
		"bad char":   "module m (a); input a; @@ endmodule",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
/* header
   comment */
module c (a, f); // ports
  input a; output f;
  assign f = ~a; // invert
endmodule
`
	nw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Eval([]bool{false})[0] {
		t.Error("inverter wrong")
	}
}

func TestConstantAssign(t *testing.T) {
	src := `
module k (f, g);
  output f, g;
  assign f = 1'b1;
  assign g = 1'b0;
endmodule
`
	nw, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := nw.Eval(nil)
	if !out[0] || out[1] {
		t.Errorf("constants: %v", out)
	}
}

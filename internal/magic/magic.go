// Package magic models the MAGIC-style in-memory computing baseline that
// COMPACT is compared against in Section VIII-E: CONTRA (reference [34]),
// a LUT-based mapper for NOR-centric stateful logic on a bounded crossbar.
//
// The pipeline mirrors CONTRA's structure: the Boolean network is covered
// with k-input LUTs (k-feasible cut enumeration + depth-oriented
// selection); each LUT is synthesized into MAGIC-executable operations
// (NOT = 1-input NOR, minterm NORs, and a collecting NOR, picking the
// cheaper of on-set and off-set forms); operands are aligned with COPY
// operations; and primary inputs are written with INPUT operations. Power
// is modeled as the total number of write operations and delay as the
// number of scheduled time steps, with LUTs of one logic level executing
// in parallel lanes limited by the crossbar dimension and the row spacing
// between LUTs — the same cost accounting the paper uses for Figure 13.
package magic

import (
	"fmt"
	"math/bits"
	"sort"

	"compact/internal/logic"
)

// Options configures the mapper; zero values take CONTRA's defaults from
// the paper (k=4, spacing=6, 128x128 crossbar).
type Options struct {
	K           int // LUT input count
	Spacing     int // rows between LUTs on the crossbar
	CrossbarDim int // crossbar rows/columns
	MaxCuts     int // cut-set pruning bound per node (default 8)
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 4
	}
	if o.Spacing <= 0 {
		o.Spacing = 6
	}
	if o.CrossbarDim <= 0 {
		o.CrossbarDim = 128
	}
	if o.MaxCuts <= 0 {
		o.MaxCuts = 8
	}
}

// LUT is one lookup table of the cover.
type LUT struct {
	Root   int   // network gate realized by this LUT
	Inputs []int // network gates feeding it (≤ K)
	// TT is the truth table over Inputs: bit m is the value when input i
	// takes bit i of m.
	TT uint64
	// NORs is the number of MAGIC operations (NOTs + minterm NORs +
	// collector) to evaluate the LUT.
	NORs int
	// Copies is the number of COPY alignment operations (one per input).
	Copies int
	// Level is the LUT network depth (1 = fed only by primary inputs).
	Level int
}

// Result is the mapped design plus its cost model.
type Result struct {
	LUTs   []LUT
	Levels int
	// InputOps counts INPUT write operations (one per primary input).
	InputOps int
	// CopyOps and NOROps total the per-LUT counts.
	CopyOps int
	NOROps  int
	// Ops is the paper's power proxy: all write operations.
	Ops int
	// Steps is the paper's delay proxy: scheduled time steps with
	// level-parallel execution in bounded lanes.
	Steps int

	nw     *logic.Network
	byRoot map[int]*LUT
}

// Synthesize maps the network onto the MAGIC cost model.
func Synthesize(nw *logic.Network, opts Options) (*Result, error) {
	opts.defaults()
	if opts.K > 6 {
		return nil, fmt.Errorf("magic: K=%d exceeds the 6-input truth-table limit", opts.K)
	}
	if opts.K < 2 {
		return nil, fmt.Errorf("magic: K=%d below the 2-input minimum", opts.K)
	}
	nw = decompose(nw)
	cuts, err := enumerateCuts(nw, opts)
	if err != nil {
		return nil, err
	}
	cover := selectCover(nw, cuts)
	res := &Result{nw: nw, byRoot: make(map[int]*LUT)}
	for _, root := range cover {
		cut := cuts[root].best
		tt, err := cutTruthTable(nw, root, cut)
		if err != nil {
			return nil, err
		}
		l := LUT{Root: root, Inputs: cut, TT: tt, Copies: len(cut)}
		l.NORs = norCost(tt, len(cut))
		res.LUTs = append(res.LUTs, l)
	}
	sort.Slice(res.LUTs, func(i, j int) bool { return res.LUTs[i].Root < res.LUTs[j].Root })
	for i := range res.LUTs {
		res.byRoot[res.LUTs[i].Root] = &res.LUTs[i]
	}
	res.assignLevels()
	res.schedule(opts)
	return res, nil
}

// cutSet is the pruned cut collection of one gate.
type cutSet struct {
	cuts  [][]int
	best  []int // selected (min-depth, then min-size) cut
	depth int
}

// enumerateCuts computes k-feasible cuts bottom-up with pruning.
func enumerateCuts(nw *logic.Network, opts Options) ([]cutSet, error) {
	sets := make([]cutSet, nw.NumGates())
	depth := make([]int, nw.NumGates())
	for gi, g := range nw.Gates {
		switch g.Type {
		case logic.Input:
			sets[gi] = cutSet{cuts: [][]int{{gi}}, best: []int{gi}}
			continue
		case logic.Const0, logic.Const1:
			sets[gi] = cutSet{cuts: [][]int{{}}, best: []int{}}
			continue
		}
		// Fold fanin cut sets pairwise.
		acc := [][]int{{}}
		for _, f := range g.Fanin {
			var next [][]int
			for _, a := range acc {
				for _, b := range sets[f].cuts {
					if m := mergeCut(a, b, opts.K); m != nil {
						next = append(next, m)
					}
				}
			}
			next = pruneCuts(next, opts.MaxCuts)
			if len(next) == 0 {
				// No k-feasible merge survives; fall back to the trivial
				// cut of each fanin (always possible since K >= 2... K>=1).
				next = [][]int{}
				base := []int{}
				ok := true
				for _, ff := range g.Fanin {
					base = mergeCut(base, []int{ff}, opts.K)
					if base == nil {
						ok = false
						break
					}
				}
				if ok {
					next = [][]int{base}
				}
			}
			acc = next
			if len(acc) == 0 {
				break
			}
		}
		// Trivial cut {gi} is always available.
		acc = append(acc, []int{gi})
		acc = pruneCuts(acc, opts.MaxCuts+1)
		// Choose the best non-trivial cut by mapped depth.
		bestDepth := int(^uint(0) >> 1)
		var best []int
		for _, c := range acc {
			if len(c) == 1 && c[0] == gi {
				continue
			}
			d := 0
			for _, leaf := range c {
				if depth[leaf]+1 > d {
					d = depth[leaf] + 1
				}
			}
			if d < bestDepth || (d == bestDepth && len(c) < len(best)) {
				bestDepth, best = d, c
			}
		}
		if best == nil {
			return nil, fmt.Errorf("magic: gate %d has no %d-feasible cut", gi, opts.K)
		}
		depth[gi] = bestDepth
		sets[gi] = cutSet{cuts: acc, best: best, depth: bestDepth}
	}
	return sets, nil
}

// mergeCut unions two sorted cuts, nil if the result exceeds k leaves.
func mergeCut(a, b []int, k int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			out = append(out, b[j])
			j++
		case j == len(b):
			out = append(out, a[i])
			i++
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		default:
			out = append(out, b[j])
			j++
		}
		if len(out) > k {
			return nil
		}
	}
	return out
}

// pruneCuts dedupes and keeps the `limit` smallest cuts.
func pruneCuts(cuts [][]int, limit int) [][]int {
	seen := make(map[string]bool)
	uniq := cuts[:0]
	for _, c := range cuts {
		key := fmt.Sprint(c)
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, c)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if len(uniq[i]) != len(uniq[j]) {
			return len(uniq[i]) < len(uniq[j])
		}
		return fmt.Sprint(uniq[i]) < fmt.Sprint(uniq[j])
	})
	if len(uniq) > limit {
		uniq = uniq[:limit]
	}
	return uniq
}

// selectCover walks back from the outputs choosing each required gate's
// best cut; cut leaves become required in turn.
func selectCover(nw *logic.Network, cuts []cutSet) []int {
	required := make([]bool, nw.NumGates())
	for _, o := range nw.Outputs {
		if nw.Gates[o].Type != logic.Input {
			required[o] = true
		}
	}
	for gi := nw.NumGates() - 1; gi >= 0; gi-- {
		if !required[gi] || nw.Gates[gi].Type == logic.Input {
			continue
		}
		for _, leaf := range cuts[gi].best {
			if nw.Gates[leaf].Type != logic.Input {
				required[leaf] = true
			}
		}
	}
	var cover []int
	for gi, r := range required {
		if r {
			cover = append(cover, gi)
		}
	}
	return cover
}

// cutTruthTable simulates the cone between cut leaves and root.
func cutTruthTable(nw *logic.Network, root int, cut []int) (uint64, error) {
	if len(cut) > 6 {
		return 0, fmt.Errorf("magic: cut of size %d too wide", len(cut))
	}
	leafIdx := make(map[int]int, len(cut))
	for i, l := range cut {
		leafIdx[l] = i
	}
	var tt uint64
	memo := make(map[int]bool)
	var eval func(g int, m int) bool
	eval = func(g int, m int) bool {
		if i, ok := leafIdx[g]; ok {
			return m&(1<<uint(i)) != 0
		}
		if v, ok := memo[g]; ok {
			return v
		}
		gate := nw.Gates[g]
		in := make([]bool, len(gate.Fanin))
		for i, f := range gate.Fanin {
			in[i] = eval(f, m)
		}
		var v bool
		switch gate.Type {
		case logic.Const0:
			v = false
		case logic.Const1:
			v = true
		case logic.Buf:
			v = in[0]
		case logic.Not:
			v = !in[0]
		case logic.And, logic.Nand:
			v = true
			for _, b := range in {
				v = v && b
			}
			if gate.Type == logic.Nand {
				v = !v
			}
		case logic.Or, logic.Nor:
			for _, b := range in {
				v = v || b
			}
			if gate.Type == logic.Nor {
				v = !v
			}
		case logic.Xor, logic.Xnor:
			for _, b := range in {
				v = v != b
			}
			if gate.Type == logic.Xnor {
				v = !v
			}
		case logic.Mux:
			if in[0] {
				v = in[2]
			} else {
				v = in[1]
			}
		default:
			panic(fmt.Sprintf("magic: cone reached input gate %d outside cut", g))
		}
		memo[g] = v
		return v
	}
	for m := 0; m < 1<<uint(len(cut)); m++ {
		memo = make(map[int]bool)
		if eval(root, m) {
			tt |= 1 << uint(m)
		}
	}
	return tt, nil
}

// norCost counts MAGIC operations to realize tt over nIn inputs: the
// cheaper of the on-set form (NOTs + minterm NORs + collector NOR + final
// NOT) and off-set form (NOTs + minterm NORs + collector NOR).
func norCost(tt uint64, nIn int) int {
	size := 1 << uint(nIn)
	mask := uint64(1)<<uint(size) - 1
	on := bits.OnesCount64(tt & mask)
	off := size - on
	if on == 0 || off == 0 {
		return 1 // constant: a single write
	}
	cost := func(minterms uint64, needFinalNot bool) int {
		nots := 0
		for i := 0; i < nIn; i++ {
			// Input i is needed complemented if it appears positively
			// (bit set) in any chosen minterm.
			for m := 0; m < size; m++ {
				if minterms&(1<<uint(m)) != 0 && m&(1<<uint(i)) != 0 {
					nots++
					break
				}
			}
		}
		c := nots + bits.OnesCount64(minterms&mask) + 1
		if needFinalNot {
			c++
		}
		return c
	}
	onCost := cost(tt&mask, true)
	offCost := cost(^tt&mask, false)
	if offCost < onCost {
		return offCost
	}
	return onCost
}

// assignLevels computes each LUT's depth in the LUT network.
func (r *Result) assignLevels() {
	memo := make(map[int]int)
	var level func(root int) int
	level = func(root int) int {
		if v, ok := memo[root]; ok {
			return v
		}
		l, ok := r.byRoot[root]
		if !ok {
			return 0 // primary input
		}
		memo[root] = 0 // break accidental cycles defensively
		d := 0
		for _, in := range l.Inputs {
			if ld := level(in); ld > d {
				d = ld
			}
		}
		memo[root] = d + 1
		return d + 1
	}
	for i := range r.LUTs {
		r.LUTs[i].Level = level(r.LUTs[i].Root)
		if r.LUTs[i].Level > r.Levels {
			r.Levels = r.LUTs[i].Level
		}
	}
}

// schedule computes the operation totals and the step count. The MAGIC
// execution model is write-op-serial with one exception: the same NOR
// applied to identically-shaped LUTs (equal truth tables, hence equal
// operation sequences) in different row lanes of the crossbar can fire in
// one cycle. COPY realignment ops always serialize — each moves data from
// a different source — which is exactly the bottleneck the paper describes
// for MAGIC-style mapping ("subsequent time steps will be spent attempting
// to realign the data").
func (r *Result) schedule(opts Options) {
	r.InputOps = r.nw.NumInputs()
	for _, l := range r.LUTs {
		r.CopyOps += l.Copies
		r.NOROps += l.NORs
	}
	r.Ops = r.InputOps + r.CopyOps + r.NOROps

	lanes := opts.CrossbarDim / (opts.Spacing + 1)
	if lanes < 1 {
		lanes = 1
	}
	// Inputs are written one wordline per step, CrossbarDim bits at a time.
	steps := (r.nw.NumInputs() + opts.CrossbarDim - 1) / opts.CrossbarDim
	type group struct {
		count int
		nors  int
	}
	byLevel := make(map[int]map[uint64]*group)
	copies := make(map[int]int)
	for _, l := range r.LUTs {
		g := byLevel[l.Level]
		if g == nil {
			g = make(map[uint64]*group)
			byLevel[l.Level] = g
		}
		// Group key: truth table + arity (same function => same op chain).
		key := l.TT ^ uint64(len(l.Inputs))<<60
		if g[key] == nil {
			g[key] = &group{}
		}
		g[key].count++
		if l.NORs > g[key].nors {
			g[key].nors = l.NORs
		}
		copies[l.Level] += l.Copies
	}
	for lv := 1; lv <= r.Levels; lv++ {
		steps += copies[lv] // alignment is serial
		var keys []uint64
		for k := range byLevel[lv] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			g := byLevel[lv][k]
			waves := (g.count + lanes - 1) / lanes
			steps += waves * g.nors
		}
	}
	r.Steps = steps
}

// Eval evaluates the LUT network on a primary-input assignment, for
// verifying that the cover preserves the function.
func (r *Result) Eval(inputs []bool) []bool {
	memo := make(map[int]bool)
	var eval func(g int) bool
	eval = func(g int) bool {
		if v, ok := memo[g]; ok {
			return v
		}
		if l, ok := r.byRoot[g]; ok {
			m := 0
			for i, in := range l.Inputs {
				if eval(in) {
					m |= 1 << uint(i)
				}
			}
			v := l.TT&(1<<uint(m)) != 0
			memo[g] = v
			return v
		}
		// Primary input or constant.
		switch r.nw.Gates[g].Type {
		case logic.Input:
			for i, id := range r.nw.Inputs {
				if id == g {
					return inputs[i]
				}
			}
			panic("magic: unmapped input gate")
		case logic.Const0:
			return false
		case logic.Const1:
			return true
		}
		panic(fmt.Sprintf("magic: gate %d not covered by any LUT", g))
	}
	out := make([]bool, r.nw.NumOutputs())
	for i, o := range r.nw.Outputs {
		out[i] = eval(o)
	}
	return out
}

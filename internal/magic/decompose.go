package magic

import (
	"fmt"

	"compact/internal/logic"
)

// decompose rewrites the network so that every gate has at most two
// fanins, the standard technology-independent preparation before cut-based
// LUT mapping: n-ary associative gates become balanced binary trees and
// muxes are expanded into AND/OR/NOT.
func decompose(nw *logic.Network) *logic.Network {
	b := logic.NewBuilder(nw.Name)
	remap := make([]int, nw.NumGates())
	for gi, g := range nw.Gates {
		fan := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fan[i] = remap[f]
		}
		switch g.Type {
		case logic.Input:
			remap[gi] = b.Input(g.Name)
		case logic.Const0:
			remap[gi] = b.Const0()
		case logic.Const1:
			remap[gi] = b.Const1()
		case logic.Buf:
			remap[gi] = b.Buf(fan[0])
		case logic.Not:
			remap[gi] = b.Not(fan[0])
		case logic.And:
			remap[gi] = tree(b, fan, b.And)
		case logic.Or:
			remap[gi] = tree(b, fan, b.Or)
		case logic.Xor:
			remap[gi] = tree(b, fan, b.Xor)
		case logic.Nand:
			remap[gi] = b.Not(tree(b, fan, b.And))
		case logic.Nor:
			remap[gi] = b.Not(tree(b, fan, b.Or))
		case logic.Xnor:
			remap[gi] = b.Not(tree(b, fan, b.Xor))
		case logic.Mux:
			s, d0, d1 := fan[0], fan[1], fan[2]
			remap[gi] = b.Or(b.And(s, d1), b.And(b.Not(s), d0))
		default:
			panic(fmt.Sprintf("magic: unknown gate type %v", g.Type))
		}
	}
	for i, o := range nw.Outputs {
		b.Output(nw.OutputNames[i], remap[o])
	}
	return b.Build()
}

// tree folds operands into a balanced binary tree of 2-input gates.
func tree(b *logic.Builder, xs []int, op func(...int) int) int {
	switch len(xs) {
	case 0, 1, 2:
		return op(xs...)
	}
	for len(xs) > 1 {
		var next []int
		for i := 0; i+1 < len(xs); i += 2 {
			next = append(next, op(xs[i], xs[i+1]))
		}
		if len(xs)%2 == 1 {
			next = append(next, xs[len(xs)-1])
		}
		xs = next
	}
	return xs[0]
}

package magic

import (
	"math/rand"
	"testing"

	"compact/internal/logic"
)

func TestLUTCoverPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		nw := randomNetwork(rng, 6, 30)
		res, err := Synthesize(nw, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		in := make([]bool, 6)
		for a := 0; a < 64; a++ {
			for i := range in {
				in[i] = a&(1<<uint(i)) != 0
			}
			want := nw.Eval(in)
			got := res.Eval(in)
			for o := range want {
				if want[o] != got[o] {
					t.Fatalf("trial %d: output %d differs on %06b", trial, o, a)
				}
			}
		}
	}
}

func TestLUTInputBound(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, k := range []int{2, 3, 4, 6} {
		nw := randomNetwork(rng, 6, 25)
		res, err := Synthesize(nw, Options{K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for _, l := range res.LUTs {
			if len(l.Inputs) > k {
				t.Errorf("k=%d: LUT with %d inputs", k, len(l.Inputs))
			}
		}
	}
}

func TestSmallerKMoreLUTs(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	nw := randomNetwork(rng, 8, 60)
	r2, err := Synthesize(nw, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	r6, err := Synthesize(nw, Options{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(r6.LUTs) > len(r2.LUTs) {
		t.Errorf("k=6 used more LUTs (%d) than k=2 (%d)", len(r6.LUTs), len(r2.LUTs))
	}
}

func TestNorCost(t *testing.T) {
	cases := []struct {
		name string
		tt   uint64
		nIn  int
		want int
	}{
		// Constants: one write.
		{"const0", 0x0, 2, 1},
		{"const1", 0xF, 2, 1},
		// NOR(a,b): off-set minterms are 01,10,11 (3 terms) needing both
		// inputs complemented sometimes... on-set {00}: no positive
		// literal -> 0 NOTs + 1 minterm + 1 collector + 1 final NOT = 3.
		// off-set {01,10,11}: NOTs(a,b needed? minterm 01 has a=1 -> NOT a;
		// 10 -> NOT b) = 2 + 3 + 1 = 6. Min = 3.
		{"nor2", 0x1, 2, 3},
		// AND(a,b): on-set {11}: NOT a, NOT b, 1 minterm, collector, final
		// NOT = 5; off-set {00,01,10}: NOT a (from 01), NOT b (from 10),
		// 3 minterms + collector = 6. Min = 5... wait: AND(a,b)=NOR(!a,!b):
		// on-set minterm 11 = NOR(!a,!b) directly: cost model gives
		// 2 NOTs + 1 NOR + 1 collector + 1 NOT = model counts 5; accept 5.
		{"and2", 0x8, 2, 5},
	}
	for _, c := range cases {
		if got := norCost(c.tt, c.nIn); got != c.want {
			t.Errorf("%s: cost = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCostsPositiveAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	nw := randomNetwork(rng, 7, 40)
	res, err := Synthesize(nw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != res.InputOps+res.CopyOps+res.NOROps {
		t.Errorf("ops inconsistent: %d != %d+%d+%d", res.Ops, res.InputOps, res.CopyOps, res.NOROps)
	}
	if res.InputOps != 7 {
		t.Errorf("input ops = %d, want 7", res.InputOps)
	}
	if res.Steps <= 0 || res.Levels <= 0 {
		t.Errorf("steps=%d levels=%d", res.Steps, res.Levels)
	}
	// Delay can never beat the critical path.
	if res.Steps < res.Levels {
		t.Errorf("steps %d < levels %d", res.Steps, res.Levels)
	}
	for _, l := range res.LUTs {
		if l.NORs <= 0 || l.Copies != len(l.Inputs) {
			t.Errorf("bad LUT costs: %+v", l)
		}
		if l.Level <= 0 {
			t.Errorf("LUT level %d", l.Level)
		}
	}
}

func TestNarrowLanesIncreaseDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	nw := randomNetwork(rng, 8, 80)
	wide, err := Synthesize(nw, Options{CrossbarDim: 512})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Synthesize(nw, Options{CrossbarDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Steps < wide.Steps {
		t.Errorf("narrow crossbar faster (%d) than wide (%d)", narrow.Steps, wide.Steps)
	}
}

func TestMuxAndWideGates(t *testing.T) {
	b := logic.NewBuilder("mix")
	xs := b.Inputs("x", 6)
	m := b.Mux(xs[0], xs[1], xs[2])
	w := b.And(xs[0], xs[1], xs[2], xs[3], xs[4], xs[5]) // wider than k=4
	b.Output("m", m)
	b.Output("w", w)
	b.Output("x", b.Xor(m, w))
	nw := b.Build()
	res, err := Synthesize(nw, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]bool, 6)
	for a := 0; a < 64; a++ {
		for i := range in {
			in[i] = a&(1<<uint(i)) != 0
		}
		want, got := nw.Eval(in), res.Eval(in)
		for o := range want {
			if want[o] != got[o] {
				t.Fatalf("output %d differs on %06b", o, a)
			}
		}
	}
}

func TestOutputsDrivenByInputsAndConstants(t *testing.T) {
	b := logic.NewBuilder("thru")
	a := b.Input("a")
	b.Output("pass", a)
	b.Output("one", b.Const1())
	b.Output("and", b.And(a, b.Input("c")))
	nw := b.Build()
	res, err := Synthesize(nw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		in := []bool{v&1 != 0, v&2 != 0}
		want, got := nw.Eval(in), res.Eval(in)
		for o := range want {
			if want[o] != got[o] {
				t.Fatalf("output %d differs on %v", o, in)
			}
		}
	}
}

func TestKTooLarge(t *testing.T) {
	b := logic.NewBuilder("k")
	b.Output("f", b.Input("a"))
	if _, err := Synthesize(b.Build(), Options{K: 9}); err == nil {
		t.Error("K=9 accepted")
	}
}

func randomNetwork(rng *rand.Rand, nIn, nGates int) *logic.Network {
	b := logic.NewBuilder("rand")
	var pool []int
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.Input(string(rune('a'+i))))
	}
	for g := 0; g < nGates; g++ {
		pick := func() int { return pool[rng.Intn(len(pool))] }
		var id int
		switch rng.Intn(6) {
		case 0:
			id = b.And(pick(), pick())
		case 1:
			id = b.Or(pick(), pick(), pick())
		case 2:
			id = b.Not(pick())
		case 3:
			id = b.Xor(pick(), pick())
		case 4:
			id = b.Nor(pick(), pick())
		default:
			id = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, id)
	}
	b.Output("f", pool[len(pool)-1])
	b.Output("g", pool[len(pool)-2])
	b.Output("h", pool[len(pool)-3])
	return b.Build()
}

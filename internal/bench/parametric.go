package bench

import (
	"fmt"
	"strconv"
	"strings"

	"compact/internal/logic"
)

// Parametric builds a scalable circuit from a "family:size" specification.
// Supported families:
//
//	adder:N      N-bit ripple-carry adder (2N+1 in, N+1 out)
//	comparator:N N-bit equality/less-than comparator (2N in, 3 out)
//	decoder:N    N-to-2^N decoder (N in, 2^N out)
//	parity:N     N-input parity tree (N in, 1 out)
//	priority:N   N-input priority encoder (N in, ceil(log2 N)+1 out)
//	majority:N   N-input majority vote, N odd (N in, 1 out)
//
// These power the scaling experiment (semiperimeter growth against BDD
// size) and give users ready-made workloads beyond the Table I suite.
func Parametric(spec string) (*logic.Network, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("bench: parametric spec %q must be family:size", spec)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("bench: bad size in %q", spec)
	}
	switch parts[0] {
	case "adder":
		return paramAdder(n), nil
	case "comparator":
		return paramComparator(n), nil
	case "decoder":
		if n > 12 {
			return nil, fmt.Errorf("bench: decoder:%d has %d outputs; limit is decoder:12", n, 1<<uint(n))
		}
		return paramDecoder(n), nil
	case "parity":
		return paramParity(n), nil
	case "priority":
		return paramPriority(n), nil
	case "majority":
		if n%2 == 0 {
			return nil, fmt.Errorf("bench: majority:%d needs an odd size", n)
		}
		return paramMajority(n), nil
	default:
		return nil, fmt.Errorf("bench: unknown parametric family %q", parts[0])
	}
}

// ParametricFamilies lists the supported family names.
func ParametricFamilies() []string {
	return []string{"adder", "comparator", "decoder", "parity", "priority", "majority"}
}

func paramAdder(n int) *logic.Network {
	b := logic.NewBuilder(fmt.Sprintf("adder%d", n))
	xs := b.Inputs("x", n)
	ys := b.Inputs("y", n)
	cin := b.Input("cin")
	sums, cout := b.AddRippleAdder(xs, ys, cin)
	outputBus(b, "s", sums)
	b.Output("cout", cout)
	return b.Build()
}

func paramComparator(n int) *logic.Network {
	b := logic.NewBuilder(fmt.Sprintf("cmp%d", n))
	xs := b.Inputs("x", n)
	ys := b.Inputs("y", n)
	eq := equalBus(b, xs, ys)
	lt := lessThan(b, xs, ys)
	b.Output("eq", eq)
	b.Output("lt", lt)
	b.Output("gt", b.And(b.Not(eq), b.Not(lt)))
	return b.Build()
}

func paramDecoder(n int) *logic.Network {
	b := logic.NewBuilder(fmt.Sprintf("dec%d", n))
	sel := b.Inputs("a", n)
	outputBus(b, "y", decoderTree(b, sel))
	return b.Build()
}

func paramParity(n int) *logic.Network {
	b := logic.NewBuilder(fmt.Sprintf("par%d", n))
	xs := b.Inputs("x", n)
	b.Output("p", parityTree(b, xs))
	return b.Build()
}

func paramPriority(n int) *logic.Network {
	b := logic.NewBuilder(fmt.Sprintf("pri%d", n))
	xs := b.Inputs("r", n)
	width := 0
	for (1 << uint(width)) < n {
		width++
	}
	if width == 0 {
		width = 1
	}
	_, idx, valid := priorityEncode(b, xs, width)
	outputBus(b, "idx", idx)
	b.Output("valid", valid)
	return b.Build()
}

func paramMajority(n int) *logic.Network {
	b := logic.NewBuilder(fmt.Sprintf("maj%d", n))
	xs := b.Inputs("x", n)
	// Count set bits with a ripple counter, then compare to n/2.
	width := 0
	for (1 << uint(width)) <= n {
		width++
	}
	count := make([]int, width)
	for i := range count {
		count[i] = b.Const0()
	}
	for _, x := range xs {
		carry := x
		for bit := 0; bit < width && carry != b.Const0(); bit++ {
			sum := b.Xor(count[bit], carry)
			carry = b.And(count[bit], carry)
			count[bit] = sum
		}
	}
	// majority iff count > n/2 iff count >= (n+1)/2.
	threshold := (n + 1) / 2
	thr := make([]int, width)
	for i := range thr {
		if threshold&(1<<uint(i)) != 0 {
			thr[i] = b.Const1()
		} else {
			thr[i] = b.Const0()
		}
	}
	b.Output("maj", b.Not(lessThan(b, count, thr)))
	return b.Build()
}

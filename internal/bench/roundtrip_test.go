package bench

import (
	"bytes"
	"testing"

	"compact/internal/blif"
)

// TestBLIFRoundTripAllBenchmarks serializes every benchmark circuit as
// BLIF (what cmd/benchgen emits), reparses it, and checks functional
// equivalence on random vectors — an integration test of the generators,
// the writer and the parser together.
func TestBLIFRoundTripAllBenchmarks(t *testing.T) {
	for _, g := range All() {
		nw := g.Build()
		var buf bytes.Buffer
		if err := blif.Write(&buf, nw); err != nil {
			t.Errorf("%s: write: %v", g.Name, err)
			continue
		}
		nw2, err := blif.Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Errorf("%s: reparse: %v", g.Name, err)
			continue
		}
		if nw2.NumInputs() != nw.NumInputs() || nw2.NumOutputs() != nw.NumOutputs() {
			t.Errorf("%s: I/O changed: %d/%d -> %d/%d", g.Name,
				nw.NumInputs(), nw.NumOutputs(), nw2.NumInputs(), nw2.NumOutputs())
			continue
		}
		// Input order may differ after reparse; map by name.
		perm := make([]int, nw.NumInputs())
		for i, name := range nw.InputNames() {
			j := nw2.InputIndex(name)
			if j < 0 {
				t.Errorf("%s: input %q lost", g.Name, name)
				continue
			}
			perm[i] = j
		}
		operm := make([]int, nw.NumOutputs())
		for i, name := range nw.OutputNames {
			j := nw2.OutputIndex(name)
			if j < 0 {
				t.Errorf("%s: output %q lost", g.Name, name)
				continue
			}
			operm[i] = j
		}
		in := make([]bool, nw.NumInputs())
		in2 := make([]bool, nw.NumInputs())
		state := uint64(1)
		for trial := 0; trial < 40; trial++ {
			for i := range in {
				state = state*6364136223846793005 + 1442695040888963407
				in[i] = state>>33&1 != 0
				in2[perm[i]] = in[i]
			}
			want := nw.Eval(in)
			got := nw2.Eval(in2)
			for o := range want {
				if want[o] != got[operm[o]] {
					t.Fatalf("%s: output %s differs after round trip", g.Name, nw.OutputNames[o])
				}
			}
		}
	}
}

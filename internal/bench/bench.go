package bench

import (
	"fmt"
	"sort"

	"compact/internal/logic"
)

// Generator describes one benchmark circuit.
type Generator struct {
	Name  string
	Suite string // "iscas85" or "epfl"
	// Inputs/Outputs are the paper's Table I I/O counts, asserted by tests.
	Inputs, Outputs int
	Build           func() *logic.Network
	Description     string
}

var registry = []Generator{
	{"c432", "iscas85", 36, 7, c432, "27-channel interrupt controller (priority logic)"},
	{"c499", "iscas85", 41, 32, c499, "32-bit single-error-correcting circuit"},
	{"c880", "iscas85", 60, 26, c880, "8-bit ALU with comparator and parity sections"},
	{"c1355", "iscas85", 41, 32, c1355, "32-bit SEC circuit (c499 with expanded gates)"},
	{"c1908", "iscas85", 33, 25, c1908, "16-bit SEC circuit with status outputs"},
	{"c2670", "iscas85", 233, 140, c2670, "wide ALU and controller"},
	{"c3540", "iscas85", 50, 22, c3540, "8-bit ALU with BCD flags"},
	{"c5315", "iscas85", 178, 123, c5315, "9-bit ALU with masked datapath"},
	{"c7552", "iscas85", 207, 108, c7552, "32-bit adder/comparator"},
	{"arbiter", "epfl", 256, 129, arbiter, "128-line masked priority arbiter"},
	{"cavlc", "epfl", 10, 11, cavlc, "coefficient token coding logic"},
	{"ctrl", "epfl", 7, 26, ctrl, "ALU control decoder"},
	{"dec", "epfl", 8, 256, dec, "8-to-256 decoder"},
	{"i2c", "epfl", 147, 142, i2c, "I2C controller combinational slice"},
	{"int2float", "epfl", 11, 7, int2float, "11-bit integer to 7-bit float converter"},
	{"priority", "epfl", 128, 8, priority, "128-bit priority encoder"},
	{"router", "epfl", 60, 30, router, "lookup XY router"},
}

// All returns every benchmark generator, ISCAS85 first then EPFL,
// matching the paper's Table I order.
func All() []Generator { return append([]Generator(nil), registry...) }

// BySuite filters generators by suite name.
func BySuite(suite string) []Generator {
	var out []Generator
	for _, g := range registry {
		if g.Suite == suite {
			out = append(out, g)
		}
	}
	return out
}

// ByName looks a generator up by its circuit name.
func ByName(name string) (Generator, bool) {
	for _, g := range registry {
		if g.Name == name {
			return g, true
		}
	}
	return Generator{}, false
}

// Names returns all benchmark names, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, g := range registry {
		out[i] = g.Name
	}
	sort.Strings(out)
	return out
}

// MustBuild builds the named benchmark or panics (for examples and
// benchmarks where the name is a compile-time constant).
func MustBuild(name string) *logic.Network {
	g, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("bench: unknown benchmark %q", name))
	}
	return g.Build()
}

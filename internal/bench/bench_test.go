package bench

import (
	"testing"

	"compact/internal/bdd"
)

func TestTable1IOCounts(t *testing.T) {
	// The paper's Table I I/O signature must hold exactly.
	for _, g := range All() {
		nw := g.Build()
		if err := nw.Validate(); err != nil {
			t.Errorf("%s: invalid network: %v", g.Name, err)
			continue
		}
		if nw.NumInputs() != g.Inputs || nw.NumOutputs() != g.Outputs {
			t.Errorf("%s: I/O = %d/%d, want %d/%d", g.Name, nw.NumInputs(), nw.NumOutputs(), g.Inputs, g.Outputs)
		}
	}
}

func TestRegistryLookups(t *testing.T) {
	if len(All()) != 17 {
		t.Errorf("%d benchmarks, want 17", len(All()))
	}
	if len(BySuite("iscas85")) != 9 || len(BySuite("epfl")) != 8 {
		t.Errorf("suite sizes wrong: %d/%d", len(BySuite("iscas85")), len(BySuite("epfl")))
	}
	if _, ok := ByName("dec"); !ok {
		t.Error("dec not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name found")
	}
	if len(Names()) != 17 {
		t.Error("Names() wrong length")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild on bogus name did not panic")
		}
	}()
	MustBuild("nope")
}

func TestDecFunctional(t *testing.T) {
	nw := MustBuild("dec")
	in := make([]bool, 8)
	for v := 0; v < 256; v += 17 {
		for i := range in {
			in[i] = v&(1<<uint(i)) != 0
		}
		out := nw.Eval(in)
		for o, bit := range out {
			if bit != (o == v) {
				t.Fatalf("dec(%d): output %d = %v", v, o, bit)
			}
		}
	}
}

func TestPriorityFunctional(t *testing.T) {
	nw := MustBuild("priority")
	in := make([]bool, 128)
	// Single request at position p: index must read p, valid set.
	for _, p := range []int{0, 1, 17, 63, 127} {
		for i := range in {
			in[i] = i == p
		}
		out := nw.Eval(in)
		idx := 0
		for b := 0; b < 7; b++ {
			if out[b] {
				idx |= 1 << uint(b)
			}
		}
		if idx != p || !out[7] {
			t.Errorf("priority(req %d): idx=%d valid=%v", p, idx, out[7])
		}
	}
	// Two requests: lower index wins.
	for i := range in {
		in[i] = i == 9 || i == 90
	}
	out := nw.Eval(in)
	idx := 0
	for b := 0; b < 7; b++ {
		if out[b] {
			idx |= 1 << uint(b)
		}
	}
	if idx != 9 {
		t.Errorf("priority(9,90): idx=%d, want 9", idx)
	}
	// No requests: invalid.
	for i := range in {
		in[i] = false
	}
	if nw.Eval(in)[7] {
		t.Error("priority(none): valid set")
	}
}

func TestSECCorrectsSingleErrors(t *testing.T) {
	nw := MustBuild("c499")
	// Baseline: pick data, compute matching check bits by probing: with
	// en=0 the outputs pass data through; we instead verify the correction
	// property structurally: flipping data bit i with the check bits of
	// the clean word must restore the clean data.
	data := 0xDEADBEEF
	in := make([]bool, 41)
	for i := 0; i < 32; i++ {
		in[i] = data&(1<<uint(i)) != 0
	}
	// Find check bits: syndrome_j = chk_j XOR parity_j(d); choose chk so
	// syndrome = 0. parity_j(d) is what chk_j must equal. Probe with
	// chk = 0, en = 1: corrected = d ^ flip(pos=syndrome). Instead use
	// en=0 to read pass-through and compute parities in the test.
	posBits := 6
	chk := make([]bool, 8)
	for j := 0; j < 8; j++ {
		p := false
		for i := 0; i < 32; i++ {
			var member bool
			if j < posBits {
				member = (i+1)>>uint(j)&1 == 1
			} else if (j-posBits)%2 == 0 {
				member = true
			} else {
				member = i%2 == 0
			}
			if member && in[i] {
				p = !p
			}
		}
		chk[j] = p
	}
	for j := 0; j < 8; j++ {
		in[32+j] = chk[j]
	}
	in[40] = true // enable correction
	// Clean word: no correction.
	out := nw.Eval(in)
	for i := 0; i < 32; i++ {
		if out[i] != in[i] {
			t.Fatalf("clean word modified at bit %d", i)
		}
	}
	// Flip each data bit: decoder must restore it.
	for flip := 0; flip < 32; flip++ {
		in[flip] = !in[flip]
		out := nw.Eval(in)
		in[flip] = !in[flip]
		for i := 0; i < 32; i++ {
			if out[i] != in[i] {
				t.Fatalf("error at bit %d not corrected (bit %d wrong)", flip, i)
			}
		}
	}
}

func TestC499EqualsC1355(t *testing.T) {
	a, b := MustBuild("c499"), MustBuild("c1355")
	in := make([]bool, 41)
	rngState := uint64(1)
	for trial := 0; trial < 200; trial++ {
		for i := range in {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			in[i] = rngState>>33&1 != 0
		}
		oa, ob := a.Eval(in), b.Eval(in)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("c499 and c1355 differ at output %d", i)
			}
		}
	}
}

func TestInt2FloatFunctional(t *testing.T) {
	nw := MustBuild("int2float")
	in := make([]bool, 11)
	cases := []struct {
		x        int
		sign     bool
		exp, man int
	}{
		{0, false, 0, 0},         // zero: no leading one
		{1, false, 0, 0},         // leading one at 0, no mantissa bits below
		{2, false, 1, 0},         // 10 -> exp 1
		{3, false, 1, 1},         // 11 -> exp 1 man 1 (bit below leading one)
		{0b1011, false, 3, 0b10}, // leading at 3: man[0]=bit2=0, man[1]=bit1=1
		{512, false, 9, 0},
	}
	for _, c := range cases {
		for i := 0; i < 11; i++ {
			in[i] = c.x&(1<<uint(i)) != 0
		}
		out := nw.Eval(in)
		sign := out[0]
		exp, man := 0, 0
		for b := 0; b < 4; b++ {
			if out[1+b] {
				exp |= 1 << uint(b)
			}
		}
		for b := 0; b < 2; b++ {
			if out[5+b] {
				man |= 1 << uint(b)
			}
		}
		if sign != c.sign || exp != c.exp || man != c.man {
			t.Errorf("int2float(%d) = (s=%v e=%d m=%d), want (s=%v e=%d m=%d)",
				c.x, sign, exp, man, c.sign, c.exp, c.man)
		}
	}
}

func TestArbiterFunctional(t *testing.T) {
	nw := MustBuild("arbiter")
	in := make([]bool, 256)
	// Requests at 5 and 70, priority mask allows only 70.
	in[5], in[70] = true, true
	in[128+70] = true
	out := nw.Eval(in)
	for i := 0; i < 128; i++ {
		if out[i] != (i == 70) {
			t.Fatalf("grant[%d] = %v", i, out[i])
		}
	}
	if !out[128] {
		t.Error("any-grant not set")
	}
	// Both masked: lower index wins.
	in[128+5] = true
	out = nw.Eval(in)
	if !out[5] || out[70] {
		t.Errorf("priority violated: g5=%v g70=%v", out[5], out[70])
	}
}

func TestBDDBuildsForAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("BDD construction for all benchmarks is slow")
	}
	for _, g := range All() {
		nw := g.Build()
		order := bdd.DFSOrder(nw)
		m, roots, err := bdd.BuildNetwork(nw, order, 4_000_000)
		if err != nil {
			t.Errorf("%s: %v", g.Name, err)
			continue
		}
		nodes := m.CountNodes(roots...)
		edges := m.CountEdges(roots...)
		t.Logf("%s: %d nodes, %d edges", g.Name, nodes, edges)
		if nodes < 3 {
			t.Errorf("%s: degenerate BDD (%d nodes)", g.Name, nodes)
		}
	}
}

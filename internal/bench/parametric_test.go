package bench

import (
	"testing"
)

func TestParametricAdder(t *testing.T) {
	nw, err := Parametric("adder:4")
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumInputs() != 9 || nw.NumOutputs() != 5 {
		t.Fatalf("adder:4 I/O = %d/%d", nw.NumInputs(), nw.NumOutputs())
	}
	in := make([]bool, 9)
	for a := 0; a < 16; a++ {
		for c := 0; c < 16; c += 3 {
			for i := 0; i < 4; i++ {
				in[i] = a&(1<<uint(i)) != 0
				in[4+i] = c&(1<<uint(i)) != 0
			}
			in[8] = false
			out := nw.Eval(in)
			got := 0
			for i := 0; i < 5; i++ {
				if out[i] {
					got |= 1 << uint(i)
				}
			}
			if got != a+c {
				t.Fatalf("%d+%d = %d", a, c, got)
			}
		}
	}
}

func TestParametricComparator(t *testing.T) {
	nw, err := Parametric("comparator:3")
	if err != nil {
		t.Fatal(err)
	}
	in := make([]bool, 6)
	for a := 0; a < 8; a++ {
		for c := 0; c < 8; c++ {
			for i := 0; i < 3; i++ {
				in[i] = a&(1<<uint(i)) != 0
				in[3+i] = c&(1<<uint(i)) != 0
			}
			out := nw.Eval(in)
			if out[0] != (a == c) || out[1] != (a < c) || out[2] != (a > c) {
				t.Fatalf("cmp(%d,%d) = %v", a, c, out)
			}
		}
	}
}

func TestParametricDecoderParityPriorityMajority(t *testing.T) {
	dec, err := Parametric("decoder:3")
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumOutputs() != 8 {
		t.Fatalf("decoder:3 outputs = %d", dec.NumOutputs())
	}
	par, err := Parametric("parity:5")
	if err != nil {
		t.Fatal(err)
	}
	in := []bool{true, false, true, true, false}
	if !par.Eval(in)[0] {
		t.Error("parity of 3 ones should be true")
	}
	pri, err := Parametric("priority:10")
	if err != nil {
		t.Fatal(err)
	}
	pin := make([]bool, 10)
	pin[6] = true
	out := pri.Eval(pin)
	idx := 0
	for b := 0; b < 4; b++ {
		if out[b] {
			idx |= 1 << uint(b)
		}
	}
	if idx != 6 || !out[4] {
		t.Errorf("priority(6) = idx %d valid %v", idx, out[4])
	}
	maj, err := Parametric("majority:5")
	if err != nil {
		t.Fatal(err)
	}
	min := make([]bool, 5)
	for v := 0; v < 32; v++ {
		ones := 0
		for i := range min {
			min[i] = v&(1<<uint(i)) != 0
			if min[i] {
				ones++
			}
		}
		if got, want := maj.Eval(min)[0], ones >= 3; got != want {
			t.Fatalf("majority(%05b) = %v, want %v", v, got, want)
		}
	}
}

func TestParametricErrors(t *testing.T) {
	for _, spec := range []string{"adder", "adder:x", "adder:0", "unknown:3", "decoder:20", "majority:4"} {
		if _, err := Parametric(spec); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
	if len(ParametricFamilies()) != 6 {
		t.Error("family list wrong")
	}
}

// Package bench generates the benchmark circuits used by the COMPACT
// evaluation: behavioural stand-ins for the nine ISCAS85 circuits and the
// eight EPFL control benchmarks of the paper's Table I, with identical
// input/output counts. The original netlist files are not redistributable
// here (offline build), so each circuit is regenerated from a functional
// description of the same flavour — priority/interrupt logic, Hamming-style
// error correction, ALU datapaths, decoders, arbiters and routers — sized
// so that every relative experiment (COMPACT vs baselines, SBDD vs ROBDDs,
// γ sweeps) runs on identical inputs for all methods. See DESIGN.md §2.
package bench

import "compact/internal/logic"

// priorityChain returns, for each position i, a signal that is true iff
// none of xs[0..i-1] is true (firstFree[0] == const1).
func priorityChain(b *logic.Builder, xs []int) []int {
	noneAbove := make([]int, len(xs))
	run := b.Const1()
	for i := range xs {
		noneAbove[i] = run
		run = b.And(run, b.Not(xs[i]))
	}
	return noneAbove
}

// priorityEncode returns one-hot "first set" signals, the binary index of
// the first set input (width bits, LSB first), and a valid flag.
func priorityEncode(b *logic.Builder, xs []int, width int) (first []int, idx []int, valid int) {
	noneAbove := priorityChain(b, xs)
	first = make([]int, len(xs))
	for i := range xs {
		first[i] = b.And(xs[i], noneAbove[i])
	}
	idx = make([]int, width)
	for bit := 0; bit < width; bit++ {
		var terms []int
		for i := range xs {
			if i&(1<<uint(bit)) != 0 {
				terms = append(terms, first[i])
			}
		}
		idx[bit] = b.Or(terms...)
	}
	valid = b.Or(xs...)
	return first, idx, valid
}

// parityTree XORs all inputs.
func parityTree(b *logic.Builder, xs []int) int { return b.Xor(xs...) }

// equalsConst is true iff the bus (LSB first) equals the constant k.
func equalsConst(b *logic.Builder, bus []int, k int) int {
	lits := make([]int, len(bus))
	for i, x := range bus {
		if k&(1<<uint(i)) != 0 {
			lits[i] = x
		} else {
			lits[i] = b.Not(x)
		}
	}
	return b.And(lits...)
}

// equalBus is true iff two equal-width buses match bitwise.
func equalBus(b *logic.Builder, xs, ys []int) int {
	eqs := make([]int, len(xs))
	for i := range xs {
		eqs[i] = b.Xnor(xs[i], ys[i])
	}
	return b.And(eqs...)
}

// lessThan compares unsigned buses (LSB first): xs < ys.
func lessThan(b *logic.Builder, xs, ys []int) int {
	lt := b.Const0()
	for i := 0; i < len(xs); i++ { // LSB to MSB; MSB decided last wins
		bitLT := b.And(b.Not(xs[i]), ys[i])
		bitEQ := b.Xnor(xs[i], ys[i])
		lt = b.Or(bitLT, b.And(bitEQ, lt))
	}
	return lt
}

// incBus adds 1 to the bus, returning sum bits and carry out.
func incBus(b *logic.Builder, xs []int) ([]int, int) {
	out := make([]int, len(xs))
	carry := b.Const1()
	for i, x := range xs {
		out[i] = b.Xor(x, carry)
		carry = b.And(x, carry)
	}
	return out, carry
}

// negateBus computes two's complement.
func negateBus(b *logic.Builder, xs []int) []int {
	inv := make([]int, len(xs))
	for i, x := range xs {
		inv[i] = b.Not(x)
	}
	out, _ := incBus(b, inv)
	return out
}

// muxBus selects between two buses: sel ? ys : xs.
func muxBus(b *logic.Builder, sel int, xs, ys []int) []int {
	out := make([]int, len(xs))
	for i := range xs {
		out[i] = b.Mux(sel, xs[i], ys[i])
	}
	return out
}

// andBus, orBus, xorBus apply a bitwise operation across two buses.
func andBus(b *logic.Builder, xs, ys []int) []int {
	out := make([]int, len(xs))
	for i := range xs {
		out[i] = b.And(xs[i], ys[i])
	}
	return out
}

func orBus(b *logic.Builder, xs, ys []int) []int {
	out := make([]int, len(xs))
	for i := range xs {
		out[i] = b.Or(xs[i], ys[i])
	}
	return out
}

func xorBus(b *logic.Builder, xs, ys []int) []int {
	out := make([]int, len(xs))
	for i := range xs {
		out[i] = b.Xor(xs[i], ys[i])
	}
	return out
}

// aluSlice is a small ALU over two buses with a 2-bit opcode:
// 00 add, 01 and, 10 or, 11 xor. Returns the result bus and carry out
// (carry meaningful for add only).
func aluSlice(b *logic.Builder, xs, ys []int, op0, op1, cin int) ([]int, int) {
	sum, cout := b.AddRippleAdder(xs, ys, cin)
	andv := andBus(b, xs, ys)
	orv := orBus(b, xs, ys)
	xorv := xorBus(b, xs, ys)
	lo := muxBus(b, op0, sum, andv) // op1=0: add / and
	hi := muxBus(b, op0, orv, xorv) // op1=1: or / xor
	return muxBus(b, op1, lo, hi), cout
}

// decoderTree builds a full 2^n-output decoder from n select lines.
func decoderTree(b *logic.Builder, sel []int) []int {
	outs := []int{b.Const1()}
	for _, s := range sel {
		next := make([]int, 0, len(outs)*2)
		ns := b.Not(s)
		for _, o := range outs {
			next = append(next, b.And(o, ns))
		}
		for _, o := range outs {
			next = append(next, b.And(o, s))
		}
		outs = next
	}
	return outs
}

// leadingOne returns the one-hot position of the most significant set bit
// (index len-1 scanned first) and a valid flag.
func leadingOne(b *logic.Builder, xs []int) ([]int, int) {
	oneHot := make([]int, len(xs))
	run := b.Const1()
	for i := len(xs) - 1; i >= 0; i-- {
		oneHot[i] = b.And(run, xs[i])
		run = b.And(run, b.Not(xs[i]))
	}
	return oneHot, b.Or(xs...)
}

// outputBus declares each bus bit as a primary output name<i>.
func outputBus(b *logic.Builder, name string, bus []int) {
	for i, x := range bus {
		b.Output(busName(name, i), x)
	}
}

func busName(name string, i int) string {
	return name + "[" + itoa(i) + "]"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

package bench

import "compact/internal/logic"

// arbiter models the EPFL round-robin arbiter as a masked priority
// arbiter: 128 request lines and 128 priority-mask lines; grants go to the
// first masked request. 256 inputs, 129 outputs.
func arbiter() *logic.Network {
	b := logic.NewBuilder("arbiter")
	req := b.Inputs("req", 128)
	pri := b.Inputs("pri", 128)
	masked := andBus(b, req, pri)
	noneAbove := priorityChain(b, masked)
	grants := make([]int, 128)
	for i := range masked {
		grants[i] = b.And(masked[i], noneAbove[i])
	}
	outputBus(b, "g", grants)
	b.Output("any", b.Or(masked...))
	return b.Build()
}

// cavlc models the coding-table flavor of the EPFL cavlc benchmark:
// a 5-bit total-coefficient count, 2-bit trailing ones, and a 3-bit
// context combine arithmetically into code and flag outputs. 10 inputs,
// 11 outputs.
func cavlc() *logic.Network {
	b := logic.NewBuilder("cavlc")
	tc := b.Inputs("tc", 5)
	t1 := b.Inputs("t1", 2)
	nc := b.Inputs("nc", 3)

	t1ext := []int{t1[0], t1[1], b.Const0(), b.Const0(), b.Const0()}
	sum, cout := b.AddRippleAdder(tc, t1ext, b.Const0())
	outputBus(b, "code", sum)                // 5
	b.Output("cx", cout)                     // +1
	b.Output("eqn", equalBus(b, tc[:3], nc)) // +1
	all := append(append(append([]int{}, tc...), t1...), nc...)
	b.Output("par", parityTree(b, all))        // +1
	b.Output("nz", b.Or(nc...))                // +1
	b.Output("n7", b.And(nc[0], nc[1], nc[2])) // +1
	b.Output("lt", lessThan(b, tc[:3], nc))    // +1 => 11
	return b.Build()
}

// ctrl models the EPFL ALU control unit: a 7-bit opcode decoded into 26
// control signals through pattern matching. 7 inputs, 26 outputs.
func ctrl() *logic.Network {
	b := logic.NewBuilder("ctrl")
	op := b.Inputs("op", 7)
	dec := decoderTree(b, op[:4])
	outputBus(b, "d", dec) // 16
	b.Output("par", parityTree(b, op))
	patterns := []int{0x01, 0x23, 0x45, 0x5a, 0x7f}
	for i, p := range patterns {
		b.Output(busName("m", i), equalsConst(b, op, p))
	} // +5
	b.Output("hi", b.And(op[5], op[6]))
	b.Output("lo", b.Nor(op[5], op[6]))
	b.Output("wr", b.And(op[6], b.Or(dec[1], dec[3], dec[5])))
	b.Output("rd", b.And(b.Not(op[6]), b.Or(dec[0], dec[2]))) // +4 => 26
	return b.Build()
}

// dec is the exact EPFL 8-to-256 decoder. 8 inputs, 256 outputs.
func dec() *logic.Network {
	b := logic.NewBuilder("dec")
	sel := b.Inputs("a", 8)
	outs := decoderTree(b, sel)
	outputBus(b, "y", outs)
	return b.Build()
}

// i2c models the combinational next-state/output logic slice of the EPFL
// i2c controller. 147 inputs, 142 outputs.
func i2c() *logic.Network {
	b := logic.NewBuilder("i2c")
	state := b.Inputs("st", 8)
	bitcnt := b.Inputs("bc", 4)
	data := b.Inputs("dq", 8)
	addr := b.Inputs("ad", 7)
	own := b.Inputs("ow", 7)
	rx := b.Inputs("rx", 32)
	tx := b.Inputs("tx", 32)
	flags := b.Inputs("fl", 16)
	scl := b.Input("scl")
	sda := b.Input("sda")
	kc := b.Inputs("kc", 31)

	// Next state: increment when kc[0], hold otherwise.
	stInc, _ := incBus(b, state)
	outputBus(b, "nst", muxBus(b, kc[0], state, stInc)) // 8
	bcInc, _ := incBus(b, bitcnt)
	outputBus(b, "nbc", muxBus(b, scl, bitcnt, bcInc)) // +4
	match := equalBus(b, addr, own)
	b.Output("match", match)                           // +1
	outputBus(b, "do", muxBus(b, kc[1], data, rx[:8])) // +8
	for i := 0; i < 4; i++ {
		b.Output(busName("rp", i), parityTree(b, rx[8*i:8*i+8]))
		b.Output(busName("tp", i), parityTree(b, tx[8*i:8*i+8]))
	} // +8
	for i := 0; i < 8; i++ {
		b.Output(busName("fo", i), b.Or(rx[4*i], rx[4*i+1], rx[4*i+2], rx[4*i+3]))
	} // +8
	outputBus(b, "nfl", muxBus(b, sda, flags, xorBus(b, flags, kc[:16]))) // +16
	outputBus(b, "rt", xorBus(b, rx, tx))                                 // +32
	outputBus(b, "ro", orBus(b, rx, tx))                                  // +32
	for i := 0; i < 16; i++ {
		b.Output(busName("fs", i), b.And(flags[i], scl))
	} // +16
	for i := 0; i < 8; i++ {
		b.Output(busName("sd", i), equalsConst(b, state[:3], i%8))
	} // +8
	b.Output("kpar", parityTree(b, kc[16:])) // +1 => 142
	return b.Build()
}

// int2float is the EPFL 11-bit-integer to 7-bit-float converter: sign,
// 4-bit exponent from leading-one detection, 2-bit mantissa. 11 inputs,
// 7 outputs.
func int2float() *logic.Network {
	b := logic.NewBuilder("int2float")
	x := b.Inputs("x", 11)
	sign := x[10]
	mag := muxBus(b, sign, x[:10], negateBus(b, x[:10]))
	oneHot, valid := leadingOne(b, mag)
	// Exponent: binary position of the leading one.
	exp := make([]int, 4)
	for bit := 0; bit < 4; bit++ {
		var terms []int
		for p := range oneHot {
			if p&(1<<uint(bit)) != 0 {
				terms = append(terms, oneHot[p])
			}
		}
		exp[bit] = b.Or(terms...)
	}
	// Mantissa: the two bits right below the leading one.
	man := make([]int, 2)
	for k := 0; k < 2; k++ {
		var terms []int
		for p := range oneHot {
			if p-1-k >= 0 {
				terms = append(terms, b.And(oneHot[p], mag[p-1-k]))
			}
		}
		man[k] = b.Or(terms...)
	}
	b.Output("sign", b.And(sign, valid))
	outputBus(b, "exp", exp)
	outputBus(b, "man", man)
	return b.Build()
}

// priority is the EPFL 128-bit priority encoder: 7-bit index plus a valid
// flag. 128 inputs, 8 outputs.
func priority() *logic.Network {
	b := logic.NewBuilder("priority")
	req := b.Inputs("req", 128)
	_, idx, valid := priorityEncode(b, req, 7)
	outputBus(b, "idx", idx)
	b.Output("valid", valid)
	return b.Build()
}

// router models the EPFL lookup XY router: destination/current coordinate
// comparison into direction controls plus payload transforms. 60 inputs,
// 30 outputs.
func router() *logic.Network {
	b := logic.NewBuilder("router")
	dx := b.Inputs("dx", 8)
	dy := b.Inputs("dy", 8)
	cx := b.Inputs("cx", 8)
	cy := b.Inputs("cy", 8)
	cr := b.Inputs("cr", 5)
	flit := b.Inputs("ft", 16)
	vc := b.Inputs("vc", 7)

	eqx := equalBus(b, dx, cx)
	eqy := equalBus(b, dy, cy)
	ltx := lessThan(b, dx, cx)
	lty := lessThan(b, dy, cy)
	west := b.And(b.Not(eqx), ltx)
	east := b.And(b.Not(eqx), b.Not(ltx))
	north := b.And(eqx, b.Not(eqy), lty)
	south := b.And(eqx, b.Not(eqy), b.Not(lty))
	local := b.And(eqx, eqy)
	b.Output("e", east)
	b.Output("w", west)
	b.Output("n", north)
	b.Output("s", south)
	b.Output("l", local)                  // 5
	outputBus(b, "ox", xorBus(b, cx, dx)) // +8
	outputBus(b, "oy", xorBus(b, cy, dy)) // +8
	grant := b.And(b.Or(cr...), b.Not(local))
	b.Output("grant", grant)              // +1
	b.Output("fpar", parityTree(b, flit)) // +1
	for i, v := range vc {
		b.Output(busName("gv", i), b.And(v, grant))
	} // +7 => 30
	return b.Build()
}

package bench

import "compact/internal/logic"

// c432 models the 27-channel interrupt controller: 27 request lines gated
// by 9 group enables, priority-encoded into a 5-bit channel index with a
// valid flag and a parity output. 36 inputs, 7 outputs.
func c432() *logic.Network {
	b := logic.NewBuilder("c432")
	req := b.Inputs("req", 27)
	en := b.Inputs("en", 9)
	gated := make([]int, 27)
	for i := range req {
		gated[i] = b.And(req[i], en[i/3])
	}
	_, idx, valid := priorityEncode(b, gated, 5)
	outputBus(b, "chan", idx)
	b.Output("valid", valid)
	b.Output("par", parityTree(b, gated))
	return b.Build()
}

// hammingSEC builds a single-error-correcting decoder over `dw` data bits
// and `cw` check bits: syndromes are parity trees, and each data bit is
// flipped when the syndrome addresses it.
func hammingSEC(b *logic.Builder, d, chk []int, en int) (corrected, syndrome []int) {
	cw := len(chk)
	posBits := 0
	for (1 << uint(posBits)) < len(d)+1 {
		posBits++
	}
	syndrome = make([]int, cw)
	for j := 0; j < cw; j++ {
		var members []int
		for i := range d {
			var in bool
			if j < posBits {
				in = (i+1)>>uint(j)&1 == 1
			} else {
				// Extra checks: overall parity and striped parity.
				switch (j - posBits) % 2 {
				case 0:
					in = true
				default:
					in = i%2 == 0
				}
			}
			if in {
				members = append(members, d[i])
			}
		}
		members = append(members, chk[j])
		syndrome[j] = parityTree(b, members)
	}
	pos := syndrome[:posBits]
	corrected = make([]int, len(d))
	for i := range d {
		hit := b.And(en, equalsConst(b, pos, i+1))
		corrected[i] = b.Xor(d[i], hit)
	}
	return corrected, syndrome
}

// c499 models the 32-bit single-error-correcting circuit: 32 data bits,
// 8 check bits, and an enable. 41 inputs, 32 outputs.
func c499() *logic.Network { return secCircuit("c499") }

// c1355 is functionally identical to c499 (the real netlist is c499 with
// its XOR gates expanded into NANDs, which leaves the function — and hence
// the BDD — unchanged). 41 inputs, 32 outputs.
func c1355() *logic.Network { return secCircuit("c1355") }

func secCircuit(name string) *logic.Network {
	b := logic.NewBuilder(name)
	d := b.Inputs("d", 32)
	chk := b.Inputs("c", 8)
	en := b.Input("en")
	corrected, _ := hammingSEC(b, d, chk, en)
	outputBus(b, "o", corrected)
	return b.Build()
}

// c880 models the 8-bit ALU: an add/and/or/xor datapath, an 8-bit
// comparator bank, and parity/select sections. 60 inputs, 26 outputs.
func c880() *logic.Network {
	b := logic.NewBuilder("c880")
	a := b.Inputs("a", 8)
	bb := b.Inputs("b", 8)
	cin := b.Input("cin")
	op0, op1 := b.Input("op0"), b.Input("op1")
	d := b.Inputs("d", 8)
	e := b.Inputs("e", 8)
	f := b.Inputs("f", 16)
	g := b.Inputs("g", 9)

	alu, cout := aluSlice(b, a, bb, op0, op1, cin)
	outputBus(b, "alu", alu)
	b.Output("cout", cout)
	eq := equalBus(b, d, e)
	lt := lessThan(b, d, e)
	b.Output("eq", eq)
	b.Output("lt", lt)
	b.Output("gt", b.And(b.Not(eq), b.Not(lt)))
	for i := 0; i < 8; i++ {
		b.Output(busName("fp", i), b.Xor(f[2*i], f[2*i+1]))
	}
	for i := 0; i < 4; i++ {
		b.Output(busName("gm", i), b.Mux(g[8], g[i], g[4+i]))
	}
	b.Output("gpar", parityTree(b, g))
	b.Output("eqp", b.And(eq, parityTree(b, f)))
	return b.Build()
}

// c1908 models the 16-bit SEC circuit with status outputs: 16 data bits,
// 5 check bits, and a 12-bit control section. 33 inputs, 25 outputs.
func c1908() *logic.Network {
	b := logic.NewBuilder("c1908")
	d := b.Inputs("d", 16)
	chk := b.Inputs("c", 5)
	ctrl := b.Inputs("k", 12)
	corrected, syndrome := hammingSEC(b, d, chk, ctrl[0])
	outputBus(b, "o", corrected)
	outputBus(b, "s", syndrome)
	b.Output("err", b.Or(syndrome...))
	b.Output("kpar", parityTree(b, ctrl))
	b.Output("k12", b.And(ctrl[1], ctrl[2]))
	b.Output("k34", b.Or(ctrl[3], ctrl[4]))
	return b.Build()
}

// c2670 models the wide ALU-and-controller: masked datapath, byte
// comparators, parity and priority sections. 233 inputs, 140 outputs.
func c2670() *logic.Network {
	b := logic.NewBuilder("c2670")
	x := b.Inputs("x", 64)
	y := b.Inputs("y", 64)
	mask := b.Inputs("m", 64)
	sel := b.Inputs("s", 5)
	k := b.Inputs("k", 36)

	masked := xorBus(b, andBus(b, x, mask), y)
	outputBus(b, "w", masked) // 64
	for byteI := 0; byteI < 8; byteI++ {
		xs := x[8*byteI : 8*byteI+8]
		ys := y[8*byteI : 8*byteI+8]
		b.Output(busName("eq", byteI), equalBus(b, xs, ys))
		b.Output(busName("lt", byteI), lessThan(b, xs, ys))
	} // +16
	for i := 0; i < 6; i++ {
		b.Output(busName("kp", i), parityTree(b, k[6*i:6*i+6]))
	} // +6
	_, idx, valid := priorityEncode(b, k[:32], 5)
	outputBus(b, "pi", idx) // +5
	b.Output("pv", valid)   // +1
	dec := decoderTree(b, sel[:3])
	outputBus(b, "dec", dec) // +8
	for i := 0; i < 16; i++ {
		b.Output(busName("xo", i), b.Or(x[4*i], x[4*i+1], x[4*i+2], x[4*i+3]))
	} // +16
	for i := 0; i < 16; i++ {
		b.Output(busName("ya", i), b.And(y[4*i], y[4*i+1], y[4*i+2], y[4*i+3]))
	} // +16
	for i := 0; i < 8; i++ {
		b.Output(busName("t", i), b.Xor(x[i], y[i], k[i]))
	} // +8 => 140
	_ = sel[3]
	return b.Build()
}

// c3540 models the 8-bit ALU with BCD-style flags. 50 inputs, 22 outputs.
func c3540() *logic.Network {
	b := logic.NewBuilder("c3540")
	a := b.Inputs("a", 8)
	bb := b.Inputs("b", 8)
	cin := b.Input("cin")
	op0, op1 := b.Input("op0"), b.Input("op1")
	mask := b.Inputs("m", 8)
	m2 := b.Inputs("n", 8)
	sel := b.Inputs("s", 3)
	extra := b.Inputs("e", 12)

	alu, cout := aluSlice(b, a, bb, op0, op1, cin)
	outputBus(b, "alu", alu) // 8
	b.Output("cout", cout)   // +1
	// BCD flag: low nibble of the result < 10.
	ten := lessThan(b, alu[:4], []int{b.Const0(), b.Const1(), b.Const0(), b.Const1()})
	b.Output("bcd", ten)                                   // +1
	b.Output("mp", parityTree(b, andBus(b, mask, m2)))     // +1
	outputBus(b, "dec", decoderTree(b, sel))               // +8
	b.Output("eo0", b.Or(extra[:6]...))                    // +1
	b.Output("eo1", b.And(extra[6], extra[7], extra[8]))   // +1
	b.Output("eo2", b.Xor(extra[9], extra[10], extra[11])) // +1 => 22
	return b.Build()
}

// c5315 models the 9-bit ALU with wide masked datapath. 178 inputs,
// 123 outputs.
func c5315() *logic.Network {
	b := logic.NewBuilder("c5315")
	a := b.Inputs("a", 9)
	bb := b.Inputs("b", 9)
	cin := b.Input("cin")
	op0, op1 := b.Input("op0"), b.Input("op1")
	c := b.Inputs("c", 9)
	d := b.Inputs("d", 9)
	x := b.Inputs("x", 32)
	y := b.Inputs("y", 32)
	mask := b.Inputs("m", 32)
	sel := b.Inputs("s", 4)
	k := b.Inputs("k", 39)

	alu, cout := aluSlice(b, a, bb, op0, op1, cin)
	outputBus(b, "alu", alu) // 9
	b.Output("cout", cout)   // +1
	eq := equalBus(b, c, d)
	lt := lessThan(b, c, d)
	b.Output("eq", eq)
	b.Output("lt", lt)
	b.Output("gt", b.And(b.Not(eq), b.Not(lt)))        // +3
	outputBus(b, "w", orBus(b, andBus(b, x, mask), y)) // +32
	outputBus(b, "t", xorBus(b, x, y))                 // +32
	outputBus(b, "dec", decoderTree(b, sel))           // +16
	for i := 0; i < 3; i++ {
		b.Output(busName("kp", i), parityTree(b, k[13*i:13*i+13]))
	} // +3
	for i := 0; i < 4; i++ {
		b.Output(busName("xo", i), b.Or(x[8*i:8*i+8]...))
	} // +4
	for i := 0; i < 8; i++ {
		b.Output(busName("ya", i), b.And(y[4*i], y[4*i+1], y[4*i+2], y[4*i+3]))
	} // +8
	_, idx, valid := priorityEncode(b, k[:32], 5)
	outputBus(b, "pi", idx)            // +5
	b.Output("pv", valid)              // +1
	b.Output("kall", parityTree(b, k)) // +1
	first, _, _ := priorityEncode(b, mask[:8], 3)
	outputBus(b, "f", first) // +8 => 123
	return b.Build()
}

// c7552 models the 32-bit adder/comparator. 207 inputs, 108 outputs.
func c7552() *logic.Network {
	b := logic.NewBuilder("c7552")
	a := b.Inputs("a", 32)
	bb := b.Inputs("b", 32)
	cin := b.Input("cin")
	c := b.Inputs("c", 32)
	d := b.Inputs("d", 32)
	sel := b.Inputs("s", 2)
	k := b.Inputs("k", 76)

	sum, cout := b.AddRippleAdder(a, bb, cin)
	outputBus(b, "sum", sum) // 32
	b.Output("cout", cout)   // +1
	eq := equalBus(b, c, d)
	lt := lessThan(b, c, d)
	b.Output("eq", eq)
	b.Output("lt", lt)
	b.Output("gt", b.And(b.Not(eq), b.Not(lt))) // +3
	outputBus(b, "t", xorBus(b, c, d))          // +32
	for i := 0; i < 4; i++ {
		b.Output(busName("kp", i), parityTree(b, k[19*i:19*i+19]))
	} // +4
	_, idx, valid := priorityEncode(b, k[:64], 6)
	outputBus(b, "pi", idx) // +6
	b.Output("pv", valid)   // +1
	for i := 0; i < 16; i++ {
		b.Output(busName("cd", i), b.Or(c[i], d[i]))
	} // +16
	for i := 0; i < 8; i++ {
		b.Output(busName("ab", i), b.And(a[i], bb[i]))
	} // +8
	b.Output("s0x", b.Xor(sel[0], sel[1]))   // +1
	b.Output("s1a", b.And(sel[0], cout))     // +1
	b.Output("s2o", b.Or(sel[1], eq))        // +1
	b.Output("apar", parityTree(b, a[:16]))  // +1
	b.Output("bpar", parityTree(b, bb[:16])) // +1 => 108
	return b.Build()
}

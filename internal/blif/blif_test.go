package blif

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"compact/internal/logic"
)

const sampleBLIF = `
# f = (a & b) | c  -- the paper's Fig. 2 running example
.model fig2
.inputs a b c
.outputs f
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.end
`

func TestParseFig2(t *testing.T) {
	n, err := Parse(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "fig2" {
		t.Errorf("model name = %q", n.Name)
	}
	if n.NumInputs() != 3 || n.NumOutputs() != 1 {
		t.Fatalf("I/O = %d/%d", n.NumInputs(), n.NumOutputs())
	}
	for v := 0; v < 8; v++ {
		a, b, c := v&1 != 0, v&2 != 0, v&4 != 0
		got := n.Eval([]bool{a, b, c})[0]
		want := (a && b) || c
		if got != want {
			t.Errorf("f(%v,%v,%v) = %v, want %v", a, b, c, got, want)
		}
	}
}

func TestParseOffsetCover(t *testing.T) {
	// g defined by its off-set: g=0 iff a=1,b=1 => g = !(a&b) = NAND.
	src := `
.model offset
.inputs a b
.outputs g
.names a b g
11 0
.end
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		a, b := v&1 != 0, v&2 != 0
		if got, want := n.Eval([]bool{a, b})[0], !(a && b); got != want {
			t.Errorf("g(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestParseConstants(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs one zero pass
.names one
1
.names zero
.names a pass
1 1
.end
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []bool{false, true} {
		out := n.Eval([]bool{a})
		if !out[0] || out[1] || out[2] != a {
			t.Errorf("a=%v: out=%v", a, out)
		}
	}
}

func TestParseOutOfOrderBlocks(t *testing.T) {
	src := `
.model ooo
.inputs a b
.outputs f
.names t2 f
0 1
.names a b t2
10 1
01 1
.end
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// f = !(a xor b) = xnor
	for v := 0; v < 4; v++ {
		a, b := v&1 != 0, v&2 != 0
		if got, want := n.Eval([]bool{a, b})[0], a == b; got != want {
			t.Errorf("f(%v,%v)=%v want %v", a, b, got, want)
		}
	}
}

func TestParseLineContinuation(t *testing.T) {
	src := ".model lc\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.NumInputs() != 2 {
		t.Fatalf("inputs = %d, want 2", n.NumInputs())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"latch":       ".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end",
		"cycle":       ".model m\n.inputs a\n.outputs f\n.names f g\n1 1\n.names g f\n1 1\n.end",
		"undefined":   ".model m\n.inputs a\n.outputs f\n.names nothere f\n1 1\n.end",
		"bad cube":    ".model m\n.inputs a\n.outputs f\n.names a f\n2 1\n.end",
		"wrong width": ".model m\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end",
		"duplicate":   ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end",
		"stray cube":  ".model m\n.inputs a\n.outputs f\n11 1\n.end",
		"empty":       "",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := randomNetwork(rng, 5, 25)
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		n2, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: reparse: %v\n%s", trial, err, buf.String())
		}
		if n2.NumInputs() != n.NumInputs() || n2.NumOutputs() != n.NumOutputs() {
			t.Fatalf("trial %d: I/O mismatch", trial)
		}
		for v := 0; v < 1<<5; v++ {
			in := make([]bool, 5)
			for i := range in {
				in[i] = v&(1<<i) != 0
			}
			a, b := n.Eval(in), n2.Eval(in)
			for o := range a {
				if a[o] != b[o] {
					t.Fatalf("trial %d: output %d differs on %v\n%s", trial, o, in, buf.String())
				}
			}
		}
	}
}

func TestWriteOutputAliases(t *testing.T) {
	// Output directly tied to an input, and two outputs sharing one gate.
	b := logic.NewBuilder("alias")
	a, c := b.Input("a"), b.Input("c")
	g := b.And(a, c)
	b.Output("f1", g)
	b.Output("f2", g)
	b.Output("athru", a)
	n := b.Build()
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	n2, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	for v := 0; v < 4; v++ {
		in := []bool{v&1 != 0, v&2 != 0}
		w1, w2 := n.Eval(in), n2.Eval(in)
		for o := range w1 {
			if w1[o] != w2[o] {
				t.Fatalf("output %d differs on %v\n%s", o, in, buf.String())
			}
		}
	}
}

// randomNetwork mirrors the helper in package logic (not exported there).
func randomNetwork(rng *rand.Rand, nIn, nGates int) *logic.Network {
	b := logic.NewBuilder("rand")
	var pool []int
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.Input(string(rune('a'+i))))
	}
	for g := 0; g < nGates; g++ {
		pick := func() int { return pool[rng.Intn(len(pool))] }
		var id int
		switch rng.Intn(7) {
		case 0:
			id = b.And(pick(), pick())
		case 1:
			id = b.Or(pick(), pick(), pick())
		case 2:
			id = b.Not(pick())
		case 3:
			id = b.Xor(pick(), pick())
		case 4:
			id = b.Nand(pick(), pick())
		case 5:
			id = b.Nor(pick(), pick())
		default:
			id = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, id)
	}
	b.Output("f", pool[len(pool)-1])
	b.Output("g", pool[len(pool)-2])
	return b.Build()
}

package blif

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse asserts the BLIF reader never panics and that any network it
// accepts survives a Write → Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleBLIF,
		"",
		"# comment only\n",
		".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n",
		".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 1\n.end\n",
		// Continuation lines.
		".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n",
		// Constant covers: always-true and always-false outputs.
		".model consts\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n",
		// Truncated and malformed directives.
		".model\n",
		".names\n",
		".inputs a\n.names a f\n1\n",
		".model m\n.inputs a\n.outputs f\n.names a f\n1- 1\n.end\n",
		".model m\n.outputs f\n.names f\n2 1\n.end\n",
		".end\n",
		".model m\n.inputs a\n.outputs a\n.end\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("Write of parsed network failed: %v", err)
		}
		if _, err := Parse(&buf); err != nil {
			t.Fatalf("round trip rejected its own output: %v\n%s", err, buf.String())
		}
	})
}

// Package blif reads and writes combinational circuits in the Berkeley
// Logic Interchange Format (BLIF). Only the combinational subset used by
// synthesis benchmarks is supported: .model, .inputs, .outputs, .names
// (with sum-of-products covers over {0,1,-}), and .end. Latches and
// subcircuits are rejected with a descriptive error.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"compact/internal/errio"
	"compact/internal/logic"
)

// names is one .names block: a single-output SOP cover.
type namesBlock struct {
	inputs []string
	output string
	cubes  []cube
	line   int
}

// cube is one row of a cover: input part over '0','1','-' plus output value.
type cube struct {
	in  string
	out byte // '0' or '1'
}

// Parse reads a BLIF model from r and converts it into a logic.Network.
// Signals are resolved in dependency order, so .names blocks may appear in
// any order. Covers with output value '0' (off-set covers) are complemented.
func Parse(r io.Reader) (*logic.Network, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)

	var model string
	var inputs, outputs []string
	blocks := make(map[string]*namesBlock) // by output signal
	var order []string                     // declaration order of block outputs

	var cur *namesBlock
	lineNo := 0
	var pending string // for '\' line continuation

	flush := func() error {
		if cur == nil {
			return nil
		}
		if prev, dup := blocks[cur.output]; dup {
			return fmt.Errorf("line %d: signal %q defined twice (first at line %d)", cur.line, cur.output, prev.line)
		}
		blocks[cur.output] = cur
		order = append(order, cur.output)
		cur = nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, "\\") {
			pending += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		if pending != "" {
			line = pending + line
			pending = ""
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) >= 2 {
				model = fields[1]
			}
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".names":
			if err := flush(); err != nil {
				return nil, err
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: .names needs at least an output", lineNo)
			}
			cur = &namesBlock{
				inputs: fields[1 : len(fields)-1],
				output: fields[len(fields)-1],
				line:   lineNo,
			}
		case ".end":
			if err := flush(); err != nil {
				return nil, err
			}
		case ".latch", ".subckt", ".gate", ".mlatch":
			return nil, fmt.Errorf("line %d: unsupported BLIF construct %s (combinational subset only)", lineNo, fields[0])
		case ".exdc", ".wire_load_slope", ".default_input_arrival":
			// Ignored extensions.
		default:
			if strings.HasPrefix(fields[0], ".") {
				// Unknown dot-directive: ignore for robustness.
				continue
			}
			if cur == nil {
				return nil, fmt.Errorf("line %d: cube outside .names block", lineNo)
			}
			c, err := parseCube(fields, len(cur.inputs), lineNo)
			if err != nil {
				return nil, err
			}
			cur.cubes = append(cur.cubes, c)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: read: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if model == "" {
		model = "blif"
	}
	if len(inputs) == 0 && len(blocks) == 0 {
		return nil, fmt.Errorf("blif: empty model")
	}
	return elaborate(model, inputs, outputs, blocks, order)
}

func parseCube(fields []string, nIn, line int) (cube, error) {
	var c cube
	switch {
	case nIn == 0 && len(fields) == 1:
		c.in, c.out = "", fields[0][0]
	case len(fields) == 2:
		c.in, c.out = fields[0], fields[1][0]
	default:
		return c, fmt.Errorf("line %d: malformed cube %v", line, fields)
	}
	if len(c.in) != nIn {
		return c, fmt.Errorf("line %d: cube %q has %d literals, want %d", line, c.in, len(c.in), nIn)
	}
	for _, ch := range c.in {
		if ch != '0' && ch != '1' && ch != '-' {
			return c, fmt.Errorf("line %d: bad cube character %q", line, ch)
		}
	}
	if c.out != '0' && c.out != '1' {
		return c, fmt.Errorf("line %d: bad cube output %q", line, c.out)
	}
	return c, nil
}

// elaborate resolves blocks into a Builder in dependency order.
func elaborate(model string, inputs, outputs []string, blocks map[string]*namesBlock, order []string) (*logic.Network, error) {
	b := logic.NewBuilder(model)
	ids := make(map[string]int)
	for _, in := range inputs {
		ids[in] = b.Input(in)
	}

	var build func(sig string, stack []string) (int, error)
	build = func(sig string, stack []string) (int, error) {
		if id, ok := ids[sig]; ok {
			return id, nil
		}
		for _, s := range stack {
			if s == sig {
				return 0, fmt.Errorf("blif: combinational cycle through %q", sig)
			}
		}
		blk, ok := blocks[sig]
		if !ok {
			return 0, fmt.Errorf("blif: undefined signal %q", sig)
		}
		stack = append(stack, sig)
		fan := make([]int, len(blk.inputs))
		for i, in := range blk.inputs {
			id, err := build(in, stack)
			if err != nil {
				return 0, err
			}
			fan[i] = id
		}
		id := buildCover(b, fan, blk)
		ids[sig] = id
		return id, nil
	}

	// Build every declared block (covers unused logic too, matching the
	// common expectation that all .names contribute to the node count),
	// outputs first so error messages reference reachable logic.
	for _, out := range outputs {
		if _, err := build(out, nil); err != nil {
			return nil, err
		}
	}
	for _, sig := range order {
		if _, err := build(sig, nil); err != nil {
			return nil, err
		}
	}
	for _, out := range outputs {
		b.Output(out, ids[out])
	}
	n := b.Build()
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	return n, nil
}

// buildCover turns a SOP cover into gates: OR of AND terms. An off-set
// cover (all outputs '0') is built as the complement of the OR.
func buildCover(b *logic.Builder, fan []int, blk *namesBlock) int {
	if len(blk.cubes) == 0 {
		return b.Const0() // empty cover = constant 0
	}
	onset := blk.cubes[0].out == '1'
	var terms []int
	for _, c := range blk.cubes {
		var lits []int
		for i := 0; i < len(c.in); i++ {
			switch c.in[i] {
			case '1':
				lits = append(lits, fan[i])
			case '0':
				lits = append(lits, b.Not(fan[i]))
			}
		}
		terms = append(terms, b.And(lits...))
	}
	sum := b.Or(terms...)
	if !onset {
		return b.Not(sum)
	}
	return sum
}

// Write serializes a logic.Network as BLIF. Every non-input gate becomes a
// .names block with a generated signal name n<id>; primary outputs are
// emitted under their declared names via buffer blocks when necessary.
func Write(w io.Writer, n *logic.Network) error {
	bw := bufio.NewWriter(w)
	ew := errio.NewWriter(bw)
	ew.Printf(".model %s\n", sanitize(n.Name))
	ew.Printf(".inputs %s\n", strings.Join(n.InputNames(), " "))
	ew.Printf(".outputs %s\n", strings.Join(n.OutputNames, " "))

	sig := make([]string, len(n.Gates))
	inputNames := make(map[string]int)
	for _, id := range n.Inputs {
		sig[id] = n.Gates[id].Name
		inputNames[n.Gates[id].Name] = id
	}
	// An output may share an input's name only when it IS that input
	// (pass-through); any other collision would silently redefine the
	// input signal on reparse.
	for i, id := range n.Outputs {
		if in, clash := inputNames[n.OutputNames[i]]; clash && in != id {
			return fmt.Errorf("blif: output %q shadows a different input signal of the same name", n.OutputNames[i])
		}
	}
	outOf := make(map[int]string) // gate id -> output name (first claim wins)
	for i, id := range n.Outputs {
		if _, taken := outOf[id]; !taken && n.Gates[id].Type != logic.Input {
			outOf[id] = n.OutputNames[i]
		}
	}
	for gi, g := range n.Gates {
		if g.Type == logic.Input {
			continue
		}
		name, ok := outOf[gi]
		if !ok {
			name = fmt.Sprintf("n%d", gi)
		}
		sig[gi] = name
		if err := writeGate(bw, g, sig, name); err != nil {
			return err
		}
	}
	// Outputs that alias inputs or already-claimed gates need buffers.
	for i, id := range n.Outputs {
		if sig[id] != n.OutputNames[i] {
			ew.Printf(".names %s %s\n1 1\n", sig[id], n.OutputNames[i])
		}
	}
	ew.Println(".end")
	if err := ew.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

func sanitize(s string) string {
	if s == "" {
		return "model"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' {
			return '_'
		}
		return r
	}, s)
}

func writeGate(w io.Writer, g logic.Gate, sig []string, name string) error {
	fan := make([]string, len(g.Fanin))
	for i, f := range g.Fanin {
		fan[i] = sig[f]
	}
	head := strings.Join(append(fan, name), " ")
	switch g.Type {
	case logic.Const0:
		_, err := fmt.Fprintf(w, ".names %s\n", name) // empty cover = 0
		return err
	case logic.Const1:
		_, err := fmt.Fprintf(w, ".names %s\n1\n", name)
		return err
	case logic.Buf:
		_, err := fmt.Fprintf(w, ".names %s\n1 1\n", head)
		return err
	case logic.Not:
		_, err := fmt.Fprintf(w, ".names %s\n0 1\n", head)
		return err
	case logic.And:
		_, err := fmt.Fprintf(w, ".names %s\n%s 1\n", head, strings.Repeat("1", len(fan)))
		return err
	case logic.Nand:
		_, err := fmt.Fprintf(w, ".names %s\n%s 0\n", head, strings.Repeat("1", len(fan)))
		return err
	case logic.Or:
		if _, err := fmt.Fprintf(w, ".names %s\n", head); err != nil {
			return err
		}
		for i := range fan {
			row := strings.Repeat("-", len(fan))
			row = row[:i] + "1" + row[i+1:]
			if _, err := fmt.Fprintf(w, "%s 1\n", row); err != nil {
				return err
			}
		}
		return nil
	case logic.Nor:
		_, err := fmt.Fprintf(w, ".names %s\n%s 1\n", head, strings.Repeat("0", len(fan)))
		return err
	case logic.Xor, logic.Xnor:
		// A parity cover has 2^(n-1) cubes, so wide gates are chained
		// through auxiliary two-input XOR blocks ("name$x<k>", a suffix no
		// other generated signal uses) and only the final block carries the
		// (possibly negated) output.
		cur := fan[0]
		if len(fan) == 1 {
			cur = fan[0]
		}
		for i := 1; i+1 < len(fan); i++ {
			aux := fmt.Sprintf("%s$x%d", name, i-1)
			if _, err := fmt.Fprintf(w, ".names %s %s %s\n01 1\n10 1\n", cur, fan[i], aux); err != nil {
				return err
			}
			cur = aux
		}
		rows := "01 1\n10 1\n"
		if g.Type == logic.Xnor {
			rows = "00 1\n11 1\n"
		}
		if len(fan) == 1 {
			rows = "1 1\n"
			if g.Type == logic.Xnor {
				rows = "0 1\n"
			}
			_, err := fmt.Fprintf(w, ".names %s %s\n%s", cur, name, rows)
			return err
		}
		_, err := fmt.Fprintf(w, ".names %s %s %s\n%s", cur, fan[len(fan)-1], name, rows)
		return err
	case logic.Mux:
		_, err := fmt.Fprintf(w, ".names %s\n01- 1\n1-1 1\n", head)
		return err
	}
	return fmt.Errorf("blif: cannot serialize gate type %s", g.Type)
}

// SignalNames returns the sorted set of internal signal names a parsed
// network would use; exported for tooling/tests that need stable listings.
func SignalNames(n *logic.Network) []string {
	var names []string
	names = append(names, n.InputNames()...)
	names = append(names, n.OutputNames...)
	sort.Strings(names)
	return names
}

package xbar

import (
	"encoding/json"
	"strings"
	"testing"
)

// fig2Design builds a small hand-made design exercising every cell kind.
func fig2Design() *Design {
	d := NewDesign(4, 3)
	d.InputRow = 3
	d.OutputRows = []int{0}
	d.OutputNames = []string{"f"}
	d.VarNames = []string{"a", "b", "c"}
	d.Cells[0][0] = Entry{Kind: Lit, Var: 0}
	d.Cells[1][0] = Entry{Kind: On}
	d.Cells[1][1] = Entry{Kind: Lit, Var: 1, Neg: true}
	d.Cells[2][1] = Entry{Kind: Lit, Var: 2}
	d.Cells[3][2] = Entry{Kind: Lit, Var: 0, Neg: true}
	d.Cells[0][2] = Entry{Kind: On}
	return d
}

func TestDesignJSONRoundTripEvalParity(t *testing.T) {
	orig := fig2Design()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var dec Design
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Rows != orig.Rows || dec.Cols != orig.Cols || dec.InputRow != orig.InputRow {
		t.Fatalf("decoded geometry %dx%d/in=%d differs from %dx%d/in=%d",
			dec.Rows, dec.Cols, dec.InputRow, orig.Rows, orig.Cols, orig.InputRow)
	}
	// Eval parity over every assignment of the 3 variables.
	for a := 0; a < 8; a++ {
		in := []bool{a&1 != 0, a&2 != 0, a&4 != 0}
		want, got := orig.Eval(in), dec.Eval(in)
		for o := range want {
			if want[o] != got[o] {
				t.Fatalf("Eval parity broken at %v output %d: %v vs %v", in, o, want[o], got[o])
			}
		}
	}
	// A second marshal of the decoded design is byte-identical (stable
	// wire format: cells serialize in row-major order).
	data2, err := json.Marshal(&dec)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-marshal not byte-identical:\n%s\n%s", data, data2)
	}
}

func TestDesignJSONSparse(t *testing.T) {
	d := NewDesign(50, 50)
	d.OutputRows = []int{0}
	d.Cells[7][9] = Entry{Kind: On}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	// 2500 cells, one programmed: the wire form must stay tiny.
	if len(data) > 400 {
		t.Fatalf("sparse encoding is %d bytes for a 1-cell design: %s", len(data), data)
	}
	var dec Design
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Cells[7][9].Kind != On {
		t.Fatal("programmed cell lost in round trip")
	}
}

func TestDesignJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"version", `{"v":99,"rows":1,"cols":1,"input_row":0,"output_rows":[],"cells":[]}`, "wire version"},
		{"negative dims", `{"rows":-1,"cols":1,"input_row":0,"output_rows":[],"cells":[]}`, "negative"},
		{"input row", `{"rows":2,"cols":2,"input_row":5,"output_rows":[],"cells":[]}`, "input row"},
		{"output row", `{"rows":2,"cols":2,"input_row":0,"output_rows":[9],"cells":[]}`, "output row"},
		{"names mismatch", `{"rows":2,"cols":2,"input_row":0,"output_rows":[0],"output_names":["a","b"],"cells":[]}`, "output names"},
		{"cell out of range", `{"rows":2,"cols":2,"input_row":0,"output_rows":[0],"cells":[{"r":5,"c":0,"k":"on"}]}`, "outside"},
		{"duplicate cell", `{"rows":2,"cols":2,"input_row":0,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"on"},{"r":0,"c":0,"k":"on"}]}`, "duplicate"},
		{"bad kind", `{"rows":2,"cols":2,"input_row":0,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"maybe"}]}`, "unknown kind"},
		{"bad var", `{"rows":2,"cols":2,"input_row":0,"output_rows":[0],"var_names":["a"],"cells":[{"r":0,"c":0,"k":"lit","var":3}]}`, "references variable"},
		{"negative var", `{"rows":2,"cols":2,"input_row":0,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"lit","var":-1}]}`, "negative variable"},
		{"not json", `{`, "JSON"},
		{"oversized", `{"rows":1000000000,"cols":1000000000,"input_row":0,"output_rows":[],"cells":[]}`, "cap"},
	}
	for _, tc := range cases {
		var d Design
		err := json.Unmarshal([]byte(tc.src), &d)
		if err == nil {
			t.Errorf("%s: malformed design accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestDesignJSONReuseResetsSparseCache(t *testing.T) {
	var d Design
	one := `{"rows":2,"cols":2,"input_row":1,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"on"},{"r":1,"c":0,"k":"on"}]}`
	if err := json.Unmarshal([]byte(one), &d); err != nil {
		t.Fatal(err)
	}
	if got := d.Eval(nil); !got[0] {
		t.Fatal("decoded design should conduct input->output")
	}
	// Re-decode an empty design into the same value: the cached sparse
	// cells from the first decode must not leak through.
	two := `{"rows":2,"cols":2,"input_row":1,"output_rows":[0],"cells":[]}`
	if err := json.Unmarshal([]byte(two), &d); err != nil {
		t.Fatal(err)
	}
	if got := d.Eval(nil); got[0] {
		t.Fatal("stale sparse cache survived re-decode")
	}
}

package xbar

import (
	"fmt"

	"compact/internal/bdd"
	"compact/internal/graph"
	"compact/internal/labeling"
)

// RootKind classifies a function output's BDD root.
type RootKind uint8

// Root kinds. Constant outputs need no graph node: a constant-1 output is
// sensed on the input wordline itself, a constant-0 output on a dedicated
// never-connected wordline.
const (
	RootNode RootKind = iota
	RootConst0
	RootConst1
)

// Root describes one function output in the graph.
type Root struct {
	Kind   RootKind
	NodeID int // graph node id; valid when Kind == RootNode
	Name   string
}

// BDDGraph is the undirected graph derived from a (shared) BDD per the
// paper's graph pre-processing step: the 0-terminal and its incoming edges
// removed, every remaining node and edge carried over, and each edge
// annotated with the literal that will program its memristor (variable of
// the parent node, negated on low edges).
type BDDGraph struct {
	G *graph.Graph
	// EdgeLit maps each undirected edge {u,v} (key with u < v) to its
	// memristor literal.
	EdgeLit map[[2]int]Entry
	// Level holds each graph node's BDD variable level; the 1-terminal
	// carries -1.
	Level []int
	// TerminalID is the graph node of the 1-terminal (the input port).
	TerminalID int
	Roots      []Root
	VarNames   []string
}

// FromBDD converts the BDDs rooted at roots (in manager m) into the
// undirected labeled graph. outNames provides one name per root.
func FromBDD(m *bdd.Manager, roots []bdd.Node, outNames []string) (*BDDGraph, error) {
	if len(outNames) != len(roots) {
		return nil, fmt.Errorf("xbar: %d names for %d roots", len(outNames), len(roots))
	}
	// Collect reachable non-Zero nodes.
	var keep []bdd.Node
	for _, n := range m.Reachable(roots...) {
		if n != bdd.Zero {
			keep = append(keep, n)
		}
	}
	id := make(map[bdd.Node]int, len(keep)+1)
	// The 1-terminal is always present (it is the input port), even for
	// all-constant-0 functions.
	hasOne := false
	for _, n := range keep {
		if n == bdd.One {
			hasOne = true
		}
	}
	if !hasOne {
		keep = append([]bdd.Node{bdd.One}, keep...)
	}
	// Deterministic ids in ascending handle order (One first).
	for i, n := range keep {
		id[n] = i
	}

	bg := &BDDGraph{
		G:       graph.New(len(keep)),
		EdgeLit: make(map[[2]int]Entry),
		Level:   make([]int, len(keep)),
	}
	names := make([]string, m.NumVars())
	for i := range names {
		names[i] = m.VarName(i)
	}
	bg.VarNames = names
	for _, n := range keep {
		gi := id[n]
		if n == bdd.One {
			bg.Level[gi] = -1
			bg.TerminalID = gi
			continue
		}
		bg.Level[gi] = m.Level(n)
		var edgeErr error
		addEdge := func(child bdd.Node, neg bool) {
			if edgeErr != nil || child == bdd.Zero {
				return
			}
			u, v := gi, id[child]
			if err := bg.G.AddEdge(u, v); err != nil {
				edgeErr = err
				return
			}
			k := edgeKey(u, v)
			if _, dup := bg.EdgeLit[k]; dup {
				// Cannot happen in a reduced BDD (low != high, DAG), but
				// guard against manager bugs.
				edgeErr = fmt.Errorf("xbar: duplicate edge literal for (%d,%d)", u, v)
				return
			}
			bg.EdgeLit[k] = Entry{Kind: Lit, Var: int32(m.Level(n)), Neg: neg}
		}
		addEdge(m.Low(n), true)
		addEdge(m.High(n), false)
		if edgeErr != nil {
			return nil, edgeErr
		}
	}
	for i, r := range roots {
		switch r {
		case bdd.Zero:
			bg.Roots = append(bg.Roots, Root{Kind: RootConst0, NodeID: -1, Name: outNames[i]})
		case bdd.One:
			bg.Roots = append(bg.Roots, Root{Kind: RootConst1, NodeID: bg.TerminalID, Name: outNames[i]})
		default:
			bg.Roots = append(bg.Roots, Root{Kind: RootNode, NodeID: id[r], Name: outNames[i]})
		}
	}
	return bg, nil
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// AlignNodes returns the nodes that the paper's Eq. 7 forces onto
// wordlines: every root node and the 1-terminal.
func (bg *BDDGraph) AlignNodes() []int {
	seen := map[int]bool{bg.TerminalID: true}
	out := []int{bg.TerminalID}
	for _, r := range bg.Roots {
		if r.Kind == RootNode && !seen[r.NodeID] {
			seen[r.NodeID] = true
			out = append(out, r.NodeID)
		}
	}
	return out
}

// Problem builds the VH-labeling instance for this graph, with or without
// the alignment constraints.
func (bg *BDDGraph) Problem(align bool) labeling.Problem {
	p := labeling.Problem{G: bg.G}
	if align {
		p.AlignH = bg.AlignNodes()
	}
	return p
}

// NumNodes returns the graph's node count n (the paper's S = n + k basis).
func (bg *BDDGraph) NumNodes() int { return bg.G.N() }

// NumEdges returns the graph's edge count.
func (bg *BDDGraph) NumEdges() int { return bg.G.M() }

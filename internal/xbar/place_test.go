package xbar

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"compact/internal/bdd"
	"compact/internal/defect"
	"compact/internal/labeling"
)

// synthDesign builds a small design (and its network) for placement tests.
func synthDesign(t *testing.T, seed int64) (*Design, func([]bool) []bool, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw := randomNetwork(rng, 5, 12)
	m, roots, err := bdd.BuildNetwork(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := FromBDD(m, roots, nw.OutputNames)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := labeling.Solve(bg.Problem(true), labeling.Options{Method: labeling.MethodHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Map(bg, sol.Labels)
	if err != nil {
		t.Fatal(err)
	}
	return d, nw.Eval, 5
}

// assertEquivalent checks that the effective design still computes the
// same function as the reference network on every assignment (5 inputs).
func assertEquivalent(t *testing.T, eff *Design, ref func([]bool) []bool, nVars int) {
	t.Helper()
	if bad := eff.VerifyAgainst(ref, nVars, nVars, 0, 1); bad != nil {
		t.Fatalf("effective design disagrees with the network on %v", bad)
	}
}

func TestPlaceIdentityOnCleanArray(t *testing.T) {
	d, _, _ := synthDesign(t, 1)
	dm, err := defect.New(d.Rows, d.Cols)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Place(d, dm, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine != "identity" {
		t.Fatalf("engine %q, want identity", pl.Engine)
	}
	for i, p := range pl.RowPerm {
		if p != i {
			t.Fatalf("identity RowPerm[%d] = %d", i, p)
		}
	}
}

func TestPlaceNilMapIsIdentity(t *testing.T) {
	d, ref, n := synthDesign(t, 2)
	pl, err := Place(d, nil, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eff, err := d.UnderDefects(nil, pl)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, eff, ref, n)
}

// findLitCell returns the position of some literal cell.
func findLitCell(t *testing.T, d *Design) (int, int) {
	t.Helper()
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			if d.Cells[r][c].Kind == Lit {
				return r, c
			}
		}
	}
	t.Fatal("design has no literal cells")
	return 0, 0
}

func TestPlaceAvoidsStuckOffUnderLiteral(t *testing.T) {
	d, ref, n := synthDesign(t, 3)
	r, c := findLitCell(t, d)
	// One spare row and column so the permutation always has room.
	dm, err := defect.New(d.Rows+1, d.Cols+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(r, c, defect.StuckOff); err != nil {
		t.Fatal(err)
	}
	pl, err := Place(d, dm, PlaceOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if lr, lc := pl.RowPerm[r], pl.ColPerm[c]; lr == r && lc == c {
		t.Fatalf("literal cell left on the stuck-OFF device at (%d,%d)", r, c)
	}
	eff, err := d.UnderDefects(dm, pl)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, eff, ref, n)
}

func TestPlaceUnplaceableProvenWithWitness(t *testing.T) {
	d, _, _ := synthDesign(t, 4)
	// Every physical column is stuck-OFF in every row: no programmed cell
	// can land anywhere, and every row of a synthesized design has at
	// least one programmed cell.
	dm, err := defect.New(d.Rows, d.Cols)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			if err := dm.Set(r, c, defect.StuckOff); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, err = Place(d, dm, PlaceOptions{})
	var up *Unplaceable
	if !errors.As(err, &up) {
		t.Fatalf("error %v is not *Unplaceable", err)
	}
	if up.LogicalRow < 0 || up.Candidates != 0 {
		t.Fatalf("witness row %d with %d candidates; want a zero-candidate row", up.LogicalRow, up.Candidates)
	}
	if !up.Proven {
		t.Fatalf("fully stuck-OFF array not proven unplaceable: %v", up)
	}
	if up.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestPlaceDimsTooSmall(t *testing.T) {
	d, _, _ := synthDesign(t, 5)
	dm, err := defect.New(d.Rows-1, d.Cols)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Place(d, dm, PlaceOptions{})
	var up *Unplaceable
	if !errors.As(err, &up) || up.Stage != "dims" || !up.Proven {
		t.Fatalf("want proven dims-stage Unplaceable, got %v", err)
	}
}

func TestPlaceILPEngineSolvesConstrained(t *testing.T) {
	d, ref, n := synthDesign(t, 6)
	// Stick a fault under a literal cell with one spare row/col and force
	// the exact engine: it must find a compatible permutation directly.
	r, c := findLitCell(t, d)
	dm, err := defect.New(d.Rows+1, d.Cols+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(r, c, defect.StuckOff); err != nil {
		t.Fatal(err)
	}
	pl, err := PlaceContext(context.Background(), d, dm, PlaceOptions{Engine: PlaceILP})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine != "ilp" {
		t.Fatalf("engine %q, want ilp", pl.Engine)
	}
	eff, err := d.UnderDefects(dm, pl)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, eff, ref, n)
}

// TestPlaceForcedILPSkipsIdentityShortcut: with faults present, forcing
// the exact engine must actually run it even when the identity binding is
// compatible — core's repair loop forces PlaceILP to explore beyond a
// placement that failed downstream verification, and the shortcut would
// otherwise hand every retry the same identity binding.
func TestPlaceForcedILPSkipsIdentityShortcut(t *testing.T) {
	d, ref, n := synthDesign(t, 8)
	// A stuck-OFF device under an Off cell is identity-compatible.
	var r, c = -1, -1
	for i := 0; i < d.Rows && r < 0; i++ {
		for j := 0; j < d.Cols; j++ {
			if d.Cells[i][j].Kind == Off {
				r, c = i, j
				break
			}
		}
	}
	if r < 0 {
		t.Skip("design has no Off cell")
	}
	dm, err := defect.New(d.Rows, d.Cols)
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(r, c, defect.StuckOff); err != nil {
		t.Fatal(err)
	}
	pl, err := Place(d, dm, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine != "identity" {
		t.Fatalf("default engine %q, want the identity shortcut", pl.Engine)
	}
	pl, err = Place(d, dm, PlaceOptions{Engine: PlaceILP})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Engine != "ilp" {
		t.Fatalf("forced exact engine %q, want ilp", pl.Engine)
	}
	eff, err := d.UnderDefects(dm, pl)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, eff, ref, n)
}

func TestPlaceCanceledContext(t *testing.T) {
	d, _, _ := synthDesign(t, 7)
	dm, err := defect.Generate(d.Rows, d.Cols, 0.2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlaceContext(ctx, d, dm, PlaceOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestUnderDefectsOverrides(t *testing.T) {
	d := NewDesign(2, 2)
	d.VarNames = []string{"a"}
	d.InputRow = 1
	d.OutputRows = []int{0}
	d.Cells[0][0] = Entry{Kind: Lit, Var: 0}
	d.Cells[1][0] = Entry{Kind: On}
	dm, err := defect.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(0, 0, defect.StuckOff); err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(0, 1, defect.StuckOn); err != nil {
		t.Fatal(err)
	}
	eff, err := d.UnderDefects(dm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eff.Cells[0][0].Kind != Off {
		t.Fatalf("stuck-OFF override: %v", eff.Cells[0][0])
	}
	if eff.Cells[0][1].Kind != On {
		t.Fatalf("stuck-ON override: %v", eff.Cells[0][1])
	}
	// The original is untouched.
	if d.Cells[0][0].Kind != Lit || d.Cells[0][1].Kind != Off {
		t.Fatal("UnderDefects mutated the receiver")
	}
	// f was a: now the literal path is gone but the stuck-ON at (0,1)
	// bridges row 0 to col 1; col 1 is otherwise isolated, so f is 0 only
	// until the On stitch at (1,0) is considered: row1-col0-row0 via cells
	// (1,0) on and (0,0) off -> f = 0 for a=1? Evaluate both to be sure.
	got := eff.Eval([]bool{true})
	want := []bool{true} // row1 ~ col0 via On stitch; (0,0) is now Off; (0,1) bridges row0~col1 but col1 has no other device -> f=0... assert computed value
	_ = want
	// Recompute by hand: conducting cells are (1,0) [On] and (0,1)
	// [stuck-ON]. Components: {row1, col0}, {row0, col1}. Input row 1,
	// output row 0 -> disconnected -> f = 0.
	if got[0] {
		t.Fatalf("effective eval = %v, want f=0 (literal path severed)", got)
	}
}

func TestEvalDefectsMatchesUnderDefects(t *testing.T) {
	d, _, n := synthDesign(t, 8)
	dm, err := defect.Generate(d.Rows, d.Cols, 0.1, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	eff, err := d.UnderDefects(dm, nil)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 1<<n; a++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = a&(1<<i) != 0
		}
		direct, err := d.EvalDefects(in, dm, nil)
		if err != nil {
			t.Fatal(err)
		}
		via := eff.Eval(in)
		for o := range via {
			if direct[o] != via[o] {
				t.Fatalf("EvalDefects disagrees with UnderDefects.Eval on %v", in)
			}
		}
	}
}

func TestProgramDefectsStuckCellsNeverSwitch(t *testing.T) {
	d, _, n := synthDesign(t, 9)
	r, c := findLitCell(t, d)
	dm, err := defect.New(d.Rows, d.Cols)
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(r, c, defect.StuckOn); err != nil {
		t.Fatal(err)
	}
	var prev *Programming
	for a := 0; a < 1<<n; a++ {
		in := make([]bool, n)
		for i := range in {
			in[i] = a&(1<<i) != 0
		}
		p, err := d.ProgramDefects(in, dm, nil, prev)
		if err != nil {
			t.Fatal(err)
		}
		if !p.RowPatterns[r][c] {
			t.Fatalf("stuck-ON device reported non-conducting at assignment %v", in)
		}
		if prev != nil && p.RowPatterns[r][c] != prev.RowPatterns[r][c] {
			t.Fatal("stuck device switched state")
		}
		prev = p
	}
}

func TestPlacementValidation(t *testing.T) {
	d, _, _ := synthDesign(t, 10)
	dm, err := defect.New(d.Rows, d.Cols)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Placement{RowPerm: make([]int, d.Rows), ColPerm: make([]int, d.Cols)}
	// All-zero row perm is not injective (for designs with >1 row).
	if d.Rows > 1 {
		if _, err := d.UnderDefects(dm, bad); err == nil {
			t.Fatal("non-injective placement accepted")
		}
	}
	outOfRange := &Placement{RowPerm: make([]int, d.Rows), ColPerm: make([]int, d.Cols)}
	for i := range outOfRange.RowPerm {
		outOfRange.RowPerm[i] = i
	}
	for i := range outOfRange.ColPerm {
		outOfRange.ColPerm[i] = i
	}
	outOfRange.RowPerm[0] = d.Rows + 5
	if _, err := d.UnderDefects(dm, outOfRange); err == nil {
		t.Fatal("out-of-range placement accepted")
	}
}

func TestPlaceCandidatesIdentityFirstAndDistinct(t *testing.T) {
	d, ref, n := synthDesign(t, 6)
	// A fault on a spare line keeps identity compatible while forcing the
	// enumeration to actually search for alternatives.
	dm, err := defect.New(d.Rows+1, d.Cols+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(d.Rows, d.Cols, defect.StuckOn); err != nil {
		t.Fatal(err)
	}
	cands, err := PlaceCandidates(context.Background(), d, dm, PlaceOptions{Seed: 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates on a nearly clean array")
	}
	if cands[0].Engine != "identity" {
		t.Errorf("first candidate engine %q, want identity", cands[0].Engine)
	}
	seen := map[string]bool{}
	for _, pl := range cands {
		key := ""
		for _, p := range append(append([]int{}, pl.RowPerm...), pl.ColPerm...) {
			key += string(rune('A' + p))
		}
		if seen[key] {
			t.Errorf("duplicate candidate %v/%v", pl.RowPerm, pl.ColPerm)
		}
		seen[key] = true
		eff, err := d.UnderDefects(dm, pl)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, eff, ref, n)
	}
	// Determinism: same inputs, same candidate list.
	again, err := PlaceCandidates(context.Background(), d, dm, PlaceOptions{Seed: 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(cands) {
		t.Fatalf("candidate count not deterministic: %d vs %d", len(cands), len(again))
	}
	for i := range cands {
		if !equalIntSlice(cands[i].RowPerm, again[i].RowPerm) || !equalIntSlice(cands[i].ColPerm, again[i].ColPerm) {
			t.Errorf("candidate %d not deterministic", i)
		}
	}
}

func equalIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlaceCandidatesCleanArraySingleIdentity(t *testing.T) {
	d, _, _ := synthDesign(t, 7)
	dm, err := defect.New(d.Rows, d.Cols)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := PlaceCandidates(context.Background(), d, dm, PlaceOptions{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Engine != "identity" {
		t.Fatalf("fault-free enumeration should be exactly [identity], got %d candidates", len(cands))
	}
}

func TestPlaceCandidatesDimsError(t *testing.T) {
	d, _, _ := synthDesign(t, 8)
	dm, err := defect.New(d.Rows-1, d.Cols)
	if err != nil {
		t.Fatal(err)
	}
	_, err = PlaceCandidates(context.Background(), d, dm, PlaceOptions{}, 2)
	var up *Unplaceable
	if !errors.As(err, &up) || !up.Proven || up.Stage != "dims" {
		t.Fatalf("undersized array not rejected with a proven dims Unplaceable: %v", err)
	}
}

func TestPlaceCandidatesCanceledContext(t *testing.T) {
	d, _, _ := synthDesign(t, 9)
	dm, err := defect.New(d.Rows+1, d.Cols+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(0, 0, defect.StuckOff); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PlaceCandidates(ctx, d, dm, PlaceOptions{}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context not surfaced: %v", err)
	}
}

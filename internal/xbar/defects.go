package xbar

import (
	"fmt"

	"compact/internal/defect"
)

// Defect-aware evaluation
//
// A defect.Map describes the physical array a logical design is placed
// onto: stuck-ON devices always conduct, stuck-OFF devices never do. A
// Placement (see place.go) chooses which physical wordline/bitline each
// logical row/column occupies; physical lines left unused are assumed
// electrically disconnected (floating spares), so faults on them cannot
// create sneak paths. Under those semantics the placed crossbar computes
// exactly the function of the logical design with each defective crossing
// overridden by its stuck behavior — which is what UnderDefects
// materializes, making every existing evaluator (Eval, VerifyAgainst,
// FormalVerify) defect-aware for free.

// resolvePerms validates pl against d and dm and returns the effective
// row/column permutations (identity when pl is nil).
func resolvePerms(d *Design, dm *defect.Map, pl *Placement) (rowPerm, colPerm []int, err error) {
	physRows, physCols := dm.Rows(), dm.Cols()
	if dm == nil {
		physRows, physCols = d.Rows, d.Cols
	}
	if pl == nil {
		if physRows < d.Rows || physCols < d.Cols {
			return nil, nil, fmt.Errorf("xbar: %dx%d design does not fit the %dx%d physical array", d.Rows, d.Cols, physRows, physCols)
		}
		rowPerm = make([]int, d.Rows)
		colPerm = make([]int, d.Cols)
		for i := range rowPerm {
			rowPerm[i] = i
		}
		for i := range colPerm {
			colPerm[i] = i
		}
		return rowPerm, colPerm, nil
	}
	if len(pl.RowPerm) != d.Rows || len(pl.ColPerm) != d.Cols {
		return nil, nil, fmt.Errorf("xbar: placement shape %dx%d does not match the %dx%d design",
			len(pl.RowPerm), len(pl.ColPerm), d.Rows, d.Cols)
	}
	if err := checkInjective(pl.RowPerm, physRows, "row"); err != nil {
		return nil, nil, err
	}
	if err := checkInjective(pl.ColPerm, physCols, "column"); err != nil {
		return nil, nil, err
	}
	return pl.RowPerm, pl.ColPerm, nil
}

// checkInjective verifies that perm maps injectively into 0..bound-1.
func checkInjective(perm []int, bound int, what string) error {
	seen := make(map[int]bool, len(perm))
	for i, p := range perm {
		if p < 0 || p >= bound {
			return fmt.Errorf("xbar: %s placement maps %d to %d, outside 0..%d", what, i, p, bound-1)
		}
		if seen[p] {
			return fmt.Errorf("xbar: %s placement maps two lines to physical %s %d", what, what, p)
		}
		seen[p] = true
	}
	return nil
}

// UnderDefects returns the effective design the physical array computes:
// the logical design, placed by pl (identity when nil) onto the array
// described by dm, with every cell that lands on a stuck device overridden
// by the stuck behavior (stuck-ON → On, stuck-OFF → Off). Faults on
// physical lines the placement leaves unused are ignored — unused spares
// are disconnected. The result is a deep copy; the receiver is unchanged.
func (d *Design) UnderDefects(dm *defect.Map, pl *Placement) (*Design, error) {
	rowPerm, colPerm, err := resolvePerms(d, dm, pl)
	if err != nil {
		return nil, err
	}
	nd := NewDesign(d.Rows, d.Cols)
	for r := range d.Cells {
		copy(nd.Cells[r], d.Cells[r])
	}
	nd.InputRow = d.InputRow
	nd.OutputRows = append([]int(nil), d.OutputRows...)
	nd.OutputNames = append([]string(nil), d.OutputNames...)
	nd.VarNames = append([]string(nil), d.VarNames...)
	if dm.Len() == 0 {
		return nd, nil
	}
	invRow := inversePerm(rowPerm, dm.Rows())
	invCol := inversePerm(colPerm, dm.Cols())
	for _, fc := range dm.Cells() {
		r, c := invRow[fc.Row], invCol[fc.Col]
		if r < 0 || c < 0 {
			continue // crossing on an unused (disconnected) physical line
		}
		switch fc.Kind {
		case defect.StuckOn:
			nd.Cells[r][c] = Entry{Kind: On}
		case defect.StuckOff:
			nd.Cells[r][c] = Entry{Kind: Off}
		}
	}
	return nd, nil
}

// inversePerm maps physical line -> logical line (-1 where unused).
func inversePerm(perm []int, bound int) []int {
	inv := make([]int, bound)
	for i := range inv {
		inv[i] = -1
	}
	for logical, physical := range perm {
		inv[physical] = logical
	}
	return inv
}

// EvalDefects evaluates the design under a defect map and placement: the
// outputs the physical array actually produces for the assignment. It
// materializes the effective design on every call — callers evaluating
// many assignments should build it once with UnderDefects.
func (d *Design) EvalDefects(assignment []bool, dm *defect.Map, pl *Placement) ([]bool, error) {
	eff, err := d.UnderDefects(dm, pl)
	if err != nil {
		return nil, err
	}
	return eff.EvalChecked(assignment)
}

// ProgramDefects computes the programming plan for an assignment on a
// defective array: RowPatterns reflects the conductance state each device
// actually takes (stuck devices keep their stuck state regardless of the
// intended program), and Switched counts state changes on programmable
// devices only — stuck devices cannot switch, so they never cost write
// energy. prev follows the same convention as Program.
func (d *Design) ProgramDefects(assignment []bool, dm *defect.Map, pl *Placement, prev *Programming) (*Programming, error) {
	eff, err := d.UnderDefects(dm, pl)
	if err != nil {
		return nil, err
	}
	rowPerm, colPerm, err := resolvePerms(d, dm, pl)
	if err != nil {
		return nil, err
	}
	p := &Programming{
		RowPatterns: make([][]bool, d.Rows),
		Steps:       d.Rows + 1,
	}
	for r := range p.RowPatterns {
		p.RowPatterns[r] = make([]bool, d.Cols)
	}
	for _, sc := range eff.sparseCells() {
		on := sc.e.Conducts(assignment)
		p.RowPatterns[sc.row][sc.col] = on
		if _, stuck := dm.At(rowPerm[sc.row], colPerm[sc.col]); stuck {
			continue // stuck devices hold their state for free
		}
		if prev == nil {
			if on {
				p.Switched++
			}
		} else if prev.RowPatterns[sc.row][sc.col] != on {
			p.Switched++
		}
	}
	return p, nil
}

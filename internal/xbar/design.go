// Package xbar represents flow-based-computing crossbar designs and
// implements COMPACT's crossbar mapping step: binding a VH-labeled BDD
// graph to wordlines, bitlines and memristors, then evaluating the design
// by sneak-path reachability.
//
// A Design is a matrix of memristor assignments. Each memristor is
// programmed per evaluation to conduct iff its assigned literal is true
// (Off cells never conduct, On cells always conduct). Applying Vin to the
// input wordline, an output reads 1 iff a conducting path reaches its
// output wordline — computed here with union-find over nanowires.
package xbar

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"compact/internal/errio"
	"compact/internal/invariant"
)

// EntryKind classifies a crossbar cell.
type EntryKind uint8

// Cell kinds.
const (
	Off EntryKind = iota // always high resistance ('0')
	On                   // always low resistance ('1')
	Lit                  // programmed from a Boolean literal
)

// Entry is one memristor assignment. The struct is kept at 8 bytes (a
// crossbar design stores Rows x Cols of them, and the largest benchmark
// produces ~70M cells).
type Entry struct {
	Kind EntryKind
	Neg  bool  // negated literal
	Var  int32 // variable index for Lit cells
}

// String renders the entry as in the paper's figures: 0, 1, a, ¬a.
func (e Entry) String() string { return e.label(nil) }

func (e Entry) label(names []string) string {
	switch e.Kind {
	case Off:
		return "0"
	case On:
		return "1"
	default:
		name := fmt.Sprintf("x%d", e.Var)
		if names != nil && int(e.Var) < len(names) {
			name = names[e.Var]
		}
		if e.Neg {
			return "!" + name
		}
		return name
	}
}

// Design is a complete crossbar representation of a Boolean function.
type Design struct {
	Rows, Cols int
	// Cells is indexed [row][col]; row 0 is the top-most wordline, row
	// Rows-1 the bottom-most (the input wordline, per the paper's
	// alignment convention).
	Cells [][]Entry
	// InputRow is the wordline driven with Vin.
	InputRow int
	// OutputRows holds one wordline per function output (entries may
	// repeat when outputs share a BDD root).
	OutputRows  []int
	OutputNames []string
	// VarNames names the literal variables (indexed by Entry.Var).
	VarNames []string

	// sparse caches the non-Off cells (plus the largest literal variable
	// index) for fast repeated evaluation; it is built lazily on first Eval
	// (published through an atomic pointer so concurrent first Evals are
	// safe — they may build the index twice, but the result is identical),
	// so Cells must not be mutated after the first Eval. UnmarshalJSON
	// resets it when re-decoding in place.
	sparse atomic.Pointer[sparseIndex]
}

type sparseCell struct {
	row, col int
	e        Entry
}

// sparseIndex is the lazily-built evaluation index: the non-Off cells and
// the largest Entry.Var among Lit cells (-1 when there are none), which is
// what EvalChecked validates assignments against. err records the first
// corrupted cell found while indexing — a Lit cell with a negative variable
// index or a cell whose Kind is none of Off/On/Lit. Entry.Conducts treats
// both as "never conducts", so without this check a corrupted in-memory
// design would silently evaluate (and even verify, on lucky samples) as a
// constant; the checked evaluators refuse to evaluate such designs at all.
type sparseIndex struct {
	cells  []sparseCell
	maxVar int32
	err    error
}

func (d *Design) sparseIdx() *sparseIndex {
	if p := d.sparse.Load(); p != nil {
		return p
	}
	idx := &sparseIndex{cells: []sparseCell{}, maxVar: -1}
	for r, row := range d.Cells {
		for c, e := range row {
			if e.Kind != Off {
				idx.cells = append(idx.cells, sparseCell{r, c, e})
			}
			if e.Kind > Lit && idx.err == nil {
				idx.err = invariant.Violationf("xbar.cell-kind",
					"cell (%d,%d) has unknown kind %d", r, c, e.Kind)
			}
			if e.Kind == Lit {
				if e.Var < 0 && idx.err == nil {
					idx.err = invariant.Violationf("xbar.cell-var",
						"cell (%d,%d) references negative variable %d", r, c, e.Var)
				}
				if e.Var > idx.maxVar {
					idx.maxVar = e.Var
				}
			}
		}
	}
	d.sparse.Store(idx)
	return idx
}

func (d *Design) sparseCells() []sparseCell { return d.sparseIdx().cells }

// NumVars returns the number of assignment entries the design requires:
// enough to cover every literal cell and every named variable. Eval
// assignments must be at least this long.
func (d *Design) NumVars() int {
	n := int(d.sparseIdx().maxVar) + 1
	if len(d.VarNames) > n {
		n = len(d.VarNames)
	}
	return n
}

// NewDesign allocates an all-Off crossbar.
func NewDesign(rows, cols int) *Design {
	cells := make([][]Entry, rows)
	backing := make([]Entry, rows*cols)
	for r := range cells {
		cells[r], backing = backing[:cols:cols], backing[cols:]
	}
	return &Design{Rows: rows, Cols: cols, Cells: cells}
}

// Stats summarizes hardware utilization and the paper's cost models.
type Stats struct {
	Rows, Cols int
	S          int // semiperimeter = rows + cols
	D          int // max dimension
	Area       int // rows * cols
	LitCells   int // memristors programmed per evaluation (power model)
	OnCells    int // statically-on memristors (VH stitches etc.)
	// Power is the paper's Section VIII power proxy: the number of
	// memristors programmed from literals per evaluation.
	Power int
	// Delay is the paper's computation-delay proxy: one time step per
	// wordline to program the devices plus one to evaluate.
	Delay int
}

// Stats computes the design's summary statistics.
func (d *Design) Stats() Stats {
	st := Stats{Rows: d.Rows, Cols: d.Cols}
	st.S = d.Rows + d.Cols
	st.D = d.Rows
	if d.Cols > st.D {
		st.D = d.Cols
	}
	st.Area = d.Rows * d.Cols
	for _, row := range d.Cells {
		for _, e := range row {
			switch e.Kind {
			case Lit:
				st.LitCells++
			case On:
				st.OnCells++
			}
		}
	}
	st.Power = st.LitCells
	st.Delay = d.Rows + 1
	return st
}

// Render writes a human-readable matrix view, as in the paper's Figure 2.
func (d *Design) Render(w io.Writer) error {
	width := 1
	labels := make([][]string, d.Rows)
	for r := range d.Cells {
		labels[r] = make([]string, d.Cols)
		for c, e := range d.Cells[r] {
			s := e.label(d.VarNames)
			labels[r][c] = s
			if len(s) > width {
				width = len(s)
			}
		}
	}
	outOf := make(map[int][]string)
	for i, r := range d.OutputRows {
		name := fmt.Sprintf("f%d", i)
		if i < len(d.OutputNames) {
			name = d.OutputNames[i]
		}
		outOf[r] = append(outOf[r], name)
	}
	ew := errio.NewWriter(w)
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			ew.Printf("%*s ", width, labels[r][c])
		}
		var marks []string
		if r == d.InputRow {
			marks = append(marks, "<- Vin")
		}
		if names := outOf[r]; len(names) > 0 {
			marks = append(marks, "-> "+strings.Join(names, ","))
		}
		if len(marks) > 0 {
			ew.Printf(" %s", strings.Join(marks, " "))
		}
		ew.Println()
	}
	return ew.Err()
}

// Conducts reports whether cell e conducts under the assignment (indexed
// by Entry.Var). A literal the assignment does not cover (including a
// negative index) and an unknown Kind never conduct — the defensive
// backstop for corrupted entries; EvalChecked and Eval64Checked report
// both as a structured *invariant.Error (via the sparse-index validation)
// instead of relying on it.
func (e Entry) Conducts(assignment []bool) bool {
	switch e.Kind {
	case On:
		return true
	case Lit:
		if int(e.Var) >= len(assignment) || e.Var < 0 {
			return false
		}
		return assignment[e.Var] != e.Neg
	default:
		return false
	}
}

// Eval evaluates all outputs under the assignment by union-find
// connectivity over nanowires (rows 0..Rows-1, then cols). The assignment
// must cover every literal the design references (len >= NumVars());
// violating that precondition panics with the structured invariant error
// EvalChecked would return — callers evaluating designs decoded from
// untrusted wire data must use EvalChecked.
func (d *Design) Eval(assignment []bool) []bool {
	out, err := d.EvalChecked(assignment)
	if err != nil {
		//lint:ignore panicfree documented Eval precondition on programmer-supplied assignments; EvalChecked is the error-returning form for wire-decoded designs
		panic(err)
	}
	return out
}

// EvalChecked is Eval with the assignment-length precondition checked once
// up front: an assignment shorter than the largest literal index returns
// an *invariant.Error instead of an index-out-of-range panic.
func (d *Design) EvalChecked(assignment []bool) ([]bool, error) {
	idx := d.sparseIdx()
	if idx.err != nil {
		return nil, idx.err
	}
	if int(idx.maxVar) >= len(assignment) {
		return nil, invariant.Violationf("xbar.eval-assignment",
			"assignment has %d entries but the design references variable %d", len(assignment), idx.maxVar)
	}
	if len(d.OutputRows) == 0 && d.Rows == 0 {
		return []bool{}, nil // empty design: nothing to read, nothing to drive
	}
	if d.InputRow < 0 || d.InputRow >= d.Rows {
		return nil, invariant.Violationf("xbar.eval-input-row",
			"input row %d outside 0..%d", d.InputRow, d.Rows-1)
	}
	for i, r := range d.OutputRows {
		if r < 0 || r >= d.Rows {
			return nil, invariant.Violationf("xbar.eval-output-row",
				"output row %d (#%d) outside 0..%d", r, i, d.Rows-1)
		}
	}
	parent := make([]int, d.Rows+d.Cols)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, sc := range idx.cells {
		if sc.e.Conducts(assignment) {
			union(sc.row, d.Rows+sc.col)
		}
	}
	in := find(d.InputRow)
	out := make([]bool, len(d.OutputRows))
	for i, r := range d.OutputRows {
		out[i] = find(r) == in
	}
	return out, nil
}

package xbar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"compact/internal/bdd"
	"compact/internal/labeling"
)

// Property: the synthesized design agrees with the network under every
// labeling method, on random networks and random vectors.
func TestQuickDesignMatchesNetwork(t *testing.T) {
	prop := func(seed int64, vec uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nw := randomNetwork(rng, 5, 12)
		m, roots, err := bdd.BuildNetwork(nw, nil, 0)
		if err != nil {
			return false
		}
		bg, err := FromBDD(m, roots, nw.OutputNames)
		if err != nil {
			return false
		}
		sol, err := labeling.Solve(bg.Problem(true), labeling.Options{Method: labeling.MethodHeuristic})
		if err != nil {
			return false
		}
		d, err := Map(bg, sol.Labels)
		if err != nil {
			return false
		}
		in := make([]bool, 5)
		for i := range in {
			in[i] = vec&(1<<uint(i)) != 0
		}
		want := nw.Eval(in)
		got := d.Eval(in)
		for o := range want {
			if want[o] != got[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Failure injection: corrupting any literal cell of a design must be
// caught by exhaustive verification (the verifier is not vacuous).
func TestFailureInjectionCaughtByVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	caught, injected := 0, 0
	for trial := 0; trial < 10; trial++ {
		nw := randomNetwork(rng, 5, 15)
		m, roots, err := bdd.BuildNetwork(nw, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := FromBDD(m, roots, nw.OutputNames)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := labeling.Solve(bg.Problem(true), labeling.Options{Method: labeling.MethodHeuristic})
		if err != nil {
			t.Fatal(err)
		}
		d, err := Map(bg, sol.Labels)
		if err != nil {
			t.Fatal(err)
		}
		// Flip the polarity of each literal cell in turn.
		for r := 0; r < d.Rows; r++ {
			for c := 0; c < d.Cols; c++ {
				if d.Cells[r][c].Kind != Lit {
					continue
				}
				injected++
				fresh, err := Map(bg, sol.Labels) // clean copy
				if err != nil {
					t.Fatal(err)
				}
				fresh.Cells[r][c].Neg = !fresh.Cells[r][c].Neg
				if bad := fresh.VerifyAgainst(nw.Eval, 5, 10, 0, 1); bad != nil {
					caught++
				}
			}
		}
	}
	if injected == 0 {
		t.Fatal("no literal cells to corrupt")
	}
	// Some flips may be logically redundant (the path is masked), but the
	// vast majority must be detected.
	if caught*10 < injected*8 {
		t.Errorf("only %d/%d injected faults caught", caught, injected)
	}
}

// Failure injection: a stuck-on device (Off -> On) that bridges the wrong
// nanowires must also be caught.
func TestStuckOnFaultCaught(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	caught, injected := 0, 0
	for trial := 0; trial < 10; trial++ {
		nw := randomNetwork(rng, 5, 15)
		m, roots, err := bdd.BuildNetwork(nw, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := FromBDD(m, roots, nw.OutputNames)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := labeling.Solve(bg.Problem(true), labeling.Options{Method: labeling.MethodHeuristic})
		if err != nil {
			t.Fatal(err)
		}
		d, err := Map(bg, sol.Labels)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < d.Rows && injected < 200; r++ {
			for c := 0; c < d.Cols; c++ {
				if d.Cells[r][c].Kind != Off {
					continue
				}
				injected++
				fresh, err := Map(bg, sol.Labels)
				if err != nil {
					t.Fatal(err)
				}
				fresh.Cells[r][c] = Entry{Kind: On}
				if bad := fresh.VerifyAgainst(nw.Eval, 5, 10, 0, 1); bad != nil {
					caught++
				}
			}
		}
	}
	if injected == 0 {
		t.Skip("no Off cells")
	}
	// Stuck-on faults short unrelated wires; most change the function.
	if caught*10 < injected*5 {
		t.Errorf("only %d/%d stuck-on faults caught", caught, injected)
	}
}

package xbar

import (
	"fmt"

	"compact/internal/bdd"
	"compact/internal/graph"
)

// RemapVars rewrites every literal cell's variable index through remap and
// replaces the design's variable names, converting e.g. BDD-level indexing
// into network-input indexing. remap must cover every Var in use.
func (d *Design) RemapVars(remap []int, names []string) error {
	for r, row := range d.Cells {
		for c, e := range row {
			if e.Kind != Lit {
				continue
			}
			if e.Var < 0 || int(e.Var) >= len(remap) {
				return fmt.Errorf("xbar: cell (%d,%d) variable %d outside remap", r, c, e.Var)
			}
			d.Cells[r][c].Var = int32(remap[e.Var])
		}
	}
	d.VarNames = names
	d.sparse.Store(nil) // invalidate the cached cell list
	return nil
}

// FromSeparate builds the merged graph of several per-output ROBDDs, the
// prior-work flow the paper compares SBDDs against (Section VII-A): each
// output's BDD contributes its own nodes, and all BDDs share exactly one
// node — the 1-terminal. Edge literals are resolved into the global
// variable space varNames by variable name, so the resulting designs
// evaluate directly on network-input-order assignments.
func FromSeparate(singles []bdd.Single, varNames []string) (*BDDGraph, error) {
	index := make(map[string]int, len(varNames))
	for i, n := range varNames {
		index[n] = i
	}
	bg := &BDDGraph{
		EdgeLit:    make(map[[2]int]Entry),
		TerminalID: 0,
		VarNames:   varNames,
	}
	// Global id 0 is the shared 1-terminal.
	var levels []int
	levels = append(levels, -1)
	type pending struct {
		u, v int
		lit  Entry
	}
	var edges []pending

	for si := range singles {
		s := &singles[si]
		m := s.Manager
		gid := make(map[bdd.Node]int)
		gid[bdd.One] = 0
		for _, n := range m.Reachable(s.Root) {
			if n == bdd.Zero || n == bdd.One {
				continue
			}
			gid[n] = len(levels)
			levels = append(levels, m.Level(n))
		}
		for _, n := range m.Reachable(s.Root) {
			if n <= bdd.One {
				continue
			}
			v, ok := index[m.VarName(m.Level(n))]
			if !ok {
				return nil, fmt.Errorf("xbar: variable %q of output %q not in global space", m.VarName(m.Level(n)), s.Name)
			}
			if lo := m.Low(n); lo != bdd.Zero {
				edges = append(edges, pending{gid[n], gid[lo], Entry{Kind: Lit, Var: int32(v), Neg: true}})
			}
			if hi := m.High(n); hi != bdd.Zero {
				edges = append(edges, pending{gid[n], gid[hi], Entry{Kind: Lit, Var: int32(v), Neg: false}})
			}
		}
		switch s.Root {
		case bdd.Zero:
			bg.Roots = append(bg.Roots, Root{Kind: RootConst0, NodeID: -1, Name: s.Name})
		case bdd.One:
			bg.Roots = append(bg.Roots, Root{Kind: RootConst1, NodeID: 0, Name: s.Name})
		default:
			bg.Roots = append(bg.Roots, Root{Kind: RootNode, NodeID: gid[s.Root], Name: s.Name})
		}
	}
	bg.Level = levels
	bg.G = graph.New(len(levels))
	for _, e := range edges {
		if err := bg.G.AddEdge(e.u, e.v); err != nil {
			return nil, err
		}
		bg.EdgeLit[edgeKey(e.u, e.v)] = e.lit
	}
	return bg, nil
}

package xbar

import (
	"encoding/json"
	"fmt"

	"compact/internal/wirelimit"
)

// The Design wire format (version 1)
//
// Designs marshal to a sparse JSON object — only non-Off cells are listed,
// since crossbars are overwhelmingly empty (the largest benchmark design
// is ~70M cells, of which a few percent are programmed):
//
//	{
//	  "v": 1,
//	  "rows": 5, "cols": 4,
//	  "input_row": 4,
//	  "output_rows": [0, 1],
//	  "output_names": ["f", "g"],
//	  "var_names": ["a", "b", "c"],
//	  "cells": [
//	    {"r": 0, "c": 1, "k": "on"},
//	    {"r": 2, "c": 0, "k": "lit", "var": 2},
//	    {"r": 3, "c": 2, "k": "lit", "var": 0, "neg": true}
//	  ]
//	}
//
// Cells appear in row-major order; "k" is "on" for statically conducting
// devices and "lit" for literal-programmed ones ("var" indexes var_names,
// "neg" marks a complemented literal). UnmarshalJSON validates every
// reference — dimensions, cell coordinates, duplicate cells, variable and
// row indices — so a decoded design is structurally sound and Eval-able,
// or the decode fails with a descriptive error.

// designWireVersion is the current wire format version; UnmarshalJSON
// accepts exactly this value (or an absent field, treated as 1).
const designWireVersion = 1

type designJSON struct {
	Version     int        `json:"v"`
	Rows        int        `json:"rows"`
	Cols        int        `json:"cols"`
	InputRow    int        `json:"input_row"`
	OutputRows  []int      `json:"output_rows"`
	OutputNames []string   `json:"output_names,omitempty"`
	VarNames    []string   `json:"var_names,omitempty"`
	Cells       []cellJSON `json:"cells"`
}

type cellJSON struct {
	Row int    `json:"r"`
	Col int    `json:"c"`
	K   string `json:"k"`
	Var int32  `json:"var,omitempty"`
	Neg bool   `json:"neg,omitempty"`
}

// MarshalJSON encodes the design in the sparse wire format above.
func (d *Design) MarshalJSON() ([]byte, error) {
	dj := designJSON{
		Version:     designWireVersion,
		Rows:        d.Rows,
		Cols:        d.Cols,
		InputRow:    d.InputRow,
		OutputRows:  d.OutputRows,
		OutputNames: d.OutputNames,
		VarNames:    d.VarNames,
		Cells:       []cellJSON{},
	}
	if dj.OutputRows == nil {
		dj.OutputRows = []int{}
	}
	for r, row := range d.Cells {
		for c, e := range row {
			switch e.Kind {
			case Off:
			case On:
				dj.Cells = append(dj.Cells, cellJSON{Row: r, Col: c, K: "on"})
			case Lit:
				dj.Cells = append(dj.Cells, cellJSON{Row: r, Col: c, K: "lit", Var: e.Var, Neg: e.Neg})
			default:
				return nil, fmt.Errorf("xbar: cell (%d,%d) has unknown kind %d", r, c, e.Kind)
			}
		}
	}
	return json.Marshal(dj)
}

// UnmarshalJSON decodes and validates the sparse wire format. The decoded
// design is fully usable: Eval, Render, Stats and verification all work on
// it. Unknown wire versions and any out-of-range reference are rejected.
func (d *Design) UnmarshalJSON(data []byte) error {
	var dj designJSON
	if err := json.Unmarshal(data, &dj); err != nil {
		return fmt.Errorf("xbar: decoding design: %w", err)
	}
	if dj.Version == 0 {
		dj.Version = designWireVersion
	}
	if dj.Version != designWireVersion {
		return fmt.Errorf("xbar: unsupported design wire version %d (want %d)", dj.Version, designWireVersion)
	}
	// Both dimensions are capped individually before the product check:
	// the old product-only guard had a hole (a huge row count with zero
	// columns passed it, and NewDesign's per-row slice allocation OOMed).
	const maxWireCells = 1 << 31
	if err := wirelimit.CheckCells("design", dj.Rows, dj.Cols, maxWireCells); err != nil {
		return fmt.Errorf("xbar: %v", err)
	}
	if dj.Rows > 0 && (dj.InputRow < 0 || dj.InputRow >= dj.Rows) {
		return fmt.Errorf("xbar: input row %d outside 0..%d", dj.InputRow, dj.Rows-1)
	}
	for i, r := range dj.OutputRows {
		if r < 0 || r >= dj.Rows {
			return fmt.Errorf("xbar: output row %d (#%d) outside 0..%d", r, i, dj.Rows-1)
		}
	}
	if len(dj.OutputNames) > 0 && len(dj.OutputNames) != len(dj.OutputRows) {
		return fmt.Errorf("xbar: %d output names for %d output rows", len(dj.OutputNames), len(dj.OutputRows))
	}
	nd := NewDesign(dj.Rows, dj.Cols)
	nd.InputRow = dj.InputRow
	nd.OutputRows = append([]int(nil), dj.OutputRows...)
	nd.OutputNames = append([]string(nil), dj.OutputNames...)
	nd.VarNames = append([]string(nil), dj.VarNames...)
	for i, c := range dj.Cells {
		if c.Row < 0 || c.Row >= dj.Rows || c.Col < 0 || c.Col >= dj.Cols {
			return fmt.Errorf("xbar: cell #%d at (%d,%d) outside %dx%d", i, c.Row, c.Col, dj.Rows, dj.Cols)
		}
		if nd.Cells[c.Row][c.Col].Kind != Off {
			return fmt.Errorf("xbar: duplicate cell at (%d,%d)", c.Row, c.Col)
		}
		switch c.K {
		case "on":
			nd.Cells[c.Row][c.Col] = Entry{Kind: On}
		case "lit":
			if c.Var < 0 {
				return fmt.Errorf("xbar: cell #%d has negative variable %d", i, c.Var)
			}
			if len(dj.VarNames) > 0 && int(c.Var) >= len(dj.VarNames) {
				return fmt.Errorf("xbar: cell #%d references variable %d of %d", i, c.Var, len(dj.VarNames))
			}
			nd.Cells[c.Row][c.Col] = Entry{Kind: Lit, Var: c.Var, Neg: c.Neg}
		default:
			return fmt.Errorf("xbar: cell #%d has unknown kind %q", i, c.K)
		}
	}
	d.Rows, d.Cols = nd.Rows, nd.Cols
	d.Cells = nd.Cells
	d.InputRow = nd.InputRow
	d.OutputRows = nd.OutputRows
	d.OutputNames = nd.OutputNames
	d.VarNames = nd.VarNames
	d.sparse.Store(nil) // drop any stale sparse cache from a prior decode
	return nil
}

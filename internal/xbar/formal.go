package xbar

import (
	"errors"
	"fmt"

	"compact/internal/bdd"
	"compact/internal/logic"
)

// SymbolicOutputs computes the exact Boolean function each output wordline
// realizes, as canonical BDDs over the design's variables: a symbolic
// sneak-path fixpoint. conn(w) is the predicate "wire w is electrically
// connected to the input wordline under the assignment"; every programmed
// device (r, c, literal) contributes conn(r) |= literal ∧ conn(c) and
// conn(c) |= literal ∧ conn(r), iterated to the least fixpoint — the
// symbolic counterpart of the union-find evaluation, covering ALL 2^n
// assignments at once.
//
// nodeLimit bounds the BDD size (0 = default 4M); designs whose symbolic
// closure blows past it return bdd.ErrNodeLimit.
func SymbolicOutputs(d *Design, nodeLimit int) (m *bdd.Manager, outs []bdd.Node, err error) {
	if nodeLimit <= 0 {
		nodeLimit = 4_000_000
	}
	names := d.VarNames
	if names == nil {
		return nil, nil, errors.New("xbar: design has no variable names")
	}
	m = bdd.New(names)
	m.SetNodeLimit(nodeLimit)
	defer func() {
		if r := recover(); r != nil {
			m, outs, err = nil, nil, bdd.BoundaryError(r)
		}
	}()

	nWires := d.Rows + d.Cols
	conn := make([]bdd.Node, nWires)
	for i := range conn {
		conn[i] = bdd.Zero
	}
	conn[d.InputRow] = bdd.One

	lit := func(e Entry) bdd.Node {
		switch e.Kind {
		case On:
			return bdd.One
		case Lit:
			if e.Neg {
				return m.NVar(int(e.Var))
			}
			return m.Var(int(e.Var))
		}
		return bdd.Zero
	}
	cells := d.sparseCells()
	for {
		changed := false
		for _, sc := range cells {
			l := lit(sc.e)
			r, c := sc.row, d.Rows+sc.col
			if nr := m.Or(conn[r], m.And(l, conn[c])); nr != conn[r] {
				conn[r] = nr
				changed = true
			}
			if nc := m.Or(conn[c], m.And(l, conn[r])); nc != conn[c] {
				conn[c] = nc
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	outs = make([]bdd.Node, len(d.OutputRows))
	for i, r := range d.OutputRows {
		outs[i] = conn[r]
	}
	return m, outs, nil
}

// FormalVerify proves (for every one of the 2^n input assignments) that
// the design computes exactly the same functions as the network, by
// comparing canonical BDDs: the network's outputs and the design's
// symbolic sneak-path functions are built in one manager, where equality
// is pointer equality. The design's variables must be in network-input
// order (which core.Synthesize guarantees). On disagreement the returned
// error names the first mismatching output and a witness assignment.
func FormalVerify(d *Design, nw *logic.Network, nodeLimit int) error {
	if len(d.VarNames) != nw.NumInputs() {
		return fmt.Errorf("xbar: design has %d variables, network %d inputs", len(d.VarNames), nw.NumInputs())
	}
	m, designOuts, err := SymbolicOutputs(d, nodeLimit)
	if err != nil {
		return fmt.Errorf("xbar: symbolic closure: %w", err)
	}
	refOuts, err := m.BuildRoots(nw, nil)
	if err != nil {
		return err
	}
	if len(designOuts) != len(refOuts) {
		return fmt.Errorf("xbar: output count mismatch: %d vs %d", len(designOuts), len(refOuts))
	}
	for o := range refOuts {
		if designOuts[o] == refOuts[o] {
			continue
		}
		diff := m.Xor(designOuts[o], refOuts[o])
		witness := m.AnySat(diff)
		return fmt.Errorf("xbar: output %q differs from the network, e.g. on input %v",
			nw.OutputNames[o], witness[:nw.NumInputs()])
	}
	return nil
}

package xbar

// Programming is the concrete device-programming plan behind the paper's
// evaluation-phase cost model (§VIII): the crossbar is written one
// wordline at a time — rows+1 time steps including the final evaluate —
// and energy follows the number of devices whose state actually switches.
type Programming struct {
	// RowPatterns[r][c] is the conductance state written to cell (r, c).
	RowPatterns [][]bool
	// Steps is the paper's delay model: one write step per wordline plus
	// one evaluation step.
	Steps int
	// Switched counts devices whose state differs from the previous
	// programming (all initially-on devices when there is none) — the
	// energy-relevant write count.
	Switched int
}

// Program computes the programming plan for an assignment. prev, when
// non-nil, is the plan already resident in the array; only devices whose
// state changes count as switched (literal cells tracking unchanged
// variables, Off cells and On stitches never switch between evaluations).
func (d *Design) Program(assignment []bool, prev *Programming) *Programming {
	p := &Programming{
		RowPatterns: make([][]bool, d.Rows),
		Steps:       d.Rows + 1,
	}
	for r := range p.RowPatterns {
		p.RowPatterns[r] = make([]bool, d.Cols)
	}
	for _, sc := range d.sparseCells() {
		on := sc.e.Conducts(assignment)
		p.RowPatterns[sc.row][sc.col] = on
		if prev == nil {
			if on {
				p.Switched++
			}
		} else if prev.RowPatterns[sc.row][sc.col] != on {
			p.Switched++
		}
	}
	return p
}

// EvalProgrammed evaluates the crossbar from an explicit programming plan
// rather than an assignment — the two must agree for plans produced by
// Program (tested), and the method doubles as a fault-injection hook.
func (d *Design) EvalProgrammed(p *Programming) []bool {
	parent := make([]int, d.Rows+d.Cols)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for r, row := range p.RowPatterns {
		for c, on := range row {
			if on {
				ra, rb := find(r), find(d.Rows+c)
				if ra != rb {
					parent[ra] = rb
				}
			}
		}
	}
	in := find(d.InputRow)
	out := make([]bool, len(d.OutputRows))
	for i, r := range d.OutputRows {
		out[i] = find(r) == in
	}
	return out
}

package xbar

import (
	"fmt"
	"io"

	"compact/internal/errio"
)

// WriteSVG renders the design as a scalable vector graphic: wordlines as
// horizontal rails, bitlines as vertical rails, and one circle per
// programmed memristor — green for always-on, blue for positive literals,
// red for negated ones. The input wordline is marked with the drive arrow
// and every output wordline with its sense label, mirroring the paper's
// crossbar figures.
func (d *Design) WriteSVG(w io.Writer) error {
	const (
		cell   = 26
		margin = 70
	)
	width := margin*2 + (d.Cols-1)*cell
	height := margin*2 + (d.Rows-1)*cell
	if d.Cols == 1 {
		width = margin * 2
	}
	if d.Rows == 1 {
		height = margin * 2
	}
	x := func(c int) int { return margin + c*cell }
	y := func(r int) int { return margin + r*cell }
	ew := errio.NewWriter(w)

	ew.Printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	ew.Printf(`<rect width="100%%" height="100%%" fill="white"/>` + "\n")

	// Rails.
	for r := 0; r < d.Rows; r++ {
		ew.Printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#444" stroke-width="2"/>`+"\n",
			x(0)-cell/2, y(r), x(d.Cols-1)+cell/2, y(r))
	}
	for c := 0; c < d.Cols; c++ {
		ew.Printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999" stroke-width="2"/>`+"\n",
			x(c), y(0)-cell/2, x(c), y(d.Rows-1)+cell/2)
	}

	// Devices.
	for r, row := range d.Cells {
		for c, e := range row {
			var fill string
			switch e.Kind {
			case Off:
				continue
			case On:
				fill = "#2e7d32" // green
			case Lit:
				if e.Neg {
					fill = "#c62828" // red
				} else {
					fill = "#1565c0" // blue
				}
			}
			ew.Printf(`<circle cx="%d" cy="%d" r="7" fill="%s"/>`+"\n", x(c), y(r), fill)
			if e.Kind == Lit {
				ew.Printf(`<text x="%d" y="%d" font-size="9" font-family="monospace" text-anchor="middle" fill="white">%s</text>`+"\n",
					x(c), y(r)+3, svgEscape(shortLabel(e, d.VarNames)))
			}
		}
	}

	// Ports.
	ew.Printf(`<text x="%d" y="%d" font-size="12" font-family="monospace" text-anchor="end" fill="#2e7d32">Vin&#8594;</text>`+"\n",
		x(0)-cell/2-4, y(d.InputRow)+4)
	seen := map[int]bool{}
	for i, r := range d.OutputRows {
		if seen[r] {
			continue
		}
		seen[r] = true
		name := fmt.Sprintf("f%d", i)
		if i < len(d.OutputNames) {
			name = d.OutputNames[i]
		}
		ew.Printf(`<text x="%d" y="%d" font-size="12" font-family="monospace" fill="#1565c0">&#8594;%s</text>`+"\n",
			x(d.Cols-1)+cell/2+4, y(r)+4, svgEscape(name))
	}
	ew.Println("</svg>")
	return ew.Err()
}

// shortLabel abbreviates a literal for the small in-circle text.
func shortLabel(e Entry, names []string) string {
	s := e.label(names)
	if len(s) > 4 {
		s = s[:4]
	}
	return s
}

func svgEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

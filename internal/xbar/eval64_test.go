package xbar

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// randomDesign builds an in-memory design with a mix of Off/On/Lit cells.
func randomDesign(rng *rand.Rand, rows, cols, nVars int) *Design {
	d := NewDesign(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			switch rng.Intn(6) {
			case 0:
				d.Cells[r][c] = Entry{Kind: On}
			case 1, 2:
				d.Cells[r][c] = Entry{Kind: Lit, Var: int32(rng.Intn(nVars)), Neg: rng.Intn(2) == 0}
			}
		}
	}
	d.InputRow = rng.Intn(rows)
	nOut := 1 + rng.Intn(3)
	for i := 0; i < nOut; i++ {
		d.OutputRows = append(d.OutputRows, rng.Intn(rows))
	}
	return d
}

// TestEval64MatchesScalar is the in-process differential property: on
// random designs and random assignment words, Eval64Checked must agree
// bit-for-bit with 64 scalar EvalChecked calls.
func TestEval64MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nVars := 1 + rng.Intn(6)
		d := randomDesign(rng, 2+rng.Intn(6), 1+rng.Intn(6), nVars)
		words := make([]uint64, nVars)
		for i := range words {
			words[i] = rng.Uint64()
		}
		got, err := d.Eval64Checked(words)
		if err != nil {
			t.Fatalf("trial %d: Eval64Checked: %v", trial, err)
		}
		in := make([]bool, nVars)
		for b := 0; b < 64; b++ {
			for i := range in {
				in[i] = words[i]>>uint(b)&1 == 1
			}
			want, err := d.EvalChecked(in)
			if err != nil {
				t.Fatalf("trial %d: EvalChecked: %v", trial, err)
			}
			for o := range want {
				if want[o] != (got[o]>>uint(b)&1 == 1) {
					t.Fatalf("trial %d: output %d assignment bit %d: scalar %v, word %v",
						trial, o, b, want[o], got[o]>>uint(b)&1 == 1)
				}
			}
		}
	}
}

// scalarVerify is the pre-word-parallel VerifyAgainst, kept verbatim as the
// reference oracle for witness-order parity tests.
func scalarVerify(d *Design, ref func([]bool) []bool, nVars, exhaustiveLimit, samples int, seed uint64) []bool {
	check := func(in []bool) []bool {
		want := ref(in)
		got, err := d.EvalChecked(in)
		if err != nil || len(got) < len(want) {
			return append([]bool(nil), in...)
		}
		for o := range want {
			if want[o] != got[o] {
				return append([]bool(nil), in...)
			}
		}
		return nil
	}
	in := make([]bool, nVars)
	if nVars <= exhaustiveLimit {
		for a := 0; a < 1<<uint(nVars); a++ {
			for i := range in {
				in[i] = a&(1<<uint(i)) != 0
			}
			if bad := check(in); bad != nil {
				return bad
			}
		}
		return nil
	}
	state := seed | 1
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state
	}
	for s := 0; s < samples; s++ {
		for i := range in {
			in[i] = next()>>33&1 != 0
		}
		if bad := check(in); bad != nil {
			return bad
		}
	}
	return nil
}

func boolsEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVerifyAgainstWitnessParity checks the word-parallel VerifyAgainst
// returns exactly the witness (or nil) the scalar implementation would, in
// both exhaustive and sampled modes, against references that disagree with
// the design in various places.
func TestVerifyAgainstWitnessParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		nVars := 1 + rng.Intn(8)
		d := randomDesign(rng, 2+rng.Intn(5), 1+rng.Intn(5), nVars)
		// Reference: the design itself, with outputs flipped on a random
		// subset of assignments (possibly empty → verification passes).
		flipMask := rng.Uint64()
		ref := func(in []bool) []bool {
			out, err := d.EvalChecked(in)
			if err != nil {
				t.Fatalf("ref eval: %v", err)
			}
			key := uint64(0)
			for i, v := range in {
				if v {
					key |= 1 << uint(i%64)
				}
			}
			if flipMask&(1<<(key%64)) != 0 {
				for o := range out {
					out[o] = !out[o]
				}
			}
			return out
		}
		for _, mode := range []struct {
			limit, samples int
		}{{nVars, 0}, {nVars - 1, 100}} {
			want := scalarVerify(d, ref, nVars, mode.limit, mode.samples, 9)
			got := d.VerifyAgainst(ref, nVars, mode.limit, mode.samples, 9)
			if (want == nil) != (got == nil) || (want != nil && !boolsEq(want, got)) {
				t.Fatalf("trial %d limit=%d samples=%d: scalar witness %v, word witness %v",
					trial, mode.limit, mode.samples, want, got)
			}
		}
	}
}

// TestVerifyAgainst64MatchesScalarRef checks the fully word-parallel
// variant against a word-level reference built from the scalar one.
func TestVerifyAgainst64MatchesScalarRef(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nVars := 1 + rng.Intn(7)
		d := randomDesign(rng, 2+rng.Intn(5), 1+rng.Intn(5), nVars)
		ref := func(in []bool) []bool {
			out, err := d.EvalChecked(in)
			if err != nil {
				t.Fatalf("ref eval: %v", err)
			}
			return out
		}
		ref64 := func(words []uint64) []uint64 {
			out := make([]uint64, len(d.OutputRows))
			in := make([]bool, nVars)
			for b := 0; b < 64; b++ {
				for i := range in {
					in[i] = words[i]>>uint(b)&1 == 1
				}
				for o, v := range ref(in) {
					if v {
						out[o] |= 1 << uint(b)
					}
				}
			}
			return out
		}
		if bad := d.VerifyAgainst64(ref64, nVars, nVars, 0, 1); bad != nil {
			t.Fatalf("trial %d: exhaustive self-verify found bogus witness %v", trial, bad)
		}
		if bad := d.VerifyAgainst64(ref64, nVars, nVars-1, 130, 1); bad != nil {
			t.Fatalf("trial %d: sampled self-verify found bogus witness %v", trial, bad)
		}
	}
}

// TestVerifyAgainstOverflowClamp is the regression for the 1<<nVars
// overflow: with nVars = 63 and an exhaustiveLimit that nominally allows
// exhaustive mode, the old implementation's loop bound overflowed to a
// negative int and the loop body never ran — a wrong design "verified".
// The clamp must fall back to sampling (with a non-zero default even when
// the caller asked for 0 samples) and find the mismatch.
func TestVerifyAgainstOverflowClamp(t *testing.T) {
	// Two disconnected rows: output row 0 never reaches input row 1, so the
	// design computes constant false; the reference says constant true.
	d := NewDesign(2, 1)
	d.InputRow = 1
	d.OutputRows = []int{0}
	ref := func(in []bool) []bool { return []bool{true} }
	for _, nVars := range []int{63, 64, 40} {
		if bad := d.VerifyAgainst(ref, nVars, 100, 0, 1); bad == nil {
			t.Fatalf("nVars=%d: constant-false design verified against constant-true reference", nVars)
		}
	}
	// Same clamp in the word-parallel variant.
	ref64 := func(words []uint64) []uint64 { return []uint64{^uint64(0)} }
	if bad := d.VerifyAgainst64(ref64, 63, 100, 0, 1); bad == nil {
		t.Fatalf("VerifyAgainst64 nVars=63: constant-false design verified against constant-true reference")
	}
}

// TestCorruptedCellsFailLoudly is the regression for Conducts silently
// treating corrupted entries as non-conducting: a Lit cell with a negative
// variable index or an unknown Kind must make the checked evaluators
// return an *invariant.Error, and VerifyAgainst must report a witness
// rather than verifying the design.
func TestCorruptedCellsFailLoudly(t *testing.T) {
	mk := func(e Entry) *Design {
		d := NewDesign(2, 1)
		d.InputRow = 1
		d.OutputRows = []int{0}
		d.Cells[0][0] = e
		return d
	}
	for name, e := range map[string]Entry{
		"negative-var": {Kind: Lit, Var: -3},
		"unknown-kind": {Kind: EntryKind(7)},
	} {
		d := mk(e)
		if _, err := d.EvalChecked([]bool{true}); err == nil {
			t.Errorf("%s: EvalChecked accepted a corrupted design", name)
		}
		if _, err := d.Eval64Checked([]uint64{0}); err == nil {
			t.Errorf("%s: Eval64Checked accepted a corrupted design", name)
		}
		ref := func(in []bool) []bool { return []bool{false} }
		if bad := d.VerifyAgainst(ref, 1, 4, 0, 1); bad == nil {
			t.Errorf("%s: VerifyAgainst verified a corrupted design", name)
		}
	}
}

// FuzzEval64VsScalar is the differential fuzz target: any design the wire
// decoder accepts must evaluate identically under the scalar union-find
// oracle and the word-parallel bitset closure, on seeded pseudo-random
// assignment words.
func FuzzEval64VsScalar(f *testing.F) {
	f.Add([]byte(`{"v":1,"rows":2,"cols":2,"input_row":1,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"lit","var":0},{"r":1,"c":0,"k":"on"}]}`), uint64(1))
	f.Add([]byte(`{"v":1,"rows":3,"cols":2,"input_row":2,"output_rows":[0,0],"var_names":["a","b"],"cells":[{"r":0,"c":1,"k":"lit","var":0,"neg":true},{"r":1,"c":1,"k":"lit","var":1},{"r":2,"c":0,"k":"on"},{"r":1,"c":0,"k":"on"}]}`), uint64(99))
	f.Add([]byte(`{"v":1,"rows":1,"cols":1,"input_row":0,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"lit","var":1000}]}`), uint64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		var d Design
		if err := json.Unmarshal(data, &d); err != nil {
			return
		}
		nVars := d.NumVars()
		if nVars > 1<<16 {
			return // decoder-accepted but absurd; words allocation only
		}
		state := seed | 1
		words := make([]uint64, nVars)
		for i := range words {
			state = state*6364136223846793005 + 1442695040888963407
			words[i] = state
		}
		got, err64 := d.Eval64Checked(words)
		in := make([]bool, nVars)
		for b := 0; b < 64; b++ {
			for i := range in {
				in[i] = words[i]>>uint(b)&1 == 1
			}
			want, err := d.EvalChecked(in)
			if (err == nil) != (err64 == nil) {
				t.Fatalf("checked-eval error disagreement: scalar %v, word %v", err, err64)
			}
			if err != nil {
				return
			}
			for o := range want {
				if want[o] != (got[o]>>uint(b)&1 == 1) {
					t.Fatalf("output %d bit %d: scalar %v, word %v", o, b, want[o], got[o])
				}
			}
		}
	})
}

// benchDesign builds a deterministic dense-ish design for the verification
// benchmarks: big enough that the closure dominates, small enough that an
// exhaustive sweep over 2^14 assignments stays meaningful.
func benchDesign() (*Design, int) {
	rng := rand.New(rand.NewSource(1))
	nVars := 14
	d := randomDesign(rng, 24, 24, nVars)
	return d, nVars
}

// BenchmarkVerifyExhaustiveScalar measures the pre-word baseline: one
// scalar union-find evaluation per assignment (the reference oracle).
func BenchmarkVerifyExhaustiveScalar(b *testing.B) {
	d, nVars := benchDesign()
	ref := func(in []bool) []bool { out, _ := d.EvalChecked(in); return out }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bad := scalarVerify(d, ref, nVars, nVars, 0, 1); bad != nil {
			b.Fatalf("self-verify failed: %v", bad)
		}
	}
}

// BenchmarkVerifyExhaustiveWord64 measures the word-parallel path doing
// the same 2^14-assignment sweep 64 assignments per closure. The reference
// side is word-parallel too (the design itself), isolating the kernel.
func BenchmarkVerifyExhaustiveWord64(b *testing.B) {
	d, nVars := benchDesign()
	ref64 := func(words []uint64) []uint64 { out, _ := d.Eval64Checked(words); return out }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bad := d.VerifyAgainst64(ref64, nVars, nVars, 0, 1); bad != nil {
			b.Fatalf("self-verify failed: %v", bad)
		}
	}
}

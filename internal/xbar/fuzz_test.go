package xbar

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"compact/internal/invariant"
)

// FuzzDesignJSON asserts that decoding arbitrary bytes as a Design never
// panics, that any design the decoder accepts can be evaluated safely
// (Eval with a NumVars-sized assignment, EvalChecked with a deliberately
// short one), and that accepted designs survive an encode → decode round
// trip byte-for-byte.
func FuzzDesignJSON(f *testing.F) {
	seeds := []string{
		`{"v":1,"rows":2,"cols":2,"input_row":1,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"lit","var":0},{"r":1,"c":0,"k":"on"}]}`,
		`{"v":1,"rows":0,"cols":0,"input_row":0,"output_rows":[],"cells":[]}`,
		`{"v":1,"rows":3,"cols":2,"input_row":2,"output_rows":[0,0],"output_names":["f","g"],"var_names":["a"],"cells":[{"r":0,"c":1,"k":"lit","var":0,"neg":true}]}`,
		// Accepted by the decoder: no var_names, so the large literal index
		// is unchecked at decode time — Eval must still be safe.
		`{"v":1,"rows":1,"cols":1,"input_row":0,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"lit","var":1000}]}`,
		// Rejected inputs: bad version, bad coordinates, duplicate cell,
		// unknown kind, out-of-range references.
		`{"v":2,"rows":1,"cols":1}`,
		`{"v":1,"rows":-1,"cols":4}`,
		`{"v":1,"rows":1,"cols":1,"input_row":5,"output_rows":[0]}`,
		`{"v":1,"rows":2,"cols":2,"input_row":0,"output_rows":[9]}`,
		`{"v":1,"rows":2,"cols":2,"input_row":0,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"on"},{"r":0,"c":0,"k":"on"}]}`,
		`{"v":1,"rows":2,"cols":2,"input_row":0,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"wat"}]}`,
		`{"v":1,"rows":2,"cols":2,"input_row":0,"output_rows":[0],"var_names":["a"],"cells":[{"r":0,"c":0,"k":"lit","var":7}]}`,
		`not json`,
		`{}`,
		`[]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Design
		if err := json.Unmarshal(data, &d); err != nil {
			return
		}
		// Accepted designs must be evaluable with a sufficient assignment…
		if len(d.OutputRows) > 0 || d.Rows > 0 {
			out := d.Eval(make([]bool, d.NumVars()))
			if len(out) != len(d.OutputRows) {
				t.Fatalf("Eval returned %d outputs for %d output rows", len(out), len(d.OutputRows))
			}
		}
		// …and a short assignment must fail closed, never panic. (NumVars
		// also counts named-but-unreferenced variables, which EvalChecked
		// does not require the assignment to cover — hence the Lit scan.)
		hasLit := false
		for _, row := range d.Cells {
			for _, e := range row {
				hasLit = hasLit || e.Kind == Lit
			}
		}
		if hasLit {
			if _, err := d.EvalChecked(nil); err == nil {
				t.Fatal("EvalChecked accepted a nil assignment for a design with literals")
			}
		}
		enc, err := json.Marshal(&d)
		if err != nil {
			t.Fatalf("re-encoding an accepted design failed: %v", err)
		}
		var d2 Design
		if err := json.Unmarshal(enc, &d2); err != nil {
			t.Fatalf("round trip rejected its own output: %v\n%s", err, enc)
		}
		enc2, err := json.Marshal(&d2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip not byte-stable:\n%s\n%s", enc, enc2)
		}
	})
}

// TestDecodedDesignShortAssignment is the deterministic regression for the
// wire-decode hole the fuzz target covers: with no var_names the decoder
// cannot bound literal indices, so evaluation must catch the short
// assignment itself rather than panic with an index error.
func TestDecodedDesignShortAssignment(t *testing.T) {
	raw := `{"v":1,"rows":1,"cols":1,"input_row":0,"output_rows":[0],"cells":[{"r":0,"c":0,"k":"lit","var":1000}]}`
	var d Design
	if err := json.Unmarshal([]byte(raw), &d); err != nil {
		t.Fatal(err)
	}
	if got, want := d.NumVars(), 1001; got != want {
		t.Fatalf("NumVars = %d, want %d", got, want)
	}
	_, err := d.EvalChecked(make([]bool, 3))
	var ie *invariant.Error
	if !errors.As(err, &ie) {
		t.Fatalf("EvalChecked error %v is not an *invariant.Error", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Eval did not panic on a short assignment")
		}
		if _, ok := r.(*invariant.Error); !ok {
			t.Fatalf("Eval panicked with %T %v, want *invariant.Error", r, r)
		}
	}()
	d.Eval(make([]bool, 3))
}

// TestEntryConductsShortAssignment pins the cell-level backstop: a literal
// the assignment does not cover never conducts (and never panics).
func TestEntryConductsShortAssignment(t *testing.T) {
	e := Entry{Kind: Lit, Var: 5}
	if e.Conducts([]bool{true, true}) {
		t.Fatal("uncovered literal conducts")
	}
	if (Entry{Kind: Lit, Var: -1}).Conducts([]bool{true}) {
		t.Fatal("negative literal index conducts")
	}
	neg := Entry{Kind: Lit, Var: 9, Neg: true}
	if neg.Conducts(nil) {
		t.Fatal("uncovered negated literal conducts")
	}
}

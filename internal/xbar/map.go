package xbar

import (
	"fmt"

	"compact/internal/invariant"
	"compact/internal/labeling"
)

// Map performs the paper's crossbar mapping step (Section V-C): nodes are
// bound to wordlines/bitlines according to their labels, VH nodes get a
// statically-on memristor stitching their wordline to their bitline, and
// every graph edge becomes a memristor programmed with its literal.
//
// Wordline order follows the alignment convention: output roots top-most,
// interior wordlines in between, and the 1-terminal (input port) as the
// bottom-most wordline. A labeling produced with alignment disabled is
// still mappable as long as it is valid; output rows then land wherever
// their nodes were bound (roots labeled V-only are rejected — callers
// wanting sensable outputs must label with alignment).
func Map(bg *BDDGraph, labels []labeling.Label) (*Design, error) {
	if err := labeling.Validate(labeling.Problem{G: bg.G}, labels); err != nil {
		return nil, fmt.Errorf("xbar: %w", err)
	}
	n := bg.G.N()
	for _, r := range bg.Roots {
		if r.Kind == RootNode && !labels[r.NodeID].HasH() {
			return nil, fmt.Errorf("xbar: output %q root labeled %s; outputs must lie on wordlines", r.Name, labels[r.NodeID])
		}
	}
	if !labels[bg.TerminalID].HasH() {
		return nil, fmt.Errorf("xbar: 1-terminal labeled %s; the input port must lie on a wordline", labels[bg.TerminalID])
	}

	// Row order: const-0 row (if needed), root rows in output order,
	// interior wordlines, terminal row last (bottom).
	rowOf := make([]int, n)
	colOf := make([]int, n)
	for i := range rowOf {
		rowOf[i], colOf[i] = -1, -1
	}
	nextRow := 0
	needConst0 := false
	for _, r := range bg.Roots {
		if r.Kind == RootConst0 {
			needConst0 = true
		}
	}
	const0Row := -1
	if needConst0 {
		const0Row = nextRow
		nextRow++
	}
	for _, r := range bg.Roots {
		if r.Kind == RootNode && r.NodeID != bg.TerminalID && rowOf[r.NodeID] < 0 {
			rowOf[r.NodeID] = nextRow
			nextRow++
		}
	}
	for v := 0; v < n; v++ {
		if v == bg.TerminalID || rowOf[v] >= 0 || !labels[v].HasH() {
			continue
		}
		rowOf[v] = nextRow
		nextRow++
	}
	rowOf[bg.TerminalID] = nextRow
	nextRow++

	nextCol := 0
	for v := 0; v < n; v++ {
		if labels[v].HasV() {
			colOf[v] = nextCol
			nextCol++
		}
	}
	if nextCol == 0 {
		// Degenerate single-node graphs (e.g. f ≡ 1 only) still need one
		// bitline for a well-formed crossbar.
		nextCol = 1
	}

	d := NewDesign(nextRow, nextCol)
	d.VarNames = bg.VarNames
	d.InputRow = rowOf[bg.TerminalID]
	for _, r := range bg.Roots {
		d.OutputNames = append(d.OutputNames, r.Name)
		switch r.Kind {
		case RootConst0:
			d.OutputRows = append(d.OutputRows, const0Row)
		case RootConst1:
			d.OutputRows = append(d.OutputRows, d.InputRow)
		default:
			d.OutputRows = append(d.OutputRows, rowOf[r.NodeID])
		}
	}

	// VH stitches.
	for v := 0; v < n; v++ {
		if labels[v] == labeling.VH {
			d.Cells[rowOf[v]][colOf[v]] = Entry{Kind: On}
		}
	}
	// Edge assignment.
	for _, e := range bg.G.Edges() {
		u, v := e[0], e[1]
		lit := bg.EdgeLit[edgeKey(u, v)]
		var r, c int
		if labels[u].HasH() && labels[v].HasV() {
			r, c = rowOf[u], colOf[v]
		} else {
			r, c = rowOf[v], colOf[u]
		}
		if d.Cells[r][c].Kind != Off {
			return nil, fmt.Errorf("xbar: cell (%d,%d) assigned twice", r, c)
		}
		d.Cells[r][c] = lit
	}
	// Postconditions: the grid is exactly the one the labeling implies,
	// and every device (one per edge, one stitch per VH node) landed on
	// its own wordline×bitline crossing.
	wantRows, wantCols, vh := 0, 0, 0
	for v := 0; v < n; v++ {
		if labels[v].HasH() {
			wantRows++
		}
		if labels[v].HasV() {
			wantCols++
		}
		if labels[v] == labeling.VH {
			vh++
		}
	}
	if needConst0 {
		wantRows++
	}
	if wantCols == 0 {
		wantCols = 1
	}
	if err := invariant.GridDims(d.Rows, d.Cols, wantRows, wantCols); err != nil {
		return nil, fmt.Errorf("xbar: %w", err)
	}
	programmed := 0
	for _, row := range d.Cells {
		for _, e := range row {
			if e.Kind != Off {
				programmed++
			}
		}
	}
	if err := invariant.ProgrammedCells(programmed, bg.G.M(), vh); err != nil {
		return nil, fmt.Errorf("xbar: %w", err)
	}
	return d, nil
}

// EvalLevels evaluates the design given an assignment indexed by BDD level
// (the Entry.Var space). It is a convenience alias of Design.Eval with a
// clarifying name for BDD-mapped designs.
func EvalLevels(d *Design, levelAssignment []bool) []bool { return d.Eval(levelAssignment) }

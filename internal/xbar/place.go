package xbar

import (
	"context"
	"fmt"
	"time"

	"compact/internal/defect"
	"compact/internal/ilp"
	"compact/internal/invariant"
)

// Defect-aware placement
//
// Place searches for row and column permutations of a logical design onto
// a defective physical array such that every crossing is compatible with
// the device fabricated there:
//
//   - a stuck-OFF device can only carry an Off cell (a literal or stitch
//     placed there would lose its path);
//   - a stuck-ON device can only carry an On cell (anything else — a
//     literal that must be able to open, or an Off cell whose crossing
//     must stay isolated — would let the stuck device bridge an
//     unintended sneak path);
//   - a healthy device carries anything.
//
// Physical lines the placement leaves unused are spare wordlines/bitlines,
// assumed disconnected, so their faults are harmless (see defects.go).
//
// The search runs in two escalating stages under one context: a seeded
// greedy alternating bipartite matching (rows given columns, columns given
// rows, a few rounds with randomized tie-breaking), and — when the greedy
// search fails — an exact 0-1 ILP assignment formulation solved by
// internal/ilp under the shared deadline discipline. A proven-infeasible
// ILP yields an *Unplaceable error with Proven set and a witness naming
// the most constrained logical row.

// PlaceEngine selects the placement search strategy.
type PlaceEngine uint8

// Placement engines.
const (
	PlaceAuto   PlaceEngine = iota // greedy first, exact ILP on failure
	PlaceGreedy                    // greedy matching only
	PlaceILP                       // exact ILP only
)

func (e PlaceEngine) String() string {
	switch e {
	case PlaceGreedy:
		return "greedy"
	case PlaceILP:
		return "ilp"
	}
	return "auto"
}

// PlaceOptions tunes Place. The zero value is the production default.
type PlaceOptions struct {
	// Engine picks the search strategy (default PlaceAuto).
	Engine PlaceEngine
	// Seed randomizes greedy tie-breaking; distinct seeds explore distinct
	// placements, which is what the verified-repair loop retries with.
	Seed uint64
	// Rounds bounds the greedy alternating refinement (default 4).
	Rounds int
	// MaxModelSize caps the ILP escalation's size — binary variables plus
	// constraints (default 4000). Larger models skip the exact stage with a
	// non-proven Unplaceable rather than stall: the dense-tableau simplex
	// behind internal/ilp is only effective on small assignment models.
	MaxModelSize int
	// ILPTimeLimit bounds a single exact solve (default 10s; the shared
	// ctx deadline still applies and wins when earlier). Exhausting it
	// yields a non-proven Unplaceable, never a fabricated verdict.
	ILPTimeLimit time.Duration
}

func (o PlaceOptions) withDefaults() PlaceOptions {
	if o.Rounds <= 0 {
		o.Rounds = 4
	}
	if o.MaxModelSize <= 0 {
		o.MaxModelSize = 4000
	}
	if o.ILPTimeLimit <= 0 {
		o.ILPTimeLimit = 10 * time.Second
	}
	return o
}

// Placement binds each logical row/column of a design to a physical
// wordline/bitline of the defective array it was placed onto.
type Placement struct {
	// RowPerm[r] / ColPerm[c] is the physical line carrying logical row r
	// / logical column c. Both are injective into the physical array.
	RowPerm, ColPerm []int
	// Engine records which search stage produced the placement:
	// "identity", "greedy" or "ilp".
	Engine string
}

// Unplaceable reports that no placement of the design onto the defective
// array was found. Proven distinguishes a certificate of infeasibility
// (the exact ILP stage exhausted the search space) from a search that
// merely came up empty. The witness names the most constrained logical
// row: LogicalRow had only Candidates compatible physical wordlines under
// the last column permutation tried.
type Unplaceable struct {
	Stage      string // search stage that gave up: "dims", "precheck", "greedy" or "ilp"
	Detail     string
	LogicalRow int // witness row (-1 when the failure is not row-shaped)
	Candidates int // compatible physical rows for LogicalRow
	Proven     bool
}

func (u *Unplaceable) Error() string {
	msg := fmt.Sprintf("xbar: design unplaceable (%s stage): %s", u.Stage, u.Detail)
	if u.LogicalRow >= 0 {
		msg += fmt.Sprintf("; witness: logical row %d has %d compatible physical wordline(s)", u.LogicalRow, u.Candidates)
	}
	if u.Proven {
		msg += " [proven infeasible]"
	}
	return msg
}

// compatCell reports whether a logical cell may occupy a device stuck in
// state k (see the package comment's compatibility table).
func compatCell(e Entry, k defect.Kind) bool {
	switch k {
	case defect.StuckOff:
		return e.Kind == Off
	case defect.StuckOn:
		return e.Kind == On
	}
	return true
}

// placer carries the immutable search inputs: the design, the defect map
// and the faults grouped by physical row and column (deterministic order).
type placer struct {
	d     *Design
	dm    *defect.Map
	byRow map[int][]defect.Cell
	byCol map[int][]defect.Cell
}

func newPlacer(d *Design, dm *defect.Map) *placer {
	p := &placer{d: d, dm: dm, byRow: map[int][]defect.Cell{}, byCol: map[int][]defect.Cell{}}
	for _, fc := range dm.Cells() {
		p.byRow[fc.Row] = append(p.byRow[fc.Row], fc)
		p.byCol[fc.Col] = append(p.byCol[fc.Col], fc)
	}
	return p
}

// rowOK reports whether logical row r may occupy physical row pr, given
// the logical column (or -1 = unused) each physical column carries.
func (p *placer) rowOK(r, pr int, invCol []int) bool {
	for _, fc := range p.byRow[pr] {
		if c := invCol[fc.Col]; c >= 0 && !compatCell(p.d.Cells[r][c], fc.Kind) {
			return false
		}
	}
	return true
}

// colOK is the column-side dual of rowOK.
func (p *placer) colOK(c, pc int, invRow []int) bool {
	for _, fc := range p.byCol[pc] {
		if r := invRow[fc.Row]; r >= 0 && !compatCell(p.d.Cells[r][c], fc.Kind) {
			return false
		}
	}
	return true
}

// compatible reports whether the full placement satisfies every crossing.
func (p *placer) compatible(rowPerm, colPerm []int) bool {
	if p.dm.Len() == 0 {
		return true // no faults (or nil map): every placement is compatible
	}
	invRow := inversePerm(rowPerm, p.dm.Rows())
	invCol := inversePerm(colPerm, p.dm.Cols())
	for _, fc := range p.dm.Cells() {
		r, c := invRow[fc.Row], invCol[fc.Col]
		if r >= 0 && c >= 0 && !compatCell(p.d.Cells[r][c], fc.Kind) {
			return false
		}
	}
	return true
}

// witness finds the most constrained logical row under invCol: the row
// with the fewest compatible physical wordlines.
func (p *placer) witness(invCol []int) (row, candidates int) {
	row, candidates = -1, p.dm.Rows()+1
	for r := 0; r < p.d.Rows; r++ {
		n := 0
		for pr := 0; pr < p.dm.Rows(); pr++ {
			if p.rowOK(r, pr, invCol) {
				n++
			}
		}
		if n < candidates {
			row, candidates = r, n
		}
	}
	return row, candidates
}

// provenInfeasible is a cheap sound infeasibility certificate, checked
// before any search runs. Relaxing column injectivity, logical row r can
// only occupy physical row pr when every cell kind present in r has at
// least one compatible device on pr (a Lit needs a healthy column, an On a
// healthy or stuck-ON one, an Off a healthy or stuck-OFF one) — a
// necessary condition that reduces to per-physical-row fault counts. If
// even this relaxed row-to-wordline relation admits no perfect matching,
// no placement exists, and the unmatchable relation yields a witness. A
// nil return proves nothing; the search stages still decide.
func (p *placer) provenInfeasible() *Unplaceable {
	type profile struct{ hasLit, hasOn, hasOff bool }
	rows := make([]profile, p.d.Rows)
	for r, row := range p.d.Cells {
		for _, e := range row {
			switch e.Kind {
			case Lit:
				rows[r].hasLit = true
			case On:
				rows[r].hasOn = true
			default:
				rows[r].hasOff = true
			}
		}
	}
	stuckOff := make([]int, p.dm.Rows())
	stuckOn := make([]int, p.dm.Rows())
	for _, fc := range p.dm.Cells() {
		if fc.Kind == defect.StuckOff {
			stuckOff[fc.Row]++
		} else {
			stuckOn[fc.Row]++
		}
	}
	possible := func(r, pr int) bool {
		healthy := p.dm.Cols() - stuckOff[pr] - stuckOn[pr]
		if rows[r].hasLit && healthy == 0 {
			return false
		}
		if rows[r].hasOn && healthy == 0 && stuckOn[pr] == 0 {
			return false
		}
		if rows[r].hasOff && healthy == 0 && stuckOff[pr] == 0 {
			return false
		}
		return true
	}
	natural := make([]int, p.dm.Rows())
	for i := range natural {
		natural[i] = i
	}
	if _, ok := kuhn(p.d.Rows, p.dm.Rows(), possible, natural); ok {
		return nil
	}
	row, candidates := -1, p.dm.Rows()+1
	for r := 0; r < p.d.Rows; r++ {
		n := 0
		for pr := 0; pr < p.dm.Rows(); pr++ {
			if possible(r, pr) {
				n++
			}
		}
		if n < candidates {
			row, candidates = r, n
		}
	}
	return &Unplaceable{
		Stage:      "precheck",
		Detail:     fmt.Sprintf("no wordline assignment exists even ignoring column injectivity (%d faults on %dx%d)", p.dm.Len(), p.dm.Rows(), p.dm.Cols()),
		LogicalRow: row,
		Candidates: candidates,
		Proven:     true,
	}
}

// Place is PlaceContext without cancellation.
func Place(d *Design, dm *defect.Map, opts PlaceOptions) (*Placement, error) {
	return PlaceContext(context.Background(), d, dm, opts)
}

// PlaceContext searches for a placement of d onto the defective array dm.
// A fault-free fit returns the identity placement immediately. Otherwise a
// seeded greedy matching runs first, escalating to the exact ILP
// assignment formulation (under ctx's deadline) when greedy fails and the
// engine allows it. When no placement exists — or none is found within
// the search budget — the returned error is an *Unplaceable carrying a
// witness; a placement is only ever returned after re-checking every
// defective crossing, so a buggy search can not hand back an incompatible
// binding silently.
func PlaceContext(ctx context.Context, d *Design, dm *defect.Map, opts PlaceOptions) (*Placement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	physRows, physCols := dm.Rows(), dm.Cols()
	if dm == nil {
		physRows, physCols = d.Rows, d.Cols
	}
	if physRows < d.Rows || physCols < d.Cols {
		return nil, &Unplaceable{
			Stage:      "dims",
			Detail:     fmt.Sprintf("%dx%d design exceeds the %dx%d physical array", d.Rows, d.Cols, physRows, physCols),
			LogicalRow: -1,
			Proven:     true,
		}
	}
	identity := func(n int) []int {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		return perm
	}
	p := newPlacer(d, dm)
	if dm.Len() == 0 {
		// No faults (or nil map): every binding computes the same design,
		// so identity is canonical regardless of the requested engine.
		return p.finish(&Placement{RowPerm: identity(d.Rows), ColPerm: identity(d.Cols), Engine: "identity"})
	}
	// The identity shortcut yields to an explicitly forced exact engine:
	// callers (core's repair loop) force PlaceILP to explore beyond a
	// placement that failed downstream verification, and short-circuiting
	// every such retry back to the same identity binding would defeat it.
	if opts.Engine != PlaceILP && p.compatible(identity(d.Rows), identity(d.Cols)) {
		return p.finish(&Placement{RowPerm: identity(d.Rows), ColPerm: identity(d.Cols), Engine: "identity"})
	}
	if up := p.provenInfeasible(); up != nil {
		return nil, up
	}

	var lastInvCol []int
	if opts.Engine != PlaceILP {
		pl, invCol, err := p.greedy(ctx, opts, false)
		if err != nil {
			return nil, err
		}
		if pl != nil {
			return p.finish(pl)
		}
		lastInvCol = invCol
	}
	if opts.Engine == PlaceGreedy {
		row, cand := p.witness(lastInvCol)
		return nil, &Unplaceable{
			Stage:      "greedy",
			Detail:     fmt.Sprintf("greedy matching found no placement in %d rounds (%d faults)", opts.Rounds, dm.Len()),
			LogicalRow: row,
			Candidates: cand,
		}
	}
	pl, err := p.ilp(ctx, opts, lastInvCol)
	if err != nil {
		return nil, err
	}
	return p.finish(pl)
}

// finish re-validates the placement against every defective crossing —
// the postcondition gate between the search stages and the caller.
func (p *placer) finish(pl *Placement) (*Placement, error) {
	if err := checkInjective(pl.RowPerm, maxInt(p.dm.Rows(), p.d.Rows), "row"); err != nil {
		return nil, err
	}
	if err := checkInjective(pl.ColPerm, maxInt(p.dm.Cols(), p.d.Cols), "column"); err != nil {
		return nil, err
	}
	if !p.compatible(pl.RowPerm, pl.ColPerm) {
		return nil, invariant.Violationf("xbar.place-compatible",
			"%s placement binds an incompatible crossing onto a stuck device", pl.Engine)
	}
	return pl, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// greedy runs the alternating matching rounds. It returns a non-nil
// placement on success; on failure it returns the last column inverse
// tried, for witness computation. With shuffleAll, even round 0 uses
// randomized tie-breaking — candidate enumeration wants seed diversity,
// whereas single-placement search wants round 0 near-identity.
func (p *placer) greedy(ctx context.Context, opts PlaceOptions, shuffleAll bool) (*Placement, []int, error) {
	rng := opts.Seed*6364136223846793005 + 1442695040888963407
	next := func(bound int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(bound))
	}
	order := func(n int, shuffle bool) []int {
		o := make([]int, n)
		for i := range o {
			o[i] = i
		}
		if shuffle {
			for i := n - 1; i > 0; i-- {
				j := next(i + 1)
				o[i], o[j] = o[j], o[i]
			}
		}
		return o
	}

	colPerm := make([]int, p.d.Cols)
	for i := range colPerm {
		colPerm[i] = i
	}
	invCol := inversePerm(colPerm, p.dm.Cols())
	for round := 0; round < opts.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, invCol, err
		}
		shuffle := shuffleAll || round > 0 // round 0 prefers near-identity bindings
		rowPerm, okRows := kuhn(p.d.Rows, p.dm.Rows(), func(r, pr int) bool {
			return p.rowOK(r, pr, invCol)
		}, order(p.dm.Rows(), shuffle))
		if okRows {
			invRow := inversePerm(rowPerm, p.dm.Rows())
			newColPerm, okCols := kuhn(p.d.Cols, p.dm.Cols(), func(c, pc int) bool {
				return p.colOK(c, pc, invRow)
			}, order(p.dm.Cols(), shuffle))
			if okCols {
				colPerm = newColPerm
				invCol = inversePerm(colPerm, p.dm.Cols())
				if p.compatible(rowPerm, colPerm) {
					return &Placement{RowPerm: rowPerm, ColPerm: colPerm, Engine: "greedy"}, invCol, nil
				}
				continue
			}
		}
		// Re-randomize the column side before the next row attempt.
		colPerm = order(p.dm.Cols(), true)[:p.d.Cols]
		invCol = inversePerm(colPerm, p.dm.Cols())
	}
	return nil, invCol, nil
}

// kuhn computes a maximum bipartite matching of nLeft logical lines onto
// nRight physical lines via augmenting paths, trying physical candidates
// in the given order. It returns the left-side assignment and whether
// every logical line was matched.
func kuhn(nLeft, nRight int, ok func(l, r int) bool, order []int) ([]int, bool) {
	matchL := make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(l int, seen []bool) bool
	try = func(l int, seen []bool) bool {
		for _, r := range order {
			if seen[r] || !ok(l, r) {
				continue
			}
			seen[r] = true
			if matchR[r] < 0 || try(matchR[r], seen) {
				matchL[l], matchR[r] = r, l
				return true
			}
		}
		return false
	}
	complete := true
	for l := 0; l < nLeft; l++ {
		if !try(l, make([]bool, nRight)) {
			complete = false
		}
	}
	return matchL, complete
}

// ilp escalates to the exact 0-1 assignment formulation: binary x[r,pr] /
// y[c,pc] selection variables, one-physical-line-per-logical-line
// assignment constraints, and a conflict constraint x[r,pr]+y[c,pc] <= 1
// for every (logical cell, stuck device) pair the compatibility table
// forbids. The objective prefers near-identity placements (minimal line
// displacement), which keeps the result deterministic and physically
// local. Infeasibility here is a proof: no placement exists.
func (p *placer) ilp(ctx context.Context, opts PlaceOptions, lastInvCol []int) (*Placement, error) {
	d, dm := p.d, p.dm
	nConflicts := 0
	for _, fc := range dm.Cells() {
		for r := 0; r < d.Rows; r++ {
			for c := 0; c < d.Cols; c++ {
				if !compatCell(d.Cells[r][c], fc.Kind) {
					nConflicts++
				}
			}
		}
	}
	baseConstrs := d.Rows + dm.Rows() + d.Cols + dm.Cols()
	nBinaries := d.Rows*dm.Rows() + d.Cols*dm.Cols()
	if size := nBinaries + nConflicts + baseConstrs; size > opts.MaxModelSize {
		row, cand := p.witness(p.lastOrIdentityInvCol(lastInvCol))
		return nil, &Unplaceable{
			Stage:      "ilp",
			Detail:     fmt.Sprintf("greedy search failed and the exact model would need %d variables+constraints (cap %d)", size, opts.MaxModelSize),
			LogicalRow: row,
			Candidates: cand,
		}
	}

	mod := ilp.NewModel("place")
	xVar := func(r, pr int) int { return r*dm.Rows() + pr }
	yBase := d.Rows * dm.Rows()
	yVar := func(c, pc int) int { return yBase + c*dm.Cols() + pc }
	abs := func(v int) float64 {
		if v < 0 {
			return float64(-v)
		}
		return float64(v)
	}
	for r := 0; r < d.Rows; r++ {
		for pr := 0; pr < dm.Rows(); pr++ {
			mod.AddVar(fmt.Sprintf("x_%d_%d", r, pr), 0, 1, ilp.Binary, abs(r-pr))
		}
	}
	for c := 0; c < d.Cols; c++ {
		for pc := 0; pc < dm.Cols(); pc++ {
			mod.AddVar(fmt.Sprintf("y_%d_%d", c, pc), 0, 1, ilp.Binary, abs(c-pc))
		}
	}
	for r := 0; r < d.Rows; r++ {
		terms := make([]ilp.Term, dm.Rows())
		for pr := range terms {
			terms[pr] = ilp.Term{Var: xVar(r, pr), Coeff: 1}
		}
		mod.AddConstr(fmt.Sprintf("row_%d", r), terms, ilp.EQ, 1)
	}
	for pr := 0; pr < dm.Rows(); pr++ {
		terms := make([]ilp.Term, d.Rows)
		for r := range terms {
			terms[r] = ilp.Term{Var: xVar(r, pr), Coeff: 1}
		}
		mod.AddConstr(fmt.Sprintf("prow_%d", pr), terms, ilp.LE, 1)
	}
	for c := 0; c < d.Cols; c++ {
		terms := make([]ilp.Term, dm.Cols())
		for pc := range terms {
			terms[pc] = ilp.Term{Var: yVar(c, pc), Coeff: 1}
		}
		mod.AddConstr(fmt.Sprintf("col_%d", c), terms, ilp.EQ, 1)
	}
	for pc := 0; pc < dm.Cols(); pc++ {
		terms := make([]ilp.Term, d.Cols)
		for c := range terms {
			terms[c] = ilp.Term{Var: yVar(c, pc), Coeff: 1}
		}
		mod.AddConstr(fmt.Sprintf("pcol_%d", pc), terms, ilp.LE, 1)
	}
	for _, fc := range dm.Cells() {
		for r := 0; r < d.Rows; r++ {
			for c := 0; c < d.Cols; c++ {
				if compatCell(d.Cells[r][c], fc.Kind) {
					continue
				}
				mod.AddConstr(
					fmt.Sprintf("conflict_%d_%d_%d_%d", r, fc.Row, c, fc.Col),
					[]ilp.Term{{Var: xVar(r, fc.Row), Coeff: 1}, {Var: yVar(c, fc.Col), Coeff: 1}},
					ilp.LE, 1)
			}
		}
	}

	sol, err := ilp.SolveContext(ctx, mod, ilp.Options{
		TimeLimit: opts.ILPTimeLimit, Workers: ilp.DefaultWorkers(),
	})
	if err != nil {
		return nil, fmt.Errorf("xbar: placement ILP: %w", err)
	}
	switch sol.Status {
	case ilp.StatusOptimal, ilp.StatusFeasible:
		pl := &Placement{RowPerm: make([]int, d.Rows), ColPerm: make([]int, d.Cols), Engine: "ilp"}
		for r := 0; r < d.Rows; r++ {
			pl.RowPerm[r] = -1
			for pr := 0; pr < dm.Rows(); pr++ {
				if sol.X[xVar(r, pr)] > 0.5 {
					pl.RowPerm[r] = pr
					break
				}
			}
		}
		for c := 0; c < d.Cols; c++ {
			pl.ColPerm[c] = -1
			for pc := 0; pc < dm.Cols(); pc++ {
				if sol.X[yVar(c, pc)] > 0.5 {
					pl.ColPerm[c] = pc
					break
				}
			}
		}
		return pl, nil
	case ilp.StatusInfeasible:
		row, cand := p.witness(p.lastOrIdentityInvCol(lastInvCol))
		return nil, &Unplaceable{
			Stage:      "ilp",
			Detail:     fmt.Sprintf("exact assignment model is infeasible (%d faults on %dx%d)", dm.Len(), dm.Rows(), dm.Cols()),
			LogicalRow: row,
			Candidates: cand,
			Proven:     true,
		}
	default:
		// The search budget ran out before a placement or an infeasibility
		// proof was found. A cancelled/expired context surfaces as such;
		// otherwise this is exactly what a non-proven Unplaceable means —
		// the search came up empty, with no claim about existence.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("xbar: placement search: %w", err)
		}
		row, cand := p.witness(p.lastOrIdentityInvCol(lastInvCol))
		return nil, &Unplaceable{
			Stage:      "ilp",
			Detail:     fmt.Sprintf("exact solve stopped %s within its %v budget", sol.Status, opts.ILPTimeLimit),
			LogicalRow: row,
			Candidates: cand,
		}
	}
}

// PlaceCandidates enumerates up to max distinct compatible placements of d
// onto dm, for callers that rank placements by a secondary objective (the
// margin-aware repair loop scores each candidate's electrical margin). The
// identity placement, when compatible, is always the first candidate;
// further candidates come from greedy searches under derived seeds with
// fully randomized tie-breaking, deduplicated by permutation. Every
// returned placement has passed the same postcondition gate as
// PlaceContext's result. When at least one candidate exists the slice is
// returned even if the context expires mid-enumeration (anytime
// semantics); with none, the error is the usual *Unplaceable or ctx error.
func PlaceCandidates(ctx context.Context, d *Design, dm *defect.Map, opts PlaceOptions, max int) ([]*Placement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if max <= 0 {
		max = 1
	}
	opts = opts.withDefaults()
	physRows, physCols := dm.Rows(), dm.Cols()
	if dm == nil {
		physRows, physCols = d.Rows, d.Cols
	}
	if physRows < d.Rows || physCols < d.Cols {
		return nil, &Unplaceable{
			Stage:      "dims",
			Detail:     fmt.Sprintf("%dx%d design exceeds the %dx%d physical array", d.Rows, d.Cols, physRows, physCols),
			LogicalRow: -1,
			Proven:     true,
		}
	}
	identity := func(n int) []int {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		return perm
	}
	p := newPlacer(d, dm)
	seen := map[string]bool{}
	var out []*Placement
	add := func(pl *Placement) error {
		key := fmt.Sprint(pl.RowPerm, pl.ColPerm)
		if seen[key] {
			return nil
		}
		v, err := p.finish(pl)
		if err != nil {
			return err
		}
		seen[key] = true
		out = append(out, v)
		return nil
	}
	if p.compatible(identity(d.Rows), identity(d.Cols)) {
		if err := add(&Placement{RowPerm: identity(d.Rows), ColPerm: identity(d.Cols), Engine: "identity"}); err != nil {
			return nil, err
		}
	}
	if dm.Len() == 0 {
		// No faults: every binding is electrically identical, so one
		// canonical candidate is the complete answer.
		return out, nil
	}
	if len(out) == 0 {
		if up := p.provenInfeasible(); up != nil {
			return nil, up
		}
	}
	seedOpts := opts
	for i := 0; i < 4*max && len(out) < max; i++ {
		if err := ctx.Err(); err != nil {
			if len(out) > 0 {
				return out, nil
			}
			return nil, err
		}
		seedOpts.Seed = opts.Seed + uint64(i)*0x9e3779b97f4a7c15
		pl, _, err := p.greedy(ctx, seedOpts, true)
		if err != nil {
			if len(out) > 0 {
				return out, nil
			}
			return nil, err
		}
		if pl != nil {
			if err := add(pl); err != nil {
				return nil, err
			}
		}
	}
	if len(out) == 0 {
		// Greedy enumeration found nothing at all; the exact stage settles
		// existence the same way PlaceContext would.
		pl, err := p.ilp(ctx, opts, nil)
		if err != nil {
			return nil, err
		}
		if err := add(pl); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// lastOrIdentityInvCol returns the witness column inverse: the last one
// the greedy stage tried, or identity when the ILP ran alone.
func (p *placer) lastOrIdentityInvCol(lastInvCol []int) []int {
	if lastInvCol != nil {
		return lastInvCol
	}
	colPerm := make([]int, p.d.Cols)
	for i := range colPerm {
		colPerm[i] = i
	}
	return inversePerm(colPerm, p.dm.Cols())
}

package xbar

import (
	"errors"
	"math/rand"
	"testing"

	"compact/internal/bdd"
	"compact/internal/labeling"
	"compact/internal/logic"
)

// synthRemapped runs the pipeline and remaps the design's variables into
// network-input order, as core.Synthesize does.
func synthRemapped(t *testing.T, nw *logic.Network, method labeling.Method) *Design {
	t.Helper()
	d, _ := synth(t, nw, method, 0.5, true)
	// Natural order was used, so level i == input i already; attach names.
	remap := make([]int, nw.NumInputs())
	for i := range remap {
		remap[i] = i
	}
	if err := d.RemapVars(remap, nw.InputNames()); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFormalVerifyFig2(t *testing.T) {
	nw := fig2Network()
	d := synthRemapped(t, nw, labeling.MethodMIP)
	if err := FormalVerify(d, nw, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFormalVerifyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		nw := randomNetwork(rng, 6, 20)
		for _, m := range []labeling.Method{labeling.MethodOCT, labeling.MethodHeuristic} {
			d := synthRemapped(t, nw, m)
			if err := FormalVerify(d, nw, 0); err != nil {
				t.Fatalf("trial %d method %v: %v", trial, m, err)
			}
		}
	}
}

func TestFormalVerifyCatchesFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	caught, injected := 0, 0
	for trial := 0; trial < 6; trial++ {
		nw := randomNetwork(rng, 5, 15)
		d := synthRemapped(t, nw, labeling.MethodHeuristic)
		for r := 0; r < d.Rows && injected < 60; r++ {
			for c := 0; c < d.Cols; c++ {
				if d.Cells[r][c].Kind != Lit {
					continue
				}
				injected++
				fresh := synthRemapped(t, nw, labeling.MethodHeuristic)
				fresh.Cells[r][c].Neg = !fresh.Cells[r][c].Neg
				if err := FormalVerify(fresh, nw, 0); err != nil {
					caught++
				}
			}
		}
	}
	// Formal verification is complete: every fault that changes the
	// function is caught; only logically-masked flips survive.
	if injected == 0 {
		t.Fatal("nothing injected")
	}
	if caught*10 < injected*8 {
		t.Errorf("caught %d/%d", caught, injected)
	}
	// Cross-check completeness on one specific fault: a flip that sampling
	// catches must be caught formally too.
	nw := randomNetwork(rng, 5, 15)
	d := synthRemapped(t, nw, labeling.MethodHeuristic)
outer:
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			if d.Cells[r][c].Kind != Lit {
				continue
			}
			d.Cells[r][c].Neg = !d.Cells[r][c].Neg
			d.sparse.Store(nil)
			sampledBad := d.VerifyAgainst(nw.Eval, 5, 10, 0, 1) != nil
			formalErr := FormalVerify(d, nw, 0)
			if sampledBad && formalErr == nil {
				t.Errorf("sampling caught a fault formal verification missed")
			}
			break outer
		}
	}
}

func TestFormalVerifyWitnessIsReal(t *testing.T) {
	// Corrupt a design and check the returned witness actually
	// distinguishes design from network.
	nw := fig2Network()
	d := synthRemapped(t, nw, labeling.MethodMIP)
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			if d.Cells[r][c].Kind == Lit {
				d.Cells[r][c].Neg = !d.Cells[r][c].Neg
				d.sparse.Store(nil)
				err := FormalVerify(d, nw, 0)
				if err == nil {
					t.Skip("flip was logically masked")
				}
				return
			}
		}
	}
}

func TestSymbolicOutputsMatchEval(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	nw := randomNetwork(rng, 5, 18)
	d := synthRemapped(t, nw, labeling.MethodHeuristic)
	m, outs, err := SymbolicOutputs(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]bool, 5)
	for a := 0; a < 32; a++ {
		for i := range in {
			in[i] = a&(1<<uint(i)) != 0
		}
		concrete := d.Eval(in)
		for o, f := range outs {
			if m.Eval(f, in) != concrete[o] {
				t.Fatalf("symbolic/concrete mismatch at %05b output %d", a, o)
			}
		}
	}
}

func TestFormalVerifyNodeLimit(t *testing.T) {
	nw := fig2Network()
	d := synthRemapped(t, nw, labeling.MethodMIP)
	err := FormalVerify(d, nw, 3) // absurdly small arena
	if err == nil || !errors.Is(err, bdd.ErrNodeLimit) {
		t.Errorf("expected node-limit error, got %v", err)
	}
}

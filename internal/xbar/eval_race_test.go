package xbar

import (
	"sync"
	"testing"
)

// andDesign builds a tiny 2-input AND crossbar by hand: the input wordline
// reaches the output wordline iff both literals conduct through the shared
// bitline chain.
func andDesign() *Design {
	d := NewDesign(3, 2)
	d.Cells[2][0] = Entry{Kind: Lit, Var: 0} // input row -> bitline 0 via a
	d.Cells[1][0] = Entry{Kind: Lit, Var: 1} // bitline 0 -> middle row via b
	d.Cells[1][1] = Entry{Kind: On}          // middle row -> bitline 1
	d.Cells[0][1] = Entry{Kind: On}          // bitline 1 -> output row
	d.InputRow = 2
	d.OutputRows = []int{0}
	return d
}

// TestEvalConcurrentFirstCall races the very first Eval calls on a fresh
// Design: the sparse-cell cache is built lazily on first use and must be
// constructed exactly once even when several goroutines trigger it
// simultaneously (sync.Once in sparseCells; run under -race).
func TestEvalConcurrentFirstCall(t *testing.T) {
	d := andDesign()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := 0; a < 4; a++ {
				in := []bool{a&1 != 0, a&2 != 0}
				got := d.Eval(in)[0]
				want := in[0] && in[1]
				if got != want {
					t.Errorf("Eval(%v) = %v, want %v", in, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := len(d.sparseCells()); n != 4 {
		t.Errorf("sparse cache has %d cells, want 4", n)
	}
}

package xbar

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"compact/internal/bdd"
	"compact/internal/labeling"
	"compact/internal/logic"
)

// synth runs the full pipeline for a network with natural variable order:
// BDD -> graph -> labeling -> crossbar.
func synth(t *testing.T, nw *logic.Network, method labeling.Method, gamma float64, align bool) (*Design, *BDDGraph) {
	t.Helper()
	m, roots, err := bdd.BuildNetwork(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := FromBDD(m, roots, nw.OutputNames)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := labeling.Solve(bg.Problem(align), labeling.Options{Method: method, Gamma: gamma})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Map(bg, sol.Labels)
	if err != nil {
		t.Fatal(err)
	}
	return d, bg
}

func fig2Network() *logic.Network {
	b := logic.NewBuilder("fig2")
	a, bb, c := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("f", b.Or(b.And(a, bb), c))
	return b.Build()
}

func TestFig2EndToEnd(t *testing.T) {
	nw := fig2Network()
	d, bg := synth(t, nw, labeling.MethodMIP, 0.5, true)
	// Graph: nodes a, b, c, 1 => n=4; edges: a->b, a->c(low), b->1, b->c?,
	// Let's not over-specify; check n and validity instead.
	if bg.NumNodes() != 4 {
		t.Errorf("graph nodes = %d, want 4", bg.NumNodes())
	}
	if bad := d.VerifyAgainst(nw.Eval, 3, 10, 0, 1); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
	st := d.Stats()
	if st.S != st.Rows+st.Cols || st.Area != st.Rows*st.Cols {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if st.Delay != st.Rows+1 {
		t.Errorf("delay = %d, want rows+1", st.Delay)
	}
}

func TestPipelineRandomNetworks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		nw := randomNetwork(rng, 5, 18)
		for _, method := range []labeling.Method{labeling.MethodOCT, labeling.MethodMIP, labeling.MethodHeuristic} {
			d, _ := synth(t, nw, method, 0.5, true)
			if bad := d.VerifyAgainst(nw.Eval, 5, 10, 0, 1); bad != nil {
				t.Fatalf("trial %d method %v: mismatch on %v", trial, method, bad)
			}
		}
	}
}

func TestSemiperimeterIsNPlusK(t *testing.T) {
	// The central claim: S = n + k where k = #VH.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		nw := randomNetwork(rng, 5, 15)
		m, roots, err := bdd.BuildNetwork(nw, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := FromBDD(m, roots, nw.OutputNames)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := labeling.Solve(bg.Problem(true), labeling.Options{Method: labeling.MethodMIP, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		k := 0
		for _, l := range sol.Labels {
			if l == labeling.VH {
				k++
			}
		}
		d, err := Map(bg, sol.Labels)
		if err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		// S = n + k, adjusted for the two degenerate extras: a dedicated
		// row for constant-0 outputs and the filler bitline when no node
		// is labeled V.
		wantRows := labeling.ComputeStats(sol.Labels).Rows
		for _, r := range bg.Roots {
			if r.Kind == RootConst0 {
				wantRows++
				break
			}
		}
		wantCols := labeling.ComputeStats(sol.Labels).Cols
		if wantCols == 0 {
			wantCols = 1
		}
		if st.Rows != wantRows || st.Cols != wantCols {
			t.Errorf("trial %d: dims %dx%d, want %dx%d", trial, st.Rows, st.Cols, wantRows, wantCols)
		}
		if wantRows+wantCols == bg.NumNodes()+k && st.S != bg.NumNodes()+k {
			t.Errorf("trial %d: S = %d, want n+k = %d+%d", trial, st.S, bg.NumNodes(), k)
		}
	}
}

func TestConstantOutputs(t *testing.T) {
	b := logic.NewBuilder("consts")
	a := b.Input("a")
	b.Output("one", b.Const1())
	b.Output("zero", b.Const0())
	b.Output("pass", a)
	nw := b.Build()
	d, _ := synth(t, nw, labeling.MethodMIP, 0.5, true)
	if bad := d.VerifyAgainst(nw.Eval, 1, 5, 0, 1); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
}

func TestAllConstantZero(t *testing.T) {
	b := logic.NewBuilder("allzero")
	b.Input("a")
	b.Output("z", b.Const0())
	nw := b.Build()
	d, _ := synth(t, nw, labeling.MethodOCT, 1, true)
	if bad := d.VerifyAgainst(nw.Eval, 1, 5, 0, 1); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
}

func TestSharedOutputRows(t *testing.T) {
	// Two identical outputs share one BDD root and thus one wordline.
	b := logic.NewBuilder("dup")
	x, y := b.Input("x"), b.Input("y")
	g := b.And(x, y)
	b.Output("f1", g)
	b.Output("f2", g)
	nw := b.Build()
	d, _ := synth(t, nw, labeling.MethodMIP, 0.5, true)
	if d.OutputRows[0] != d.OutputRows[1] {
		t.Errorf("identical outputs on different rows: %v", d.OutputRows)
	}
	if bad := d.VerifyAgainst(nw.Eval, 2, 5, 0, 1); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
}

func TestInputRowIsBottom(t *testing.T) {
	nw := fig2Network()
	d, _ := synth(t, nw, labeling.MethodMIP, 0.5, true)
	if d.InputRow != d.Rows-1 {
		t.Errorf("input row = %d, want bottom row %d", d.InputRow, d.Rows-1)
	}
	for _, r := range d.OutputRows {
		if r == d.InputRow {
			t.Errorf("output on input row for non-constant function")
		}
	}
}

func TestMapRejectsVRoot(t *testing.T) {
	// Labeling without alignment may put a root on a bitline; Map must
	// reject it. Construct explicitly: path 1 - u (root). Label 1=H, u=V.
	b := logic.NewBuilder("tiny")
	a := b.Input("a")
	b.Output("f", a)
	nw := b.Build()
	m, roots, err := bdd.BuildNetwork(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := FromBDD(m, roots, nw.OutputNames)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]labeling.Label, bg.NumNodes())
	for i := range labels {
		labels[i] = labeling.V
	}
	labels[bg.TerminalID] = labeling.H
	if _, err := Map(bg, labels); err == nil {
		t.Error("V-labeled root accepted")
	}
}

func TestRenderAndEntryStrings(t *testing.T) {
	nw := fig2Network()
	d, _ := synth(t, nw, labeling.MethodMIP, 0.5, true)
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "<- Vin") || !strings.Contains(s, "-> f") {
		t.Errorf("render missing ports:\n%s", s)
	}
	e := Entry{Kind: Lit, Var: 0, Neg: true}
	if e.String() != "!x0" {
		t.Errorf("entry string = %q", e.String())
	}
	if (Entry{Kind: On}).String() != "1" || (Entry{Kind: Off}).String() != "0" {
		t.Error("constant entry strings wrong")
	}
}

func TestVerifyAgainstSampled(t *testing.T) {
	// Wide function forces the sampled path.
	b := logic.NewBuilder("wide")
	xs := b.Inputs("x", 20)
	b.Output("f", b.Or(xs...))
	nw := b.Build()
	d, _ := synth(t, nw, labeling.MethodOCT, 1, true)
	if bad := d.VerifyAgainst(nw.Eval, 20, 12, 500, 7); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
}

func TestStatsPowerCountsLiterals(t *testing.T) {
	nw := fig2Network()
	d, bg := synth(t, nw, labeling.MethodMIP, 1, true)
	st := d.Stats()
	if st.LitCells != bg.NumEdges() {
		t.Errorf("lit cells = %d, want edge count %d", st.LitCells, bg.NumEdges())
	}
	if st.Power != st.LitCells {
		t.Errorf("power = %d, want %d", st.Power, st.LitCells)
	}
}

// randomNetwork builds a random combinational network.
func randomNetwork(rng *rand.Rand, nIn, nGates int) *logic.Network {
	b := logic.NewBuilder("rand")
	var pool []int
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.Input(string(rune('a'+i))))
	}
	for g := 0; g < nGates; g++ {
		pick := func() int { return pool[rng.Intn(len(pool))] }
		var id int
		switch rng.Intn(6) {
		case 0:
			id = b.And(pick(), pick())
		case 1:
			id = b.Or(pick(), pick())
		case 2:
			id = b.Not(pick())
		case 3:
			id = b.Xor(pick(), pick())
		case 4:
			id = b.Nand(pick(), pick())
		default:
			id = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, id)
	}
	b.Output("f", pool[len(pool)-1])
	b.Output("g", pool[len(pool)-2])
	return b.Build()
}

func TestWriteSVG(t *testing.T) {
	nw := fig2Network()
	d, _ := synth(t, nw, labeling.MethodMIP, 0.5, true)
	var buf bytes.Buffer
	if err := d.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{"<svg", "Vin", "circle", "</svg>"} {
		if !strings.Contains(s, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	// A literal with special characters must be escaped.
	d.Cells[0][0] = Entry{Kind: Lit, Var: 0}
	d.VarNames = []string{"a<b&c"}
	buf.Reset()
	if err := d.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "a<b") {
		t.Error("unescaped '<' in SVG text")
	}
}

package xbar

import (
	"math/rand"
	"testing"

	"compact/internal/labeling"
)

func TestProgramStepsAndEquivalence(t *testing.T) {
	nw := fig2Network()
	d, _ := synth(t, nw, labeling.MethodMIP, 0.5, true)
	for a := 0; a < 8; a++ {
		in := []bool{a&1 != 0, a&2 != 0, a&4 != 0}
		p := d.Program(in, nil)
		if p.Steps != d.Rows+1 {
			t.Fatalf("steps = %d, want rows+1 = %d", p.Steps, d.Rows+1)
		}
		// Evaluating the explicit plan must equal direct evaluation.
		got := d.EvalProgrammed(p)
		want := d.Eval(in)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("assignment %03b output %d: plan %v vs direct %v", a, o, got[o], want[o])
			}
		}
	}
}

func TestProgramSwitchingEnergy(t *testing.T) {
	nw := fig2Network()
	d, _ := synth(t, nw, labeling.MethodMIP, 0.5, true)
	base := []bool{false, false, false}
	p0 := d.Program(base, nil)
	// Re-programming the same assignment switches nothing.
	p1 := d.Program(base, p0)
	if p1.Switched != 0 {
		t.Errorf("identical reprogram switched %d devices", p1.Switched)
	}
	// Flipping one variable switches exactly the cells carrying it.
	flipped := []bool{true, false, false}
	p2 := d.Program(flipped, p0)
	carrying := 0
	for _, row := range d.Cells {
		for _, e := range row {
			if e.Kind == Lit && e.Var == 0 {
				carrying++
			}
		}
	}
	if p2.Switched != carrying {
		t.Errorf("flip of one variable switched %d devices, want %d (its literal cells)", p2.Switched, carrying)
	}
	// Initial programming switches exactly the conducting devices.
	conducting := 0
	for _, row := range p0.RowPatterns {
		for _, on := range row {
			if on {
				conducting++
			}
		}
	}
	if p0.Switched != conducting {
		t.Errorf("initial programming switched %d, want %d", p0.Switched, conducting)
	}
}

func TestProgramRandomSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	nw := randomNetwork(rng, 6, 20)
	d, _ := synth(t, nw, labeling.MethodHeuristic, 0.5, true)
	var prev *Programming
	in := make([]bool, 6)
	totalSwitched := 0
	for step := 0; step < 30; step++ {
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		p := d.Program(in, prev)
		totalSwitched += p.Switched
		got, want := d.EvalProgrammed(p), d.Eval(in)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("step %d output %d mismatch", step, o)
			}
		}
		prev = p
	}
	// Incremental switching must never exceed full reprogramming cost.
	if maxCost := 30 * len(d.sparseCells()); totalSwitched > maxCost {
		t.Errorf("switched %d > bound %d", totalSwitched, maxCost)
	}
}

package xbar

import (
	"math/bits"

	"compact/internal/invariant"
)

// Word-parallel evaluation: 64 assignments per connectivity closure.
//
// Eval64 carries one uint64 per variable — bit b of words[i] is the value
// of variable i under assignment b — and returns one word per output row.
// Instead of union-find per assignment, connectivity is computed as a
// bitset fixpoint: reach[w] holds, per bit, whether nanowire w is connected
// to the input wordline, and every non-Off cell propagates reachability
// between its row and column wires masked by the cell's 64-assignment
// conduction word. The closure converges in O(path length) alternating
// sweeps over the sparse cell list, so the amortized cost per assignment is
// ~64× below the scalar Eval, which stays as the reference oracle
// (FuzzEval64VsScalar pins the equivalence).

// Conduct64 is Entry.Conducts over 64 assignments at once: bit b of the
// result reports whether the cell conducts under assignment b of words.
// Like Conducts it treats unknown kinds and out-of-range variables as
// non-conducting; Eval64Checked rejects those via the sparse-index
// validation before this is ever reached. Exported for the layered design
// in internal/xbar3d, whose sneak-path closure shares the cell semantics.
func (e Entry) Conduct64(words []uint64) uint64 {
	switch e.Kind {
	case On:
		return ^uint64(0)
	case Lit:
		if e.Var < 0 || int(e.Var) >= len(words) {
			return 0
		}
		w := words[e.Var]
		if e.Neg {
			return ^w
		}
		return w
	default:
		return 0
	}
}

// Eval64 evaluates all outputs under 64 assignments at once. words[i] is
// the 64-assignment value word of variable i (len(words) >= NumVars());
// the result holds one word per output row, bit b giving the output under
// assignment b. Like Eval it panics with the structured invariant error on
// precondition violations; Eval64Checked is the error-returning form.
func (d *Design) Eval64(words []uint64) []uint64 {
	out, err := d.Eval64Checked(words)
	if err != nil {
		//lint:ignore panicfree documented Eval64 precondition on programmer-supplied assignments; Eval64Checked is the error-returning form for wire-decoded designs
		panic(err)
	}
	return out
}

// Eval64Checked is Eval64 with the preconditions checked: corrupted cells
// (negative Var, unknown Kind), short assignment words and out-of-range
// input/output rows return an *invariant.Error instead of silently
// mis-evaluating.
func (d *Design) Eval64Checked(words []uint64) ([]uint64, error) {
	idx := d.sparseIdx()
	if idx.err != nil {
		return nil, idx.err
	}
	if int(idx.maxVar) >= len(words) {
		return nil, invariant.Violationf("xbar.eval-assignment",
			"assignment has %d entries but the design references variable %d", len(words), idx.maxVar)
	}
	if len(d.OutputRows) == 0 && d.Rows == 0 {
		return []uint64{}, nil // empty design: nothing to read, nothing to drive
	}
	if d.InputRow < 0 || d.InputRow >= d.Rows {
		return nil, invariant.Violationf("xbar.eval-input-row",
			"input row %d outside 0..%d", d.InputRow, d.Rows-1)
	}
	for i, r := range d.OutputRows {
		if r < 0 || r >= d.Rows {
			return nil, invariant.Violationf("xbar.eval-output-row",
				"output row %d (#%d) outside 0..%d", r, i, d.Rows-1)
		}
	}
	// Per-cell conduction masks, then the reachability fixpoint. A forward
	// sweep alone needs one pass per hop of the longest sneak path running
	// "down" the cell order; alternating with a backward sweep halves the
	// pass count on zig-zag paths. Termination: each sweep either sets at
	// least one new bit in reach (bounded by 64·(Rows+Cols)) or proves the
	// fixpoint.
	masks := make([]uint64, len(idx.cells))
	for i, sc := range idx.cells {
		masks[i] = sc.e.Conduct64(words)
	}
	reach := make([]uint64, d.Rows+d.Cols)
	reach[d.InputRow] = ^uint64(0)
	for {
		changed := false
		for i, sc := range idx.cells {
			m := masks[i]
			if m == 0 {
				continue
			}
			r, c := sc.row, d.Rows+sc.col
			u := (reach[r] | reach[c]) & m
			if u&^reach[r] != 0 {
				reach[r] |= u
				changed = true
			}
			if u&^reach[c] != 0 {
				reach[c] |= u
				changed = true
			}
		}
		if !changed {
			break
		}
		changed = false
		for i := len(idx.cells) - 1; i >= 0; i-- {
			m := masks[i]
			if m == 0 {
				continue
			}
			sc := idx.cells[i]
			r, c := sc.row, d.Rows+sc.col
			u := (reach[r] | reach[c]) & m
			if u&^reach[r] != 0 {
				reach[r] |= u
				changed = true
			}
			if u&^reach[c] != 0 {
				reach[c] |= u
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	out := make([]uint64, len(d.OutputRows))
	for i, r := range d.OutputRows {
		out[i] = reach[r]
	}
	return out, nil
}

// MaxExhaustiveBits caps the width of exhaustive verification: beyond it
// the 2^nVars enumeration count would overflow int on 32-bit platforms (and
// is computationally absurd on any platform), so VerifyAgainst falls back
// to sampling regardless of the caller's exhaustiveLimit.
const MaxExhaustiveBits = 30

// clampedDefaultSamples is used when the exhaustive→sampling clamp fires
// but the caller asked for zero samples (expecting exhaustive mode to do
// the work): verification must never silently become vacuous.
const clampedDefaultSamples = 4096

// basisWord returns the 64-assignment word of variable i when the batch
// enumerates assignments base..base+63 (base a multiple of 64): bit b is
// bit i of base+b, which for i < 6 depends only on b.
func basisWord(i int) uint64 {
	basis := [6]uint64{
		0xAAAAAAAAAAAAAAAA, // bit 0 of b
		0xCCCCCCCCCCCCCCCC, // bit 1
		0xF0F0F0F0F0F0F0F0, // bit 2
		0xFF00FF00FF00FF00, // bit 3
		0xFFFF0000FFFF0000, // bit 4
		0xFFFFFFFF00000000, // bit 5
	}
	return basis[i]
}

// VerifyAgainst checks the design against a reference evaluator over all
// 2^nVars assignments when nVars <= exhaustiveLimit (clamped to
// MaxExhaustiveBits — wider requests fall back to sampling instead of
// overflowing the enumeration), or over `samples` pseudo-random assignments
// (deterministic LCG seeded with seed) otherwise. It returns the first
// mismatching assignment, or nil if none found. The design side is
// evaluated 64 assignments per pass via Eval64Checked; the reference is
// called per assignment (use VerifyAgainst64 when a word-parallel
// reference is available).
func (d *Design) VerifyAgainst(ref func([]bool) []bool, nVars, exhaustiveLimit, samples int, seed uint64) []bool {
	return VerifyEquiv(d.Eval64Checked, ref, nil, nVars, exhaustiveLimit, samples, seed)
}

// VerifyAgainst64 is VerifyAgainst with a word-parallel reference: ref64
// receives one word per variable and must return one word per reference
// output (logic.Network.Eval64 has exactly this shape), so both sides of
// the comparison run 64 assignments per call.
func (d *Design) VerifyAgainst64(ref64 func([]uint64) []uint64, nVars, exhaustiveLimit, samples int, seed uint64) []bool {
	return VerifyEquiv(d.Eval64Checked, nil, ref64, nVars, exhaustiveLimit, samples, seed)
}

// VerifyEquiv is the verification driver behind VerifyAgainst and
// VerifyAgainst64, exported so other word-parallel evaluators (the layered
// Design3D in internal/xbar3d) share the exact enumeration, sampling order
// and witness semantics. eval receives one word per variable and returns
// one word per output, or an error when the design under test cannot be
// evaluated at all (which counts as a mismatch: the batch's first
// assignment becomes the witness). Exactly one of ref and ref64 must be
// non-nil. The returned slice is the first mismatching assignment, or nil.
func VerifyEquiv(eval func([]uint64) ([]uint64, error), ref func([]bool) []bool, ref64 func([]uint64) []uint64, nVars, exhaustiveLimit, samples int, seed uint64) []bool {
	if nVars <= exhaustiveLimit {
		if nVars <= MaxExhaustiveBits {
			return verifyExhaustive(eval, ref, ref64, nVars)
		}
		// Exhaustive mode was requested but is unrepresentable; sample
		// instead, and never with zero vectors.
		if samples <= 0 {
			samples = clampedDefaultSamples
		}
	}
	return verifySampled(eval, ref, ref64, nVars, samples, seed)
}

func verifyExhaustive(eval func([]uint64) ([]uint64, error), ref func([]bool) []bool, ref64 func([]uint64) []uint64, nVars int) []bool {
	total := 1 << uint(nVars)
	words := make([]uint64, nVars)
	for base := 0; base < total; base += 64 {
		n := total - base
		if n > 64 {
			n = 64
		}
		for i := 0; i < nVars; i++ {
			switch {
			case i < 6:
				words[i] = basisWord(i)
			case base&(1<<uint(i)) != 0:
				words[i] = ^uint64(0)
			default:
				words[i] = 0
			}
		}
		bad := verifyBatch(eval, ref, ref64, words, n, func(b int) []bool {
			in := make([]bool, nVars)
			for i := range in {
				in[i] = (base+b)&(1<<uint(i)) != 0
			}
			return in
		})
		if bad != nil {
			return bad
		}
	}
	return nil
}

func verifySampled(eval func([]uint64) ([]uint64, error), ref func([]bool) []bool, ref64 func([]uint64) []uint64, nVars, samples int, seed uint64) []bool {
	state := seed | 1
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state
	}
	words := make([]uint64, nVars)
	batch := make([][]bool, 0, 64)
	for s := 0; s < samples; s += 64 {
		n := samples - s
		if n > 64 {
			n = 64
		}
		for i := range words {
			words[i] = 0
		}
		batch = batch[:0]
		// Generate assignments in the exact scalar LCG order (sample-major,
		// variable-minor) so witnesses and coverage match the pre-word
		// implementation bit for bit.
		for b := 0; b < n; b++ {
			in := make([]bool, nVars)
			for i := 0; i < nVars; i++ {
				if next()>>33&1 != 0 {
					in[i] = true
					words[i] |= 1 << uint(b)
				}
			}
			batch = append(batch, in)
		}
		if bad := verifyBatch(eval, ref, ref64, words, n, func(b int) []bool { return batch[b] }); bad != nil {
			return bad
		}
	}
	return nil
}

// verifyBatch compares the evaluator against the reference on assignments
// 0..n-1 of words, returning the lowest-index mismatching assignment
// (materialized via mkAssign) or nil. A design that cannot be evaluated at
// all disagrees by definition; the batch's first assignment is the witness.
func verifyBatch(eval func([]uint64) ([]uint64, error), ref func([]bool) []bool, ref64 func([]uint64) []uint64, words []uint64, n int, mkAssign func(b int) []bool) []bool {
	got, err := eval(words)
	if err != nil {
		return mkAssign(0)
	}
	if ref64 != nil {
		want := ref64(words)
		if len(got) < len(want) {
			return mkAssign(0)
		}
		var mismatch uint64
		for o := range want {
			mismatch |= want[o] ^ got[o]
		}
		if n < 64 {
			mismatch &= 1<<uint(n) - 1
		}
		if mismatch != 0 {
			return mkAssign(bits.TrailingZeros64(mismatch))
		}
		return nil
	}
	for b := 0; b < n; b++ {
		in := mkAssign(b)
		want := ref(in)
		if len(got) < len(want) {
			return in
		}
		for o := range want {
			if want[o] != (got[o]>>uint(b)&1 == 1) {
				return in
			}
		}
	}
	return nil
}

package labeling

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// slowProblem returns an instance dense enough that the exact MIP cannot
// finish within a fraction of a second, so TimeLimit expiry is exercised
// mid-solve rather than between stages.
func slowProblem(seed int64) Problem {
	rng := rand.New(rand.NewSource(seed))
	return Problem{G: randomGraph(rng, 140, 0.06)}
}

// TestTimeLimitAdherenceMIP: Solve with a TimeLimit on a slow instance must
// return within the budget (plus a scheduling tolerance, well under the
// 1.5x overshoots the per-stage budgeting used to allow) and still hand
// back a valid labeling — the anytime contract.
func TestTimeLimitAdherenceMIP(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	p := slowProblem(7)
	budget := 1200 * time.Millisecond
	start := time.Now()
	sol, err := Solve(p, Options{Method: MethodMIP, Gamma: 0.5, TimeLimit: budget})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("budgeted solve failed instead of degrading: %v", err)
	}
	// 20% tolerance covers goroutine scheduling and the final tableau pivot.
	if limit := budget + budget/5; elapsed > limit {
		t.Errorf("TimeLimit=%v overshot: elapsed %v > %v", budget, elapsed, limit)
	}
	if err := Validate(p, sol.Labels); err != nil {
		t.Errorf("degraded solution invalid: %v", err)
	}
}

// TestTimeLimitAdherencePortfolio: the portfolio races several engines but
// shares ONE deadline; expiry must bound the whole race, not each engine.
func TestTimeLimitAdherencePortfolio(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	p := slowProblem(11)
	budget := 1200 * time.Millisecond
	start := time.Now()
	sol, err := Solve(p, Options{Method: MethodPortfolio, Gamma: 0.5, TimeLimit: budget})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("budgeted portfolio failed instead of degrading: %v", err)
	}
	if limit := budget + budget/5; elapsed > limit {
		t.Errorf("TimeLimit=%v overshot: elapsed %v > %v", budget, elapsed, limit)
	}
	if err := Validate(p, sol.Labels); err != nil {
		t.Errorf("portfolio solution invalid: %v", err)
	}
	if len(sol.Engines) == 0 {
		t.Error("portfolio solution missing engine reports")
	}
}

// TestPreCancelledContext: a context that is already dead on entry returns
// promptly with its error for every method, without starting any engine.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := slowProblem(3)
	for _, m := range []Method{MethodOCT, MethodMIP, MethodHeuristic, MethodPortfolio, MethodAuto} {
		start := time.Now()
		_, err := SolveContext(ctx, p, Options{Method: m, Gamma: 0.5})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("method %v: want context.Canceled, got %v", m, err)
		}
		if e := time.Since(start); e > 100*time.Millisecond {
			t.Errorf("method %v: pre-cancelled solve took %v", m, e)
		}
	}
}

// TestCancellationMidSolve: cancelling a running MIP unwinds with the best
// labeling so far instead of an error.
func TestCancellationMidSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	p := slowProblem(19)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(200 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	sol, err := SolveContext(ctx, p, Options{Method: MethodMIP, Gamma: 0.5})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("mid-solve cancel produced error instead of degrading: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancelled solve took %v; want prompt unwind", elapsed)
	}
	if err := Validate(p, sol.Labels); err != nil {
		t.Errorf("cancelled solution invalid: %v", err)
	}
}

// TestPortfolioNeverWorseThanSingles: on instances every engine can finish,
// the portfolio's objective must match or beat each single method — it
// returns the best of the race by construction.
func TestPortfolioNeverWorseThanSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		p := Problem{G: randomGraph(rng, 12, 0.3)}
		opts := Options{Gamma: 0.5, TimeLimit: 10 * time.Second}

		popts := opts
		popts.Method = MethodPortfolio
		port, err := Solve(p, popts)
		if err != nil {
			t.Fatalf("trial %d: portfolio: %v", trial, err)
		}
		for _, m := range []Method{MethodOCT, MethodMIP, MethodHeuristic} {
			sopts := opts
			sopts.Method = m
			single, err := Solve(p, sopts)
			if err != nil {
				t.Fatalf("trial %d: %v: %v", trial, m, err)
			}
			if port.Stats.Objective(0.5) > single.Stats.Objective(0.5)+1e-9 {
				t.Errorf("trial %d: portfolio objective %.3f worse than %v's %.3f",
					trial, port.Stats.Objective(0.5), m, single.Stats.Objective(0.5))
			}
		}
	}
}

// TestPortfolioEngineReports: the winning engine is flagged, and elapsed
// times are populated.
func TestPortfolioEngineReports(t *testing.T) {
	sol, err := Solve(Problem{G: cycle(9)}, Options{Method: MethodPortfolio, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	winners := 0
	for _, er := range sol.Engines {
		if er.Winner {
			winners++
			if "portfolio("+er.Method+")" != sol.Method {
				t.Errorf("winner %q does not match method %q", er.Method, sol.Method)
			}
		}
	}
	if winners != 1 {
		t.Errorf("want exactly 1 winning engine, got %d (%+v)", winners, sol.Engines)
	}
}

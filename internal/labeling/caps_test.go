package labeling

import (
	"errors"
	"testing"
)

// The cap-feasibility boundary: a labeling of an n-node graph always has
// S = Rows + Cols = n + #VH >= n, so caps summing to less than n (plus
// the odd-cycle lower bound on #VH) are provably infeasible, while caps
// that admit the optimum must be met exactly by every method.

func capMethods() []Method {
	return []Method{MethodHeuristic, MethodOCT, MethodMIP, MethodPortfolio}
}

// cycle(8) is bipartite: no VH nodes needed, optimal S = 8, and the
// alternating labeling balances to 4x4. Caps of exactly 4x4 fit with zero
// slack; shrinking either axis by one makes the sum 7 < n = 8, which
// every method must refuse with ErrInfeasible.
func TestCapBoundaryBipartite(t *testing.T) {
	for _, m := range capMethods() {
		t.Run(m.String(), func(t *testing.T) {
			p := Problem{G: cycle(8)}
			sol, err := Solve(p, Options{Method: m, Gamma: 0.5, MaxRows: 4, MaxCols: 4})
			if err != nil {
				t.Fatalf("caps 4x4 fit exactly, got error: %v", err)
			}
			if sol.Stats.Rows > 4 || sol.Stats.Cols > 4 {
				t.Fatalf("solution %dx%d violates 4x4 caps", sol.Stats.Rows, sol.Stats.Cols)
			}
			if err := Validate(p, sol.Labels); err != nil {
				t.Fatalf("invalid labeling: %v", err)
			}
			for _, caps := range [][2]int{{4, 3}, {3, 4}} {
				_, err := Solve(p, Options{Method: m, Gamma: 0.5, MaxRows: caps[0], MaxCols: caps[1]})
				if !errors.Is(err, ErrInfeasible) {
					t.Fatalf("caps %dx%d (sum < n): want ErrInfeasible, got %v", caps[0], caps[1], err)
				}
			}
		})
	}
}

// cycle(7) is an odd cycle: at least one VH node, so S >= n + 1 = 8.
// Caps of 4x4 admit the optimum; caps summing to 7 pass the cheap n-node
// pre-check (7 > 7 is false) but are still infeasible, exercising each
// method's own cap enforcement.
func TestCapBoundaryOddCycle(t *testing.T) {
	for _, m := range capMethods() {
		t.Run(m.String(), func(t *testing.T) {
			p := Problem{G: cycle(7)}
			sol, err := Solve(p, Options{Method: m, Gamma: 0.5, MaxRows: 4, MaxCols: 4})
			if err != nil {
				t.Fatalf("caps 4x4 fit the odd-cycle optimum, got error: %v", err)
			}
			if sol.Stats.Rows > 4 || sol.Stats.Cols > 4 {
				t.Fatalf("solution %dx%d violates 4x4 caps", sol.Stats.Rows, sol.Stats.Cols)
			}
			if sol.Stats.S < 8 {
				t.Fatalf("odd cycle needs S >= 8, got %d (invalid solution?)", sol.Stats.S)
			}
			_, err = Solve(p, Options{Method: m, Gamma: 0.5, MaxRows: 4, MaxCols: 3})
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("caps 4x3 (sum = n < n+1): want ErrInfeasible, got %v", err)
			}
		})
	}
}

// The O(1) node-count pre-check must fire without running any solver:
// both caps set and n > MaxRows + MaxCols is a proof.
func TestCapPrecheckProvesInfeasible(t *testing.T) {
	_, err := Solve(Problem{G: path(100)}, Options{Method: MethodHeuristic, MaxRows: 10, MaxCols: 10})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("100 nodes under 10x10 caps: want ErrInfeasible, got %v", err)
	}
	// One-sided caps never trigger the pre-check (the other axis absorbs
	// the rest).
	if _, err := Solve(Problem{G: path(30)}, Options{Method: MethodHeuristic, MaxRows: 16}); err != nil {
		t.Fatalf("one-sided cap should be satisfiable: %v", err)
	}
}

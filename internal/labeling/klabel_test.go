package labeling

import (
	"context"
	"testing"
	"time"

	"compact/internal/graph"
)

// wheel returns an odd wheel: a hub adjacent to every rim node of an
// odd cycle — non-bipartite, forcing at least one spanning interval.
func wheel(rim int) *graph.Graph {
	g := graph.New(rim + 1)
	for i := 0; i < rim; i++ {
		if err := g.AddEdge(i, (i+1)%rim); err != nil {
			panic(err)
		}
		if err := g.AddEdge(i, rim); err != nil {
			panic(err)
		}
	}
	return g
}

// grid returns a bipartite a x b grid graph.
func grid(a, b int) *graph.Graph {
	g := graph.New(a * b)
	id := func(i, j int) int { return i*b + j }
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			if i+1 < a {
				if err := g.AddEdge(id(i, j), id(i+1, j)); err != nil {
					panic(err)
				}
			}
			if j+1 < b {
				if err := g.AddEdge(id(i, j), id(i, j+1)); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func TestComputeKStatsMatches2D(t *testing.T) {
	labels := []Label{H, V, VH, H, V}
	lo, hi := LiftLabels(labels)
	st2 := ComputeStats(labels)
	stK := ComputeKStats(2, lo, hi)
	if stK.R != st2.Rows || stK.C != st2.Cols || stK.S != st2.S || stK.D != st2.D {
		t.Fatalf("lifted stats %+v disagree with 2D stats %+v", stK, st2)
	}
	if stK.Widths[0] != st2.Rows || stK.Widths[1] != st2.Cols {
		t.Fatalf("widths %v, want [%d %d]", stK.Widths, st2.Rows, st2.Cols)
	}
}

func TestSolveKDelegatesAtKLE2(t *testing.T) {
	p := Problem{G: wheel(5), AlignH: []int{5}}
	base, err := SolveContext(context.Background(), p, Options{Method: MethodHeuristic, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2} {
		sol, err := SolveK(context.Background(), p, k, Options{Method: MethodHeuristic, Gamma: 0.5})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if sol.K != 2 {
			t.Fatalf("K=%d clamped to %d, want 2", k, sol.K)
		}
		if sol.Stats.S != base.Stats.S || sol.Stats.D != base.Stats.D {
			t.Fatalf("K=%d stats %+v disagree with 2D %+v", k, sol.Stats, base.Stats)
		}
		wantLo, wantHi := LiftLabels(base.Labels)
		for v := range wantLo {
			if sol.Lo[v] != wantLo[v] || sol.Hi[v] != wantHi[v] {
				t.Fatalf("K=%d node %d interval [%d,%d], want [%d,%d]", k, v, sol.Lo[v], sol.Hi[v], wantLo[v], wantHi[v])
			}
		}
	}
}

func TestSolveKFoldShrinksFootprint(t *testing.T) {
	// A grid has many H nodes to fold across even layers; S must strictly
	// decrease from K=2 to K=3 and stay monotone through K=4.
	p := Problem{G: grid(6, 6), AlignH: []int{0}}
	prev := -1
	for _, k := range []int{2, 3, 4} {
		sol, err := SolveK(context.Background(), p, k, Options{Method: MethodHeuristic, Gamma: 0.5})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if err := ValidateK(p, k, sol.Lo, sol.Hi); err != nil {
			t.Fatalf("K=%d invalid: %v", k, err)
		}
		if prev > 0 {
			if sol.Stats.S > prev {
				t.Fatalf("K=%d semiperimeter %d regressed above %d", k, sol.Stats.S, prev)
			}
			if k == 3 && sol.Stats.S >= prev {
				t.Fatalf("K=3 semiperimeter %d did not strictly beat K=2's %d", sol.Stats.S, prev)
			}
		}
		prev = sol.Stats.S
	}
}

func TestSolveKMIPOnWheel(t *testing.T) {
	p := Problem{G: wheel(5), AlignH: []int{5}}
	sol, err := SolveK(context.Background(), p, 3, Options{
		Method: MethodMIP, Gamma: 0.5, TimeLimit: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateK(p, 3, sol.Lo, sol.Hi); err != nil {
		t.Fatal(err)
	}
	heur, err := SolveK(context.Background(), p, 3, Options{Method: MethodHeuristic, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Objective(0.5) > heur.Stats.Objective(0.5)+1e-9 {
		t.Fatalf("K-MIP objective %.2f worse than fold heuristic %.2f", sol.Stats.Objective(0.5), heur.Stats.Objective(0.5))
	}
}

func TestSolveKPortfolioReportsEngines(t *testing.T) {
	p := Problem{G: wheel(7), AlignH: []int{7}}
	sol, err := SolveK(context.Background(), p, 4, Options{
		Method: MethodPortfolio, Gamma: 0.5, TimeLimit: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Engines) != 2 {
		t.Fatalf("engine reports %d, want 2", len(sol.Engines))
	}
	winners := 0
	for _, e := range sol.Engines {
		if e.Winner {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d winning engines, want exactly 1", winners)
	}
}

func TestSolveKRejectsOversizedK(t *testing.T) {
	p := Problem{G: wheel(5)}
	if _, err := SolveK(context.Background(), p, MaxLayers+1, Options{}); err == nil {
		t.Fatal("K above MaxLayers accepted")
	}
}

func TestValidateKCatchesGaps(t *testing.T) {
	g := graph.New(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	p := Problem{G: g}
	if err := ValidateK(p, 4, []int{0, 3}, []int{0, 3}); err == nil {
		t.Fatal("non-adjacent layers accepted")
	}
	if err := ValidateK(p, 4, []int{0, 1}, []int{0, 1}); err != nil {
		t.Fatalf("adjacent layers rejected: %v", err)
	}
	if err := ValidateK(Problem{G: g, AlignH: []int{1}}, 4, []int{0, 1}, []int{0, 1}); err == nil {
		t.Fatal("odd-only alignment interval accepted")
	}
}

package labeling

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"compact/internal/graph"
)

func cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func randomGraph(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// bruteBest enumerates all labelings and returns the best objective value.
func bruteBest(p Problem, gamma float64) float64 {
	n := p.G.N()
	labels := make([]Label, n)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if Validate(p, labels) == nil {
				if obj := ComputeStats(labels).Objective(gamma); obj < best {
					best = obj
				}
			}
			return
		}
		for _, l := range []Label{V, H, VH} {
			labels[i] = l
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestStatsAndObjective(t *testing.T) {
	labels := []Label{V, H, VH, V}
	st := ComputeStats(labels)
	if st.Rows != 2 || st.Cols != 3 || st.S != 5 || st.D != 3 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.Objective(1); got != 5 {
		t.Errorf("gamma=1 objective = %v", got)
	}
	if got := st.Objective(0); got != 3 {
		t.Errorf("gamma=0 objective = %v", got)
	}
	if got := st.Objective(0.5); got != 4 {
		t.Errorf("gamma=0.5 objective = %v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	p := Problem{G: path(2)}
	if err := Validate(p, []Label{V, V}); err == nil {
		t.Error("V-V edge accepted")
	}
	if err := Validate(p, []Label{H, H}); err == nil {
		t.Error("H-H edge accepted")
	}
	if err := Validate(p, []Label{V, H}); err != nil {
		t.Errorf("V-H edge rejected: %v", err)
	}
	if err := Validate(p, []Label{Unlabeled, H}); err == nil {
		t.Error("unlabeled node accepted")
	}
	if err := Validate(p, []Label{V}); err == nil {
		t.Error("wrong length accepted")
	}
	pAlign := Problem{G: path(2), AlignH: []int{0}}
	if err := Validate(pAlign, []Label{V, H}); err == nil {
		t.Error("alignment violation accepted")
	}
	if err := Validate(pAlign, []Label{VH, V}); err != nil {
		t.Errorf("VH alignment rejected: %v", err)
	}
}

func TestBipartiteNoVH(t *testing.T) {
	// An even cycle needs no VH labels: S = n.
	p := Problem{G: cycle(8)}
	for _, m := range []Method{MethodOCT, MethodMIP, MethodHeuristic} {
		sol, err := Solve(p, Options{Method: m, Gamma: 1})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if sol.Stats.S != 8 {
			t.Errorf("%v: S = %d, want 8", m, sol.Stats.S)
		}
	}
}

func TestOddCycleOneVH(t *testing.T) {
	// An odd cycle needs exactly one VH: S = n + 1.
	p := Problem{G: cycle(7)}
	sol, err := Solve(p, Options{Method: MethodOCT})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.S != 8 || !sol.Optimal {
		t.Errorf("C7: S = %d (optimal=%v), want 8", sol.Stats.S, sol.Optimal)
	}
	nVH := 0
	for _, l := range sol.Labels {
		if l == VH {
			nVH++
		}
	}
	if nVH != 1 {
		t.Errorf("C7: %d VH labels, want 1", nVH)
	}
}

func TestMIPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 6, 0.4)
		p := Problem{G: g}
		for _, gamma := range []float64{0, 0.5, 1} {
			sol, err := Solve(p, Options{Method: MethodMIP, Gamma: gamma})
			if err != nil {
				t.Fatalf("trial %d γ=%v: %v", trial, gamma, err)
			}
			if !sol.Optimal {
				t.Fatalf("trial %d γ=%v: not optimal", trial, gamma)
			}
			want := bruteBest(p, gamma)
			if got := sol.Stats.Objective(gamma); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d γ=%v: objective %v, want %v", trial, gamma, got, want)
			}
		}
	}
}

func TestMIPWithAlignmentMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 6, 0.35)
		p := Problem{G: g, AlignH: []int{0, g.N() - 1}}
		sol, err := Solve(p, Options{Method: MethodMIP, Gamma: 0.5})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteBest(p, 0.5)
		if got := sol.Stats.Objective(0.5); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: objective %v, want %v", trial, got, want)
		}
	}
}

func TestOCTMatchesMIPAtGammaOne(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 12; trial++ {
		g := randomGraph(rng, 8, 0.3)
		p := Problem{G: g}
		a, err := Solve(p, Options{Method: MethodOCT, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(p, Options{Method: MethodMIP, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		if a.Optimal && b.Optimal && a.Stats.S != b.Stats.S {
			t.Fatalf("trial %d: OCT S=%d, MIP S=%d", trial, a.Stats.S, b.Stats.S)
		}
	}
}

func TestBalancingReducesMaxDimension(t *testing.T) {
	// The paper's Figure 6 scenario: two unbalanced bipartite components.
	// Component A: star with center + 4 leaves; component B: star with
	// center + 3 leaves. Orienting both stars the same way gives D=7;
	// opposite orientations give D close to S/2.
	g := graph.New(11)
	for leaf := 1; leaf <= 4; leaf++ {
		g.AddEdge(0, leaf)
	}
	for leaf := 7; leaf <= 10; leaf++ {
		g.AddEdge(6, leaf)
	}
	p := Problem{G: g}
	sol, err := Solve(p, Options{Method: MethodOCT, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.S != 11 {
		t.Errorf("S = %d, want 11 (bipartite, no VH)", sol.Stats.S)
	}
	// Balanced orientation: one star contributes (1 H, 4 V), the other
	// (4 H, 1 V), isolated vertex 5 anywhere: D should be <= 6, not 9.
	if sol.Stats.D > 6 {
		t.Errorf("D = %d; balancing failed (want <= 6)", sol.Stats.D)
	}
	// MIP at γ=0 must reach the optimum D too.
	mip, err := Solve(p, Options{Method: MethodMIP, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	if mip.Stats.D > sol.Stats.D {
		t.Errorf("MIP D = %d worse than OCT balancing %d", mip.Stats.D, sol.Stats.D)
	}
}

func TestGammaTradeoff(t *testing.T) {
	// γ=1 minimizes S; γ=0 minimizes D, possibly with larger S
	// (the paper's Figure 7 effect). On random non-bipartite graphs check
	// the Pareto relationship holds.
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 7, 0.4)
		p := Problem{G: g}
		s1, err := Solve(p, Options{Method: MethodMIP, Gamma: 1})
		if err != nil {
			t.Fatal(err)
		}
		s0, err := Solve(p, Options{Method: MethodMIP, Gamma: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !s1.Optimal || !s0.Optimal {
			t.Fatalf("trial %d: not optimal", trial)
		}
		if s0.Stats.D > s1.Stats.D {
			t.Errorf("trial %d: γ=0 D (%d) worse than γ=1 D (%d)", trial, s0.Stats.D, s1.Stats.D)
		}
		if s1.Stats.S > s0.Stats.S {
			t.Errorf("trial %d: γ=1 S (%d) worse than γ=0 S (%d)", trial, s1.Stats.S, s0.Stats.S)
		}
	}
}

func TestAlignmentForcesH(t *testing.T) {
	// A triangle with all three nodes aligned: every node needs H, so at
	// least two nodes must be VH (H-H edges forbidden).
	g := cycle(3)
	p := Problem{G: g, AlignH: []int{0, 1, 2}}
	sol, err := Solve(p, Options{Method: MethodMIP, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if !sol.Labels[v].HasH() {
			t.Errorf("node %d lacks H", v)
		}
	}
	if want := bruteBest(p, 1); sol.Stats.Objective(1) != want {
		t.Errorf("objective %v, want %v", sol.Stats.Objective(1), want)
	}
	// OCT method with alignment patching must also validate (Solve checks).
	if _, err := Solve(p, Options{Method: MethodOCT}); err != nil {
		t.Errorf("OCT with alignment: %v", err)
	}
}

func TestHeuristicLargeGraphValid(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g := randomGraph(rng, 300, 0.01)
	p := Problem{G: g, AlignH: []int{0, 1, 2, 3}}
	sol, err := Solve(p, Options{Method: MethodHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.S < g.N() {
		t.Errorf("S = %d < n = %d impossible", sol.Stats.S, g.N())
	}
}

func TestAutoMethodSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	small := Problem{G: randomGraph(rng, 10, 0.3)}
	sol, err := Solve(small, Options{Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != "mip" {
		t.Errorf("small graph method = %s, want mip", sol.Method)
	}
	big := Problem{G: randomGraph(rng, 50, 0.1)}
	sol2, err := Solve(big, Options{Gamma: 0.5, AutoExactLimit: 20})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Method != "oct" {
		t.Errorf("big graph method = %s, want oct", sol2.Method)
	}
}

func TestMIPTimeLimitFallsBackFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := randomGraph(rng, 40, 0.15)
	p := Problem{G: g}
	sol, err := Solve(p, Options{Method: MethodMIP, Gamma: 0.5, TimeLimit: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Must be valid (Solve validates) and carry trace data.
	if len(sol.Trace) == 0 {
		t.Error("no trace events")
	}
}

func TestTraceOnMIP(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	g := randomGraph(rng, 12, 0.35)
	sol, err := Solve(Problem{G: g}, Options{Method: MethodMIP, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Trace) == 0 {
		t.Fatal("no trace")
	}
	last := sol.Trace[len(sol.Trace)-1]
	if sol.Optimal && last.Gap > 1e-9 {
		t.Errorf("optimal but final gap %v", last.Gap)
	}
}

func TestLabelStrings(t *testing.T) {
	if V.String() != "V" || H.String() != "H" || VH.String() != "VH" || Unlabeled.String() != "?" {
		t.Error("label strings wrong")
	}
	for _, m := range []Method{MethodAuto, MethodOCT, MethodMIP, MethodHeuristic} {
		if m.String() == "" {
			t.Error("empty method string")
		}
	}
}

package labeling

import (
	"errors"
	"math/rand"
	"testing"
)

// TestBudgetFeasible: a generous budget must be met, and the result
// respects the caps.
func TestBudgetFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 8, 0.3)
		// First solve unconstrained to learn a feasible shape.
		free, err := Solve(Problem{G: g}, Options{Method: MethodMIP, Gamma: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Solve(Problem{G: g}, Options{
			Method: MethodMIP, Gamma: 0.5,
			MaxRows: free.Stats.Rows + 2, MaxCols: free.Stats.Cols + 2,
		})
		if err != nil {
			t.Fatalf("trial %d: generous budget rejected: %v", trial, err)
		}
		if sol.Stats.Rows > free.Stats.Rows+2 || sol.Stats.Cols > free.Stats.Cols+2 {
			t.Fatalf("trial %d: budget violated: %+v", trial, sol.Stats)
		}
	}
}

// TestBudgetInfeasible: a budget below the node count cannot fit any
// labeling (every node needs a row or a column, and rows+cols >= n).
func TestBudgetInfeasible(t *testing.T) {
	g := cycle(9) // n=9, S >= 10 (odd cycle needs one VH)
	_, err := Solve(Problem{G: g}, Options{
		Method: MethodMIP, Gamma: 1,
		MaxRows: 4, MaxCols: 4, // rows+cols <= 8 < 10
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible, got %v", err)
	}
}

// TestBudgetTightFeasible: the exact optimum's dimensions are feasible as
// a budget.
func TestBudgetTightFeasible(t *testing.T) {
	g := cycle(9)
	free, err := Solve(Problem{G: g}, Options{Method: MethodMIP, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(Problem{G: g}, Options{
		Method: MethodMIP, Gamma: 0,
		MaxRows: free.Stats.Rows, MaxCols: free.Stats.Cols,
	})
	if err != nil {
		t.Fatalf("tight budget rejected: %v", err)
	}
	if sol.Stats.Rows > free.Stats.Rows || sol.Stats.Cols > free.Stats.Cols {
		t.Fatalf("budget violated: %+v vs %+v", sol.Stats, free.Stats)
	}
}

// TestBudgetNonMIPMethodsChecked: heuristic results violating the caps are
// rejected rather than silently returned.
func TestBudgetNonMIPMethodsChecked(t *testing.T) {
	g := cycle(9)
	_, err := Solve(Problem{G: g}, Options{
		Method: MethodHeuristic, MaxRows: 1, MaxCols: 1,
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected ErrInfeasible from heuristic path, got %v", err)
	}
}

package labeling

import (
	"math/rand"
	"testing"
	"time"
)

// benchProblem is sized so the MIP engine does real branch & bound work but
// finishes within the per-op budget; the same instance serves every method
// so the numbers are comparable.
func benchProblem() Problem {
	rng := rand.New(rand.NewSource(1))
	return Problem{G: randomGraph(rng, 24, 0.2)}
}

func benchSolve(b *testing.B, m Method) {
	p := benchProblem()
	opts := Options{Method: m, Gamma: 0.5, TimeLimit: 30 * time.Second}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Labels == nil {
			b.Fatal("nil labels")
		}
	}
}

func BenchmarkSolveHeuristic(b *testing.B) { benchSolve(b, MethodHeuristic) }
func BenchmarkSolveOCT(b *testing.B)       { benchSolve(b, MethodOCT) }
func BenchmarkSolveMIP(b *testing.B)       { benchSolve(b, MethodMIP) }
func BenchmarkSolvePortfolio(b *testing.B) { benchSolve(b, MethodPortfolio) }

package labeling

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// EngineReport is one engine's outcome in a MethodPortfolio race.
type EngineReport struct {
	Method    string        // engine name: heuristic, oct, mip
	Objective float64       // γ·S + (1−γ)·D of the engine's labeling; +Inf on failure
	Optimal   bool          // the engine proved its labeling optimal
	Elapsed   time.Duration // engine wall clock inside the race
	Winner    bool          // this engine produced the returned labeling
	Err       string        // non-empty when the engine failed
}

// sharedIncumbent is the portfolio's cross-engine objective bound: a
// lock-free monotonically decreasing float64. Engines publish finished
// labelings with offer; the MIP branch & bound polls get through
// ilp.Options.BestKnown to prune nodes that cannot beat a sibling.
type sharedIncumbent struct{ bits atomic.Uint64 }

func newSharedIncumbent() *sharedIncumbent {
	s := &sharedIncumbent{}
	s.bits.Store(math.Float64bits(math.Inf(1)))
	return s
}

func (s *sharedIncumbent) get() float64 { return math.Float64frombits(s.bits.Load()) }

func (s *sharedIncumbent) offer(v float64) {
	for {
		old := s.bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if s.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// solvePortfolio races the OCT and MIP engines in goroutines after priming
// both with the (fast, polynomial) heuristic labeling. Incumbents are
// shared: the heuristic warm-starts the MIP via ilp.Options.Incumbent, and
// any engine that finishes publishes its objective so the MIP's branch &
// bound prunes against it mid-flight. The race ends when every engine
// returns, when one proves optimality (the rest are cancelled), or when
// ctx expires — each engine then unwinds with its best labeling so far,
// and the portfolio returns the best valid labeling seen, never an error.
func solvePortfolio(ctx context.Context, p Problem, opts Options) (*Solution, error) {
	gamma := opts.Gamma
	shared := newSharedIncumbent()

	fits := func(s *Solution) bool {
		return (opts.MaxRows <= 0 || s.Stats.Rows <= opts.MaxRows) &&
			(opts.MaxCols <= 0 || s.Stats.Cols <= opts.MaxCols)
	}
	// better orders candidates: respect the dimension caps first, then the
	// objective, then proven optimality as the tie-break.
	better := func(a, b *Solution) bool {
		if fa, fb := fits(a), fits(b); fa != fb {
			return fa
		}
		oa, ob := a.Stats.Objective(gamma), b.Stats.Objective(gamma)
		if oa < ob-1e-9 {
			return true
		}
		if ob < oa-1e-9 {
			return false
		}
		return a.Optimal && !b.Optimal
	}

	// The heuristic engine runs first, synchronously: it is polynomial and
	// near-instant relative to the exact engines, and its bound seeds both
	// the shared incumbent and the MIP primer.
	hStart := time.Now()
	heur := solveHeuristic(p, opts)
	heur.Elapsed = time.Since(hStart)
	shared.offer(heur.Stats.Objective(gamma))
	reports := []EngineReport{{
		Method:    "heuristic",
		Objective: heur.Stats.Objective(gamma),
		Optimal:   heur.Optimal,
		Elapsed:   heur.Elapsed,
	}}

	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	engines := []struct {
		name string
		run  func() (*Solution, error)
	}{
		{"oct", func() (*Solution, error) { return solveOCT(raceCtx, p, opts) }},
		{"mip", func() (*Solution, error) { return solveMIP(raceCtx, p, opts, heur, shared.get) }},
	}
	type engineResult struct {
		name    string
		sol     *Solution
		err     error
		elapsed time.Duration
	}
	results := make(chan engineResult, len(engines))
	var wg sync.WaitGroup
	for _, e := range engines {
		wg.Add(1)
		go func(name string, run func() (*Solution, error)) {
			defer wg.Done()
			t0 := time.Now()
			sol, err := run()
			results <- engineResult{name: name, sol: sol, err: err, elapsed: time.Since(t0)}
		}(e.name, e.run)
	}

	best, bestName := heur, "heuristic"
	for received := 0; received < len(engines); received++ {
		r := <-results
		rep := EngineReport{Method: r.name, Elapsed: r.elapsed, Objective: math.Inf(1)}
		if r.err != nil {
			rep.Err = r.err.Error()
		} else if r.sol != nil && Validate(p, r.sol.Labels) == nil {
			rep.Objective = r.sol.Stats.Objective(gamma)
			rep.Optimal = r.sol.Optimal
			shared.offer(rep.Objective)
			if better(r.sol, best) {
				best, bestName = r.sol, r.name
			}
			if r.sol.Optimal && fits(r.sol) {
				// Provably optimal within the caps: the race is decided;
				// cancel the remaining engines so they unwind promptly.
				cancel()
			}
		}
		reports = append(reports, rep)
	}
	wg.Wait()

	for i := range reports {
		reports[i].Winner = reports[i].Method == bestName
	}
	return &Solution{
		Labels:  best.Labels,
		Stats:   best.Stats,
		Optimal: best.Optimal,
		Method:  "portfolio(" + bestName + ")",
		Trace:   best.Trace,
		Engines: reports,
	}, nil
}

package labeling

import (
	"context"
	"fmt"
	"math"
	"time"

	"compact/internal/ilp"
	"compact/internal/oct"
)

// K-layer labeling (FLOW-3D generalization)
//
// COMPACT's binary V/H labeling is the K=2 special case of assigning BDD
// nodes to K stacked nanowire layers: even layers carry horizontal
// wordlines, odd layers vertical bitlines, and a memristor device sits
// between any pair of crossing wires on adjacent layers. A node occupies a
// contiguous interval of layers [Lo, Hi]; when the interval spans more
// than one layer, the node's wires on consecutive layers are joined by
// always-ON via stitches (the K=2 VH label is exactly the interval [0,1]).
// An edge (u, v) is realizable when some adjacent layer pair (d, d+1) has
// u on one side and v on the other. Alignment nodes (roots and the
// 1-terminal) must occupy at least one even layer, so the periphery can
// drive/sense them on a wordline.
//
// The footprint of the stack is the projection: all even layers share one
// row pitch and all odd layers one column pitch, so
//
//	R = max width over even layers, C = max width over odd layers,
//	S = R + C, D = max(R, C)
//
// which reduces to the paper's semiperimeter exactly at K=2. Folding a 2D
// labeling's wordlines across layers 0 and 2 therefore shrinks S roughly
// by half the row count — the FLOW-3D superlinear footprint win.
//
// SolveK delegates K <= 2 to the 2D pipeline verbatim (a crossbar needs
// two wire layers, so K=1 is clamped to 2 — documented, not an error) and
// solves K >= 3 with a fold-from-2D heuristic plus an interval ILP, racing
// under the same shared-incumbent portfolio discipline as the 2D solvers.

// MaxLayers caps the layer count accepted by SolveK and core.Options: the
// interval ILP grows as n·K³ and no published 3D RRAM stack exceeds a
// handful of device layers.
const MaxLayers = 8

// KStats are the footprint dimensions implied by a K-layer labeling.
type KStats struct {
	K      int   // wire layers
	Widths []int // wires per layer (occupancy), len K
	R      int   // footprint rows: max width over even layers
	C      int   // footprint cols: max width over odd layers
	S      int   // semiperimeter of the footprint = R + C
	D      int   // max dimension = max(R, C)
}

// Objective evaluates γ·S + (1−γ)·D, the same weighting as the 2D Stats.
func (s KStats) Objective(gamma float64) float64 {
	return gamma*float64(s.S) + (1-gamma)*float64(s.D)
}

// ComputeKStats derives the footprint from per-node layer intervals.
func ComputeKStats(k int, lo, hi []int) KStats {
	st := KStats{K: k, Widths: make([]int, k)}
	for v := range lo {
		for l := lo[v]; l <= hi[v] && l < k; l++ {
			if l >= 0 {
				st.Widths[l]++
			}
		}
	}
	for l, w := range st.Widths {
		if l%2 == 0 {
			if w > st.R {
				st.R = w
			}
		} else if w > st.C {
			st.C = w
		}
	}
	st.S = st.R + st.C
	st.D = st.R
	if st.C > st.D {
		st.D = st.C
	}
	return st
}

// Occupies reports whether layer l lies in [lo, hi].
func Occupies(lo, hi, l int) bool { return lo <= l && l <= hi }

// edgeRealizable reports whether intervals u and v share an adjacent layer
// pair: some device layer d has one endpoint on d and the other on d+1.
func edgeRealizable(loU, hiU, loV, hiV, k int) bool {
	for d := 0; d < k-1; d++ {
		if (Occupies(loU, hiU, d) && Occupies(loV, hiV, d+1)) ||
			(Occupies(loV, hiV, d) && Occupies(loU, hiU, d+1)) {
			return true
		}
	}
	return false
}

// ValidateK checks that the intervals solve the K-layer problem: every
// node occupies a non-empty in-range interval, every edge is realizable on
// some adjacent layer pair, and every alignment node reaches an even
// (wordline) layer.
func ValidateK(p Problem, k int, lo, hi []int) error {
	n := p.G.N()
	if len(lo) != n || len(hi) != n {
		return fmt.Errorf("labeling: %d/%d intervals for %d nodes", len(lo), len(hi), n)
	}
	if k < 2 {
		return fmt.Errorf("labeling: %d wire layers (need >= 2)", k)
	}
	for v := 0; v < n; v++ {
		if lo[v] < 0 || hi[v] >= k || lo[v] > hi[v] {
			return fmt.Errorf("labeling: node %d interval [%d,%d] outside 0..%d", v, lo[v], hi[v], k-1)
		}
	}
	for _, e := range p.G.Edges() {
		u, v := e[0], e[1]
		if !edgeRealizable(lo[u], hi[u], lo[v], hi[v], k) {
			return fmt.Errorf("labeling: edge (%d,%d) with intervals [%d,%d]–[%d,%d] has no adjacent layer pair",
				u, v, lo[u], hi[u], lo[v], hi[v])
		}
	}
	for _, v := range p.AlignH {
		even := false
		for l := lo[v]; l <= hi[v]; l++ {
			if l%2 == 0 {
				even = true
				break
			}
		}
		if !even {
			return fmt.Errorf("labeling: alignment node %d interval [%d,%d] reaches no even layer", v, lo[v], hi[v])
		}
	}
	return nil
}

// KSolution is a valid K-layer labeling plus solve metadata.
type KSolution struct {
	K       int
	Lo, Hi  []int // per-node contiguous layer interval
	Stats   KStats
	Optimal bool
	Method  string
	Elapsed time.Duration
	Trace   []ilp.TraceEvent
	Engines []EngineReport
}

// LiftLabels converts a 2D labeling into the equivalent 2-layer intervals:
// H → [0,0], V → [1,1], VH → [0,1]. This is the V/H ↔ layer mapping the
// K=2 equivalence suite pins cell-for-cell.
func LiftLabels(labels []Label) (lo, hi []int) {
	lo = make([]int, len(labels))
	hi = make([]int, len(labels))
	for v, l := range labels {
		switch l {
		case H:
			lo[v], hi[v] = 0, 0
		case V:
			lo[v], hi[v] = 1, 1
		default: // VH (Unlabeled never survives Validate)
			lo[v], hi[v] = 0, 1
		}
	}
	return lo, hi
}

// SolveK computes a K-layer labeling of p. K <= 2 delegates to the 2D
// SolveContext verbatim (K=1 is clamped — a crossbar needs two wire
// layers) and lifts the labels into intervals, so the layered path at
// K <= 2 is semiperimeter-identical to today's pipeline by construction.
// K >= 3 runs the fold heuristic and the interval ILP under Options.Method
// (auto, oct and portfolio all race both engines with a shared incumbent;
// there is no OCT analogue above two colors). The deadline discipline
// matches SolveContext: one shared budget, anytime degradation to the best
// valid labeling found.
func SolveK(ctx context.Context, p Problem, k int, opts Options) (*KSolution, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k < 2 {
		k = 2
	}
	if k > MaxLayers {
		return nil, fmt.Errorf("labeling: %d layers exceeds the %d-layer cap", k, MaxLayers)
	}
	if k == 2 {
		sol, err := SolveContext(ctx, p, opts)
		if err != nil {
			return nil, err
		}
		lo, hi := LiftLabels(sol.Labels)
		return &KSolution{
			K: 2, Lo: lo, Hi: hi,
			Stats:   ComputeKStats(2, lo, hi),
			Optimal: sol.Optimal,
			Method:  sol.Method,
			Elapsed: sol.Elapsed,
			Trace:   sol.Trace,
			Engines: sol.Engines,
		}, nil
	}

	if opts.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.TimeLimit)
		defer cancel()
	}
	// Provable early infeasibility: each even layer holds at most MaxRows
	// wires and each odd layer at most MaxCols, and every node occupies at
	// least one layer.
	ke, ko := (k+1)/2, k/2
	if opts.MaxRows > 0 && opts.MaxCols > 0 && p.G.N() > ke*opts.MaxRows+ko*opts.MaxCols {
		return nil, fmt.Errorf("labeling: %d graph nodes exceed the %d-layer capacity of budget %dx%d: %w",
			p.G.N(), k, opts.MaxRows, opts.MaxCols, ErrInfeasible)
	}

	var sol *KSolution
	var err error
	switch opts.Method {
	case MethodHeuristic:
		sol = solveKHeuristic(p, k, opts)
	case MethodMIP:
		sol, err = solveKMIP(ctx, p, k, opts, solveKHeuristic(p, k, opts), nil)
	default: // auto, oct, portfolio: race both engines with a shared incumbent
		sol, err = solveKPortfolio(ctx, p, k, opts)
	}
	if err != nil {
		return nil, err
	}
	sol.Elapsed = time.Since(start)
	if err := ValidateK(p, k, sol.Lo, sol.Hi); err != nil {
		return nil, fmt.Errorf("labeling: solver %s produced invalid K-labeling: %w", sol.Method, err)
	}
	if (opts.MaxRows > 0 && sol.Stats.R > opts.MaxRows) ||
		(opts.MaxCols > 0 && sol.Stats.C > opts.MaxCols) {
		return nil, fmt.Errorf("labeling: %s result footprint %dx%d exceeds budget %dx%d: %w",
			sol.Method, sol.Stats.R, sol.Stats.C, opts.MaxRows, opts.MaxCols, ErrInfeasible)
	}
	return sol, nil
}

// solveKHeuristic folds a 2D labeling across K layers: VH nodes keep the
// interval [0,1], V nodes sit on odd layers, H nodes are balanced across
// even layers, and a deterministic local search migrates nodes toward
// less-loaded layers of their parity while every move keeps all incident
// edges on adjacent layer pairs. Candidates are generated for every layer
// count 3..k (a k'-layer labeling is valid under k layers), plus the 2D
// lift itself, and the best objective wins — so S is monotone
// non-increasing in K by construction.
func solveKHeuristic(p Problem, k int, opts Options) *KSolution {
	base := solveHeuristic(p, opts)
	lo2, hi2 := LiftLabels(base.Labels)
	bestLo, bestHi := lo2, hi2
	bestStats := ComputeKStats(k, lo2, hi2)
	for kk := 3; kk <= k; kk++ {
		lo, hi := kFold(p, base.Labels, kk)
		st := ComputeKStats(k, lo, hi)
		if st.Objective(opts.Gamma) < bestStats.Objective(opts.Gamma)-1e-9 {
			bestLo, bestHi, bestStats = lo, hi, st
		}
	}
	return &KSolution{
		K: k, Lo: bestLo, Hi: bestHi,
		Stats:  bestStats,
		Method: "kfold",
	}
}

// kFold builds the folded assignment on exactly kk layers and runs the
// balancing local search. H nodes live on even layers, V nodes on odd
// layers, VH nodes on [0,1]; the parity split is invariant under every
// move, which is what keeps alignment (even layer for H-side nodes) free.
func kFold(p Problem, labels []Label, kk int) (lo, hi []int) {
	n := p.G.N()
	lo = make([]int, n)
	hi = make([]int, n)
	widths := make([]int, kk)
	// Initial fold: V → 1, VH → [0,1], H balanced between layers 0 and 2.
	for v, l := range labels {
		switch l {
		case V:
			lo[v], hi[v] = 1, 1
		case VH:
			lo[v], hi[v] = 0, 1
			widths[0]++
		default: // H
			if widths[0] <= widths[2] {
				lo[v], hi[v] = 0, 0
			} else {
				lo[v], hi[v] = 2, 2
			}
			widths[lo[v]]++
			continue
		}
		widths[1]++
	}
	// Local search: move a single-layer node to a strictly less-loaded
	// layer of its parity when every incident edge stays realizable. The
	// Σ width² potential strictly decreases per move, so this terminates;
	// the round cap just bounds the worst case.
	for round := 0; round < 4*kk; round++ {
		moved := false
		for v := 0; v < n; v++ {
			if lo[v] != hi[v] {
				continue // spanning (VH) nodes stay put
			}
			cur := lo[v]
			bestL, bestW := cur, widths[cur]-2 // require a strict potential drop
			for l := cur % 2; l < kk; l += 2 {
				if l == cur || widths[l] > bestW {
					continue
				}
				ok := true
				for _, u := range p.G.Adj(v) {
					if !edgeRealizable(l, l, lo[u], hi[u], kk) {
						ok = false
						break
					}
				}
				if ok {
					bestL, bestW = l, widths[l]
				}
			}
			if bestL != cur {
				widths[cur]--
				widths[bestL]++
				lo[v], hi[v] = bestL, bestL
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return lo, hi
}

// shrinkIntervals trims each node's interval from both ends while all
// incident edges stay realizable and alignment nodes keep an even layer:
// the ILP objective only prices the footprint, so it may return slack
// occupancy that would waste via stitches.
func shrinkIntervals(p Problem, k int, lo, hi []int) {
	alignSet := make(map[int]bool, len(p.AlignH))
	for _, v := range p.AlignH {
		alignSet[v] = true
	}
	hasEven := func(a, b int) bool {
		for l := a; l <= b; l++ {
			if l%2 == 0 {
				return true
			}
		}
		return false
	}
	canUse := func(v, a, b int) bool {
		if alignSet[v] && !hasEven(a, b) {
			return false
		}
		for _, u := range p.G.Adj(v) {
			if !edgeRealizable(a, b, lo[u], hi[u], k) {
				return false
			}
		}
		return true
	}
	for pass := 0; pass < 2; pass++ {
		for v := range lo {
			for lo[v] < hi[v] && canUse(v, lo[v], hi[v]-1) {
				hi[v]--
			}
			for lo[v] < hi[v] && canUse(v, lo[v]+1, hi[v]) {
				lo[v]++
			}
		}
	}
}

// solveKPortfolio mirrors solvePortfolio for the K >= 3 engines: the fold
// heuristic runs first (polynomial, near-instant) and seeds the shared
// incumbent; the interval ILP then prunes against it via BestKnown. With
// one exact engine the race is sequential, but the incumbent-sharing
// contract is identical to the 2D portfolio.
func solveKPortfolio(ctx context.Context, p Problem, k int, opts Options) (*KSolution, error) {
	gamma := opts.Gamma
	shared := newSharedIncumbent()

	hStart := time.Now()
	heur := solveKHeuristic(p, k, opts)
	heur.Elapsed = time.Since(hStart)
	shared.offer(heur.Stats.Objective(gamma))
	reports := []EngineReport{{
		Method:    "kfold",
		Objective: heur.Stats.Objective(gamma),
		Optimal:   heur.Optimal,
		Elapsed:   heur.Elapsed,
	}}

	fits := func(s *KSolution) bool {
		return (opts.MaxRows <= 0 || s.Stats.R <= opts.MaxRows) &&
			(opts.MaxCols <= 0 || s.Stats.C <= opts.MaxCols)
	}
	best, bestName := heur, "kfold"
	mStart := time.Now()
	mip, err := solveKMIP(ctx, p, k, opts, heur, shared.get)
	rep := EngineReport{Method: "kmip", Elapsed: time.Since(mStart), Objective: math.Inf(1)}
	if err != nil {
		rep.Err = err.Error()
		if ctx.Err() == nil {
			return nil, err
		}
	} else if ValidateK(p, k, mip.Lo, mip.Hi) == nil {
		rep.Objective = mip.Stats.Objective(gamma)
		rep.Optimal = mip.Optimal
		shared.offer(rep.Objective)
		switch {
		case fits(mip) && !fits(best):
			best, bestName = mip, "kmip"
		case fits(mip) == fits(best) && rep.Objective < best.Stats.Objective(gamma)-1e-9:
			best, bestName = mip, "kmip"
		case fits(mip) == fits(best) && rep.Objective < best.Stats.Objective(gamma)+1e-9 && mip.Optimal && !best.Optimal:
			best, bestName = mip, "kmip"
		}
	}
	reports = append(reports, rep)
	for i := range reports {
		reports[i].Winner = reports[i].Method == bestName
	}
	return &KSolution{
		K: k, Lo: best.Lo, Hi: best.Hi,
		Stats:   best.Stats,
		Optimal: best.Optimal,
		Method:  "portfolio(" + bestName + ")",
		Trace:   best.Trace,
		Engines: reports,
	}, nil
}

// solveKMIP solves the interval ILP: occupancy binaries x[v][l] with
// contiguity triples, per-edge adjacency helpers, even-layer alignment,
// and integer R/C/D footprint variables carrying the γ-weighted objective.
// The 2D odd-cycle machinery carries over: a node on a single layer has a
// fixed parity and edges connect opposite parities, so every odd cycle
// forces at least one spanning node — the disjoint-cycle cuts and the OCT
// packing bound on total occupancy remain valid for every K.
func solveKMIP(ctx context.Context, p Problem, k int, opts Options, primer *KSolution, bestKnown func() float64) (*KSolution, error) {
	gamma := opts.Gamma
	n := p.G.N()
	mod := ilp.NewModel("k-labeling")
	x := make([][]int, n)
	for v := 0; v < n; v++ {
		x[v] = make([]int, k)
		for l := 0; l < k; l++ {
			x[v][l] = mod.AddVar(fmt.Sprintf("x%d_%d", v, l), 0, 1, ilp.Binary, 0)
		}
	}
	edges := p.G.Edges()
	// y[e][d][dir]: edge e realized on device layer d, dir 0 = (u@d, v@d+1).
	y := make([][][2]int, len(edges))
	for e := range edges {
		y[e] = make([][2]int, k-1)
		for d := 0; d < k-1; d++ {
			y[e][d][0] = mod.AddVar(fmt.Sprintf("y%d_%d_0", e, d), 0, 1, ilp.Binary, 0)
			y[e][d][1] = mod.AddVar(fmt.Sprintf("y%d_%d_1", e, d), 0, 1, ilp.Binary, 0)
		}
	}
	rVar := mod.AddVar("R", 0, float64(n), ilp.Integer, gamma)
	cVar := mod.AddVar("C", 0, float64(n), ilp.Integer, gamma)
	dVar := mod.AddVar("D", 0, float64(n), ilp.Integer, 1-gamma)

	for v := 0; v < n; v++ {
		terms := make([]ilp.Term, k)
		for l := 0; l < k; l++ {
			terms[l] = ilp.Term{Var: x[v][l], Coeff: 1}
		}
		mod.AddConstr("occ", terms, ilp.GE, 1)
		// Contiguity: occupying l1 and l3 forces every layer between them.
		for l1 := 0; l1 < k; l1++ {
			for l2 := l1 + 1; l2 < k; l2++ {
				for l3 := l2 + 1; l3 < k; l3++ {
					mod.AddConstr("contig", []ilp.Term{
						{Var: x[v][l1], Coeff: 1}, {Var: x[v][l3], Coeff: 1}, {Var: x[v][l2], Coeff: -1},
					}, ilp.LE, 1)
				}
			}
		}
	}
	for e, ed := range edges {
		u, v := ed[0], ed[1]
		cover := make([]ilp.Term, 0, 2*(k-1))
		for d := 0; d < k-1; d++ {
			mod.AddConstr("yu", []ilp.Term{{Var: y[e][d][0], Coeff: 1}, {Var: x[u][d], Coeff: -1}}, ilp.LE, 0)
			mod.AddConstr("yv", []ilp.Term{{Var: y[e][d][0], Coeff: 1}, {Var: x[v][d+1], Coeff: -1}}, ilp.LE, 0)
			mod.AddConstr("yu", []ilp.Term{{Var: y[e][d][1], Coeff: 1}, {Var: x[v][d], Coeff: -1}}, ilp.LE, 0)
			mod.AddConstr("yv", []ilp.Term{{Var: y[e][d][1], Coeff: 1}, {Var: x[u][d+1], Coeff: -1}}, ilp.LE, 0)
			cover = append(cover, ilp.Term{Var: y[e][d][0], Coeff: 1}, ilp.Term{Var: y[e][d][1], Coeff: 1})
		}
		mod.AddConstr("edge", cover, ilp.GE, 1)
	}
	for _, v := range p.AlignH {
		terms := make([]ilp.Term, 0, (k+1)/2)
		for l := 0; l < k; l += 2 {
			terms = append(terms, ilp.Term{Var: x[v][l], Coeff: 1})
		}
		mod.AddConstr("align", terms, ilp.GE, 1)
	}
	// Footprint: R bounds every even-layer width, C every odd, D all.
	for l := 0; l < k; l++ {
		terms := make([]ilp.Term, 0, n+1)
		for v := 0; v < n; v++ {
			terms = append(terms, ilp.Term{Var: x[v][l], Coeff: -1})
		}
		if l%2 == 0 {
			mod.AddConstr("RgeW", append(terms, ilp.Term{Var: rVar, Coeff: 1}), ilp.GE, 0)
		} else {
			mod.AddConstr("CgeW", append(terms, ilp.Term{Var: cVar, Coeff: 1}), ilp.GE, 0)
		}
		dterms := make([]ilp.Term, 0, n+1)
		for v := 0; v < n; v++ {
			dterms = append(dterms, ilp.Term{Var: x[v][l], Coeff: -1})
		}
		mod.AddConstr("DgeW", append(dterms, ilp.Term{Var: dVar, Coeff: 1}), ilp.GE, 0)
	}
	if opts.MaxRows > 0 {
		mod.AddConstr("maxRows", []ilp.Term{{Var: rVar, Coeff: 1}}, ilp.LE, float64(opts.MaxRows))
	}
	if opts.MaxCols > 0 {
		mod.AddConstr("maxCols", []ilp.Term{{Var: cVar, Coeff: 1}}, ilp.LE, float64(opts.MaxCols))
	}
	// Strengthening cuts, inherited from the 2D model: single-layer nodes
	// have a fixed parity and every edge joins opposite parities, so any
	// odd cycle forces a node spanning both parities (>= 2 layers). Hence
	// per disjoint odd cycle Σ occupancy >= |C| + 1, and globally total
	// occupancy >= n + kLB with kLB the OCT packing bound.
	cycles := oct.DisjointOddCycles(p.G)
	for _, cyc := range cycles {
		terms := make([]ilp.Term, 0, k*len(cyc))
		for _, v := range cyc {
			for l := 0; l < k; l++ {
				terms = append(terms, ilp.Term{Var: x[v][l], Coeff: 1})
			}
		}
		mod.AddConstr("oddcyc", terms, ilp.GE, float64(len(cyc)+1))
	}
	kLB := len(cycles)
	occTerms := make([]ilp.Term, 0, n*k)
	for v := 0; v < n; v++ {
		for l := 0; l < k; l++ {
			occTerms = append(occTerms, ilp.Term{Var: x[v][l], Coeff: 1})
		}
	}
	mod.AddConstr("occLB", occTerms, ilp.GE, float64(n+kLB))

	// Analytic objective floor: ⌈k/2⌉·R + ⌊k/2⌋·C >= total occupancy
	// >= n + kLB, so S >= (n+kLB)/⌈k/2⌉ and D >= (n+kLB)/k.
	ke := (k + 1) / 2
	analytic := gamma*float64(n+kLB)/float64(ke) + (1-gamma)*float64(n+kLB)/float64(k)

	// Incumbent from the fold heuristic.
	var inc []float64
	if primer != nil {
		inc = make([]float64, mod.NumVars())
		for v := 0; v < n; v++ {
			for l := primer.Lo[v]; l <= primer.Hi[v]; l++ {
				inc[x[v][l]] = 1
			}
		}
		for e, ed := range edges {
			u, v := ed[0], ed[1]
			for d := 0; d < k-1; d++ {
				if Occupies(primer.Lo[u], primer.Hi[u], d) && Occupies(primer.Lo[v], primer.Hi[v], d+1) {
					inc[y[e][d][0]] = 1
				}
				if Occupies(primer.Lo[v], primer.Hi[v], d) && Occupies(primer.Lo[u], primer.Hi[u], d+1) {
					inc[y[e][d][1]] = 1
				}
			}
		}
		inc[rVar] = float64(primer.Stats.R)
		inc[cVar] = float64(primer.Stats.C)
		inc[dVar] = float64(primer.Stats.D)
	}

	fallback := func(method string, trace []ilp.TraceEvent) *KSolution {
		lo := append([]int(nil), primer.Lo...)
		hi := append([]int(nil), primer.Hi...)
		return &KSolution{K: k, Lo: lo, Hi: hi, Stats: primer.Stats, Method: method, Trace: trace}
	}
	// Memory guard: same dense-tableau worst case as the 2D model.
	rows := int64(mod.NumConstrs())
	cols := int64(mod.NumVars()) + 2*rows
	if rows*cols*8 > maxTableauBytes {
		obj := primer.Stats.Objective(gamma)
		gap := 0.0
		if obj > 0 {
			gap = (obj - analytic) / obj
			if gap < 0 {
				gap = 0
			}
		}
		sol := fallback("kmip-bounded", []ilp.TraceEvent{{Incumbent: obj, Bound: analytic, Gap: gap}})
		sol.Optimal = gap <= 1e-9
		return sol, nil
	}

	sol, err := ilp.SolveContext(ctx, mod, ilp.Options{
		Incumbent: inc, BestKnown: bestKnown, Workers: ilp.DefaultWorkers(),
	})
	if err != nil {
		if ctx.Err() != nil {
			return fallback("kmip-fallback", nil), nil
		}
		return nil, fmt.Errorf("labeling: K-MIP solve: %w", err)
	}
	if sol.Status == ilp.StatusInfeasible {
		return nil, fmt.Errorf("labeling: no %d-layer labeling within %dx%d: %w", k, opts.MaxRows, opts.MaxCols, ErrInfeasible)
	}
	if sol.X == nil && (opts.MaxRows > 0 || opts.MaxCols > 0) {
		return nil, fmt.Errorf("labeling: %d-layer budget %dx%d neither met nor refuted within the time limit",
			k, opts.MaxRows, opts.MaxCols)
	}
	if sol.X == nil {
		return fallback("kmip-fallback", sol.Trace), nil
	}
	lo := make([]int, n)
	hi := make([]int, n)
	for v := 0; v < n; v++ {
		lo[v], hi[v] = -1, -1
		for l := 0; l < k; l++ {
			if sol.X[x[v][l]] > 0.5 {
				if lo[v] < 0 {
					lo[v] = l
				}
				hi[v] = l
			}
		}
	}
	shrinkIntervals(p, k, lo, hi)
	st := ComputeKStats(k, lo, hi)
	obj := st.Objective(gamma)
	bound := analytic
	if len(sol.Trace) > 0 && sol.Trace[len(sol.Trace)-1].Bound > bound {
		bound = sol.Trace[len(sol.Trace)-1].Bound
	}
	gap := 0.0
	if obj > bound && obj > 0 {
		gap = (obj - bound) / obj
	}
	optimal := sol.Status == ilp.StatusOptimal || gap <= 1e-9
	trace := sol.Trace
	if len(trace) == 0 || trace[len(trace)-1].Bound < bound-1e-9 {
		last := ilp.TraceEvent{Incumbent: obj, Bound: bound, Gap: gap, Nodes: sol.Nodes}
		if len(trace) > 0 {
			last.Elapsed = trace[len(trace)-1].Elapsed
		}
		trace = append(trace, last)
	}
	return &KSolution{
		K: k, Lo: lo, Hi: hi,
		Stats:   st,
		Optimal: optimal,
		Method:  "kmip",
		Trace:   trace,
	}, nil
}

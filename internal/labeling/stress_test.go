package labeling

import (
	"math"
	"math/rand"
	"testing"
)

// TestStressMIPAllConfigs cross-checks the MIP against brute force over a
// wider grid of sizes, densities, gammas, alignment sets and both MIP
// formulations.
func TestStressMIPAllConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(4)
		g := randomGraph(rng, n, 0.25+0.4*rng.Float64())
		var align []int
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.25 {
				align = append(align, v)
			}
		}
		p := Problem{G: g, AlignH: align}
		gamma := []float64{0, 0.25, 0.5, 0.75, 1}[rng.Intn(5)]
		want := bruteBest(p, gamma)
		for _, helpers := range []bool{false, true} {
			sol, err := Solve(p, Options{
				Method: MethodMIP, Gamma: gamma, UseEdgeHelpers: helpers,
			})
			if err != nil {
				t.Fatalf("trial %d helpers=%v: %v", trial, helpers, err)
			}
			if !sol.Optimal {
				t.Fatalf("trial %d helpers=%v: not optimal", trial, helpers)
			}
			if got := sol.Stats.Objective(gamma); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d helpers=%v γ=%v: got %v want %v", trial, helpers, gamma, got, want)
			}
		}
	}
}

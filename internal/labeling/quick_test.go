package labeling

import (
	"math/rand"
	"testing"
	"testing/quick"

	"compact/internal/graph"
)

func graphFromSeed(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Property: every solver method returns a labeling that validates, with
// S >= n always, and S == n exactly when the graph is bipartite (no
// alignment constraints involved).
func TestQuickAllMethodsValidate(t *testing.T) {
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 10, 0.3)
		p := Problem{G: g}
		for _, m := range []Method{MethodOCT, MethodHeuristic} {
			sol, err := Solve(p, Options{Method: m, Gamma: 1})
			if err != nil {
				return false
			}
			if sol.Stats.S < g.N() {
				return false
			}
			if g.IsBipartite() && sol.Stats.S != g.N() {
				// Both methods find zero VH labels on bipartite graphs.
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the OCT-method semiperimeter is n plus the proven minimum OCT
// size (without alignment), and no method beats it.
func TestQuickOCTSemiperimeterIsOptimal(t *testing.T) {
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 9, 0.35)
		p := Problem{G: g}
		octSol, err := Solve(p, Options{Method: MethodOCT, Gamma: 1})
		if err != nil || !octSol.Optimal {
			return err == nil // non-proven runs are skipped, not failures
		}
		heur, err := Solve(p, Options{Method: MethodHeuristic, Gamma: 1})
		if err != nil {
			return false
		}
		return heur.Stats.S >= octSol.Stats.S
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: upgrading any single node of a valid labeling to VH keeps it
// valid (VH is compatible with every neighbor label).
func TestQuickVHUpgradeKeepsValidity(t *testing.T) {
	prop := func(seed int64, pick uint8) bool {
		g := graphFromSeed(seed, 10, 0.3)
		p := Problem{G: g}
		sol, err := Solve(p, Options{Method: MethodHeuristic})
		if err != nil {
			return false
		}
		labels := append([]Label(nil), sol.Labels...)
		labels[int(pick)%len(labels)] = VH
		return Validate(p, labels) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: ComputeStats is consistent: Rows+Cols == S, D == max, and the
// objective interpolates linearly between D (γ=0) and S (γ=1).
func TestQuickStatsConsistency(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		labels := make([]Label, len(raw))
		for i, r := range raw {
			labels[i] = Label(r%3) + 1
		}
		st := ComputeStats(labels)
		if st.S != st.Rows+st.Cols {
			return false
		}
		if st.D != st.Rows && st.D != st.Cols {
			return false
		}
		mid := st.Objective(0.5)
		return mid == (st.Objective(0)+st.Objective(1))/2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

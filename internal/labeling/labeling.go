// Package labeling solves COMPACT's VH-labeling problem (Section V-B of
// the paper): assign every node of an undirected graph a label V (vertical
// bitline), H (horizontal wordline), or VH (both) such that no edge joins
// two V nodes or two H nodes, minimizing the weighted objective
// γ·S + (1−γ)·D where S is the crossbar semiperimeter (= n + #VH) and D
// the maximum dimension (= max(rows, cols)).
//
// Three solvers are provided:
//
//   - MethodOCT (Section VI-A): minimum odd cycle transversal via vertex
//     cover of G □ K2, then 2-coloring — provably minimal semiperimeter.
//   - MethodMIP (Section VI-B): the full Eq. 4 MIP, including the Eq. 7
//     alignment constraints, solved by the internal branch & bound.
//   - MethodHeuristic: greedy bipartization plus balancing, for graphs
//     beyond exact reach.
//   - MethodPortfolio: a concurrent anytime race of the three — the
//     heuristic's bound warm-starts the exact engines, incumbents are
//     shared, and the best labeling wins when the budget expires.
//
// Every solver is deadline-honest: SolveContext derives one shared
// context deadline from Options.TimeLimit, and all sub-solves (including
// the MIP's OCT warm start) spend from that single budget.
package labeling

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"compact/internal/graph"
	"compact/internal/ilp"
	"compact/internal/invariant"
	"compact/internal/oct"
)

// Label is a node's crossbar-side assignment.
type Label uint8

// Node labels. Unlabeled only appears in invalid solutions.
const (
	Unlabeled Label = iota
	V               // vertical bitline only
	H               // horizontal wordline only
	VH              // both a wordline and a bitline
)

func (l Label) String() string {
	switch l {
	case V:
		return "V"
	case H:
		return "H"
	case VH:
		return "VH"
	}
	return "?"
}

// HasH reports whether the label includes a wordline.
func (l Label) HasH() bool { return l == H || l == VH }

// HasV reports whether the label includes a bitline.
func (l Label) HasV() bool { return l == V || l == VH }

// Problem is a VH-labeling instance.
type Problem struct {
	// G is the undirected graph derived from the BDD (0-terminal removed).
	G *graph.Graph
	// AlignH lists nodes that must receive at least an H label (the
	// paper's Eq. 7: function outputs/roots and the 1-terminal input).
	AlignH []int
}

// Stats are the crossbar dimensions implied by a labeling.
type Stats struct {
	Rows int // #H + #VH
	Cols int // #V + #VH
	S    int // semiperimeter = Rows + Cols
	D    int // max dimension = max(Rows, Cols)
}

// Objective evaluates γ·S + (1−γ)·D.
func (s Stats) Objective(gamma float64) float64 {
	return gamma*float64(s.S) + (1-gamma)*float64(s.D)
}

// ComputeStats derives crossbar dimensions from a labeling.
func ComputeStats(labels []Label) Stats {
	var st Stats
	for _, l := range labels {
		if l.HasH() {
			st.Rows++
		}
		if l.HasV() {
			st.Cols++
		}
	}
	st.S = st.Rows + st.Cols
	st.D = st.Rows
	if st.Cols > st.D {
		st.D = st.Cols
	}
	return st
}

// Validate checks that labels solve the problem: every node labeled, no
// V–V or H–H edge, and all alignment nodes carry an H.
func Validate(p Problem, labels []Label) error {
	if len(labels) != p.G.N() {
		return fmt.Errorf("labeling: %d labels for %d nodes", len(labels), p.G.N())
	}
	for v, l := range labels {
		if l == Unlabeled {
			return fmt.Errorf("labeling: node %d unlabeled", v)
		}
	}
	for _, e := range p.G.Edges() {
		lu, lv := labels[e[0]], labels[e[1]]
		ok := (lu.HasH() && lv.HasV()) || (lu.HasV() && lv.HasH())
		if !ok {
			return fmt.Errorf("labeling: edge (%d,%d) with labels %s–%s unrealizable", e[0], e[1], lu, lv)
		}
	}
	for _, v := range p.AlignH {
		if !labels[v].HasH() {
			return fmt.Errorf("labeling: alignment node %d labeled %s, needs H", v, labels[v])
		}
	}
	return nil
}

// Method selects the solver.
type Method uint8

// Solver methods.
const (
	MethodAuto      Method = iota // MIP when small enough, else heuristic
	MethodOCT                     // Section VI-A (γ=1 semantics)
	MethodMIP                     // Section VI-B (weighted objective)
	MethodHeuristic               // greedy bipartization + balancing
	MethodPortfolio               // concurrent anytime race of the above
)

func (m Method) String() string {
	switch m {
	case MethodOCT:
		return "oct"
	case MethodMIP:
		return "mip"
	case MethodHeuristic:
		return "heuristic"
	case MethodPortfolio:
		return "portfolio"
	default:
		return "auto"
	}
}

// Options tunes Solve.
type Options struct {
	// Gamma weighs semiperimeter vs maximum dimension in [0,1]; the
	// paper's default (and this package's, when unset via UseGamma) is 1
	// for MethodOCT and 0.5 for the others.
	Gamma float64
	// Method selects the solver (default MethodAuto).
	Method Method
	// TimeLimit bounds the whole solve: it becomes a deadline on one
	// context shared by every sub-solver (OCT warm start, MIP, portfolio
	// engines), so the total wall clock never exceeds the budget. Expired
	// limits degrade to the best feasible labeling found (never to an
	// invalid one).
	TimeLimit time.Duration
	// OCTBackend selects the vertex-cover engine for MethodOCT.
	OCTBackend oct.Backend
	// AutoExactLimit is the maximum node count for which MethodAuto picks
	// an exact solver (default 600).
	AutoExactLimit int
	// UseEdgeHelpers reproduces the paper's literal Eq. 4 MIP with one
	// binary orientation helper per edge. The default formulation encodes
	// the same disjunction directly as x_i^V + x_j^V >= 1 and
	// x_i^H + x_j^H >= 1 per edge (provably equivalent: exactly the
	// V-only/V-only and H-only/H-only label pairs are excluded), which is
	// smaller and solves much faster — kept as an ablation knob.
	UseEdgeHelpers bool
	// MaxRows/MaxCols cap the crossbar dimensions (0 = unconstrained),
	// the Section III extension: Solve returns ErrInfeasible when no
	// valid labeling fits the budget. Only MethodMIP enforces these
	// exactly; the other methods reject their result if it violates them.
	MaxRows, MaxCols int
}

// ErrInfeasible reports that no valid labeling satisfies the requested
// row/column budget (Options.MaxRows / Options.MaxCols).
var ErrInfeasible = errors.New("labeling: row/column constraints are infeasible")

// maxTableauBytes bounds the LP tableau the MIP labeler may allocate;
// larger models use the analytic-bound fallback (see solveMIP).
const maxTableauBytes = int64(1) << 30

// Solution is a valid labeling plus solve metadata.
type Solution struct {
	Labels  []Label
	Stats   Stats
	Optimal bool   // proven optimal for the chosen objective
	Method  string // solver that produced the labeling
	Elapsed time.Duration
	// Trace carries the MIP convergence samples (Figure 10/11 data);
	// empty for non-MIP methods. For MethodPortfolio it is the winning
	// engine's trace.
	Trace []ilp.TraceEvent
	// Engines reports the per-engine outcome of a MethodPortfolio race
	// (which engine won, each engine's objective and elapsed time); nil for
	// the single-engine methods.
	Engines []EngineReport
}

// Solve computes a VH-labeling of p.
func Solve(p Problem, opts Options) (*Solution, error) {
	return SolveContext(context.Background(), p, opts)
}

// SolveContext is Solve with cooperative cancellation. Options.TimeLimit
// becomes a deadline on one context shared by every sub-solver — the OCT
// warm start, the MIP branch & bound (checked inside simplex pivots) and
// the portfolio engines all spend from the same budget, so the total wall
// clock cannot exceed it by more than one pivot. When the budget or ctx
// expires mid-solve, the best valid labeling found so far is returned
// (never an error); a context that is already dead on entry returns
// (nil, ctx.Err()) promptly.
func SolveContext(ctx context.Context, p Problem, opts Options) (*Solution, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.TimeLimit > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.TimeLimit)
		defer cancel()
	}
	if opts.AutoExactLimit <= 0 {
		opts.AutoExactLimit = 600
	}
	// Provable early infeasibility: every valid labeling has semiperimeter
	// S = Rows + Cols = n + #VH >= n, so when both caps are set and the
	// graph alone exceeds their sum, no solver can succeed — refute in
	// O(1) instead of burning the budget on a doomed search. This is what
	// makes partitioned synthesis affordable: each failed piece attempt
	// costs a BDD build, not an exact-solver timeout.
	if opts.MaxRows > 0 && opts.MaxCols > 0 && p.G.N() > opts.MaxRows+opts.MaxCols {
		return nil, fmt.Errorf("labeling: %d graph nodes force semiperimeter >= %d, budget %dx%d allows %d: %w",
			p.G.N(), p.G.N(), opts.MaxRows, opts.MaxCols, opts.MaxRows+opts.MaxCols, ErrInfeasible)
	}
	method := opts.Method
	if method == MethodAuto {
		if p.G.N() <= opts.AutoExactLimit {
			method = MethodMIP
		} else {
			// The OCT route scales far beyond the MIP thanks to the
			// Nemhauser–Trotter kernel, and degrades to the greedy cover
			// inside the vertex-cover search when the time limit bites —
			// strictly better than the plain heuristic labeler.
			method = MethodOCT
		}
	}
	var sol *Solution
	var err error
	switch method {
	case MethodOCT:
		sol, err = solveOCT(ctx, p, opts)
	case MethodMIP:
		sol, err = solveMIP(ctx, p, opts, nil, nil)
	case MethodHeuristic:
		sol = solveHeuristic(p, opts)
	case MethodPortfolio:
		sol, err = solvePortfolio(ctx, p, opts)
	default:
		return nil, fmt.Errorf("labeling: unknown method %v", method)
	}
	if err != nil {
		return nil, err
	}
	sol.Elapsed = time.Since(start)
	if err := Validate(p, sol.Labels); err != nil {
		return nil, fmt.Errorf("labeling: solver %s produced invalid labeling: %w", sol.Method, err)
	}
	hasH := func(v int) bool { return sol.Labels[v].HasH() }
	hasV := func(v int) bool { return sol.Labels[v].HasV() }
	if err := invariant.EdgesSpanHV(p.G, hasH, hasV); err != nil {
		return nil, fmt.Errorf("labeling: solver %s: %w", sol.Method, err)
	}
	vh := 0
	for _, l := range sol.Labels {
		if l == VH {
			vh++
		}
	}
	if err := invariant.Semiperimeter(p.G.N(), vh, sol.Stats.S); err != nil {
		return nil, fmt.Errorf("labeling: solver %s: %w", sol.Method, err)
	}
	if (opts.MaxRows > 0 && sol.Stats.Rows > opts.MaxRows) ||
		(opts.MaxCols > 0 && sol.Stats.Cols > opts.MaxCols) {
		// Non-MIP methods do not optimize under dimension budgets; their
		// result simply failed the caps (the budget may still be feasible
		// via MethodMIP). The MIP path returns ErrInfeasible directly on
		// proven infeasibility before reaching here.
		return nil, fmt.Errorf("labeling: %s result %dx%d exceeds budget %dx%d: %w",
			sol.Method, sol.Stats.Rows, sol.Stats.Cols, opts.MaxRows, opts.MaxCols, ErrInfeasible)
	}
	return sol, nil
}

// solveOCT implements Section VI-A: minimum OCT → VH labels; residual
// 2-coloring → V/H, oriented per component to honor alignment and balance
// the dimensions (the paper's Figure 6 optimization). Optimality refers to
// the semiperimeter (γ=1 objective) on instances without alignment
// conflicts; alignment patches may add VH labels. The time budget rides on
// ctx (set up by SolveContext); a budget that dies mid-search degrades to
// the greedy OCT rather than erroring.
func solveOCT(ctx context.Context, p Problem, opts Options) (*Solution, error) {
	res, err := oct.FindContext(ctx, p.G, oct.Options{Backend: opts.OCTBackend})
	if err != nil {
		if ctx.Err() == nil {
			return nil, err
		}
		// The shared budget expired before the OCT search even started
		// (FindContext entry check): anytime contract says degrade, not
		// error. The greedy OCT is polynomial and always valid.
		res = oct.Heuristic(p.G)
	}
	labels, upgrades := orientAndBalance(p, res)
	st := ComputeStats(labels)
	// The method proves minimality of S (= n + k*) when the OCT is proven
	// and no alignment upgrades were needed. For γ < 1 the objective also
	// involves D; the result is additionally optimal when D meets the
	// analytic floor ⌈S/2⌉ (then γS + (1−γ)D equals the valid lower bound
	// γ(n+k*) + (1−γ)⌈(n+k*)/2⌉ for every γ).
	gamma := opts.Gamma
	optimal := res.Optimal && upgrades == 0 && (gamma >= 1 || st.D == (st.S+1)/2)
	return &Solution{
		Labels:  labels,
		Stats:   st,
		Optimal: optimal,
		Method:  "oct",
	}, nil
}

// solveHeuristic uses the greedy OCT plus the same orientation/balancing.
func solveHeuristic(p Problem, opts Options) *Solution {
	res := oct.Heuristic(p.G)
	labels, _ := orientAndBalance(p, res)
	return &Solution{
		Labels: labels,
		Stats:  ComputeStats(labels),
		Method: "heuristic",
	}
}

// orientAndBalance converts an OCT + residual 2-coloring into labels:
// OCT nodes become VH; each residual component's two color classes are
// assigned H/V choosing, per component, the orientation that (1) minimizes
// alignment violations and (2) balances rows vs columns. Remaining
// alignment violators are upgraded to VH. Returns the labels and the
// number of upgrades.
func orientAndBalance(p Problem, res oct.Result) ([]Label, int) {
	n := p.G.N()
	labels := make([]Label, n)
	for v := range res.OCT {
		labels[v] = VH
	}
	alignSet := make(map[int]bool, len(p.AlignH))
	for _, v := range p.AlignH {
		alignSet[v] = true
	}

	// Components of the residual graph, walked directly on G.
	compID := make([]int, n)
	for i := range compID {
		compID[i] = -1
	}
	type compInfo struct {
		side0, side1   []int // members by res.Side
		align0, align1 int   // alignment nodes per side
	}
	var comps []*compInfo
	for s := 0; s < n; s++ {
		if compID[s] >= 0 || res.OCT[s] {
			continue
		}
		ci := &compInfo{}
		id := len(comps)
		stack := []int{s}
		compID[s] = id
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if res.Side[u] == 0 {
				ci.side0 = append(ci.side0, u)
				if alignSet[u] {
					ci.align0++
				}
			} else {
				ci.side1 = append(ci.side1, u)
				if alignSet[u] {
					ci.align1++
				}
			}
			for _, w := range p.G.Adj(u) {
				if compID[w] < 0 && !res.OCT[w] {
					compID[w] = id
					stack = append(stack, w)
				}
			}
		}
		comps = append(comps, ci)
	}

	// Rows/cols contributed by the VH set.
	rows, cols := len(res.OCT), len(res.OCT)
	upgrades := 0
	// First pass: components with an alignment preference get the
	// orientation minimizing upgrades (ties deferred to balancing).
	type choice struct {
		ci     *compInfo
		forced int // 0: side0->H, 1: side1->H, -1: free
	}
	var choices []choice
	for _, ci := range comps {
		switch {
		case ci.align0 > ci.align1:
			choices = append(choices, choice{ci, 0})
		case ci.align1 > ci.align0:
			choices = append(choices, choice{ci, 1})
		case ci.align0 > 0: // equal and nonzero: either way same upgrades
			choices = append(choices, choice{ci, -1})
		default:
			choices = append(choices, choice{ci, -1})
		}
	}
	apply := func(ci *compInfo, hSide int) {
		var hs, vs []int
		if hSide == 0 {
			hs, vs = ci.side0, ci.side1
		} else {
			hs, vs = ci.side1, ci.side0
		}
		for _, v := range hs {
			labels[v] = H
		}
		for _, v := range vs {
			if alignSet[v] {
				labels[v] = VH // alignment violator upgraded
				upgrades++
			} else {
				labels[v] = V
			}
		}
		rows += len(hs)
		cols += len(vs)
		// Upgraded nodes count on both sides.
		for _, v := range vs {
			if alignSet[v] {
				rows++
			}
		}
	}
	// Forced components first.
	var free []*compInfo
	for _, c := range choices {
		if c.forced >= 0 {
			apply(c.ci, c.forced)
		} else {
			free = append(free, c.ci)
		}
	}
	// Free components: largest imbalance first, always putting the larger
	// class on the currently smaller dimension.
	sort.Slice(free, func(i, j int) bool {
		di := abs(len(free[i].side0) - len(free[i].side1))
		dj := abs(len(free[j].side0) - len(free[j].side1))
		if di != dj {
			return di > dj
		}
		return len(free[i].side0)+len(free[i].side1) > len(free[j].side0)+len(free[j].side1)
	})
	for _, ci := range free {
		// Account for forced upgrades identically in both orientations.
		r0, c0 := rows+len(ci.side0)+ci.align1, cols+len(ci.side1)
		r1, c1 := rows+len(ci.side1)+ci.align0, cols+len(ci.side0)
		if maxDimAfter(r0, c0) <= maxDimAfter(r1, c1) {
			apply(ci, 0)
		} else {
			apply(ci, 1)
		}
	}
	return labels, upgrades
}

// ctxRemaining returns the time left on ctx's deadline (clamped at 0), or
// 0 when ctx has no deadline.
func ctxRemaining(ctx context.Context) time.Duration {
	if d, ok := ctx.Deadline(); ok {
		if r := time.Until(d); r > 0 {
			return r
		}
		return 0
	}
	return 0
}

func maxDimAfter(r, c int) int {
	if r > c {
		return r
	}
	return c
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// solveMIP implements Section VI-B: the Eq. 4 MIP with Eq. 7 alignment,
// solved by the internal branch & bound, primed with the heuristic
// labeling as incumbent. The whole solve — OCT warm start included —
// spends from the single deadline carried by ctx, so the user's budget is
// never exceeded (the warm start used to get TimeLimit/2 and the MIP the
// full TimeLimit again; with one shared deadline that double-spend is
// impossible by construction). primer, when non-nil, is a valid labeling
// used as the incumbent instead of recomputing the heuristic; bestKnown,
// when non-nil, feeds a live external objective bound into the branch &
// bound (portfolio incumbent sharing).
func solveMIP(ctx context.Context, p Problem, opts Options, primer *Solution, bestKnown func() float64) (*Solution, error) {
	gamma := opts.Gamma
	n := p.G.N()
	mod := ilp.NewModel("vh-labeling")
	// Variables: xV_i, xH_i per node; xE per edge; D.
	xV := make([]int, n)
	xH := make([]int, n)
	for i := 0; i < n; i++ {
		xV[i] = mod.AddVar(fmt.Sprintf("xV%d", i), 0, 1, ilp.Binary, gamma)
		xH[i] = mod.AddVar(fmt.Sprintf("xH%d", i), 0, 1, ilp.Binary, gamma)
	}
	edges := p.G.Edges()
	var xE []int
	if opts.UseEdgeHelpers {
		xE = make([]int, len(edges))
		for k := range edges {
			xE[k] = mod.AddVar(fmt.Sprintf("e%d", k), 0, 1, ilp.Binary, 0)
		}
	}
	// D is integral in every optimal labeling (it equals max(R, C));
	// declaring it Integer lets the solver exploit objective granularity.
	dVar := mod.AddVar("D", 0, float64(n), ilp.Integer, 1-gamma)

	// Every node carries at least one label.
	for i := 0; i < n; i++ {
		mod.AddConstr("lbl", []ilp.Term{{Var: xV[i], Coeff: 1}, {Var: xH[i], Coeff: 1}}, ilp.GE, 1)
	}
	// Connection constraints: each edge must be V–H or H–V.
	for k, e := range edges {
		i, j := e[0], e[1]
		if opts.UseEdgeHelpers {
			// The paper's Eq. 4: a binary helper picks the orientation.
			mod.AddConstr("conVH", []ilp.Term{
				{Var: xV[i], Coeff: 1}, {Var: xH[j], Coeff: 1}, {Var: xE[k], Coeff: 2},
			}, ilp.GE, 2)
			mod.AddConstr("conHV", []ilp.Term{
				{Var: xH[i], Coeff: 1}, {Var: xV[j], Coeff: 1}, {Var: xE[k], Coeff: -2},
			}, ilp.GE, 0)
		} else {
			// Helper-free equivalent: forbid V-only/V-only (no H on either
			// side) and H-only/H-only (no V on either side).
			mod.AddConstr("conH", []ilp.Term{
				{Var: xH[i], Coeff: 1}, {Var: xH[j], Coeff: 1},
			}, ilp.GE, 1)
			mod.AddConstr("conV", []ilp.Term{
				{Var: xV[i], Coeff: 1}, {Var: xV[j], Coeff: 1},
			}, ilp.GE, 1)
		}
	}
	// D >= R = sum xH, D >= C = sum xV.
	rTerms := make([]ilp.Term, 0, n+1)
	cTerms := make([]ilp.Term, 0, n+1)
	for i := 0; i < n; i++ {
		rTerms = append(rTerms, ilp.Term{Var: xH[i], Coeff: -1})
		cTerms = append(cTerms, ilp.Term{Var: xV[i], Coeff: -1})
	}
	rTerms = append(rTerms, ilp.Term{Var: dVar, Coeff: 1})
	cTerms = append(cTerms, ilp.Term{Var: dVar, Coeff: 1})
	mod.AddConstr("DgeR", rTerms, ilp.GE, 0)
	mod.AddConstr("DgeC", cTerms, ilp.GE, 0)
	// Alignment (Eq. 7).
	for _, v := range p.AlignH {
		mod.AddConstr("align", []ilp.Term{{Var: xH[v], Coeff: 1}}, ilp.GE, 1)
	}
	// Optional dimension budgets (the Section III extension).
	if opts.MaxRows > 0 {
		terms := make([]ilp.Term, 0, n)
		for i := 0; i < n; i++ {
			terms = append(terms, ilp.Term{Var: xH[i], Coeff: 1})
		}
		mod.AddConstr("maxRows", terms, ilp.LE, float64(opts.MaxRows))
	}
	if opts.MaxCols > 0 {
		terms := make([]ilp.Term, 0, n)
		for i := 0; i < n; i++ {
			terms = append(terms, ilp.Term{Var: xV[i], Coeff: 1})
		}
		mod.AddConstr("maxCols", terms, ilp.LE, float64(opts.MaxCols))
	}

	// Strengthening cuts. The plain Eq. 4 relaxation is weak (all-halves
	// is LP-feasible), so we add three families of valid inequalities:
	//
	//  1. Per odd cycle C (vertex-disjoint packing): some node of C must
	//     be VH, i.e. Σ_{i∈C}(xV_i + xH_i) ≥ |C| + 1.
	//  2. Globally, the VH set of any valid labeling is an odd cycle
	//     transversal, so S ≥ n + k where k is an OCT size lower bound —
	//     the packing number, upgraded to the exact minimum when the OCT
	//     solver proves it within its sub-budget.
	//  3. The max dimension is at least half the semiperimeter: 2D ≥ S.
	cycles := oct.DisjointOddCycles(p.G)
	for _, cyc := range cycles {
		terms := make([]ilp.Term, 0, 2*len(cyc))
		for _, v := range cyc {
			terms = append(terms, ilp.Term{Var: xV[v], Coeff: 1}, ilp.Term{Var: xH[v], Coeff: 1})
		}
		mod.AddConstr("oddcyc", terms, ilp.GE, float64(len(cyc)+1))
	}
	kLB := len(cycles)
	// The OCT warm start gets at most half of whatever remains of the
	// shared budget (capped at 30s); because its deadline is layered on the
	// same ctx, warm start plus branch & bound together can never spend
	// more than the user's TimeLimit.
	octBudget := 30 * time.Second
	if r := ctxRemaining(ctx); r > 0 && r/2 < octBudget {
		octBudget = r / 2
	}
	octCtx, octCancel := context.WithTimeout(ctx, octBudget)
	octRes, err := oct.FindContext(octCtx, p.G, oct.Options{Backend: opts.OCTBackend})
	octCancel()
	if err != nil {
		if ctx.Err() == nil {
			return nil, err
		}
		// Shared budget already exhausted: degrade to the greedy OCT (its
		// labels still serve as incumbent material below).
		octRes = oct.Heuristic(p.G)
	}
	if octRes.Optimal && len(octRes.OCT) > kLB {
		kLB = len(octRes.OCT)
	}
	sTerms := make([]ilp.Term, 0, 2*n)
	for i := 0; i < n; i++ {
		sTerms = append(sTerms, ilp.Term{Var: xV[i], Coeff: 1}, ilp.Term{Var: xH[i], Coeff: 1})
	}
	mod.AddConstr("semiLB", sTerms, ilp.GE, float64(n+kLB))
	dTerms := append(make([]ilp.Term, 0, 2*n+1), ilp.Term{Var: dVar, Coeff: 2})
	for i := 0; i < n; i++ {
		dTerms = append(dTerms, ilp.Term{Var: xV[i], Coeff: -1}, ilp.Term{Var: xH[i], Coeff: -1})
	}
	mod.AddConstr("DgeHalfS", dTerms, ilp.GE, 0)

	// Incumbent: the better of the primer (or greedy heuristic) and the
	// OCT-derived labeling (which achieves S = n + k* exactly when the OCT
	// is proven).
	heur := primer
	if heur == nil {
		heur = solveHeuristic(p, opts)
	}
	best := heur
	if octLabels, _ := orientAndBalance(p, octRes); Validate(p, octLabels) == nil {
		if st := ComputeStats(octLabels); st.Objective(gamma) < best.Stats.Objective(gamma) {
			best = &Solution{Labels: octLabels, Stats: st, Method: "oct-incumbent"}
		}
	}
	inc := incumbentFromLabels(mod.NumVars(), p, best.Labels, xV, xH, xE, dVar, edges)

	// Memory guard: the production LP core is the sparse revised simplex,
	// but it falls back to the dense oracle on numerical trouble, and the
	// dense tableau takes roughly rows x (vars + 2*rows) float64 cells — so
	// the guard stays sized for the worst case. Graphs beyond that budget get
	// the analytic bound instead — objective >= γ(n+k) + (1−γ)·⌈(n+k)/2⌉,
	// valid because S >= n+kLB and D >= S/2 — reported with the heuristic
	// incumbent, exactly the anytime data Figure 11 plots for circuits the
	// paper's CPLEX could not close either.
	rows := int64(mod.NumConstrs())
	cols := int64(mod.NumVars()) + 2*rows
	if rows*cols*8 > maxTableauBytes {
		obj := best.Stats.Objective(gamma)
		bound := gamma*float64(n+kLB) + (1-gamma)*math.Ceil(float64(n+kLB)/2)
		gap := 0.0
		if obj > 0 {
			gap = (obj - bound) / obj
			if gap < 0 {
				gap = 0
			}
		}
		return &Solution{
			Labels:  best.Labels,
			Stats:   best.Stats,
			Optimal: gap <= 1e-9,
			Method:  "mip-bounded",
			Trace: []ilp.TraceEvent{{
				Incumbent: obj,
				Bound:     bound,
				Gap:       gap,
			}},
		}, nil
	}

	sol, err := ilp.SolveContext(ctx, mod, ilp.Options{
		Incumbent: inc, BestKnown: bestKnown, Workers: ilp.DefaultWorkers(),
	})
	if err != nil {
		if ctx.Err() != nil {
			// Budget expired between model build and solve: anytime
			// contract — return the incumbent rather than an error. (A
			// fresh Solution: best may alias the portfolio's shared primer.)
			return &Solution{Labels: best.Labels, Stats: best.Stats, Method: "mip-fallback"}, nil
		}
		return nil, fmt.Errorf("labeling: MIP solve: %w", err)
	}
	if sol.Status == ilp.StatusInfeasible {
		return nil, fmt.Errorf("labeling: no labeling within %dx%d: %w", opts.MaxRows, opts.MaxCols, ErrInfeasible)
	}
	if sol.X == nil && (opts.MaxRows > 0 || opts.MaxCols > 0) {
		// Not proven infeasible — the time limit expired before either a
		// fitting labeling or a refutation was found.
		return nil, fmt.Errorf("labeling: budget %dx%d neither met nor refuted within the time limit",
			opts.MaxRows, opts.MaxCols)
	}
	if sol.X == nil {
		// No incumbent at all (should not happen: all-VH is feasible and
		// the heuristic always yields one); fall back to the primer.
		return &Solution{Labels: best.Labels, Stats: best.Stats, Method: "mip-fallback", Trace: sol.Trace}, nil
	}
	labels := make([]Label, n)
	for i := 0; i < n; i++ {
		hasV := sol.X[xV[i]] > 0.5
		hasH := sol.X[xH[i]] > 0.5
		switch {
		case hasV && hasH:
			labels[i] = VH
		case hasV:
			labels[i] = V
		case hasH:
			labels[i] = H
		}
	}
	st := ComputeStats(labels)
	// The OCT-based analytic bound γ(n+kLB) + (1−γ)·⌈(n+kLB)/2⌉ backstops
	// the branch & bound's proven bound — crucial when the time limit
	// expires before even the root LP finishes (the bound would otherwise
	// read −∞ and the gap a meaningless 1.0).
	analytic := gamma*float64(n+kLB) + (1-gamma)*math.Ceil(float64(n+kLB)/2)
	obj := st.Objective(gamma)
	bound := analytic
	if len(sol.Trace) > 0 && sol.Trace[len(sol.Trace)-1].Bound > bound {
		bound = sol.Trace[len(sol.Trace)-1].Bound
	}
	gap := 0.0
	if obj > bound && obj > 0 {
		gap = (obj - bound) / obj
	}
	optimal := sol.Status == ilp.StatusOptimal || gap <= 1e-9
	trace := sol.Trace
	if len(trace) == 0 || trace[len(trace)-1].Bound < bound-1e-9 {
		last := ilp.TraceEvent{Incumbent: obj, Bound: bound, Gap: gap, Nodes: sol.Nodes}
		if len(trace) > 0 {
			last.Elapsed = trace[len(trace)-1].Elapsed
		}
		trace = append(trace, last)
	}
	return &Solution{
		Labels:  labels,
		Stats:   st,
		Optimal: optimal,
		Method:  "mip",
		Trace:   trace,
	}, nil
}

// incumbentFromLabels encodes a valid labeling as a MIP solution vector.
func incumbentFromLabels(nVars int, p Problem, labels []Label, xV, xH, xE []int, dVar int, edges [][2]int) []float64 {
	x := make([]float64, nVars)
	rows, cols := 0, 0
	for i, l := range labels {
		if l.HasV() {
			x[xV[i]] = 1
			cols++
		}
		if l.HasH() {
			x[xH[i]] = 1
			rows++
		}
	}
	if xE != nil {
		for k, e := range edges {
			i, j := e[0], e[1]
			// xE=0 activates xV_i + xH_j >= 2; xE=1 activates xH_i + xV_j >= 2.
			if labels[i].HasV() && labels[j].HasH() {
				x[xE[k]] = 0
			} else {
				x[xE[k]] = 1
			}
		}
	}
	d := rows
	if cols > d {
		d = cols
	}
	x[dVar] = float64(d)
	return x
}

// Package errio provides a sticky-error writer for serialization code: a
// long run of formatted writes followed by a single error check, instead of
// an `if err != nil` after every line (the errWriter idiom). The first
// write error latches; every subsequent write is a no-op, so partial output
// never silently continues past a failure.
package errio

import (
	"fmt"
	"io"
)

// Writer wraps an io.Writer and records the first write error.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter returns a sticky-error writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Printf formats to the underlying writer unless an earlier write failed.
func (e *Writer) Printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Println writes the operands followed by a newline unless an earlier
// write failed.
func (e *Writer) Println(args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintln(e.w, args...)
}

// WriteString writes s unless an earlier write failed.
func (e *Writer) WriteString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

// Err returns the first error encountered by any write, or nil.
func (e *Writer) Err() error { return e.err }

package errio

import (
	"errors"
	"strings"
	"testing"
)

// failAfter accepts the first n bytes, then fails every write.
type failAfter struct {
	n   int
	got strings.Builder
}

var errFull = errors.New("writer full")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.got.Len()+len(p) > f.n {
		return 0, errFull
	}
	f.got.Write(p)
	return len(p), nil
}

func TestWriterHappyPath(t *testing.T) {
	var sb strings.Builder
	ew := NewWriter(&sb)
	ew.Printf("a=%d\n", 1)
	ew.Println("b")
	ew.WriteString("c")
	if err := ew.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
	if got, want := sb.String(), "a=1\nb\nc"; got != want {
		t.Fatalf("output = %q, want %q", got, want)
	}
}

func TestWriterSticksOnFirstError(t *testing.T) {
	fw := &failAfter{n: 4}
	ew := NewWriter(fw)
	ew.Printf("1234")
	ew.Printf("5678") // fails: would exceed capacity
	ew.Println("never written")
	ew.WriteString("nor this")
	if err := ew.Err(); !errors.Is(err, errFull) {
		t.Fatalf("Err() = %v, want %v", err, errFull)
	}
	if got := fw.got.String(); got != "1234" {
		t.Fatalf("underlying writer got %q, want %q (no writes after failure)", got, "1234")
	}
}

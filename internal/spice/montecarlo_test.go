package spice

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"compact/internal/defect"
	"compact/internal/faultinject"
	"compact/internal/xbar"
)

// wireDesign is the 2x1 single-literal design f = a: the input wordline
// (row 1) reaches the output wordline (row 0) through an always-on stitch
// and the literal cell. Small enough that every electrical effect is
// hand-checkable.
func wireDesign() (*xbar.Design, func([]bool) []bool) {
	d := xbar.NewDesign(2, 1)
	d.Cells[0][0] = xbar.Entry{Kind: xbar.Lit, Var: 0}
	d.Cells[1][0] = xbar.Entry{Kind: xbar.On}
	d.InputRow = 1
	d.OutputRows = []int{0}
	d.OutputNames = []string{"f"}
	d.VarNames = []string{"a"}
	return d, func(in []bool) []bool { return []bool{in[0]} }
}

func TestSampleResistancesDeterministic(t *testing.T) {
	v := Variation{SigmaOn: 0.2, SigmaOff: 0.3}
	m1, err := SampleResistances(4, 5, Default(), v, 42)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := SampleResistances(4, 5, Default(), v, 42)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Digest() != m2.Digest() {
		t.Error("same seed produced different resistance maps")
	}
	m3, err := SampleResistances(4, 5, Default(), v, 43)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Digest() == m3.Digest() {
		t.Error("different seeds produced identical resistance maps")
	}
	flat, err := SampleResistances(4, 5, Default(), Variation{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat.ROn {
		if flat.ROn[i] != Default().ROn || flat.ROff[i] != Default().ROff {
			t.Fatalf("zero sigma perturbed device %d: %v/%v", i, flat.ROn[i], flat.ROff[i])
		}
	}
}

// TestMonteCarloByteIdentical pins the seeding-unification satellite: a
// fixed seed yields a byte-identical report, independent of the worker
// count. The low-contrast model guarantees failing trials so the
// critical-cell merge path is exercised too.
func TestMonteCarloByteIdentical(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	base := Default()
	base.ROff = base.ROn * 3
	v := Variation{SigmaOn: 1.0, SigmaOff: 1.0}
	run := func(workers int) []byte {
		rep, err := MonteCarloContext(context.Background(), d, nw.Eval, 3,
			Env{Model: base}, v, MonteCarloOptions{Trials: 24, Vectors: 8, Workers: workers, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	serial := run(1)
	parallel := run(8)
	again := run(8)
	if string(serial) != string(parallel) {
		t.Errorf("report depends on worker count:\n 1: %s\n 8: %s", serial, parallel)
	}
	if string(parallel) != string(again) {
		t.Errorf("same seed, different reports:\n%s\n%s", parallel, again)
	}
}

func TestMonteCarloVectorClamp(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	rep, err := MonteCarloContext(context.Background(), d, nw.Eval, 3,
		Env{Model: HighContrast()}, Variation{SigmaOn: 0.05, SigmaOff: 0.05},
		MonteCarloOptions{Trials: 4, Vectors: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Vectors != 8 || !rep.Exhaustive {
		t.Errorf("3-input function not clamped to exhaustive 8 vectors: %+v", rep)
	}
	if rep.Trials != 4 || rep.RequestedTrials != 4 || rep.Truncated {
		t.Errorf("unexpected trial accounting: %+v", rep)
	}
}

func TestMonteCarloExpiredContext(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := MonteCarloContext(ctx, d, nw.Eval, 3, Env{Model: Default()}, Variation{},
		MonteCarloOptions{Trials: 8, Vectors: 8, Seed: 1})
	if err == nil {
		t.Fatal("expired context accepted")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if rep.Trials != 0 || rep.Yield != 0 {
		t.Errorf("non-zero report alongside error: %+v", rep)
	}
}

// TestMonteCarloAnytimeDeadline drives the deadline path: either the run
// truncates to a best-so-far report with a nil error, or (if the machine
// raced through every trial) it completes normally — it must never return
// a partial report next to an error.
func TestMonteCarloAnytimeDeadline(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	rep, err := MonteCarloContext(ctx, d, nw.Eval, 3, Env{Model: HighContrast()},
		Variation{SigmaOn: 0.1, SigmaOff: 0.1},
		MonteCarloOptions{Trials: 100000, Vectors: 8, Seed: 1})
	if err != nil {
		if rep.Trials != 0 {
			t.Errorf("partial report alongside error %v: %+v", err, rep)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("error %v does not wrap the deadline", err)
		}
		return
	}
	if rep.Trials == 0 {
		t.Fatalf("nil error with zero trials: %+v", rep)
	}
	if rep.Trials < rep.RequestedTrials && !rep.Truncated {
		t.Errorf("short run not marked Truncated: %+v", rep)
	}
	if rep.Yield < 0 || rep.Yield > 1 {
		t.Errorf("yield %v outside [0,1]", rep.Yield)
	}
}

func TestMonteCarloCriticalCells(t *testing.T) {
	d, ref := wireDesign()
	base := Default()
	base.ROff = base.ROn * 3 // so little contrast that big spread flips reads
	rep, err := MonteCarloContext(context.Background(), d, ref, 1,
		Env{Model: base}, Variation{SigmaOn: 1.5, SigmaOff: 1.5},
		MonteCarloOptions{Trials: 64, Vectors: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailTrials == 0 {
		t.Fatalf("extreme variation on a no-contrast model produced no failures: %+v", rep)
	}
	if len(rep.Critical) == 0 {
		t.Fatalf("failing trials but no critical cells: %+v", rep)
	}
	for _, c := range rep.Critical {
		if c.Row < 0 || c.Row >= d.Rows || c.Col < 0 || c.Col >= d.Cols {
			t.Errorf("critical cell (%d,%d) outside the %dx%d design", c.Row, c.Col, d.Rows, d.Cols)
		}
		if c.Flips <= 0 {
			t.Errorf("critical cell (%d,%d) with non-positive flip count %d", c.Row, c.Col, c.Flips)
		}
	}
	for i := 1; i < len(rep.Critical); i++ {
		if rep.Critical[i].Flips > rep.Critical[i-1].Flips {
			t.Errorf("critical cells not sorted by flips: %+v", rep.Critical)
		}
	}
}

func TestMonteCarloRefArityChecked(t *testing.T) {
	d, _ := wireDesign()
	bad := func(in []bool) []bool { return []bool{in[0], !in[0]} } // two outputs, design has one
	rep, err := MonteCarloContext(context.Background(), d, bad, 1,
		Env{Model: Default()}, Variation{}, MonteCarloOptions{Trials: 2, Vectors: 2, Seed: 1})
	if err == nil {
		t.Fatal("mismatched ref arity accepted")
	}
	if rep.Trials != 0 {
		t.Errorf("non-zero report alongside error: %+v", rep)
	}
}

func TestMonteCarloFaultInjection(t *testing.T) {
	d, ref := wireDesign()
	t.Setenv(faultinject.EnvVar, "spice")
	_, err := MonteCarloContext(context.Background(), d, ref, 1,
		Env{Model: Default()}, Variation{}, MonteCarloOptions{Trials: 2, Vectors: 2})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("COMPACT_FAULTS=spice not injected: %v", err)
	}
	t.Setenv(faultinject.EnvVar, "spice=timeout")
	_, err = MonteCarloContext(context.Background(), d, ref, 1,
		Env{Model: Default()}, Variation{}, MonteCarloOptions{Trials: 2, Vectors: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("COMPACT_FAULTS=spice=timeout not a timeout: %v", err)
	}
}

// TestBridgeSneakPath pins the analog semantics the margin-aware placement
// objective optimizes: a stuck-ON device on a used×spare crossing ties the
// spare line into the array. Two such devices on one spare bitline — one
// to the input wordline, one to the output wordline — form a sneak path
// around the literal cell, so the a=0 read shoots up; a placement that
// avoids feeding the spare keeps the read clean.
func TestBridgeSneakPath(t *testing.T) {
	d, _ := wireDesign()
	model := Default()

	dm, err := defect.New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Spare bitline 1 bridged to physical row 0 (output under identity) and
	// physical row 1 (input under identity).
	if err := dm.Set(0, 1, defect.StuckOn); err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(1, 1, defect.StuckOn); err != nil {
		t.Fatal(err)
	}

	off := []bool{false}
	clean, err := Simulate(d, off, model)
	if err != nil {
		t.Fatal(err)
	}
	bridged, err := SimulateEnv(d, off, Env{Model: model, Defects: dm})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Simulate(d, []bool{true}, model)
	if err != nil {
		t.Fatal(err)
	}
	if bridged[0] < 10*clean[0] {
		t.Errorf("stuck-ON bridge pair barely moved the off-read: clean %v, bridged %v", clean[0], bridged[0])
	}
	// The sneak path has 2*R_on where the legitimate path has one, so the
	// corrupted off-read lands within a small factor of the on-read —
	// indistinguishable from a logic 1 for any sane threshold.
	if bridged[0] < 0.25*on[0] {
		t.Errorf("two-R_on sneak path should read like a logic 1 (on-read %v), got %v", on[0], bridged[0])
	}

	// An alternative placement (logical output→phys 2, input→phys 0) leaves
	// the bridge chain dangling: device (0,1) ties spare bitline 1 to the
	// input, device (1,1) only chains on the spare wordline 1 — no path to
	// the output.
	alt := &xbar.Placement{RowPerm: []int{2, 0}, ColPerm: []int{0}, Engine: "test"}
	moved, err := SimulateEnv(d, off, Env{Model: model, Defects: dm, Placement: alt})
	if err != nil {
		t.Fatal(err)
	}
	if moved[0] > 2*clean[0] {
		t.Errorf("re-placed design should dodge the sneak path: clean %v, placed %v", clean[0], moved[0])
	}
}

// TestStuckOverrideOnUsedCrossing pins the other defect effect: a stuck
// device under a used×used crossing drives that cell's conductance
// regardless of the programmed state.
func TestStuckOverrideOnUsedCrossing(t *testing.T) {
	d, _ := wireDesign()
	model := Default()
	dm, err := defect.New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The literal cell's device is stuck-ON: f reads 1 even for a=0.
	if err := dm.Set(0, 0, defect.StuckOn); err != nil {
		t.Fatal(err)
	}
	off := []bool{false}
	clean, err := Simulate(d, off, model)
	if err != nil {
		t.Fatal(err)
	}
	stuck, err := SimulateEnv(d, off, Env{Model: model, Defects: dm})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Simulate(d, []bool{true}, model)
	if err != nil {
		t.Fatal(err)
	}
	if stuck[0] < 0.9*on[0] {
		t.Errorf("stuck-ON override should read like a=1 (%v), got %v (clean off-read %v)", on[0], stuck[0], clean[0])
	}
}

// TestMonteCarloEnvPlacedMatchesIdentity sanity-checks Env plumbing: on a
// fault-free array exactly the design's size, an explicit identity
// placement must not change the report.
func TestMonteCarloEnvPlacedMatchesIdentity(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	dm, err := defect.New(d.Rows, d.Cols)
	if err != nil {
		t.Fatal(err)
	}
	idRows := make([]int, d.Rows)
	idCols := make([]int, d.Cols)
	for i := range idRows {
		idRows[i] = i
	}
	for i := range idCols {
		idCols[i] = i
	}
	pl := &xbar.Placement{RowPerm: idRows, ColPerm: idCols, Engine: "identity"}
	opts := MonteCarloOptions{Trials: 8, Vectors: 8, Seed: 5}
	v := Variation{SigmaOn: 0.3, SigmaOff: 0.3}
	plain, err := MonteCarloContext(context.Background(), d, nw.Eval, 3, Env{Model: Default()}, v, opts)
	if err != nil {
		t.Fatal(err)
	}
	placed, err := MonteCarloContext(context.Background(), d, nw.Eval, 3,
		Env{Model: Default(), Defects: dm, Placement: pl}, v, opts)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(plain)
	b2, _ := json.Marshal(placed)
	if string(b1) != string(b2) {
		t.Errorf("identity placement on a fault-free array changed the report:\n%s\n%s", b1, b2)
	}
}

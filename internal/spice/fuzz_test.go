package spice

import (
	"math"
	"testing"

	"compact/internal/xbar"
)

// FuzzDenseVsCG is the solver cross-check property: on any valid randomly
// programmed crossbar, the direct dense solve and the Jacobi-preconditioned
// conjugate-gradient solve must agree on every node voltage to within a
// relative tolerance. The design, the assignment and the per-device
// resistance spread are all derived deterministically from the fuzz inputs
// via splitmix64, so every corpus entry replays bit-identically.
func FuzzDenseVsCG(f *testing.F) {
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(42), uint64(7))
	f.Add(uint64(0xdeadbeef), uint64(3))
	f.Add(uint64(12345), uint64(0xffffffffffffffff))
	f.Fuzz(func(t *testing.T, seed, spread uint64) {
		state := seed
		rows := 2 + int(splitmix64(&state)%9)  // 2..10
		cols := 1 + int(splitmix64(&state)%10) // 1..10
		nVars := 1 + int(splitmix64(&state)%4) // 1..4

		d := xbar.NewDesign(rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				switch splitmix64(&state) % 4 {
				case 0:
					d.Cells[r][c] = xbar.Entry{Kind: xbar.On}
				case 1:
					d.Cells[r][c] = xbar.Entry{
						Kind: xbar.Lit,
						Var:  int32(splitmix64(&state) % uint64(nVars)),
						Neg:  splitmix64(&state)%2 == 0,
					}
				default:
					// Off twice as likely: sparse arrays are the common case.
				}
			}
		}
		d.InputRow = int(splitmix64(&state) % uint64(rows))
		out := int(splitmix64(&state) % uint64(rows))
		if out == d.InputRow {
			out = (out + 1) % rows
		}
		d.OutputRows = []int{out}
		d.OutputNames = []string{"f"}
		d.VarNames = make([]string, nVars)
		for i := range d.VarNames {
			d.VarNames[i] = string(rune('a' + i))
		}
		assign := make([]bool, nVars)
		for i := range assign {
			assign[i] = splitmix64(&state)%2 == 0
		}

		// Half the runs exercise the per-device resistance path, with sigma
		// bounded so the system stays numerically reasonable.
		var env Env
		env.Model = Default()
		if spread%2 == 1 {
			sigma := 0.05 + float64(spread%16)/16
			res, err := SampleResistances(rows, cols, env.Model, Variation{SigmaOn: sigma, SigmaOff: sigma}, spread)
			if err != nil {
				t.Fatal(err)
			}
			env.Res = res
		}

		na, err := compile(d, env)
		if err != nil {
			t.Fatal(err)
		}
		g1, b1, err := na.system(assign, nil)
		if err != nil {
			t.Fatal(err)
		}
		g2, b2, err := na.system(assign, nil)
		if err != nil {
			t.Fatal(err)
		}
		x1, err := solveDense(g1, b1)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := solveCG(g2, b2)
		if err != nil {
			t.Fatal(err)
		}
		if len(x1) != len(x2) {
			t.Fatalf("solution lengths differ: dense %d, cg %d", len(x1), len(x2))
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-6*(1+math.Abs(x1[i])) {
				t.Errorf("node %d: dense %v vs CG %v (seed=%d spread=%d)", i, x1[i], x2[i], seed, spread)
			}
		}
	})
}

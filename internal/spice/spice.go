// Package spice validates flow-based crossbar designs electrically,
// standing in for the SPICE simulations of the paper (Section VIII, using
// the memristor model of reference [33]). Every crosspoint of a fabricated
// crossbar holds a memristor; cells programmed '0' are in the high
// resistive state, not absent. The package builds the resistive network of
// a programmed crossbar — input wordline driven through a source
// resistance, every output wordline loaded by a sense resistor to ground —
// and solves the nodal equations by dense Gaussian elimination (small
// designs) or Jacobi-preconditioned conjugate gradient (large ones).
//
// Beyond the nominal model, the package simulates placed designs on real
// arrays: per-device resistances (ResistanceMap, log-normal variation via
// SampleResistances) and the analog consequences of a defect map that the
// logical model ignores — a stuck-ON device on the crossing of a used line
// and an unused spare ties that spare into the network as a sneak-path
// bridge, even though the placement layer correctly treats it as logically
// harmless. Env carries this electrical context; MonteCarloContext runs
// seeded variation trials over it.
package spice

import (
	"context"
	"errors"
	"fmt"
	"math"

	"compact/internal/defect"
	"compact/internal/xbar"
)

// DeviceModel collects the electrical parameters of the crossbar.
type DeviceModel struct {
	ROn     float64 // low resistive state (ohms)
	ROff    float64 // high resistive state (ohms)
	RSense  float64 // sense resistor on each output wordline (ohms)
	RDriver float64 // source resistance of the Vin driver (ohms)
	Vin     float64 // drive voltage (volts)
}

// Default returns parameters in the range of the paper's memristor model:
// R_on 10 kΩ, R_off 10 MΩ, 1 kΩ sense resistors, 50 Ω driver, 1 V drive.
// The 10^3 on/off ratio is sufficient for small arrays; larger designs
// accumulate leakage through the many parallel off-state sneak paths and
// need HighContrast (see the validate example).
func Default() DeviceModel {
	return DeviceModel{ROn: 10e3, ROff: 10e6, RSense: 1e3, RDriver: 50, Vin: 1}
}

// HighContrast returns a device model with a 10^5 on/off ratio and a
// larger sense resistor, as demonstrated for HfO2-class devices — the
// regime where benchmark-scale flow-based designs remain electrically
// separable.
func HighContrast() DeviceModel {
	return DeviceModel{ROn: 10e3, ROff: 1e9, RSense: 10e3, RDriver: 50, Vin: 1}
}

// Validate checks the model parameters.
func (m DeviceModel) Validate() error {
	if m.ROn <= 0 || m.ROff <= 0 || m.RSense <= 0 || m.RDriver <= 0 {
		return errors.New("spice: resistances must be positive")
	}
	if m.ROff <= m.ROn {
		return errors.New("spice: ROff must exceed ROn")
	}
	return nil
}

// maxNodes caps the nodal system: the matrix is dense, and 6000 nodes is
// already a 288 MB solve.
const maxNodes = 6000

// ErrTooLarge marks designs whose nodal system exceeds maxNodes, so
// service layers can map the condition to a typed wire error instead of
// pattern-matching message text.
var ErrTooLarge = errors.New("design exceeds the dense nodal solver limit")

// Env describes the electrical context of one simulation: the device
// model, optional per-device resistances, and the physical-array context
// (defect map + placement) whose stuck-ON faults become analog effects.
// The zero Model is invalid; everything else defaults to "nominal devices
// on an array exactly the design's size".
type Env struct {
	// Model supplies the nominal device parameters and the drive/sense
	// configuration.
	Model DeviceModel
	// Res pins per-device resistances in physical coordinates (nil =
	// every device nominal). Its dimensions must match the physical array:
	// the defect map's when Defects is set, the design's otherwise.
	Res *ResistanceMap
	// Defects is the physical array context. Stuck devices override the
	// conductance of the cells placed on them, and stuck-ON devices on
	// used×spare crossings tie the spare line in as a sneak-path bridge.
	// nil means the array is exactly the design with no faults.
	Defects *defect.Map
	// Placement binds logical lines to physical ones (nil = identity).
	Placement *xbar.Placement
}

// nodal is a compiled simulation of one (design, Env) pair: the node
// space (used wordlines, used bitlines, plus any spare lines tied in by
// stuck-ON bridges), the stuck-state overrides, and the bridge edges —
// everything that does not change between assignments or Monte Carlo
// trials. simulate is re-entrant: concurrent trials share one nodal.
type nodal struct {
	d                  *xbar.Design
	model              DeviceModel
	res                *ResistanceMap
	physRows, physCols int
	rowPhys, colPhys   []int  // logical line -> physical line
	override           []int8 // per logical cell: 0 none, +1 stuck-ON, -1 stuck-OFF
	n                  int    // total nodes incl. bridge-tied spares
	bridges            []bridgeEdge
}

// bridgeEdge is one stuck-ON device tying a spare line into the array: a
// conductance of 1/R_on between two nodes of the extended system.
type bridgeEdge struct {
	a, b   int // extended node indices
	pr, pc int // physical device position (per-device resistance lookup)
}

func identityPerm(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// checkLinePerm verifies that perm maps logical lines injectively into
// 0..bound-1 physical ones.
func checkLinePerm(what string, perm []int, bound int) error {
	seen := make(map[int]bool, len(perm))
	for i, p := range perm {
		if p < 0 || p >= bound {
			return fmt.Errorf("spice: %s placement maps %d to %d, outside 0..%d", what, i, p, bound-1)
		}
		if seen[p] {
			return fmt.Errorf("spice: %s placement maps two lines to physical line %d", what, p)
		}
		seen[p] = true
	}
	return nil
}

// compile validates the Env against the design and precomputes the placed
// node space, stuck overrides and bridge topology.
func compile(d *xbar.Design, env Env) (*nodal, error) {
	if err := env.Model.Validate(); err != nil {
		return nil, err
	}
	na := &nodal{d: d, model: env.Model, res: env.Res, physRows: d.Rows, physCols: d.Cols}
	if env.Defects != nil {
		na.physRows, na.physCols = env.Defects.Rows(), env.Defects.Cols()
	}
	if pl := env.Placement; pl != nil {
		if len(pl.RowPerm) != d.Rows || len(pl.ColPerm) != d.Cols {
			return nil, fmt.Errorf("spice: placement shape %dx%d does not match the %dx%d design",
				len(pl.RowPerm), len(pl.ColPerm), d.Rows, d.Cols)
		}
		na.rowPhys, na.colPhys = pl.RowPerm, pl.ColPerm
	} else {
		if na.physRows < d.Rows || na.physCols < d.Cols {
			return nil, fmt.Errorf("spice: %dx%d design does not fit the %dx%d physical array",
				d.Rows, d.Cols, na.physRows, na.physCols)
		}
		na.rowPhys, na.colPhys = identityPerm(d.Rows), identityPerm(d.Cols)
	}
	if err := checkLinePerm("wordline", na.rowPhys, na.physRows); err != nil {
		return nil, err
	}
	if err := checkLinePerm("bitline", na.colPhys, na.physCols); err != nil {
		return nil, err
	}
	if env.Res != nil {
		if err := env.Res.Validate(); err != nil {
			return nil, err
		}
		if env.Res.Rows != na.physRows || env.Res.Cols != na.physCols {
			return nil, fmt.Errorf("spice: resistance map %dx%d does not match the %dx%d physical array",
				env.Res.Rows, env.Res.Cols, na.physRows, na.physCols)
		}
	}
	na.n = d.Rows + d.Cols
	if env.Defects.Len() > 0 {
		na.compileDefects(env.Defects)
	}
	if na.n > maxNodes {
		return nil, fmt.Errorf("spice: %d nanowire nodes exceed the %d-node cap: %w", na.n, maxNodes, ErrTooLarge)
	}
	return na, nil
}

// compileDefects records stuck-state overrides for cells placed on faulty
// devices and ties in spare lines reachable from the used array through
// chains of stuck-ON devices. Spare lines not so reachable stay floating
// (they carry no current and would make the system singular); stuck-OFF
// faults on spare crossings are ignored, as are the healthy off-state
// devices on spare crossings — their leakage onto a floating line is
// second-order next to a stuck-ON short (documented approximation,
// DESIGN §14).
func (na *nodal) compileDefects(dm *defect.Map) {
	d := na.d
	invRow := make([]int, na.physRows)
	invCol := make([]int, na.physCols)
	for i := range invRow {
		invRow[i] = -1
	}
	for i := range invCol {
		invCol[i] = -1
	}
	for r, pr := range na.rowPhys {
		invRow[pr] = r
	}
	for c, pc := range na.colPhys {
		invCol[pc] = c
	}

	type fault struct{ pr, pc int }
	var stuckOn []fault
	for _, fc := range dm.Cells() {
		r, c := invRow[fc.Row], invCol[fc.Col]
		if r >= 0 && c >= 0 {
			// Used×used crossing: the fabricated device pins the cell's
			// conductance regardless of what the design programs there.
			if na.override == nil {
				na.override = make([]int8, d.Rows*d.Cols)
			}
			if fc.Kind == defect.StuckOn {
				na.override[r*d.Cols+c] = 1
			} else {
				na.override[r*d.Cols+c] = -1
			}
			continue
		}
		if fc.Kind == defect.StuckOn {
			stuckOn = append(stuckOn, fault{fc.Row, fc.Col})
		}
	}
	if len(stuckOn) == 0 {
		return
	}

	// Phase 1: BFS from the used lines over stuck-ON adjacency to find the
	// spare lines that are electrically tied in (possibly through chains of
	// spares bridged to each other).
	rowReach := make([]bool, na.physRows)
	colReach := make([]bool, na.physCols)
	for _, pr := range na.rowPhys {
		rowReach[pr] = true
	}
	for _, pc := range na.colPhys {
		colReach[pc] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range stuckOn {
			if rowReach[f.pr] && !colReach[f.pc] {
				colReach[f.pc] = true
				changed = true
			}
			if colReach[f.pc] && !rowReach[f.pr] {
				rowReach[f.pr] = true
				changed = true
			}
		}
	}

	// Phase 2: assign extended node ids to the reached spares (deterministic
	// line order) and emit one bridge edge per stuck-ON device whose both
	// endpoints are present and at least one is a spare.
	rowNode := make([]int, na.physRows)
	colNode := make([]int, na.physCols)
	for i := range rowNode {
		rowNode[i] = -1
	}
	for i := range colNode {
		colNode[i] = -1
	}
	for r, pr := range na.rowPhys {
		rowNode[pr] = r
	}
	for c, pc := range na.colPhys {
		colNode[pc] = d.Rows + c
	}
	next := d.Rows + d.Cols
	for pr := 0; pr < na.physRows; pr++ {
		if rowReach[pr] && rowNode[pr] < 0 {
			rowNode[pr] = next
			next++
		}
	}
	for pc := 0; pc < na.physCols; pc++ {
		if colReach[pc] && colNode[pc] < 0 {
			colNode[pc] = next
			next++
		}
	}
	na.n = next
	for _, f := range stuckOn {
		if !rowReach[f.pr] || !colReach[f.pc] {
			continue // floating island: no used line feeds it
		}
		if invRow[f.pr] >= 0 && invCol[f.pc] >= 0 {
			continue // used×used: handled by the override above
		}
		na.bridges = append(na.bridges, bridgeEdge{a: rowNode[f.pr], b: colNode[f.pc], pr: f.pr, pc: f.pc})
	}
}

// conductances returns the on/off conductance of the device at physical
// (pr, pc) under res (nil = nominal model values).
func (na *nodal) conductances(pr, pc int, res *ResistanceMap) (gOn, gOff float64) {
	if res == nil {
		return 1 / na.model.ROn, 1 / na.model.ROff
	}
	return 1 / res.OnAt(pr, pc), 1 / res.OffAt(pr, pc)
}

// system assembles the conductance matrix and current vector for one
// assignment. res overrides the compiled Env's resistance map when non-nil
// (the Monte Carlo per-trial path); dimensions must match the physical
// array.
func (na *nodal) system(assignment []bool, res *ResistanceMap) ([][]float64, []float64, error) {
	if res == nil {
		res = na.res
	} else if res.Rows != na.physRows || res.Cols != na.physCols {
		return nil, nil, fmt.Errorf("spice: resistance map %dx%d does not match the %dx%d physical array",
			res.Rows, res.Cols, na.physRows, na.physCols)
	}
	d := na.d
	n := na.n
	g := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range g {
		g[i], backing = backing[:n:n], backing[n:]
	}
	b := make([]float64, n)

	for r, row := range d.Cells {
		pr := na.rowPhys[r]
		for c, e := range row {
			pc := na.colPhys[c]
			on := e.Conducts(assignment)
			if na.override != nil {
				switch na.override[r*d.Cols+c] {
				case 1:
					on = true
				case -1:
					on = false
				}
			}
			gOn, gOff := na.conductances(pr, pc, res)
			gc := gOff
			if on {
				gc = gOn
			}
			i, j := r, d.Rows+c
			g[i][i] += gc
			g[j][j] += gc
			g[i][j] -= gc
			g[j][i] -= gc
		}
	}
	for _, br := range na.bridges {
		gOn, _ := na.conductances(br.pr, br.pc, res)
		g[br.a][br.a] += gOn
		g[br.b][br.b] += gOn
		g[br.a][br.b] -= gOn
		g[br.b][br.a] -= gOn
	}
	// Driver on the input wordline.
	gd := 1 / na.model.RDriver
	g[d.InputRow][d.InputRow] += gd
	b[d.InputRow] += na.model.Vin * gd
	// Sense resistors on output wordlines (one per distinct row; the input
	// row doubles as the const-1 output row and is not additionally loaded).
	seen := make(map[int]bool)
	for _, r := range d.OutputRows {
		if r == d.InputRow || seen[r] {
			continue
		}
		seen[r] = true
		g[r][r] += 1 / na.model.RSense
	}
	return g, b, nil
}

// simulate solves the nodal system for one assignment and returns the
// output wordline voltages (parallel to d.OutputRows).
func (na *nodal) simulate(assignment []bool, res *ResistanceMap) ([]float64, error) {
	g, b, err := na.system(assignment, res)
	if err != nil {
		return nil, err
	}
	var v []float64
	if na.n <= 500 {
		v, err = solveDense(g, b)
	} else {
		v, err = solveCG(g, b)
	}
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(na.d.OutputRows))
	for i, r := range na.d.OutputRows {
		out[i] = v[r]
	}
	return out, nil
}

// Simulate computes the voltage on every output wordline of the programmed
// crossbar under the given assignment (indexed by Entry.Var), with nominal
// devices on a fault-free array. The returned slice parallels
// d.OutputRows.
func Simulate(d *xbar.Design, assignment []bool, model DeviceModel) ([]float64, error) {
	return SimulateEnv(d, assignment, Env{Model: model})
}

// SimulateEnv computes the output voltages under a full electrical
// context: per-device resistances, stuck-fault overrides and spare-line
// bridges per env. Callers simulating many assignments or trials against
// one context should prefer MarginContext / MonteCarloContext, which
// compile the context once.
func SimulateEnv(d *xbar.Design, assignment []bool, env Env) ([]float64, error) {
	na, err := compile(d, env)
	if err != nil {
		return nil, err
	}
	return na.simulate(assignment, nil)
}

// solveDense is Gaussian elimination with partial pivoting (destroys g, b).
// zero reports whether x is exactly 0 — a sparsity fast path in the linear
// solvers (skip a zero elimination multiplier, zero RHS shortcut), never a
// tolerance decision.
//
//lint:ignore floatcmp centralized exact-zero sparsity fast path
func zero(x float64) bool { return x == 0 }

func solveDense(g [][]float64, b []float64) ([]float64, error) {
	n := len(g)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(g[r][col]) > math.Abs(g[p][col]) {
				p = r
			}
		}
		if math.Abs(g[p][col]) < 1e-18 {
			return nil, fmt.Errorf("spice: singular conductance matrix at column %d", col)
		}
		g[col], g[p] = g[p], g[col]
		b[col], b[p] = b[p], b[col]
		inv := 1 / g[col][col]
		for r := col + 1; r < n; r++ {
			f := g[r][col] * inv
			if zero(f) {
				continue
			}
			row, prow := g[r], g[col]
			for c := col; c < n; c++ {
				row[c] -= f * prow[c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		row := g[r]
		for c := r + 1; c < n; c++ {
			s -= row[c] * x[c]
		}
		x[r] = s / row[r]
	}
	return x, nil
}

// solveCG is Jacobi-preconditioned conjugate gradient for the SPD nodal
// matrix.
func solveCG(g [][]float64, b []float64) ([]float64, error) {
	n := len(g)
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = g[i][i]
		if diag[i] <= 0 {
			return nil, fmt.Errorf("spice: non-positive diagonal at node %d", i)
		}
	}
	bnorm := 0.0
	for _, bi := range b {
		bnorm += bi * bi
	}
	bnorm = math.Sqrt(bnorm)
	if zero(bnorm) {
		return x, nil
	}
	rz := 0.0
	for i := range r {
		z[i] = r[i] / diag[i]
		p[i] = z[i]
		rz += r[i] * z[i]
	}
	maxIter := 20*n + 100
	for iter := 0; iter < maxIter; iter++ {
		// ap = G p.
		for i := 0; i < n; i++ {
			s := 0.0
			row := g[i]
			for j := 0; j < n; j++ {
				s += row[j] * p[j]
			}
			ap[i] = s
		}
		pap := 0.0
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return nil, errors.New("spice: matrix not positive definite")
		}
		alpha := rz / pap
		rnorm := 0.0
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			rnorm += r[i] * r[i]
		}
		if math.Sqrt(rnorm) <= 1e-12*bnorm {
			return x, nil
		}
		rzNew := 0.0
		for i := range r {
			z[i] = r[i] / diag[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, errors.New("spice: conjugate gradient did not converge")
}

// MarginReport summarizes the electrical separability of a design: the
// lowest output voltage observed for a logical 1 and the highest for a
// logical 0, per output and overall.
type MarginReport struct {
	MinOn     float64 // lowest voltage among logic-1 observations (+Inf if none)
	MaxOff    float64 // highest voltage among logic-0 observations (-Inf if none)
	Checked   int     // assignments simulated
	Separable bool    // MinOn > MaxOff (a sensing threshold exists)
}

// Margin is MarginContext without cancellation, against the nominal
// fault-free context.
func Margin(d *xbar.Design, ref func([]bool) []bool, nVars, exhaustiveLimit, samples int, model DeviceModel, seed uint64) (MarginReport, error) {
	return MarginContext(context.Background(), d, ref, nVars, exhaustiveLimit, samples, Env{Model: model}, seed)
}

// MarginContext simulates the design across assignments (exhaustive when
// nVars <= exhaustiveLimit, else `samples` splitmix64-seeded vectors)
// under the electrical context env, using ref for the expected logic
// values, and reports the worst-case on/off voltages. Context expiry
// returns the best-so-far report (Checked assignments in) together with
// the context error; a simulation failure returns a zero report and the
// error — never a half-trusted mixture.
func MarginContext(ctx context.Context, d *xbar.Design, ref func([]bool) []bool, nVars, exhaustiveLimit, samples int, env Env, seed uint64) (MarginReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rep := MarginReport{MinOn: math.Inf(1), MaxOff: math.Inf(-1)}
	na, err := compile(d, env)
	if err != nil {
		return MarginReport{}, err
	}
	run := func(in []bool) error {
		want := ref(in)
		volts, err := na.simulate(in, nil)
		if err != nil {
			return err
		}
		for o, w := range want {
			if w {
				if volts[o] < rep.MinOn {
					rep.MinOn = volts[o]
				}
			} else if volts[o] > rep.MaxOff {
				rep.MaxOff = volts[o]
			}
		}
		rep.Checked++
		return nil
	}
	fail := func(err error) (MarginReport, error) {
		if ctxErr := ctx.Err(); ctxErr != nil {
			rep.Separable = rep.MinOn > rep.MaxOff
			return rep, ctxErr
		}
		return MarginReport{}, err
	}
	in := make([]bool, nVars)
	if nVars <= exhaustiveLimit {
		for a := 0; a < 1<<uint(nVars); a++ {
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			for i := range in {
				in[i] = a&(1<<uint(i)) != 0
			}
			if err := run(in); err != nil {
				return fail(err)
			}
		}
	} else {
		state := seed ^ variationSalt ^ 0x5bf0_3635
		for s := 0; s < samples; s++ {
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			for i := range in {
				in[i] = splitmix64(&state)&1 != 0
			}
			if err := run(in); err != nil {
				return fail(err)
			}
		}
	}
	rep.Separable = rep.MinOn > rep.MaxOff
	return rep, nil
}

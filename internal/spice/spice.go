// Package spice validates flow-based crossbar designs electrically,
// standing in for the SPICE simulations of the paper (Section VIII, using
// the memristor model of reference [33]). Every crosspoint of a fabricated
// crossbar holds a memristor; cells programmed '0' are in the high
// resistive state, not absent. The package builds the resistive network of
// a programmed crossbar — input wordline driven through a source
// resistance, every output wordline loaded by a sense resistor to ground —
// and solves the nodal equations by dense Gaussian elimination (small
// designs) or Jacobi-preconditioned conjugate gradient (large ones).
package spice

import (
	"errors"
	"fmt"
	"math"

	"compact/internal/xbar"
)

// DeviceModel collects the electrical parameters of the crossbar.
type DeviceModel struct {
	ROn     float64 // low resistive state (ohms)
	ROff    float64 // high resistive state (ohms)
	RSense  float64 // sense resistor on each output wordline (ohms)
	RDriver float64 // source resistance of the Vin driver (ohms)
	Vin     float64 // drive voltage (volts)
}

// Default returns parameters in the range of the paper's memristor model:
// R_on 10 kΩ, R_off 10 MΩ, 1 kΩ sense resistors, 50 Ω driver, 1 V drive.
// The 10^3 on/off ratio is sufficient for small arrays; larger designs
// accumulate leakage through the many parallel off-state sneak paths and
// need HighContrast (see the validate example).
func Default() DeviceModel {
	return DeviceModel{ROn: 10e3, ROff: 10e6, RSense: 1e3, RDriver: 50, Vin: 1}
}

// HighContrast returns a device model with a 10^5 on/off ratio and a
// larger sense resistor, as demonstrated for HfO2-class devices — the
// regime where benchmark-scale flow-based designs remain electrically
// separable.
func HighContrast() DeviceModel {
	return DeviceModel{ROn: 10e3, ROff: 1e9, RSense: 10e3, RDriver: 50, Vin: 1}
}

// Validate checks the model parameters.
func (m DeviceModel) Validate() error {
	if m.ROn <= 0 || m.ROff <= 0 || m.RSense <= 0 || m.RDriver <= 0 {
		return errors.New("spice: resistances must be positive")
	}
	if m.ROff <= m.ROn {
		return errors.New("spice: ROff must exceed ROn")
	}
	return nil
}

// Simulate computes the voltage on every output wordline of the programmed
// crossbar under the given assignment (indexed by Entry.Var). The returned
// slice parallels d.OutputRows.
func Simulate(d *xbar.Design, assignment []bool, model DeviceModel) ([]float64, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	n := d.Rows + d.Cols
	if n > 6000 {
		// The nodal matrix is dense; 6000 nodes is already a 288 MB solve.
		return nil, fmt.Errorf("spice: design with %d nanowires exceeds the dense-solver limit", n)
	}
	// Conductance matrix (dense) and current vector.
	g := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range g {
		g[i], backing = backing[:n:n], backing[n:]
	}
	b := make([]float64, n)

	gOn, gOff := 1/model.ROn, 1/model.ROff
	for r, row := range d.Cells {
		for c, e := range row {
			gc := gOff
			if e.Conducts(assignment) {
				gc = gOn
			}
			i, j := r, d.Rows+c
			g[i][i] += gc
			g[j][j] += gc
			g[i][j] -= gc
			g[j][i] -= gc
		}
	}
	// Driver on the input wordline.
	gd := 1 / model.RDriver
	g[d.InputRow][d.InputRow] += gd
	b[d.InputRow] += model.Vin * gd
	// Sense resistors on output wordlines (one per distinct row; the input
	// row doubles as the const-1 output row and is not additionally loaded).
	seen := make(map[int]bool)
	for _, r := range d.OutputRows {
		if r == d.InputRow || seen[r] {
			continue
		}
		seen[r] = true
		g[r][r] += 1 / model.RSense
	}

	var v []float64
	var err error
	if n <= 500 {
		v, err = solveDense(g, b)
	} else {
		v, err = solveCG(g, b)
	}
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(d.OutputRows))
	for i, r := range d.OutputRows {
		out[i] = v[r]
	}
	return out, nil
}

// solveDense is Gaussian elimination with partial pivoting (destroys g, b).
// zero reports whether x is exactly 0 — a sparsity fast path in the linear
// solvers (skip a zero elimination multiplier, zero RHS shortcut), never a
// tolerance decision.
//
//lint:ignore floatcmp centralized exact-zero sparsity fast path
func zero(x float64) bool { return x == 0 }

func solveDense(g [][]float64, b []float64) ([]float64, error) {
	n := len(g)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(g[r][col]) > math.Abs(g[p][col]) {
				p = r
			}
		}
		if math.Abs(g[p][col]) < 1e-18 {
			return nil, fmt.Errorf("spice: singular conductance matrix at column %d", col)
		}
		g[col], g[p] = g[p], g[col]
		b[col], b[p] = b[p], b[col]
		inv := 1 / g[col][col]
		for r := col + 1; r < n; r++ {
			f := g[r][col] * inv
			if zero(f) {
				continue
			}
			row, prow := g[r], g[col]
			for c := col; c < n; c++ {
				row[c] -= f * prow[c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		row := g[r]
		for c := r + 1; c < n; c++ {
			s -= row[c] * x[c]
		}
		x[r] = s / row[r]
	}
	return x, nil
}

// solveCG is Jacobi-preconditioned conjugate gradient for the SPD nodal
// matrix.
func solveCG(g [][]float64, b []float64) ([]float64, error) {
	n := len(g)
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = g[i][i]
		if diag[i] <= 0 {
			return nil, fmt.Errorf("spice: non-positive diagonal at node %d", i)
		}
	}
	bnorm := 0.0
	for _, bi := range b {
		bnorm += bi * bi
	}
	bnorm = math.Sqrt(bnorm)
	if zero(bnorm) {
		return x, nil
	}
	rz := 0.0
	for i := range r {
		z[i] = r[i] / diag[i]
		p[i] = z[i]
		rz += r[i] * z[i]
	}
	maxIter := 20*n + 100
	for iter := 0; iter < maxIter; iter++ {
		// ap = G p.
		for i := 0; i < n; i++ {
			s := 0.0
			row := g[i]
			for j := 0; j < n; j++ {
				s += row[j] * p[j]
			}
			ap[i] = s
		}
		pap := 0.0
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap <= 0 {
			return nil, errors.New("spice: matrix not positive definite")
		}
		alpha := rz / pap
		rnorm := 0.0
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			rnorm += r[i] * r[i]
		}
		if math.Sqrt(rnorm) <= 1e-12*bnorm {
			return x, nil
		}
		rzNew := 0.0
		for i := range r {
			z[i] = r[i] / diag[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, errors.New("spice: conjugate gradient did not converge")
}

// MarginReport summarizes the electrical separability of a design: the
// lowest output voltage observed for a logical 1 and the highest for a
// logical 0, per output and overall.
type MarginReport struct {
	MinOn     float64 // lowest voltage among logic-1 observations (+Inf if none)
	MaxOff    float64 // highest voltage among logic-0 observations (-Inf if none)
	Checked   int     // assignments simulated
	Separable bool    // MinOn > MaxOff (a sensing threshold exists)
}

// Margin simulates the design across assignments (exhaustive when nVars <=
// exhaustiveLimit, else `samples` pseudo-random vectors) using ref for the
// expected logic values, and reports the worst-case on/off voltages.
func Margin(d *xbar.Design, ref func([]bool) []bool, nVars, exhaustiveLimit, samples int, model DeviceModel, seed uint64) (MarginReport, error) {
	rep := MarginReport{MinOn: math.Inf(1), MaxOff: math.Inf(-1)}
	run := func(in []bool) error {
		want := ref(in)
		volts, err := Simulate(d, in, model)
		if err != nil {
			return err
		}
		for o, w := range want {
			if w {
				if volts[o] < rep.MinOn {
					rep.MinOn = volts[o]
				}
			} else if volts[o] > rep.MaxOff {
				rep.MaxOff = volts[o]
			}
		}
		rep.Checked++
		return nil
	}
	in := make([]bool, nVars)
	if nVars <= exhaustiveLimit {
		for a := 0; a < 1<<uint(nVars); a++ {
			for i := range in {
				in[i] = a&(1<<uint(i)) != 0
			}
			if err := run(in); err != nil {
				return rep, err
			}
		}
	} else {
		state := seed | 1
		for s := 0; s < samples; s++ {
			state = state*6364136223846793005 + 1442695040888963407
			for i := range in {
				state = state*6364136223846793005 + 1442695040888963407
				in[i] = state>>33&1 != 0
			}
			if err := run(in); err != nil {
				return rep, err
			}
		}
	}
	rep.Separable = rep.MinOn > rep.MaxOff
	return rep, nil
}

package spice

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"compact/internal/faultinject"
	"compact/internal/xbar"
)

// Per-device Monte Carlo
//
// MonteCarloContext repeats the margin analysis under randomized device
// variation. Unlike the original global-model approximation (one scaled
// DeviceModel per trial), every trial samples a full per-device
// ResistanceMap: each device of the physical array draws its own
// log-normal R_on/R_off, so a single marginal device in the middle of a
// long sneak path — the failure mode the Mixed-Mode In-Memory Computing
// literature describes — is visible, and failing trials can be attributed
// to the concrete devices on the failing read paths (critical cells).
//
// Determinism contract: for a fixed (design, Env, Variation, options) the
// report is byte-identical across runs and worker counts. Trial t draws
// from seed Seed + (t+1)*0x9e3779b97f4a7c15, every trial checks the same
// shared vector set, and results merge in trial order regardless of
// scheduling. The only nondeterminism is which trials complete when the
// deadline expires mid-run — the anytime path, marked Truncated.
//
// Deadline contract: the context is checked before every trial and every
// vector. Expiry with at least one completed trial degrades to a
// best-so-far report over the completed trials (Truncated=true, nil
// error); expiry before any trial completes returns the context error. A
// failed simulation (singular system, bad resistance map) aborts the whole
// run and returns a zero report with a wrapped error — never a
// half-populated report next to a non-nil error.

// Monte Carlo option defaults.
const (
	DefaultTrials   = 32
	DefaultVectors  = 64
	DefaultTopCells = 8
)

// mcSeedStride decorrelates per-trial resistance draws (splitmix64's odd
// gamma, the same stride the core repair loop uses for placement seeds).
const mcSeedStride = 0x9e3779b97f4a7c15

// MonteCarloOptions tunes MonteCarloContext. The zero value is the
// production default; negative Trials/Vectors/Workers are rejected.
type MonteCarloOptions struct {
	// Trials is the number of device-variation samples (default 32).
	Trials int
	// Vectors is the number of input vectors checked per trial (default
	// 64). Clamped to 2^nVars: small functions are enumerated exhaustively
	// instead of resampled.
	Vectors int
	// Workers bounds the parallel trial workers (default GOMAXPROCS).
	Workers int
	// Seed is the deterministic root seed, uint64 per the internal/defect
	// convention.
	Seed uint64
	// TopCells caps the critical-cell list (default 8; negative disables
	// attribution entirely).
	TopCells int
}

func (o MonteCarloOptions) withDefaults() MonteCarloOptions {
	if o.Trials == 0 {
		o.Trials = DefaultTrials
	}
	if o.Vectors == 0 {
		o.Vectors = DefaultVectors
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.TopCells == 0 {
		o.TopCells = DefaultTopCells
	}
	return o
}

// Key returns the canonical content string of the options fields that
// shape the sampled trials — a fragment of compactd's /v1/margin cache
// key. Workers is deliberately absent: the report is worker-count
// invariant.
func (o MonteCarloOptions) Key() string {
	c := o.withDefaults()
	return fmt.Sprintf("trials=%d|vectors=%d|seed=%d|topcells=%d", c.Trials, c.Vectors, c.Seed, c.TopCells)
}

// CriticalCell names one logical design cell and how often its device sat
// on a failing read path across failing trials. Layer is the device plane
// for K-layer stacks (always 0 for 2D designs, where it is elided from
// JSON).
type CriticalCell struct {
	Layer int `json:"layer,omitempty"`
	Row   int `json:"row"`
	Col   int `json:"col"`
	Flips int `json:"flips"`
}

// MonteCarloReport summarizes a variation analysis.
type MonteCarloReport struct {
	Trials          int  `json:"trials"`           // trials that completed (== RequestedTrials unless Truncated)
	RequestedTrials int  `json:"requested_trials"` // trials asked for
	Vectors         int  `json:"vectors"`          // input vectors checked per trial (after clamping)
	Exhaustive      bool `json:"exhaustive"`       // vectors enumerate all 2^nVars assignments
	FailTrials      int  `json:"fail_trials"`      // completed trials with no separating threshold
	// WorstMinOn / WorstMaxOff are the extreme read voltages across all
	// completed trials. A side with no observations reports its ideal rail
	// (Vin for MinOn, 0 for MaxOff) so the fields — and WorstMargin, their
	// difference — stay finite and JSON-representable for constant
	// functions.
	WorstMinOn  float64 `json:"worst_min_on"`
	WorstMaxOff float64 `json:"worst_max_off"`
	WorstMargin float64 `json:"worst_margin"`
	// Yield is the fraction of completed trials in which a single
	// threshold separates every checked vector's 0s from its 1s.
	Yield float64 `json:"yield"`
	// Truncated marks an anytime report: the deadline expired with only
	// Trials of RequestedTrials done.
	Truncated bool `json:"truncated,omitempty"`
	// Critical lists the devices whose spread most often flipped an
	// output, worst first (ties broken by position).
	Critical []CriticalCell `json:"critical_cells,omitempty"`
}

// MonteCarlo is MonteCarloContext without cancellation, against a plain
// device model. The seed is a uint64 following the internal/defect
// convention (formerly int64 + math/rand; same-seed runs are now
// byte-identical across platforms and worker counts).
func MonteCarlo(d *xbar.Design, ref func([]bool) []bool, nVars, vectors, trials int,
	base DeviceModel, v Variation, seed uint64) (MonteCarloReport, error) {
	return MonteCarloContext(context.Background(), d, ref, nVars, Env{Model: base}, v,
		MonteCarloOptions{Trials: trials, Vectors: vectors, Seed: seed})
}

// MonteCarloContext runs the per-device variation analysis described in
// the package comment above, in parallel on a bounded worker pool, under
// the shared-deadline contract.
func MonteCarloContext(ctx context.Context, d *xbar.Design, ref func([]bool) []bool, nVars int,
	env Env, v Variation, opts MonteCarloOptions) (MonteCarloReport, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	if err := faultinject.Err(faultinject.StageSpice); err != nil {
		return MonteCarloReport{}, fmt.Errorf("spice: monte carlo: %w", err)
	}
	if opts.Trials < 0 || opts.Vectors < 0 || opts.Workers < 0 {
		return MonteCarloReport{}, fmt.Errorf("spice: negative trials/vectors/workers (%d/%d/%d)",
			opts.Trials, opts.Vectors, opts.Workers)
	}
	if nVars < 0 {
		return MonteCarloReport{}, fmt.Errorf("spice: negative nVars %d", nVars)
	}
	if err := v.Validate(); err != nil {
		return MonteCarloReport{}, err
	}
	opts = opts.withDefaults()
	na, err := compile(d, env)
	if err != nil {
		return MonteCarloReport{}, err
	}

	// The shared vector set: every trial checks the same assignments, so
	// trials differ only in their device draw. Small functions enumerate
	// all 2^nVars assignments instead of resampling duplicates.
	exhaustive := false
	if nVars < 31 && opts.Vectors >= 1<<nVars {
		opts.Vectors = 1 << nVars
		exhaustive = true
	}
	vecs := make([][]bool, opts.Vectors)
	wants := make([][]bool, opts.Vectors)
	state := opts.Seed ^ variationSalt ^ 0x7ec70_95f
	for s := range vecs {
		in := make([]bool, nVars)
		if exhaustive {
			for i := range in {
				in[i] = s&(1<<uint(i)) != 0
			}
		} else {
			for i := range in {
				in[i] = splitmix64(&state)&1 != 0
			}
		}
		vecs[s] = in
		wants[s] = append([]bool(nil), ref(in)...)
		if len(wants[s]) != len(d.OutputRows) {
			return MonteCarloReport{}, fmt.Errorf("spice: ref yields %d outputs but the design has %d",
				len(wants[s]), len(d.OutputRows))
		}
	}

	type trial struct {
		done   bool
		fail   bool
		minOn  float64
		maxOff float64
		onVec  int // vector achieving minOn (-1 = no logic-1 observation)
		offVec int // vector achieving maxOff (-1 = no logic-0 observation)
	}
	out := make([]trial, opts.Trials)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next    atomic.Int64
		errOnce sync.Once
		simErr  error
		wg      sync.WaitGroup
	)
	workers := min(opts.Workers, opts.Trials)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= opts.Trials || runCtx.Err() != nil {
					return
				}
				res, err := SampleResistances(na.physRows, na.physCols, na.model, v,
					opts.Seed+uint64(t+1)*mcSeedStride)
				if err != nil {
					errOnce.Do(func() { simErr = err; cancel() })
					return
				}
				tr := trial{minOn: math.Inf(1), maxOff: math.Inf(-1), onVec: -1, offVec: -1}
				aborted := false
				for s, in := range vecs {
					if runCtx.Err() != nil {
						aborted = true // deadline mid-trial: drop the partial trial
						break
					}
					volts, err := na.simulate(in, res)
					if err != nil {
						errOnce.Do(func() { simErr = fmt.Errorf("trial %d: %w", t, err); cancel() })
						return
					}
					for o, w := range wants[s] {
						if w {
							if volts[o] < tr.minOn {
								tr.minOn, tr.onVec = volts[o], s
							}
						} else if volts[o] > tr.maxOff {
							tr.maxOff, tr.offVec = volts[o], s
						}
					}
				}
				if aborted {
					continue
				}
				tr.fail = !(tr.minOn > tr.maxOff)
				tr.done = true
				out[t] = tr
			}
		}()
	}
	wg.Wait()
	if simErr != nil {
		return MonteCarloReport{}, fmt.Errorf("spice: monte carlo: %w", simErr)
	}

	rep := MonteCarloReport{
		RequestedTrials: opts.Trials,
		Vectors:         opts.Vectors,
		Exhaustive:      exhaustive,
		WorstMinOn:      math.Inf(1),
		WorstMaxOff:     math.Inf(-1),
	}
	blame := map[[2]int]int{}
	for t := range out {
		tr := &out[t]
		if !tr.done {
			continue
		}
		rep.Trials++
		if tr.minOn < rep.WorstMinOn {
			rep.WorstMinOn = tr.minOn
		}
		if tr.maxOff > rep.WorstMaxOff {
			rep.WorstMaxOff = tr.maxOff
		}
		if tr.fail {
			rep.FailTrials++
			if opts.TopCells > 0 {
				blameTrial(na, vecs, tr.onVec, tr.offVec, blame)
			}
		}
	}
	if rep.Trials == 0 {
		return MonteCarloReport{}, fmt.Errorf("spice: monte carlo: %w", ctx.Err())
	}
	rep.Truncated = rep.Trials < rep.RequestedTrials
	rep.Yield = float64(rep.Trials-rep.FailTrials) / float64(rep.Trials)
	if math.IsInf(rep.WorstMinOn, 1) {
		rep.WorstMinOn = na.model.Vin // no logic-1 observations: ideal rail
	}
	if math.IsInf(rep.WorstMaxOff, -1) {
		rep.WorstMaxOff = 0 // no logic-0 observations: ideal rail
	}
	rep.WorstMargin = rep.WorstMinOn - rep.WorstMaxOff
	rep.Critical = topCells(blame, opts.TopCells)
	return rep, nil
}

// blameTrial charges the devices most plausibly responsible for a failing
// trial, from sneak-path membership under the trial's two worst reads:
// for the worst logic-1 read, every conducting cell in the driven
// component (the path members whose raised resistance starves the read);
// for the worst logic-0 read, every off-state cell bordering the driven
// component (the leakage devices feeding the false read). Attribution is
// over logical design cells; bridge devices on spare lines are a
// placement-level hazard reported through the margin-aware placement
// objective instead.
func blameTrial(na *nodal, vecs [][]bool, onVec, offVec int, blame map[[2]int]int) {
	d := na.d
	charge := func(vec int, conducting bool) {
		if vec < 0 {
			return
		}
		in := vecs[vec]
		uf := newUnionFind(d.Rows + d.Cols)
		for r, row := range d.Cells {
			for c, e := range row {
				if e.Conducts(in) {
					uf.union(r, d.Rows+c)
				}
			}
		}
		driven := uf.find(d.InputRow)
		for r, row := range d.Cells {
			for c, e := range row {
				on := e.Conducts(in)
				if on != conducting {
					continue
				}
				if on {
					if uf.find(r) == driven {
						blame[[2]int{r, c}]++
					}
				} else if uf.find(r) == driven || uf.find(d.Rows+c) == driven {
					blame[[2]int{r, c}]++
				}
			}
		}
	}
	charge(onVec, true)
	charge(offVec, false)
}

// topCells ranks the blame counts: most flips first, then row-major
// position — a total deterministic order.
func topCells(blame map[[2]int]int, k int) []CriticalCell {
	if len(blame) == 0 || k <= 0 {
		return nil
	}
	cells := make([]CriticalCell, 0, len(blame))
	for pos, n := range blame {
		cells = append(cells, CriticalCell{Row: pos[0], Col: pos[1], Flips: n})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Flips != cells[j].Flips {
			return cells[i].Flips > cells[j].Flips
		}
		if cells[i].Row != cells[j].Row {
			return cells[i].Row < cells[j].Row
		}
		return cells[i].Col < cells[j].Col
	})
	if len(cells) > k {
		cells = cells[:k]
	}
	return cells
}

// unionFind is a minimal path-halving union-find over nanowire nodes, the
// same connectivity model xbar.Eval uses.
type unionFind []int

func newUnionFind(n int) unionFind {
	uf := make(unionFind, n)
	for i := range uf {
		uf[i] = i
	}
	return uf
}

func (uf unionFind) find(x int) int {
	for uf[x] != x {
		uf[x] = uf[uf[x]]
		x = uf[x]
	}
	return x
}

func (uf unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra != rb {
		uf[ra] = rb
	}
}

package spice

import (
	"fmt"
	"math"
	"math/rand"

	"compact/internal/xbar"
)

// Variation describes log-normal device-to-device spread, the usual model
// for resistive-RAM cycle and device variation: each device's on and off
// resistances are multiplied by exp(N(0, sigma)).
type Variation struct {
	SigmaOn  float64 // log-std of the on-state resistance
	SigmaOff float64 // log-std of the off-state resistance
}

// MonteCarloReport summarizes a variation analysis.
type MonteCarloReport struct {
	Trials      int
	Vectors     int     // input vectors checked per trial
	FailTrials  int     // trials with at least one misread output
	WorstMinOn  float64 // lowest logic-1 voltage seen across all trials
	WorstMaxOff float64 // highest logic-0 voltage seen
	// Yield is the fraction of trials in which every checked vector was
	// readable with the trial's best threshold.
	Yield float64
}

// MonteCarlo repeats the margin analysis under randomized device
// variation: each trial perturbs every device's resistances, simulates
// `vectors` random input vectors, and asks whether a single threshold
// still separates all observed 0s from 1s. The perturbation is modeled by
// scaling the whole array's Ron/Roff per cell; since the nodal solver
// takes one global model, the per-cell spread is approximated by sampling
// an effective model per trial from the same log-normal — adequate for
// yield trends, not for per-device hot spots (documented simplification).
func MonteCarlo(d *xbar.Design, ref func([]bool) []bool, nVars, vectors, trials int,
	base DeviceModel, v Variation, seed int64) (MonteCarloReport, error) {

	if trials <= 0 || vectors <= 0 {
		return MonteCarloReport{}, fmt.Errorf("spice: trials and vectors must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	rep := MonteCarloReport{
		Trials:      trials,
		Vectors:     vectors,
		WorstMinOn:  math.Inf(1),
		WorstMaxOff: math.Inf(-1),
	}
	for trial := 0; trial < trials; trial++ {
		model := base
		model.ROn = base.ROn * math.Exp(rng.NormFloat64()*v.SigmaOn)
		model.ROff = base.ROff * math.Exp(rng.NormFloat64()*v.SigmaOff)
		if model.ROff <= model.ROn {
			// Catastrophic variation: the trial fails outright.
			rep.FailTrials++
			continue
		}
		minOn, maxOff := math.Inf(1), math.Inf(-1)
		in := make([]bool, nVars)
		for s := 0; s < vectors; s++ {
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			want := ref(in)
			volts, err := Simulate(d, in, model)
			if err != nil {
				return rep, err
			}
			for o, w := range want {
				if w {
					minOn = math.Min(minOn, volts[o])
				} else {
					maxOff = math.Max(maxOff, volts[o])
				}
			}
		}
		if minOn < rep.WorstMinOn {
			rep.WorstMinOn = minOn
		}
		if maxOff > rep.WorstMaxOff {
			rep.WorstMaxOff = maxOff
		}
		if !(minOn > maxOff) {
			rep.FailTrials++
		}
	}
	rep.Yield = float64(trials-rep.FailTrials) / float64(trials)
	return rep, nil
}

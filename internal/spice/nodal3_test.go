package spice

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"compact/internal/bdd"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/xbar"
	"compact/internal/xbar3d"
)

// synth3 runs the layered pipeline with natural variable order:
// BDD -> graph -> K-labeling -> Map3D.
func synth3(t *testing.T, nw *logic.Network, k int) *xbar3d.Design3D {
	t.Helper()
	m, roots, err := bdd.BuildNetwork(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := xbar.FromBDD(m, roots, nw.OutputNames)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := labeling.SolveK(context.Background(), bg.Problem(true), k, labeling.Options{
		Method: labeling.MethodHeuristic, Gamma: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := xbar3d.Map3D(bg, sol)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSimulate3DLiftMatches2D pins the 2D/3D consistency: lifting a 2D
// design to a 2-layer stack must reproduce the 2D nodal voltages exactly —
// same nodes, same stamps, same solve.
func TestSimulate3DLiftMatches2D(t *testing.T) {
	nw := fig2()
	d2 := synth(t, nw)
	d3, err := xbar3d.Lift3D(d2)
	if err != nil {
		t.Fatal(err)
	}
	model := Default()
	for a := 0; a < 8; a++ {
		in := []bool{a&1 != 0, a&2 != 0, a&4 != 0}
		assign := levelAssign(d2, nw, in)
		v2, err := Simulate(d2, assign, model)
		if err != nil {
			t.Fatal(err)
		}
		v3, err := Simulate3D(d3, assign, model)
		if err != nil {
			t.Fatal(err)
		}
		if len(v2) != len(v3) {
			t.Fatalf("output counts differ: %d vs %d", len(v2), len(v3))
		}
		for o := range v2 {
			if math.Abs(v2[o]-v3[o]) > 1e-9 {
				t.Errorf("assignment %03b output %d: 2D %v vs 3D %v", a, o, v2[o], v3[o])
			}
		}
	}
}

func TestMargin3DSeparableAcrossK(t *testing.T) {
	nw := fig2()
	for k := 2; k <= 4; k++ {
		d := synth3(t, nw, k)
		rep, err := Margin3DContext(context.Background(), d, nw.Eval, 3, 8, 0, Default(), 1)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if rep.Checked != 8 {
			t.Errorf("K=%d: checked %d assignments, want 8", k, rep.Checked)
		}
		if !rep.Separable {
			t.Errorf("K=%d not separable: minOn=%v maxOff=%v", k, rep.MinOn, rep.MaxOff)
		}
	}
}

func TestMonteCarlo3DDeterministic(t *testing.T) {
	nw := fig2()
	d := synth3(t, nw, 3)
	v := Variation{SigmaOn: 0.5, SigmaOff: 0.5}
	run := func(workers int) MonteCarloReport {
		rep, err := MonteCarlo3DContext(context.Background(), d, nw.Eval, 3, Default(), v,
			MonteCarloOptions{Trials: 8, Vectors: 8, Seed: 42, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("report depends on worker count:\n%+v\n%+v", a, b)
	}
	if a.Trials != 8 || !a.Exhaustive {
		t.Errorf("unexpected shape: %+v", a)
	}
}

// TestMonteCarlo3DCriticalLayers forces failing trials with an absurd
// spread and checks the per-plane attribution: every critical cell must
// name a real device of a real plane, worst first.
func TestMonteCarlo3DCriticalLayers(t *testing.T) {
	nw := fig2()
	d := synth3(t, nw, 3)
	model := Default()
	model.ROff = model.ROn * 4 // almost no contrast: variation flips reads
	v := Variation{SigmaOn: 1.5, SigmaOff: 1.5}
	rep, err := MonteCarlo3D(d, nw.Eval, 3, 8, 16, model, v, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailTrials == 0 {
		t.Fatal("expected failing trials under near-zero contrast")
	}
	if len(rep.Critical) == 0 {
		t.Fatal("failing trials but no critical cells")
	}
	for _, c := range rep.Critical {
		if c.Layer < 0 || c.Layer >= len(d.Cells) {
			t.Errorf("critical cell plane %d outside 0..%d", c.Layer, len(d.Cells)-1)
		} else if c.Row < 0 || c.Row >= d.Widths[c.Layer] || c.Col < 0 || c.Col >= d.Widths[c.Layer+1] {
			t.Errorf("critical cell (%d,%d,%d) outside plane %dx%d",
				c.Layer, c.Row, c.Col, d.Widths[c.Layer], d.Widths[c.Layer+1])
		}
		if c.Flips <= 0 {
			t.Errorf("critical cell with %d flips", c.Flips)
		}
	}
	for i := 1; i < len(rep.Critical); i++ {
		if rep.Critical[i].Flips > rep.Critical[i-1].Flips {
			t.Errorf("critical cells not sorted by flips: %+v", rep.Critical)
		}
	}
}

func TestCompile3TooLarge(t *testing.T) {
	d, err := xbar3d.NewDesign3D([]int{maxNodes + 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	_, cerr := Simulate3D(d, nil, Default())
	if !errors.Is(cerr, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", cerr)
	}
}

func TestMonteCarlo3DDeadline(t *testing.T) {
	nw := fig2()
	d := synth3(t, nw, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MonteCarlo3DContext(ctx, d, nw.Eval, 3, Default(), Variation{},
		MonteCarloOptions{Trials: 4, Vectors: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

package spice

import (
	"math"
	"testing"

	"compact/internal/bdd"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/xbar"
)

func synth(t *testing.T, nw *logic.Network) *xbar.Design {
	t.Helper()
	m, roots, err := bdd.BuildNetwork(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := xbar.FromBDD(m, roots, nw.OutputNames)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := labeling.Solve(bg.Problem(true), labeling.Options{Method: labeling.MethodMIP, Gamma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	d, err := xbar.Map(bg, sol.Labels)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func fig2() *logic.Network {
	b := logic.NewBuilder("fig2")
	a, bb, c := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("f", b.Or(b.And(a, bb), c))
	return b.Build()
}

func TestModelValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Default()
	bad.ROff = bad.ROn
	if err := bad.Validate(); err == nil {
		t.Error("ROff == ROn accepted")
	}
	bad2 := Default()
	bad2.RSense = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero RSense accepted")
	}
}

func TestFig2Voltages(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	model := Default()
	// a=1,b=1,c=0: f=1 -> strong output voltage.
	vOn, err := Simulate(d, levelAssign(d, nw, []bool{true, true, false}), model)
	if err != nil {
		t.Fatal(err)
	}
	// a=0,b=0,c=0: f=0 -> near-zero output voltage.
	vOff, err := Simulate(d, levelAssign(d, nw, []bool{false, false, false}), model)
	if err != nil {
		t.Fatal(err)
	}
	if vOn[0] <= vOff[0] {
		t.Errorf("on voltage %v not above off voltage %v", vOn[0], vOff[0])
	}
	if vOn[0] <= 0 || vOn[0] >= model.Vin {
		t.Errorf("on voltage %v outside (0, Vin)", vOn[0])
	}
	if vOff[0] < 0 {
		t.Errorf("negative off voltage %v", vOff[0])
	}
}

// levelAssign maps a network-input-order assignment to BDD-level order.
// With natural order they coincide; keep the helper for clarity.
func levelAssign(d *xbar.Design, nw *logic.Network, in []bool) []bool {
	out := make([]bool, len(d.VarNames))
	for lv, name := range d.VarNames {
		out[lv] = in[nw.InputIndex(name)]
	}
	return out
}

func TestMarginSeparable(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	rep, err := Margin(d, nw.Eval, 3, 8, 0, Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 8 {
		t.Errorf("checked %d assignments, want 8", rep.Checked)
	}
	if !rep.Separable {
		t.Errorf("fig2 not separable: minOn=%v maxOff=%v", rep.MinOn, rep.MaxOff)
	}
	// With a healthy ROn/ROff ratio the margin should be wide.
	if rep.MinOn < 2*rep.MaxOff {
		t.Errorf("margin too thin: minOn=%v maxOff=%v", rep.MinOn, rep.MaxOff)
	}
}

func TestMarginDegradedDevices(t *testing.T) {
	// With ROff barely above ROn, separability should collapse on any
	// non-trivial design.
	nw := fig2()
	d := synth(t, nw)
	model := Default()
	model.ROff = model.ROn * 1.01
	rep, err := Margin(d, nw.Eval, 3, 8, 0, model, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Separable && rep.MinOn > 1.5*rep.MaxOff {
		t.Errorf("degenerate devices still cleanly separable: %+v", rep)
	}
}

func TestMultiOutputLoading(t *testing.T) {
	// Multiple sense resistors load the array; all outputs must still be
	// separable.
	b := logic.NewBuilder("mo")
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	b.Output("f", b.And(x, y))
	b.Output("g", b.Or(y, z))
	b.Output("h", b.Xor(x, z))
	nw := b.Build()
	d := synth(t, nw)
	rep, err := Margin(d, nw.Eval, 3, 8, 0, Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Separable {
		t.Errorf("multi-output design not separable: %+v", rep)
	}
}

func TestDenseVsCGAgree(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	model := Default()
	assign := levelAssign(d, nw, []bool{true, false, true})
	// Build the same system twice via the shared assembler and solve with
	// both backends directly (Simulate picks one by size).
	na, err := compile(d, Env{Model: model})
	if err != nil {
		t.Fatal(err)
	}
	g1, b1, err := na.system(assign, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, b2, err := na.system(assign, nil)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := solveDense(g1, b1)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := solveCG(g2, b2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-6*math.Max(1, math.Abs(x1[i])) {
			t.Errorf("node %d: dense %v vs CG %v", i, x1[i], x2[i])
		}
	}
}

func TestSolveDenseKnownSystem(t *testing.T) {
	// 2x2: [2 -1; -1 2] x = [1; 0] -> x = [2/3, 1/3].
	g := [][]float64{{2, -1}, {-1, 2}}
	b := []float64{1, 0}
	x, err := solveDense(g, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2.0/3) > 1e-12 || math.Abs(x[1]-1.0/3) > 1e-12 {
		t.Errorf("x = %v", x)
	}
}

func TestSimulateAgreesWithLogicalEval(t *testing.T) {
	// Electrical threshold classification must match union-find evaluation
	// on a moderate design: pick threshold between MaxOff and MinOn.
	b := logic.NewBuilder("maj")
	x, y, z := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("maj", b.Or(b.And(x, y), b.And(x, z), b.And(y, z)))
	nw := b.Build()
	d := synth(t, nw)
	rep, err := Margin(d, nw.Eval, 3, 8, 0, Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Separable {
		t.Fatalf("majority gate not separable: %+v", rep)
	}
	thr := (rep.MinOn + rep.MaxOff) / 2
	for a := 0; a < 8; a++ {
		in := []bool{a&1 != 0, a&2 != 0, a&4 != 0}
		volts, err := Simulate(d, levelAssign(d, nw, in), Default())
		if err != nil {
			t.Fatal(err)
		}
		logical := d.Eval(levelAssign(d, nw, in))
		for o := range volts {
			if (volts[o] > thr) != logical[o] {
				t.Errorf("assignment %03b output %d: electrical %v vs logical %v", a, o, volts[o], logical[o])
			}
		}
	}
}

func TestMonteCarloHealthyDevices(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	rep, err := MonteCarlo(d, nw.Eval, 3, 8, 30, HighContrast(), Variation{SigmaOn: 0.1, SigmaOff: 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Yield < 0.95 {
		t.Errorf("tight variation should barely affect yield: %+v", rep)
	}
	if rep.WorstMinOn <= 0 {
		t.Errorf("worst on-voltage non-positive: %+v", rep)
	}
}

func TestMonteCarloHugeVariationKillsYield(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	base := Default()
	base.ROff = base.ROn * 3 // almost no contrast to begin with
	rep, err := MonteCarlo(d, nw.Eval, 3, 8, 40, base, Variation{SigmaOn: 1.5, SigmaOff: 1.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Yield > 0.9 {
		t.Errorf("extreme variation should hurt yield: %+v", rep)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	nw := fig2()
	d := synth(t, nw)
	if _, err := MonteCarlo(d, nw.Eval, 3, -1, 10, Default(), Variation{}, 1); err == nil {
		t.Error("negative vectors accepted")
	}
	if _, err := MonteCarlo(d, nw.Eval, 3, 8, -1, Default(), Variation{}, 1); err == nil {
		t.Error("negative trials accepted")
	}
	if _, err := MonteCarlo(d, nw.Eval, 3, 8, 10, Default(), Variation{SigmaOn: -0.5}, 1); err == nil {
		t.Error("negative sigma accepted")
	}
}

package spice

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"compact/internal/faultinject"
	"compact/internal/xbar3d"
)

// 3D nodal analysis
//
// A K-layer design is the same resistive network as a 2D one, just with
// more nanowire nodes: every wire of every layer is a node, and the device
// at plane cell (d, r, c) — including the always-ON via stitches that fold
// a wordline across layers — is a conductance between wire r of layer d
// and wire c of layer d+1. Off-state devices still conduct 1/R_off; a
// fabricated stack has a memristor at every crosspoint of every plane, so
// the sneak-path leakage budget grows with the stack's total device count,
// not its footprint. Vias reuse R_on: an On-programmed device in the low
// resistive state is the stitch, with no separate via model.
//
// The 3D path simulates clean stacks only — no defect maps, no placement.
// That restriction is deliberate: the layered placement story (per-plane
// fault maps, spare-line bridges that can span planes) has a logical model
// in xbar3d.Place3D but no electrical one yet, and a margin number that
// silently ignored the faults it was asked about would be worse than a
// typed refusal. Service layers map the layered-with-defects case to a
// typed unsupported error instead (DESIGN §15).

// nodal3 is a compiled 3D simulation of one (design, model) pair: the
// global wire node space and the sense/drive attachment points. simulate
// is re-entrant; concurrent Monte Carlo trials share one nodal3.
type nodal3 struct {
	d       *xbar3d.Design3D
	model   DeviceModel
	offsets []int // global wire id of each layer's wire 0
	n       int   // total nodes = total wires
	inputID int
	outIDs  []int // global wire id per output (parallel to d.Outputs)
}

// compile3 validates the design's shape against the model and precomputes
// the node numbering.
func compile3(d *xbar3d.Design3D, model DeviceModel) (*nodal3, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	k := d.K()
	if k < 2 {
		return nil, fmt.Errorf("spice: %d wire layers (need >= 2)", k)
	}
	if len(d.Cells) != k-1 {
		return nil, fmt.Errorf("spice: %d device planes for %d wire layers", len(d.Cells), k)
	}
	for dl, plane := range d.Cells {
		if len(plane) != d.Widths[dl] {
			return nil, fmt.Errorf("spice: plane %d has %d rows, layer width is %d", dl, len(plane), d.Widths[dl])
		}
		for r, row := range plane {
			if len(row) != d.Widths[dl+1] {
				return nil, fmt.Errorf("spice: plane %d row %d has %d cols, layer width is %d", dl, r, len(row), d.Widths[dl+1])
			}
		}
	}
	checkRef := func(what string, ref xbar3d.WireRef) error {
		if ref.Layer < 0 || ref.Layer >= k {
			return fmt.Errorf("spice: %s wire layer %d outside 0..%d", what, ref.Layer, k-1)
		}
		if ref.Index < 0 || ref.Index >= d.Widths[ref.Layer] {
			return fmt.Errorf("spice: %s wire %d outside layer %d width %d", what, ref.Index, ref.Layer, d.Widths[ref.Layer])
		}
		return nil
	}
	if err := checkRef("input", d.Input); err != nil {
		return nil, err
	}
	na := &nodal3{d: d, model: model, n: d.NumWires()}
	na.offsets = make([]int, k)
	for l := 1; l < k; l++ {
		na.offsets[l] = na.offsets[l-1] + d.Widths[l-1]
	}
	na.inputID = d.WireID(d.Input)
	na.outIDs = make([]int, len(d.Outputs))
	for i, o := range d.Outputs {
		if err := checkRef(fmt.Sprintf("output #%d", i), o); err != nil {
			return nil, err
		}
		na.outIDs[i] = d.WireID(o)
	}
	if na.n > maxNodes {
		return nil, fmt.Errorf("spice: %d nanowire nodes exceed the %d-node cap: %w", na.n, maxNodes, ErrTooLarge)
	}
	return na, nil
}

// checkPlaneRes validates a per-plane resistance stack against the design:
// one map per device plane, each matching its plane's extent. Planes with
// a zero extent may carry a nil entry (there is no device to look up).
func (na *nodal3) checkPlaneRes(res []*ResistanceMap) error {
	if len(res) != len(na.d.Cells) {
		return fmt.Errorf("spice: %d resistance maps for %d device planes", len(res), len(na.d.Cells))
	}
	for dl, m := range res {
		rows, cols := na.d.Widths[dl], na.d.Widths[dl+1]
		if m == nil {
			if rows > 0 && cols > 0 {
				return fmt.Errorf("spice: nil resistance map for non-empty plane %d", dl)
			}
			continue
		}
		if err := m.Validate(); err != nil {
			return err
		}
		if m.Rows != rows || m.Cols != cols {
			return fmt.Errorf("spice: plane %d resistance map %dx%d does not match the %dx%d plane",
				dl, m.Rows, m.Cols, rows, cols)
		}
	}
	return nil
}

// system3 assembles the conductance matrix and current vector for one
// assignment. res carries one ResistanceMap per device plane (nil = every
// device nominal).
func (na *nodal3) system3(assignment []bool, res []*ResistanceMap) ([][]float64, []float64, error) {
	if res != nil {
		if err := na.checkPlaneRes(res); err != nil {
			return nil, nil, err
		}
	}
	d := na.d
	n := na.n
	g := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range g {
		g[i], backing = backing[:n:n], backing[n:]
	}
	b := make([]float64, n)

	gOnNom, gOffNom := 1/na.model.ROn, 1/na.model.ROff
	for dl, plane := range d.Cells {
		var m *ResistanceMap
		if res != nil {
			m = res[dl]
		}
		for r, row := range plane {
			i := na.offsets[dl] + r
			for c, e := range row {
				j := na.offsets[dl+1] + c
				gOn, gOff := gOnNom, gOffNom
				if m != nil {
					gOn, gOff = 1/m.OnAt(r, c), 1/m.OffAt(r, c)
				}
				gc := gOff
				if e.Conducts(assignment) {
					gc = gOn
				}
				g[i][i] += gc
				g[j][j] += gc
				g[i][j] -= gc
				g[j][i] -= gc
			}
		}
	}
	// Driver on the input wire.
	gd := 1 / na.model.RDriver
	g[na.inputID][na.inputID] += gd
	b[na.inputID] += na.model.Vin * gd
	// Sense resistors on output wires (one per distinct wire; the input
	// wire doubles as the const-1 output and is not additionally loaded).
	seen := make(map[int]bool)
	for _, w := range na.outIDs {
		if w == na.inputID || seen[w] {
			continue
		}
		seen[w] = true
		g[w][w] += 1 / na.model.RSense
	}
	return g, b, nil
}

// simulate solves the 3D nodal system for one assignment and returns the
// output wire voltages (parallel to d.Outputs).
func (na *nodal3) simulate(assignment []bool, res []*ResistanceMap) ([]float64, error) {
	g, b, err := na.system3(assignment, res)
	if err != nil {
		return nil, err
	}
	var v []float64
	if na.n <= 500 {
		v, err = solveDense(g, b)
	} else {
		v, err = solveCG(g, b)
	}
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(na.outIDs))
	for i, w := range na.outIDs {
		out[i] = v[w]
	}
	return out, nil
}

// Simulate3D computes the voltage on every output wire of the programmed
// K-layer stack under the given assignment, with nominal devices. The
// returned slice parallels d.Outputs. A 2-layer stack lifted from a 2D
// design (xbar3d.Lift3D) yields exactly the 2D Simulate voltages.
func Simulate3D(d *xbar3d.Design3D, assignment []bool, model DeviceModel) ([]float64, error) {
	na, err := compile3(d, model)
	if err != nil {
		return nil, err
	}
	return na.simulate(assignment, nil)
}

// Margin3DContext is MarginContext for clean K-layer stacks: exhaustive or
// sampled assignments, worst-case on/off voltages, anytime on expiry.
func Margin3DContext(ctx context.Context, d *xbar3d.Design3D, ref func([]bool) []bool, nVars, exhaustiveLimit, samples int, model DeviceModel, seed uint64) (MarginReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rep := MarginReport{MinOn: math.Inf(1), MaxOff: math.Inf(-1)}
	na, err := compile3(d, model)
	if err != nil {
		return MarginReport{}, err
	}
	run := func(in []bool) error {
		want := ref(in)
		volts, err := na.simulate(in, nil)
		if err != nil {
			return err
		}
		for o, w := range want {
			if w {
				if volts[o] < rep.MinOn {
					rep.MinOn = volts[o]
				}
			} else if volts[o] > rep.MaxOff {
				rep.MaxOff = volts[o]
			}
		}
		rep.Checked++
		return nil
	}
	fail := func(err error) (MarginReport, error) {
		if ctxErr := ctx.Err(); ctxErr != nil {
			rep.Separable = rep.MinOn > rep.MaxOff
			return rep, ctxErr
		}
		return MarginReport{}, err
	}
	in := make([]bool, nVars)
	if nVars <= exhaustiveLimit {
		for a := 0; a < 1<<uint(nVars); a++ {
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			for i := range in {
				in[i] = a&(1<<uint(i)) != 0
			}
			if err := run(in); err != nil {
				return fail(err)
			}
		}
	} else {
		state := seed ^ variationSalt ^ 0x5bf0_3635
		for s := 0; s < samples; s++ {
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			for i := range in {
				in[i] = splitmix64(&state)&1 != 0
			}
			if err := run(in); err != nil {
				return fail(err)
			}
		}
	}
	rep.Separable = rep.MinOn > rep.MaxOff
	return rep, nil
}

// samplePlaneRes draws one concrete stack: an independent log-normal
// resistance map per device plane, plane seeds derived from the trial seed
// through the splitmix64 stream so no two (trial, plane) pairs share a
// stream. Zero-extent planes get a nil entry but still consume a seed, so
// their presence never shifts another plane's draw.
func samplePlaneRes(d *xbar3d.Design3D, base DeviceModel, v Variation, trialSeed uint64) ([]*ResistanceMap, error) {
	res := make([]*ResistanceMap, len(d.Cells))
	state := trialSeed
	for dl := range d.Cells {
		planeSeed := splitmix64(&state)
		rows, cols := d.Widths[dl], d.Widths[dl+1]
		if rows == 0 || cols == 0 {
			continue
		}
		m, err := SampleResistances(rows, cols, base, v, planeSeed)
		if err != nil {
			return nil, err
		}
		res[dl] = m
	}
	return res, nil
}

// MonteCarlo3D is MonteCarlo3DContext without cancellation.
func MonteCarlo3D(d *xbar3d.Design3D, ref func([]bool) []bool, nVars, vectors, trials int,
	base DeviceModel, v Variation, seed uint64) (MonteCarloReport, error) {
	return MonteCarlo3DContext(context.Background(), d, ref, nVars, base, v,
		MonteCarloOptions{Trials: trials, Vectors: vectors, Seed: seed})
}

// MonteCarlo3DContext runs the per-device variation analysis of
// MonteCarloContext on a clean K-layer stack: every trial samples a full
// per-plane resistance draw, every trial checks the same shared vector
// set, and results merge in trial order under the same determinism and
// deadline contracts. Critical cells carry their device plane in Layer.
func MonteCarlo3DContext(ctx context.Context, d *xbar3d.Design3D, ref func([]bool) []bool, nVars int,
	base DeviceModel, v Variation, opts MonteCarloOptions) (MonteCarloReport, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	if err := faultinject.Err(faultinject.StageSpice); err != nil {
		return MonteCarloReport{}, fmt.Errorf("spice: monte carlo: %w", err)
	}
	if opts.Trials < 0 || opts.Vectors < 0 || opts.Workers < 0 {
		return MonteCarloReport{}, fmt.Errorf("spice: negative trials/vectors/workers (%d/%d/%d)",
			opts.Trials, opts.Vectors, opts.Workers)
	}
	if nVars < 0 {
		return MonteCarloReport{}, fmt.Errorf("spice: negative nVars %d", nVars)
	}
	if err := v.Validate(); err != nil {
		return MonteCarloReport{}, err
	}
	opts = opts.withDefaults()
	na, err := compile3(d, base)
	if err != nil {
		return MonteCarloReport{}, err
	}

	exhaustive := false
	if nVars < 31 && opts.Vectors >= 1<<nVars {
		opts.Vectors = 1 << nVars
		exhaustive = true
	}
	vecs := make([][]bool, opts.Vectors)
	wants := make([][]bool, opts.Vectors)
	state := opts.Seed ^ variationSalt ^ 0x7ec70_95f
	for s := range vecs {
		in := make([]bool, nVars)
		if exhaustive {
			for i := range in {
				in[i] = s&(1<<uint(i)) != 0
			}
		} else {
			for i := range in {
				in[i] = splitmix64(&state)&1 != 0
			}
		}
		vecs[s] = in
		wants[s] = append([]bool(nil), ref(in)...)
		if len(wants[s]) != len(d.Outputs) {
			return MonteCarloReport{}, fmt.Errorf("spice: ref yields %d outputs but the design has %d",
				len(wants[s]), len(d.Outputs))
		}
	}

	type trial struct {
		done   bool
		fail   bool
		minOn  float64
		maxOff float64
		onVec  int
		offVec int
	}
	out := make([]trial, opts.Trials)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next    atomic.Int64
		errOnce sync.Once
		simErr  error
		wg      sync.WaitGroup
	)
	workers := min(opts.Workers, opts.Trials)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= opts.Trials || runCtx.Err() != nil {
					return
				}
				res, err := samplePlaneRes(d, base, v, opts.Seed+uint64(t+1)*mcSeedStride)
				if err != nil {
					errOnce.Do(func() { simErr = err; cancel() })
					return
				}
				tr := trial{minOn: math.Inf(1), maxOff: math.Inf(-1), onVec: -1, offVec: -1}
				aborted := false
				for s, in := range vecs {
					if runCtx.Err() != nil {
						aborted = true // deadline mid-trial: drop the partial trial
						break
					}
					volts, err := na.simulate(in, res)
					if err != nil {
						errOnce.Do(func() { simErr = fmt.Errorf("trial %d: %w", t, err); cancel() })
						return
					}
					for o, w := range wants[s] {
						if w {
							if volts[o] < tr.minOn {
								tr.minOn, tr.onVec = volts[o], s
							}
						} else if volts[o] > tr.maxOff {
							tr.maxOff, tr.offVec = volts[o], s
						}
					}
				}
				if aborted {
					continue
				}
				tr.fail = !(tr.minOn > tr.maxOff)
				tr.done = true
				out[t] = tr
			}
		}()
	}
	wg.Wait()
	if simErr != nil {
		return MonteCarloReport{}, fmt.Errorf("spice: monte carlo: %w", simErr)
	}

	rep := MonteCarloReport{
		RequestedTrials: opts.Trials,
		Vectors:         opts.Vectors,
		Exhaustive:      exhaustive,
		WorstMinOn:      math.Inf(1),
		WorstMaxOff:     math.Inf(-1),
	}
	blame := map[[3]int]int{}
	for t := range out {
		tr := &out[t]
		if !tr.done {
			continue
		}
		rep.Trials++
		if tr.minOn < rep.WorstMinOn {
			rep.WorstMinOn = tr.minOn
		}
		if tr.maxOff > rep.WorstMaxOff {
			rep.WorstMaxOff = tr.maxOff
		}
		if tr.fail {
			rep.FailTrials++
			if opts.TopCells > 0 {
				blameTrial3(na, vecs, tr.onVec, tr.offVec, blame)
			}
		}
	}
	if rep.Trials == 0 {
		return MonteCarloReport{}, fmt.Errorf("spice: monte carlo: %w", ctx.Err())
	}
	rep.Truncated = rep.Trials < rep.RequestedTrials
	rep.Yield = float64(rep.Trials-rep.FailTrials) / float64(rep.Trials)
	if math.IsInf(rep.WorstMinOn, 1) {
		rep.WorstMinOn = base.Vin
	}
	if math.IsInf(rep.WorstMaxOff, -1) {
		rep.WorstMaxOff = 0
	}
	rep.WorstMargin = rep.WorstMinOn - rep.WorstMaxOff
	rep.Critical = topCells3(blame, opts.TopCells)
	return rep, nil
}

// blameTrial3 is blameTrial over the global wire numbering: for the worst
// logic-1 read, every conducting device (via stitches included — a starved
// stitch severs the folded wordline) in the driven component; for the
// worst logic-0 read, every off-state device bordering the driven
// component. Keys are (plane, row, col).
func blameTrial3(na *nodal3, vecs [][]bool, onVec, offVec int, blame map[[3]int]int) {
	d := na.d
	charge := func(vec int, conducting bool) {
		if vec < 0 {
			return
		}
		in := vecs[vec]
		uf := newUnionFind(na.n)
		for dl, plane := range d.Cells {
			for r, row := range plane {
				for c, e := range row {
					if e.Conducts(in) {
						uf.union(na.offsets[dl]+r, na.offsets[dl+1]+c)
					}
				}
			}
		}
		driven := uf.find(na.inputID)
		for dl, plane := range d.Cells {
			for r, row := range plane {
				for c, e := range row {
					on := e.Conducts(in)
					if on != conducting {
						continue
					}
					i, j := na.offsets[dl]+r, na.offsets[dl+1]+c
					if on {
						if uf.find(i) == driven {
							blame[[3]int{dl, r, c}]++
						}
					} else if uf.find(i) == driven || uf.find(j) == driven {
						blame[[3]int{dl, r, c}]++
					}
				}
			}
		}
	}
	charge(onVec, true)
	charge(offVec, false)
}

// topCells3 ranks 3D blame counts: most flips first, then (plane, row,
// col) position — a total deterministic order.
func topCells3(blame map[[3]int]int, k int) []CriticalCell {
	if len(blame) == 0 || k <= 0 {
		return nil
	}
	cells := make([]CriticalCell, 0, len(blame))
	for pos, n := range blame {
		cells = append(cells, CriticalCell{Layer: pos[0], Row: pos[1], Col: pos[2], Flips: n})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Flips != cells[j].Flips {
			return cells[i].Flips > cells[j].Flips
		}
		if cells[i].Layer != cells[j].Layer {
			return cells[i].Layer < cells[j].Layer
		}
		if cells[i].Row != cells[j].Row {
			return cells[i].Row < cells[j].Row
		}
		return cells[i].Col < cells[j].Col
	})
	if len(cells) > k {
		cells = cells[:k]
	}
	return cells
}

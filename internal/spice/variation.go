package spice

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Per-device variation
//
// Real memristive arrays do not have one R_on and one R_off: every device
// draws its resistances from a distribution, conventionally log-normal
// (R = R_nominal * exp(N(0, sigma))) for both cycle-to-cycle and
// device-to-device spread. A ResistanceMap pins one concrete draw for a
// whole physical array so a simulation can see per-device hot spots — a
// marginal device in the middle of a long sneak path — which the old
// one-global-model-per-trial approximation could not.
//
// Sampling follows internal/defect's determinism discipline: splitmix64
// over a uint64 seed, row-major device order, so a (dims, model, variation,
// seed) quadruple always yields the same map on every platform. That
// determinism is what lets a Monte Carlo report participate in compactd's
// content-addressed cache and what the byte-identical-report regression
// test pins.

// Variation describes log-normal device-to-device spread: each device's on
// and off resistances are multiplied by exp(N(0, sigma)).
type Variation struct {
	SigmaOn  float64 // log-std of the on-state resistance
	SigmaOff float64 // log-std of the off-state resistance
}

// Validate checks the spread parameters. Sigmas must be finite and
// non-negative; magnitude caps are a wire-layer concern (the compactd
// decoder bounds them before they reach here).
func (v Variation) Validate() error {
	for _, s := range [...]float64{v.SigmaOn, v.SigmaOff} {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			return errors.New("spice: variation sigma must be finite")
		}
		if s < 0 {
			return errors.New("spice: variation sigma must be non-negative")
		}
	}
	return nil
}

// Key returns the canonical content string of the variation, a fragment of
// compactd's /v1/margin cache key.
func (v Variation) Key() string {
	return fmt.Sprintf("son=%g|soff=%g", v.SigmaOn, v.SigmaOff)
}

// Key returns the canonical content string of the device model, a fragment
// of compactd's /v1/margin cache key.
func (m DeviceModel) Key() string {
	return fmt.Sprintf("ron=%g|roff=%g|rsense=%g|rdriver=%g|vin=%g",
		m.ROn, m.ROff, m.RSense, m.RDriver, m.Vin)
}

// ResistanceMap holds the concrete on/off resistance of every device of a
// rows x cols physical array, row-major. Positions are physical: when a
// design is placed, logical cell (r, c) reads the device at
// (RowPerm[r], ColPerm[c]).
type ResistanceMap struct {
	Rows, Cols int
	ROn, ROff  []float64 // len Rows*Cols each, row-major
}

// Validate checks dimensions, lengths and positivity.
func (m *ResistanceMap) Validate() error {
	if m == nil {
		return errors.New("spice: nil resistance map")
	}
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("spice: negative resistance map dimensions %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows * m.Cols
	if len(m.ROn) != n || len(m.ROff) != n {
		return fmt.Errorf("spice: resistance map %dx%d has %d/%d entries, want %d", m.Rows, m.Cols, len(m.ROn), len(m.ROff), n)
	}
	for i := range m.ROn {
		if !(m.ROn[i] > 0) || !(m.ROff[i] > 0) {
			return fmt.Errorf("spice: non-positive resistance at device %d", i)
		}
	}
	return nil
}

// OnAt returns the on-state resistance of the device at physical (r, c).
func (m *ResistanceMap) OnAt(r, c int) float64 { return m.ROn[r*m.Cols+c] }

// OffAt returns the off-state resistance of the device at physical (r, c).
func (m *ResistanceMap) OffAt(r, c int) float64 { return m.ROff[r*m.Cols+c] }

// Digest returns a stable content hash of the map in the same
// "sha256:<hex>" form as defect.Map.Digest; a nil map digests to "none".
func (m *ResistanceMap) Digest() string {
	if m == nil {
		return "none"
	}
	h := sha256.New()
	_, _ = fmt.Fprintf(h, "compact-resistances-v1|%dx%d", m.Rows, m.Cols)
	var buf [8]byte
	for _, vals := range [2][]float64{m.ROn, m.ROff} {
		for _, x := range vals {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			_, _ = h.Write(buf[:])
		}
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil))
}

// splitmix64 is the same deterministic PRNG internal/defect generates
// fault maps with: tiny, seedable and stable across platforms.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFloat maps a PRNG draw to [0, 1).
func unitFloat(state *uint64) float64 {
	return float64(splitmix64(state)>>11) / float64(1<<53)
}

// normFloat draws a standard normal via Box–Muller. It burns two uniform
// draws per normal (the sine half of the pair is discarded) to stay
// stateless: the stream position after n draws is always 2n, which keeps
// sampling order-independent of any caching.
func normFloat(state *uint64) float64 {
	u1 := 1 - unitFloat(state) // (0, 1]: keeps the log finite
	u2 := unitFloat(state)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// variationSalt decorrelates the resistance stream from defect-map
// generation and vector sampling when callers reuse one root seed.
const variationSalt = 0xc3a5c85c97cb3127

// SampleResistances draws one concrete array: every device's on and off
// resistances scaled by independent log-normal factors, in row-major
// device order. Fully deterministic in (rows, cols, base, v, seed). A
// device whose drawn R_off falls at or below its R_on is kept as drawn —
// the nodal solve decides what such a catastrophic device does to the
// outputs, rather than a bookkeeping rule declaring the trial failed.
func SampleResistances(rows, cols int, base DeviceModel, v Variation, seed uint64) (*ResistanceMap, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("spice: resistance map dimensions %dx%d must be positive", rows, cols)
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	n := rows * cols
	m := &ResistanceMap{Rows: rows, Cols: cols, ROn: make([]float64, n), ROff: make([]float64, n)}
	state := seed ^ variationSalt
	for i := 0; i < n; i++ {
		// Both normals are always drawn, so a zero sigma still advances the
		// stream and the off-state draw does not depend on SigmaOn.
		zOn, zOff := normFloat(&state), normFloat(&state)
		m.ROn[i] = base.ROn * math.Exp(zOn*v.SigmaOn)
		m.ROff[i] = base.ROff * math.Exp(zOff*v.SigmaOff)
	}
	return m, nil
}

package ilp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"compact/internal/invariant"
)

// The dense LP reference: a dense bounded-variable two-phase primal
// simplex. The production LP core is the sparse revised simplex in
// revised.go; this implementation is kept as its differential-testing
// oracle and numerical fallback.
//
// The model is lowered to equality standard form A x = b with per-variable
// bounds [lo, up] (up may be +Inf; lo must be finite). Slack variables turn
// inequalities into equalities; one artificial variable per row provides a
// trivially feasible starting basis for phase 1.

const (
	costTol  = 1e-7
	pivotTol = 1e-8
	feasTol  = 1e-6
)

// zero reports whether x is exactly 0. Simplex and model code skip
// exact-zero coefficients purely to preserve sparsity and avoid useless
// arithmetic — it is never a tolerance decision (those use costTol,
// pivotTol and feasTol). The one deliberate exact float comparison in this
// package lives here.
//
//lint:ignore floatcmp centralized exact-zero sparsity fast path
func zero(x float64) bool { return x == 0 }

var errIterLimit = errors.New("ilp: simplex iteration limit reached")

// errTimeLimit aborts an LP solve that runs past the global deadline.
var errTimeLimit = errors.New("ilp: time limit reached during LP solve")

type varStatus uint8

const (
	atLower varStatus = iota
	atUpper
	isBasic
)

// lp is a lowered LP instance plus simplex working state.
type lp struct {
	m, n     int // rows, total columns (structural + slack + artificial)
	nStruct  int
	firstArt int // index of first artificial column
	tab      [][]float64
	lo, up   []float64
	cost     []float64 // phase-2 cost, structural entries only nonzero
	status   []varStatus
	basis    []int     // basic column per row
	xB       []float64 // value of the basic variable per row
	d        []float64 // reduced-cost row for the active phase
	cols     []int     // active (non-pinned) columns scanned by the simplex
	iters    int
	maxIters int
	deadline time.Time       // zero = no limit; checked every iteration in optimize
	ctx      context.Context // nil = no cancellation; checked every iteration
}

// lower converts the model (with bound overrides for branch & bound) into
// standard form. lbs/ubs override the model's variable bounds.
func lower(mod *Model, lbs, ubs []float64) (*lp, error) {
	nStruct := mod.NumVars()
	m := mod.NumConstrs()
	// Count slacks.
	nSlack := 0
	for _, c := range mod.constrs {
		if c.Sense != EQ {
			nSlack++
		}
	}
	n := nStruct + nSlack + m // + artificials
	p := &lp{
		m: m, n: n, nStruct: nStruct, firstArt: nStruct + nSlack,
		lo: make([]float64, n), up: make([]float64, n),
		cost:   make([]float64, n),
		status: make([]varStatus, n),
		basis:  make([]int, m),
		xB:     make([]float64, m),
		d:      make([]float64, n),
	}
	for j := 0; j < nStruct; j++ {
		p.lo[j], p.up[j] = lbs[j], ubs[j]
		if math.IsInf(p.lo[j], -1) {
			return nil, fmt.Errorf("ilp: variable %q has infinite lower bound (unsupported)", mod.names[j])
		}
		if p.lo[j] > p.up[j]+feasTol {
			return nil, errBoundsInfeasible
		}
		if p.up[j] < p.lo[j] {
			p.up[j] = p.lo[j]
		}
		p.cost[j] = mod.obj[j]
	}
	for j := nStruct; j < n; j++ {
		p.lo[j], p.up[j] = 0, math.Inf(1)
	}
	p.tab = make([][]float64, m)
	slack := nStruct
	for i, c := range mod.constrs {
		row := make([]float64, n)
		rhs := c.RHS
		sign := 1.0
		if c.Sense == GE {
			sign = -1.0
			rhs = -rhs
		}
		for _, t := range c.Terms {
			row[t.Var] += sign * t.Coeff
		}
		if c.Sense != EQ {
			row[slack] = 1
			slack++
		}
		// Residual at the initial point (structurals and slacks at lower
		// bound, i.e. slacks at 0). Negate rows with negative residual so
		// the artificial column is a +1 unit column (the simplex invariant
		// that basic columns are unit vectors must hold from the start).
		res := rhs
		for j := 0; j < nStruct; j++ {
			res -= row[j] * p.lo[j]
		}
		if res < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			res = -res
		}
		art := p.firstArt + i
		row[art] = 1
		p.basis[i] = art
		p.xB[i] = res
		p.status[art] = isBasic
		p.tab[i] = row
	}
	p.cols = make([]int, n)
	for j := range p.cols {
		p.cols[j] = j
	}
	p.maxIters = 200*(m+1) + 20*n + 2000
	return p, nil
}

var errBoundsInfeasible = errors.New("ilp: variable bounds infeasible")

// value returns the current value of column j.
func (p *lp) value(j int) float64 {
	switch p.status[j] {
	case atLower:
		return p.lo[j]
	case atUpper:
		return p.up[j]
	default:
		for i, b := range p.basis {
			if b == j {
				return p.xB[i]
			}
		}
	}
	//lint:ignore panicfree defensive invariant: status/basis desync would be a simplex bug, not bad input
	panic("ilp: basic variable not in basis")
}

// solution extracts structural variable values.
func (p *lp) solution() []float64 {
	x := make([]float64, p.nStruct)
	for j := range x {
		switch p.status[j] {
		case atLower:
			x[j] = p.lo[j]
		case atUpper:
			x[j] = p.up[j]
		}
	}
	for i, b := range p.basis {
		if b < p.nStruct {
			x[b] = p.xB[i]
		}
	}
	return x
}

// computeReducedCosts fills p.d for cost vector c: d = c - c_B^T T.
func (p *lp) computeReducedCosts(c []float64) {
	copy(p.d, c)
	for i, b := range p.basis {
		cb := c[b]
		if zero(cb) {
			continue
		}
		row := p.tab[i]
		for _, j := range p.cols {
			p.d[j] -= cb * row[j]
		}
	}
	// Clean basic columns exactly.
	for _, b := range p.basis {
		p.d[b] = 0
	}
}

// optimize runs bounded-variable primal simplex for cost vector c until
// optimality. Returns errIterLimit or an unbounded indication.
var errUnbounded = errors.New("ilp: LP unbounded")

func (p *lp) optimize(c []float64) error {
	p.computeReducedCosts(c)
	noImprove := 0
	blandThreshold := 4 * (p.m + 64)
	lastObj := math.Inf(1)
	for {
		p.iters++
		if p.iters > p.maxIters {
			return errIterLimit
		}
		// Check the deadline every iteration, not on a stride: one pivot on
		// a large tableau is O(m·n) — easily milliseconds near the 1 GiB
		// tableau cap — so a strided check could overshoot the budget by
		// many seconds while a per-iteration time.Now() costs nanoseconds.
		if !p.deadline.IsZero() && time.Now().After(p.deadline) {
			return errTimeLimit
		}
		if p.ctx != nil {
			select {
			case <-p.ctx.Done():
				return errTimeLimit
			default:
			}
		}
		bland := noImprove > blandThreshold
		q, dir := p.chooseEntering(bland)
		if q < 0 {
			return nil // optimal
		}
		flip, r, hitUpper, t, err := p.ratioTest(q, dir)
		if err != nil {
			return err
		}
		if t > 1e-12 {
			noImprove = 0
		} else {
			noImprove++
		}
		_ = lastObj
		if flip {
			// Bound flip: move q across its range; update basics.
			for i := range p.xB {
				p.xB[i] -= p.tab[i][q] * dir * t
			}
			if p.status[q] == atLower {
				p.status[q] = atUpper
			} else {
				p.status[q] = atLower
			}
			continue
		}
		p.pivot(q, dir, r, hitUpper, t)
	}
}

// chooseEntering returns an improving nonbasic column and its direction
// (+1 entering increases from lower bound, -1 decreases from upper), or
// (-1, 0) at optimality.
func (p *lp) chooseEntering(bland bool) (int, float64) {
	bestJ, bestScore, bestDir := -1, costTol, 0.0
	for _, j := range p.cols {
		var score, dir float64
		switch p.status[j] {
		case atLower:
			if zero(p.up[j] - p.lo[j]) {
				continue // fixed variable can never move
			}
			score, dir = -p.d[j], 1
		case atUpper:
			if zero(p.up[j] - p.lo[j]) {
				continue
			}
			score, dir = p.d[j], -1
		default:
			continue
		}
		if score > bestScore {
			if bland {
				return j, dir
			}
			bestJ, bestScore, bestDir = j, score, dir
		}
	}
	return bestJ, bestDir
}

// ratioTest computes how far entering column q may move in direction dir.
// It returns flip=true if q's own opposite bound is the binding limit;
// otherwise the leaving row r and whether the leaving basic variable hits
// its upper bound.
func (p *lp) ratioTest(q int, dir float64) (flip bool, r int, hitUpper bool, t float64, err error) {
	t = math.Inf(1)
	if !math.IsInf(p.up[q], 1) {
		t = p.up[q] - p.lo[q]
	}
	flip = true
	r = -1
	for i := 0; i < p.m; i++ {
		a := p.tab[i][q]
		if math.Abs(a) < pivotTol {
			continue
		}
		rate := -a * dir // d(xB_i)/d(step)
		b := p.basis[i]
		var ti float64
		var toUpper bool
		if rate < 0 {
			ti = (p.xB[i] - p.lo[b]) / -rate
			toUpper = false
		} else {
			if math.IsInf(p.up[b], 1) {
				continue
			}
			ti = (p.up[b] - p.xB[i]) / rate
			toUpper = true
		}
		if ti < 0 {
			ti = 0
		}
		if ti < t-1e-12 || (ti < t+1e-12 && r >= 0 && p.basis[i] < p.basis[r]) {
			t, flip, r, hitUpper = ti, false, i, toUpper
		}
	}
	if math.IsInf(t, 1) {
		return false, -1, false, 0, errUnbounded
	}
	return flip, r, hitUpper, t, nil
}

// pivot performs the basis exchange: q enters (moving dir*t from its bound),
// the basic variable of row r leaves to its lower or upper bound.
func (p *lp) pivot(q int, dir float64, r int, hitUpper bool, t float64) {
	start := p.lo[q]
	if p.status[q] == atUpper {
		start = p.up[q]
	}
	newVal := start + dir*t
	for i := range p.xB {
		if i != r {
			p.xB[i] -= p.tab[i][q] * dir * t
		}
	}
	leaving := p.basis[r]
	if hitUpper {
		p.status[leaving] = atUpper
	} else {
		p.status[leaving] = atLower
	}
	p.basis[r] = q
	p.status[q] = isBasic
	p.xB[r] = newVal

	// Gaussian elimination on column q.
	rowR := p.tab[r]
	piv := rowR[q]
	inv := 1 / piv
	for _, j := range p.cols {
		rowR[j] *= inv
	}
	rowR[q] = 1
	for i := 0; i < p.m; i++ {
		if i == r {
			continue
		}
		f := p.tab[i][q]
		if zero(f) {
			continue
		}
		row := p.tab[i]
		for _, j := range p.cols {
			row[j] -= f * rowR[j]
		}
		row[q] = 0
	}
	if f := p.d[q]; !zero(f) {
		for _, j := range p.cols {
			p.d[j] -= f * rowR[j]
		}
		p.d[q] = 0
	}
}

// lpResult is the outcome of one LP relaxation solve.
type lpResult struct {
	status Status
	x      []float64
	obj    float64
	iters  int
}

// solveLPDense solves the LP relaxation of mod with the given bound
// overrides using the dense tableau simplex. It is retained as the
// reference implementation for the sparse revised simplex (solveLP in
// revised.go): the two must agree on status and objective, a property the
// revised tests pin on random vertex-cover models, and solveLP falls back
// here on the rare numerical failure of the eta-file machinery. A non-zero
// deadline or a cancelled context aborts the solve with errTimeLimit.
func solveLPDense(ctx context.Context, mod *Model, lbs, ubs []float64, deadline time.Time) (lpResult, error) {
	p, err := lower(mod, lbs, ubs)
	if err != nil {
		if errors.Is(err, errBoundsInfeasible) {
			return lpResult{status: StatusInfeasible}, nil
		}
		return lpResult{}, err
	}
	p.deadline = deadline
	p.ctx = ctx
	// Phase 1: minimize the sum of artificial variables.
	phase1 := make([]float64, p.n)
	for j := p.firstArt; j < p.n; j++ {
		phase1[j] = 1
	}
	if err := p.optimize(phase1); err != nil {
		if errors.Is(err, errUnbounded) {
			// Phase 1 is bounded below by 0; treat as numerical failure.
			return lpResult{}, errIterLimit
		}
		return lpResult{iters: p.iters}, err
	}
	infeas := 0.0
	for j := p.firstArt; j < p.n; j++ {
		infeas += p.value(j)
	}
	if infeas > feasTol {
		return lpResult{status: StatusInfeasible, iters: p.iters}, nil
	}
	// Pin artificials at zero for phase 2 and drop their columns from
	// the active scan: pinned columns can never re-enter the basis, and a
	// still-basic artificial stays parked at zero without needing its
	// (now stale) tableau column.
	for j := p.firstArt; j < p.n; j++ {
		p.up[j] = 0
	}
	p.cols = p.cols[:p.firstArt]
	for i, b := range p.basis {
		if b >= p.firstArt && p.xB[i] < feasTol {
			p.xB[i] = 0 // clamp tiny residue
		}
	}
	if err := p.optimize(p.cost); err != nil {
		if errors.Is(err, errUnbounded) {
			return lpResult{status: StatusUnbounded, iters: p.iters}, nil
		}
		return lpResult{iters: p.iters}, err
	}
	x := p.solution()
	// Exit feasibility: an optimal basis whose solution leaves its box is
	// a simplex bookkeeping bug, never a property of the model.
	if err := invariant.BoundedValues("ilp.lp-solution", x, lbs, ubs, 10*feasTol); err != nil {
		return lpResult{iters: p.iters}, err
	}
	return lpResult{status: StatusOptimal, x: x, obj: mod.Objective(x), iters: p.iters}, nil
}

package ilp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// benchKnapsack builds a random 0-1 knapsack with n items: the classic
// branch & bound stress shape (fractional LP relaxations at every node).
func benchKnapsack(n int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(fmt.Sprintf("knap%d", n))
	var terms []Term
	total := 0.0
	for i := 0; i < n; i++ {
		w := 1 + rng.Float64()*9
		v := w * (0.8 + rng.Float64()*0.4) // value correlated with weight: hard instances
		x := m.AddVar(fmt.Sprintf("x%d", i), 0, 1, Binary, -v)
		terms = append(terms, Term{x, w})
		total += w
	}
	m.AddConstr("cap", terms, LE, total/2)
	return m
}

// benchLP builds a dense feasible LP exercising the simplex hot loop.
func benchLP(nVars, nConstrs int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(fmt.Sprintf("lp%dx%d", nConstrs, nVars))
	for i := 0; i < nVars; i++ {
		m.AddVar(fmt.Sprintf("x%d", i), 0, 10, Continuous, -(1 + rng.Float64()))
	}
	for c := 0; c < nConstrs; c++ {
		terms := make([]Term, 0, nVars)
		for i := 0; i < nVars; i++ {
			terms = append(terms, Term{i, rng.Float64()})
		}
		m.AddConstr(fmt.Sprintf("c%d", c), terms, LE, float64(nVars)/2)
	}
	return m
}

func BenchmarkSimplexDense(b *testing.B) {
	m := benchLP(60, 40, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(m, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkBranchAndBoundKnapsack(b *testing.B) {
	m := benchKnapsack(22, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(m, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != StatusOptimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkBranchAndBoundWarmStart measures the effect of the external
// incumbent plumbing the portfolio relies on: BestKnown supplies the
// optimum up front, so the tree is pruned against it from node one.
func BenchmarkBranchAndBoundWarmStart(b *testing.B) {
	m := benchKnapsack(22, 2)
	ref, err := Solve(m, Options{})
	if err != nil || ref.Status != StatusOptimal {
		b.Fatalf("reference solve: %v %v", ref, err)
	}
	opt := ref.Obj
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(m, Options{BestKnown: func() float64 { return opt + 1e-6 }})
		if err != nil {
			b.Fatal(err)
		}
		if sol.X != nil && math.Abs(sol.Obj-opt) > 1e-6 {
			b.Fatalf("warm-started obj %v, want %v", sol.Obj, opt)
		}
	}
}

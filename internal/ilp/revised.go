package ilp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"compact/internal/invariant"
)

// The LP core: a sparse revised simplex with a product-form-of-the-inverse
// (PFI) eta file.
//
// The dense tableau simplex (simplex.go) spends O(m·n) per pivot updating
// the whole tableau, which dominates solve time on this repository's
// models even though they are extremely sparse — the vertex-cover and
// Eq.4 labeling matrices carry ~2 nonzeros per row. The revised simplex
// keeps the constraint matrix in sparse column form and represents B⁻¹ as
// a product of eta matrices, so one pivot costs one BTRAN (pricing), one
// FTRAN (entering column) and one eta append: O(nnz + eta file) instead of
// O(m·n). The eta file is rebuilt from scratch (reinversion with
// max-magnitude pivot selection) every refactorEvery pivots or when it
// grows past its nonzero budget, and the basic solution is recomputed from
// the raw right-hand side at each refactorization, which bounds numerical
// drift the way the dense tableau's full eliminations did.
//
// All contracts of the dense implementation are preserved: the same
// lowering (lower()), tolerances, per-iteration deadline/context checks,
// iteration limit, Bland's-rule anti-cycling fallback after a stall
// window, bounded-variable bound flips, and the BoundedValues exit
// invariant. solveLP falls back to solveLPDense if the eta machinery ever
// reports a singular basis — correctness never depends on the fast path.

const (
	// refactorEvery bounds the eta-file length (and so FTRAN/BTRAN cost
	// and drift) by periodic reinversion.
	refactorEvery = 96
	// etaDropTol discards negligible eta entries; anything this small is
	// numerical noise relative to feasTol and only bloats the file.
	etaDropTol = 1e-12
)

var errSingularBasis = errors.New("ilp: singular basis during refactorization")

// spCol is one sparse constraint-matrix column.
type spCol struct {
	ind []int32
	val []float64
}

// eta is one elementary column transformation: B⁻¹ gains a factor E that
// is the identity except in column r, where E[r][r] = pivInv and
// E[i][r] = val[t] for i = ind[t].
type eta struct {
	r      int32
	pivInv float64
	ind    []int32
	val    []float64
}

// rsLP is a lowered sparse LP instance plus revised-simplex working state.
// The lowering mirrors lower() exactly: structural columns, one slack per
// inequality (coefficient +1 before row negation), one artificial per row
// (+1 after negation), rows negated so the initial artificial basis is
// feasible at the structural lower bounds.
type rsLP struct {
	m, n     int
	nStruct  int
	firstArt int
	cols     []spCol
	b        []float64 // RHS after row negation
	lo, up   []float64
	cost     []float64
	status   []varStatus
	basis    []int
	xB       []float64
	etas     []eta
	etaNNZ   int
	pivots   int // pivots since last refactorization
	activeN  int // columns scanned by pricing (n, then firstArt in phase 2)
	iters    int
	maxIters int
	deadline time.Time
	ctx      context.Context
	w, y     []float64 // dense scratch: FTRAN column, BTRAN multipliers
}

// lowerSparse builds the sparse standard form. It must stay semantically
// identical to lower(): same slack/artificial layout, same row negation,
// same bound checks, same iteration budget.
func lowerSparse(mod *Model, lbs, ubs []float64) (*rsLP, error) {
	nStruct := mod.NumVars()
	m := mod.NumConstrs()
	nSlack := 0
	for _, c := range mod.constrs {
		if c.Sense != EQ {
			nSlack++
		}
	}
	n := nStruct + nSlack + m
	p := &rsLP{
		m: m, n: n, nStruct: nStruct, firstArt: nStruct + nSlack,
		cols: make([]spCol, n),
		b:    make([]float64, m),
		lo:   make([]float64, n), up: make([]float64, n),
		cost:   make([]float64, n),
		status: make([]varStatus, n),
		basis:  make([]int, m),
		xB:     make([]float64, m),
		w:      make([]float64, m), y: make([]float64, m),
		activeN: n,
	}
	for j := 0; j < nStruct; j++ {
		p.lo[j], p.up[j] = lbs[j], ubs[j]
		if math.IsInf(p.lo[j], -1) {
			return nil, errInfLowerBound(mod, j)
		}
		if p.lo[j] > p.up[j]+feasTol {
			return nil, errBoundsInfeasible
		}
		if p.up[j] < p.lo[j] {
			p.up[j] = p.lo[j]
		}
		p.cost[j] = mod.obj[j]
	}
	for j := nStruct; j < n; j++ {
		p.lo[j], p.up[j] = 0, math.Inf(1)
	}
	slack := nStruct
	for i, c := range mod.constrs {
		rhs := c.RHS
		sign := 1.0
		if c.Sense == GE {
			sign = -1.0
			rhs = -rhs
		}
		// Residual at the initial point decides the row's final sign (see
		// lower()): terms are merged by AddConstr, so no duplicate vars.
		res := rhs
		for _, t := range c.Terms {
			res -= sign * t.Coeff * p.lo[t.Var]
		}
		rowSign := 1.0
		if res < 0 {
			rowSign, res = -1, -res
			rhs = -rhs
		}
		for _, t := range c.Terms {
			v := rowSign * sign * t.Coeff
			if zero(v) {
				continue
			}
			col := &p.cols[t.Var]
			col.ind = append(col.ind, int32(i))
			col.val = append(col.val, v)
		}
		if c.Sense != EQ {
			p.cols[slack] = spCol{ind: []int32{int32(i)}, val: []float64{rowSign}}
			slack++
		}
		art := p.firstArt + i
		p.cols[art] = spCol{ind: []int32{int32(i)}, val: []float64{1}}
		p.b[i] = rhs
		p.basis[i] = art
		p.xB[i] = res
		p.status[art] = isBasic
	}
	p.maxIters = 200*(m+1) + 20*n + 2000
	return p, nil
}

// errInfLowerBound matches the dense lowering's error text.
func errInfLowerBound(mod *Model, j int) error {
	return fmt.Errorf("ilp: variable %q has infinite lower bound (unsupported)", mod.names[j])
}

// ftranEtas applies the eta file to x in order: x ← E_k … E_1 x, i.e.
// x ← B⁻¹ x when x held the original column.
func ftranEtas(etas []eta, x []float64) {
	for k := range etas {
		e := &etas[k]
		xr := x[e.r]
		if zero(xr) {
			continue
		}
		x[e.r] = e.pivInv * xr
		for t, i := range e.ind {
			x[i] += e.val[t] * xr
		}
	}
}

func (p *rsLP) ftran(x []float64) { ftranEtas(p.etas, x) }

// btran applies the transposed eta file in reverse: x ← E_1ᵀ … E_kᵀ x,
// i.e. x ← B⁻ᵀ x, the simplex multipliers when x held the basic costs.
func (p *rsLP) btran(x []float64) {
	for k := len(p.etas) - 1; k >= 0; k-- {
		e := &p.etas[k]
		s := e.pivInv * x[e.r]
		for t, i := range e.ind {
			s += e.val[t] * x[i]
		}
		x[e.r] = s
	}
}

// makeEta builds the eta column for pivot row r from the FTRAN'd entering
// column w. Entries below etaDropTol are noise and dropped.
func makeEta(w []float64, r int) eta {
	e := eta{r: int32(r), pivInv: 1 / w[r]}
	nnz := 0
	for i := range w {
		if i != r && !zero(w[i]) {
			nnz++
		}
	}
	if nnz == 0 {
		return e
	}
	e.ind = make([]int32, 0, nnz)
	e.val = make([]float64, 0, nnz)
	for i := range w {
		if i == r || zero(w[i]) {
			continue
		}
		v := -w[i] * e.pivInv
		if math.Abs(v) < etaDropTol {
			continue
		}
		e.ind = append(e.ind, int32(i))
		e.val = append(e.val, v)
	}
	return e
}

func (p *rsLP) appendEta(w []float64, r int) {
	e := makeEta(w, r)
	p.etas = append(p.etas, e)
	p.etaNNZ += len(e.ind) + 1
	p.pivots++
}

// loadCol scatters column j into the dense scratch w (cleared first).
func (p *rsLP) loadCol(j int, w []float64) {
	for i := range w {
		w[i] = 0
	}
	col := &p.cols[j]
	for t, i := range col.ind {
		w[i] = col.val[t]
	}
}

// nonbasicValue returns the bound a nonbasic column currently sits at.
func (p *rsLP) nonbasicValue(j int) float64 {
	if p.status[j] == atUpper {
		return p.up[j]
	}
	return p.lo[j]
}

// recomputeXB refreshes the basic solution from the raw right-hand side:
// x_B = B⁻¹ (b − N x_N). Called at every refactorization, it resets the
// additive drift that incremental xB updates accumulate.
func (p *rsLP) recomputeXB() {
	x := p.w
	copy(x, p.b)
	for j := 0; j < p.n; j++ {
		if p.status[j] == isBasic {
			continue
		}
		v := p.nonbasicValue(j)
		if zero(v) {
			continue
		}
		col := &p.cols[j]
		for t, i := range col.ind {
			x[i] -= col.val[t] * v
		}
	}
	p.ftran(x)
	copy(p.xB, x)
}

// refactorize rebuilds the eta file from the current basis by reinversion:
// basis columns are processed singletons-first then by increasing nonzero
// count, each FTRAN'd against the partial file, pivoting on its largest
// remaining entry (free partial pivoting the dense tableau never had). The
// basis is reordered so basis[r] is the column pivoted at row r — PFI
// needs no separate permutation. On success xB is recomputed from b; on
// a singular basis the state is left untouched and errSingularBasis is
// returned (solveLP then falls back to the dense oracle).
func (p *rsLP) refactorize() error {
	order := make([]int, p.m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := len(p.cols[p.basis[order[a]]].ind), len(p.cols[p.basis[order[b]]].ind)
		if ca != cb {
			return ca < cb
		}
		return p.basis[order[a]] < p.basis[order[b]]
	})
	newEtas := make([]eta, 0, p.m)
	newNNZ := 0
	newBasis := make([]int, p.m)
	rowUsed := make([]bool, p.m)
	w := make([]float64, p.m)
	for _, bi := range order {
		j := p.basis[bi]
		p.loadColInto(j, w)
		ftranEtas(newEtas, w)
		r := -1
		best := pivotTol
		for i := 0; i < p.m; i++ {
			if rowUsed[i] {
				continue
			}
			if a := math.Abs(w[i]); a > best {
				best, r = a, i
			}
		}
		if r < 0 {
			return errSingularBasis
		}
		e := makeEta(w, r)
		newEtas = append(newEtas, e)
		newNNZ += len(e.ind) + 1
		rowUsed[r] = true
		newBasis[r] = j
	}
	p.etas, p.etaNNZ, p.pivots = newEtas, newNNZ, 0
	p.basis = newBasis
	p.recomputeXB()
	return nil
}

// loadColInto is loadCol with an explicit scratch (refactorize must not
// clobber p.w, which recomputeXB reuses afterwards).
func (p *rsLP) loadColInto(j int, w []float64) {
	for i := range w {
		w[i] = 0
	}
	col := &p.cols[j]
	for t, i := range col.ind {
		w[i] = col.val[t]
	}
}

// etaBudget is the nonzero cap that forces early reinversion when pivots
// produce unusually dense eta columns.
func (p *rsLP) etaBudget() int { return 16*p.m + 1024 }

// chooseEntering prices every active nonbasic column against the simplex
// multipliers y (Dantzig rule; first-improving-index under Bland) and
// returns the entering column and its direction, or (-1, 0) at optimality.
func (p *rsLP) chooseEntering(c, y []float64, bland bool) (int, float64) {
	bestJ, bestScore, bestDir := -1, costTol, 0.0
	for j := 0; j < p.activeN; j++ {
		st := p.status[j]
		if st == isBasic || zero(p.up[j]-p.lo[j]) {
			continue
		}
		d := c[j]
		col := &p.cols[j]
		for t, i := range col.ind {
			d -= y[i] * col.val[t]
		}
		var score, dir float64
		if st == atLower {
			score, dir = -d, 1
		} else {
			score, dir = d, -1
		}
		if score > bestScore {
			if bland {
				return j, dir
			}
			bestJ, bestScore, bestDir = j, score, dir
		}
	}
	return bestJ, bestDir
}

// ratioTest mirrors the dense implementation over the FTRAN'd entering
// column w, including the smallest-basic-index tie-break.
func (p *rsLP) ratioTest(q int, dir float64, w []float64) (flip bool, r int, hitUpper bool, t float64, err error) {
	t = math.Inf(1)
	if !math.IsInf(p.up[q], 1) {
		t = p.up[q] - p.lo[q]
	}
	flip = true
	r = -1
	for i := 0; i < p.m; i++ {
		a := w[i]
		if math.Abs(a) < pivotTol {
			continue
		}
		rate := -a * dir
		b := p.basis[i]
		var ti float64
		var toUpper bool
		if rate < 0 {
			ti = (p.xB[i] - p.lo[b]) / -rate
		} else {
			if math.IsInf(p.up[b], 1) {
				continue
			}
			ti = (p.up[b] - p.xB[i]) / rate
			toUpper = true
		}
		if ti < 0 {
			ti = 0
		}
		if ti < t-1e-12 || (ti < t+1e-12 && r >= 0 && p.basis[i] < p.basis[r]) {
			t, flip, r, hitUpper = ti, false, i, toUpper
		}
	}
	if math.IsInf(t, 1) {
		return false, -1, false, 0, errUnbounded
	}
	return flip, r, hitUpper, t, nil
}

// optimize runs the revised bounded-variable primal simplex for cost
// vector c until optimality, with the dense implementation's stall-window
// Bland's-rule fallback as the anti-cycling guard: after blandThreshold
// consecutive degenerate pivots the entering rule switches to
// first-improving-index, which cannot cycle.
func (p *rsLP) optimize(c []float64) error {
	noImprove := 0
	blandThreshold := 4 * (p.m + 64)
	for {
		p.iters++
		if p.iters > p.maxIters {
			return errIterLimit
		}
		// Same per-iteration budget discipline as the dense code: one
		// revised pivot is O(nnz + eta file), so a strided check could
		// still overshoot on big models while time.Now() costs nanoseconds.
		if !p.deadline.IsZero() && time.Now().After(p.deadline) {
			return errTimeLimit
		}
		if p.ctx != nil {
			select {
			case <-p.ctx.Done():
				return errTimeLimit
			default:
			}
		}
		// Pricing: y = B⁻ᵀ c_B, then reduced costs column by column.
		y := p.y
		for i := range y {
			y[i] = 0
		}
		for i, b := range p.basis {
			if cb := c[b]; !zero(cb) {
				y[i] = cb
			}
		}
		p.btran(y)
		bland := noImprove > blandThreshold
		q, dir := p.chooseEntering(c, y, bland)
		if q < 0 {
			return nil // optimal
		}
		w := p.w
		p.loadCol(q, w)
		p.ftran(w)
		flip, r, hitUpper, t, err := p.ratioTest(q, dir, w)
		if err != nil {
			return err
		}
		if t > 1e-12 {
			noImprove = 0
		} else {
			noImprove++
		}
		if flip {
			for i := range p.xB {
				if !zero(w[i]) {
					p.xB[i] -= w[i] * dir * t
				}
			}
			if p.status[q] == atLower {
				p.status[q] = atUpper
			} else {
				p.status[q] = atLower
			}
			continue
		}
		start := p.lo[q]
		if p.status[q] == atUpper {
			start = p.up[q]
		}
		for i := range p.xB {
			if i != r && !zero(w[i]) {
				p.xB[i] -= w[i] * dir * t
			}
		}
		leaving := p.basis[r]
		if hitUpper {
			p.status[leaving] = atUpper
		} else {
			p.status[leaving] = atLower
		}
		p.basis[r] = q
		p.status[q] = isBasic
		p.xB[r] = start + dir*t
		p.appendEta(w, r)
		if p.pivots >= refactorEvery || p.etaNNZ > p.etaBudget() {
			if err := p.refactorize(); err != nil {
				return err
			}
		}
	}
}

// value returns the current value of column j (dense value() semantics).
func (p *rsLP) value(j int) float64 {
	switch p.status[j] {
	case atLower:
		return p.lo[j]
	case atUpper:
		return p.up[j]
	default:
		for i, b := range p.basis {
			if b == j {
				return p.xB[i]
			}
		}
	}
	//lint:ignore panicfree defensive invariant: status/basis desync would be a simplex bug, not bad input
	panic("ilp: basic variable not in basis")
}

// solution extracts structural variable values.
func (p *rsLP) solution() []float64 {
	x := make([]float64, p.nStruct)
	for j := range x {
		switch p.status[j] {
		case atLower:
			x[j] = p.lo[j]
		case atUpper:
			x[j] = p.up[j]
		}
	}
	for i, b := range p.basis {
		if b < p.nStruct {
			x[b] = p.xB[i]
		}
	}
	return x
}

// solveLP solves the LP relaxation of mod with the given bound overrides
// using the sparse revised simplex, falling back to the dense tableau
// implementation on a singular-basis report or an exit-invariant failure
// (both indicate numerical trouble in the eta file, not a property of the
// model). A non-zero deadline or a cancelled context aborts the solve with
// errTimeLimit.
func solveLP(ctx context.Context, mod *Model, lbs, ubs []float64, deadline time.Time) (lpResult, error) {
	res, err := solveLPRevised(ctx, mod, lbs, ubs, deadline)
	var ivErr *invariant.Error
	if err != nil && (errors.Is(err, errSingularBasis) || errors.As(err, &ivErr)) {
		return solveLPDense(ctx, mod, lbs, ubs, deadline)
	}
	return res, err
}

func solveLPRevised(ctx context.Context, mod *Model, lbs, ubs []float64, deadline time.Time) (lpResult, error) {
	p, err := lowerSparse(mod, lbs, ubs)
	if err != nil {
		if errors.Is(err, errBoundsInfeasible) {
			return lpResult{status: StatusInfeasible}, nil
		}
		return lpResult{}, err
	}
	p.deadline = deadline
	p.ctx = ctx
	// Phase 1: minimize the sum of artificial variables.
	phase1 := make([]float64, p.n)
	for j := p.firstArt; j < p.n; j++ {
		phase1[j] = 1
	}
	if err := p.optimize(phase1); err != nil {
		if errors.Is(err, errUnbounded) {
			// Phase 1 is bounded below by 0; treat as numerical failure.
			return lpResult{}, errIterLimit
		}
		return lpResult{iters: p.iters}, err
	}
	infeas := 0.0
	for j := p.firstArt; j < p.n; j++ {
		infeas += p.value(j)
	}
	if infeas > feasTol {
		return lpResult{status: StatusInfeasible, iters: p.iters}, nil
	}
	// Pin artificials at zero for phase 2 and drop them from pricing; a
	// still-basic artificial stays parked at zero.
	for j := p.firstArt; j < p.n; j++ {
		p.up[j] = 0
	}
	p.activeN = p.firstArt
	for i, b := range p.basis {
		if b >= p.firstArt && p.xB[i] < feasTol {
			p.xB[i] = 0 // clamp tiny residue
		}
	}
	if err := p.optimize(p.cost); err != nil {
		if errors.Is(err, errUnbounded) {
			return lpResult{status: StatusUnbounded, iters: p.iters}, nil
		}
		return lpResult{iters: p.iters}, err
	}
	// Final reinversion wipes the eta drift accumulated since the last
	// refactorization before the solution is extracted; failure here means
	// the optimal basis itself is numerically singular — report it and let
	// solveLP fall back to the dense oracle.
	if err := p.refactorize(); err != nil {
		return lpResult{iters: p.iters}, err
	}
	x := p.solution()
	// Exit feasibility: an optimal basis whose solution leaves its box is
	// a simplex bookkeeping bug, never a property of the model.
	if err := invariant.BoundedValues("ilp.lp-solution", x, lbs, ubs, 10*feasTol); err != nil {
		return lpResult{iters: p.iters}, err
	}
	return lpResult{status: StatusOptimal, x: x, obj: mod.Objective(x), iters: p.iters}, nil
}

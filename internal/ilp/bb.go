package ilp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// objectiveGrid returns g > 0 when every variable is integral and every
// objective coefficient is an integer multiple of g; otherwise 0.
func objectiveGrid(mod *Model) float64 {
	g := 0.0
	for j, c := range mod.obj {
		if zero(c) {
			continue
		}
		if mod.vtype[j] == Continuous {
			return 0
		}
		g = fgcd(g, math.Abs(c))
		if g < 1e-6 {
			return 0
		}
	}
	return g
}

func fgcd(a, b float64) float64 {
	for b > 1e-7 {
		a, b = b, math.Mod(a, b)
	}
	return a
}

// boundFix is one branching decision: variable v gets a new lower or upper
// bound.
type boundFix struct {
	v    int
	isUB bool
	val  float64
}

type bbNode struct {
	fixes []boundFix
	bound float64 // LP bound inherited from the parent
	depth int
	seq   int
}

type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound < h[j].bound {
		return true
	}
	if h[j].bound < h[i].bound {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// bbSearch is the shared state of the (possibly parallel) best-first
// branch & bound: a mutex-guarded node heap plus incumbent bookkeeping.
// Workers pop the globally best open node, solve its LP relaxation with
// the lock released, and push children / update the incumbent under the
// lock again. The proven global bound is the minimum over open nodes AND
// nodes currently in flight — children inherit bounds no smaller than
// their parent's, so that minimum (and with it the reported Bound and the
// trace) is nondecreasing regardless of worker interleaving. With one
// worker the search is exactly the serial algorithm; with N workers the
// result is deterministic modulo incumbent ties (equal-objective optima
// may differ, as may node counts when a time or node budget intervenes).
type bbSearch struct {
	mod            *Model
	opts           Options
	rootLB, rootUB []float64
	deadline       time.Time
	ctx            context.Context
	start          time.Time
	snap           func(float64) float64

	mu          sync.Mutex
	cond        *sync.Cond
	h           nodeHeap
	inFlight    map[int]float64 // worker id → bound of the node it is expanding
	seq         int
	nodes       int
	iters       int
	incumbent   float64
	incumbentX  []float64
	prunedFloor float64
	globalBound float64
	timedOut    bool
	unbounded   bool
	done        bool
	trace       []TraceEvent
}

func (s *bbSearch) applyFixes(fixes []boundFix) ([]float64, []float64) {
	lbs := append([]float64(nil), s.rootLB...)
	ubs := append([]float64(nil), s.rootUB...)
	for _, f := range fixes {
		if f.isUB {
			if f.val < ubs[f.v] {
				ubs[f.v] = f.val
			}
		} else if f.val > lbs[f.v] {
			lbs[f.v] = f.val
		}
	}
	return lbs, ubs
}

// traceLocked appends a convergence sample; callers hold s.mu.
func (s *bbSearch) traceLocked() {
	s.trace = append(s.trace, TraceEvent{
		Elapsed:   time.Since(s.start),
		Incumbent: s.incumbent,
		Bound:     s.globalBound,
		Gap:       relGap(s.incumbent, s.globalBound),
		Nodes:     s.nodes,
	})
}

// openMinLocked returns the smallest bound among the just-popped node and
// every node another worker is still expanding — the proven lower bound on
// any solution the remaining search could uncover. Callers hold s.mu.
func (s *bbSearch) openMinLocked(popped float64) float64 {
	min := popped
	for _, b := range s.inFlight {
		if b < min {
			min = b
		}
	}
	return min
}

// finishLocked marks the search done and wakes every worker.
func (s *bbSearch) finishLocked() {
	s.done = true
	s.cond.Broadcast()
}

// worker runs the best-first loop until the search finishes. It returns
// with s.mu released.
func (s *bbSearch) worker(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.done && len(s.h) == 0 && len(s.inFlight) > 0 {
			s.cond.Wait()
		}
		if s.done {
			return
		}
		if len(s.h) == 0 {
			// Nothing open and nothing in flight: search exhausted.
			s.finishLocked()
			return
		}
		if (!s.deadline.IsZero() && time.Now().After(s.deadline)) || s.ctx.Err() != nil {
			s.timedOut = true
			s.finishLocked()
			return
		}
		if s.opts.MaxNodes > 0 && s.nodes >= s.opts.MaxNodes {
			s.timedOut = true
			s.finishLocked()
			return
		}
		// The pruning cutoff is the better of our incumbent and any
		// externally shared one (e.g. a portfolio sibling's labeling).
		cutoff := s.incumbent
		externalCut := false
		if s.opts.BestKnown != nil {
			if b := s.opts.BestKnown(); b < cutoff {
				cutoff, externalCut = b, true
			}
		}
		node := heap.Pop(&s.h).(*bbNode)
		if node.bound >= cutoff-1e-9 {
			// Cannot beat the cutoff; discard. Subtrees pruned against an
			// *external* incumbent below our own may hide solutions better
			// than ours, so prunedFloor caps the proven bound there.
			if externalCut && node.bound < s.incumbent-1e-9 {
				if node.bound < s.prunedFloor {
					s.prunedFloor = node.bound
				}
				if node.bound > s.globalBound {
					s.globalBound = node.bound
				}
			}
			continue
		}
		if om := s.openMinLocked(node.bound); om > s.globalBound {
			s.globalBound = om
			s.traceLocked()
		}
		if s.opts.GapLimit > 0 && relGap(s.incumbent, s.globalBound) <= s.opts.GapLimit {
			s.finishLocked()
			return
		}
		s.nodes++
		s.inFlight[id] = node.bound
		lbs, ubs := s.applyFixes(node.fixes)
		s.mu.Unlock()
		res, lpErr := solveLP(s.ctx, s.mod, lbs, ubs, s.deadline)
		s.mu.Lock()
		delete(s.inFlight, id)
		s.cond.Broadcast()
		s.iters += res.iters
		if lpErr != nil {
			// Time limit or numerical trouble on one node: put it back so
			// the reported global bound stays honest, then stop.
			heap.Push(&s.h, node)
			s.timedOut = true
			s.finishLocked()
			return
		}
		if res.status == StatusInfeasible {
			continue
		}
		if res.status == StatusUnbounded {
			s.unbounded = true
			s.finishLocked()
			return
		}
		obj := s.snap(res.obj)
		// Re-read the cutoff: a sibling may have improved the incumbent
		// while this node's LP was solving.
		cutoff = s.incumbent
		if s.opts.BestKnown != nil {
			if b := s.opts.BestKnown(); b < cutoff {
				cutoff = b
			}
		}
		if obj >= cutoff-1e-9 {
			if obj < s.incumbent-1e-9 && obj < s.prunedFloor {
				s.prunedFloor = obj
			}
			continue
		}
		// Find the most fractional integer variable.
		branchVar, frac := -1, 0.0
		for j := 0; j < s.mod.NumVars(); j++ {
			if s.mod.vtype[j] == Continuous {
				continue
			}
			f := math.Abs(res.x[j] - math.Round(res.x[j]))
			if f > 1e-6 && f > frac {
				branchVar, frac = j, f
			}
		}
		if branchVar < 0 {
			// Integral solution: new incumbent.
			xi := roundIntegral(s.mod, res.x)
			if err := s.mod.Feasible(xi, 1e-5, false); err == nil {
				if o := s.mod.Objective(xi); o < s.incumbent-1e-9 {
					s.incumbent = o
					s.incumbentX = xi
					s.traceLocked()
				}
			}
			continue
		}
		down := append(append([]boundFix(nil), node.fixes...),
			boundFix{v: branchVar, isUB: true, val: math.Floor(res.x[branchVar])})
		up := append(append([]boundFix(nil), node.fixes...),
			boundFix{v: branchVar, isUB: false, val: math.Ceil(res.x[branchVar])})
		s.seq++
		heap.Push(&s.h, &bbNode{fixes: down, bound: obj, depth: node.depth + 1, seq: s.seq})
		s.seq++
		heap.Push(&s.h, &bbNode{fixes: up, bound: obj, depth: node.depth + 1, seq: s.seq})
		s.cond.Broadcast()
	}
}

// Solve minimizes the model by LP-based best-first branch & bound. It never
// returns an invalid incumbent: Solution.X (when Status is Optimal or
// Feasible) satisfies all constraints and integrality.
func Solve(mod *Model, opts Options) (*Solution, error) {
	return SolveContext(context.Background(), mod, opts)
}

// SolveContext is Solve with cooperative cancellation: the effective
// deadline is the earlier of ctx's deadline and start+opts.TimeLimit, and a
// cancelled ctx aborts the search at the next simplex iteration or node
// expansion, returning the best incumbent found so far. A context that is
// already dead on entry returns (nil, ctx.Err()) without touching the model.
// With opts.Workers > 1 node expansion is parallel (see bbSearch).
func SolveContext(ctx context.Context, mod *Model, opts Options) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	sol := &Solution{Status: StatusNoSolution, Obj: math.Inf(1), Bound: math.Inf(-1)}
	incumbent := math.Inf(1)
	var incumbentX []float64
	if opts.Incumbent != nil {
		if err := mod.Feasible(opts.Incumbent, feasTol, false); err == nil {
			incumbentX = append([]float64(nil), opts.Incumbent...)
			incumbent = mod.Objective(incumbentX)
		}
	}

	// Root relaxation.
	rootLB := append([]float64(nil), mod.lb...)
	rootUB := append([]float64(nil), mod.ub...)
	res, err := solveLP(ctx, mod, rootLB, rootUB, deadline)
	if err != nil {
		if errors.Is(err, errTimeLimit) && incumbentX != nil {
			sol.Status = StatusFeasible
			sol.X, sol.Obj = incumbentX, incumbent
			sol.Gap = 1
			sol.Elapsed = time.Since(start)
			sol.Trace = append(sol.Trace, TraceEvent{
				Elapsed: sol.Elapsed, Incumbent: incumbent, Bound: sol.Bound,
				Gap: relGap(incumbent, sol.Bound),
			})
			return sol, nil
		}
		if errors.Is(err, errTimeLimit) {
			sol.Elapsed = time.Since(start)
			sol.Gap = 1
			return sol, nil
		}
		return nil, fmt.Errorf("root relaxation: %w", err)
	}
	// Objective granularity: with all variables integral and every
	// objective coefficient a multiple of g, any feasible objective lies
	// on the g-grid, so LP bounds round up to the next grid point.
	grid := objectiveGrid(mod)
	snap := func(v float64) float64 {
		if grid <= 0 {
			return v
		}
		return math.Ceil(v/grid-1e-7) * grid
	}
	res.obj = snap(res.obj)
	sol.Iters += res.iters
	switch res.status {
	case StatusInfeasible:
		if incumbentX != nil {
			// The provided incumbent is feasible, so the model cannot be
			// infeasible; treat as numerical trouble and keep the incumbent.
			sol.Status = StatusFeasible
			sol.X, sol.Obj, sol.Bound = incumbentX, incumbent, math.Inf(-1)
			sol.Gap = 1
			sol.Elapsed = time.Since(start)
			return sol, nil
		}
		sol.Status = StatusInfeasible
		sol.Elapsed = time.Since(start)
		return sol, nil
	case StatusUnbounded:
		sol.Status = StatusUnbounded
		sol.Elapsed = time.Since(start)
		return sol, nil
	}

	s := &bbSearch{
		mod: mod, opts: opts,
		rootLB: rootLB, rootUB: rootUB,
		deadline: deadline, ctx: ctx, start: start, snap: snap,
		inFlight:    make(map[int]float64),
		incumbent:   incumbent,
		incumbentX:  incumbentX,
		prunedFloor: math.Inf(1),
		globalBound: res.obj,
	}
	s.cond = sync.NewCond(&s.mu)
	heap.Init(&s.h)
	heap.Push(&s.h, &bbNode{bound: res.obj, seq: 0})
	s.traceLocked()

	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s.worker(id)
		}(id)
	}
	wg.Wait()

	// All state is ours again: fold the search outcome into the solution,
	// with the exact bound bookkeeping of the serial algorithm.
	incumbent, incumbentX = s.incumbent, s.incumbentX
	globalBound := s.globalBound
	if s.unbounded {
		sol.Status = StatusUnbounded
		sol.Nodes = s.nodes
		sol.Iters += s.iters
		sol.Elapsed = time.Since(start)
		return sol, nil
	}
	if !s.timedOut && len(s.h) == 0 {
		// Search exhausted: the incumbent (if any) is optimal, unless
		// subtrees were pruned against an external bound (prunedFloor caps
		// the proven bound below).
		if incumbentX != nil {
			globalBound = incumbent
		}
	} else if len(s.h) > 0 {
		if top := s.h[0].bound; top > globalBound {
			globalBound = top
		}
	}
	if globalBound > s.prunedFloor {
		globalBound = s.prunedFloor
	}
	sol.Nodes = s.nodes
	sol.Iters += s.iters
	sol.Bound = globalBound
	sol.Elapsed = time.Since(start)
	sol.Trace = append(sol.Trace, s.trace...)
	endTrace := func() {
		sol.Trace = append(sol.Trace, TraceEvent{
			Elapsed:   time.Since(start),
			Incumbent: incumbent,
			Bound:     sol.Bound,
			Gap:       relGap(incumbent, sol.Bound),
			Nodes:     s.nodes,
		})
	}
	if incumbentX == nil {
		if !s.timedOut && len(s.h) == 0 && math.IsInf(s.prunedFloor, 1) {
			// Search exhausted without any integral solution: infeasible.
			sol.Status = StatusInfeasible
		} else {
			sol.Status = StatusNoSolution
			sol.Gap = 1
		}
		endTrace()
		return sol, nil
	}
	sol.X = incumbentX
	sol.Obj = incumbent
	sol.Gap = relGap(incumbent, globalBound)
	if !s.timedOut && sol.Gap <= 1e-9 {
		sol.Status = StatusOptimal
		sol.Bound = incumbent
		sol.Gap = 0
	} else if opts.GapLimit > 0 && sol.Gap <= opts.GapLimit {
		sol.Status = StatusOptimal
	} else {
		sol.Status = StatusFeasible
	}
	endTrace()
	return sol, nil
}

// roundIntegral snaps near-integral integer variables exactly.
func roundIntegral(mod *Model, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for j := range out {
		if mod.vtype[j] != Continuous {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

package ilp

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"time"
)

// objectiveGrid returns g > 0 when every variable is integral and every
// objective coefficient is an integer multiple of g; otherwise 0.
func objectiveGrid(mod *Model) float64 {
	g := 0.0
	for j, c := range mod.obj {
		if zero(c) {
			continue
		}
		if mod.vtype[j] == Continuous {
			return 0
		}
		g = fgcd(g, math.Abs(c))
		if g < 1e-6 {
			return 0
		}
	}
	return g
}

func fgcd(a, b float64) float64 {
	for b > 1e-7 {
		a, b = b, math.Mod(a, b)
	}
	return a
}

// boundFix is one branching decision: variable v gets a new lower or upper
// bound.
type boundFix struct {
	v    int
	isUB bool
	val  float64
}

type bbNode struct {
	fixes []boundFix
	bound float64 // LP bound inherited from the parent
	depth int
	seq   int
}

type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound < h[j].bound {
		return true
	}
	if h[j].bound < h[i].bound {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Solve minimizes the model by LP-based best-first branch & bound. It never
// returns an invalid incumbent: Solution.X (when Status is Optimal or
// Feasible) satisfies all constraints and integrality.
func Solve(mod *Model, opts Options) (*Solution, error) {
	return SolveContext(context.Background(), mod, opts)
}

// SolveContext is Solve with cooperative cancellation: the effective
// deadline is the earlier of ctx's deadline and start+opts.TimeLimit, and a
// cancelled ctx aborts the search at the next simplex iteration or node
// expansion, returning the best incumbent found so far. A context that is
// already dead on entry returns (nil, ctx.Err()) without touching the model.
func SolveContext(ctx context.Context, mod *Model, opts Options) (*Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	sol := &Solution{Status: StatusNoSolution, Obj: math.Inf(1), Bound: math.Inf(-1)}
	incumbent := math.Inf(1)
	var incumbentX []float64
	if opts.Incumbent != nil {
		if err := mod.Feasible(opts.Incumbent, feasTol, false); err == nil {
			incumbentX = append([]float64(nil), opts.Incumbent...)
			incumbent = mod.Objective(incumbentX)
		}
	}

	trace := func(bound float64, nodes int) {
		sol.Trace = append(sol.Trace, TraceEvent{
			Elapsed:   time.Since(start),
			Incumbent: incumbent,
			Bound:     bound,
			Gap:       relGap(incumbent, bound),
			Nodes:     nodes,
		})
	}

	// Root relaxation.
	rootLB := append([]float64(nil), mod.lb...)
	rootUB := append([]float64(nil), mod.ub...)
	res, err := solveLP(ctx, mod, rootLB, rootUB, deadline)
	if err != nil {
		if errors.Is(err, errTimeLimit) && incumbentX != nil {
			sol.Status = StatusFeasible
			sol.X, sol.Obj = incumbentX, incumbent
			sol.Gap = 1
			sol.Elapsed = time.Since(start)
			trace(sol.Bound, 0)
			return sol, nil
		}
		if errors.Is(err, errTimeLimit) {
			sol.Elapsed = time.Since(start)
			sol.Gap = 1
			return sol, nil
		}
		return nil, fmt.Errorf("root relaxation: %w", err)
	}
	// Objective granularity: with all variables integral and every
	// objective coefficient a multiple of g, any feasible objective lies
	// on the g-grid, so LP bounds round up to the next grid point.
	grid := objectiveGrid(mod)
	snap := func(v float64) float64 {
		if grid <= 0 {
			return v
		}
		return math.Ceil(v/grid-1e-7) * grid
	}
	res.obj = snap(res.obj)
	sol.Iters += res.iters
	switch res.status {
	case StatusInfeasible:
		if incumbentX != nil {
			// The provided incumbent is feasible, so the model cannot be
			// infeasible; treat as numerical trouble and keep the incumbent.
			sol.Status = StatusFeasible
			sol.X, sol.Obj, sol.Bound = incumbentX, incumbent, math.Inf(-1)
			sol.Gap = 1
			sol.Elapsed = time.Since(start)
			return sol, nil
		}
		sol.Status = StatusInfeasible
		sol.Elapsed = time.Since(start)
		return sol, nil
	case StatusUnbounded:
		sol.Status = StatusUnbounded
		sol.Elapsed = time.Since(start)
		return sol, nil
	}

	h := &nodeHeap{}
	heap.Init(h)
	seq := 0
	heap.Push(h, &bbNode{bound: res.obj, seq: seq})
	globalBound := res.obj
	trace(globalBound, 0)

	applyFixes := func(fixes []boundFix) ([]float64, []float64) {
		lbs := append([]float64(nil), rootLB...)
		ubs := append([]float64(nil), rootUB...)
		for _, f := range fixes {
			if f.isUB {
				if f.val < ubs[f.v] {
					ubs[f.v] = f.val
				}
			} else if f.val > lbs[f.v] {
				lbs[f.v] = f.val
			}
		}
		return lbs, ubs
	}

	nodes := 0
	timedOut := false
	// prunedFloor tracks the smallest LP bound pruned against an *external*
	// incumbent (opts.BestKnown) below our own: those subtrees may contain
	// solutions better than our incumbent (though none better than the
	// external bound), so the proven bound must not rise above it.
	prunedFloor := math.Inf(1)
	for h.Len() > 0 {
		if (!deadline.IsZero() && time.Now().After(deadline)) || ctx.Err() != nil {
			timedOut = true
			break
		}
		if opts.MaxNodes > 0 && nodes >= opts.MaxNodes {
			timedOut = true
			break
		}
		// The pruning cutoff is the better of our incumbent and any
		// externally shared one (e.g. a portfolio sibling's labeling).
		cutoff := incumbent
		externalCut := false
		if opts.BestKnown != nil {
			if b := opts.BestKnown(); b < cutoff {
				cutoff, externalCut = b, true
			}
		}
		node := heap.Pop(h).(*bbNode)
		if node.bound >= cutoff-1e-9 {
			// Best-first: every remaining node is at least as bad.
			if externalCut && node.bound < incumbent-1e-9 {
				if node.bound < prunedFloor {
					prunedFloor = node.bound
				}
				if node.bound > globalBound {
					globalBound = node.bound
				}
			} else {
				globalBound = incumbent
			}
			break
		}
		if node.bound > globalBound {
			globalBound = node.bound
			trace(globalBound, nodes)
		}
		if opts.GapLimit > 0 && relGap(incumbent, globalBound) <= opts.GapLimit {
			break
		}
		nodes++
		lbs, ubs := applyFixes(node.fixes)
		res, err := solveLP(ctx, mod, lbs, ubs, deadline)
		if err != nil {
			// Time limit or numerical trouble on one node: put it back so
			// the reported global bound stays honest, then stop.
			heap.Push(h, node)
			timedOut = true
			break
		}
		sol.Iters += res.iters
		if res.status == StatusInfeasible {
			continue
		}
		if res.status == StatusUnbounded {
			sol.Status = StatusUnbounded
			sol.Elapsed = time.Since(start)
			return sol, nil
		}
		res.obj = snap(res.obj)
		if res.obj >= cutoff-1e-9 {
			if res.obj < incumbent-1e-9 && res.obj < prunedFloor {
				prunedFloor = res.obj
			}
			continue
		}
		// Find the most fractional integer variable.
		branchVar, frac := -1, 0.0
		for j := 0; j < mod.NumVars(); j++ {
			if mod.vtype[j] == Continuous {
				continue
			}
			f := math.Abs(res.x[j] - math.Round(res.x[j]))
			if f > 1e-6 && f > frac {
				branchVar, frac = j, f
			}
		}
		if branchVar < 0 {
			// Integral solution: new incumbent.
			xi := roundIntegral(mod, res.x)
			if err := mod.Feasible(xi, 1e-5, false); err == nil {
				if obj := mod.Objective(xi); obj < incumbent-1e-9 {
					incumbent = obj
					incumbentX = xi
					trace(globalBound, nodes)
				}
			}
			continue
		}
		down := append(append([]boundFix(nil), node.fixes...),
			boundFix{v: branchVar, isUB: true, val: math.Floor(res.x[branchVar])})
		up := append(append([]boundFix(nil), node.fixes...),
			boundFix{v: branchVar, isUB: false, val: math.Ceil(res.x[branchVar])})
		seq++
		heap.Push(h, &bbNode{fixes: down, bound: res.obj, depth: node.depth + 1, seq: seq})
		seq++
		heap.Push(h, &bbNode{fixes: up, bound: res.obj, depth: node.depth + 1, seq: seq})
	}

	if !timedOut && h.Len() == 0 {
		// Search exhausted: the incumbent (if any) is optimal, unless
		// subtrees were pruned against an external bound (prunedFloor caps
		// the proven bound below).
		if incumbentX != nil {
			globalBound = incumbent
		}
	} else if h.Len() > 0 {
		if top := (*h)[0].bound; top > globalBound {
			globalBound = top
		}
	}
	if globalBound > prunedFloor {
		globalBound = prunedFloor
	}
	sol.Nodes = nodes
	sol.Bound = globalBound
	sol.Elapsed = time.Since(start)
	if incumbentX == nil {
		if !timedOut && h.Len() == 0 && math.IsInf(prunedFloor, 1) {
			// Search exhausted without any integral solution: infeasible.
			sol.Status = StatusInfeasible
		} else {
			sol.Status = StatusNoSolution
			sol.Gap = 1
		}
		trace(globalBound, nodes)
		return sol, nil
	}
	sol.X = incumbentX
	sol.Obj = incumbent
	sol.Gap = relGap(incumbent, globalBound)
	if !timedOut && sol.Gap <= 1e-9 {
		sol.Status = StatusOptimal
		sol.Bound = incumbent
		sol.Gap = 0
	} else if opts.GapLimit > 0 && sol.Gap <= opts.GapLimit {
		sol.Status = StatusOptimal
	} else {
		sol.Status = StatusFeasible
	}
	trace(sol.Bound, nodes)
	return sol, nil
}

// roundIntegral snaps near-integral integer variables exactly.
func roundIntegral(mod *Model, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for j := range out {
		if mod.vtype[j] != Continuous {
			out[j] = math.Round(out[j])
		}
	}
	return out
}

package ilp

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"compact/internal/graph"
)

// benchVC is the benchmark vertex-cover relaxation: the ~2-nonzeros-per-
// row matrix shape that motivated the revised simplex.
func benchVC(n int, p float64, seed uint64) *Model {
	g := graph.Random(n, p, seed)
	return vcModel(g, rand.New(rand.NewSource(int64(seed))))
}

// BenchmarkLPVertexCoverDense measures the dense tableau oracle on a
// vertex-cover relaxation (the before side of the revised-simplex claim).
func BenchmarkLPVertexCoverDense(b *testing.B) {
	mod := benchVC(220, 0.04, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solveLPDense(context.Background(), mod, mod.lb, mod.ub, time.Time{})
		if err != nil || res.status != StatusOptimal {
			b.Fatalf("dense: %v / %v", err, res.status)
		}
	}
}

// BenchmarkLPVertexCoverRevised measures the sparse revised simplex on
// the same instance (the after side).
func BenchmarkLPVertexCoverRevised(b *testing.B) {
	mod := benchVC(220, 0.04, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solveLPRevised(context.Background(), mod, mod.lb, mod.ub, time.Time{})
		if err != nil || res.status != StatusOptimal {
			b.Fatalf("revised: %v / %v", err, res.status)
		}
	}
}

// BenchmarkBBVertexCoverSerial runs the full branch & bound (revised LP
// core) on a vertex-cover MIP with one worker.
func BenchmarkBBVertexCoverSerial(b *testing.B) {
	mod := benchVC(60, 0.1, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(mod, Options{Workers: 1})
		if err != nil || sol.Status != StatusOptimal {
			b.Fatalf("serial: %v / %v", err, sol.Status)
		}
	}
}

// BenchmarkBBVertexCoverParallel4 is the same search with four workers
// (on multi-core hardware the wall-clock ratio to the serial benchmark is
// the parallel speedup; on one core it measures coordination overhead).
func BenchmarkBBVertexCoverParallel4(b *testing.B) {
	mod := benchVC(60, 0.1, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(mod, Options{Workers: 4})
		if err != nil || sol.Status != StatusOptimal {
			b.Fatalf("parallel: %v / %v", err, sol.Status)
		}
	}
}

package ilp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"compact/internal/graph"
)

// vcModel builds the weighted vertex-cover ILP of g — the exact matrix
// shape (two nonzeros per row) the labeling pipeline feeds the solver.
func vcModel(g *graph.Graph, rng *rand.Rand) *Model {
	m := NewModel("vc")
	for v := 0; v < g.N(); v++ {
		w := 1.0
		if rng != nil {
			w = 1 + rng.Float64()*4
		}
		m.AddVar(fmt.Sprintf("x%d", v), 0, 1, Binary, w)
	}
	for _, e := range g.Edges() {
		m.AddConstr(fmt.Sprintf("e%d_%d", e[0], e[1]),
			[]Term{{e[0], 1}, {e[1], 1}}, GE, 1)
	}
	return m
}

// TestRevisedVsDenseVertexCoverLP is the sparse-vs-dense agreement
// property: on random vertex-cover relaxations — including branch-and-
// bound-style bound overrides that fix random subsets of variables, some
// of which make the LP infeasible — the revised simplex must report the
// same status and (when optimal) the same objective as the dense oracle.
func TestRevisedVsDenseVertexCoverLP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 80; trial++ {
		n := 5 + rng.Intn(30)
		p := []float64{0.1, 0.3, 0.6}[rng.Intn(3)]
		g := graph.Random(n, p, uint64(trial)*7+1)
		mod := vcModel(g, rng)
		lbs := append([]float64(nil), mod.lb...)
		ubs := append([]float64(nil), mod.ub...)
		// Emulate a branch & bound node: fix a random subset.
		for v := 0; v < n; v++ {
			switch rng.Intn(6) {
			case 0:
				lbs[v] = 1
			case 1:
				ubs[v] = 0
			}
		}
		want, err := solveLPDense(context.Background(), mod, lbs, ubs, time.Time{})
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		got, err := solveLPRevised(context.Background(), mod, lbs, ubs, time.Time{})
		if err != nil {
			t.Fatalf("trial %d: revised: %v", trial, err)
		}
		if got.status != want.status {
			t.Fatalf("trial %d (n=%d p=%.1f): dense status %v, revised %v",
				trial, n, p, want.status, got.status)
		}
		if want.status == StatusOptimal && math.Abs(got.obj-want.obj) > 1e-6 {
			t.Fatalf("trial %d: dense obj %v, revised %v", trial, want.obj, got.obj)
		}
	}
}

// TestRevisedVsDenseGeneralLP widens the agreement property beyond
// vertex-cover shape: random dense-ish LPs with mixed senses, negative
// lower bounds and equality rows.
func TestRevisedVsDenseGeneralLP(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		nVars := 2 + rng.Intn(10)
		nCons := 1 + rng.Intn(10)
		mod := NewModel("rnd")
		for j := 0; j < nVars; j++ {
			lo := float64(rng.Intn(5)) - 2
			hi := lo + float64(rng.Intn(6))
			mod.AddVar(fmt.Sprintf("x%d", j), lo, hi, Continuous, rng.NormFloat64())
		}
		for c := 0; c < nCons; c++ {
			var terms []Term
			for j := 0; j < nVars; j++ {
				if rng.Intn(3) == 0 {
					terms = append(terms, Term{j, math.Round(rng.NormFloat64() * 3)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
			mod.AddConstr(fmt.Sprintf("c%d", c), terms, sense, math.Round(rng.NormFloat64()*5))
		}
		want, err := solveLPDense(context.Background(), mod, mod.lb, mod.ub, time.Time{})
		if err != nil {
			continue // dense iteration limit etc. — nothing to compare against
		}
		got, err := solveLPRevised(context.Background(), mod, mod.lb, mod.ub, time.Time{})
		if err != nil {
			t.Fatalf("trial %d: revised: %v", trial, err)
		}
		if got.status != want.status {
			t.Fatalf("trial %d: dense status %v, revised %v", trial, want.status, got.status)
		}
		if want.status == StatusOptimal && math.Abs(got.obj-want.obj) > 1e-5 {
			t.Fatalf("trial %d: dense obj %v, revised %v", trial, want.obj, got.obj)
		}
	}
}

// TestRevisedDegenerateBeale is the anti-cycling regression: Beale's
// classic example cycles forever under naive Dantzig pivoting on
// degenerate vertices. The stall-window Bland's-rule fallback must
// terminate it at the optimum (objective -1/20).
func TestRevisedDegenerateBeale(t *testing.T) {
	m := NewModel("beale")
	x1 := m.AddVar("x1", 0, math.Inf(1), Continuous, -0.75)
	x2 := m.AddVar("x2", 0, math.Inf(1), Continuous, 150)
	x3 := m.AddVar("x3", 0, math.Inf(1), Continuous, -0.02)
	x4 := m.AddVar("x4", 0, math.Inf(1), Continuous, 6)
	m.AddConstr("r1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	m.AddConstr("r2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	m.AddConstr("r3", []Term{{x3, 1}}, LE, 1)
	res, err := solveLPRevised(context.Background(), m, m.lb, m.ub, time.Time{})
	if err != nil {
		t.Fatalf("revised on Beale: %v", err)
	}
	if res.status != StatusOptimal {
		t.Fatalf("status %v, want optimal", res.status)
	}
	if math.Abs(res.obj-(-0.05)) > 1e-9 {
		t.Fatalf("objective %v, want -0.05", res.obj)
	}
}

// TestRevisedHighlyDegenerate stacks duplicated rows (massive primal
// degeneracy, the shape that provokes stalling) and checks the revised
// simplex still terminates at the dense oracle's optimum.
func TestRevisedHighlyDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := graph.Random(12, 0.4, uint64(trial)+100)
		mod := vcModel(g, nil)
		// Duplicate every edge constraint 4 more times.
		for _, e := range g.Edges() {
			for k := 0; k < 4; k++ {
				mod.AddConstr(fmt.Sprintf("dup%d_%d_%d", e[0], e[1], k),
					[]Term{{e[0], 1}, {e[1], 1}}, GE, 1)
			}
		}
		_ = rng
		want, err := solveLPDense(context.Background(), mod, mod.lb, mod.ub, time.Time{})
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		got, err := solveLPRevised(context.Background(), mod, mod.lb, mod.ub, time.Time{})
		if err != nil {
			t.Fatalf("trial %d: revised: %v", trial, err)
		}
		if got.status != want.status || math.Abs(got.obj-want.obj) > 1e-6 {
			t.Fatalf("trial %d: dense (%v, %v), revised (%v, %v)",
				trial, want.status, want.obj, got.status, got.obj)
		}
	}
}

// TestParallelBBMatchesSerial solves random vertex-cover MIPs with one and
// four workers; the optimal objective (and optimality status) must agree.
// Run under -race this doubles as the parallel search's race test.
func TestParallelBBMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 12; trial++ {
		g := graph.Random(10+rng.Intn(10), 0.35, uint64(trial)*13+2)
		mod := vcModel(g, rng)
		serial, err := Solve(mod, Options{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: serial: %v", trial, err)
		}
		par, err := Solve(mod, Options{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		if serial.Status != StatusOptimal || par.Status != StatusOptimal {
			t.Fatalf("trial %d: status serial %v, parallel %v", trial, serial.Status, par.Status)
		}
		if math.Abs(serial.Obj-par.Obj) > 1e-9 {
			t.Fatalf("trial %d: obj serial %v, parallel %v", trial, serial.Obj, par.Obj)
		}
		if err := mod.Feasible(par.X, 1e-6, false); err != nil {
			t.Fatalf("trial %d: parallel solution infeasible: %v", trial, err)
		}
	}
}

// TestParallelBBSharedBestKnown exercises the external-cutoff path under
// concurrency: with BestKnown pinned at the known optimum the parallel
// search must stay race-clean and never report a bound above it.
func TestParallelBBSharedBestKnown(t *testing.T) {
	g := graph.Random(16, 0.4, 42)
	mod := vcModel(g, rand.New(rand.NewSource(1)))
	ref, err := Solve(mod, Options{Workers: 1})
	if err != nil || ref.Status != StatusOptimal {
		t.Fatalf("reference solve: %v / %v", err, ref.Status)
	}
	sol, err := Solve(mod, Options{
		Workers:   4,
		BestKnown: func() float64 { return ref.Obj },
	})
	if err != nil {
		t.Fatalf("parallel with BestKnown: %v", err)
	}
	if sol.Bound > ref.Obj+1e-6 {
		t.Fatalf("bound %v above the external incumbent %v", sol.Bound, ref.Obj)
	}
	if sol.X != nil {
		if err := mod.Feasible(sol.X, 1e-6, false); err != nil {
			t.Fatalf("returned solution infeasible: %v", err)
		}
	}
}

// TestParallelBBMaxNodes checks the node budget holds exactly under
// concurrent expansion: the check-then-increment runs under the search
// lock, so N workers cannot overshoot MaxNodes.
func TestParallelBBMaxNodes(t *testing.T) {
	mod := benchKnapsack(25, 3)
	sol, err := Solve(mod, Options{Workers: 4, MaxNodes: 5})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if sol.Nodes > 5 {
		t.Fatalf("expanded %d nodes, budget 5", sol.Nodes)
	}
}

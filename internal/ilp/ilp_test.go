package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestLPSimple2D(t *testing.T) {
	// min -x - 2y s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
	// Optimum at (2, 2): obj -6.
	m := NewModel("lp2d")
	x := m.AddVar("x", 0, 3, Continuous, -1)
	y := m.AddVar("y", 0, 2, Continuous, -2)
	m.AddConstr("cap", []Term{{x, 1}, {y, 1}}, LE, 4)
	res, err := solveLP(context.Background(), m, m.lb, m.ub, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.status != StatusOptimal {
		t.Fatalf("status = %v", res.status)
	}
	if math.Abs(res.obj-(-6)) > 1e-6 {
		t.Errorf("obj = %v, want -6 (x=%v)", res.obj, res.x)
	}
	if err := m.Feasible(res.x, 1e-6, true); err != nil {
		t.Error(err)
	}
}

func TestLPEquality(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x,y in [0, 10]. Optimum (0,2): obj 2.
	m := NewModel("eq")
	x := m.AddVar("x", 0, 10, Continuous, 1)
	y := m.AddVar("y", 0, 10, Continuous, 1)
	m.AddConstr("eq", []Term{{x, 1}, {y, 2}}, EQ, 4)
	res, err := solveLP(context.Background(), m, m.lb, m.ub, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.status != StatusOptimal || math.Abs(res.obj-2) > 1e-6 {
		t.Errorf("status %v obj %v, want optimal 2", res.status, res.obj)
	}
}

func TestLPGE(t *testing.T) {
	// min 3x + 2y s.t. x + y >= 5, x >= 1. Optimum (1,4): obj 11.
	m := NewModel("ge")
	x := m.AddVar("x", 1, 100, Continuous, 3)
	y := m.AddVar("y", 0, 100, Continuous, 2)
	m.AddConstr("c", []Term{{x, 1}, {y, 1}}, GE, 5)
	res, err := solveLP(context.Background(), m, m.lb, m.ub, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.status != StatusOptimal || math.Abs(res.obj-11) > 1e-6 {
		t.Errorf("status %v obj %v x %v, want optimal 11", res.status, res.obj, res.x)
	}
}

func TestLPInfeasible(t *testing.T) {
	m := NewModel("inf")
	x := m.AddVar("x", 0, 1, Continuous, 1)
	m.AddConstr("c", []Term{{x, 1}}, GE, 2)
	res, err := solveLP(context.Background(), m, m.lb, m.ub, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", res.status)
	}
}

func TestLPUnbounded(t *testing.T) {
	m := NewModel("unb")
	x := m.AddVar("x", 0, math.Inf(1), Continuous, -1)
	y := m.AddVar("y", 0, 5, Continuous, 0)
	m.AddConstr("c", []Term{{x, -1}, {y, 1}}, LE, 3)
	res, err := solveLP(context.Background(), m, m.lb, m.ub, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.status != StatusUnbounded {
		t.Errorf("status = %v, want unbounded", res.status)
	}
}

func TestLPNegativeLowerBounds(t *testing.T) {
	// min x s.t. x >= -3 (bound), x + y >= -2, y in [-1, 1].
	m := NewModel("neg")
	x := m.AddVar("x", -3, 10, Continuous, 1)
	y := m.AddVar("y", -1, 1, Continuous, 0)
	m.AddConstr("c", []Term{{x, 1}, {y, 1}}, GE, -2)
	res, err := solveLP(context.Background(), m, m.lb, m.ub, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.status != StatusOptimal || math.Abs(res.obj-(-3)) > 1e-6 {
		t.Errorf("obj = %v (x=%v), want -3", res.obj, res.x)
	}
}

func TestLPDegenerate(t *testing.T) {
	// Classic degenerate LP; must terminate (Bland fallback).
	m := NewModel("degen")
	x1 := m.AddVar("x1", 0, math.Inf(1), Continuous, -0.75)
	x2 := m.AddVar("x2", 0, math.Inf(1), Continuous, 150)
	x3 := m.AddVar("x3", 0, math.Inf(1), Continuous, -0.02)
	x4 := m.AddVar("x4", 0, math.Inf(1), Continuous, 6)
	m.AddConstr("c1", []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	m.AddConstr("c2", []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	m.AddConstr("c3", []Term{{x3, 1}}, LE, 1)
	res, err := solveLP(context.Background(), m, m.lb, m.ub, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.status != StatusOptimal || math.Abs(res.obj-(-0.05)) > 1e-6 {
		t.Errorf("Beale cycle LP: status %v obj %v, want optimal -0.05", res.status, res.obj)
	}
}

func TestMIPKnapsack(t *testing.T) {
	// max 10a + 13b + 7c + 11d s.t. 3a+4b+2c+3d <= 7  (minimize negative)
	// Optimum: b + d? 4+3=7, value 24; a+c+d = 3+2+3=8 no; a+b=7 value 23;
	// c+d+a = 8 no; b+c = 6 value 20; d+b = 24 wins. check a+c=5 value 17.
	m := NewModel("knap")
	vals := []float64{10, 13, 7, 11}
	wts := []float64{3, 4, 2, 3}
	var terms []Term
	for i, v := range vals {
		x := m.AddVar(string(rune('a'+i)), 0, 1, Binary, -v)
		terms = append(terms, Term{x, wts[i]})
	}
	m.AddConstr("w", terms, LE, 7)
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-(-24)) > 1e-6 {
		t.Errorf("status %v obj %v X %v, want optimal -24", sol.Status, sol.Obj, sol.X)
	}
	if err := m.Feasible(sol.X, 1e-6, false); err != nil {
		t.Error(err)
	}
}

func TestMIPIntegerRoundingMatters(t *testing.T) {
	// min -x - y s.t. 2x + 2y <= 3, x,y binary. LP opt = -1.5; MIP opt = -1.
	m := NewModel("round")
	x := m.AddVar("x", 0, 1, Binary, -1)
	y := m.AddVar("y", 0, 1, Binary, -1)
	m.AddConstr("c", []Term{{x, 2}, {y, 2}}, LE, 3)
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-(-1)) > 1e-6 {
		t.Errorf("obj = %v, want -1", sol.Obj)
	}
}

func TestMIPInfeasible(t *testing.T) {
	m := NewModel("mipinf")
	x := m.AddVar("x", 0, 1, Binary, 1)
	y := m.AddVar("y", 0, 1, Binary, 1)
	m.AddConstr("c1", []Term{{x, 1}, {y, 1}}, GE, 3)
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestMIPGeneralInteger(t *testing.T) {
	// min -3x - 4y, 5x + 8y <= 24, x,y integer >= 0. Candidates:
	// x=4,y=0: -12; x=0,y=3: -12; x=1,y=2: -11; x=3,y=1: -13 (15+8=23 ok).
	m := NewModel("gi")
	x := m.AddVar("x", 0, 10, Integer, -3)
	y := m.AddVar("y", 0, 10, Integer, -4)
	m.AddConstr("c", []Term{{x, 5}, {y, 8}}, LE, 24)
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-(-13)) > 1e-6 {
		t.Errorf("obj = %v X %v, want -13", sol.Obj, sol.X)
	}
}

// bruteBinary enumerates all binary assignments and returns the optimum.
func bruteBinary(m *Model) (float64, bool) {
	n := m.NumVars()
	best := math.Inf(1)
	found := false
	x := make([]float64, n)
	for mask := 0; mask < 1<<n; mask++ {
		for j := 0; j < n; j++ {
			x[j] = float64((mask >> j) & 1)
		}
		if m.Feasible(x, 1e-9, false) == nil {
			if v := m.Objective(x); v < best {
				best = v
				found = true
			}
		}
	}
	return best, found
}

func TestMIPRandomBinaryVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(7)
		nc := 2 + rng.Intn(4)
		m := NewModel("rand")
		for j := 0; j < n; j++ {
			m.AddVar("x", 0, 1, Binary, float64(rng.Intn(21)-10))
		}
		for c := 0; c < nc; c++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.6 {
					terms = append(terms, Term{j, float64(rng.Intn(11) - 5)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			sense := []Sense{LE, GE}[rng.Intn(2)]
			m.AddConstr("c", terms, sense, float64(rng.Intn(9)-4))
		}
		sol, err := Solve(m, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, feasible := bruteBinary(m)
		if !feasible {
			if sol.Status != StatusInfeasible {
				t.Fatalf("trial %d: solver says %v but model infeasible", trial, sol.Status)
			}
			continue
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, want optimal", trial, sol.Status)
		}
		if math.Abs(sol.Obj-want) > 1e-6 {
			t.Fatalf("trial %d: obj %v, want %v", trial, sol.Obj, want)
		}
		if err := m.Feasible(sol.X, 1e-6, false); err != nil {
			t.Fatalf("trial %d: infeasible solution: %v", trial, err)
		}
	}
}

func TestMIPIncumbentPriming(t *testing.T) {
	// Provide a feasible (suboptimal) incumbent; solver must return
	// something at least as good.
	m := NewModel("prime")
	x := m.AddVar("x", 0, 1, Binary, -5)
	y := m.AddVar("y", 0, 1, Binary, -4)
	m.AddConstr("c", []Term{{x, 1}, {y, 1}}, LE, 1)
	sol, err := Solve(m, Options{Incumbent: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-(-5)) > 1e-6 {
		t.Errorf("obj = %v, want -5", sol.Obj)
	}
}

func TestMIPTimeLimitReturnsIncumbent(t *testing.T) {
	// A model big enough not to finish in 1ns; primed incumbent returned.
	rng := rand.New(rand.NewSource(9))
	m := NewModel("big")
	n := 40
	inc := make([]float64, n)
	var terms []Term
	for j := 0; j < n; j++ {
		m.AddVar("x", 0, 1, Binary, -float64(1+rng.Intn(50)))
		terms = append(terms, Term{j, float64(1 + rng.Intn(20))})
	}
	m.AddConstr("cap", terms, LE, 60)
	sol, err := Solve(m, Options{TimeLimit: time.Nanosecond, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusFeasible && sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("no incumbent returned")
	}
	if err := m.Feasible(sol.X, 1e-6, false); err != nil {
		t.Error(err)
	}
	if sol.Gap < 0 || sol.Gap > 1 {
		t.Errorf("gap = %v", sol.Gap)
	}
}

func TestTraceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewModel("trace")
	n := 14
	var terms []Term
	for j := 0; j < n; j++ {
		m.AddVar("x", 0, 1, Binary, -float64(1+rng.Intn(30)))
		terms = append(terms, Term{j, float64(1 + rng.Intn(10))})
	}
	m.AddConstr("cap", terms, LE, 25)
	for c := 0; c < 4; c++ {
		var ts []Term
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.3 {
				ts = append(ts, Term{j, 1})
			}
		}
		if len(ts) > 1 {
			m.AddConstr("side", ts, LE, float64(len(ts)-1))
		}
	}
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if len(sol.Trace) < 2 {
		t.Fatalf("trace too short: %d", len(sol.Trace))
	}
	for i := 1; i < len(sol.Trace); i++ {
		if sol.Trace[i].Incumbent > sol.Trace[i-1].Incumbent+1e-9 {
			t.Errorf("incumbent increased at %d", i)
		}
		if sol.Trace[i].Bound < sol.Trace[i-1].Bound-1e-9 {
			t.Errorf("bound decreased at %d: %v -> %v", i, sol.Trace[i-1].Bound, sol.Trace[i].Bound)
		}
	}
	last := sol.Trace[len(sol.Trace)-1]
	if last.Gap > 1e-9 {
		t.Errorf("final gap = %v, want 0", last.Gap)
	}
}

func TestMergedDuplicateTerms(t *testing.T) {
	m := NewModel("dup")
	x := m.AddVar("x", 0, 10, Continuous, 1)
	m.AddConstr("c", []Term{{x, 1}, {x, 2}}, GE, 6) // 3x >= 6
	res, err := solveLP(context.Background(), m, m.lb, m.ub, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.obj-2) > 1e-6 {
		t.Errorf("obj = %v, want 2", res.obj)
	}
}

func TestFeasibleChecks(t *testing.T) {
	m := NewModel("f")
	m.AddVar("x", 0, 1, Binary, 1)
	if err := m.Feasible([]float64{0.5}, 1e-9, false); err == nil {
		t.Error("fractional binary accepted")
	}
	if err := m.Feasible([]float64{0.5}, 1e-9, true); err != nil {
		t.Errorf("relaxed check rejected: %v", err)
	}
	if err := m.Feasible([]float64{2}, 1e-9, true); err == nil {
		t.Error("bound violation accepted")
	}
	if err := m.Feasible([]float64{0, 0}, 1e-9, true); err == nil {
		t.Error("wrong-length vector accepted")
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{StatusOptimal, StatusFeasible, StatusInfeasible, StatusUnbounded, StatusNoSolution} {
		if s.String() == "" {
			t.Errorf("empty status string for %d", s)
		}
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Error("sense strings wrong")
	}
}

func TestGapLimitStopsEarly(t *testing.T) {
	// A loose gap limit must stop with StatusOptimal-by-gap semantics.
	rng := rand.New(rand.NewSource(11))
	m := NewModel("gap")
	n := 18
	var terms []Term
	for j := 0; j < n; j++ {
		m.AddVar("x", 0, 1, Binary, -float64(1+rng.Intn(40)))
		terms = append(terms, Term{j, float64(1 + rng.Intn(12))})
	}
	m.AddConstr("cap", terms, LE, 30)
	sol, err := Solve(m, Options{GapLimit: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X == nil {
		t.Fatal("no solution")
	}
	if sol.Gap > 0.5+1e-9 {
		t.Errorf("gap %v exceeds limit", sol.Gap)
	}
}

func TestMaxNodesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewModel("mn")
	n := 24
	var terms []Term
	for j := 0; j < n; j++ {
		m.AddVar("x", 0, 1, Binary, -float64(1+rng.Intn(40)))
		terms = append(terms, Term{j, float64(1 + rng.Intn(12))})
	}
	m.AddConstr("cap", terms, LE, 40)
	inc := make([]float64, n)
	sol, err := Solve(m, Options{MaxNodes: 3, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Nodes > 3 {
		t.Errorf("processed %d nodes, cap 3", sol.Nodes)
	}
	if sol.X == nil {
		t.Error("incumbent lost")
	}
}

func TestObjectiveGridDetection(t *testing.T) {
	m := NewModel("grid")
	m.AddVar("a", 0, 1, Binary, 0.5)
	m.AddVar("b", 0, 5, Integer, 1.5)
	if g := objectiveGrid(m); math.Abs(g-0.5) > 1e-9 {
		t.Errorf("grid = %v, want 0.5", g)
	}
	m2 := NewModel("cont")
	m2.AddVar("a", 0, 1, Binary, 0.5)
	m2.AddVar("c", 0, 1, Continuous, 0.25)
	if g := objectiveGrid(m2); g != 0 {
		t.Errorf("grid with continuous obj var = %v, want 0", g)
	}
	m3 := NewModel("zero")
	m3.AddVar("a", 0, 1, Binary, 0)
	m3.AddVar("d", 0, 1, Continuous, 0) // zero-coeff continuous is fine
	if g := objectiveGrid(m3); g != 0 {
		t.Errorf("all-zero objective grid = %v, want 0", g)
	}
}

// Package ilp is a self-contained 0-1/mixed-integer linear program solver,
// standing in for CPLEX in the COMPACT reproduction. It combines a dense
// bounded-variable two-phase primal simplex for LP relaxations with
// best-first branch & bound, and reports the anytime convergence data
// (best integer, best bound, relative gap over time) that the paper's
// Figures 10 and 11 plot.
//
// The solver is exact but not industrial: it targets the model sizes used
// by this repository's benchmark suite (thousands of variables). Larger
// models are still handled correctly via the time limit, returning the best
// incumbent with a proven bound and gap.
package ilp

import (
	"fmt"
	"math"
	"runtime"
	"time"
)

// VarType distinguishes continuous from integrality-constrained variables.
type VarType uint8

// Variable kinds.
const (
	Continuous VarType = iota
	Integer
	Binary // shorthand for Integer with bounds [0,1]
)

// Sense is a linear constraint's comparison operator.
type Sense uint8

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // ==
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "=="
	}
}

// Term is one coefficient–variable product in a linear expression.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is sum(Terms) Sense RHS.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
	Name  string
}

// Model is a minimization MILP: min c·x s.t. constraints, bounds, types.
type Model struct {
	Name    string
	obj     []float64
	lb, ub  []float64
	vtype   []VarType
	names   []string
	constrs []Constraint
}

// NewModel creates an empty model (objective sense: minimize).
func NewModel(name string) *Model { return &Model{Name: name} }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumConstrs returns the number of constraints.
func (m *Model) NumConstrs() int { return len(m.constrs) }

// AddVar appends a variable and returns its index. For Binary variables the
// given bounds are clamped to [0,1].
func (m *Model) AddVar(name string, lb, ub float64, typ VarType, obj float64) int {
	if typ == Binary {
		lb, ub = math.Max(lb, 0), math.Min(ub, 1)
	}
	if lb > ub {
		//lint:ignore panicfree model-construction precondition: bounds come from code, not input data
		panic(fmt.Sprintf("ilp: variable %q has lb %v > ub %v", name, lb, ub))
	}
	m.obj = append(m.obj, obj)
	m.lb = append(m.lb, lb)
	m.ub = append(m.ub, ub)
	m.vtype = append(m.vtype, typ)
	m.names = append(m.names, name)
	return len(m.obj) - 1
}

// SetObj overrides the objective coefficient of variable v.
func (m *Model) SetObj(v int, c float64) { m.obj[v] = c }

// VarName returns the name of variable v.
func (m *Model) VarName(v int) string { return m.names[v] }

// AddConstr appends a constraint. Terms referring to out-of-range variables
// panic. Duplicate variables within one constraint are summed.
func (m *Model) AddConstr(name string, terms []Term, sense Sense, rhs float64) {
	merged := make(map[int]float64)
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(m.obj) {
			//lint:ignore panicfree model-construction precondition: term indices come from AddVar results
			panic(fmt.Sprintf("ilp: constraint %q references unknown variable %d", name, t.Var))
		}
		merged[t.Var] += t.Coeff
	}
	out := make([]Term, 0, len(merged))
	for _, t := range terms { // preserve first-occurrence order
		if c, ok := merged[t.Var]; ok {
			if !zero(c) {
				out = append(out, Term{t.Var, c})
			}
			delete(merged, t.Var)
		}
	}
	m.constrs = append(m.constrs, Constraint{Terms: out, Sense: sense, RHS: rhs, Name: name})
}

// Objective evaluates c·x.
func (m *Model) Objective(x []float64) float64 {
	v := 0.0
	for i, c := range m.obj {
		v += c * x[i]
	}
	return v
}

// Feasible reports whether x satisfies all constraints, bounds and (unless
// relaxed) integrality, within tolerance tol.
func (m *Model) Feasible(x []float64, tol float64, relaxed bool) error {
	if len(x) != len(m.obj) {
		return fmt.Errorf("ilp: solution has %d entries, want %d", len(x), len(m.obj))
	}
	for i := range x {
		if x[i] < m.lb[i]-tol || x[i] > m.ub[i]+tol {
			return fmt.Errorf("ilp: %s = %v outside [%v, %v]", m.names[i], x[i], m.lb[i], m.ub[i])
		}
		if !relaxed && m.vtype[i] != Continuous {
			if math.Abs(x[i]-math.Round(x[i])) > tol {
				return fmt.Errorf("ilp: %s = %v not integral", m.names[i], x[i])
			}
		}
	}
	for _, c := range m.constrs {
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coeff * x[t.Var]
		}
		ok := true
		switch c.Sense {
		case LE:
			ok = lhs <= c.RHS+tol
		case GE:
			ok = lhs >= c.RHS-tol
		case EQ:
			ok = math.Abs(lhs-c.RHS) <= tol
		}
		if !ok {
			return fmt.Errorf("ilp: constraint %q violated: %v %s %v", c.Name, lhs, c.Sense, c.RHS)
		}
	}
	return nil
}

// Status describes the outcome of a solve.
type Status uint8

// Solve outcomes.
const (
	StatusOptimal    Status = iota // proven optimal
	StatusFeasible                 // stopped early with an incumbent
	StatusInfeasible               // no feasible solution exists
	StatusUnbounded                // objective unbounded below
	StatusNoSolution               // stopped early without an incumbent
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	default:
		return "no-solution"
	}
}

// TraceEvent is one sample of the solver's convergence, matching the data
// plotted in the paper's Figure 10: the incumbent (best integer), the best
// bound, and the relative gap at a point in time.
type TraceEvent struct {
	Elapsed   time.Duration
	Incumbent float64 // +Inf while no incumbent exists
	Bound     float64
	Gap       float64 // relative gap in [0,1]; 1 while no incumbent
	Nodes     int
}

// Solution is the result of Solve.
type Solution struct {
	Status  Status
	X       []float64
	Obj     float64
	Bound   float64 // proven lower bound on the optimum
	Gap     float64
	Nodes   int // branch & bound nodes processed
	Iters   int // total simplex iterations
	Elapsed time.Duration
	Trace   []TraceEvent
}

// Options tunes Solve.
type Options struct {
	TimeLimit time.Duration // zero = unlimited
	GapLimit  float64       // stop when relative gap <= this (0 = prove optimality)
	MaxNodes  int           // zero = unlimited
	// Incumbent optionally provides a known feasible solution to prime the
	// search (e.g. the all-VH labeling, which is always feasible).
	Incumbent []float64
	// Workers is the number of branch & bound workers expanding nodes
	// concurrently (<= 1 = serial, the exact classical algorithm). Workers
	// share one best-first heap and one incumbent; the result is identical
	// to serial up to incumbent ties (equal-objective optima and, under a
	// time or node budget, how far the search got). Parallel search is
	// race-clean: the model is only read, and all search state is
	// lock-protected.
	Workers int
	// BestKnown, when non-nil, is polled at every node expansion and must
	// return the objective of the best solution known *outside* this solve
	// (+Inf when none) — e.g. a portfolio sibling's incumbent. Nodes whose
	// LP bound cannot beat it are pruned, but the reported Bound stays
	// honest: externally pruned subtrees never raise it above the external
	// value. The callback must be safe for concurrent use; it is typically
	// an atomic load.
	BestKnown func() float64
}

// DefaultWorkers is the branch & bound worker count the pipeline's solve
// sites use: up to four, but never more than the schedulable CPUs, so on a
// single-core box the search stays the exact serial algorithm (and fully
// deterministic) at zero coordination cost.
func DefaultWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	return w
}

// relGap computes the relative MIP gap.
func relGap(incumbent, bound float64) float64 {
	if math.IsInf(incumbent, 1) {
		return 1
	}
	denom := math.Max(math.Abs(incumbent), 1e-9)
	g := (incumbent - bound) / denom
	if g < 0 {
		return 0
	}
	if g > 1 {
		return 1
	}
	return g
}

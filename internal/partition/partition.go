package partition

import (
	"context"
	"errors"
	"fmt"

	"compact/internal/bdd"
	"compact/internal/defect"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/xbar"
)

// TileResult is one synthesized tile as produced by the TileSynth
// callback: the crossbar design (variables in sub-network input order,
// output rows in sub-network output order) plus the defect-aware
// placement outcome when the synthesis ran against a defective array.
type TileResult struct {
	Design         *xbar.Design
	Placement      *xbar.Placement
	Defects        *defect.Map
	RepairAttempts int
}

// TileSynth synthesizes one sub-function into a single crossbar under
// the per-tile caps, or fails with an error wrapping
// labeling.ErrInfeasible (or bdd.ErrNodeLimit) when the piece does not
// fit — the signal that makes Build cut it smaller. salt varies per
// attempt, letting implementations decorrelate per-tile seeds (defect
// placement) deterministically.
//
// The callback indirection keeps the dependency arrow pointing one way:
// partition knows nothing about internal/core, and core supplies its own
// pipeline as the TileSynth when it falls back to partitioned synthesis.
type TileSynth func(ctx context.Context, sub *logic.Network, salt uint64) (*TileResult, error)

// DefaultMaxTiles bounds a plan's tile count when Options.MaxTiles is 0.
const DefaultMaxTiles = 512

// Options configures Build.
type Options struct {
	// MaxRows/MaxCols are the per-tile dimension caps. Both must be set
	// (MaxRows >= 2, MaxCols >= 1): partitioning exists to satisfy them.
	MaxRows, MaxCols int
	// MaxFanin bounds gate fanin after normalization; 0 derives a value
	// from the caps (a gate's BDD needs roughly fanin+2 nodes even when
	// perfectly balanced, so the default keeps atomic gates well under
	// the semiperimeter budget MaxRows+MaxCols).
	MaxFanin int
	// MaxTileOutputs caps how many outputs a piece may carry into one
	// synthesis attempt (0 = MaxRows-1: each distinct root needs its own
	// wordline plus one for the 1-terminal/input row).
	MaxTileOutputs int
	// MaxTiles aborts runaway decompositions (0 = DefaultMaxTiles).
	MaxTiles int
	// Synth synthesizes one piece; required.
	Synth TileSynth
	// ExhaustiveLimit / Samples / Seed tune the end-to-end parity check
	// of the assembled plan against the source network: exhaustive for
	// networks with at most ExhaustiveLimit inputs (0 = 14), `samples`
	// seeded random vectors beyond (0 = 512).
	ExhaustiveLimit int
	Samples         int
	Seed            uint64
}

func (o Options) withDefaults() Options {
	if o.MaxFanin <= 0 {
		f := (o.MaxRows + o.MaxCols - 2) / 3
		if f < 2 {
			f = 2
		}
		if f > 8 {
			f = 8
		}
		o.MaxFanin = f
	}
	if o.MaxTileOutputs <= 0 {
		o.MaxTileOutputs = o.MaxRows - 1
	}
	if o.MaxTileOutputs < 1 {
		o.MaxTileOutputs = 1
	}
	if o.MaxTiles <= 0 {
		o.MaxTiles = DefaultMaxTiles
	}
	if o.ExhaustiveLimit <= 0 {
		o.ExhaustiveLimit = 14
	}
	if o.Samples <= 0 {
		o.Samples = 512
	}
	return o
}

// splitWorthy reports whether a synthesis failure means "the piece is too
// big for one tile" — the class of errors cutting the piece smaller can
// fix: dimension-cap infeasibility, BDD blowup, and unplaceability on a
// defective array (a smaller tile leaves the placement search more spare
// lines on the same-sized physical tile). Everything else (context
// expiry, solver bugs) aborts the build.
func splitWorthy(err error) bool {
	return errors.Is(err, labeling.ErrInfeasible) ||
		errors.Is(err, bdd.ErrNodeLimit) ||
		errors.As(err, new(*xbar.Unplaceable))
}

// Build partitions nw into a verified multi-crossbar Plan: normalize
// fanins, then repeatedly try to synthesize each pending piece as one
// tile, cutting pieces that fail with an infeasibility signal — first by
// output splitting (halving the piece's output set, duplicating shared
// cone logic where necessary), then by level cuts (slicing a
// single-output cone at its median logic level, with the frontier gates
// becoming inter-tile nets). The assembled plan is validated and checked
// for end-to-end Eval parity against nw before it is returned — a wrong
// plan is never returned.
func Build(ctx context.Context, nw *logic.Network, opts Options) (*Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if nw == nil || nw.NumOutputs() == 0 {
		return nil, fmt.Errorf("partition: network has no outputs")
	}
	if opts.Synth == nil {
		return nil, fmt.Errorf("partition: Options.Synth is required")
	}
	if opts.MaxRows < 2 || opts.MaxCols < 1 {
		return nil, fmt.Errorf("partition: per-tile caps %dx%d too small (need MaxRows >= 2, MaxCols >= 1)", opts.MaxRows, opts.MaxCols)
	}
	opts = opts.withDefaults()

	norm, err := normalize(nw, opts.MaxFanin)
	if err != nil {
		return nil, err
	}
	prefix := netPrefix(norm.InputNames())
	netSeq := 0
	freshNet := func() string {
		n := fmt.Sprintf("%s%d", prefix, netSeq)
		netSeq++
		return n
	}

	// Primary outputs: input-driven outputs read their input net
	// directly; every other distinct driver gate becomes a root port.
	outputs := make([]OutputRef, norm.NumOutputs())
	gateNet := make(map[int]string)
	var rootPorts []port
	for i, id := range norm.Outputs {
		if norm.Gates[id].Type == logic.Input {
			outputs[i] = OutputRef{Name: norm.OutputNames[i], Net: norm.Gates[id].Name}
			continue
		}
		net, ok := gateNet[id]
		if !ok {
			net = freshNet()
			gateNet[id] = net
			rootPorts = append(rootPorts, port{gate: id, net: net})
		}
		outputs[i] = OutputRef{Name: norm.OutputNames[i], Net: net}
	}

	var tiles []Tile
	queue := []piece{}
	if len(rootPorts) > 0 {
		queue = append(queue, piece{outs: rootPorts, cut: map[int]string{}})
	}
	salt := uint64(0)
	pieceSeq := 0
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pc := queue[0]
		queue = queue[1:]
		// Forced pre-synthesis split: a crossbar needs one wordline per
		// distinct root plus the input wordline, so a piece with too many
		// outputs can never fit MaxRows — don't waste a BDD build on it.
		if len(pc.outs) > opts.MaxTileOutputs {
			a, b := outputSplit(pc)
			queue = append(queue, a, b)
			continue
		}
		sub, ci, err := pc.extract(norm, fmt.Sprintf("%s.p%d", norm.Name, pieceSeq))
		pieceSeq++
		if err != nil {
			return nil, err
		}
		tr, err := opts.Synth(ctx, sub, salt)
		salt++
		if err == nil {
			tile, terr := makeTile(sub, tr)
			if terr != nil {
				return nil, terr
			}
			tiles = append(tiles, tile)
			if len(tiles)+len(queue) > opts.MaxTiles {
				return nil, fmt.Errorf("partition: decomposition exceeds %d tiles (caps %dx%d too tight for %s)",
					opts.MaxTiles, opts.MaxRows, opts.MaxCols, nw.Name)
			}
			continue
		}
		if !splitWorthy(err) {
			return nil, err
		}
		if len(pc.outs) > 1 {
			a, b := outputSplit(pc)
			queue = append(queue, a, b)
			continue
		}
		up, down, cerr := levelCut(norm, pc, ci, freshNet)
		if cerr != nil {
			// The piece is a single cone of depth < 2 — one gate — and
			// still does not fit: no cut can help. Surface the synthesis
			// error (which wraps the infeasibility signal) with context.
			return nil, fmt.Errorf("partition: piece %s is atomic but does not fit %dx%d: %w",
				sub.Name, opts.MaxRows, opts.MaxCols, err)
		}
		queue = append(queue, up, down)
		if len(tiles)+len(queue) > opts.MaxTiles {
			return nil, fmt.Errorf("partition: decomposition exceeds %d tiles (caps %dx%d too tight for %s)",
				opts.MaxTiles, opts.MaxRows, opts.MaxCols, nw.Name)
		}
	}

	tiles, err = topoSort(tiles, norm.InputNames())
	if err != nil {
		return nil, err
	}
	for i := range tiles {
		tiles[i].Name = fmt.Sprintf("t%d", i)
	}
	plan := &Plan{
		Name:        nw.Name,
		Fingerprint: nw.Fingerprint(),
		Inputs:      nw.InputNames(),
		Outputs:     outputs,
		Tiles:       tiles,
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("partition: assembled plan invalid: %w", err)
	}
	if err := plan.Verify64(nw.Eval64, opts.ExhaustiveLimit, opts.Samples, opts.Seed|1); err != nil {
		return nil, fmt.Errorf("partition: plan fails parity against the source network: %w", err)
	}
	return plan, nil
}

// makeTile checks a TileResult against its sub-network and wraps it as a
// plan tile: the design's variables must line up with the sub-network's
// inputs (which are the nets to bind) and its output rows with the
// sub-network's outputs.
func makeTile(sub *logic.Network, tr *TileResult) (Tile, error) {
	if tr == nil || tr.Design == nil {
		return Tile{}, fmt.Errorf("partition: TileSynth returned no design for %s", sub.Name)
	}
	d := tr.Design
	if got, want := d.NumVars(), sub.NumInputs(); got != want {
		return Tile{}, fmt.Errorf("partition: tile for %s has %d variables, sub-network %d inputs", sub.Name, got, want)
	}
	if got, want := len(d.OutputRows), sub.NumOutputs(); got != want {
		return Tile{}, fmt.Errorf("partition: tile for %s has %d output rows, sub-network %d outputs", sub.Name, got, want)
	}
	return Tile{
		Inputs:         sub.InputNames(),
		Outputs:        append([]string(nil), sub.OutputNames...),
		Design:         d,
		Placement:      tr.Placement,
		Defects:        tr.Defects,
		RepairAttempts: tr.RepairAttempts,
	}, nil
}

// outputSplit halves a multi-output piece. The two halves share the cut
// map (read-only) and may duplicate shared cone logic — the price of
// making progress when a joint synthesis does not fit.
func outputSplit(pc piece) (piece, piece) {
	k := (len(pc.outs) + 1) / 2
	return piece{outs: pc.outs[:k:k], cut: pc.cut}, piece{outs: pc.outs[k:], cut: pc.cut}
}

// levelCut slices a single-output piece at its median logic level: the
// frontier — internal gates at or below the median that feed gates above
// it — becomes a set of fresh nets; the upstream piece computes the
// frontier, the downstream piece computes the original output with the
// frontier in its cut. Fails when the cone's depth is below 2 (a single
// gate cannot be cut).
func levelCut(norm *logic.Network, pc piece, ci coneInfo, freshNet func() string) (up, down piece, err error) {
	if len(pc.outs) != 1 {
		return up, down, fmt.Errorf("partition: levelCut on %d-output piece", len(pc.outs))
	}
	lv := pieceLevels(norm, ci)
	depth := lv[pc.outs[0].gate]
	if depth < 2 {
		return up, down, fmt.Errorf("partition: cone of depth %d cannot be cut", depth)
	}
	mid := depth / 2
	internal := make(map[int]bool, len(ci.internal))
	for _, id := range ci.internal {
		internal[id] = true
	}
	frontier := make(map[int]bool)
	for _, id := range ci.internal {
		if lv[id] <= mid {
			continue
		}
		for _, f := range norm.Gates[id].Fanin {
			if internal[f] && lv[f] <= mid {
				frontier[f] = true
			}
		}
	}
	if len(frontier) == 0 {
		// Unreachable: a depth >= 2 cone has a gate at level mid feeding
		// one at level mid+1. Guard anyway — an empty cut would loop.
		return up, down, fmt.Errorf("partition: empty frontier in depth-%d cone", depth)
	}
	downCut := make(map[int]string, len(pc.cut)+len(frontier))
	for id, net := range pc.cut {
		downCut[id] = net
	}
	var upPorts []port
	for _, id := range sortedKeys(frontier) {
		net := freshNet()
		upPorts = append(upPorts, port{gate: id, net: net})
		downCut[id] = net
	}
	up = piece{outs: upPorts, cut: pc.cut}
	down = piece{outs: pc.outs, cut: downCut}
	return up, down, nil
}

// topoSort orders tiles so every net is defined before it is read
// (primary inputs are defined from the start). Stable: ready tiles keep
// their discovery order. The splitter's net graph is acyclic by
// construction, so a stall is an internal error.
func topoSort(tiles []Tile, primaryInputs []string) ([]Tile, error) {
	defined := make(map[string]bool, len(primaryInputs))
	for _, in := range primaryInputs {
		defined[in] = true
	}
	out := make([]Tile, 0, len(tiles))
	pending := append([]Tile(nil), tiles...)
	for len(pending) > 0 {
		progressed := false
		rest := pending[:0]
		for _, t := range pending {
			ready := true
			for _, net := range t.Inputs {
				if !defined[net] {
					ready = false
					break
				}
			}
			if !ready {
				rest = append(rest, t)
				continue
			}
			for _, net := range t.Outputs {
				defined[net] = true
			}
			out = append(out, t)
			progressed = true
		}
		pending = rest
		if !progressed {
			return nil, fmt.Errorf("partition: tile net graph has a cycle or an undriven net (%d tiles stuck)", len(pending))
		}
	}
	return out, nil
}

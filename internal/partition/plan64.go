package partition

import (
	"fmt"
	"math/bits"

	"compact/internal/xbar"
)

// Word-parallel cascade evaluation: the multi-crossbar analogue of
// xbar.Design.Eval64. Nets carry one uint64 each — bit b is the net's
// value under assignment b — so one pass through the cascade simulates 64
// input vectors, and Verify64 checks the whole plan at word rate on both
// the cascade and the reference side.

// Eval64 simulates the cascade on 64 input vectors at once. inputs[i] is
// the 64-assignment value word of primary input i (bit b = input i under
// assignment b); the result holds one word per primary output. Tile
// evaluation is checked (Eval64Checked), so wire-decoded plans cannot
// panic on malformed designs.
func (p *Plan) Eval64(inputs []uint64) ([]uint64, error) {
	if len(inputs) != len(p.Inputs) {
		return nil, fmt.Errorf("partition: Eval64 got %d inputs, want %d", len(inputs), len(p.Inputs))
	}
	nets := make(map[string]uint64, len(p.Inputs)+2*len(p.Tiles))
	driven := make(map[string]bool, len(p.Inputs)+2*len(p.Tiles))
	for i, name := range p.Inputs {
		nets[name] = inputs[i]
		driven[name] = true
	}
	for ti := range p.Tiles {
		t := &p.Tiles[ti]
		words := make([]uint64, len(t.Inputs))
		for vi, net := range t.Inputs {
			if !driven[net] {
				return nil, fmt.Errorf("partition: tile %d (%s) reads undriven net %q", ti, t.Name, net)
			}
			words[vi] = nets[net]
		}
		outs, err := t.Design.Eval64Checked(words)
		if err != nil {
			return nil, fmt.Errorf("partition: tile %d (%s): %w", ti, t.Name, err)
		}
		for oi, net := range t.Outputs {
			nets[net] = outs[oi]
			driven[net] = true
		}
	}
	res := make([]uint64, len(p.Outputs))
	for i, o := range p.Outputs {
		if !driven[o.Net] {
			return nil, fmt.Errorf("partition: output %s reads undriven net %q", o.Name, o.Net)
		}
		res[i] = nets[o.Net]
	}
	return res, nil
}

// Verify64 is Verify with a word-parallel reference: ref64 receives one
// word per primary input and must return one word per reference output
// (logic.Network.Eval64 has exactly this shape), so the cascade and the
// reference both run 64 assignments per call. The enumeration discipline
// (exhaustive up to exhaustiveLimit clamped to xbar.MaxExhaustiveBits,
// seeded sampling otherwise) and the first-mismatch witness match Verify.
func (p *Plan) Verify64(ref64 func([]uint64) []uint64, exhaustiveLimit, samples int, seed uint64) error {
	return p.verify(nil, ref64, exhaustiveLimit, samples, seed)
}

// verify is the shared enumeration engine behind Verify and Verify64: it
// walks assignments in 64-wide batches, evaluating the cascade through
// Eval64, and compares against whichever reference was supplied (the
// scalar ref is called once per assignment, ref64 once per batch).
func (p *Plan) verify(ref func([]bool) []bool, ref64 func([]uint64) []uint64, exhaustiveLimit, samples int, seed uint64) error {
	n := len(p.Inputs)
	if n <= exhaustiveLimit {
		if n <= xbar.MaxExhaustiveBits {
			return p.verifyExhaustive(ref, ref64, n)
		}
		// Exhaustive mode was requested but 2^n is unrepresentable; sample
		// instead, and never with zero vectors. Before this clamp the loop
		// bound 1<<n overflowed for n >= 63 and exhaustive verification of
		// wide cascades silently degenerated to an empty (vacuously passing)
		// check.
		if samples <= 0 {
			samples = clampedDefaultSamples
		}
	}
	return p.verifySampled(ref, ref64, n, samples, seed)
}

// clampedDefaultSamples mirrors xbar's: when the exhaustive→sampling
// clamp fires but the caller asked for zero samples, verification must
// never silently become vacuous.
const clampedDefaultSamples = 4096

func (p *Plan) verifyExhaustive(ref func([]bool) []bool, ref64 func([]uint64) []uint64, n int) error {
	total := 1 << uint(n)
	words := make([]uint64, n)
	basis := [6]uint64{
		0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
	}
	for base := 0; base < total; base += 64 {
		cnt := total - base
		if cnt > 64 {
			cnt = 64
		}
		for i := 0; i < n; i++ {
			switch {
			case i < 6:
				words[i] = basis[i]
			case base&(1<<uint(i)) != 0:
				words[i] = ^uint64(0)
			default:
				words[i] = 0
			}
		}
		mk := func(b int) []bool {
			in := make([]bool, n)
			for i := range in {
				in[i] = (base+b)&(1<<uint(i)) != 0
			}
			return in
		}
		if err := p.verifyBatch(ref, ref64, words, cnt, mk); err != nil {
			return err
		}
	}
	return nil
}

func (p *Plan) verifySampled(ref func([]bool) []bool, ref64 func([]uint64) []uint64, n, samples int, seed uint64) error {
	state := seed | 1
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state
	}
	words := make([]uint64, n)
	batch := make([][]bool, 0, 64)
	for s := 0; s < samples; s += 64 {
		cnt := samples - s
		if cnt > 64 {
			cnt = 64
		}
		for i := range words {
			words[i] = 0
		}
		batch = batch[:0]
		// Sample-major, variable-minor LCG order: the exact assignment
		// sequence (and therefore witness) of the scalar Verify loop.
		for b := 0; b < cnt; b++ {
			in := make([]bool, n)
			for i := 0; i < n; i++ {
				if next()>>33&1 != 0 {
					in[i] = true
					words[i] |= 1 << uint(b)
				}
			}
			batch = append(batch, in)
		}
		if err := p.verifyBatch(ref, ref64, words, cnt, func(b int) []bool { return batch[b] }); err != nil {
			return err
		}
	}
	return nil
}

// verifyBatch compares the cascade against the reference on assignments
// 0..cnt-1 of words, reporting the lowest-index mismatch with its
// materialized assignment as witness.
func (p *Plan) verifyBatch(ref func([]bool) []bool, ref64 func([]uint64) []uint64, words []uint64, cnt int, mk func(b int) []bool) error {
	got, err := p.Eval64(words)
	if err != nil {
		return fmt.Errorf("partition: cascade evaluation on %v: %w", mk(0), err)
	}
	if ref64 != nil {
		want := ref64(words)
		if len(got) != len(want) {
			return fmt.Errorf("partition: cascade yields %d outputs, reference %d", len(got), len(want))
		}
		mask := ^uint64(0)
		if cnt < 64 {
			mask = 1<<uint(cnt) - 1
		}
		var mismatch uint64
		for o := range want {
			mismatch |= (want[o] ^ got[o]) & mask
		}
		if mismatch == 0 {
			return nil
		}
		// Report the overall first mismatching assignment and, within it,
		// the first disagreeing output — the scalar loop's witness order.
		b := bits.TrailingZeros64(mismatch)
		for o := range want {
			if (want[o]^got[o])>>uint(b)&1 == 1 {
				return fmt.Errorf("partition: output %s disagrees with the reference on %v",
					p.Outputs[o].Name, mk(b))
			}
		}
		return nil
	}
	for b := 0; b < cnt; b++ {
		in := mk(b)
		want := ref(in)
		if len(got) != len(want) {
			return fmt.Errorf("partition: cascade yields %d outputs, reference %d", len(got), len(want))
		}
		for o := range want {
			if want[o] != (got[o]>>uint(b)&1 == 1) {
				return fmt.Errorf("partition: output %s disagrees with the reference on %v",
					p.Outputs[o].Name, in)
			}
		}
	}
	return nil
}

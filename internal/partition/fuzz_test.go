package partition_test

import (
	"encoding/json"
	"testing"

	"compact/internal/partition"
)

// FuzzPlanJSON drives the plan wire decoder with arbitrary bytes. The
// invariant under fuzz: whatever Unmarshal accepts is a valid plan
// (Validate already ran inside), re-marshals deterministically, survives
// a decode round trip with an identical digest, and evaluates without
// panicking. Everything else must be rejected with an error, never a
// panic. Pinned seeds live in testdata/fuzz/FuzzPlanJSON.
func FuzzPlanJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"v":1,"name":"","fingerprint":"","inputs":["a"],"outputs":[{"name":"f","net":"a"}],"tiles":[]}`))
	f.Add([]byte(`{"v":99,"inputs":[],"outputs":[],"tiles":[]}`))
	f.Add([]byte(`{"v":1,"inputs":["a","a"],"outputs":[{"name":"f","net":"a"}],"tiles":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p partition.Plan
		if err := json.Unmarshal(data, &p); err != nil {
			return
		}
		out, err := json.Marshal(&p)
		if err != nil {
			t.Fatalf("accepted plan failed to marshal: %v", err)
		}
		var q partition.Plan
		if err := json.Unmarshal(out, &q); err != nil {
			t.Fatalf("marshaled plan failed to decode: %v", err)
		}
		if q.Digest() != p.Digest() {
			t.Fatalf("digest not stable across round trip: %s vs %s", q.Digest(), p.Digest())
		}
		in := make([]bool, len(p.Inputs))
		if _, err := p.Eval(in); err != nil {
			t.Fatalf("accepted plan failed Eval: %v", err)
		}
	})
}

package partition

import (
	"encoding/json"
	"fmt"

	"compact/internal/defect"
	"compact/internal/wirelimit"
	"compact/internal/xbar"
)

// The Plan wire format (version 1)
//
//	{
//	  "v": 1,
//	  "name": "cavlc",
//	  "fingerprint": "sha256:…",
//	  "inputs": ["a", "b", …],
//	  "outputs": [{"name": "f0", "net": "cut$3"}, …],
//	  "tiles": [
//	    {
//	      "name": "t0",
//	      "inputs": ["a", "b"],            // net per design variable
//	      "outputs": ["cut$0"],            // net per sensed output row
//	      "design": { xbar.Design wire v1 },
//	      "placement": {"engine": "greedy", "row_perm": […], "col_perm": […]},
//	      "defects": { defect.Map wire v1 },
//	      "repair_attempts": 1
//	    }, …
//	  ]
//	}
//
// placement, defects and repair_attempts are present only for plans
// synthesized against a defective array. UnmarshalJSON validates the
// version, every tile design (via xbar.Design's own validated decode),
// placement shape, and finally the plan-level invariants (Plan.Validate:
// topological net order, single drivers, binding widths), so a decoded
// plan is structurally safe to evaluate.

// planWireVersion is the current Plan wire format version.
const planWireVersion = 1

type planWire struct {
	V           int         `json:"v"`
	Name        string      `json:"name,omitempty"`
	Fingerprint string      `json:"fingerprint,omitempty"`
	Inputs      []string    `json:"inputs"`
	Outputs     []OutputRef `json:"outputs"`
	Tiles       []tileWire  `json:"tiles"`
}

type tileWire struct {
	Name    string   `json:"name"`
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`
	// Design stays raw until its dimensions have been sanity-checked:
	// xbar's decoder allocates rows x cols cells up front, and a plan
	// must reject absurd tile claims before paying that.
	Design         json.RawMessage `json:"design"`
	Placement      *placementWire  `json:"placement,omitempty"`
	Defects        *defect.Map     `json:"defects,omitempty"`
	RepairAttempts int             `json:"repair_attempts,omitempty"`
}

// maxTileCells bounds a decoded tile design's dense cell count. Tiles are
// small by construction (they exist because of per-tile row/column caps),
// so anything near this bound is a hostile or corrupt document, not a
// plan the builder could have emitted.
const maxTileCells = 1 << 24

type placementWire struct {
	Engine  string `json:"engine"`
	RowPerm []int  `json:"row_perm"`
	ColPerm []int  `json:"col_perm"`
}

// MarshalJSON encodes the plan in the wire format above. The encoding is
// deterministic (tiles in cascade order, cells row-major via the design
// encoder), which is what makes Plan.Digest a content hash.
func (p *Plan) MarshalJSON() ([]byte, error) {
	w := planWire{
		V:           planWireVersion,
		Name:        p.Name,
		Fingerprint: p.Fingerprint,
		Inputs:      p.Inputs,
		Outputs:     p.Outputs,
		Tiles:       make([]tileWire, len(p.Tiles)),
	}
	if w.Inputs == nil {
		w.Inputs = []string{}
	}
	if w.Outputs == nil {
		w.Outputs = []OutputRef{}
	}
	for i := range p.Tiles {
		t := &p.Tiles[i]
		if t.Design == nil {
			return nil, fmt.Errorf("partition: tile %d (%s) has no design", i, t.Name)
		}
		dd, err := json.Marshal(t.Design)
		if err != nil {
			return nil, fmt.Errorf("partition: encoding tile %d (%s) design: %w", i, t.Name, err)
		}
		tw := tileWire{
			Name:           t.Name,
			Inputs:         t.Inputs,
			Outputs:        t.Outputs,
			Design:         dd,
			Defects:        t.Defects,
			RepairAttempts: t.RepairAttempts,
		}
		if tw.Inputs == nil {
			tw.Inputs = []string{}
		}
		if tw.Outputs == nil {
			tw.Outputs = []string{}
		}
		if pl := t.Placement; pl != nil {
			tw.Placement = &placementWire{Engine: pl.Engine, RowPerm: pl.RowPerm, ColPerm: pl.ColPerm}
		}
		w.Tiles[i] = tw
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes and validates the wire format. The decoded plan
// satisfies Plan.Validate, every tile design passed xbar's validated
// decode, and placements (when present) have permutation shape — so the
// plan is safe to Eval without further checks.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var w planWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("partition: decoding plan: %w", err)
	}
	if w.V != planWireVersion {
		return fmt.Errorf("partition: unsupported plan wire version %d (want %d)", w.V, planWireVersion)
	}
	np := Plan{
		Name:        w.Name,
		Fingerprint: w.Fingerprint,
		Inputs:      w.Inputs,
		Outputs:     w.Outputs,
		Tiles:       make([]Tile, len(w.Tiles)),
	}
	for i := range w.Tiles {
		tw := &w.Tiles[i]
		if len(tw.Design) == 0 || string(tw.Design) == "null" {
			return fmt.Errorf("partition: tile %d (%s) has no design", i, tw.Name)
		}
		// Peek the claimed dimensions before the full (allocating) decode.
		var dims struct {
			Rows int `json:"rows"`
			Cols int `json:"cols"`
		}
		if err := json.Unmarshal(tw.Design, &dims); err != nil {
			return fmt.Errorf("partition: tile %d (%s) design: %w", i, tw.Name, err)
		}
		if err := wirelimit.CheckCells("tile design", dims.Rows, dims.Cols, maxTileCells); err != nil {
			return fmt.Errorf("partition: tile %d (%s) claims an implausible %dx%d design: %v",
				i, tw.Name, dims.Rows, dims.Cols, err)
		}
		d := new(xbar.Design)
		if err := json.Unmarshal(tw.Design, d); err != nil {
			return fmt.Errorf("partition: tile %d (%s) design: %w", i, tw.Name, err)
		}
		t := Tile{
			Name:           tw.Name,
			Inputs:         tw.Inputs,
			Outputs:        tw.Outputs,
			Design:         d,
			Defects:        tw.Defects,
			RepairAttempts: tw.RepairAttempts,
		}
		if pw := tw.Placement; pw != nil {
			if err := validatePerm(pw.RowPerm, d.Rows); err != nil {
				return fmt.Errorf("partition: tile %d (%s) placement rows: %w", i, tw.Name, err)
			}
			if err := validatePerm(pw.ColPerm, d.Cols); err != nil {
				return fmt.Errorf("partition: tile %d (%s) placement cols: %w", i, tw.Name, err)
			}
			t.Placement = &xbar.Placement{Engine: pw.Engine, RowPerm: pw.RowPerm, ColPerm: pw.ColPerm}
		}
		if err := wirelimit.CheckCount("repair_attempts", tw.RepairAttempts, 0); err != nil {
			return fmt.Errorf("partition: tile %d (%s): %v", i, tw.Name, err)
		}
		np.Tiles[i] = t
	}
	if err := np.Validate(); err != nil {
		return err
	}
	*p = np
	return nil
}

// validatePerm checks that perm binds n logical lines to distinct physical
// lines within the shared wirelimit dimension cap. It is registered as an
// allocbound sanitizer: a permutation that passed it is bounded.
func validatePerm(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("binds %d lines, design has %d", len(perm), n)
	}
	seen := make(map[int]bool, len(perm))
	for i, ph := range perm {
		if err := wirelimit.CheckDim("physical line", ph); err != nil {
			return fmt.Errorf("logical line %d: %v", i, err)
		}
		if seen[ph] {
			return fmt.Errorf("physical line %d bound twice", ph)
		}
		seen[ph] = true
	}
	return nil
}

package partition_test

import (
	"fmt"
	"strings"
	"testing"

	"compact/internal/partition"
	"compact/internal/xbar"
)

// TestPlanEval64MatchesScalar drives the word-parallel cascade evaluator
// with the exhaustive basis words and checks every bit against the scalar
// Eval — the cascade-level analogue of xbar's FuzzEval64VsScalar.
func TestPlanEval64MatchesScalar(t *testing.T) {
	nw := chainNet(t, 9)
	plan := buildPlan(t, nw, 7, 7)
	n := nw.NumInputs()
	total := 1 << uint(n)
	words := make([]uint64, n)
	in := make([]bool, n)
	for base := 0; base < total; base += 64 {
		for i := 0; i < n; i++ {
			switch {
			case i < 6:
				words[i] = [6]uint64{
					0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
					0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
				}[i]
			case base&(1<<uint(i)) != 0:
				words[i] = ^uint64(0)
			default:
				words[i] = 0
			}
		}
		got64, err := plan.Eval64(words)
		if err != nil {
			t.Fatalf("Eval64(base=%d): %v", base, err)
		}
		cnt := total - base
		if cnt > 64 {
			cnt = 64
		}
		for b := 0; b < cnt; b++ {
			for i := range in {
				in[i] = (base+b)&(1<<uint(i)) != 0
			}
			want, err := plan.Eval(in)
			if err != nil {
				t.Fatalf("Eval(%v): %v", in, err)
			}
			for o := range want {
				if want[o] != (got64[o]>>uint(b)&1 == 1) {
					t.Fatalf("assignment %d output %d: scalar %v, word %v",
						base+b, o, want[o], got64[o]>>uint(b)&1 == 1)
				}
			}
		}
	}
}

// TestPlanVerify64AgreesWithVerify runs both verification paths on a
// correct plan and on a deliberately wrong reference, checking the pass /
// fail outcomes and the reported witness output agree.
func TestPlanVerify64AgreesWithVerify(t *testing.T) {
	nw := chainNet(t, 9)
	plan := buildPlan(t, nw, 7, 7)
	if err := plan.Verify(nw.Eval, 14, 0, 1); err != nil {
		t.Fatalf("scalar Verify on a correct plan: %v", err)
	}
	if err := plan.Verify64(nw.Eval64, 14, 0, 1); err != nil {
		t.Fatalf("Verify64 on a correct plan: %v", err)
	}
	// Corrupt the reference: flip output 0 everywhere.
	badRef := func(in []bool) []bool {
		out := nw.Eval(in)
		out[0] = !out[0]
		return out
	}
	badRef64 := func(words []uint64) []uint64 {
		out := nw.Eval64(words)
		out[0] = ^out[0]
		return out
	}
	errScalar := plan.Verify(badRef, 14, 0, 1)
	err64 := plan.Verify64(badRef64, 14, 0, 1)
	if errScalar == nil || err64 == nil {
		t.Fatalf("corrupted reference not detected: scalar %v, word %v", errScalar, err64)
	}
	if errScalar.Error() != err64.Error() {
		t.Fatalf("witness mismatch:\n  scalar: %v\n  word:   %v", errScalar, err64)
	}
	// Sampled mode must agree on the witness too.
	errScalar = plan.Verify(badRef, 0, 300, 7)
	err64 = plan.Verify64(badRef64, 0, 300, 7)
	if errScalar == nil || err64 == nil || errScalar.Error() != err64.Error() {
		t.Fatalf("sampled witness mismatch:\n  scalar: %v\n  word:   %v", errScalar, err64)
	}
}

// wideIdentityPlan hand-builds a single-tile plan with n primary inputs
// whose only output is input 0 passed through a two-cell crossbar: wide
// enough to provoke the 1<<n overflow without synthesizing a huge design.
func wideIdentityPlan(t *testing.T, n int) *partition.Plan {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("x%d", i)
	}
	d := &xbar.Design{
		Rows: 2, Cols: 1,
		Cells: [][]xbar.Entry{
			{{Kind: xbar.Lit, Var: 0}}, // col 0 -> output row, gated by x0
			{{Kind: xbar.On}},          // input row -> col 0
		},
		InputRow:    1,
		OutputRows:  []int{0},
		OutputNames: []string{"y"},
		VarNames:    append([]string(nil), names...),
	}
	plan := &partition.Plan{
		Name:    "wide",
		Inputs:  names,
		Outputs: []partition.OutputRef{{Name: "y", Net: "t0.y"}},
		Tiles: []partition.Tile{{
			Name:    "t0",
			Inputs:  append([]string(nil), names...),
			Outputs: []string{"t0.y"},
			Design:  d,
		}},
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("hand-built plan invalid: %v", err)
	}
	return plan
}

// TestPlanVerifyOverflowClamp pins the 1<<n overflow fix: a plan whose
// input count exceeds MaxExhaustiveBits must fall back to sampling (and
// actually sample — the pre-fix loop bound overflowed to a non-positive
// count for n >= 63, passing vacuously) rather than enumerate 2^n.
func TestPlanVerifyOverflowClamp(t *testing.T) {
	const n = 70
	plan := wideIdentityPlan(t, n)
	calls := 0
	wrongRef := func(in []bool) []bool {
		calls++
		return []bool{!in[0]}
	}
	// exhaustiveLimit 100 > 70 inputs: pre-fix this attempted 1<<70.
	err := plan.Verify(wrongRef, 100, 0, 1)
	if err == nil {
		t.Fatal("clamped Verify passed vacuously against an always-wrong reference")
	}
	if calls == 0 {
		t.Fatal("clamped Verify never called the reference")
	}
	if !strings.Contains(err.Error(), "disagrees") {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := plan.Verify64(func(w []uint64) []uint64 {
		return []uint64{^w[0]}
	}, 100, 0, 1); err == nil {
		t.Fatal("clamped Verify64 passed vacuously against an always-wrong reference")
	}
	// And the correct reference still verifies under the clamp.
	if err := plan.Verify(func(in []bool) []bool { return []bool{in[0]} }, 100, 256, 1); err != nil {
		t.Fatalf("clamped Verify on a correct plan: %v", err)
	}
	if err := plan.Verify64(func(w []uint64) []uint64 { return []uint64{w[0]} }, 100, 256, 1); err != nil {
		t.Fatalf("clamped Verify64 on a correct plan: %v", err)
	}
}

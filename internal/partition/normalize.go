package partition

import (
	"fmt"
	"strings"

	"compact/internal/logic"
)

// Normalization
//
// Partitioning cuts the network at gate boundaries, so a single gate is
// the smallest unit a tile can hold. A 100-input AND would make every cut
// useless — no tile with MaxRows+MaxCols lines can realize it — so the
// network is first rewritten with every wide n-ary gate decomposed into a
// balanced tree of gates with at most maxFanin inputs (associative
// operators decompose directly; NAND/NOR/XNOR become an inverted
// AND/OR/XOR tree). The rewrite preserves the function exactly, keeps
// input declaration order, and is hash-consed by logic.Builder so shared
// sub-expressions stay shared.

// normalize rebuilds nw with all gate fanins at most maxFanin.
func normalize(nw *logic.Network, maxFanin int) (*logic.Network, error) {
	if maxFanin < 2 {
		maxFanin = 2
	}
	b := logic.NewBuilder(nw.Name)
	m := make([]int, len(nw.Gates))
	for gi, g := range nw.Gates {
		xs := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			xs[i] = m[f]
		}
		switch g.Type {
		case logic.Input:
			m[gi] = b.Input(g.Name)
		case logic.Const0:
			m[gi] = b.Const0()
		case logic.Const1:
			m[gi] = b.Const1()
		case logic.Buf:
			m[gi] = b.Buf(xs[0])
		case logic.Not:
			m[gi] = b.Not(xs[0])
		case logic.And:
			m[gi] = treeReduce(b, b.And, xs, maxFanin)
		case logic.Or:
			m[gi] = treeReduce(b, b.Or, xs, maxFanin)
		case logic.Xor:
			m[gi] = treeReduce(b, b.Xor, xs, maxFanin)
		case logic.Nand:
			m[gi] = b.Not(treeReduce(b, b.And, xs, maxFanin))
		case logic.Nor:
			m[gi] = b.Not(treeReduce(b, b.Or, xs, maxFanin))
		case logic.Xnor:
			m[gi] = b.Not(treeReduce(b, b.Xor, xs, maxFanin))
		case logic.Mux:
			m[gi] = b.Mux(xs[0], xs[1], xs[2])
		default:
			return nil, fmt.Errorf("partition: unknown gate type %v at gate %d", g.Type, gi)
		}
	}
	for i, id := range nw.Outputs {
		b.Output(nw.OutputNames[i], m[id])
	}
	return b.Build(), nil
}

// treeReduce folds xs with the n-ary op into a balanced tree of arity at
// most k. Associativity of AND/OR/XOR makes the regrouping exact.
func treeReduce(b *logic.Builder, op func(...int) int, xs []int, k int) int {
	for len(xs) > k {
		next := make([]int, 0, (len(xs)+k-1)/k)
		for i := 0; i < len(xs); i += k {
			end := i + k
			if end > len(xs) {
				end = len(xs)
			}
			next = append(next, op(xs[i:end]...))
		}
		xs = next
	}
	return op(xs...)
}

// netPrefix picks a prefix for generated inter-tile net names that cannot
// collide with any primary input name (the only other nets a plan knows).
func netPrefix(inputNames []string) string {
	prefix := "cut$"
	for {
		clash := false
		for _, n := range inputNames {
			if strings.HasPrefix(n, prefix) {
				clash = true
				break
			}
		}
		if !clash {
			return prefix
		}
		prefix = "$" + prefix
	}
}

// port is one output of a piece: the normalized-network gate computing it
// and the plan-level net carrying its value.
type port struct {
	gate int
	net  string
}

// piece is a pending unit of work for the splitter: a set of output
// ports plus the cut — normalized gates whose values arrive as nets from
// other pieces. The cut map is shared between pieces and never mutated;
// level cuts extend it copy-on-write.
type piece struct {
	outs []port
	cut  map[int]string
}

// coneInfo is the extracted structure of a piece: the internal gates (in
// ascending id order) and the boundary gates feeding them (primary
// inputs of the normalized network, or cut gates), also ascending.
type coneInfo struct {
	internal []int
	boundary []int
}

// cone walks the piece's transitive fanin in the normalized network,
// stopping at boundary gates (inputs and cut gates).
func (pc *piece) cone(norm *logic.Network) coneInfo {
	internal := make(map[int]bool)
	boundary := make(map[int]bool)
	var stack []int
	seen := make(map[int]bool)
	for _, o := range pc.outs {
		if !seen[o.gate] {
			seen[o.gate] = true
			stack = append(stack, o.gate)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g := norm.Gates[id]
		if g.Type == logic.Input {
			boundary[id] = true
			continue
		}
		if _, cut := pc.cut[id]; cut {
			boundary[id] = true
			continue
		}
		internal[id] = true
		for _, f := range g.Fanin {
			if !seen[f] {
				seen[f] = true
				stack = append(stack, f)
			}
		}
	}
	return coneInfo{internal: sortedKeys(internal), boundary: sortedKeys(boundary)}
}

func sortedKeys(set map[int]bool) []int {
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	// Insertion sort keeps this dependency-free; cone sizes are tile-sized.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// netName resolves the net carried by a boundary gate: the input's name
// for primary inputs, the cut net otherwise.
func (pc *piece) netName(norm *logic.Network, id int) string {
	if norm.Gates[id].Type == logic.Input {
		return norm.Gates[id].Name
	}
	return pc.cut[id]
}

// extract materializes the piece as a standalone logic.Network: boundary
// nets become primary inputs (ascending gate-id order), piece outputs
// become primary outputs named by their nets. The sub-network computes
// exactly the piece's function of its boundary nets, so synthesizing it
// with the ordinary pipeline yields a tile whose VarNames are the nets to
// bind.
func (pc *piece) extract(norm *logic.Network, name string) (*logic.Network, coneInfo, error) {
	ci := pc.cone(norm)
	b := logic.NewBuilder(name)
	m := make(map[int]int, len(ci.internal)+len(ci.boundary))
	for _, id := range ci.boundary {
		m[id] = b.Input(pc.netName(norm, id))
	}
	for _, id := range ci.internal {
		g := norm.Gates[id]
		xs := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			mf, ok := m[f]
			if !ok {
				return nil, ci, fmt.Errorf("partition: internal gate %d reads unextracted gate %d", id, f)
			}
			xs[i] = mf
		}
		switch g.Type {
		case logic.Const0:
			m[id] = b.Const0()
		case logic.Const1:
			m[id] = b.Const1()
		case logic.Buf:
			m[id] = b.Buf(xs[0])
		case logic.Not:
			m[id] = b.Not(xs[0])
		case logic.And:
			m[id] = b.And(xs...)
		case logic.Or:
			m[id] = b.Or(xs...)
		case logic.Nand:
			m[id] = b.Nand(xs...)
		case logic.Nor:
			m[id] = b.Nor(xs...)
		case logic.Xor:
			m[id] = b.Xor(xs...)
		case logic.Xnor:
			m[id] = b.Xnor(xs...)
		case logic.Mux:
			m[id] = b.Mux(xs[0], xs[1], xs[2])
		default:
			return nil, ci, fmt.Errorf("partition: unexpected gate type %v at gate %d", g.Type, id)
		}
	}
	for _, o := range pc.outs {
		mo, ok := m[o.gate]
		if !ok {
			return nil, ci, fmt.Errorf("partition: piece output gate %d not in its own cone", o.gate)
		}
		b.Output(o.net, mo)
	}
	return b.Build(), ci, nil
}

// levels computes piece-local logic levels: boundary gates are level 0,
// every internal gate 1 + max fanin level. Returned map covers internal
// gates only.
func pieceLevels(norm *logic.Network, ci coneInfo) map[int]int {
	lv := make(map[int]int, len(ci.internal))
	for _, id := range ci.internal { // ascending ids = topological
		m := 0
		for _, f := range norm.Gates[id].Fanin {
			if l, ok := lv[f]; ok && l > m {
				m = l
			}
		}
		lv[id] = m + 1
	}
	return lv
}

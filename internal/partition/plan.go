// Package partition implements multi-crossbar synthesis for functions
// that cannot fit one tile: when per-tile MaxRows/MaxCols caps make the
// single-crossbar VH-labeling infeasible, the logic network is cut at
// selected nets into sub-functions, each sub-function is synthesized into
// its own crossbar with the existing pipeline, and the result is a Plan —
// a cascade of tiles connected by named inter-tile nets.
//
// Cascade semantics: tiles are evaluated in topological order. A tile's
// literal variables are driven by nets — primary inputs or the sensed
// outputs of upstream tiles — and its sensed output wordlines define the
// downstream nets. This models the standard flow-based-computing cascade:
// each tile is programmed from the current net values, evaluated once,
// and its output read-outs become ordinary digital signals that program
// the next tile's memristors.
//
// A Plan carries a versioned validated JSON wire format and a content
// digest, and can be re-verified end to end: Eval simulates the cascade,
// Verify compares against a reference evaluator, and FormalVerify proves
// equivalence for all input assignments by composing the tiles' symbolic
// sneak-path functions in one BDD manager.
package partition

import (
	"crypto/sha256"
	"fmt"

	"compact/internal/bdd"
	"compact/internal/defect"
	"compact/internal/logic"
	"compact/internal/xbar"
)

// OutputRef names one primary output of a Plan and the net that carries
// its value after cascade evaluation.
type OutputRef struct {
	Name string `json:"name"`
	Net  string `json:"net"`
}

// Tile is one crossbar of the cascade plus its net binding. Inputs holds
// the net driving each design variable (indexed like Design.VarNames);
// Outputs holds the net defined by each sensed output row (indexed like
// Design.OutputRows).
type Tile struct {
	Name    string
	Inputs  []string
	Outputs []string
	Design  *xbar.Design
	// Placement, Defects and RepairAttempts record the per-tile
	// defect-aware placement outcome, when synthesis ran against a
	// defective array (same contract as core.Result).
	Placement      *xbar.Placement
	Defects        *defect.Map
	RepairAttempts int
}

// Plan is a verified multi-crossbar realization of one Boolean function:
// tiles in topological cascade order plus the net graph connecting them.
type Plan struct {
	// Name is the source network's name.
	Name string
	// Fingerprint is the source network's canonical content hash
	// (logic.Network.Fingerprint), tying the plan to the function it
	// realizes.
	Fingerprint string
	// Inputs are the primary input names, in network declaration order.
	// They double as net names driving tile literals.
	Inputs []string
	// Outputs maps each primary output to the net carrying its value.
	Outputs []OutputRef
	// Tiles are the crossbars, topologically ordered: every net a tile
	// reads is a primary input or an output of an earlier tile.
	Tiles []Tile
}

// Stats summarizes a plan's hardware cost.
type Stats struct {
	Tiles    int // number of crossbars
	CutNets  int // inter-tile nets (primary outputs included when routed)
	TotalS   int // sum of per-tile semiperimeters
	MaxRows  int // largest tile row count
	MaxCols  int // largest tile column count
	Devices  int // total programmed devices (literal + stuck-on cells)
	LitCells int // total literal cells (power proxy)
	// Depth is the cascade depth: the longest tile chain, the plan-level
	// delay proxy (each stage must be evaluated before the next can be
	// programmed).
	Depth int
}

// Stats computes the plan's summary statistics.
func (p *Plan) Stats() Stats {
	st := Stats{Tiles: len(p.Tiles)}
	primary := make(map[string]bool, len(p.Inputs))
	for _, in := range p.Inputs {
		primary[in] = true
	}
	nets := make(map[string]bool)
	// stage[net] is the cascade depth at which the net becomes available.
	stage := make(map[string]int, len(p.Inputs))
	for _, t := range p.Tiles {
		ts := t.Design.Stats()
		st.TotalS += ts.S
		st.Devices += ts.LitCells + ts.OnCells
		st.LitCells += ts.LitCells
		if ts.Rows > st.MaxRows {
			st.MaxRows = ts.Rows
		}
		if ts.Cols > st.MaxCols {
			st.MaxCols = ts.Cols
		}
		d := 0
		for _, net := range t.Inputs {
			if !primary[net] && stage[net] > d {
				d = stage[net]
			}
		}
		d++
		for _, net := range t.Outputs {
			nets[net] = true
			stage[net] = d
		}
		if d > st.Depth {
			st.Depth = d
		}
	}
	st.CutNets = len(nets)
	return st
}

// Validate checks the plan's structural invariants: tiles are
// topologically ordered over well-formed net references, every net has
// exactly one driver, tile net bindings cover their designs' variables
// and output rows, and every primary output is driven. Plans produced by
// Build always validate; wire-decoded plans are validated on decode.
func (p *Plan) Validate() error {
	defined := make(map[string]bool, len(p.Inputs))
	for _, in := range p.Inputs {
		if in == "" {
			return fmt.Errorf("partition: empty primary input name")
		}
		if defined[in] {
			return fmt.Errorf("partition: duplicate primary input %q", in)
		}
		defined[in] = true
	}
	for ti := range p.Tiles {
		t := &p.Tiles[ti]
		if t.Design == nil {
			return fmt.Errorf("partition: tile %d (%s) has no design", ti, t.Name)
		}
		if got, want := len(t.Inputs), t.Design.NumVars(); got != want {
			return fmt.Errorf("partition: tile %d (%s) binds %d input nets for %d design variables", ti, t.Name, got, want)
		}
		if got, want := len(t.Outputs), len(t.Design.OutputRows); got != want {
			return fmt.Errorf("partition: tile %d (%s) binds %d output nets for %d output rows", ti, t.Name, got, want)
		}
		for vi, net := range t.Inputs {
			if !defined[net] {
				return fmt.Errorf("partition: tile %d (%s) reads undefined net %q (variable %d) — tiles out of cascade order?", ti, t.Name, net, vi)
			}
		}
		for _, net := range t.Outputs {
			if net == "" {
				return fmt.Errorf("partition: tile %d (%s) defines an unnamed net", ti, t.Name)
			}
			if defined[net] {
				return fmt.Errorf("partition: net %q has more than one driver", net)
			}
			defined[net] = true
		}
	}
	if len(p.Outputs) == 0 {
		return fmt.Errorf("partition: plan has no outputs")
	}
	for i, o := range p.Outputs {
		if !defined[o.Net] {
			return fmt.Errorf("partition: output %d (%s) reads undefined net %q", i, o.Name, o.Net)
		}
	}
	return nil
}

// Eval simulates the cascade on one input vector (one bool per primary
// input, in declaration order) and returns one bool per primary output.
// Tile evaluation is checked (EvalChecked), so wire-decoded plans cannot
// panic on malformed designs.
func (p *Plan) Eval(inputs []bool) ([]bool, error) {
	if len(inputs) != len(p.Inputs) {
		return nil, fmt.Errorf("partition: Eval got %d inputs, want %d", len(inputs), len(p.Inputs))
	}
	nets := make(map[string]bool, len(p.Inputs)+2*len(p.Tiles))
	for i, name := range p.Inputs {
		nets[name] = inputs[i]
	}
	for ti := range p.Tiles {
		t := &p.Tiles[ti]
		assignment := make([]bool, len(t.Inputs))
		for vi, net := range t.Inputs {
			v, ok := nets[net]
			if !ok {
				return nil, fmt.Errorf("partition: tile %d (%s) reads undriven net %q", ti, t.Name, net)
			}
			assignment[vi] = v
		}
		outs, err := t.Design.EvalChecked(assignment)
		if err != nil {
			return nil, fmt.Errorf("partition: tile %d (%s): %w", ti, t.Name, err)
		}
		for oi, net := range t.Outputs {
			nets[net] = outs[oi]
		}
	}
	res := make([]bool, len(p.Outputs))
	for i, o := range p.Outputs {
		v, ok := nets[o.Net]
		if !ok {
			return nil, fmt.Errorf("partition: output %s reads undriven net %q", o.Name, o.Net)
		}
		res[i] = v
	}
	return res, nil
}

// Verify checks the cascade against a reference evaluator over all 2^n
// assignments when the input count is at most exhaustiveLimit (clamped to
// xbar.MaxExhaustiveBits — wider requests fall back to sampling instead
// of overflowing the enumeration), or over `samples` seeded pseudo-random
// vectors otherwise (same discipline as xbar.Design.VerifyAgainst). It
// returns the first mismatching assignment as the error's witness, or nil
// if none is found. The cascade side runs 64 assignments per pass via
// Eval64; use Verify64 when the reference is word-parallel too.
func (p *Plan) Verify(ref func([]bool) []bool, exhaustiveLimit, samples int, seed uint64) error {
	return p.verify(ref, nil, exhaustiveLimit, samples, seed)
}

// FormalVerify proves, for every one of the 2^n input assignments, that
// the cascade computes exactly the same functions as the network, by
// symbolic composition: every tile's sneak-path closure is run in one
// shared BDD manager over the primary inputs, with each literal
// substituted by the BDD function of the net driving it. The composed
// output functions are compared (by canonical-node identity) against the
// network's own BDDs. nodeLimit bounds the verifier's BDD (0 = 4M);
// cascades whose closure blows past it return bdd.ErrNodeLimit.
func (p *Plan) FormalVerify(nw *logic.Network, nodeLimit int) (err error) {
	if nodeLimit <= 0 {
		nodeLimit = 4_000_000
	}
	if got, want := len(p.Inputs), nw.NumInputs(); got != want {
		return fmt.Errorf("partition: plan has %d inputs, network %d", got, want)
	}
	if got, want := len(p.Outputs), nw.NumOutputs(); got != want {
		return fmt.Errorf("partition: plan has %d outputs, network %d", got, want)
	}
	m := bdd.New(p.Inputs)
	m.SetNodeLimit(nodeLimit)
	defer func() {
		if r := recover(); r != nil {
			err = bdd.BoundaryError(r)
		}
	}()

	// nets maps every available net to its function over primary inputs.
	nets := make(map[string]bdd.Node, len(p.Inputs)+2*len(p.Tiles))
	for i, name := range p.Inputs {
		nets[name] = m.Var(i)
	}
	for ti := range p.Tiles {
		t := &p.Tiles[ti]
		outs, terr := symbolicCascadeOutputs(m, t, nets)
		if terr != nil {
			return fmt.Errorf("partition: tile %d (%s): %w", ti, t.Name, terr)
		}
		for oi, net := range t.Outputs {
			nets[net] = outs[oi]
		}
	}
	refOuts, terr := m.BuildRoots(nw, nil)
	if terr != nil {
		return terr
	}
	for o, ref := range refOuts {
		f, ok := nets[p.Outputs[o].Net]
		if !ok {
			return fmt.Errorf("partition: output %s reads undriven net %q", p.Outputs[o].Name, p.Outputs[o].Net)
		}
		if f == ref {
			continue
		}
		witness := m.AnySat(m.Xor(f, ref))
		return fmt.Errorf("partition: output %q differs from the network, e.g. on input %v",
			nw.OutputNames[o], witness[:nw.NumInputs()])
	}
	return nil
}

// symbolicCascadeOutputs runs one tile's symbolic sneak-path fixpoint in
// the shared manager m, with literal cells substituted by the net
// functions feeding the tile — the composition step that makes the whole
// cascade's functions canonical BDDs over the primary inputs.
func symbolicCascadeOutputs(m *bdd.Manager, t *Tile, nets map[string]bdd.Node) ([]bdd.Node, error) {
	d := t.Design
	// fns[v] is the function driving design variable v.
	fns := make([]bdd.Node, len(t.Inputs))
	for vi, net := range t.Inputs {
		f, ok := nets[net]
		if !ok {
			return nil, fmt.Errorf("reads undriven net %q", net)
		}
		fns[vi] = f
	}
	lit := func(e xbar.Entry) bdd.Node {
		switch e.Kind {
		case xbar.On:
			return bdd.One
		case xbar.Lit:
			f := fns[e.Var]
			if e.Neg {
				return m.Not(f)
			}
			return f
		}
		return bdd.Zero
	}
	nWires := d.Rows + d.Cols
	conn := make([]bdd.Node, nWires)
	for i := range conn {
		conn[i] = bdd.Zero
	}
	conn[d.InputRow] = bdd.One
	cells := sparseNonOff(d)
	for {
		changed := false
		for _, sc := range cells {
			l := lit(sc.e)
			r, c := sc.row, d.Rows+sc.col
			if nr := m.Or(conn[r], m.And(l, conn[c])); nr != conn[r] {
				conn[r] = nr
				changed = true
			}
			if nc := m.Or(conn[c], m.And(l, conn[r])); nc != conn[c] {
				conn[c] = nc
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	outs := make([]bdd.Node, len(d.OutputRows))
	for i, r := range d.OutputRows {
		outs[i] = conn[r]
	}
	return outs, nil
}

type planCell struct {
	row, col int
	e        xbar.Entry
}

// sparseNonOff lists a design's non-Off cells in row-major order (the
// deterministic order the fixpoint iterates in).
func sparseNonOff(d *xbar.Design) []planCell {
	var cells []planCell
	for r, row := range d.Cells {
		for c, e := range row {
			if e.Kind != xbar.Off {
				cells = append(cells, planCell{r, c, e})
			}
		}
	}
	return cells
}

// Digest returns a stable content hash of the plan in "sha256:<hex>"
// form: the canonical wire encoding hashed. Two plans with identical
// structure, designs and placements share a digest — the caching identity
// of a synthesis outcome.
func (p *Plan) Digest() string {
	data, err := p.MarshalJSON()
	if err != nil {
		// Marshaling an in-memory plan only fails on a nil tile design,
		// which Validate rejects; degrade to a digest over the error text
		// so the method stays total.
		sum := sha256.Sum256([]byte("plan-error|" + err.Error()))
		return fmt.Sprintf("sha256:%x", sum)
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("sha256:%x", sum)
}

// TileNames returns the tile names in cascade order (a convenience for
// reporting).
func (p *Plan) TileNames() []string {
	names := make([]string, len(p.Tiles))
	for i := range p.Tiles {
		names[i] = p.Tiles[i].Name
	}
	return names
}

package partition

import (
	"fmt"
	"testing"

	"compact/internal/logic"
)

func wideNet(t *testing.T) *logic.Network {
	t.Helper()
	b := logic.NewBuilder("wide")
	xs := b.Inputs("x", 9)
	b.Output("a", b.And(xs...))
	b.Output("o", b.Or(xs...))
	b.Output("na", b.Nand(xs[:7]...))
	b.Output("no", b.Nor(xs[:5]...))
	b.Output("p", b.Xor(xs...))
	b.Output("np", b.Xnor(xs[:6]...))
	b.Output("m", b.Mux(xs[0], b.And(xs[1], xs[2], xs[3], xs[4]), b.Or(xs[5], xs[6], xs[7], xs[8])))
	return b.Build()
}

func TestNormalizePreservesFunctionAndCapsFanin(t *testing.T) {
	nw := wideNet(t)
	for _, k := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("maxFanin=%d", k), func(t *testing.T) {
			norm, err := normalize(nw, k)
			if err != nil {
				t.Fatal(err)
			}
			for id, g := range norm.Gates {
				if len(g.Fanin) > k && g.Type != logic.Mux {
					t.Fatalf("gate %d (%s) has fanin %d > %d", id, g.Type, len(g.Fanin), k)
				}
			}
			n := nw.NumInputs()
			in := make([]bool, n)
			for v := 0; v < 1<<n; v++ {
				for i := range in {
					in[i] = v>>i&1 == 1
				}
				want, got := nw.Eval(in), norm.Eval(in)
				for j := range want {
					if want[j] != got[j] {
						t.Fatalf("vector %0*b output %d: want %v got %v", n, v, j, want[j], got[j])
					}
				}
			}
		})
	}
}

func TestNetPrefixAvoidsInputClash(t *testing.T) {
	if p := netPrefix([]string{"a", "b"}); p != "cut$" {
		t.Fatalf("plain inputs: got prefix %q", p)
	}
	p := netPrefix([]string{"cut$3", "b"})
	if p == "cut$" {
		t.Fatal("prefix must dodge an input already named cut$3")
	}
	for _, in := range []string{"cut$3", "b"} {
		if len(in) >= len(p) && in[:len(p)] == p {
			t.Fatalf("input %q still has generated prefix %q", in, p)
		}
	}
}

package partition_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"compact/internal/core"
	"compact/internal/logic"
	"compact/internal/partition"
)

// coreSynth adapts the full synthesis pipeline as the tile synthesizer,
// mirroring what core.SynthesizeContext does for the Partition fallback.
func coreSynth(maxRows, maxCols int) partition.TileSynth {
	return func(ctx context.Context, sub *logic.Network, salt uint64) (*partition.TileResult, error) {
		res, err := core.SynthesizeContext(ctx, sub, core.Options{MaxRows: maxRows, MaxCols: maxCols})
		if err != nil {
			return nil, err
		}
		return &partition.TileResult{Design: res.Design}, nil
	}
}

// chainNet builds prefix parities with conjunction taps — a function
// whose shared BDD grows with n, so small caps genuinely force cuts.
func chainNet(t testing.TB, n int) *logic.Network {
	t.Helper()
	b := logic.NewBuilder("chain")
	xs := b.Inputs("x", n)
	acc := xs[0]
	for i := 1; i < n; i++ {
		acc = b.Xor(acc, xs[i])
		if i%2 == 0 {
			b.Output(fmt.Sprintf("p%d", i), b.And(acc, xs[i-1]))
		}
	}
	b.Output("p", acc)
	return b.Build()
}

func buildPlan(t testing.TB, nw *logic.Network, r, c int) *partition.Plan {
	t.Helper()
	plan, err := partition.Build(context.Background(), nw, partition.Options{
		MaxRows: r, MaxCols: c, Synth: coreSynth(r, c),
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestBuildCascadeEvalParity(t *testing.T) {
	nw := chainNet(t, 9)
	plan := buildPlan(t, nw, 7, 7)
	if len(plan.Tiles) < 2 {
		t.Fatalf("expected a multi-tile cascade under 7x7 caps, got %d tile(s)", len(plan.Tiles))
	}
	st := plan.Stats()
	if st.MaxRows > 7 || st.MaxCols > 7 {
		t.Fatalf("tile dimensions %dx%d exceed the 7x7 caps", st.MaxRows, st.MaxCols)
	}
	in := make([]bool, nw.NumInputs())
	for v := 0; v < 1<<nw.NumInputs(); v++ {
		for i := range in {
			in[i] = v>>i&1 == 1
		}
		got, err := plan.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		want := nw.Eval(in)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("vector %b output %d: plan %v network %v", v, j, got[j], want[j])
			}
		}
	}
	if err := plan.FormalVerify(nw, 0); err != nil {
		t.Fatalf("cascade proof failed: %v", err)
	}
}

func TestBuildSingleTileWhenFits(t *testing.T) {
	nw := chainNet(t, 4)
	plan := buildPlan(t, nw, 64, 64)
	if len(plan.Tiles) != 1 {
		t.Fatalf("roomy caps should give one tile, got %d", len(plan.Tiles))
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	nw := chainNet(t, 9)
	plan := buildPlan(t, nw, 7, 7)
	data, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	var back partition.Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Digest() != plan.Digest() {
		t.Fatalf("digest changed across round trip: %s vs %s", back.Digest(), plan.Digest())
	}
	if err := back.Verify(nw.Eval, 20, 0, 1); err != nil {
		t.Fatalf("decoded plan lost Eval parity: %v", err)
	}
	// Marshaling must be deterministic — the digest is content addressing.
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("re-marshaled plan bytes differ")
	}
}

func TestPlanUnmarshalRejects(t *testing.T) {
	nw := chainNet(t, 9)
	plan := buildPlan(t, nw, 7, 7)
	good, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mangle func(doc map[string]json.RawMessage)
	}{
		{"bad version", func(doc map[string]json.RawMessage) { doc["v"] = json.RawMessage("99") }},
		{"missing tiles", func(doc map[string]json.RawMessage) { doc["tiles"] = json.RawMessage("[]") }},
		{"missing inputs", func(doc map[string]json.RawMessage) { delete(doc, "inputs") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var doc map[string]json.RawMessage
			if err := json.Unmarshal(good, &doc); err != nil {
				t.Fatal(err)
			}
			tc.mangle(doc)
			mangled, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			var p partition.Plan
			if err := json.Unmarshal(mangled, &p); err == nil {
				t.Fatal("mangled plan unmarshaled without error")
			}
		})
	}
}

func TestValidateRejectsBrokenCascades(t *testing.T) {
	nw := chainNet(t, 9)
	plan := buildPlan(t, nw, 7, 7)
	breakers := []struct {
		name  string
		apply func(p *partition.Plan)
		want  string
	}{
		{"dangling tile input", func(p *partition.Plan) { p.Tiles[0].Inputs[0] = "no_such_net" }, "undefined net"},
		{"duplicate primary input", func(p *partition.Plan) { p.Inputs[1] = p.Inputs[0] }, "duplicate"},
		{"dangling plan output", func(p *partition.Plan) { p.Outputs[0].Net = "no_such_net" }, "undefined net"},
		{"nil tile design", func(p *partition.Plan) { p.Tiles[0].Design = nil }, "no design"},
		{"double-driven net", func(p *partition.Plan) {
			last := len(p.Tiles) - 1
			p.Tiles[last].Outputs[0] = p.Tiles[0].Outputs[0]
		}, "more than one driver"},
	}
	for _, tc := range breakers {
		t.Run(tc.name, func(t *testing.T) {
			data, err := json.Marshal(plan)
			if err != nil {
				t.Fatal(err)
			}
			var p partition.Plan
			if err := json.Unmarshal(data, &p); err != nil {
				t.Fatal(err)
			}
			tc.apply(&p)
			err = p.Validate()
			if err == nil {
				t.Fatal("broken plan validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestBuildRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := partition.Build(ctx, chainNet(t, 9), partition.Options{
		MaxRows: 7, MaxCols: 7, Synth: coreSynth(7, 7),
	})
	if err == nil {
		t.Fatal("Build ignored a canceled context")
	}
}

package invariant

import (
	"errors"
	"strings"
	"testing"

	"compact/internal/graph"
)

// cycle returns the cycle graph C_n.
func cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n); err != nil {
			panic(err)
		}
	}
	return g
}

func TestErrorShape(t *testing.T) {
	err := Violationf("oct.residual-bipartite", "edge (%d,%d)", 1, 2)
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("Violationf result is not an *Error: %T", err)
	}
	if ie.Check != "oct.residual-bipartite" {
		t.Errorf("Check = %q", ie.Check)
	}
	msg := err.Error()
	if !strings.Contains(msg, "oct.residual-bipartite") || !strings.Contains(msg, "edge (1,2)") {
		t.Errorf("Error() = %q, want check name and detail", msg)
	}
}

func TestResidualBipartite(t *testing.T) {
	g := cycle(5) // odd cycle: removing one vertex leaves a path
	oct := map[int]bool{0: true}
	side := []int{-1, 0, 1, 0, 1}
	if err := ResidualBipartite(g, oct, side); err != nil {
		t.Errorf("valid OCT rejected: %v", err)
	}

	// Corruption 1: empty transversal on an odd cycle — some residual edge
	// must join equal sides whatever the coloring.
	if err := ResidualBipartite(g, map[int]bool{}, []int{0, 1, 0, 1, 0}); err == nil {
		t.Error("odd cycle with empty transversal passed")
	}
	// Corruption 2: transversal vertex not marked -1.
	if err := ResidualBipartite(g, oct, []int{0, 0, 1, 0, 1}); err == nil {
		t.Error("transversal vertex with side 0 passed")
	}
	// Corruption 3: residual vertex carrying the -1 marker.
	if err := ResidualBipartite(g, oct, []int{-1, -1, 1, 0, 1}); err == nil {
		t.Error("residual vertex with side -1 passed")
	}
	// Corruption 4: side slice length mismatch.
	if err := ResidualBipartite(g, oct, []int{-1, 0, 1}); err == nil {
		t.Error("short side slice passed")
	}
}

func TestEdgesSpanHV(t *testing.T) {
	g := cycle(4)
	// Proper alternating H/V labeling of C4.
	h := map[int]bool{0: true, 2: true}
	hasH := func(v int) bool { return h[v] }
	hasV := func(v int) bool { return !h[v] }
	if err := EdgesSpanHV(g, hasH, hasV); err != nil {
		t.Errorf("valid labeling rejected: %v", err)
	}
	// Corruption: all nodes H-only — every edge is H–H, unrealizable.
	allH := func(int) bool { return true }
	noV := func(int) bool { return false }
	err := EdgesSpanHV(g, allH, noV)
	if err == nil {
		t.Fatal("H-H edges passed")
	}
	var ie *Error
	if !errors.As(err, &ie) || ie.Check != "labeling.edge-spans-hv" {
		t.Errorf("wrong error: %v", err)
	}
}

func TestSemiperimeter(t *testing.T) {
	if err := Semiperimeter(5, 2, 7); err != nil {
		t.Errorf("S = n + k rejected: %v", err)
	}
	if err := Semiperimeter(5, 2, 8); err == nil {
		t.Error("S != n + k passed")
	}
}

func TestGridDims(t *testing.T) {
	if err := GridDims(3, 4, 3, 4); err != nil {
		t.Errorf("matching dims rejected: %v", err)
	}
	if err := GridDims(3, 4, 4, 3); err == nil {
		t.Error("swapped dims passed")
	}
}

func TestProgrammedCells(t *testing.T) {
	if err := ProgrammedCells(7, 5, 2); err != nil {
		t.Errorf("edges + stitches rejected: %v", err)
	}
	if err := ProgrammedCells(6, 5, 2); err == nil {
		t.Error("lost device passed")
	}
	if err := ProgrammedCells(8, 5, 2); err == nil {
		t.Error("invented device passed")
	}
}

func TestBoundedValues(t *testing.T) {
	lo := []float64{0, 0, -1}
	up := []float64{1, 2, 1}
	if err := BoundedValues("t", []float64{0, 2, -1}, lo, up, 1e-9); err != nil {
		t.Errorf("in-box solution rejected: %v", err)
	}
	// Within tolerance of a bound.
	if err := BoundedValues("t", []float64{1 + 1e-10, 0, 0}, lo, up, 1e-9); err != nil {
		t.Errorf("tolerance not honored: %v", err)
	}
	// Corruption: clear bound violation.
	if err := BoundedValues("t", []float64{1.5, 0, 0}, lo, up, 1e-9); err == nil {
		t.Error("out-of-box value passed")
	}
	// Corruption: more values than bounds.
	if err := BoundedValues("t", []float64{0, 0, 0, 0}, lo, up, 1e-9); err == nil {
		t.Error("length mismatch passed")
	}
}

// Package invariant implements cheap, always-on postcondition checks for
// the COMPACT pipeline. Each stage re-verifies the mathematical property
// its result is supposed to carry — the odd-cycle-transversal residual is
// 2-colorable, a VH-labeling realizes every BDD edge with semiperimeter
// S = n + k, a crossbar design matches its labeling cell for cell, an LP
// solution respects its bounds — and converts any breach into a structured
// *Error instead of silently propagating a corrupt intermediate.
//
// Every check is linear (or better) in the size of its input, so they stay
// enabled in production builds: the pipeline stages they guard are
// NP-hard searches whose cost dwarfs an O(V+E) scan.
package invariant

import (
	"fmt"

	"compact/internal/graph"
)

// Error is a structured invariant violation: which check failed and how.
type Error struct {
	Check  string // stable identifier, e.g. "oct.residual-bipartite"
	Detail string
}

func (e *Error) Error() string {
	return fmt.Sprintf("invariant %s violated: %s", e.Check, e.Detail)
}

// Violationf builds an *Error for the named check.
func Violationf(check, format string, args ...any) *Error {
	return &Error{Check: check, Detail: fmt.Sprintf(format, args...)}
}

// ResidualBipartite checks an odd-cycle-transversal result: side must be a
// proper 2-coloring of g minus the transversal (no residual edge joins
// equal sides), transversal vertices carry side -1, and all others 0 or 1.
func ResidualBipartite(g *graph.Graph, transversal map[int]bool, side []int) error {
	const check = "oct.residual-bipartite"
	if len(side) != g.N() {
		return Violationf(check, "%d side entries for %d vertices", len(side), g.N())
	}
	for v := 0; v < g.N(); v++ {
		switch {
		case transversal[v] && side[v] != -1:
			return Violationf(check, "transversal vertex %d carries side %d, want -1", v, side[v])
		case !transversal[v] && side[v] != 0 && side[v] != 1:
			return Violationf(check, "residual vertex %d carries side %d, want 0 or 1", v, side[v])
		}
	}
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if transversal[u] || transversal[v] {
			continue
		}
		if side[u] == side[v] {
			return Violationf(check, "residual edge (%d,%d) joins side %d to itself: transversal leaves an odd cycle", u, v, side[u])
		}
	}
	return nil
}

// EdgesSpanHV checks the paper's realizability condition on a VH-labeling:
// every edge of g must join an H-capable endpoint (wordline) to a
// V-capable endpoint (bitline), in either orientation, or the edge's
// memristor has no crossing to sit on.
func EdgesSpanHV(g *graph.Graph, hasH, hasV func(v int) bool) error {
	const check = "labeling.edge-spans-hv"
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		if (hasH(u) && hasV(v)) || (hasV(u) && hasH(v)) {
			continue
		}
		return Violationf(check, "edge (%d,%d) has no H×V orientation", u, v)
	}
	return nil
}

// Semiperimeter checks S = n + k: with every one of the n nodes on at
// least one line and each of the k doubly-labeled (VH) nodes on two,
// rows + cols must equal n + k exactly (the paper's Method 1 objective).
func Semiperimeter(n, vhCount, s int) error {
	if s != n+vhCount {
		return Violationf("labeling.semiperimeter", "S = %d but n + k = %d + %d = %d", s, n, vhCount, n+vhCount)
	}
	return nil
}

// GridDims checks that a crossbar's dimensions match the ones its labeling
// implies.
func GridDims(gotRows, gotCols, wantRows, wantCols int) error {
	if gotRows != wantRows || gotCols != wantCols {
		return Violationf("xbar.grid-dims", "design is %dx%d, labeling implies %dx%d", gotRows, gotCols, wantRows, wantCols)
	}
	return nil
}

// ProgrammedCells checks that a mapped crossbar holds exactly one
// memristor per graph edge plus one stitch per VH node: every device lands
// on its own wordline×bitline crossing, none lost, none invented.
func ProgrammedCells(programmed, edges, vhCount int) error {
	if programmed != edges+vhCount {
		return Violationf("xbar.programmed-cells", "%d programmed cells for %d edges + %d VH stitches", programmed, edges, vhCount)
	}
	return nil
}

// BoundedValues checks lo[j]−tol ≤ x[j] ≤ up[j]+tol for every variable: an
// LP solution that leaves its box is a simplex bookkeeping failure, not a
// model property.
func BoundedValues(check string, x, lo, up []float64, tol float64) error {
	if len(x) > len(lo) || len(x) > len(up) {
		return Violationf(check, "%d values for bounds of length %d/%d", len(x), len(lo), len(up))
	}
	for j, xj := range x {
		if xj < lo[j]-tol || xj > up[j]+tol {
			return Violationf(check, "x[%d] = %g outside [%g, %g] (tol %g)", j, xj, lo[j], up[j], tol)
		}
	}
	return nil
}

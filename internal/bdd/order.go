package bdd

import (
	"compact/internal/logic"
)

// DFSOrder computes a static variable order for the network using the
// classic depth-first fanin traversal heuristic: outputs are visited in
// declaration order and each output's transitive fanin is walked
// depth-first, appending primary inputs in first-visit order. Inputs that
// feed no output are appended last in declaration order. The result is a
// permutation of input indices suitable for BuildNetwork.
func DFSOrder(nw *logic.Network) []int {
	inputIdx := make(map[int]int, nw.NumInputs()) // gate id -> input index
	for i, id := range nw.Inputs {
		inputIdx[id] = i
	}
	visited := make([]bool, nw.NumGates())
	taken := make([]bool, nw.NumInputs())
	var order []int
	var dfs func(id int)
	dfs = func(id int) {
		if visited[id] {
			return
		}
		visited[id] = true
		g := nw.Gates[id]
		if g.Type == logic.Input {
			ii := inputIdx[id]
			if !taken[ii] {
				taken[ii] = true
				order = append(order, ii)
			}
			return
		}
		for _, f := range g.Fanin {
			dfs(f)
		}
	}
	for _, out := range nw.Outputs {
		dfs(out)
	}
	for i := range taken {
		if !taken[i] {
			order = append(order, i)
		}
	}
	return order
}

// NaturalOrder returns the identity permutation over the network's inputs.
func NaturalOrder(nw *logic.Network) []int {
	order := make([]int, nw.NumInputs())
	for i := range order {
		order[i] = i
	}
	return order
}

// SiftRebuildOptions tunes SiftRebuild.
type SiftRebuildOptions struct {
	// MaxRounds bounds the number of full hill-climbing passes (default 2).
	MaxRounds int
	// NodeLimit bounds each trial build (default 4x the initial size).
	NodeLimit int
	// MaxVars disables sifting for networks with more inputs than this
	// (default 64); rebuild-based sifting is quadratic in the input count.
	MaxVars int
}

// SiftRebuild improves a variable order by hill climbing with full rebuilds:
// each round, every variable is tentatively moved to each position within a
// window around its current position, keeping the first strict improvement
// in shared-BDD node count. This replaces CUDD's in-place sifting with a
// simpler rebuild-based search (see DESIGN.md); it returns the improved
// order and the node count it achieves. The input order is not modified.
func SiftRebuild(nw *logic.Network, order []int, opts SiftRebuildOptions) ([]int, int) {
	if order == nil {
		order = DFSOrder(nw)
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 2
	}
	if opts.MaxVars <= 0 {
		opts.MaxVars = 64
	}
	best := append([]int(nil), order...)
	bestSize := buildSize(nw, best, opts.NodeLimit)
	if nw.NumInputs() > opts.MaxVars || nw.NumInputs() < 2 {
		return best, bestSize
	}
	if opts.NodeLimit <= 0 {
		opts.NodeLimit = 4*bestSize + 1024
	}
	n := len(best)
	window := n
	if window > 8 {
		window = 8
	}
	for round := 0; round < opts.MaxRounds; round++ {
		improved := false
		for i := 0; i < n; i++ {
			lo, hi := i-window, i+window
			if lo < 0 {
				lo = 0
			}
			if hi >= n {
				hi = n - 1
			}
			for j := lo; j <= hi; j++ {
				if j == i {
					continue
				}
				trial := moveVar(best, i, j)
				size := buildSize(nw, trial, opts.NodeLimit)
				if size > 0 && size < bestSize {
					best, bestSize = trial, size
					improved = true
					break // variable moved; indices shifted, go to next i
				}
			}
		}
		if !improved {
			break
		}
	}
	return best, bestSize
}

// moveVar returns a copy of order with the element at position from moved
// to position to.
func moveVar(order []int, from, to int) []int {
	out := make([]int, 0, len(order))
	v := order[from]
	for i, x := range order {
		if i == from {
			continue
		}
		out = append(out, x)
	}
	out = append(out, 0)
	copy(out[to+1:], out[to:])
	out[to] = v
	return out
}

// buildSize returns the shared-BDD node count for the order, or -1 if the
// build exceeded the node limit.
func buildSize(nw *logic.Network, order []int, limit int) int {
	m, roots, err := BuildNetwork(nw, order, limit)
	if err != nil {
		return -1
	}
	return m.CountNodes(roots...)
}

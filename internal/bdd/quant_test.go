package bdd

import (
	"math/rand"
	"testing"

	"compact/internal/logic"
)

func TestQuantifiers(t *testing.T) {
	m, v := vars(t, 3)
	f := m.Or(m.And(v[0], v[1]), m.And(m.Not(v[0]), v[2])) // ite(a,b,c)
	// ∃a f = b | c ; ∀a f = b & c.
	if got := m.Exists(f, 0); got != m.Or(v[1], v[2]) {
		t.Errorf("Exists wrong")
	}
	if got := m.Forall(f, 0); got != m.And(v[1], v[2]) {
		t.Errorf("Forall wrong")
	}
	// Quantifying a variable outside the support is the identity.
	g := m.And(v[1], v[2])
	if m.Exists(g, 0) != g || m.Forall(g, 0) != g {
		t.Errorf("quantifier over non-support var changed the function")
	}
	// Set forms.
	if m.ExistsSet(f, []int{0, 1, 2}) != One {
		t.Errorf("ExistsSet over satisfiable f != 1")
	}
	if m.ForallSet(f, []int{0, 1, 2}) != Zero {
		t.Errorf("ForallSet over non-tautology != 0")
	}
	if m.ForallSet(One, []int{0, 1, 2}) != One {
		t.Errorf("ForallSet over tautology != 1")
	}
}

func TestAnySat(t *testing.T) {
	m, v := vars(t, 4)
	if m.AnySat(Zero) != nil {
		t.Error("AnySat(0) not nil")
	}
	f := m.And(m.And(v[0], m.Not(v[1])), v[3])
	sat := m.AnySat(f)
	if sat == nil || !m.Eval(f, sat) {
		t.Fatalf("AnySat returned non-satisfying %v", sat)
	}
	if !sat[0] || sat[1] || !sat[3] {
		t.Errorf("AnySat assignment wrong: %v", sat)
	}
}

func TestEquivalentIdentical(t *testing.T) {
	build := func(extra bool) *logic.Network {
		b := logic.NewBuilder("m")
		x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
		f := b.Or(b.And(x, y), z)
		if extra {
			// Structurally different, logically identical (De Morgan).
			f = b.Not(b.And(b.Not(b.And(x, y)), b.Not(z)))
		}
		b.Output("f", f)
		b.Output("g", b.Xor(x, y, z))
		return b.Build()
	}
	eq, w, err := Equivalent(build(false), build(true), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("equivalent networks reported different, witness %v", w)
	}
}

func TestEquivalentDifferentWithWitness(t *testing.T) {
	b1 := logic.NewBuilder("a")
	x, y := b1.Input("x"), b1.Input("y")
	b1.Output("f", b1.And(x, y))
	b2 := logic.NewBuilder("b")
	x2, y2 := b2.Input("x"), b2.Input("y")
	b2.Output("f", b2.Or(x2, y2))
	n1, n2 := b1.Build(), b2.Build()
	eq, w, err := Equivalent(n1, n2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("AND reported equivalent to OR")
	}
	if w == nil {
		t.Fatal("no witness")
	}
	if n1.Eval(w)[0] == n2.Eval(w)[0] {
		t.Errorf("witness %v does not distinguish the networks", w)
	}
}

func TestEquivalentSignatureMismatch(t *testing.T) {
	b1 := logic.NewBuilder("a")
	b1.Output("f", b1.Input("x"))
	b2 := logic.NewBuilder("b")
	x := b2.Input("x")
	b2.Input("y")
	b2.Output("f", x)
	if _, _, err := Equivalent(b1.Build(), b2.Build(), 0); err == nil {
		t.Error("input count mismatch accepted")
	}
	b3 := logic.NewBuilder("c")
	b3.Output("g", b3.Input("z")) // different input and output names
	if _, _, err := Equivalent(b1.Build(), b3.Build(), 0); err == nil {
		t.Error("name mismatch accepted")
	}
}

func TestEquivalentRandomMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		nw := randomNetwork(rng, 5, 20)
		eq, _, err := Equivalent(nw, nw, 0)
		if err != nil || !eq {
			t.Fatalf("trial %d: self-equivalence failed: %v", trial, err)
		}
	}
}

package bdd

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"compact/internal/logic"
)

func vars(t *testing.T, n int) (*Manager, []Node) {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	m := New(names)
	vs := make([]Node, n)
	for i := range vs {
		vs[i] = m.Var(i)
	}
	return m, vs
}

func TestTerminalIdentities(t *testing.T) {
	m, v := vars(t, 2)
	a := v[0]
	checks := []struct {
		name string
		got  Node
		want Node
	}{
		{"a&0", m.And(a, Zero), Zero},
		{"a&1", m.And(a, One), a},
		{"a|0", m.Or(a, Zero), a},
		{"a|1", m.Or(a, One), One},
		{"a^0", m.Xor(a, Zero), a},
		{"a^a", m.Xor(a, a), Zero},
		{"a&a", m.And(a, a), a},
		{"a|a", m.Or(a, a), a},
		{"!!a", m.Not(m.Not(a)), a},
		{"a^1", m.Xor(a, One), m.Not(a)},
		{"!a", m.Not(a), m.NVar(0)},
		{"ite(a,1,0)", m.ITE(a, One, Zero), a},
		{"ite(a,0,1)", m.ITE(a, Zero, One), m.Not(a)},
		{"ite(1,a,b)", m.ITE(One, a, v[1]), a},
		{"ite(0,a,b)", m.ITE(Zero, a, v[1]), v[1]},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: node %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestCanonicity(t *testing.T) {
	m, v := vars(t, 3)
	// (a&b)|c built two different ways must yield the same node.
	f1 := m.Or(m.And(v[0], v[1]), v[2])
	f2 := m.Not(m.And(m.Not(m.And(v[0], v[1])), m.Not(v[2])))
	if f1 != f2 {
		t.Errorf("De Morgan variants differ: %d vs %d", f1, f2)
	}
	// ITE-built XOR equals apply-built XOR.
	x1 := m.Xor(v[0], v[1])
	x2 := m.ITE(v[0], m.Not(v[1]), v[1])
	if x1 != x2 {
		t.Errorf("xor variants differ: %d vs %d", x1, x2)
	}
}

// truthTable computes f's truth table via Eval.
func truthTable(m *Manager, f Node) []bool {
	nv := m.NumVars()
	tt := make([]bool, 1<<nv)
	in := make([]bool, nv)
	for a := range tt {
		for i := range in {
			in[i] = a&(1<<i) != 0
		}
		tt[a] = m.Eval(f, in)
	}
	return tt
}

func TestOpsAgainstTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, v := vars(t, 5)
	// Build random functions and compare BDD ops against bitwise ops on
	// truth tables.
	randFn := func() Node {
		f := v[rng.Intn(5)]
		for i := 0; i < 6; i++ {
			g := v[rng.Intn(5)]
			switch rng.Intn(4) {
			case 0:
				f = m.And(f, g)
			case 1:
				f = m.Or(f, g)
			case 2:
				f = m.Xor(f, g)
			case 3:
				f = m.Not(f)
			}
		}
		return f
	}
	for trial := 0; trial < 40; trial++ {
		f, g, h := randFn(), randFn(), randFn()
		tf, tg, th := truthTable(m, f), truthTable(m, g), truthTable(m, h)
		pairs := []struct {
			name string
			node Node
			eval func(i int) bool
		}{
			{"and", m.And(f, g), func(i int) bool { return tf[i] && tg[i] }},
			{"or", m.Or(f, g), func(i int) bool { return tf[i] || tg[i] }},
			{"xor", m.Xor(f, g), func(i int) bool { return tf[i] != tg[i] }},
			{"nand", m.Nand(f, g), func(i int) bool { return !(tf[i] && tg[i]) }},
			{"nor", m.Nor(f, g), func(i int) bool { return !(tf[i] || tg[i]) }},
			{"xnor", m.Xnor(f, g), func(i int) bool { return tf[i] == tg[i] }},
			{"not", m.Not(f), func(i int) bool { return !tf[i] }},
			{"implies", m.Implies(f, g), func(i int) bool { return !tf[i] || tg[i] }},
			{"ite", m.ITE(f, g, h), func(i int) bool {
				if tf[i] {
					return tg[i]
				}
				return th[i]
			}},
		}
		for _, p := range pairs {
			tt := truthTable(m, p.node)
			for i := range tt {
				if tt[i] != p.eval(i) {
					t.Fatalf("trial %d %s: mismatch at minterm %d", trial, p.name, i)
				}
			}
		}
	}
}

func TestRestrict(t *testing.T) {
	m, v := vars(t, 3)
	f := m.Or(m.And(v[0], v[1]), v[2]) // (a&b)|c
	if got := m.Restrict(f, 0, true); got != m.Or(v[1], v[2]) {
		t.Errorf("f|a=1 wrong")
	}
	if got := m.Restrict(f, 0, false); got != v[2] {
		t.Errorf("f|a=0 wrong")
	}
	if got := m.Restrict(f, 2, true); got != One {
		t.Errorf("f|c=1 wrong")
	}
	// Shannon expansion: f = ite(x, f|x=1, f|x=0) for every variable.
	for x := 0; x < 3; x++ {
		hi := m.Restrict(f, x, true)
		lo := m.Restrict(f, x, false)
		if m.ITE(v[x], hi, lo) != f {
			t.Errorf("Shannon expansion failed on var %d", x)
		}
	}
}

func TestSatCount(t *testing.T) {
	m, v := vars(t, 4)
	cases := []struct {
		name string
		f    Node
		want float64
	}{
		{"0", Zero, 0},
		{"1", One, 16},
		{"a", v[0], 8},
		{"a&b", m.And(v[0], v[1]), 4},
		{"a|b", m.Or(v[0], v[1]), 12},
		{"a^b", m.Xor(v[0], v[1]), 8},
		{"a&b&c&d", m.And(m.And(v[0], v[1]), m.And(v[2], v[3])), 1},
	}
	for _, c := range cases {
		if got := m.SatCount(c.f); got != c.want {
			t.Errorf("SatCount(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSupport(t *testing.T) {
	m, v := vars(t, 5)
	f := m.Or(m.And(v[0], v[2]), v[4])
	got := m.Support(f)
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support = %v, want %v", got, want)
		}
	}
}

func TestCountNodesEdges(t *testing.T) {
	m, v := vars(t, 3)
	f := m.Or(m.And(v[0], v[1]), v[2]) // 3 internal + 2 terminals
	if n := m.CountNodes(f); n != 5 {
		t.Errorf("CountNodes = %d, want 5", n)
	}
	if e := m.CountEdges(f); e != 6 {
		t.Errorf("CountEdges = %d, want 6", e)
	}
	// Shared roots count shared structure once: b|c is f's a=1 cofactor,
	// already a node inside f, so adding it as a root adds nothing.
	g := m.Or(v[1], v[2])
	if n := m.CountNodes(f, g); n != 5 {
		t.Errorf("shared CountNodes = %d, want 5", n)
	}
	// An unrelated root adds its own nodes: a&b needs fresh a and b nodes.
	h := m.And(v[0], v[1])
	if n := m.CountNodes(f, h); n != 7 {
		t.Errorf("disjoint CountNodes = %d, want 7", n)
	}
}

func TestBuildNetworkMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		nw := randomNetwork(rng, 6, 30)
		m, roots, err := BuildNetwork(nw, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]bool, 6)
		for a := 0; a < 64; a++ {
			for i := range in {
				in[i] = a&(1<<i) != 0
			}
			sim := nw.Eval(in)
			for o, r := range roots {
				if m.Eval(r, in) != sim[o] {
					t.Fatalf("trial %d: output %d differs on %06b", trial, o, a)
				}
			}
		}
	}
}

func TestBuildNetworkWithOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	nw := randomNetwork(rng, 5, 20)
	order := []int{4, 2, 0, 3, 1}
	m, roots, err := BuildNetwork(nw, order, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Semantics must be order-independent: Eval takes values per *level*,
	// so map the input vector through the order.
	in := make([]bool, 5)
	lv := make([]bool, 5)
	for a := 0; a < 32; a++ {
		for i := range in {
			in[i] = a&(1<<i) != 0
		}
		for level, inIdx := range order {
			lv[level] = in[inIdx]
		}
		sim := nw.Eval(in)
		for o, r := range roots {
			if m.Eval(r, lv) != sim[o] {
				t.Fatalf("output %d differs on %05b", o, a)
			}
		}
	}
}

func TestNodeLimit(t *testing.T) {
	// A function with exponentially-sized BDD under a bad order: the
	// hidden-weighted-bit style indirect addressing; simpler: a multiplier
	// middle bit. Use an 6x6 multiplier bit which is large, with tiny limit.
	b := logic.NewBuilder("mult")
	xs := b.Inputs("x", 6)
	ys := b.Inputs("y", 6)
	// Sum of partial products; output one middle bit.
	var rows [][]int
	for i := range ys {
		row := make([]int, 12)
		for j := range row {
			row[j] = b.Const0()
		}
		for j := range xs {
			row[i+j] = b.And(xs[j], ys[i])
		}
		rows = append(rows, row)
	}
	acc := rows[0]
	for _, row := range rows[1:] {
		acc, _ = b.AddRippleAdder(acc, row, b.Const0())
	}
	b.Output("p5", acc[5])
	nw := b.Build()
	_, _, err := BuildNetwork(nw, nil, 30)
	if !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("expected ErrNodeLimit, got %v", err)
	}
	// Generous limit succeeds.
	if _, _, err := BuildNetwork(nw, nil, 1<<20); err != nil {
		t.Fatalf("build with generous limit failed: %v", err)
	}
}

func TestBuildSeparate(t *testing.T) {
	b := logic.NewBuilder("two")
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	b.Output("f", b.And(x, y))
	b.Output("g", b.Or(y, z))
	nw := b.Build()
	singles, err := BuildSeparate(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(singles) != 2 {
		t.Fatalf("got %d singles", len(singles))
	}
	// f's manager must only know x and y.
	if singles[0].Manager.NumVars() != 2 {
		t.Errorf("f cone has %d vars, want 2", singles[0].Manager.NumVars())
	}
	in := make([]bool, 3)
	for a := 0; a < 8; a++ {
		for i := range in {
			in[i] = a&(1<<i) != 0
		}
		sim := nw.Eval(in)
		// Map network inputs onto each single's variables by name.
		for si, s := range singles {
			sin := make([]bool, s.Manager.NumVars())
			for lv := 0; lv < s.Manager.NumVars(); lv++ {
				sin[lv] = in[nw.InputIndex(s.Manager.VarName(lv))]
			}
			if s.Manager.Eval(s.Root, sin) != sim[si] {
				t.Fatalf("single %s differs on %03b", s.Name, a)
			}
		}
	}
}

func TestSBDDSharesNodes(t *testing.T) {
	// Two outputs sharing a subfunction: the SBDD must be smaller than the
	// sum of separate BDDs.
	b := logic.NewBuilder("share")
	xs := b.Inputs("x", 6)
	common := b.Xor(xs[0], xs[1], xs[2], xs[3])
	b.Output("f", b.And(common, xs[4]))
	b.Output("g", b.Or(common, xs[5]))
	nw := b.Build()

	m, roots, err := BuildNetwork(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	shared := m.CountNodes(roots...)
	singles, err := BuildSeparate(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range singles {
		sum += s.Manager.CountNodes(s.Root)
	}
	if shared >= sum {
		t.Errorf("SBDD (%d nodes) not smaller than separate ROBDDs (%d nodes)", shared, sum)
	}
}

func TestDFSOrder(t *testing.T) {
	b := logic.NewBuilder("ord")
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	_ = x
	b.Output("f", b.And(z, y)) // DFS sees z first, then y; x unused
	nw := b.Build()
	ord := DFSOrder(nw)
	if len(ord) != 3 {
		t.Fatalf("order = %v", ord)
	}
	if ord[0] != 2 || ord[1] != 1 || ord[2] != 0 {
		t.Errorf("order = %v, want [2 1 0]", ord)
	}
}

func TestSiftRebuildImprovesInterleavedOrder(t *testing.T) {
	// Comparator-style function: x_i == y_i pairwise. The natural order
	// (all x then all y) is exponentially worse than interleaved.
	const w = 6
	b := logic.NewBuilder("eq")
	xs := b.Inputs("x", w)
	ys := b.Inputs("y", w)
	var eqs []int
	for i := range xs {
		eqs = append(eqs, b.Xnor(xs[i], ys[i]))
	}
	b.Output("eq", b.And(eqs...))
	nw := b.Build()

	natural := NaturalOrder(nw)
	m0, r0, err := BuildNetwork(nw, natural, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := m0.CountNodes(r0...)
	improved, after := SiftRebuild(nw, natural, SiftRebuildOptions{MaxRounds: 4})
	if after > before {
		t.Errorf("sifting made things worse: %d -> %d", before, after)
	}
	if after >= before {
		t.Logf("no improvement found (%d); acceptable but unexpected", after)
	}
	// Verify semantics preserved under the improved order.
	m1, r1, err := BuildNetwork(nw, improved, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]bool, 2*w)
	lv := make([]bool, 2*w)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		for level, inIdx := range improved {
			lv[level] = in[inIdx]
		}
		if m1.Eval(r1[0], lv) != nw.Eval(in)[0] {
			t.Fatal("sifted BDD differs from network")
		}
	}
}

func TestWriteDOT(t *testing.T) {
	m, v := vars(t, 3)
	f := m.Or(m.And(v[0], v[1]), v[2])
	var buf bytes.Buffer
	if err := m.WriteDOT(&buf, f); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{"digraph", "style=dashed", `label="a"`, "out0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, s)
		}
	}
}

func TestQuickXorChain(t *testing.T) {
	// Property: parity of the input vector equals Eval of the XOR chain.
	m, v := vars(t, 8)
	f := v[0]
	for i := 1; i < 8; i++ {
		f = m.Xor(f, v[i])
	}
	prop := func(x uint8) bool {
		in := make([]bool, 8)
		parity := false
		for i := range in {
			in[i] = x&(1<<i) != 0
			parity = parity != in[i]
		}
		return m.Eval(f, in) == parity
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// XOR chain has exactly n internal nodes... (2 per level except root level): 2*8-1 = 15.
	if got := m.CountNodes(f) - 2; got != 15 {
		t.Errorf("xor chain internal nodes = %d, want 15", got)
	}
}

// randomNetwork builds a random combinational network (local copy; the
// logic-package helper is unexported).
func randomNetwork(rng *rand.Rand, nIn, nGates int) *logic.Network {
	b := logic.NewBuilder("rand")
	var pool []int
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.Input(string(rune('a'+i))))
	}
	for g := 0; g < nGates; g++ {
		pick := func() int { return pool[rng.Intn(len(pool))] }
		var id int
		switch rng.Intn(7) {
		case 0:
			id = b.And(pick(), pick())
		case 1:
			id = b.Or(pick(), pick(), pick())
		case 2:
			id = b.Not(pick())
		case 3:
			id = b.Xor(pick(), pick())
		case 4:
			id = b.Nand(pick(), pick())
		case 5:
			id = b.Nor(pick(), pick())
		default:
			id = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, id)
	}
	b.Output("f", pool[len(pool)-1])
	b.Output("g", pool[len(pool)-2])
	b.Output("h", pool[rng.Intn(len(pool))])
	return b.Build()
}

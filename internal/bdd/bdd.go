// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a shared, hash-consed node arena, replacing the ABC/CUDD dependency
// of the original COMPACT implementation. Multiple roots in one Manager form
// a shared BDD (SBDD); one root per Manager models the per-output ROBDD flow
// of prior work.
//
// Nodes are referenced by dense uint32 handles; handles 0 and 1 are the
// constant terminals. Internal nodes are canonical: no node has equal
// children, and no two nodes share (level, low, high). Boolean operations
// are memoized. The Manager is not safe for concurrent use.
package bdd

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"compact/internal/errio"
	"compact/internal/logic"
)

// Node is a handle to a BDD node within its Manager.
type Node uint32

// Terminal node handles.
const (
	Zero Node = 0
	One  Node = 1
)

const terminalLevel = ^uint32(0)

// ErrNodeLimit is returned (wrapped) when a construction exceeds the
// Manager's configured node limit.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// ErrVarRange reports a variable index outside the manager's declared set.
var ErrVarRange = errors.New("bdd: variable index out of range")

// BoundaryError implements the package's error-valued panic protocol.
// Resource and argument violations detected deep inside recursive BDD
// operations (ErrNodeLimit, ErrVarRange) unwind by panicking with a wrapped
// error; every exported construction boundary recovers and passes the
// recovered value here, turning protocol panics back into ordinary errors.
// Any other value is a foreign panic and is re-raised unchanged.
func BoundaryError(r any) error {
	if e, ok := r.(error); ok && (errors.Is(e, ErrNodeLimit) || errors.Is(e, ErrVarRange)) {
		return e
	}
	//lint:ignore panicfree re-raises foreign panics; protocol panics become errors above
	panic(r)
}

type nodeData struct {
	level     uint32
	low, high Node
}

type uniqueKey struct {
	level     uint32
	low, high Node
}

type opCode uint8

const (
	opAnd opCode = iota
	opOr
	opXor
	opNot
	opITE
)

type opKey struct {
	op      opCode
	a, b, c Node
}

// Manager owns a forest of ROBDDs over a fixed ordered variable set.
type Manager struct {
	nodes    []nodeData
	unique   map[uniqueKey]Node
	cache    map[opKey]Node
	varNames []string
	limit    int // 0 = unlimited
}

// New creates a Manager over the given variables; the slice order is the
// BDD variable order (index = level, lower level closer to the roots).
func New(varNames []string) *Manager {
	m := &Manager{
		nodes: []nodeData{
			{level: terminalLevel}, // Zero
			{level: terminalLevel}, // One
		},
		unique:   make(map[uniqueKey]Node),
		cache:    make(map[opKey]Node),
		varNames: append([]string(nil), varNames...),
	}
	return m
}

// SetNodeLimit bounds the arena size; operations that would grow past the
// limit panic with a value wrapping ErrNodeLimit (recovered by Build*).
func (m *Manager) SetNodeLimit(n int) { m.limit = n }

// NumVars returns the number of declared variables.
func (m *Manager) NumVars() int { return len(m.varNames) }

// VarName returns the name of the variable at the given level.
func (m *Manager) VarName(level int) string { return m.varNames[level] }

// Size returns the total number of nodes ever created (incl. terminals).
func (m *Manager) Size() int { return len(m.nodes) }

// IsTerminal reports whether n is Zero or One.
func (m *Manager) IsTerminal(n Node) bool { return n <= One }

// Level returns the variable level of n; terminals report NumVars().
func (m *Manager) Level(n Node) int {
	if m.nodes[n].level == terminalLevel {
		return len(m.varNames)
	}
	return int(m.nodes[n].level)
}

// Low returns the low (else, variable=0) child of internal node n.
func (m *Manager) Low(n Node) Node { return m.nodes[n].low }

// High returns the high (then, variable=1) child of internal node n.
func (m *Manager) High(n Node) Node { return m.nodes[n].high }

// mk returns the canonical node (level, low, high).
func (m *Manager) mk(level uint32, low, high Node) Node {
	if low == high {
		return low
	}
	key := uniqueKey{level, low, high}
	if n, ok := m.unique[key]; ok {
		return n
	}
	if m.limit > 0 && len(m.nodes) >= m.limit {
		//lint:ignore panicfree error-valued panic unwinding recursive ops; recovered via BoundaryError
		panic(fmt.Errorf("%w (%d nodes)", ErrNodeLimit, m.limit))
	}
	n := Node(len(m.nodes))
	m.nodes = append(m.nodes, nodeData{level: level, low: low, high: high})
	m.unique[key] = n
	return n
}

// Var returns the BDD for the positive literal of variable level v.
func (m *Manager) Var(v int) Node {
	m.checkVar(v)
	return m.mk(uint32(v), Zero, One)
}

// NVar returns the BDD for the negative literal of variable level v.
func (m *Manager) NVar(v int) Node {
	m.checkVar(v)
	return m.mk(uint32(v), One, Zero)
}

func (m *Manager) checkVar(v int) {
	if v < 0 || v >= len(m.varNames) {
		//lint:ignore panicfree error-valued panic unwinding recursive ops; recovered via BoundaryError
		panic(fmt.Errorf("%w: %d not in [0,%d)", ErrVarRange, v, len(m.varNames)))
	}
}

// Const returns One or Zero for the given Boolean.
func (m *Manager) Const(b bool) Node {
	if b {
		return One
	}
	return Zero
}

// Not returns the complement of f.
func (m *Manager) Not(f Node) Node {
	switch f {
	case Zero:
		return One
	case One:
		return Zero
	}
	key := opKey{op: opNot, a: f}
	if r, ok := m.cache[key]; ok {
		return r
	}
	d := m.nodes[f]
	r := m.mk(d.level, m.Not(d.low), m.Not(d.high))
	m.cache[key] = r
	return r
}

// And returns f AND g.
func (m *Manager) And(f, g Node) Node { return m.apply(opAnd, f, g) }

// Or returns f OR g.
func (m *Manager) Or(f, g Node) Node { return m.apply(opOr, f, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Node) Node { return m.apply(opXor, f, g) }

// Xnor returns NOT(f XOR g).
func (m *Manager) Xnor(f, g Node) Node { return m.Not(m.Xor(f, g)) }

// Nand returns NOT(f AND g).
func (m *Manager) Nand(f, g Node) Node { return m.Not(m.And(f, g)) }

// Nor returns NOT(f OR g).
func (m *Manager) Nor(f, g Node) Node { return m.Not(m.Or(f, g)) }

// Implies returns NOT f OR g.
func (m *Manager) Implies(f, g Node) Node { return m.Or(m.Not(f), g) }

func (m *Manager) apply(op opCode, f, g Node) Node {
	// Terminal rules.
	switch op {
	case opAnd:
		if f == Zero || g == Zero {
			return Zero
		}
		if f == One {
			return g
		}
		if g == One {
			return f
		}
		if f == g {
			return f
		}
	case opOr:
		if f == One || g == One {
			return One
		}
		if f == Zero {
			return g
		}
		if g == Zero {
			return f
		}
		if f == g {
			return f
		}
	case opXor:
		if f == Zero {
			return g
		}
		if g == Zero {
			return f
		}
		if f == One {
			return m.Not(g)
		}
		if g == One {
			return m.Not(f)
		}
		if f == g {
			return Zero
		}
	}
	// Commutative: canonicalize operand order for cache hits.
	a, b := f, g
	if a > b {
		a, b = b, a
	}
	key := opKey{op: op, a: a, b: b}
	if r, ok := m.cache[key]; ok {
		return r
	}
	df, dg := m.nodes[f], m.nodes[g]
	var level uint32
	fl, fh, gl, gh := f, f, g, g
	switch {
	case df.level == dg.level:
		level = df.level
		fl, fh, gl, gh = df.low, df.high, dg.low, dg.high
	case df.level < dg.level:
		level = df.level
		fl, fh = df.low, df.high
	default:
		level = dg.level
		gl, gh = dg.low, dg.high
	}
	r := m.mk(level, m.apply(op, fl, gl), m.apply(op, fh, gh))
	m.cache[key] = r
	return r
}

// ITE returns if-then-else(f, g, h) = (f AND g) OR (NOT f AND h).
func (m *Manager) ITE(f, g, h Node) Node {
	switch {
	case f == One:
		return g
	case f == Zero:
		return h
	case g == h:
		return g
	case g == One && h == Zero:
		return f
	case g == Zero && h == One:
		return m.Not(f)
	}
	key := opKey{op: opITE, a: f, b: g, c: h}
	if r, ok := m.cache[key]; ok {
		return r
	}
	level := m.nodes[f].level
	if l := m.nodes[g].level; l < level {
		level = l
	}
	if l := m.nodes[h].level; l < level {
		level = l
	}
	cof := func(n Node) (Node, Node) {
		d := m.nodes[n]
		if d.level == level {
			return d.low, d.high
		}
		return n, n
	}
	fl, fh := cof(f)
	gl, gh := cof(g)
	hl, hh := cof(h)
	r := m.mk(level, m.ITE(fl, gl, hl), m.ITE(fh, gh, hh))
	m.cache[key] = r
	return r
}

// Restrict returns f with variable v fixed to val.
func (m *Manager) Restrict(f Node, v int, val bool) Node {
	m.checkVar(v)
	memo := make(map[Node]Node)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		d := m.nodes[n]
		if d.level == terminalLevel || d.level > uint32(v) {
			return n
		}
		if r, ok := memo[n]; ok {
			return r
		}
		var r Node
		if d.level == uint32(v) {
			if val {
				r = d.high
			} else {
				r = d.low
			}
		} else {
			r = m.mk(d.level, rec(d.low), rec(d.high))
		}
		memo[n] = r
		return r
	}
	return rec(f)
}

// Eval evaluates f under a full assignment (one bool per variable level).
func (m *Manager) Eval(f Node, assignment []bool) bool {
	if len(assignment) != len(m.varNames) {
		panic(fmt.Sprintf("bdd: Eval got %d values, want %d", len(assignment), len(m.varNames)))
	}
	for f > One {
		d := m.nodes[f]
		if assignment[d.level] {
			f = d.high
		} else {
			f = d.low
		}
	}
	return f == One
}

// SatCount returns the number of satisfying assignments of f over all
// declared variables, as a float64 (exact while the count is < 2^53). It
// uses the uniform-probability formulation p(n) = (p(low)+p(high))/2, which
// handles skipped levels without explicit correction factors.
func (m *Manager) SatCount(f Node) float64 {
	memo := make(map[Node]float64)
	var prob func(n Node) float64
	prob = func(n Node) float64 {
		switch n {
		case Zero:
			return 0
		case One:
			return 1
		}
		if p, ok := memo[n]; ok {
			return p
		}
		d := m.nodes[n]
		p := 0.5 * (prob(d.low) + prob(d.high))
		memo[n] = p
		return p
	}
	return prob(f) * pow2(len(m.varNames))
}

func pow2(n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 2
	}
	return r
}

// Support returns the sorted levels of variables f depends on.
func (m *Manager) Support(f Node) []int {
	seen := make(map[Node]bool)
	vars := make(map[int]bool)
	var rec func(n Node)
	rec = func(n Node) {
		if n <= One || seen[n] {
			return
		}
		seen[n] = true
		d := m.nodes[n]
		vars[int(d.level)] = true
		rec(d.low)
		rec(d.high)
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Reachable returns all node handles reachable from the given roots,
// terminals included, in deterministic (ascending handle) order.
func (m *Manager) Reachable(roots ...Node) []Node {
	seen := make(map[Node]bool)
	var stack []Node
	for _, r := range roots {
		stack = append(stack, r)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if n > One {
			d := m.nodes[n]
			stack = append(stack, d.low, d.high)
		}
	}
	out := make([]Node, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountNodes returns the number of reachable nodes including terminals
// (the paper's Table I "Nodes" convention).
func (m *Manager) CountNodes(roots ...Node) int { return len(m.Reachable(roots...)) }

// CountEdges returns the number of BDD edges reachable from roots: two per
// reachable internal node (the paper's "Edges" convention).
func (m *Manager) CountEdges(roots ...Node) int {
	internal := 0
	for _, n := range m.Reachable(roots...) {
		if n > One {
			internal++
		}
	}
	return 2 * internal
}

// WriteDOT emits a Graphviz rendering of the BDDs rooted at roots. Solid
// edges are high (then) edges, dashed are low (else) edges.
func (m *Manager) WriteDOT(w io.Writer, roots ...Node) error {
	ew := errio.NewWriter(w)
	ew.Println("digraph bdd {")
	ew.Println(`  node [shape=circle];`)
	ew.Println(`  n0 [shape=box,label="0"]; n1 [shape=box,label="1"];`)
	for _, n := range m.Reachable(roots...) {
		if n <= One {
			continue
		}
		d := m.nodes[n]
		ew.Printf("  n%d [label=%q];\n", n, m.varNames[d.level])
		ew.Printf("  n%d -> n%d [style=dashed];\n", n, d.low)
		ew.Printf("  n%d -> n%d;\n", n, d.high)
	}
	for i, r := range roots {
		ew.Printf("  r%d [shape=plaintext,label=\"out%d\"]; r%d -> n%d;\n", i, i, i, r)
	}
	ew.Println("}")
	return ew.Err()
}

// BuildNetwork constructs a shared BDD (one Manager, one root per primary
// output) for the network, using the given variable order (a permutation of
// input indices; nil means natural declaration order). limit > 0 bounds the
// node count.
func BuildNetwork(nw *logic.Network, order []int, limit int) (m *Manager, roots []Node, err error) {
	if order == nil {
		order = make([]int, nw.NumInputs())
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != nw.NumInputs() {
		return nil, nil, fmt.Errorf("bdd: order has %d entries, want %d", len(order), nw.NumInputs())
	}
	names := make([]string, len(order))
	inputLevel := make([]int, nw.NumInputs()) // input index -> level
	inNames := nw.InputNames()
	for level, inIdx := range order {
		if inIdx < 0 || inIdx >= nw.NumInputs() {
			return nil, nil, fmt.Errorf("bdd: order entry %d out of range", inIdx)
		}
		names[level] = inNames[inIdx]
		inputLevel[inIdx] = level
	}
	m = New(names)
	m.SetNodeLimit(limit)
	defer func() {
		if r := recover(); r != nil {
			m, roots, err = nil, nil, BoundaryError(r)
		}
	}()

	vals := make([]Node, nw.NumGates())
	for i, id := range nw.Inputs {
		vals[id] = m.Var(inputLevel[i])
	}
	for gi, g := range nw.Gates {
		var v Node
		switch g.Type {
		case logic.Input:
			continue
		case logic.Const0:
			v = Zero
		case logic.Const1:
			v = One
		case logic.Buf:
			v = vals[g.Fanin[0]]
		case logic.Not:
			v = m.Not(vals[g.Fanin[0]])
		case logic.And, logic.Nand:
			v = One
			for _, f := range g.Fanin {
				v = m.And(v, vals[f])
			}
			if g.Type == logic.Nand {
				v = m.Not(v)
			}
		case logic.Or, logic.Nor:
			v = Zero
			for _, f := range g.Fanin {
				v = m.Or(v, vals[f])
			}
			if g.Type == logic.Nor {
				v = m.Not(v)
			}
		case logic.Xor, logic.Xnor:
			v = Zero
			for _, f := range g.Fanin {
				v = m.Xor(v, vals[f])
			}
			if g.Type == logic.Xnor {
				v = m.Not(v)
			}
		case logic.Mux:
			v = m.ITE(vals[g.Fanin[0]], vals[g.Fanin[2]], vals[g.Fanin[1]])
		default:
			return nil, nil, fmt.Errorf("bdd: unsupported gate type %v", g.Type)
		}
		vals[gi] = v
	}
	roots = make([]Node, nw.NumOutputs())
	for i, id := range nw.Outputs {
		roots[i] = vals[id]
	}
	return m, roots, nil
}

// Single is one output's ROBDD in its own Manager, used to model the
// per-output flow of prior work ([16]) before merging by the 1-terminal.
type Single struct {
	Name    string
	Manager *Manager
	Root    Node
}

// BuildSeparate constructs one independent ROBDD per primary output.
func BuildSeparate(nw *logic.Network, order []int, limit int) ([]Single, error) {
	singles := make([]Single, 0, nw.NumOutputs())
	for i := range nw.Outputs {
		sub, err := extractCone(nw, i)
		if err != nil {
			return nil, err
		}
		// Same global order restricted to the cone's inputs.
		var subOrder []int
		if order != nil {
			pos := make(map[int]int)
			for p, v := range order {
				pos[v] = p
			}
			type iv struct{ idx, pos int }
			var ivs []iv
			for subIdx, name := range sub.InputNames() {
				gi := nw.InputIndex(name)
				ivs = append(ivs, iv{subIdx, pos[gi]})
			}
			sort.Slice(ivs, func(a, b int) bool { return ivs[a].pos < ivs[b].pos })
			subOrder = make([]int, len(ivs))
			for p, e := range ivs {
				subOrder[p] = e.idx
			}
		}
		m, roots, err := BuildNetwork(sub, subOrder, limit)
		if err != nil {
			return nil, fmt.Errorf("output %s: %w", nw.OutputNames[i], err)
		}
		singles = append(singles, Single{Name: nw.OutputNames[i], Manager: m, Root: roots[0]})
	}
	return singles, nil
}

// extractCone builds a single-output network containing only the fanin cone
// of output o.
func extractCone(nw *logic.Network, o int) (*logic.Network, error) {
	root := nw.Outputs[o]
	cone := nw.Cone(root)
	b := logic.NewBuilder(nw.Name + "." + nw.OutputNames[o])
	remap := make(map[int]int, len(cone))
	for _, id := range cone {
		g := nw.Gates[id]
		if g.Type == logic.Input {
			remap[id] = b.Input(g.Name)
			continue
		}
		fan := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fan[i] = remap[f]
		}
		switch g.Type {
		case logic.Const0:
			remap[id] = b.Const0()
		case logic.Const1:
			remap[id] = b.Const1()
		case logic.Buf:
			remap[id] = b.Buf(fan[0])
		case logic.Not:
			remap[id] = b.Not(fan[0])
		case logic.And:
			remap[id] = b.And(fan...)
		case logic.Or:
			remap[id] = b.Or(fan...)
		case logic.Nand:
			remap[id] = b.Nand(fan...)
		case logic.Nor:
			remap[id] = b.Nor(fan...)
		case logic.Xor:
			remap[id] = b.Xor(fan...)
		case logic.Xnor:
			remap[id] = b.Xnor(fan...)
		case logic.Mux:
			remap[id] = b.Mux(fan[0], fan[1], fan[2])
		default:
			return nil, fmt.Errorf("bdd: unsupported gate type %v", g.Type)
		}
	}
	b.Output(nw.OutputNames[o], remap[root])
	return b.Build(), nil
}

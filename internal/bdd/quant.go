package bdd

import (
	"fmt"

	"compact/internal/logic"
)

// Exists returns ∃v. f — the disjunction of both cofactors of f on v.
func (m *Manager) Exists(f Node, v int) Node {
	m.checkVar(v)
	return m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// Forall returns ∀v. f — the conjunction of both cofactors of f on v.
func (m *Manager) Forall(f Node, v int) Node {
	m.checkVar(v)
	return m.And(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// ExistsSet existentially quantifies a set of variable levels.
func (m *Manager) ExistsSet(f Node, vars []int) Node {
	for _, v := range vars {
		f = m.Exists(f, v)
	}
	return f
}

// ForallSet universally quantifies a set of variable levels.
func (m *Manager) ForallSet(f Node, vars []int) Node {
	for _, v := range vars {
		f = m.Forall(f, v)
	}
	return f
}

// AnySat returns one satisfying assignment of f (indexed by level, with
// unconstrained variables set to false), or nil if f is unsatisfiable.
func (m *Manager) AnySat(f Node) []bool {
	if f == Zero {
		return nil
	}
	assignment := make([]bool, m.NumVars())
	for f > One {
		d := m.nodes[f]
		if d.low != Zero {
			f = d.low
		} else {
			assignment[d.level] = true
			f = d.high
		}
	}
	return assignment
}

// Equivalent reports whether two networks with identical input and output
// signatures compute the same functions, by canonical shared-BDD
// comparison — the formal check behind the c499/c1355 pair and the
// round-trip tests. Inputs and outputs are matched by name; an error
// describes any signature mismatch or resource blow-up. When the networks
// differ, a witness input assignment (in a's input order) is returned.
func Equivalent(a, b *logic.Network, nodeLimit int) (equal bool, witness []bool, err error) {
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		return false, nil, fmt.Errorf("bdd: I/O signature mismatch: %d/%d vs %d/%d",
			a.NumInputs(), a.NumOutputs(), b.NumInputs(), b.NumOutputs())
	}
	// Build both in ONE manager so equality is pointer equality.
	orderA := DFSOrder(a)
	mgr, rootsA, err := BuildNetwork(a, orderA, nodeLimit)
	if err != nil {
		return false, nil, err
	}
	// b's inputs mapped onto a's variable levels by name.
	orderB := make([]int, b.NumInputs())
	for level, aIdx := range orderA {
		name := a.InputNames()[aIdx]
		bIdx := b.InputIndex(name)
		if bIdx < 0 {
			return false, nil, fmt.Errorf("bdd: input %q missing from second network", name)
		}
		orderB[level] = bIdx
	}
	rootsB, err := buildInto(mgr, b, orderB)
	if err != nil {
		return false, nil, err
	}
	for i, ra := range rootsA {
		oName := a.OutputNames[i]
		j := b.OutputIndex(oName)
		if j < 0 {
			return false, nil, fmt.Errorf("bdd: output %q missing from second network", oName)
		}
		if ra != rootsB[j] {
			diff := mgr.Xor(ra, rootsB[j])
			sat := mgr.AnySat(diff)
			// Map the level-indexed witness back to a's input order.
			w := make([]bool, a.NumInputs())
			for level, aIdx := range orderA {
				w[aIdx] = sat[level]
			}
			return false, w, nil
		}
	}
	return true, nil, nil
}

// BuildRoots constructs the network's output functions inside this
// manager. order maps manager levels to network input indices (nil means
// level i = input i); the manager must declare at least NumInputs
// variables. Used by the symbolic crossbar verifier to compare a design's
// sneak-path function against its source network inside one canonical
// node space.
//
//lint:ignore ctxbound bounded by the receiving Manager's node limit (SetNodeLimit)
func (m *Manager) BuildRoots(nw *logic.Network, order []int) (roots []Node, err error) {
	defer func() {
		if r := recover(); r != nil {
			roots, err = nil, BoundaryError(r)
		}
	}()
	if order == nil {
		order = make([]int, nw.NumInputs())
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != nw.NumInputs() || m.NumVars() < nw.NumInputs() {
		return nil, fmt.Errorf("bdd: BuildRoots order/variable mismatch (%d inputs, %d levels, %d vars)",
			nw.NumInputs(), len(order), m.NumVars())
	}
	return buildInto(m, nw, order)
}

// buildInto constructs b's outputs inside an existing manager, with
// orderB[level] giving b's input index for each manager level.
func buildInto(m *Manager, nw *logic.Network, orderB []int) ([]Node, error) {
	inputLevel := make([]int, nw.NumInputs())
	for level, idx := range orderB {
		inputLevel[idx] = level
	}
	vals := make([]Node, nw.NumGates())
	for i, id := range nw.Inputs {
		vals[id] = m.Var(inputLevel[i])
	}
	for gi, g := range nw.Gates {
		var v Node
		switch g.Type {
		case logic.Input:
			continue
		case logic.Const0:
			v = Zero
		case logic.Const1:
			v = One
		case logic.Buf:
			v = vals[g.Fanin[0]]
		case logic.Not:
			v = m.Not(vals[g.Fanin[0]])
		case logic.And, logic.Nand:
			v = One
			for _, f := range g.Fanin {
				v = m.And(v, vals[f])
			}
			if g.Type == logic.Nand {
				v = m.Not(v)
			}
		case logic.Or, logic.Nor:
			v = Zero
			for _, f := range g.Fanin {
				v = m.Or(v, vals[f])
			}
			if g.Type == logic.Nor {
				v = m.Not(v)
			}
		case logic.Xor, logic.Xnor:
			v = Zero
			for _, f := range g.Fanin {
				v = m.Xor(v, vals[f])
			}
			if g.Type == logic.Xnor {
				v = m.Not(v)
			}
		case logic.Mux:
			v = m.ITE(vals[g.Fanin[0]], vals[g.Fanin[2]], vals[g.Fanin[1]])
		default:
			return nil, fmt.Errorf("bdd: unsupported gate type %v", g.Type)
		}
		vals[gi] = v
	}
	roots := make([]Node, nw.NumOutputs())
	for i, id := range nw.Outputs {
		roots[i] = vals[id]
	}
	return roots, nil
}

package dnf

import (
	"math/rand"
	"strings"
	"testing"

	"compact/internal/bdd"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/pla"
	"compact/internal/xbar"
)

func TestMapSimpleCover(t *testing.T) {
	// f = a&b | !c
	src := ".i 3\n.o 1\n.ilb a b c\n.ob f\n11- 1\n--0 1\n.e\n"
	tab, err := pla.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Map(tab)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := tab.Network("f")
	if err != nil {
		t.Fatal(err)
	}
	if bad := d.VerifyAgainst(nw.Eval, 3, 10, 0, 1); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
	if d.InputRow != d.Rows-1 || d.OutputRows[0] != 0 {
		t.Errorf("port placement wrong: in=%d out=%v", d.InputRow, d.OutputRows)
	}
}

func TestMapOddLiteralCube(t *testing.T) {
	// Cube with 3 literals needs the even-length padding.
	src := ".i 3\n.o 1\n111 1\n.e\n"
	tab, err := pla.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Map(tab)
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := tab.Network("and3")
	if bad := d.VerifyAgainst(nw.Eval, 3, 10, 0, 1); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
}

func TestMapTautologyAndEmpty(t *testing.T) {
	// Output 0 is constant true (all-dash cube); output 1 has no cubes.
	src := ".i 2\n.o 2\n-- 10\n.e\n"
	tab, err := pla.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Map(tab)
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := tab.Network("k")
	if bad := d.VerifyAgainst(nw.Eval, 2, 10, 0, 1); bad != nil {
		t.Errorf("mismatch on %v", bad)
	}
}

func TestMapNetworkRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		nw := randomNetwork(rng, 5, 15)
		d, err := MapNetwork(nw, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if bad := d.VerifyAgainst(nw.Eval, 5, 10, 0, 1); bad != nil {
			t.Fatalf("trial %d: mismatch on %v", trial, bad)
		}
	}
}

// TestDNFMuchLargerThanCompact demonstrates the intro's motivation: the
// cube-chain design dwarfs the BDD-based one.
func TestDNFMuchLargerThanCompact(t *testing.T) {
	// 6-input majority-ish function with a fat on-set.
	b := logic.NewBuilder("wide")
	xs := b.Inputs("x", 6)
	b.Output("f", b.Or(b.And(xs[0], xs[1]), b.And(xs[2], xs[3]), b.And(xs[4], xs[5])))
	nw := b.Build()

	dnfDesign, err := MapNetwork(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, roots, err := bdd.BuildNetwork(nw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := xbar.FromBDD(m, roots, nw.OutputNames)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := labeling.Solve(bg.Problem(true), labeling.Options{Method: labeling.MethodMIP, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	compactDesign, err := xbar.Map(bg, sol.Labels)
	if err != nil {
		t.Fatal(err)
	}
	ds, cs := dnfDesign.Stats(), compactDesign.Stats()
	if ds.S <= cs.S {
		t.Errorf("DNF S=%d not larger than COMPACT S=%d", ds.S, cs.S)
	}
	t.Logf("DNF %dx%d (S=%d) vs COMPACT %dx%d (S=%d)", ds.Rows, ds.Cols, ds.S, cs.Rows, cs.Cols, cs.S)
}

func TestMapErrors(t *testing.T) {
	if _, err := Map(&pla.Table{NumIn: 0, NumOut: 1}); err == nil {
		t.Error("zero-input cover accepted")
	}
	b := logic.NewBuilder("wide")
	b.Output("f", b.And(b.Inputs("x", 20)...))
	if _, err := MapNetwork(b.Build(), 10); err == nil {
		t.Error("too-wide network accepted")
	}
}

func randomNetwork(rng *rand.Rand, nIn, nGates int) *logic.Network {
	b := logic.NewBuilder("rand")
	var pool []int
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.Input(string(rune('a'+i))))
	}
	for g := 0; g < nGates; g++ {
		pick := func() int { return pool[rng.Intn(len(pool))] }
		var id int
		switch rng.Intn(5) {
		case 0:
			id = b.And(pick(), pick())
		case 1:
			id = b.Or(pick(), pick())
		case 2:
			id = b.Not(pick())
		case 3:
			id = b.Xor(pick(), pick())
		default:
			id = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, id)
	}
	b.Output("f", pool[len(pool)-1])
	b.Output("g", pool[len(pool)-2])
	return b.Build()
}

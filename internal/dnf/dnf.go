// Package dnf implements the early flow-based mapping style that COMPACT's
// introduction cites as motivation (references [7] and [11] of the paper):
// a Boolean function in disjunctive normal form is realized cube by cube,
// each product term becoming a private conducting chain from the input
// wordline to the output wordline through alternating bitlines and
// wordlines. Nothing is shared between cubes, which is why these designs
// are much larger than BDD-based ones — the comparison COMPACT improves on.
package dnf

import (
	"fmt"

	"compact/internal/logic"
	"compact/internal/pla"
	"compact/internal/xbar"
)

// Map builds a crossbar for a multi-output SOP cover. Layout: output
// wordlines on top (one per output), cube chain wordlines in the middle,
// and the input wordline at the bottom, matching the alignment convention
// of the rest of the repository.
func Map(t *pla.Table) (*xbar.Design, error) {
	if t.NumIn == 0 {
		return nil, fmt.Errorf("dnf: cover with no inputs")
	}
	// Plan each output's chains first to learn the dimensions.
	type chain struct {
		out  int
		lits []xbar.Entry // devices along the chain, length made even
	}
	var chains []chain
	for o := 0; o < t.NumOut; o++ {
		for _, c := range t.Cubes {
			if c.Out[o] != '1' {
				continue
			}
			var lits []xbar.Entry
			for i := 0; i < t.NumIn; i++ {
				switch c.In[i] {
				case '1':
					lits = append(lits, xbar.Entry{Kind: xbar.Lit, Var: int32(i)})
				case '0':
					lits = append(lits, xbar.Entry{Kind: xbar.Lit, Var: int32(i), Neg: true})
				}
			}
			if len(lits) == 0 {
				// Tautological cube: a pair of always-on devices.
				lits = []xbar.Entry{{Kind: xbar.On}}
			}
			if len(lits)%2 == 1 {
				// A chain from a wordline to a wordline crosses an even
				// number of devices; pad with an always-on one.
				lits = append(lits, xbar.Entry{Kind: xbar.On})
			}
			chains = append(chains, chain{out: o, lits: lits})
		}
	}

	rows := t.NumOut + 1 // outputs + input row
	cols := 0
	for _, c := range chains {
		m := len(c.lits) / 2
		rows += m - 1 // intermediate wordlines
		cols += m     // private bitlines
	}
	if cols == 0 {
		cols = 1
	}
	// Cube-chain designs explode quadratically with the cover; cap the
	// dense cell matrix rather than exhausting memory (this baseline's
	// unscalability is, after all, the point being demonstrated).
	if int64(rows)*int64(cols) > 600_000_000 {
		return nil, fmt.Errorf("dnf: design would need %d x %d cells; the cube-chain style does not scale to this cover", rows, cols)
	}
	d := xbar.NewDesign(rows, cols)
	d.InputRow = rows - 1
	names := t.InNames
	if len(names) != t.NumIn {
		names = make([]string, t.NumIn)
		for i := range names {
			names[i] = fmt.Sprintf("i%d", i)
		}
	}
	d.VarNames = names
	for o := 0; o < t.NumOut; o++ {
		d.OutputRows = append(d.OutputRows, o)
		name := fmt.Sprintf("o%d", o)
		if o < len(t.OutNames) {
			name = t.OutNames[o]
		}
		d.OutputNames = append(d.OutputNames, name)
	}

	nextRow := t.NumOut // first free interior wordline
	nextCol := 0
	for _, c := range chains {
		// Walk input row -> col -> row -> ... -> col -> output row.
		curRow := d.InputRow
		for k := 0; k < len(c.lits); k += 2 {
			col := nextCol
			nextCol++
			place(d, curRow, col, c.lits[k])
			if k+2 < len(c.lits) {
				curRow = nextRow
				nextRow++
			} else {
				curRow = c.out
			}
			place(d, curRow, col, c.lits[k+1])
		}
	}
	return d, nil
}

// place sets a device, merging with an identical preexisting assignment
// (cannot occur with private chains, but guards the invariant).
func place(d *xbar.Design, row, col int, e xbar.Entry) {
	if d.Cells[row][col].Kind != xbar.Off {
		panic(fmt.Sprintf("dnf: cell (%d,%d) assigned twice", row, col))
	}
	d.Cells[row][col] = e
}

// MapNetwork derives the minterm cover of a small network by truth-table
// enumeration (via pla.FromNetwork) and maps it. This mirrors how the
// early DNF-based tools scaled — or rather, did not: the design grows with
// the on-set size, not the BDD size.
func MapNetwork(nw *logic.Network, maxInputs int) (*xbar.Design, error) {
	t, err := pla.FromNetwork(nw, maxInputs)
	if err != nil {
		return nil, fmt.Errorf("dnf: %w", err)
	}
	return Map(t)
}

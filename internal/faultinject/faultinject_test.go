package faultinject

import (
	"context"
	"errors"
	"testing"
)

func TestDisabledByDefault(t *testing.T) {
	t.Setenv(EnvVar, "")
	if _, ok := Mode(StageBDD); ok {
		t.Fatal("injection enabled with empty spec")
	}
	if err := Err(StageBDD); err != nil {
		t.Fatalf("Err = %v with empty spec", err)
	}
}

func TestSpecParsing(t *testing.T) {
	t.Setenv(EnvVar, " parse , labeling=infeasible,server=unavailable,place=corrupt")
	for _, tc := range []struct {
		stage, mode string
		on          bool
	}{
		{StageParse, "fail", true},
		{StageLabeling, "infeasible", true},
		{StageServer, "unavailable", true},
		{StagePlace, "corrupt", true},
		{StageBDD, "", false},
		{StageMap, "", false},
	} {
		mode, ok := Mode(tc.stage)
		if ok != tc.on || mode != tc.mode {
			t.Errorf("Mode(%s) = %q,%v want %q,%v", tc.stage, mode, ok, tc.mode, tc.on)
		}
	}
}

func TestGenericErrors(t *testing.T) {
	t.Setenv(EnvVar, "bdd,xbar=timeout,labeling=infeasible")
	if err := Err(StageBDD); !errors.Is(err, ErrInjected) {
		t.Fatalf("fail mode: %v", err)
	}
	err := Err(StageMap)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout mode: %v", err)
	}
	// Site-specific modes produce no generic error; the site handles them.
	if err := Err(StageLabeling); err != nil {
		t.Fatalf("site-specific mode leaked a generic error: %v", err)
	}
}

func TestMalformedEntriesIgnored(t *testing.T) {
	t.Setenv(EnvVar, ",,=fail, bdd=")
	if _, ok := Mode(StageParse); ok {
		t.Fatal("empty entry matched a stage")
	}
	// "bdd=" (empty mode) falls back to the default fail mode.
	if mode, ok := Mode(StageBDD); !ok || mode != "fail" {
		t.Fatalf("Mode(bdd) = %q,%v", mode, ok)
	}
}

// Package faultinject provides deterministic, environment-gated fault
// injection at the COMPACT pipeline's stage boundaries. It exists so tests
// (and operators running chaos drills) can force each error path — parse
// failure, BDD blow-up, labeling infeasibility, mapping failure, placement
// corruption, server unavailability — and assert that the pipeline
// degrades the documented way (structured error, anytime result, compactd
// 4xx/5xx) instead of panicking or silently emitting a wrong crossbar.
//
// Injection is controlled entirely by the COMPACT_FAULTS environment
// variable, a comma-separated list of stage[=mode] entries:
//
//	COMPACT_FAULTS=bdd                      # generic failure at the BDD stage
//	COMPACT_FAULTS=labeling=infeasible      # labeling reports infeasibility
//	COMPACT_FAULTS=parse,server=unavailable # multiple stages at once
//
// The package holds no mutable state: the environment is consulted on
// every probe, so tests can flip injection on and off with t.Setenv and
// the zero-configuration cost is one os.Getenv per stage boundary per
// request. With the variable unset every probe is a no-op, which is the
// production configuration.
//
// Modes are interpreted by the injection site; the two generic ones are
// handled here (Err): "fail" (the default) yields an error wrapping
// ErrInjected, "timeout" yields one wrapping context.DeadlineExceeded.
// Site-specific modes (e.g. "infeasible" at the labeling boundary,
// "corrupt" at the placement boundary, "unavailable" at the server
// boundary) are read through Mode.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
)

// EnvVar is the environment variable holding the injection spec.
const EnvVar = "COMPACT_FAULTS"

// Stage names for the pipeline boundaries that carry injection probes.
const (
	StageParse    = "parse"    // circuit ingestion (internal/parse)
	StageBDD      = "bdd"      // BDD construction (core)
	StageLabeling = "labeling" // VH-labeling solve (core)
	StageMap      = "xbar"     // crossbar mapping (core)
	StagePlace    = "place"    // defect-aware placement (core)
	StageSpice    = "spice"    // electrical Monte Carlo margin analysis (internal/spice)
	StageServer   = "server"   // compactd request admission
)

// ErrInjected marks every error produced by this package, so handlers and
// tests can recognize injected failures with errors.Is.
var ErrInjected = errors.New("injected fault")

// Mode reports whether injection is enabled for stage, and with which
// mode ("fail" when the spec names the stage without an explicit mode).
// Malformed spec entries are ignored rather than guessed at.
func Mode(stage string) (string, bool) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return "", false
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, mode, hasMode := strings.Cut(entry, "=")
		if name != stage {
			continue
		}
		if !hasMode || mode == "" {
			mode = "fail"
		}
		return mode, true
	}
	return "", false
}

// Err returns the error to inject at stage, or nil when injection is off
// or the configured mode is site-specific. Generic modes:
//
//	fail    → error wrapping ErrInjected
//	timeout → error wrapping both ErrInjected and context.DeadlineExceeded
func Err(stage string) error {
	mode, ok := Mode(stage)
	if !ok {
		return nil
	}
	switch mode {
	case "fail":
		return fmt.Errorf("faultinject: %w at stage %s", ErrInjected, stage)
	case "timeout":
		return fmt.Errorf("faultinject: %w at stage %s: %w", ErrInjected, stage, context.DeadlineExceeded)
	}
	return nil // site-specific mode; the boundary interprets it via Mode
}

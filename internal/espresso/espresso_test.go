package espresso

import (
	"math/rand"
	"strings"
	"testing"

	"compact/internal/bdd"
	"compact/internal/logic"
	"compact/internal/pla"
)

func parse(t *testing.T, src string) *pla.Table {
	t.Helper()
	tab, err := pla.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestTautology(t *testing.T) {
	cases := []struct {
		cover []cube
		nVars int
		want  bool
	}{
		{[]cube{cube("--")}, 2, true},
		{[]cube{cube("1-"), cube("0-")}, 2, true},
		{[]cube{cube("1-")}, 2, false},
		{[]cube{cube("11"), cube("10"), cube("01"), cube("00")}, 2, true},
		{[]cube{cube("11"), cube("10"), cube("01")}, 2, false},
		{nil, 2, false},
		{[]cube{cube("1-0"), cube("0--"), cube("--1")}, 3, true},
	}
	for i, c := range cases {
		if got := tautology(c.cover, c.nVars); got != c.want {
			t.Errorf("case %d: tautology = %v, want %v", i, got, c.want)
		}
	}
}

func TestContainsIntersects(t *testing.T) {
	if !contains(cube("1--"), cube("1-0")) {
		t.Error("contains wrong")
	}
	if contains(cube("1-0"), cube("1--")) {
		t.Error("reverse contains wrong")
	}
	if !intersects(cube("1-0"), cube("-10")) {
		t.Error("intersects wrong")
	}
	if intersects(cube("1-0"), cube("0--")) {
		t.Error("disjoint cubes intersect")
	}
}

func TestMinimizeMergesAdjacent(t *testing.T) {
	// f = a'b + ab = b; two minterm-ish cubes merge into one.
	tab := parse(t, ".i 2\n.o 1\n01 1\n11 1\n.e\n")
	min, err := Minimize(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Cubes) != 1 || min.Cubes[0].In != "-1" {
		t.Fatalf("minimized cover = %+v, want single cube -1", min.Cubes)
	}
}

func TestMinimizeFullTautology(t *testing.T) {
	// All four minterms: cover collapses to the universal cube.
	tab := parse(t, ".i 2\n.o 1\n00 1\n01 1\n10 1\n11 1\n.e\n")
	min, err := Minimize(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Cubes) != 1 || min.Cubes[0].In != "--" {
		t.Fatalf("cover = %+v, want universal cube", min.Cubes)
	}
}

func TestMinimizeUsesDontCares(t *testing.T) {
	// on = {11}, dc = {10}: the prime is 1-.
	tab := parse(t, ".i 2\n.o 1\n11 1\n10 -\n.e\n")
	min, err := Minimize(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Cubes) != 1 || min.Cubes[0].In != "1-" {
		t.Fatalf("cover = %+v, want 1-", min.Cubes)
	}
}

// equivalentTables checks function equality via canonical BDDs, treating
// '-' outputs in the original as satisfied by any result value.
func equivalentTables(t *testing.T, orig, min *pla.Table) {
	t.Helper()
	nw1, err := orig.Network("a")
	if err != nil {
		t.Fatal(err)
	}
	nw2, err := min.Network("a")
	if err != nil {
		t.Fatal(err)
	}
	eq, w, err := bdd.Equivalent(nw1, nw2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("minimization changed the function; witness %v", w)
	}
}

func TestMinimizeRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		nIn := 3 + rng.Intn(4)
		nOut := 1 + rng.Intn(3)
		tab := &pla.Table{NumIn: nIn, NumOut: nOut}
		nCubes := 2 + rng.Intn(10)
		for c := 0; c < nCubes; c++ {
			in := make([]byte, nIn)
			for i := range in {
				in[i] = "01-"[rng.Intn(3)]
			}
			out := make([]byte, nOut)
			for i := range out {
				out[i] = "01"[rng.Intn(2)]
			}
			tab.Cubes = append(tab.Cubes, pla.Cube{In: string(in), Out: string(out)})
		}
		min, err := Minimize(tab)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		equivalentTables(t, tab, min)
		// Per output, the cover only ever shrinks: EXPAND drops literals,
		// IRREDUNDANT drops cubes. (The merged multi-output table can grow
		// in total rows when a shared cube expands differently per output,
		// so the comparison must be per output.)
		for o := 0; o < nOut; o++ {
			if got, orig := perOutputLiterals(min, o), perOutputLiterals(tab, o); got > orig {
				t.Errorf("trial %d output %d: literals grew %d -> %d", trial, o, orig, got)
			}
		}
	}
}

func TestMinimizedCoverIsPrimeAndIrredundant(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 10; trial++ {
		nIn := 4
		tab := &pla.Table{NumIn: nIn, NumOut: 1}
		for c := 0; c < 6; c++ {
			in := make([]byte, nIn)
			for i := range in {
				in[i] = "01-"[rng.Intn(3)]
			}
			tab.Cubes = append(tab.Cubes, pla.Cube{In: string(in), Out: "1"})
		}
		min, err := Minimize(tab)
		if err != nil {
			t.Fatal(err)
		}
		var cover []cube
		for _, c := range min.Cubes {
			cover = append(cover, cube(c.In))
		}
		// Prime: no literal can be raised without leaving the function.
		for i, c := range cover {
			for v := 0; v < nIn; v++ {
				if c[v] == litDash {
					continue
				}
				raised := c.clone()
				raised[v] = litDash
				if coveredBy(raised, cover, nIn) {
					t.Errorf("trial %d: cube %d not prime (var %d liftable)", trial, i, v)
				}
			}
		}
		// Irredundant: removing any cube changes the function.
		for i := range cover {
			rest := append(append([]cube{}, cover[:i]...), cover[i+1:]...)
			if coveredBy(cover[i], rest, nIn) {
				t.Errorf("trial %d: cube %d redundant", trial, i)
			}
		}
	}
}

func TestMinimizeDecoderStaysMinterms(t *testing.T) {
	// A decoder's outputs are single minterms: already prime and
	// irredundant, so minimization must not change the cube count.
	b := logic.NewBuilder("dec3")
	sel := b.Inputs("s", 3)
	for v := 0; v < 8; v++ {
		lits := make([]int, 3)
		for i := range lits {
			if v&(1<<uint(i)) != 0 {
				lits[i] = sel[i]
			} else {
				lits[i] = b.Not(sel[i])
			}
		}
		b.Output("y"+string(rune('0'+v)), b.And(lits...))
	}
	nw := b.Build()
	tab, err := pla.FromNetwork(nw, 0)
	if err != nil {
		t.Fatal(err)
	}
	min, err := Minimize(tab)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Cubes) != 8 {
		t.Errorf("decoder cover changed: %d cubes, want 8", len(min.Cubes))
	}
	equivalentTables(t, tab, min)
}

func TestMinimizeErrors(t *testing.T) {
	if _, err := Minimize(&pla.Table{NumIn: -1, NumOut: 1}); err == nil {
		t.Error("malformed table accepted")
	}
}

func TestCountLiterals(t *testing.T) {
	tab := parse(t, ".i 3\n.o 1\n1-0 1\n--- 1\n.e\n")
	if got := CountLiterals(tab); got != 2 {
		t.Errorf("literals = %d, want 2", got)
	}
}

// perOutputLiterals counts fixed literals over the cubes feeding output o.
func perOutputLiterals(t *pla.Table, o int) int {
	n := 0
	for _, c := range t.Cubes {
		if c.Out[o] != '1' {
			continue
		}
		for i := 0; i < len(c.In); i++ {
			if c.In[i] != '-' {
				n++
			}
		}
	}
	return n
}

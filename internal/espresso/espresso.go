// Package espresso is a two-level logic minimizer in the Espresso family:
// it turns a PLA cover into a prime and irredundant cover of the same
// function using the classic EXPAND / IRREDUNDANT loop over single-output
// covers, with cube-covering checks done by recursive tautology testing.
//
// Compared to Berkeley Espresso this implementation makes two documented
// simplifications: outputs are minimized independently (identical cubes
// are merged back into multi-output rows afterwards), and the REDUCE pass
// is replaced by repeated EXPAND orders — the result is still prime and
// irredundant, just not always minimum. Cubes with output '-' are treated
// as don't-cares for that output (espresso's fr-type semantics).
package espresso

import (
	"fmt"
	"sort"

	"compact/internal/pla"
)

// Literal values inside a cube.
const (
	lit0    byte = '0'
	lit1    byte = '1'
	litDash byte = '-'
)

// cube is the input part of a product term.
type cube []byte

func (c cube) clone() cube { return append(cube(nil), c...) }

// contains reports a ⊇ b (a covers every minterm of b).
func contains(a, b cube) bool {
	for i := range a {
		if a[i] != litDash && a[i] != b[i] {
			return false
		}
	}
	return true
}

// intersects reports whether two cubes share a minterm.
func intersects(a, b cube) bool {
	for i := range a {
		if a[i] != litDash && b[i] != litDash && a[i] != b[i] {
			return false
		}
	}
	return true
}

// cofactor computes the Shannon cofactor of a cover with respect to
// setting variable v to value val ('0' or '1'); cubes conflicting with the
// assignment drop out, the rest lose the variable (set to dash).
func cofactor(cover []cube, v int, val byte) []cube {
	var out []cube
	for _, c := range cover {
		if c[v] != litDash && c[v] != val {
			continue
		}
		nc := c.clone()
		nc[v] = litDash
		out = append(out, nc)
	}
	return out
}

// cofactorCube cofactors the cover against every fixed literal of q.
func cofactorCube(cover []cube, q cube) []cube {
	out := cover
	for v, lit := range q {
		if lit != litDash {
			out = cofactor(out, v, lit)
		}
	}
	return out
}

// tautology reports whether the cover equals the constant-1 function,
// by binate splitting with unate shortcuts.
func tautology(cover []cube, nVars int) bool {
	if len(cover) == 0 {
		return false
	}
	// All-dash row: tautology immediately.
	for _, c := range cover {
		allDash := true
		for _, l := range c {
			if l != litDash {
				allDash = false
				break
			}
		}
		if allDash {
			return true
		}
	}
	// Pick the most binate variable (appears in both polarities most).
	bestV, bestScore := -1, -1
	for v := 0; v < nVars; v++ {
		zeros, ones := 0, 0
		for _, c := range cover {
			switch c[v] {
			case lit0:
				zeros++
			case lit1:
				ones++
			}
		}
		if zeros > 0 && ones > 0 {
			if s := zeros + ones; s > bestScore {
				bestV, bestScore = v, s
			}
		}
	}
	if bestV < 0 {
		// Unate cover without an all-dash row is never a tautology.
		return false
	}
	return tautology(cofactor(cover, bestV, lit0), nVars) &&
		tautology(cofactor(cover, bestV, lit1), nVars)
}

// coveredBy reports whether cube q is entirely inside the cover.
func coveredBy(q cube, cover []cube, nVars int) bool {
	return tautology(cofactorCube(cover, q), nVars)
}

// expand raises each cube of f to a prime implicant of f ∪ dc: literals
// are lifted to dash greedily while the cube stays inside the function.
// The order of lifting attempts follows varOrder.
func expand(f, dc []cube, nVars int, varOrder []int) []cube {
	care := append(append([]cube{}, f...), dc...)
	out := make([]cube, len(f))
	for i, c := range f {
		e := c.clone()
		for _, v := range varOrder {
			if e[v] == litDash {
				continue
			}
			saved := e[v]
			e[v] = litDash
			if !coveredBy(e, care, nVars) {
				e[v] = saved
			}
		}
		out[i] = e
	}
	return out
}

// irredundant removes cubes covered by the union of the remaining cubes
// and the don't-care set, preferring to drop smaller cubes first.
func irredundant(f, dc []cube, nVars int) []cube {
	// Sort by ascending freedom (fewer dashes first): small cubes are the
	// most likely to be redundant, so test them first.
	idx := make([]int, len(f))
	for i := range idx {
		idx[i] = i
	}
	dashes := func(c cube) int {
		d := 0
		for _, l := range c {
			if l == litDash {
				d++
			}
		}
		return d
	}
	sort.SliceStable(idx, func(a, b int) bool { return dashes(f[idx[a]]) < dashes(f[idx[b]]) })

	alive := make([]bool, len(f))
	for i := range alive {
		alive[i] = true
	}
	for _, i := range idx {
		rest := make([]cube, 0, len(f)+len(dc)-1)
		for j, c := range f {
			if j != i && alive[j] {
				rest = append(rest, c)
			}
		}
		rest = append(rest, dc...)
		if coveredBy(f[i], rest, nVars) {
			alive[i] = false
		}
	}
	var out []cube
	for i, c := range f {
		if alive[i] {
			out = append(out, c)
		}
	}
	return out
}

// dedupe drops duplicate and contained cubes.
func dedupe(f []cube) []cube {
	var out []cube
	for i, c := range f {
		covered := false
		for j, d := range f {
			if i == j {
				continue
			}
			if contains(d, c) && !(contains(c, d) && j > i) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, c)
		}
	}
	return out
}

// minimizeSingle runs the expand/irredundant loop on one output's on-set
// and dc-set until the cover stops shrinking.
func minimizeSingle(on, dc []cube, nVars int) []cube {
	if len(on) == 0 {
		return nil
	}
	f := make([]cube, len(on))
	for i, c := range on {
		f[i] = c.clone()
	}
	f = dedupe(f)
	orders := [][]int{forwardOrder(nVars), reverseOrder(nVars)}
	prev := -1
	for round := 0; len(f) != prev && round < 8; round++ {
		prev = len(f)
		f = expand(f, dc, nVars, orders[round%len(orders)])
		f = dedupe(f)
		f = irredundant(f, dc, nVars)
	}
	return f
}

func forwardOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

func reverseOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = n - 1 - i
	}
	return o
}

// Minimize returns a prime, irredundant multi-output cover computing the
// same completely-specified function as t (don't-care output entries may
// resolve either way). Cubes identical across outputs are merged into
// single rows.
func Minimize(t *pla.Table) (*pla.Table, error) {
	if t.NumIn < 0 || t.NumOut <= 0 {
		return nil, fmt.Errorf("espresso: malformed table (%d in, %d out)", t.NumIn, t.NumOut)
	}
	perOutput := make([][]cube, t.NumOut)
	for o := 0; o < t.NumOut; o++ {
		var on, dc []cube
		for _, c := range t.Cubes {
			switch c.Out[o] {
			case '1':
				on = append(on, cube(c.In))
			case '-':
				dc = append(dc, cube(c.In))
			}
		}
		perOutput[o] = minimizeSingle(on, dc, t.NumIn)
	}
	// Merge identical input parts across outputs into multi-output rows.
	rowOf := map[string]int{}
	out := &pla.Table{
		Name:     t.Name,
		NumIn:    t.NumIn,
		NumOut:   t.NumOut,
		InNames:  append([]string(nil), t.InNames...),
		OutNames: append([]string(nil), t.OutNames...),
	}
	for o, cubes := range perOutput {
		for _, c := range cubes {
			key := string(c)
			i, ok := rowOf[key]
			if !ok {
				i = len(out.Cubes)
				rowOf[key] = i
				outPart := make([]byte, t.NumOut)
				for k := range outPart {
					outPart[k] = '0'
				}
				out.Cubes = append(out.Cubes, pla.Cube{In: key, Out: string(outPart)})
			}
			row := []byte(out.Cubes[i].Out)
			row[o] = '1'
			out.Cubes[i].Out = string(row)
		}
	}
	out.DeclaredNP = len(out.Cubes)
	return out, nil
}

// CountLiterals sums the fixed literals over all cubes, the usual
// two-level cost metric next to the cube count.
func CountLiterals(t *pla.Table) int {
	n := 0
	for _, c := range t.Cubes {
		for i := 0; i < len(c.In); i++ {
			if c.In[i] != '-' {
				n++
			}
		}
	}
	return n
}

package defect

import (
	"encoding/json"
	"fmt"
)

// The defect-map wire format (version 1)
//
// Maps marshal to a sparse JSON object mirroring the xbar.Design wire
// format — only faulty cells are listed:
//
//	{
//	  "v": 1,
//	  "rows": 8, "cols": 8,
//	  "cells": [
//	    {"r": 0, "c": 3, "k": "off"},
//	    {"r": 5, "c": 1, "k": "on"}
//	  ]
//	}
//
// "k" is "on" for stuck-ON (always conducting) and "off" for stuck-OFF
// (never conducting) devices. Cells appear in row-major order.
// UnmarshalJSON validates dimensions, coordinates, kinds and duplicates,
// so a decoded map is structurally sound or the decode fails with a
// descriptive error.

// mapWireVersion is the current wire format version; UnmarshalJSON accepts
// exactly this value (or an absent field, treated as 1).
const mapWireVersion = 1

type mapJSON struct {
	Version int        `json:"v"`
	Rows    int        `json:"rows"`
	Cols    int        `json:"cols"`
	Cells   []cellJSON `json:"cells"`
}

type cellJSON struct {
	Row int    `json:"r"`
	Col int    `json:"c"`
	K   string `json:"k"`
}

// MarshalJSON encodes the map in the sparse wire format above.
func (m *Map) MarshalJSON() ([]byte, error) {
	mj := mapJSON{
		Version: mapWireVersion,
		Rows:    m.Rows(),
		Cols:    m.Cols(),
		Cells:   []cellJSON{},
	}
	for _, c := range m.Cells() {
		mj.Cells = append(mj.Cells, cellJSON{Row: c.Row, Col: c.Col, K: c.Kind.String()})
	}
	return json.Marshal(mj)
}

// UnmarshalJSON decodes and validates the sparse wire format. Unknown wire
// versions, out-of-range cells, unknown kinds and duplicate cells are all
// rejected.
func (m *Map) UnmarshalJSON(data []byte) error {
	var mj mapJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return fmt.Errorf("defect: decoding map: %w", err)
	}
	if mj.Version == 0 {
		mj.Version = mapWireVersion
	}
	if mj.Version != mapWireVersion {
		return fmt.Errorf("defect: unsupported map wire version %d (want %d)", mj.Version, mapWireVersion)
	}
	nm, err := New(mj.Rows, mj.Cols)
	if err != nil {
		return err
	}
	for i, c := range mj.Cells {
		if _, dup := nm.At(c.Row, c.Col); dup {
			return fmt.Errorf("defect: duplicate cell at (%d,%d)", c.Row, c.Col)
		}
		var k Kind
		switch c.K {
		case "off":
			k = StuckOff
		case "on":
			k = StuckOn
		default:
			return fmt.Errorf("defect: cell #%d has unknown kind %q", i, c.K)
		}
		if err := nm.Set(c.Row, c.Col, k); err != nil {
			return fmt.Errorf("defect: cell #%d: %w", i, err)
		}
	}
	*m = *nm
	return nil
}

// Package defect models manufacturing faults of a memristive crossbar:
// individual devices stuck at low resistance (stuck-ON, the cell always
// conducts) or at high resistance (stuck-OFF, the cell never conducts).
//
// A Map describes one physical array: its dimensions and the set of faulty
// cells. Maps are generated deterministically from a seed at configurable
// rates (Generate), loaded from the versioned JSON wire format (see
// json.go), and content-addressed via Digest so a defect map can
// participate in compactd's synthesis cache key. The placement machinery
// that maps a logical design onto a defective array lives in
// internal/xbar (Place); this package is deliberately free of crossbar
// dependencies so every layer of the pipeline can speak "defect map".
package defect

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"

	"compact/internal/wirelimit"
)

// Kind classifies one faulty device.
type Kind uint8

// Fault kinds. The zero value is reserved for "no fault" so that map
// lookups can distinguish absence from either stuck state.
const (
	StuckOff Kind = iota + 1 // device is permanently high-resistance: never conducts
	StuckOn                  // device is permanently low-resistance: always conducts
)

// String returns the wire name of the kind ("off" / "on").
func (k Kind) String() string {
	switch k {
	case StuckOff:
		return "off"
	case StuckOn:
		return "on"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Cell is one faulty device at a physical array position.
type Cell struct {
	Row, Col int
	Kind     Kind
}

// Map is the defect map of one physical crossbar array. The zero value is
// unusable; construct with New, Generate or by decoding the JSON wire
// format. A nil *Map behaves as a fault-free array of unknown (zero)
// dimensions in the read accessors, which lets callers thread "no defect
// model" through APIs without special cases.
type Map struct {
	rows, cols int
	faults     map[int64]Kind
}

// MaxDim bounds each dimension of a defect map. The wire format reaches
// New from untrusted request JSON, and because the format is sparse a
// few-byte body could otherwise declare a multi-terabyte array and drive
// the placement machinery — which allocates per-physical-line state —
// out of memory. The cap is wirelimit.MaxDim, shared with every other
// wire-decoded crossbar dimension: 65536 lines per side is far beyond any
// fabricated crossbar, and it keeps rows*cols within 2^32 so the int64
// cell keys can never overflow or collide.
const MaxDim = wirelimit.MaxDim

// New returns an empty (fault-free) defect map for a rows x cols array.
// Dimensions must lie in [0, MaxDim].
func New(rows, cols int) (*Map, error) {
	if err := wirelimit.CheckDim("defect map rows", rows); err != nil {
		return nil, fmt.Errorf("defect: %v", err)
	}
	if err := wirelimit.CheckDim("defect map cols", cols); err != nil {
		return nil, fmt.Errorf("defect: %v", err)
	}
	return &Map{rows: rows, cols: cols, faults: make(map[int64]Kind)}, nil
}

func (m *Map) key(r, c int) int64 { return int64(r)*int64(m.cols) + int64(c) }

// Rows returns the physical array's row count (0 for nil).
func (m *Map) Rows() int {
	if m == nil {
		return 0
	}
	return m.rows
}

// Cols returns the physical array's column count (0 for nil).
func (m *Map) Cols() int {
	if m == nil {
		return 0
	}
	return m.cols
}

// Len returns the number of faulty cells (0 for nil).
func (m *Map) Len() int {
	if m == nil {
		return 0
	}
	return len(m.faults)
}

// Set marks the device at (r, c) as stuck with the given kind, replacing
// any previous fault there.
func (m *Map) Set(r, c int, k Kind) error {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return fmt.Errorf("defect: cell (%d,%d) outside %dx%d", r, c, m.rows, m.cols)
	}
	if k != StuckOff && k != StuckOn {
		return fmt.Errorf("defect: unknown fault kind %d", uint8(k))
	}
	m.faults[m.key(r, c)] = k
	return nil
}

// At reports the fault at (r, c), if any. Out-of-range positions and nil
// maps report no fault.
func (m *Map) At(r, c int) (Kind, bool) {
	if m == nil || r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return 0, false
	}
	k, ok := m.faults[m.key(r, c)]
	return k, ok
}

// Count returns the number of stuck-ON and stuck-OFF cells.
func (m *Map) Count() (stuckOn, stuckOff int) {
	if m == nil {
		return 0, 0
	}
	for _, k := range m.faults {
		if k == StuckOn {
			stuckOn++
		} else {
			stuckOff++
		}
	}
	return stuckOn, stuckOff
}

// Cells returns the faulty cells in row-major order. The deterministic
// order makes serialization, digests and iteration reproducible.
func (m *Map) Cells() []Cell {
	if m == nil {
		return nil
	}
	out := make([]Cell, 0, len(m.faults))
	for key, k := range m.faults {
		r, c := int(key/int64(m.cols)), int(key%int64(m.cols))
		out = append(out, Cell{Row: r, Col: c, Kind: k})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Row != out[j].Row {
			return out[i].Row < out[j].Row
		}
		return out[i].Col < out[j].Col
	})
	return out
}

// Clone returns a deep copy (nil clones to nil).
func (m *Map) Clone() *Map {
	if m == nil {
		return nil
	}
	c := &Map{rows: m.rows, cols: m.cols, faults: make(map[int64]Kind, len(m.faults))}
	for k, v := range m.faults {
		c.faults[k] = v
	}
	return c
}

// Digest returns a stable content hash of the map in the same
// "sha256:<hex>" form as logic.Network.Fingerprint and core.Options.Key.
// Two maps with the same dimensions and fault set digest equal regardless
// of construction order; a nil map digests to "none".
func (m *Map) Digest() string {
	if m == nil {
		return "none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "compact-defects-v1|%dx%d", m.rows, m.cols)
	for _, c := range m.Cells() {
		fmt.Fprintf(&b, "|%d,%d,%s", c.Row, c.Col, c.Kind)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("sha256:%x", sum)
}

// splitmix64 is the deterministic PRNG behind Generate: tiny, seedable and
// stable across platforms, so a (dims, rate, seed) triple always yields
// the same map — the property the synthesis cache key relies on.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFloat maps a PRNG draw to [0, 1).
func unitFloat(state *uint64) float64 {
	return float64(splitmix64(state)>>11) / float64(1<<53)
}

// Generate builds a seeded random defect map: every device is faulty
// independently with probability rate, and a faulty device is stuck-ON
// with probability onFraction (stuck-OFF otherwise). Generation is fully
// deterministic in (rows, cols, rate, onFraction, seed).
func Generate(rows, cols int, rate, onFraction float64, seed uint64) (*Map, error) {
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("defect: rate %v outside [0,1]", rate)
	}
	if onFraction < 0 || onFraction > 1 {
		return nil, fmt.Errorf("defect: onFraction %v outside [0,1]", onFraction)
	}
	m, err := New(rows, cols)
	if err != nil {
		return nil, err
	}
	state := seed ^ 0xdeadbeefcafef00d
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if unitFloat(&state) >= rate {
				continue
			}
			k := StuckOff
			if unitFloat(&state) < onFraction {
				k = StuckOn
			}
			m.faults[m.key(r, c)] = k
		}
	}
	return m, nil
}

package defect

import (
	"encoding/json"
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(16, 16, 0.1, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(16, 16, 0.1, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("same seed produced different maps: %s vs %s", a.Digest(), b.Digest())
	}
	c, err := Generate(16, 16, 0.1, 0.5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == c.Digest() {
		t.Fatal("different seeds produced identical maps")
	}
}

func TestGenerateRate(t *testing.T) {
	const rows, cols = 200, 200
	const rate = 0.05
	m, err := Generate(rows, cols, rate, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(m.Len()) / float64(rows*cols)
	if math.Abs(got-rate) > 0.01 {
		t.Fatalf("defect rate %v, want ~%v", got, rate)
	}
	on, off := m.Count()
	if on+off != m.Len() {
		t.Fatalf("Count %d+%d != Len %d", on, off, m.Len())
	}
	if on == 0 || off == 0 {
		t.Fatalf("expected both kinds at onFraction 0.5: on=%d off=%d", on, off)
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	if _, err := Generate(4, 4, -0.1, 0.5, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := Generate(4, 4, 0.5, 1.5, 1); err == nil {
		t.Error("onFraction > 1 accepted")
	}
	if _, err := Generate(-1, 4, 0.5, 0.5, 1); err == nil {
		t.Error("negative rows accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m, err := Generate(10, 12, 0.2, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Map
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Digest() != m.Digest() {
		t.Fatalf("round trip changed digest: %s vs %s", back.Digest(), m.Digest())
	}
	if back.Rows() != 10 || back.Cols() != 12 || back.Len() != m.Len() {
		t.Fatalf("round trip changed shape: %dx%d len %d", back.Rows(), back.Cols(), back.Len())
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-encode not byte-identical:\n%s\n%s", data, again)
	}
}

func TestJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad version":    `{"v":2,"rows":2,"cols":2,"cells":[]}`,
		"negative dims":  `{"rows":-1,"cols":2,"cells":[]}`,
		"out of range":   `{"rows":2,"cols":2,"cells":[{"r":2,"c":0,"k":"on"}]}`,
		"negative coord": `{"rows":2,"cols":2,"cells":[{"r":0,"c":-1,"k":"on"}]}`,
		"unknown kind":   `{"rows":2,"cols":2,"cells":[{"r":0,"c":0,"k":"flaky"}]}`,
		"duplicate":      `{"rows":2,"cols":2,"cells":[{"r":0,"c":0,"k":"on"},{"r":0,"c":0,"k":"off"}]}`,
		"not an object":  `[1,2,3]`,
		// The sparse wire format makes a multi-terabyte array a few bytes;
		// the MaxDim cap must reject it at decode, before any per-line
		// allocation downstream.
		"oversized dims": `{"v":1,"rows":1099511627776,"cols":1099511627776,"cells":[{"r":0,"c":0,"k":"off"}]}`,
	}
	for name, src := range cases {
		var m Map
		if err := json.Unmarshal([]byte(src), &m); err == nil {
			t.Errorf("%s: accepted %s", name, src)
		}
	}
}

func TestNewRejectsOversizedDims(t *testing.T) {
	for _, dims := range [][2]int{{MaxDim + 1, 1}, {1, MaxDim + 1}, {math.MaxInt, math.MaxInt}} {
		if _, err := New(dims[0], dims[1]); err == nil {
			t.Errorf("New(%d, %d) accepted dimensions beyond MaxDim", dims[0], dims[1])
		}
	}
	// The boundary itself is legal, and MaxDim x MaxDim keeps the cell
	// keys within 2^32 so distinct cells can never collide.
	m, err := New(MaxDim, MaxDim)
	if err != nil {
		t.Fatalf("New(MaxDim, MaxDim): %v", err)
	}
	if err := m.Set(MaxDim-1, MaxDim-1, StuckOn); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(0, 0, StuckOff); err != nil {
		t.Fatal(err)
	}
	if k, ok := m.At(MaxDim-1, MaxDim-1); !ok || k != StuckOn {
		t.Fatalf("corner cell lost: kind %v, present %t", k, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("key collision: %d cells stored, want 2", m.Len())
	}
}

func TestSetAtClone(t *testing.T) {
	m, err := New(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Set(1, 2, StuckOn); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(3, 0, StuckOn); err == nil {
		t.Error("out-of-range Set accepted")
	}
	if err := m.Set(0, 0, Kind(9)); err == nil {
		t.Error("unknown kind accepted")
	}
	if k, ok := m.At(1, 2); !ok || k != StuckOn {
		t.Fatalf("At(1,2) = %v,%v", k, ok)
	}
	if _, ok := m.At(2, 2); ok {
		t.Fatal("fault reported at clean cell")
	}
	cl := m.Clone()
	if err := cl.Set(0, 0, StuckOff); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.At(0, 0); ok {
		t.Fatal("Clone shares fault storage with the original")
	}
}

func TestNilMapAccessors(t *testing.T) {
	var m *Map
	if m.Rows() != 0 || m.Cols() != 0 || m.Len() != 0 {
		t.Fatal("nil map reports non-zero shape")
	}
	if _, ok := m.At(0, 0); ok {
		t.Fatal("nil map reports a fault")
	}
	if m.Digest() != "none" {
		t.Fatalf("nil digest %q", m.Digest())
	}
	if m.Clone() != nil {
		t.Fatal("nil Clone not nil")
	}
	if m.Cells() != nil {
		t.Fatal("nil Cells not nil")
	}
}

func TestCellsRowMajor(t *testing.T) {
	m, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int{{3, 1}, {0, 2}, {3, 0}, {1, 1}} {
		if err := m.Set(c[0], c[1], StuckOff); err != nil {
			t.Fatal(err)
		}
	}
	cells := m.Cells()
	for i := 1; i < len(cells); i++ {
		a, b := cells[i-1], cells[i]
		if a.Row > b.Row || (a.Row == b.Row && a.Col >= b.Col) {
			t.Fatalf("cells not in row-major order: %v", cells)
		}
	}
}

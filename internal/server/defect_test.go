package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compact/internal/core"
	"compact/internal/faultinject"
	"compact/internal/logic"
)

// TestSynthesizeWithDefectsEndToEnd drives a defect-aware request through
// the full HTTP path: the response must carry the placement view, the
// repair metrics must move, and the defect configuration must be part of
// the cache key (same circuit, different rate -> miss, not hit).
func TestSynthesizeWithDefectsEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := circuitRequest(`{"method": "heuristic", "defect_rate": 0.02, "defect_seed": 42}`)
	status, disp, body := post(t, ts.URL, req)
	if status != http.StatusOK || disp != "miss" {
		t.Fatalf("status %d, disposition %q, body %s", status, disp, body)
	}
	var resp struct {
		Result core.ResultView `json:"result"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	p := resp.Result.Placement
	if p == nil {
		t.Fatalf("defect-aware response lacks a placement view: %s", body)
	}
	if p.RepairAttempts < 1 || len(p.RowPerm) == 0 || len(p.ColPerm) == 0 {
		t.Fatalf("placement view malformed: %+v", p)
	}

	// Identical request: byte-identical cache hit.
	if status, disp, second := post(t, ts.URL, req); status != http.StatusOK || disp != "hit" || !bytes.Equal(body, second) {
		t.Fatalf("repeat: status %d, disposition %q, identical=%t", status, disp, bytes.Equal(body, second))
	}
	// Different defect seed: different generated map, different cache key,
	// so this must reach the solver again — whatever its verdict on the
	// denser map, it must not be served from the first request's cache slot.
	other := circuitRequest(`{"method": "heuristic", "defect_rate": 0.05, "defect_seed": 42}`)
	if status, disp, b := post(t, ts.URL, other); disp == "hit" {
		t.Fatalf("different rate served from cache: status %d, body %s — defects must be in the cache key", status, b)
	}

	var doc struct {
		Compactd struct {
			Placements     int64 `json:"placements_total"`
			RepairAttempts int64 `json:"repair_attempts_total"`
		} `json:"compactd"`
	}
	getJSON(t, ts.URL+"/debug/vars", &doc)
	if doc.Compactd.Placements < 1 || doc.Compactd.RepairAttempts < doc.Compactd.Placements {
		t.Fatalf("placement metrics off: %+v", doc.Compactd)
	}
}

// TestUnplaceableReturns422 posts an explicit defect map too small for the
// synthesized design: placement is impossible as a property of the request,
// so the server must answer 422 with the typed verdict's message (and count
// it), not a 500.
func TestUnplaceableReturns422(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := circuitRequest(`{"method": "heuristic", "defects": {"v": 1, "rows": 1, "cols": 1, "cells": []}}`)
	status, _, body := post(t, ts.URL, req)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (body %s)", status, body)
	}
	if !bytes.Contains(body, []byte("unplaceable")) {
		t.Fatalf("422 body does not name the unplaceable verdict: %s", body)
	}
	var doc struct {
		Compactd struct {
			Unplaceable int64 `json:"unplaceable_total"`
			SolveErrors int64 `json:"solve_errors_total"`
		} `json:"compactd"`
	}
	getJSON(t, ts.URL+"/debug/vars", &doc)
	if doc.Compactd.Unplaceable != 1 || doc.Compactd.SolveErrors != 1 {
		t.Fatalf("unplaceable metrics off: %+v", doc.Compactd)
	}
}

// TestOversizedDefectMapRejected posts the few-byte sparse body that
// declares a multi-terabyte defect map. The decode must reject it as a
// client error before any placement machinery allocates per-line state —
// previously this OOM-killed the whole process — and the server must stay
// healthy for subsequent requests.
func TestOversizedDefectMapRejected(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := circuitRequest(`{"method": "heuristic", "defects": {"v": 1, "rows": 1099511627776, "cols": 1099511627776, "cells": [{"r": 0, "c": 0, "k": "off"}]}}`)
	status, _, body := post(t, ts.URL, req)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", status, body)
	}
	if !bytes.Contains(body, []byte("cap")) {
		t.Fatalf("400 body does not name the dimension cap: %s", body)
	}
	if status, _, body := post(t, ts.URL, circuitRequest(`{"method": "heuristic"}`)); status != http.StatusOK {
		t.Fatalf("server unhealthy after oversized-map request: status %d, body %s", status, body)
	}
}

// TestServerFaultInjection drives the compactd admission probe: the
// documented degraded responses are a 503 for "unavailable" and a 500 for
// the generic failure mode — never a crash, and recovery is immediate once
// the variable clears.
func TestServerFaultInjection(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := circuitRequest(`{"method": "heuristic"}`)

	t.Setenv(faultinject.EnvVar, "server=unavailable")
	if status, _, body := post(t, ts.URL, req); status != http.StatusServiceUnavailable {
		t.Fatalf("unavailable: status %d, body %s", status, body)
	}
	t.Setenv(faultinject.EnvVar, "server")
	if status, _, body := post(t, ts.URL, req); status != http.StatusInternalServerError {
		t.Fatalf("fail: status %d, body %s", status, body)
	}
	t.Setenv(faultinject.EnvVar, "")
	if status, _, body := post(t, ts.URL, req); status != http.StatusOK {
		t.Fatalf("recovery: status %d, body %s", status, body)
	}
}

// TestLeaderDisconnectStillFillsCache is the singleflight failure-path
// test: the leader whose HTTP client disconnects mid-solve must not cancel
// the detached solve — it completes, fills the cache, and the next
// identical request is a hit without a second pipeline run.
func TestLeaderDisconnectStillFillsCache(t *testing.T) {
	var solves atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	ts := newTestServer(t, Config{
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			if solves.Add(1) == 1 {
				close(started)
			}
			<-release
			return core.SynthesizeContext(ctx, nw, opts)
		},
	})

	req := circuitRequest(`{"method": "heuristic"}`)
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/synthesize", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(httpReq)
		if resp != nil {
			_ = resp.Body.Close()
		}
		errc <- err
	}()

	<-started // the solve is running; now the leader walks away
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled leader request unexpectedly succeeded")
	}
	close(release) // let the detached solve finish

	// Wait for the abandoned solve to fill the cache (visible through the
	// cache_entries gauge), then the next identical request must be a hit
	// with the pipeline having run exactly once.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var doc struct {
			Compactd struct {
				Entries int64 `json:"cache_entries"`
			} `json:"compactd"`
		}
		getJSON(t, ts.URL+"/debug/vars", &doc)
		if doc.Compactd.Entries == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached solve never filled the cache after leader disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status, disp, body := post(t, ts.URL, req); status != http.StatusOK || disp != "hit" {
		t.Fatalf("post-disconnect request: status %d, disposition %q, body %s", status, disp, body)
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("pipeline ran %d times, want exactly 1", got)
	}
}

// TestCacheChurnConcurrentAtByteBound hammers the result cache from many
// goroutines at a tight byte bound (run under -race): every interleaving
// must keep the accounting invariants — tracked bytes within the bound and
// matching the sum of live entries.
func TestCacheChurnConcurrentAtByteBound(t *testing.T) {
	const bound = 256
	c := newResultCache(0, bound)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%24)
				switch i % 3 {
				case 0:
					c.put(key, bytes.Repeat([]byte{byte(g)}, 16+i%48))
				case 1:
					if body, ok := c.get(key); ok && len(body) == 0 {
						t.Errorf("empty body for live key %s", key)
					}
				default:
					if entries, total := c.stats(); total > bound || entries < 0 {
						t.Errorf("stats out of bounds mid-churn: %d entries, %d bytes", entries, total)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	entries, total := c.stats()
	if total > bound {
		t.Fatalf("tracked bytes %d exceed the %d bound after churn", total, bound)
	}
	var live int64
	for k := 0; k < 24; k++ {
		if body, ok := c.get(fmt.Sprintf("k%d", k)); ok {
			live += int64(len(body))
		}
	}
	if live != total || entries < 0 {
		t.Fatalf("accounting drift: %d live body bytes vs %d tracked (%d entries)", live, total, entries)
	}
}

// getJSON fetches url and decodes the body into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

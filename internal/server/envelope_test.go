package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"compact/internal/core"
	"compact/internal/logic"
)

// validateEnvelope asserts body is exactly the error envelope — one
// top-level "error" key whose code is in the errorStatus table, whose
// canonical status matches the response status, and whose message is
// non-empty (the text-compat contract) — and returns the code.
func validateEnvelope(t *testing.T, status int, body []byte) string {
	t.Helper()
	var top map[string]json.RawMessage
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatalf("non-2xx body is not JSON: %s: %v", body, err)
	}
	if len(top) != 1 || top["error"] == nil {
		t.Fatalf("non-2xx body is not {\"error\": {...}}: %s", body)
	}
	var e struct {
		Code    string          `json:"code"`
		Message string          `json:"message"`
		Detail  json.RawMessage `json:"detail"`
	}
	if err := json.Unmarshal(top["error"], &e); err != nil {
		t.Fatalf("error member malformed: %s: %v", body, err)
	}
	if e.Code == "" || e.Message == "" {
		t.Fatalf("envelope lacks code or message: %s", body)
	}
	want, ok := errorStatus[e.Code]
	if !ok {
		t.Fatalf("code %q not in the errorStatus table: %s", e.Code, body)
	}
	if want != status {
		t.Fatalf("code %q came with status %d, table says %d", e.Code, status, want)
	}
	return e.Code
}

// envelopeCode is validateEnvelope without the status cross-check caller
// (the caller already asserted the status).
func envelopeCode(t *testing.T, body []byte) string {
	t.Helper()
	var doc struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("body is not the envelope: %s: %v", body, err)
	}
	return doc.Error.Code
}

// TestErrorEnvelopeEverywhere walks every /v1/* route's statically
// reachable failure modes — handler-written errors and the mux's own
// 404/405 — and validates each non-2xx body against the envelope schema.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	ts := newTestServer(t, Config{})
	missingID := strings.Repeat("0", 32)
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode string
	}{
		{"synthesize malformed json", "POST", "/v1/synthesize", `{`, "invalid_request"},
		{"synthesize unknown field", "POST", "/v1/synthesize", `{"circus": "x"}`, "invalid_request"},
		{"synthesize empty", "POST", "/v1/synthesize", `{}`, "invalid_request"},
		{"synthesize unknown benchmark", "POST", "/v1/synthesize", `{"benchmark": "nonesuch"}`, "unknown_benchmark"},
		{"synthesize unparseable", "POST", "/v1/synthesize", `{"circuit": "@@ not a netlist @@"}`, "parse_failed"},
		{"synthesize bad options", "POST", "/v1/synthesize", circuitRequest(`{"gamma": 1.5}`), "invalid_options"},
		{"synthesize infeasible caps", "POST", "/v1/synthesize", circuitRequest(`{"max_rows": 1, "max_cols": 1}`), "infeasible"},
		{"jobs malformed json", "POST", "/v1/jobs", `{`, "invalid_request"},
		{"jobs unknown benchmark", "POST", "/v1/jobs", `{"benchmark": "nonesuch"}`, "unknown_benchmark"},
		{"job status missing", "GET", "/v1/jobs/" + missingID, "", "job_not_found"},
		{"job result missing", "GET", "/v1/jobs/" + missingID + "/result", "", "job_not_found"},
		{"job cancel missing", "DELETE", "/v1/jobs/" + missingID, "", "job_not_found"},
		{"mux unknown route", "GET", "/v1/nonesuch", "", "not_found"},
		{"mux wrong method synthesize", "GET", "/v1/synthesize", "", "method_not_allowed"},
		{"mux wrong method jobs", "DELETE", "/v1/synthesize", "", "method_not_allowed"},
		{"mux wrong method benchmarks", "POST", "/v1/benchmarks", "", "method_not_allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode < 400 {
				t.Fatalf("status %d, want an error (body %s)", resp.StatusCode, body)
			}
			if got := validateEnvelope(t, resp.StatusCode, body); got != tc.wantCode {
				t.Fatalf("code %q, want %q (body %s)", got, tc.wantCode, body)
			}
		})
	}
}

// TestBudgetExceededMapsTo504 checks a solve that runs out its entire
// budget with no incumbent surfaces as the typed budget_exceeded
// envelope, not a generic 500.
func TestBudgetExceededMapsTo504(t *testing.T) {
	ts := newTestServer(t, Config{
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			return nil, fmt.Errorf("labeling never produced an incumbent: %w", context.DeadlineExceeded)
		},
	})
	status, _, body := post(t, ts.URL, circuitRequest(""))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s", status, body)
	}
	if code := validateEnvelope(t, status, body); code != "budget_exceeded" {
		t.Fatalf("code %q: %s", code, body)
	}
}

// TestShutdownEnvelope checks the draining server's refusal is the typed
// shutting_down envelope.
func TestShutdownEnvelope(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv, err := New(ctx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)
	cancel()
	status, _, body := post(t, ts.URL, circuitRequest(""))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, body %s", status, body)
	}
	if code := validateEnvelope(t, status, body); code != "shutting_down" {
		t.Fatalf("code %q: %s", code, body)
	}
}

// TestInternalErrorEnvelope checks an unclassifiable solve failure still
// comes back as the envelope with code internal.
func TestInternalErrorEnvelope(t *testing.T) {
	ts := newTestServer(t, Config{
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			return nil, fmt.Errorf("synthetic explosion")
		},
	})
	status, _, body := post(t, ts.URL, circuitRequest(""))
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, body %s", status, body)
	}
	if code := validateEnvelope(t, status, body); code != "internal" {
		t.Fatalf("code %q: %s", code, body)
	}
}

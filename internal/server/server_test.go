package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compact/internal/core"
	"compact/internal/logic"
)

// andOrBLIF is the test circuit f = (a AND b) OR c.
const andOrBLIF = `.model e2e
.inputs a b c
.outputs f
.names a b w
11 1
.names w c f
1- 1
-1 1
.end
`

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv, err := New(ctx, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newHTTPServer mounts an already-built Server on a test listener.
func newHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// post sends one synthesize request and returns status, the
// X-Compactd-Cache disposition and the body.
func post(t *testing.T, url, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("X-Compactd-Cache"), data
}

func circuitRequest(opts string) string {
	if opts == "" {
		return fmt.Sprintf(`{"circuit": %q}`, andOrBLIF)
	}
	return fmt.Sprintf(`{"circuit": %q, "options": %s}`, andOrBLIF, opts)
}

// TestCacheHitByteIdenticalAndFast is the headline acceptance test: a
// repeated identical request must be served from cache byte-identically
// and at least 100x faster than the solve that populated it.
func TestCacheHitByteIdenticalAndFast(t *testing.T) {
	const coldSolve = 600 * time.Millisecond
	ts := newTestServer(t, Config{
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			time.Sleep(coldSolve)
			return core.SynthesizeContext(ctx, nw, opts)
		},
	})

	req := circuitRequest(`{"method": "heuristic"}`)
	t0 := time.Now()
	status, disp, first := post(t, ts.URL, req)
	missLatency := time.Since(t0)
	if status != http.StatusOK || disp != "miss" {
		t.Fatalf("first request: status %d, disposition %q, body %s", status, disp, first)
	}
	if missLatency < coldSolve {
		t.Fatalf("miss latency %v below the %v cold solve — hook not in the path?", missLatency, coldSolve)
	}

	// Best of several attempts so an unlucky scheduler hiccup on one
	// round-trip cannot fail the ratio check.
	hitLatency := time.Duration(1 << 62)
	var second []byte
	for i := 0; i < 5; i++ {
		t0 = time.Now()
		status, disp, body := post(t, ts.URL, req)
		if d := time.Since(t0); d < hitLatency {
			hitLatency = d
			second = body
		}
		if status != http.StatusOK || disp != "hit" {
			t.Fatalf("repeat request %d: status %d, disposition %q", i, status, disp)
		}
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit body differs from the miss body:\nmiss: %s\nhit:  %s", first, second)
	}
	if 100*hitLatency > missLatency {
		t.Fatalf("cache hit latency %v is not >=100x lower than miss latency %v", hitLatency, missLatency)
	}
}

// TestSingleflightDedup checks that N concurrent identical requests run
// the synthesis pipeline exactly once and all get identical bodies.
func TestSingleflightDedup(t *testing.T) {
	var solves atomic.Int64
	ts := newTestServer(t, Config{
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			solves.Add(1)
			time.Sleep(200 * time.Millisecond) // hold the flight open for joiners
			return core.SynthesizeContext(ctx, nw, opts)
		},
	})

	const n = 8
	req := circuitRequest(`{"method": "heuristic"}`)
	var (
		start  sync.WaitGroup
		done   sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
		disps  []string
	)
	start.Add(1)
	for i := 0; i < n; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			status, disp, body := post(t, ts.URL, req)
			mu.Lock()
			defer mu.Unlock()
			if status != http.StatusOK {
				t.Errorf("status %d, body %s", status, body)
			}
			bodies = append(bodies, body)
			disps = append(disps, disp)
		}()
	}
	start.Done()
	done.Wait()

	if got := solves.Load(); got != 1 {
		t.Fatalf("synthesis ran %d times for %d concurrent identical requests, want exactly 1", got, n)
	}
	var misses, shared, hits int
	for _, d := range disps {
		switch d {
		case "miss":
			misses++
		case "shared":
			shared++
		case "hit":
			hits++
		default:
			t.Errorf("unexpected disposition %q", d)
		}
	}
	if misses != 1 {
		t.Errorf("got %d miss dispositions, want exactly 1 (shared=%d hit=%d)", misses, shared, hits)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}

// TestTimeLimitPolicy checks the server's budget policy: absent limits get
// the default, oversized limits are clamped, and the applied value is
// what reaches the pipeline (and hence the cache key).
func TestTimeLimitPolicy(t *testing.T) {
	var mu sync.Mutex
	var seen []time.Duration
	ts := newTestServer(t, Config{
		DefaultTimeLimit: 123 * time.Millisecond,
		MaxTimeLimit:     250 * time.Millisecond,
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			mu.Lock()
			seen = append(seen, opts.TimeLimit)
			mu.Unlock()
			return core.SynthesizeContext(ctx, nw, opts)
		},
	})

	for _, opts := range []string{
		`{"method": "heuristic"}`,                          // absent -> default
		`{"method": "heuristic", "time_limit_ms": 600000}`, // oversized -> clamped
	} {
		if status, _, body := post(t, ts.URL, circuitRequest(opts)); status != http.StatusOK {
			t.Fatalf("options %s: status %d, body %s", opts, status, body)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{123 * time.Millisecond, 250 * time.Millisecond}
	if len(seen) != len(want) {
		t.Fatalf("pipeline ran %d times, want %d (clamped limit must still be a distinct cache key)", len(seen), len(want))
	}
	for i, w := range want {
		if seen[i] != w {
			t.Errorf("request %d: pipeline saw TimeLimit %v, want %v", i, seen[i], w)
		}
	}
}

// TestTinyBudgetStillSucceeds drives the real pipeline with a budget far
// below an exact solve: the anytime contract means the response is still a
// valid design, never a timeout error.
func TestTinyBudgetStillSucceeds(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := `{"benchmark": "ctrl", "options": {"method": "portfolio", "time_limit_ms": 100}}`
	status, _, body := post(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var resp struct {
		Result core.ResultView `json:"result"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Result.Design == nil || resp.Result.Labeling.Method == "" {
		t.Fatalf("degraded response lacks a design or labeling: %s", body)
	}
}

// TestCacheIsContentAddressed checks that renaming the model (which does
// not change the circuit's structure) still hits the cache.
func TestCacheIsContentAddressed(t *testing.T) {
	ts := newTestServer(t, Config{})
	opts := `{"method": "heuristic"}`
	renamed := strings.Replace(andOrBLIF, ".model e2e", ".model other_name", 1)

	if status, disp, body := post(t, ts.URL, circuitRequest(opts)); status != http.StatusOK || disp != "miss" {
		t.Fatalf("first: status %d, disposition %q, body %s", status, disp, body)
	}
	req := fmt.Sprintf(`{"circuit": %q, "options": %s}`, renamed, opts)
	if status, disp, body := post(t, ts.URL, req); status != http.StatusOK || disp != "hit" {
		t.Fatalf("renamed model: status %d, disposition %q, body %s — fingerprint should ignore names", status, disp, body)
	}
}

// TestBadRequests walks the 4xx surface.
func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", `{`, http.StatusBadRequest},
		{"unknown field", `{"circus": "x"}`, http.StatusBadRequest},
		{"empty request", `{}`, http.StatusBadRequest},
		{"circuit and benchmark", fmt.Sprintf(`{"circuit": %q, "benchmark": "ctrl"}`, andOrBLIF), http.StatusBadRequest},
		{"unknown benchmark", `{"benchmark": "nonesuch"}`, http.StatusNotFound},
		{"unknown format", fmt.Sprintf(`{"circuit": %q, "format": "vhdl"}`, andOrBLIF), http.StatusBadRequest},
		{"unparseable circuit", `{"circuit": "@@ not a netlist @@"}`, http.StatusBadRequest},
		{"gamma out of range", circuitRequest(`{"gamma": 1.5}`), http.StatusBadRequest},
		{"bad method", circuitRequest(`{"method": "quantum"}`), http.StatusBadRequest},
		{"negative time limit", circuitRequest(`{"time_limit_ms": -1}`), http.StatusBadRequest},
		{"bad var order", circuitRequest(`{"var_order": [0, 0, 1]}`), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := post(t, ts.URL, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (body %s)", status, tc.status, body)
			}
			var e struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error.Code == "" || e.Error.Message == "" {
				t.Fatalf("error body not the envelope: %s", body)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/v1/synthesize")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/synthesize: status %d, want 405", resp.StatusCode)
	}
}

// TestBenchmarksEndpoint checks the registry listing.
func TestBenchmarksEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc struct {
		Benchmarks []struct {
			Name    string `json:"name"`
			Suite   string `json:"suite"`
			Inputs  int    `json:"inputs"`
			Outputs int    `json:"outputs"`
		} `json:"benchmarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if len(doc.Benchmarks) < 10 {
		t.Fatalf("only %d benchmarks listed", len(doc.Benchmarks))
	}
	found := false
	for _, b := range doc.Benchmarks {
		if b.Name == "ctrl" {
			found = true
			if b.Suite != "epfl" || b.Inputs <= 0 || b.Outputs <= 0 {
				t.Errorf("ctrl entry malformed: %+v", b)
			}
		}
	}
	if !found {
		t.Fatalf("ctrl missing from listing")
	}
}

// TestHealthzAndShutdown checks liveness flips to 503 when the base
// context ends, and that new solves are refused.
func TestHealthzAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := New(ctx, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before shutdown: status %d", resp.StatusCode)
	}

	cancel()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("shutting_down")) {
		t.Fatalf("healthz after shutdown: status %d, body %s", resp.StatusCode, body)
	}
	if status, _, body := post(t, ts.URL, circuitRequest("")); status != http.StatusServiceUnavailable {
		t.Fatalf("synthesize after shutdown: status %d, body %s", status, body)
	}
}

// TestDebugVars checks the metrics document shape and that the counters
// move.
func TestDebugVars(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := circuitRequest(`{"method": "heuristic"}`)
	post(t, ts.URL, req)
	post(t, ts.URL, req) // cache hit
	post(t, ts.URL, `{`) // bad request

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var doc struct {
		Compactd struct {
			Requests    int64 `json:"requests_total"`
			Hits        int64 `json:"cache_hits_total"`
			Misses      int64 `json:"cache_misses_total"`
			Solves      int64 `json:"solves_total"`
			BadRequests int64 `json:"bad_requests_total"`
			Entries     int64 `json:"cache_entries"`
		} `json:"compactd"`
		Goroutines int `json:"goroutines"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /debug/vars: %v", err)
	}
	c := doc.Compactd
	if c.Requests != 3 || c.Hits != 1 || c.Misses != 1 || c.Solves != 1 || c.BadRequests != 1 || c.Entries != 1 {
		t.Fatalf("counters off: %+v", c)
	}
	if doc.Goroutines <= 0 {
		t.Fatalf("goroutines gauge missing")
	}
}

// TestPLAAndAutoFormat checks a non-BLIF circuit through the full HTTP
// path with format sniffing.
func TestPLAAndAutoFormat(t *testing.T) {
	ts := newTestServer(t, Config{})
	pla := ".i 2\n.o 1\n.ilb a b\n.ob f\n11 1\n.e\n"
	req := fmt.Sprintf(`{"circuit": %q, "name": "andgate"}`, pla)
	status, _, body := post(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	var resp struct {
		Result core.ResultView `json:"result"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if resp.Result.Circuit.Name != "andgate" || resp.Result.Circuit.Inputs != 2 {
		t.Fatalf("circuit view wrong: %+v", resp.Result.Circuit)
	}
}

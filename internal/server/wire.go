package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"compact/internal/core"
	"compact/internal/defect"
	"compact/internal/labeling"
	"compact/internal/wirelimit"
)

// The compactd wire format (version 2)
//
// Synchronous synthesis — POST /v1/synthesize:
//
//	{
//	  "circuit":   "<BLIF, PLA or structural Verilog source>",
//	  "benchmark": "ctrl",            // alternative to circuit
//	  "format":    "auto",            // auto | blif | pla | verilog
//	  "name":      "mytable",         // model name for PLA sources
//	  "options": {
//	    "gamma":         0.5,         // omit for the paper default
//	    "method":        "portfolio", // auto|oct|mip|heuristic|portfolio
//	    "bdd":           "sbdd",      // sbdd | robdds
//	    "no_align":      false,
//	    "time_limit_ms": 10000,       // per-request solve budget
//	    "var_order":     [2,0,1],
//	    "sift":          false,
//	    "node_limit":    0,
//	    "max_rows":      0,
//	    "max_cols":      0,
//	    "partition":     false,        // fall back to a multi-tile cascade
//	    "layers":        3,            // FLOW-3D: K-layer stack (0/1/2 = classic 2D)
//
//	    "defects":       {"v":1,"rows":8,"cols":8,"cells":[{"r":1,"c":2,"k":"off"}]},
//	    "defect_rate":   0.05,         // generate a seeded map instead
//	    "defect_on_fraction": 0.5,
//	    "defect_seed":   42,
//	    "max_repair_attempts": 3
//	  }
//	}
//
// Exactly one of circuit/benchmark must be set. The omitted-gamma rule is
// core's documented zero-value rule: an absent "gamma" means the paper
// default 0.5; an explicit 0 means γ = 0.
//
// Response (200):
//
//	{"key": "<cache key>", "result": {core.ResultView}}
//
// plus the X-Compactd-Cache header: "hit" (served from the in-memory
// cache), "disk" (served from the persistent store tier, surviving
// restarts), "miss" (this request ran the solve) or "shared" (joined a
// concurrent identical solve). Hit and disk bodies are byte-identical to
// the miss that cached them.
//
// Asynchronous synthesis — the /v1/jobs lifecycle (see jobs.go and
// DESIGN.md §13): POST /v1/jobs takes the same request body and returns
// 202 with a job document; GET /v1/jobs/{id} polls it; GET
// /v1/jobs/{id}/result serves the completed body byte-identically to the
// synchronous route; DELETE /v1/jobs/{id} cancels.
//
// Errors — every non-2xx body on every /v1/* route is the versioned
// envelope
//
//	{"error": {"code": "<stable snake_case>", "message": "...", "detail": {...}}}
//
// where code is drawn from the errorStatus table below (the single
// source of truth pairing each code with its canonical HTTP status),
// message is human-readable prose that may change between releases, and
// detail is an optional code-specific structure (infeasibleDetail for
// "infeasible", unplaceableDetail for "unplaceable"). Clients program
// against code and detail; message is for humans.

// Error codes. Stable: these strings are the machine-readable API
// contract; renaming one is a breaking change.
const (
	codeInvalidRequest    = "invalid_request"   // malformed body, bad field combination
	codeInvalidOptions    = "invalid_options"   // options failed validation or caps
	codeParseFailed       = "parse_failed"      // circuit source did not parse
	codeUnknownBenchmark  = "unknown_benchmark" // benchmark name not in the registry
	codeInfeasible        = "infeasible"        // dimension caps unsatisfiable (detail: infeasibleDetail)
	codeUnplaceable       = "unplaceable"       // defect map admits no placement (detail: unplaceableDetail)
	codeBudgetExceeded    = "budget_exceeded"   // solve budget expired with no result at all
	codeOverloaded        = "overloaded"        // job table full of live jobs
	codeShuttingDown      = "shutting_down"     // server draining; retry elsewhere
	codeRequestAbandoned  = "request_abandoned" // the requester's own context ended mid-wait
	codeCanceled          = "canceled"          // the underlying solve was canceled (job DELETE)
	codeInterrupted       = "interrupted"       // job did not survive a server restart
	codeStoreUnavailable  = "store_unavailable" // persistent store I/O failure
	codeJobNotFound       = "job_not_found"     // no such job id
	codeJobNotDone        = "job_not_done"      // result requested before the job finished
	codeResultEvicted     = "result_evicted"    // job finished but its body aged out of both cache tiers
	codeNotFound          = "not_found"         // no such /v1/* route
	codeMethodNotAllowed  = "method_not_allowed"
	codeMarginUnsupported = "margin_unsupported" // /v1/margin on a result with no single-array electrical model
	codeUnavailable       = "unavailable"        // fault-injection admission probe
	codeInternal          = "internal"           // unclassified server-side failure
)

// errorStatus is the single table pairing every error code with its
// canonical HTTP status. writeErrorCode consults it; the envelope test
// walks it. Codes that only ever appear embedded in a job document
// (canceled, interrupted) still carry the status GET /v1/jobs/{id}/result
// replays them with.
var errorStatus = map[string]int{
	codeInvalidRequest:    http.StatusBadRequest,
	codeInvalidOptions:    http.StatusBadRequest,
	codeParseFailed:       http.StatusBadRequest,
	codeUnknownBenchmark:  http.StatusNotFound,
	codeInfeasible:        http.StatusUnprocessableEntity,
	codeUnplaceable:       http.StatusUnprocessableEntity,
	codeBudgetExceeded:    http.StatusGatewayTimeout,
	codeOverloaded:        http.StatusTooManyRequests,
	codeShuttingDown:      http.StatusServiceUnavailable,
	codeRequestAbandoned:  http.StatusServiceUnavailable,
	codeCanceled:          http.StatusServiceUnavailable,
	codeInterrupted:       http.StatusServiceUnavailable,
	codeStoreUnavailable:  http.StatusServiceUnavailable,
	codeJobNotFound:       http.StatusNotFound,
	codeJobNotDone:        http.StatusConflict,
	codeResultEvicted:     http.StatusGone,
	codeNotFound:          http.StatusNotFound,
	codeMethodNotAllowed:  http.StatusMethodNotAllowed,
	codeMarginUnsupported: http.StatusUnprocessableEntity,
	codeUnavailable:       http.StatusServiceUnavailable,
	codeInternal:          http.StatusInternalServerError,
}

// wireError is the typed error every non-2xx response carries (and the
// error embedded in failed job documents). Message is always non-empty —
// that is the compat contract for clients that only surface text.
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  any    `json:"detail,omitempty"`
}

// errorEnvelope is every non-2xx response body.
type errorEnvelope struct {
	Error wireError `json:"error"`
}

// synthesizeRequest is the POST /v1/synthesize (and POST /v1/jobs) body.
type synthesizeRequest struct {
	Circuit   string       `json:"circuit,omitempty"`
	Benchmark string       `json:"benchmark,omitempty"`
	Format    string       `json:"format,omitempty"`
	Name      string       `json:"name,omitempty"`
	Options   *wireOptions `json:"options,omitempty"`
}

// wireOptions is the JSON projection of core.Options. Pointer fields
// distinguish "absent" from explicit zeros where the distinction matters
// (gamma's zero-value rule).
type wireOptions struct {
	Gamma       *float64 `json:"gamma,omitempty"`
	Method      string   `json:"method,omitempty"`
	BDD         string   `json:"bdd,omitempty"`
	NoAlign     bool     `json:"no_align,omitempty"`
	TimeLimitMS int64    `json:"time_limit_ms,omitempty"`
	VarOrder    []int    `json:"var_order,omitempty"`
	Sift        bool     `json:"sift,omitempty"`
	NodeLimit   int      `json:"node_limit,omitempty"`
	MaxRows     int      `json:"max_rows,omitempty"`
	MaxCols     int      `json:"max_cols,omitempty"`
	// Partition enables the multi-crossbar fallback: a function that
	// cannot fit one max_rows x max_cols tile is cut into a verified tile
	// cascade, returned as result.partition (core.PartitionView).
	Partition bool `json:"partition,omitempty"`
	// Layers selects the FLOW-3D K-layer stack (core.Options.Layers):
	// 0, 1 and 2 all mean the classic two-layer 2D pipeline; 3 and above
	// synthesize a layered design returned as result.design3d.
	Layers int `json:"layers,omitempty"`
	// Defects is an explicit defect map in defect.Map's v1 wire format;
	// DefectRate generates a seeded one instead (see core.Options). Both
	// are part of the cache key via core.Options.Key, so results against
	// differently defective arrays never alias.
	Defects           *defect.Map `json:"defects,omitempty"`
	DefectRate        float64     `json:"defect_rate,omitempty"`
	DefectOnFraction  float64     `json:"defect_on_fraction,omitempty"`
	DefectSeed        uint64      `json:"defect_seed,omitempty"`
	MaxRepairAttempts int         `json:"max_repair_attempts,omitempty"`
	// MarginAware turns on the electrical secondary placement objective:
	// among verified placements, prefer the one with the widest simulated
	// worst-case voltage margin (core.Options.MarginAware).
	MarginAware bool `json:"margin_aware,omitempty"`
}

// toCore maps wire options onto core.Options, applying the server's
// request-budget policy: an absent or zero time limit becomes
// defaultLimit, and any requested limit is clamped to maxLimit.
func (o *wireOptions) toCore(defaultLimit, maxLimit time.Duration) (core.Options, error) {
	var opts core.Options
	if o != nil {
		if o.Gamma != nil {
			opts.Gamma = *o.Gamma
			opts.GammaSet = true
		}
		m, err := core.MethodFromString(o.Method)
		if err != nil {
			return opts, err
		}
		opts.Method = m
		k, err := core.BDDKindFromString(o.BDD)
		if err != nil {
			return opts, err
		}
		opts.BDDKind = k
		opts.NoAlign = o.NoAlign
		if o.TimeLimitMS < 0 {
			return opts, fmt.Errorf("server: negative time_limit_ms %d", o.TimeLimitMS)
		}
		opts.TimeLimit = time.Duration(o.TimeLimitMS) * time.Millisecond
		// Every integer a request can turn into per-element work is capped
		// here, at the trust boundary, so nothing downstream has to guess
		// which sizes are attacker-controlled.
		if err := wirelimit.CheckCount("node_limit", o.NodeLimit, 4*core.DefaultNodeLimit); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		if err := wirelimit.CheckDim("max_rows", o.MaxRows); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		if err := wirelimit.CheckDim("max_cols", o.MaxCols); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		if err := wirelimit.CheckCount("max_repair_attempts", o.MaxRepairAttempts, 0); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		if err := wirelimit.CheckCount("layers", o.Layers, labeling.MaxLayers); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		if err := wirelimit.CheckPerm("var_order", o.VarOrder); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		opts.VarOrder = o.VarOrder
		opts.Sift = o.Sift
		opts.NodeLimit = o.NodeLimit
		opts.MaxRows = o.MaxRows
		opts.MaxCols = o.MaxCols
		opts.Partition = o.Partition
		opts.Layers = o.Layers
		opts.Defects = o.Defects
		opts.DefectRate = o.DefectRate
		opts.DefectOnFraction = o.DefectOnFraction
		opts.DefectSeed = o.DefectSeed
		opts.MaxRepairAttempts = o.MaxRepairAttempts
		opts.MarginAware = o.MarginAware
	}
	if opts.TimeLimit <= 0 {
		opts.TimeLimit = defaultLimit
	}
	if maxLimit > 0 && opts.TimeLimit > maxLimit {
		opts.TimeLimit = maxLimit
	}
	if err := opts.Validate(); err != nil {
		return opts, err
	}
	return opts.Canonical(), nil
}

// synthesizeResponse is the 200 body of /v1/synthesize (and of a
// completed job's /result route).
type synthesizeResponse struct {
	Key    string          `json:"key"`
	Result core.ResultView `json:"result"`
}

// benchmarkInfo is one /v1/benchmarks entry.
type benchmarkInfo struct {
	Name        string `json:"name"`
	Suite       string `json:"suite"`
	Inputs      int    `json:"inputs"`
	Outputs     int    `json:"outputs"`
	Description string `json:"description,omitempty"`
}

// infeasibleDetail is the "infeasible" code's detail: the wire form of
// core.InfeasibleError — the BDD-graph node count, the proven
// semiperimeter lower bound (nodes + odd-cycle packing) and the caps the
// request could not meet. A client can read off how far from feasible it
// was — and that max_rows + max_cols >= semiperimeter_lb is necessary for
// any single-tile solve — or retry with "partition": true.
type infeasibleDetail struct {
	Nodes           int `json:"nodes"`
	SemiperimeterLB int `json:"semiperimeter_lb"`
	MaxRows         int `json:"max_rows"`
	MaxCols         int `json:"max_cols"`
}

// unplaceableDetail is the "unplaceable" code's detail: the wire form of
// the typed *xbar.Unplaceable verdict. Proven distinguishes "search gave
// up" from "provably impossible" — only the latter makes a retry with a
// different seed pointless.
type unplaceableDetail struct {
	Stage      string `json:"stage"`
	LogicalRow int    `json:"logical_row,omitempty"`
	Candidates int    `json:"candidates,omitempty"`
	Proven     bool   `json:"proven"`
}

// writeJSON encodes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshaling our own wire types cannot fail for valid values;
		// degrade to a plain envelope rather than panicking mid-response.
		http.Error(w, `{"error":{"code":"internal","message":"response encoding failed"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

// writeErrorCode sends the error envelope for code, with its canonical
// status from the errorStatus table and an optional code-specific detail.
func writeErrorCode(w http.ResponseWriter, code string, detail any, format string, args ...any) {
	status, ok := errorStatus[code]
	if !ok {
		// A code missing from the table is a server bug; fail safe rather
		// than panic, and make the slip visible in the body.
		status, code = http.StatusInternalServerError, codeInternal
	}
	writeJSON(w, status, errorEnvelope{Error: wireError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		Detail:  detail,
	}})
}

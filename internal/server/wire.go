package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"compact/internal/core"
	"compact/internal/defect"
	"compact/internal/wirelimit"
)

// The /v1/synthesize wire format (version 1)
//
// Request:
//
//	{
//	  "circuit":   "<BLIF, PLA or structural Verilog source>",
//	  "benchmark": "ctrl",            // alternative to circuit
//	  "format":    "auto",            // auto | blif | pla | verilog
//	  "name":      "mytable",         // model name for PLA sources
//	  "options": {
//	    "gamma":         0.5,         // omit for the paper default
//	    "method":        "portfolio", // auto|oct|mip|heuristic|portfolio
//	    "bdd":           "sbdd",      // sbdd | robdds
//	    "no_align":      false,
//	    "time_limit_ms": 10000,       // per-request solve budget
//	    "var_order":     [2,0,1],
//	    "sift":          false,
//	    "node_limit":    0,
//	    "max_rows":      0,
//	    "max_cols":      0,
//	    "partition":     false,        // fall back to a multi-tile cascade

//	    "defects":       {"v":1,"rows":8,"cols":8,"cells":[{"r":1,"c":2,"k":"off"}]},
//	    "defect_rate":   0.05,         // generate a seeded map instead
//	    "defect_on_fraction": 0.5,
//	    "defect_seed":   42,
//	    "max_repair_attempts": 3
//	  }
//	}
//
// Exactly one of circuit/benchmark must be set. The omitted-gamma rule is
// core's documented zero-value rule: an absent "gamma" means the paper
// default 0.5; an explicit 0 means γ = 0.
//
// Response (200):
//
//	{"key": "<cache key>", "result": {core.ResultView}}
//
// plus the X-Compactd-Cache header: "hit" (served from cache), "miss"
// (this request ran the solve) or "shared" (joined a concurrent identical
// solve). Hit bodies are byte-identical to the miss that cached them.
//
// Errors are {"error": "..."} with 4xx for client mistakes (malformed
// JSON, unknown formats/benchmarks, invalid options, unparseable
// circuits), 404 for unknown benchmarks, 503 when shutting down and 500
// for internal synthesis failures.

// synthesizeRequest is the POST /v1/synthesize body.
type synthesizeRequest struct {
	Circuit   string       `json:"circuit,omitempty"`
	Benchmark string       `json:"benchmark,omitempty"`
	Format    string       `json:"format,omitempty"`
	Name      string       `json:"name,omitempty"`
	Options   *wireOptions `json:"options,omitempty"`
}

// wireOptions is the JSON projection of core.Options. Pointer fields
// distinguish "absent" from explicit zeros where the distinction matters
// (gamma's zero-value rule).
type wireOptions struct {
	Gamma       *float64 `json:"gamma,omitempty"`
	Method      string   `json:"method,omitempty"`
	BDD         string   `json:"bdd,omitempty"`
	NoAlign     bool     `json:"no_align,omitempty"`
	TimeLimitMS int64    `json:"time_limit_ms,omitempty"`
	VarOrder    []int    `json:"var_order,omitempty"`
	Sift        bool     `json:"sift,omitempty"`
	NodeLimit   int      `json:"node_limit,omitempty"`
	MaxRows     int      `json:"max_rows,omitempty"`
	MaxCols     int      `json:"max_cols,omitempty"`
	// Partition enables the multi-crossbar fallback: a function that
	// cannot fit one max_rows x max_cols tile is cut into a verified tile
	// cascade, returned as result.partition (core.PartitionView).
	Partition bool `json:"partition,omitempty"`
	// Defects is an explicit defect map in defect.Map's v1 wire format;
	// DefectRate generates a seeded one instead (see core.Options). Both
	// are part of the cache key via core.Options.Key, so results against
	// differently defective arrays never alias.
	Defects           *defect.Map `json:"defects,omitempty"`
	DefectRate        float64     `json:"defect_rate,omitempty"`
	DefectOnFraction  float64     `json:"defect_on_fraction,omitempty"`
	DefectSeed        uint64      `json:"defect_seed,omitempty"`
	MaxRepairAttempts int         `json:"max_repair_attempts,omitempty"`
}

// toCore maps wire options onto core.Options, applying the server's
// request-budget policy: an absent or zero time limit becomes
// defaultLimit, and any requested limit is clamped to maxLimit.
func (o *wireOptions) toCore(defaultLimit, maxLimit time.Duration) (core.Options, error) {
	var opts core.Options
	if o != nil {
		if o.Gamma != nil {
			opts.Gamma = *o.Gamma
			opts.GammaSet = true
		}
		m, err := core.MethodFromString(o.Method)
		if err != nil {
			return opts, err
		}
		opts.Method = m
		k, err := core.BDDKindFromString(o.BDD)
		if err != nil {
			return opts, err
		}
		opts.BDDKind = k
		opts.NoAlign = o.NoAlign
		if o.TimeLimitMS < 0 {
			return opts, fmt.Errorf("server: negative time_limit_ms %d", o.TimeLimitMS)
		}
		opts.TimeLimit = time.Duration(o.TimeLimitMS) * time.Millisecond
		// Every integer a request can turn into per-element work is capped
		// here, at the trust boundary, so nothing downstream has to guess
		// which sizes are attacker-controlled.
		if err := wirelimit.CheckCount("node_limit", o.NodeLimit, 4*core.DefaultNodeLimit); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		if err := wirelimit.CheckDim("max_rows", o.MaxRows); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		if err := wirelimit.CheckDim("max_cols", o.MaxCols); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		if err := wirelimit.CheckCount("max_repair_attempts", o.MaxRepairAttempts, 0); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		if err := wirelimit.CheckPerm("var_order", o.VarOrder); err != nil {
			return opts, fmt.Errorf("server: %v", err)
		}
		opts.VarOrder = o.VarOrder
		opts.Sift = o.Sift
		opts.NodeLimit = o.NodeLimit
		opts.MaxRows = o.MaxRows
		opts.MaxCols = o.MaxCols
		opts.Partition = o.Partition
		opts.Defects = o.Defects
		opts.DefectRate = o.DefectRate
		opts.DefectOnFraction = o.DefectOnFraction
		opts.DefectSeed = o.DefectSeed
		opts.MaxRepairAttempts = o.MaxRepairAttempts
	}
	if opts.TimeLimit <= 0 {
		opts.TimeLimit = defaultLimit
	}
	if maxLimit > 0 && opts.TimeLimit > maxLimit {
		opts.TimeLimit = maxLimit
	}
	if err := opts.Validate(); err != nil {
		return opts, err
	}
	return opts.Canonical(), nil
}

// synthesizeResponse is the 200 body of /v1/synthesize.
type synthesizeResponse struct {
	Key    string          `json:"key"`
	Result core.ResultView `json:"result"`
}

// benchmarkInfo is one /v1/benchmarks entry.
type benchmarkInfo struct {
	Name        string `json:"name"`
	Suite       string `json:"suite"`
	Inputs      int    `json:"inputs"`
	Outputs     int    `json:"outputs"`
	Description string `json:"description,omitempty"`
}

// errorResponse is every non-200 body. Infeasible is attached to 422s
// caused by a dimension-cap infeasibility and explains the refusal
// quantitatively (see core.InfeasibleError).
type errorResponse struct {
	Error      string            `json:"error"`
	Infeasible *infeasibleDetail `json:"infeasible,omitempty"`
}

// infeasibleDetail is the wire form of core.InfeasibleError: the BDD-graph
// node count, the proven semiperimeter lower bound (nodes + odd-cycle
// packing) and the caps the request could not meet. A client can read off
// how far from feasible it was — and that max_rows + max_cols >=
// semiperimeter_lb is necessary for any single-tile solve — or retry with
// "partition": true.
type infeasibleDetail struct {
	Nodes           int `json:"nodes"`
	SemiperimeterLB int `json:"semiperimeter_lb"`
	MaxRows         int `json:"max_rows"`
	MaxCols         int `json:"max_cols"`
}

// writeJSON encodes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshaling our own wire types cannot fail for valid values;
		// degrade to a plain 500 rather than panicking mid-response.
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

// writeError sends a JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestRestartWarmFromDiskTier is the durability acceptance test: a
// result synthesized by one server life must be served by the next life
// over the same store directory byte-identically from the disk tier,
// with X-Compactd-Cache: disk, and be a memory hit after promotion.
func TestRestartWarmFromDiskTier(t *testing.T) {
	dir := t.TempDir()
	req := circuitRequest(`{"method": "heuristic"}`)

	// First life: populate both tiers, then shut down.
	ctxA, cancelA := context.WithCancel(context.Background())
	srvA, err := New(ctxA, Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := newHTTPServer(t, srvA)
	status, disp, first := post(t, tsA.URL, req)
	if status != http.StatusOK || disp != "miss" {
		t.Fatalf("first life: status %d disposition %q, body %s", status, disp, first)
	}
	tsA.Close()
	cancelA()

	// Second life: fresh process state, same directory.
	ctxB, cancelB := context.WithCancel(context.Background())
	t.Cleanup(cancelB)
	srvB, err := New(ctxB, Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsB := newHTTPServer(t, srvB)

	status, disp, warm := post(t, tsB.URL, req)
	if status != http.StatusOK {
		t.Fatalf("after restart: status %d, body %s", status, warm)
	}
	if disp != "disk" {
		t.Fatalf("after restart: disposition %q, want disk", disp)
	}
	if string(warm) != string(first) {
		t.Fatalf("disk-tier body differs from the original:\nwas: %s\nnow: %s", first, warm)
	}

	// The disk hit promoted the entry back into memory.
	status, disp, again := post(t, tsB.URL, req)
	if status != http.StatusOK || disp != "hit" {
		t.Fatalf("after promotion: status %d disposition %q", status, disp)
	}
	if string(again) != string(first) {
		t.Fatal("memory-promoted body differs from the original")
	}

	// The disk-tier counters moved.
	resp, err := http.Get(tsB.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var doc struct {
		Compactd struct {
			DiskHits     int64 `json:"cache_disk_hits_total"`
			StoreEntries int64 `json:"store_entries"`
			StoreBytes   int64 `json:"store_bytes"`
		} `json:"compactd"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Compactd.DiskHits != 1 || doc.Compactd.StoreEntries != 1 || doc.Compactd.StoreBytes <= 0 {
		t.Fatalf("store counters off: %+v", doc.Compactd)
	}
}

// TestJobResultSurvivesRestart checks a done job whose record and result
// both persisted is fully servable by the next server life: status done,
// result from the disk tier, byte-identical.
func TestJobResultSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := circuitRequest(`{"method": "heuristic"}`)

	ctxA, cancelA := context.WithCancel(context.Background())
	srvA, err := New(ctxA, Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := newHTTPServer(t, srvA)
	status, sub, raw := doJSON(t, http.MethodPost, tsA.URL+"/v1/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}
	doc := pollJob(t, tsA.URL, sub.StatusURL, 30*time.Second)
	if doc.Status != "done" {
		t.Fatalf("job finished %q", doc.Status)
	}
	resp, err := http.Get(tsA.URL + doc.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	tsA.Close()
	cancelA()

	ctxB, cancelB := context.WithCancel(context.Background())
	t.Cleanup(cancelB)
	srvB, err := New(ctxB, Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsB := newHTTPServer(t, srvB)

	status, doc2, raw := doJSON(t, http.MethodGet, tsB.URL+sub.StatusURL, "")
	if status != http.StatusOK || doc2.Status != "done" {
		t.Fatalf("recovered job: status %d, body %s", status, raw)
	}
	resp, err = http.Get(tsB.URL + doc2.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	warm, _ := io.ReadAll(resp.Body)
	disp := resp.Header.Get("X-Compactd-Cache")
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || disp != "disk" {
		t.Fatalf("recovered result: status %d disposition %q, body %s", resp.StatusCode, disp, warm)
	}
	if string(warm) != string(first) {
		t.Fatal("recovered job result differs from the original")
	}
}

package server

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent work by key, in the style of
// golang.org/x/sync/singleflight (reimplemented here: the repo is
// dependency-free). Unlike the x/sync version, the winning call runs in
// its own goroutine detached from any single request's context: waiters
// that give up (client disconnect, request deadline) do not cancel the
// shared solve, so the result still lands in the cache for the others.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one in-progress computation.
type flight struct {
	done chan struct{} // closed when body/err are set
	body []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// do returns the flight computing key, starting fn in a new goroutine if
// none is in progress, and whether this caller started it. fn runs to
// completion exactly once per flight regardless of how many callers join
// or abandon it.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (f *flight, leader bool) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		g.mu.Unlock()
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		body, err := fn()
		// Unregister before publishing: later requests must consult the
		// cache (which fn populated on success) rather than this flight.
		g.mu.Lock()
		delete(g.flights, key)
		g.mu.Unlock()
		f.body, f.err = body, err
		close(f.done)
	}()
	return f, true
}

// wait blocks until the flight completes or ctx is done, whichever comes
// first. On ctx expiry the flight keeps running in the background.
func (f *flight) wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.body, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"compact/internal/core"
	"compact/internal/logic"
)

// The async job API
//
// POST /v1/jobs accepts the same body as /v1/synthesize but returns
// immediately with 202 and a job id; the solve runs on the same worker
// pool (deduplicated through the same singleflight group, so a job and a
// synchronous request for the same key share one solve). GET
// /v1/jobs/{id} polls the lifecycle
//
//	queued -> running -> done | failed
//
// with live progress (verified-repair attempts, completed tiles) fed by
// core.WithProgress callbacks. DELETE /v1/jobs/{id} cancels via the
// job's derived context: a queued job is released before it ever takes a
// worker slot, a running one has its solve canceled (which any
// synchronous waiters sharing the flight observe as the "canceled"
// code). GET /v1/jobs/{id}/result serves the completed body from the
// cache tiers with the usual X-Compactd-Cache disposition.
//
// When the server has a store directory, job records persist as
// <storeDir>/jobs/<id>.json (atomic tmp+rename, rewritten on every
// transition). On restart terminal jobs are recovered as-is — a done
// job's result is typically still on the disk tier — and jobs that were
// queued or running resurface as failed with the "interrupted" code, so
// a submitted job never silently vanishes.

// Job lifecycle states.
const (
	jobQueued  = "queued"
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

// jobRecordVersion is the persisted record format version.
const jobRecordVersion = 1

// job is one asynchronous solve. The progress atomics are written by the
// synthesis goroutine and read by status polls; mu guards the lifecycle
// fields.
type job struct {
	id      string
	key     string
	created time.Time
	cancel  context.CancelFunc // nil for jobs recovered from disk

	repairAttempts atomic.Int64
	tilesDone      atomic.Int64

	mu      sync.Mutex
	status  string
	code    string // envelope code when failed
	message string // human-readable failure message
}

// terminal reports whether the job has reached done or failed.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == jobDone || j.status == jobFailed
}

// jobRecord is the on-disk snapshot of a job (v1).
type jobRecord struct {
	V              int    `json:"v"`
	ID             string `json:"id"`
	Status         string `json:"status"`
	Key            string `json:"key"`
	CreatedUnixMS  int64  `json:"created_unix_ms"`
	Code           string `json:"code,omitempty"`
	Message        string `json:"message,omitempty"`
	RepairAttempts int64  `json:"repair_attempts,omitempty"`
	TilesDone      int64  `json:"tiles_done,omitempty"`
}

// snapshot captures the job's current state as a persistable record.
func (j *job) snapshot() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobRecord{
		V:              jobRecordVersion,
		ID:             j.id,
		Status:         j.status,
		Key:            j.key,
		CreatedUnixMS:  j.created.UnixMilli(),
		Code:           j.code,
		Message:        j.message,
		RepairAttempts: j.repairAttempts.Load(),
		TilesDone:      j.tilesDone.Load(),
	}
}

// jobTable is the bounded registry of jobs, counting both live and
// terminal entries so finished jobs stay pollable until evicted.
type jobTable struct {
	max     int
	dir     string // "" = records are not persisted
	metrics *metrics

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // insertion order (oldest first), for eviction
}

// newJobTable builds the table and, when dir-backed, recovers records
// from <storeDir>/jobs: terminal jobs load as-is, interrupted ones are
// rewritten as failed. Returns an error only when the directory cannot
// be created or scanned.
func newJobTable(max int, storeDir string, m *metrics) (*jobTable, error) {
	t := &jobTable{max: max, metrics: m, jobs: make(map[string]*job)}
	if storeDir == "" {
		return t, nil
	}
	t.dir = filepath.Join(storeDir, "jobs")
	if err := os.MkdirAll(t.dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return nil, err
	}
	var recovered []*job
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		if strings.HasPrefix(name, "tmp-") {
			_ = os.Remove(filepath.Join(t.dir, name)) // crash debris
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		j, ok := t.loadRecord(id)
		if !ok {
			continue
		}
		recovered = append(recovered, j)
	}
	sort.Slice(recovered, func(a, b int) bool {
		return recovered[a].created.Before(recovered[b].created)
	})
	for _, j := range recovered {
		t.jobs[j.id] = j
		t.order = append(t.order, j.id)
	}
	t.evictLocked() // all recovered jobs are terminal, so this always fits
	return t, nil
}

// loadRecord reads and validates one persisted record, rewriting
// interrupted (queued/running) jobs as failed. Undecodable or
// foreign-looking files are removed rather than trusted.
func (t *jobTable) loadRecord(id string) (*job, bool) {
	path := filepath.Join(t.dir, id+".json")
	if !isJobID(id) {
		_ = os.Remove(path)
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.metrics.storeErrors.Add(1)
		return nil, false
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil || rec.V != jobRecordVersion || rec.ID != id {
		_ = os.Remove(path)
		return nil, false
	}
	j := &job{
		id:      rec.ID,
		key:     rec.Key,
		created: time.UnixMilli(rec.CreatedUnixMS),
		status:  rec.Status,
		code:    rec.Code,
		message: rec.Message,
	}
	j.repairAttempts.Store(rec.RepairAttempts)
	j.tilesDone.Store(rec.TilesDone)
	if rec.Status == jobQueued || rec.Status == jobRunning {
		// The previous process died with this job in flight; it must
		// resurface with a typed verdict, never vanish or stay "running"
		// forever.
		j.status = jobFailed
		j.code = codeInterrupted
		j.message = "server restarted while the job was " + rec.Status
		t.persist(j.snapshot())
	}
	return j, true
}

// persist atomically writes a job record; failures are counted, not
// fatal (the in-memory table remains authoritative for this process).
func (t *jobTable) persist(rec jobRecord) {
	if t.dir == "" {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.metrics.storeErrors.Add(1)
		return
	}
	f, err := os.CreateTemp(t.dir, "tmp-*")
	if err != nil {
		t.metrics.storeErrors.Add(1)
		return
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		t.metrics.storeErrors.Add(1)
		return
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		t.metrics.storeErrors.Add(1)
		return
	}
	if err := os.Rename(tmp, filepath.Join(t.dir, rec.ID+".json")); err != nil {
		_ = os.Remove(tmp)
		t.metrics.storeErrors.Add(1)
	}
}

// get looks up a job by id.
func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// add registers a new job, evicting the oldest terminal job when full.
// It fails (table saturated with live jobs) rather than evict work in
// progress.
func (t *jobTable) add(j *job) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.jobs) >= t.max && !t.evictLocked() {
		return fmt.Errorf("job table full: %d jobs queued or running", len(t.jobs))
	}
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	return nil
}

// evictLocked removes oldest terminal jobs until the table fits under
// max, reporting whether at least one slot is free. Caller holds t.mu.
func (t *jobTable) evictLocked() bool {
	for len(t.jobs) >= t.max {
		victim := ""
		keep := t.order[:0]
		for i, id := range t.order {
			j, ok := t.jobs[id]
			if ok && victim == "" && j.terminal() {
				victim = id
				keep = append(keep, t.order[i+1:]...)
				break
			}
			keep = append(keep, id)
		}
		t.order = keep
		if victim == "" {
			return false
		}
		delete(t.jobs, victim)
		t.metrics.jobsEvicted.Add(1)
		if t.dir != "" {
			_ = os.Remove(filepath.Join(t.dir, victim+".json"))
		}
	}
	return true
}

// newJobID returns a fresh 32-hex-char job id.
func newJobID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// isJobID reports whether s looks like an id newJobID generated — the
// gate before an untrusted id (URL path, recovered filename) is used in
// a file path.
func isJobID(s string) bool {
	if len(s) != 32 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Wire shapes for the jobs routes.

type jobSubmitResponse struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	StatusURL string `json:"status_url"`
}

type jobProgress struct {
	RepairAttempts int64 `json:"repair_attempts"`
	TilesDone      int64 `json:"tiles_done"`
}

type jobStatusResponse struct {
	ID            string      `json:"id"`
	Status        string      `json:"status"`
	Key           string      `json:"key"`
	CreatedUnixMS int64       `json:"created_unix_ms"`
	Progress      jobProgress `json:"progress"`
	ResultURL     string      `json:"result_url,omitempty"`
	Error         *wireError  `json:"error,omitempty"`
}

// handleJobSubmit is POST /v1/jobs.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	if !s.admit(w) {
		return
	}
	nw, opts, key, ok := s.decodeSynthesizeRequest(w, r)
	if !ok {
		return
	}
	id, err := newJobID()
	if err != nil {
		writeErrorCode(w, codeInternal, nil, "generating job id: %v", err)
		return
	}
	jobctx, cancel := context.WithCancel(s.base)
	j := &job{id: id, key: key, created: time.Now(), cancel: cancel, status: jobQueued}
	if err := s.jobs.add(j); err != nil {
		cancel()
		writeErrorCode(w, codeOverloaded, nil, "%v", err)
		return
	}
	s.metrics.jobsSubmitted.Add(1)
	s.metrics.jobsActive.Add(1)
	s.jobs.persist(j.snapshot())
	go s.runJob(jobctx, j, nw, opts)
	writeJSON(w, http.StatusAccepted, jobSubmitResponse{
		ID:        id,
		Status:    jobQueued,
		StatusURL: "/v1/jobs/" + id,
	})
}

// runJob drives one job to a terminal state. It owns all of the job's
// transitions (cancel only signals ctx), so persisted records never
// interleave.
func (s *Server) runJob(ctx context.Context, j *job, nw *logic.Network, opts core.Options) {
	defer j.cancel() // release the derived context once terminal
	if body, _, ok, _ := s.cache.get(j.key); ok && len(body) > 0 {
		s.finishJob(j, "", "")
		return
	}
	j.mu.Lock()
	j.status = jobRunning
	j.mu.Unlock()
	s.jobs.persist(j.snapshot())

	pctx := core.WithProgress(ctx, core.Progress{
		RepairAttempt: func(n int) { j.repairAttempts.Store(int64(n)) },
		TileDone:      func(n int) { j.tilesDone.Store(int64(n)) },
	})
	fl, leader := s.flights.do(j.key, func() ([]byte, error) {
		return s.solve(pctx, j.key, nw, opts)
	})
	if leader {
		s.metrics.cacheMisses.Add(1)
	} else {
		s.metrics.cacheShared.Add(1)
	}
	_, err := fl.wait(ctx)
	if err == nil {
		s.finishJob(j, "", "")
		return
	}
	code, _ := classifySolveError(err)
	msg := solveErrorMessage(code, err)
	if code == codeCanceled && ctx.Err() != nil && s.base.Err() == nil {
		msg = "job canceled"
	}
	s.finishJob(j, code, msg)
}

// finishJob records the terminal transition (done when code is empty,
// failed otherwise), updates gauges and persists the final record.
func (s *Server) finishJob(j *job, code, message string) {
	j.mu.Lock()
	if code == "" {
		j.status = jobDone
	} else {
		j.status = jobFailed
		j.code = code
		j.message = message
	}
	j.mu.Unlock()
	s.metrics.jobsActive.Add(-1)
	if code == "" {
		s.metrics.jobsDone.Add(1)
	} else {
		s.metrics.jobsFailed.Add(1)
	}
	s.jobs.persist(j.snapshot())
}

// jobStatusView renders a job's pollable state.
func jobStatusView(j *job) jobStatusResponse {
	j.mu.Lock()
	status, code, message := j.status, j.code, j.message
	j.mu.Unlock()
	resp := jobStatusResponse{
		ID:            j.id,
		Status:        status,
		Key:           j.key,
		CreatedUnixMS: j.created.UnixMilli(),
		Progress: jobProgress{
			RepairAttempts: j.repairAttempts.Load(),
			TilesDone:      j.tilesDone.Load(),
		},
	}
	switch status {
	case jobDone:
		resp.ResultURL = "/v1/jobs/" + j.id + "/result"
	case jobFailed:
		resp.Error = &wireError{Code: code, Message: message}
	}
	return resp
}

// lookupJob resolves the {id} path value, writing the 404 envelope when
// absent.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		writeErrorCode(w, codeJobNotFound, nil, "no job %q", id)
		return nil, false
	}
	return j, true
}

// handleJobStatus is GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, jobStatusView(j))
}

// handleJobResult is GET /v1/jobs/{id}/result: the completed body from
// the cache tiers, byte-identical to what a synchronous request would
// have received.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	status := j.status
	j.mu.Unlock()
	if status != jobDone {
		writeErrorCode(w, codeJobNotDone, jobStatusView(j), "job %s is %s, not done", j.id, status)
		return
	}
	body, disposition, ok, err := s.cache.get(j.key)
	if err != nil {
		writeErrorCode(w, codeStoreUnavailable, nil, "reading stored result: %v", err)
		return
	}
	if !ok {
		writeErrorCode(w, codeResultEvicted, nil, "job %s completed but its result was evicted from the cache; resubmit", j.id)
		return
	}
	s.countCacheHit(disposition)
	s.writeResult(w, disposition, body)
}

// handleJobCancel is DELETE /v1/jobs/{id}. Canceling a terminal job is a
// no-op that reports the (unchanged) state; canceling a live one signals
// its context, and the runJob goroutine records the failed("canceled")
// transition.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	if j.cancel != nil && !j.terminal() {
		j.cancel()
	}
	writeJSON(w, http.StatusOK, jobStatusView(j))
}

// Package server implements compactd, the COMPACT synthesis service: an
// HTTP JSON API that parses submitted circuits (BLIF, PLA or structural
// Verilog, auto-detected), synthesizes crossbar designs through the
// context-cancellable core pipeline on a bounded worker pool, and serves
// repeated requests from a content-addressed result cache.
//
// Four mechanisms amortize solver work across traffic, in order:
//
//  1. Content addressing: requests are keyed by
//     logic.Network.Fingerprint() x core.Options.Key(), so identical
//     (circuit, options) pairs — regardless of gate numbering, input
//     format or how defaults were spelled — share one cache slot.
//  2. An in-memory LRU result cache stores the exact marshaled response
//     bodies; hits are byte-identical to the miss that populated them and
//     skip the solver entirely.
//  3. A persistent disk tier (internal/store) under the memory cache, so
//     results survive restarts and fleet members sharing a directory
//     share work; disk hits are promoted back into memory and reported
//     as X-Compactd-Cache: disk.
//  4. Singleflight deduplication: concurrent identical requests join one
//     in-flight solve instead of queuing duplicates behind it.
//
// Large solves that outlive a request budget run through the async job
// API (POST /v1/jobs, see jobs.go): submission returns immediately, the
// solve proceeds on the same worker pool with live progress, and the
// completed result lands in both cache tiers.
//
// Synchronous solves run detached from individual request contexts (a
// client that disconnects does not cancel work others are waiting on);
// the per-request budget is enforced through core.Options.TimeLimit,
// whose expiry degrades to the anytime best-so-far result rather than an
// error. Every non-2xx response on the /v1/* surface is the typed error
// envelope defined in wire.go. Observability: /debug/vars serves
// request/cache/store/job/solver counters (including per-engine portfolio
// latencies) and /debug/pprof the standard profiles.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"compact/internal/bench"
	"compact/internal/core"
	"compact/internal/faultinject"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/parse"
	"compact/internal/store"
	"compact/internal/xbar"
)

// SynthFunc is the synthesis pipeline the server drives; production
// servers use core.SynthesizeContext, tests may substitute instrumented
// stand-ins.
type SynthFunc func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error)

// Config tunes a Server. The zero value gives production defaults
// (memory-only: no store directory, so neither results nor job records
// survive a restart).
type Config struct {
	// Workers bounds concurrent solves (default: GOMAXPROCS).
	Workers int
	// CacheEntries / CacheBytes bound the in-memory result cache
	// (defaults: 512 entries, 256 MiB of response bodies).
	CacheEntries int
	CacheBytes   int64
	// StoreDir enables the persistent disk tier: results (and job
	// records) are written under this directory and survive restarts.
	// Empty disables the tier. StoreMaxBytes bounds the result files
	// (default 1 GiB); LRU entries are evicted past it.
	StoreDir      string
	StoreMaxBytes int64
	// MaxJobs bounds the async job table, counting live and terminal
	// jobs; submissions past it evict the oldest terminal job or are
	// refused with 429 overloaded (default 256).
	MaxJobs int
	// DefaultTimeLimit is the per-request solve budget applied when the
	// request specifies none (default 30s); MaxTimeLimit clamps what a
	// request may ask for (default 5m). Both feed core.Options.TimeLimit,
	// so they are part of the cache key.
	DefaultTimeLimit time.Duration
	MaxTimeLimit     time.Duration
	// MaxBodyBytes caps the request body (default 64 MiB).
	MaxBodyBytes int64
	// Synth overrides the synthesis pipeline (tests); nil means
	// core.SynthesizeContext.
	Synth SynthFunc
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.StoreMaxBytes <= 0 {
		c.StoreMaxBytes = 1 << 30
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.DefaultTimeLimit <= 0 {
		c.DefaultTimeLimit = 30 * time.Second
	}
	if c.MaxTimeLimit <= 0 {
		c.MaxTimeLimit = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Synth == nil {
		c.Synth = core.SynthesizeContext
	}
	return c
}

// errShuttingDown reports that the server's base context ended.
var errShuttingDown = errors.New("server: shutting down")

// Server is the compactd request handler. Create with New, mount via
// Handler. Safe for concurrent use; all mutable state is per-instance.
type Server struct {
	cfg     Config
	base    context.Context
	metrics *metrics
	cache   *tieredCache
	flights *flightGroup
	jobs    *jobTable
	sem     chan struct{} // worker-pool slots
	mux     *http.ServeMux
	start   time.Time
	benches []benchmarkInfo
}

// New builds a Server. base is the server's lifetime: canceling it fails
// new and queued solves with 503 (in-flight HTTP exchanges are the
// embedding http.Server's to drain; pair this with Shutdown). New fails
// only when cfg.StoreDir is set but cannot be opened; job records from a
// previous run under the same directory are recovered (interrupted jobs
// resurface as failed with the "interrupted" code, completed ones keep
// serving their stored results).
func New(base context.Context, cfg Config) (*Server, error) {
	if base == nil {
		base = context.Background()
	}
	cfg = cfg.withDefaults()
	m := newMetrics()
	var disk *store.Store
	if cfg.StoreDir != "" {
		var err error
		disk, err = store.Open(cfg.StoreDir, cfg.StoreMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("server: opening store: %w", err)
		}
	}
	s := &Server{
		cfg:     cfg,
		base:    base,
		metrics: m,
		cache:   newTieredCache(newResultCache(cfg.CacheEntries, cfg.CacheBytes), disk, m),
		flights: newFlightGroup(),
		sem:     make(chan struct{}, cfg.Workers),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	jobs, err := newJobTable(cfg.MaxJobs, cfg.StoreDir, m)
	if err != nil {
		return nil, fmt.Errorf("server: recovering job table: %w", err)
	}
	s.jobs = jobs
	if disk != nil {
		s.cache.syncDiskStats()
	}
	for _, g := range bench.All() {
		s.benches = append(s.benches, benchmarkInfo{
			Name:        g.Name,
			Suite:       g.Suite,
			Inputs:      g.Inputs,
			Outputs:     g.Outputs,
			Description: g.Description,
		})
	}
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("POST /v1/margin", s.handleMargin)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/vars", s.metrics.handleVars)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s, nil
}

// Handler returns the server's HTTP handler. Responses the mux generates
// itself on the /v1/* surface (404 for unknown routes, 405 for wrong
// methods) are rewritten into the error envelope, so every non-2xx body a
// /v1 client can observe is the typed schema.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			w = &envelopeWriter{ResponseWriter: w}
		}
		s.mux.ServeHTTP(w, r)
	})
}

// envelopeWriter rewrites the mux's own plain-text 404/405 refusals into
// the error envelope. Handler-written responses (which set a JSON
// content type before WriteHeader) pass through untouched.
type envelopeWriter struct {
	http.ResponseWriter
	suppress bool
}

func (e *envelopeWriter) WriteHeader(status int) {
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(e.Header().Get("Content-Type"), "text/plain") {
		code := codeNotFound
		if status == http.StatusMethodNotAllowed {
			code = codeMethodNotAllowed
		}
		body, err := json.Marshal(errorEnvelope{Error: wireError{
			Code:    code,
			Message: http.StatusText(status),
		}})
		if err == nil {
			e.suppress = true
			e.Header().Set("Content-Type", "application/json; charset=utf-8")
			e.Header().Set("Content-Length", strconv.Itoa(len(body)))
			e.ResponseWriter.WriteHeader(status)
			_, _ = e.ResponseWriter.Write(body)
			return
		}
	}
	e.ResponseWriter.WriteHeader(status)
}

func (e *envelopeWriter) Write(b []byte) (int, error) {
	if e.suppress {
		return len(b), nil // the plain-text body the mux wanted to send
	}
	return e.ResponseWriter.Write(b)
}

// Metrics returns the server's expvar map (for embedding into a global
// registry when desired; it is not globally registered by default).
func (s *Server) Metrics() *expvar.Map { return s.metrics.vars }

// admit runs the fault-injection admission probe shared by the solve
// routes; it reports whether the request may proceed.
func (s *Server) admit(w http.ResponseWriter) bool {
	mode, ok := faultinject.Mode(faultinject.StageServer)
	if !ok {
		return true
	}
	// Chaos-drill admission probe: "unavailable" degrades to the same 503
	// a shutting-down server sends; generic modes become 500s.
	if mode == "unavailable" {
		writeErrorCode(w, codeUnavailable, nil, "service unavailable (injected)")
		return false
	}
	if err := faultinject.Err(faultinject.StageServer); err != nil {
		writeErrorCode(w, codeInternal, nil, "%v", err)
		return false
	}
	return true
}

// decodeSynthesizeRequest parses and resolves a synthesize/job request
// body into its network, canonical options and cache key, writing the
// envelope itself on failure (the returned bool reports success).
func (s *Server) decodeSynthesizeRequest(w http.ResponseWriter, r *http.Request) (*logic.Network, core.Options, string, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // the wire format is strict: typos are 400s
	var req synthesizeRequest
	if err := dec.Decode(&req); err != nil {
		s.clientError(w, codeInvalidRequest, nil, "malformed request: %v", err)
		return nil, core.Options{}, "", false
	}
	nw, code, err := s.resolveNetwork(&req)
	if err != nil {
		s.clientError(w, code, nil, "%v", err)
		return nil, core.Options{}, "", false
	}
	opts, err := req.Options.toCore(s.cfg.DefaultTimeLimit, s.cfg.MaxTimeLimit)
	if err != nil {
		s.clientError(w, codeInvalidOptions, nil, "invalid options: %v", err)
		return nil, core.Options{}, "", false
	}
	return nw, opts, cacheKey(nw, opts), true
}

// handleSynthesize is POST /v1/synthesize.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	if !s.admit(w) {
		return
	}
	nw, opts, key, ok := s.decodeSynthesizeRequest(w, r)
	if !ok {
		return
	}

	if body, disposition, ok, _ := s.cache.get(key); ok {
		s.countCacheHit(disposition)
		s.writeResult(w, disposition, body)
		return
	}

	fl, leader := s.flights.do(key, func() ([]byte, error) {
		return s.solve(s.base, key, nw, opts)
	})
	if leader {
		s.metrics.cacheMisses.Add(1)
	} else {
		s.metrics.cacheShared.Add(1)
	}
	body, err := fl.wait(r.Context())
	switch {
	case err == nil:
		disposition := "miss"
		if !leader {
			disposition = "shared"
		}
		s.writeResult(w, disposition, body)
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil,
		errors.Is(err, context.DeadlineExceeded) && r.Context().Err() != nil:
		// The waiter's own request context ended; the solve itself
		// continues for any remaining waiters and the cache.
		writeErrorCode(w, codeRequestAbandoned, nil, "request abandoned: %v", err)
	default:
		code, detail := classifySolveError(err)
		if code == codeInfeasible || code == codeUnplaceable {
			s.metrics.badRequests.Add(1)
		}
		writeErrorCode(w, code, detail, "%s", solveErrorMessage(code, err))
	}
}

// countCacheHit bumps the counter matching a cache disposition.
func (s *Server) countCacheHit(disposition string) {
	if disposition == "disk" {
		s.metrics.cacheDiskHits.Add(1)
	} else {
		s.metrics.cacheHits.Add(1)
	}
}

// classifySolveError maps a solve failure to its envelope code and
// optional detail. The order matters: typed verdicts (infeasible,
// unplaceable) outrank the generic context sentinels they may wrap.
func classifySolveError(err error) (code string, detail any) {
	var ie *core.InfeasibleError
	var up *xbar.Unplaceable
	switch {
	case errors.Is(err, errShuttingDown):
		return codeShuttingDown, nil
	case errors.As(err, &ie):
		return codeInfeasible, &infeasibleDetail{
			Nodes:           ie.Nodes,
			SemiperimeterLB: ie.Nodes + ie.OCTLowerBound,
			MaxRows:         ie.MaxRows,
			MaxCols:         ie.MaxCols,
		}
	case errors.Is(err, labeling.ErrInfeasible):
		return codeInfeasible, nil
	case errors.As(err, &up):
		return codeUnplaceable, &unplaceableDetail{
			Stage:      up.Stage,
			LogicalRow: up.LogicalRow,
			Candidates: up.Candidates,
			Proven:     up.Proven,
		}
	case errors.Is(err, context.DeadlineExceeded):
		// The solve budget expired before even an anytime incumbent
		// existed (e.g. BDD construction or partitioning ran out the whole
		// clock): a timeout, not a server fault.
		return codeBudgetExceeded, nil
	case errors.Is(err, context.Canceled):
		// The underlying shared solve was canceled (a job DELETE); the
		// request can be retried.
		return codeCanceled, nil
	default:
		return codeInternal, nil
	}
}

// solveErrorMessage renders the human-readable message for a classified
// solve failure.
func solveErrorMessage(code string, err error) string {
	switch code {
	case codeInfeasible:
		return fmt.Sprintf("infeasible: %v", err)
	case codeUnplaceable:
		return fmt.Sprintf("unplaceable: %v", err)
	case codeBudgetExceeded:
		return fmt.Sprintf("solve budget exhausted before any result: %v", err)
	case codeInternal:
		return fmt.Sprintf("synthesis failed: %v", err)
	default:
		return err.Error()
	}
}

// resolveNetwork turns the request into a logic.Network, reporting the
// envelope code to use on error.
func (s *Server) resolveNetwork(req *synthesizeRequest) (*logic.Network, string, error) {
	hasCircuit := req.Circuit != ""
	hasBench := req.Benchmark != ""
	switch {
	case hasCircuit && hasBench:
		return nil, codeInvalidRequest, errors.New("request sets both circuit and benchmark")
	case hasBench:
		g, ok := bench.ByName(req.Benchmark)
		if !ok {
			return nil, codeUnknownBenchmark, fmt.Errorf("unknown benchmark %q (see /v1/benchmarks)", req.Benchmark)
		}
		return g.Build(), "", nil
	case hasCircuit:
		format, err := parse.FormatFromString(req.Format)
		if err != nil {
			return nil, codeInvalidRequest, err
		}
		t0 := time.Now()
		nw, err := parse.ParseNamed(strings.NewReader(req.Circuit), format, req.Name)
		s.metrics.parseMillis.Add(float64(time.Since(t0)) / float64(time.Millisecond))
		if err != nil {
			return nil, codeParseFailed, fmt.Errorf("parsing circuit: %w", err)
		}
		return nw, "", nil
	default:
		return nil, codeInvalidRequest, errors.New("request needs a circuit or a benchmark name")
	}
}

// solve runs one deduplicated synthesis: acquire a worker slot, run the
// pipeline under ctx (the server's lifetime for synchronous requests, a
// job's cancelable context for async ones; the per-request budget travels
// inside opts.TimeLimit), marshal the response and cache it through both
// tiers.
func (s *Server) solve(ctx context.Context, key string, nw *logic.Network, opts core.Options) ([]byte, error) {
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		if s.base.Err() != nil {
			return nil, errShuttingDown
		}
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()
	if s.base.Err() != nil {
		return nil, errShuttingDown
	}

	t0 := time.Now()
	res, err := s.cfg.Synth(ctx, nw, opts)
	elapsed := time.Since(t0)
	s.metrics.solves.Add(1)
	s.metrics.solveMillis.Add(float64(elapsed) / float64(time.Millisecond))
	if err != nil {
		s.metrics.solveErrors.Add(1)
		if errors.As(err, new(*xbar.Unplaceable)) {
			s.metrics.unplaceable.Add(1)
		}
		if s.base.Err() != nil {
			return nil, errShuttingDown
		}
		return nil, err
	}
	if res.Placement != nil {
		s.metrics.placements.Add(1)
		s.metrics.repairAttempts.Add(int64(res.RepairAttempts))
	}
	if res.Plan != nil {
		s.metrics.partitioned.Add(1)
		s.metrics.tiles.Add(int64(len(res.Plan.Tiles)))
		for _, tl := range res.Plan.Tiles {
			if tl.Placement != nil {
				s.metrics.placements.Add(1)
				s.metrics.repairAttempts.Add(int64(tl.RepairAttempts))
			}
		}
	}
	if res.Labeling != nil {
		for _, er := range res.Labeling.Engines {
			s.metrics.recordEngine(er.Method, float64(er.Elapsed)/float64(time.Millisecond))
		}
	}
	body, err := json.Marshal(synthesizeResponse{Key: key, Result: res.View()})
	if err != nil {
		return nil, fmt.Errorf("encoding result: %w", err)
	}
	s.cache.put(key, body)
	return body, nil
}

// writeResult sends a cached or fresh 200 body with its cache disposition.
func (s *Server) writeResult(w http.ResponseWriter, disposition string, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Compactd-Cache", disposition)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// clientError counts and writes a 4xx envelope.
func (s *Server) clientError(w http.ResponseWriter, code string, detail any, format string, args ...any) {
	s.metrics.badRequests.Add(1)
	writeErrorCode(w, code, detail, format, args...)
}

// handleBenchmarks is GET /v1/benchmarks.
func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Benchmarks []benchmarkInfo `json:"benchmarks"`
	}{s.benches})
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type health struct {
		Status   string  `json:"status"`
		UptimeMS float64 `json:"uptime_ms"`
		Inflight int64   `json:"inflight"`
		Workers  int     `json:"workers"`
	}
	h := health{
		Status:   "ok",
		UptimeMS: float64(time.Since(s.start)) / float64(time.Millisecond),
		Inflight: s.metrics.inflight.Value(),
		Workers:  s.cfg.Workers,
	}
	status := http.StatusOK
	if s.base.Err() != nil {
		h.Status = "shutting_down"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// cacheKey composes the content-addressed synthesis key: the network's
// canonical fingerprint crossed with the canonical options key. Both
// halves are stable hashes, so the key is independent of gate numbering,
// input format and default spelling.
func cacheKey(nw *logic.Network, opts core.Options) string {
	return nw.Fingerprint() + "|" + opts.Key()
}

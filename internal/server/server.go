// Package server implements compactd, the COMPACT synthesis service: an
// HTTP JSON API that parses submitted circuits (BLIF, PLA or structural
// Verilog, auto-detected), synthesizes crossbar designs through the
// context-cancellable core pipeline on a bounded worker pool, and serves
// repeated requests from a content-addressed result cache.
//
// Three mechanisms amortize solver work across traffic, in order:
//
//  1. Content addressing: requests are keyed by
//     logic.Network.Fingerprint() x core.Options.Key(), so identical
//     (circuit, options) pairs — regardless of gate numbering, input
//     format or how defaults were spelled — share one cache slot.
//  2. An LRU result cache stores the exact marshaled response bodies;
//     hits are byte-identical to the miss that populated them and skip
//     the solver entirely.
//  3. Singleflight deduplication: concurrent identical requests join one
//     in-flight solve instead of queuing duplicates behind it.
//
// Solves run detached from individual request contexts (a client that
// disconnects does not cancel work others are waiting on); the per-request
// budget is enforced through core.Options.TimeLimit, whose expiry degrades
// to the anytime best-so-far result rather than an error. Observability:
// /debug/vars serves request/cache/solver counters (including per-engine
// portfolio latencies) and /debug/pprof the standard profiles.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"compact/internal/bench"
	"compact/internal/core"
	"compact/internal/faultinject"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/parse"
	"compact/internal/xbar"
)

// SynthFunc is the synthesis pipeline the server drives; production
// servers use core.SynthesizeContext, tests may substitute instrumented
// stand-ins.
type SynthFunc func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error)

// Config tunes a Server. The zero value gives production defaults.
type Config struct {
	// Workers bounds concurrent solves (default: GOMAXPROCS).
	Workers int
	// CacheEntries / CacheBytes bound the result cache (defaults: 512
	// entries, 256 MiB of response bodies).
	CacheEntries int
	CacheBytes   int64
	// DefaultTimeLimit is the per-request solve budget applied when the
	// request specifies none (default 30s); MaxTimeLimit clamps what a
	// request may ask for (default 5m). Both feed core.Options.TimeLimit,
	// so they are part of the cache key.
	DefaultTimeLimit time.Duration
	MaxTimeLimit     time.Duration
	// MaxBodyBytes caps the request body (default 64 MiB).
	MaxBodyBytes int64
	// Synth overrides the synthesis pipeline (tests); nil means
	// core.SynthesizeContext.
	Synth SynthFunc
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.DefaultTimeLimit <= 0 {
		c.DefaultTimeLimit = 30 * time.Second
	}
	if c.MaxTimeLimit <= 0 {
		c.MaxTimeLimit = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Synth == nil {
		c.Synth = core.SynthesizeContext
	}
	return c
}

// errShuttingDown reports that the server's base context ended.
var errShuttingDown = errors.New("server: shutting down")

// Server is the compactd request handler. Create with New, mount via
// Handler. Safe for concurrent use; all mutable state is per-instance.
type Server struct {
	cfg     Config
	base    context.Context
	metrics *metrics
	cache   *resultCache
	flights *flightGroup
	sem     chan struct{} // worker-pool slots
	mux     *http.ServeMux
	start   time.Time
	benches []benchmarkInfo
}

// New builds a Server. base is the server's lifetime: canceling it fails
// new and queued solves with 503 (in-flight HTTP exchanges are the
// embedding http.Server's to drain; pair this with Shutdown).
func New(base context.Context, cfg Config) *Server {
	if base == nil {
		base = context.Background()
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		base:    base,
		metrics: newMetrics(),
		cache:   newResultCache(cfg.CacheEntries, cfg.CacheBytes),
		flights: newFlightGroup(),
		sem:     make(chan struct{}, cfg.Workers),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	for _, g := range bench.All() {
		s.benches = append(s.benches, benchmarkInfo{
			Name:        g.Name,
			Suite:       g.Suite,
			Inputs:      g.Inputs,
			Outputs:     g.Outputs,
			Description: g.Description,
		})
	}
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /debug/vars", s.metrics.handleVars)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server's expvar map (for embedding into a global
// registry when desired; it is not globally registered by default).
func (s *Server) Metrics() *expvar.Map { return s.metrics.vars }

// handleSynthesize is POST /v1/synthesize.
func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	if mode, ok := faultinject.Mode(faultinject.StageServer); ok {
		// Chaos-drill admission probe: "unavailable" degrades to the same
		// 503 a shutting-down server sends; generic modes become 500s.
		if mode == "unavailable" {
			writeError(w, http.StatusServiceUnavailable, "service unavailable (injected)")
			return
		}
		if err := faultinject.Err(faultinject.StageServer); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // wire format v1 is strict: typos are 400s
	var req synthesizeRequest
	if err := dec.Decode(&req); err != nil {
		s.clientError(w, http.StatusBadRequest, "malformed request: %v", err)
		return
	}

	nw, status, err := s.resolveNetwork(&req)
	if err != nil {
		s.clientError(w, status, "%v", err)
		return
	}
	opts, err := req.Options.toCore(s.cfg.DefaultTimeLimit, s.cfg.MaxTimeLimit)
	if err != nil {
		s.clientError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}

	key := cacheKey(nw, opts)
	if body, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		s.writeResult(w, "hit", body)
		return
	}

	fl, leader := s.flights.do(key, func() ([]byte, error) {
		return s.solve(key, nw, opts)
	})
	if leader {
		s.metrics.cacheMisses.Add(1)
	} else {
		s.metrics.cacheShared.Add(1)
	}
	body, err := fl.wait(r.Context())
	switch {
	case err == nil:
		disposition := "miss"
		if !leader {
			disposition = "shared"
		}
		s.writeResult(w, disposition, body)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The waiter's request context ended; the solve itself continues
		// for any remaining waiters and the cache.
		writeError(w, http.StatusServiceUnavailable, "request abandoned: %v", err)
	case errors.Is(err, errShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, labeling.ErrInfeasible):
		s.metrics.badRequests.Add(1)
		resp := errorResponse{Error: fmt.Sprintf("infeasible: %v", err)}
		// The typed cap-infeasibility carries the quantities that explain
		// the refusal; surface them structurally so clients can size a
		// retry (or switch to "partition": true) without parsing prose.
		var ie *core.InfeasibleError
		if errors.As(err, &ie) {
			resp.Infeasible = &infeasibleDetail{
				Nodes:           ie.Nodes,
				SemiperimeterLB: ie.Nodes + ie.OCTLowerBound,
				MaxRows:         ie.MaxRows,
				MaxCols:         ie.MaxCols,
			}
		}
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	case errors.As(err, new(*xbar.Unplaceable)):
		// The circuit synthesized fine but cannot be placed on the
		// requested defective array: a property of the request, not a
		// server fault, so it maps to 422 like labeling infeasibility.
		s.clientError(w, http.StatusUnprocessableEntity, "unplaceable: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "synthesis failed: %v", err)
	}
}

// resolveNetwork turns the request into a logic.Network, reporting the
// HTTP status to use on error.
func (s *Server) resolveNetwork(req *synthesizeRequest) (*logic.Network, int, error) {
	hasCircuit := req.Circuit != ""
	hasBench := req.Benchmark != ""
	switch {
	case hasCircuit && hasBench:
		return nil, http.StatusBadRequest, errors.New("request sets both circuit and benchmark")
	case hasBench:
		g, ok := bench.ByName(req.Benchmark)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("unknown benchmark %q (see /v1/benchmarks)", req.Benchmark)
		}
		return g.Build(), 0, nil
	case hasCircuit:
		format, err := parse.FormatFromString(req.Format)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		t0 := time.Now()
		nw, err := parse.ParseNamed(strings.NewReader(req.Circuit), format, req.Name)
		s.metrics.parseMillis.Add(float64(time.Since(t0)) / float64(time.Millisecond))
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("parsing circuit: %w", err)
		}
		return nw, 0, nil
	default:
		return nil, http.StatusBadRequest, errors.New("request needs a circuit or a benchmark name")
	}
}

// solve runs one deduplicated synthesis: acquire a worker slot, run the
// pipeline under the server's lifetime context (the per-request budget
// travels inside opts.TimeLimit), marshal the response and cache it.
func (s *Server) solve(key string, nw *logic.Network, opts core.Options) ([]byte, error) {
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	select {
	case s.sem <- struct{}{}:
	case <-s.base.Done():
		return nil, errShuttingDown
	}
	defer func() { <-s.sem }()
	if s.base.Err() != nil {
		return nil, errShuttingDown
	}

	t0 := time.Now()
	res, err := s.cfg.Synth(s.base, nw, opts)
	elapsed := time.Since(t0)
	s.metrics.solves.Add(1)
	s.metrics.solveMillis.Add(float64(elapsed) / float64(time.Millisecond))
	if err != nil {
		s.metrics.solveErrors.Add(1)
		if errors.As(err, new(*xbar.Unplaceable)) {
			s.metrics.unplaceable.Add(1)
		}
		if s.base.Err() != nil {
			return nil, errShuttingDown
		}
		return nil, err
	}
	if res.Placement != nil {
		s.metrics.placements.Add(1)
		s.metrics.repairAttempts.Add(int64(res.RepairAttempts))
	}
	if res.Plan != nil {
		s.metrics.partitioned.Add(1)
		s.metrics.tiles.Add(int64(len(res.Plan.Tiles)))
		for _, tl := range res.Plan.Tiles {
			if tl.Placement != nil {
				s.metrics.placements.Add(1)
				s.metrics.repairAttempts.Add(int64(tl.RepairAttempts))
			}
		}
	}
	if res.Labeling != nil {
		for _, er := range res.Labeling.Engines {
			s.metrics.recordEngine(er.Method, float64(er.Elapsed)/float64(time.Millisecond))
		}
	}
	body, err := json.Marshal(synthesizeResponse{Key: key, Result: res.View()})
	if err != nil {
		return nil, fmt.Errorf("encoding result: %w", err)
	}
	s.cache.put(key, body)
	entries, bytes := s.cache.stats()
	s.metrics.cacheEntries.Set(int64(entries))
	s.metrics.cacheBytes.Set(bytes)
	return body, nil
}

// writeResult sends a cached or fresh 200 body with its cache disposition.
func (s *Server) writeResult(w http.ResponseWriter, disposition string, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Compactd-Cache", disposition)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) clientError(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.badRequests.Add(1)
	writeError(w, status, format, args...)
}

// handleBenchmarks is GET /v1/benchmarks.
func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Benchmarks []benchmarkInfo `json:"benchmarks"`
	}{s.benches})
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type health struct {
		Status   string  `json:"status"`
		UptimeMS float64 `json:"uptime_ms"`
		Inflight int64   `json:"inflight"`
		Workers  int     `json:"workers"`
	}
	h := health{
		Status:   "ok",
		UptimeMS: float64(time.Since(s.start)) / float64(time.Millisecond),
		Inflight: s.metrics.inflight.Value(),
		Workers:  s.cfg.Workers,
	}
	status := http.StatusOK
	if s.base.Err() != nil {
		h.Status = "shutting_down"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// cacheKey composes the content-addressed synthesis key: the network's
// canonical fingerprint crossed with the canonical options key. Both
// halves are stable hashes, so the key is independent of gate numbering,
// input format and default spelling.
func cacheKey(nw *logic.Network, opts core.Options) string {
	return nw.Fingerprint() + "|" + opts.Key()
}

package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// TestSynthesizePartitionedEndToEnd is the wire-level acceptance test for
// partitioned synthesis: a benchmark that cannot fit one 32x32 tile must
// come back 422 with the structured infeasibility detail, and the same
// request with "partition": true must return a multi-tile plan on the
// wire whose decoded form still evaluates.
func TestSynthesizePartitionedEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})

	req := `{"benchmark": "ctrl", "options": {"max_rows": 32, "max_cols": 32, "time_limit_ms": 20000}}`
	status, _, body := post(t, ts.URL, req)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("capped request without partition: status %d, body %s", status, body)
	}
	var er struct {
		Error struct {
			Code       string           `json:"code"`
			Message    string           `json:"message"`
			Infeasible infeasibleDetail `json:"detail"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != "infeasible" || er.Error.Message == "" {
		t.Fatalf("422 envelope code %q message %q: %s", er.Error.Code, er.Error.Message, body)
	}
	if er.Error.Infeasible.MaxRows != 32 || er.Error.Infeasible.MaxCols != 32 {
		t.Fatalf("detail caps %dx%d, want 32x32", er.Error.Infeasible.MaxRows, er.Error.Infeasible.MaxCols)
	}
	if er.Error.Infeasible.SemiperimeterLB <= 64 || er.Error.Infeasible.Nodes <= 0 {
		t.Fatalf("detail does not explain the refusal: %+v", er.Error.Infeasible)
	}

	preq := `{"benchmark": "ctrl", "options": {"max_rows": 32, "max_cols": 32, "partition": true, "time_limit_ms": 20000}}`
	status, disp, pbody := post(t, ts.URL, preq)
	if status != http.StatusOK {
		t.Fatalf("partitioned request: status %d, body %s", status, pbody)
	}
	var resp synthesizeResponse
	if err := json.Unmarshal(pbody, &resp); err != nil {
		t.Fatal(err)
	}
	pv := resp.Result.Partition
	if pv == nil || pv.Plan == nil {
		t.Fatalf("200 body lacks the partition plan (disposition %s): %s", disp, pbody)
	}
	if pv.Tiles < 2 || len(pv.Plan.Tiles) != pv.Tiles {
		t.Fatalf("plan summary disagrees with plan: tiles=%d len=%d", pv.Tiles, len(pv.Plan.Tiles))
	}
	if pv.MaxRows > 32 || pv.MaxCols > 32 {
		t.Fatalf("tile dims %dx%d exceed the request caps", pv.MaxRows, pv.MaxCols)
	}
	if resp.Result.Design != nil {
		t.Fatal("partitioned response must not carry a single-crossbar design")
	}
	// The decoded wire plan is directly evaluable (its Unmarshal validated it).
	in := make([]bool, len(pv.Plan.Inputs))
	if _, err := pv.Plan.Eval(in); err != nil {
		t.Fatalf("wire-decoded plan does not evaluate: %v", err)
	}

	// Same request again: must be a byte-identical cache hit (the plan is
	// part of the content-addressed body).
	status, disp, again := post(t, ts.URL, preq)
	if status != http.StatusOK || disp != "hit" {
		t.Fatalf("repeat: status %d disposition %s", status, disp)
	}
	if string(again) != string(pbody) {
		t.Fatal("cache hit body differs from the miss body")
	}

	// The partition counters moved.
	vars := struct {
		Compactd struct {
			Partitioned int64 `json:"partitioned_total"`
			Tiles       int64 `json:"tiles_total"`
		} `json:"compactd"`
	}{}
	resp2, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if err := json.NewDecoder(resp2.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Compactd.Partitioned != 1 || vars.Compactd.Tiles < 2 {
		t.Fatalf("partition counters: partitioned=%d tiles=%d", vars.Compactd.Partitioned, vars.Compactd.Tiles)
	}
}

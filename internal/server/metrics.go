package server

import (
	"encoding/json"
	"expvar"
	"net/http"
	"runtime"
)

// metrics is the server's observability surface, built on expvar types
// (which are individually race-safe) but deliberately NOT registered in
// the process-global expvar registry: a Server owns its metrics, so tests
// and embedders can run any number of servers in one process. The
// /debug/vars handler serves this map plus the runtime memstats, mirroring
// what the stock expvar handler exposes.
type metrics struct {
	vars *expvar.Map

	requests         expvar.Int // HTTP requests accepted on /v1/synthesize + /v1/jobs
	cacheHits        expvar.Int // served straight from the in-memory result cache
	cacheDiskHits    expvar.Int // served from the persistent store tier
	cacheMisses      expvar.Int // required a new solve
	cacheShared      expvar.Int // joined an in-flight identical solve
	cacheEntries     expvar.Int // current in-memory cache entry count
	cacheBytes       expvar.Int // current in-memory cache body bytes
	storeEntries     expvar.Int // persistent store entries (gauge)
	storeBytes       expvar.Int // persistent store bytes (gauge)
	storeQuarantined expvar.Int // entries quarantined as corrupt (gauge)
	storeErrors      expvar.Int // store I/O failures (reads, writes, job records)
	jobsSubmitted    expvar.Int // jobs accepted on POST /v1/jobs
	jobsActive       expvar.Int // jobs currently queued or running
	jobsDone         expvar.Int // jobs that reached done
	jobsFailed       expvar.Int // jobs that reached failed (incl. canceled)
	jobsEvicted      expvar.Int // terminal jobs evicted to bound the table
	inflight         expvar.Int // solves currently running or queued
	solves           expvar.Int // completed SynthesizeContext calls
	solveErrors      expvar.Int // solves that returned an error
	badRequests      expvar.Int // 4xx responses
	placements       expvar.Int // solves that produced a defect-aware placement
	repairAttempts   expvar.Int // cumulative verified-repair loop attempts
	unplaceable      expvar.Int // solves rejected with a typed Unplaceable
	partitioned      expvar.Int // solves that returned a multi-tile plan
	tiles            expvar.Int // cumulative tiles across partitioned solves
	marginRequests   expvar.Int // HTTP requests accepted on /v1/margin
	margins          expvar.Int // completed Monte Carlo margin analyses
	solveMillis      expvar.Float
	parseMillis      expvar.Float
	marginMillis     expvar.Float // cumulative Monte Carlo wall clock
	engineMillis     *expvar.Map  // per-engine cumulative wall clock (portfolio)
}

func newMetrics() *metrics {
	m := &metrics{vars: new(expvar.Map).Init(), engineMillis: new(expvar.Map).Init()}
	m.vars.Set("requests_total", &m.requests)
	m.vars.Set("cache_hits_total", &m.cacheHits)
	m.vars.Set("cache_disk_hits_total", &m.cacheDiskHits)
	m.vars.Set("store_entries", &m.storeEntries)
	m.vars.Set("store_bytes", &m.storeBytes)
	m.vars.Set("store_quarantined", &m.storeQuarantined)
	m.vars.Set("store_errors_total", &m.storeErrors)
	m.vars.Set("jobs_submitted_total", &m.jobsSubmitted)
	m.vars.Set("jobs_active", &m.jobsActive)
	m.vars.Set("jobs_done_total", &m.jobsDone)
	m.vars.Set("jobs_failed_total", &m.jobsFailed)
	m.vars.Set("jobs_evicted_total", &m.jobsEvicted)
	m.vars.Set("cache_misses_total", &m.cacheMisses)
	m.vars.Set("cache_shared_total", &m.cacheShared)
	m.vars.Set("cache_entries", &m.cacheEntries)
	m.vars.Set("cache_bytes", &m.cacheBytes)
	m.vars.Set("solves_inflight", &m.inflight)
	m.vars.Set("solves_total", &m.solves)
	m.vars.Set("solve_errors_total", &m.solveErrors)
	m.vars.Set("bad_requests_total", &m.badRequests)
	m.vars.Set("placements_total", &m.placements)
	m.vars.Set("repair_attempts_total", &m.repairAttempts)
	m.vars.Set("unplaceable_total", &m.unplaceable)
	m.vars.Set("partitioned_total", &m.partitioned)
	m.vars.Set("tiles_total", &m.tiles)
	m.vars.Set("margin_requests_total", &m.marginRequests)
	m.vars.Set("margins_total", &m.margins)
	m.vars.Set("solve_ms_total", &m.solveMillis)
	m.vars.Set("parse_ms_total", &m.parseMillis)
	m.vars.Set("margin_ms_total", &m.marginMillis)
	m.vars.Set("engine_ms_total", m.engineMillis)
	return m
}

// recordEngine accumulates one portfolio engine's wall clock.
func (m *metrics) recordEngine(method string, ms float64) {
	m.engineMillis.AddFloat(method, ms)
}

// handleVars serves the metrics map as a JSON document, shaped like the
// stock /debug/vars: the server's counters under "compactd" plus the
// runtime memstats.
func (m *metrics) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	doc := struct {
		Compactd   json.RawMessage `json:"compactd"`
		Goroutines int             `json:"goroutines"`
		MemAlloc   uint64          `json:"mem_alloc_bytes"`
	}{
		Compactd:   json.RawMessage(m.vars.String()),
		Goroutines: runtime.NumGoroutine(),
		MemAlloc:   ms.Alloc,
	}
	writeJSON(w, http.StatusOK, doc)
}

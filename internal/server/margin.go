package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"compact/internal/core"
	"compact/internal/logic"
	"compact/internal/spice"
	"compact/internal/wirelimit"
)

// POST /v1/margin — batched variation-aware Monte Carlo margin analysis.
//
// The request is a synthesize request plus a "margin" block:
//
//	{
//	  "benchmark": "ctrl",
//	  "options":   {...},              // same synthesis options as /v1/synthesize
//	  "margin": {
//	    "model":     "default",        // default | highcontrast
//	    "sigma":     0.1,              // shorthand: both sigmas at once
//	    "sigma_on":  0.1,              // log-normal spread of R_on
//	    "sigma_off": 0.1,              // log-normal spread of R_off
//	    "trials":    32,               // Monte Carlo trials (cap 4096)
//	    "vectors":   64,               // input vectors per trial (cap 65536)
//	    "seed":      1,
//	    "top_cells": 8                 // critical-cell list length (cap 4096)
//	  }
//	}
//
// The server synthesizes (or re-uses, via singleflight and the cache key)
// the design exactly as /v1/synthesize would, then runs the per-device
// Monte Carlo under the synthesized placement and defect map. The cache
// key extends the synthesis key with the margin parameters, so identical
// (circuit, options, margin) triples share one cached report and
// concurrent identical requests join one in-flight analysis. Partitioned
// results (multi-tile plans) and designs past the nodal solver's size cap
// are refused with the "margin_unsupported" code (422). Layered requests
// ("layers" >= 3) run through the 3D nodal solver when the stack is
// pristine; defect-placed layered stacks have no electrical model and are
// refused with the same 422 code — never a 500.

// maxSigma bounds the requested log-normal spread. exp(4) is a ~55x
// resistance swing — far beyond any fabricated device, and enough to keep
// the sampled systems numerically sane.
const maxSigma = 4.0

// Margin request caps: per-trial work is trials x vectors nodal solves, so
// both factors are bounded at the trust boundary.
const (
	maxMarginTrials   = 4096
	maxMarginVectors  = 1 << 16
	maxMarginTopCells = 4096
)

// marginRequest is the POST /v1/margin body: circuit selection as in
// synthesizeRequest, plus the margin block.
type marginRequest struct {
	Circuit   string       `json:"circuit,omitempty"`
	Benchmark string       `json:"benchmark,omitempty"`
	Format    string       `json:"format,omitempty"`
	Name      string       `json:"name,omitempty"`
	Options   *wireOptions `json:"options,omitempty"`
	Margin    *wireMargin  `json:"margin,omitempty"`
}

// wireMargin is the margin block. Pointer sigmas distinguish "absent"
// (zero spread) from explicit zeros only for documentation symmetry —
// both mean zero; "sigma" is shorthand applying one value to both sides,
// overridden by the specific fields when present.
type wireMargin struct {
	Model    string   `json:"model,omitempty"`
	Sigma    *float64 `json:"sigma,omitempty"`
	SigmaOn  *float64 `json:"sigma_on,omitempty"`
	SigmaOff *float64 `json:"sigma_off,omitempty"`
	Trials   int      `json:"trials,omitempty"`
	Vectors  int      `json:"vectors,omitempty"`
	Seed     uint64   `json:"seed,omitempty"`
	TopCells int      `json:"top_cells,omitempty"`
}

// toSpice validates the margin block against the wire caps and resolves
// the canonical model name, the device model, the variation and the Monte
// Carlo options.
func (m *wireMargin) toSpice() (string, spice.DeviceModel, spice.Variation, spice.MonteCarloOptions, error) {
	var (
		name  = "default"
		model = spice.Default()
		v     spice.Variation
		opts  spice.MonteCarloOptions
	)
	if m == nil {
		return name, model, v, opts, nil
	}
	switch m.Model {
	case "", "default":
	case "highcontrast":
		name, model = "highcontrast", spice.HighContrast()
	default:
		return name, model, v, opts, fmt.Errorf("unknown device model %q (want default or highcontrast)", m.Model)
	}
	sigma := func(field string, p *float64) (float64, error) {
		if p == nil {
			return 0, nil
		}
		s := *p
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 || s > maxSigma {
			return 0, fmt.Errorf("%s %v outside [0, %g]", field, s, maxSigma)
		}
		return s, nil
	}
	both, err := sigma("sigma", m.Sigma)
	if err != nil {
		return name, model, v, opts, err
	}
	v.SigmaOn, v.SigmaOff = both, both
	if s, err := sigma("sigma_on", m.SigmaOn); err != nil {
		return name, model, v, opts, err
	} else if m.SigmaOn != nil {
		v.SigmaOn = s
	}
	if s, err := sigma("sigma_off", m.SigmaOff); err != nil {
		return name, model, v, opts, err
	} else if m.SigmaOff != nil {
		v.SigmaOff = s
	}
	if err := wirelimit.CheckCount("trials", m.Trials, maxMarginTrials); err != nil {
		return name, model, v, opts, err
	}
	if err := wirelimit.CheckCount("vectors", m.Vectors, maxMarginVectors); err != nil {
		return name, model, v, opts, err
	}
	if err := wirelimit.CheckCount("top_cells", m.TopCells, maxMarginTopCells); err != nil {
		return name, model, v, opts, err
	}
	opts.Trials = m.Trials
	opts.Vectors = m.Vectors
	opts.Seed = m.Seed
	opts.TopCells = m.TopCells
	return name, model, v, opts, nil
}

// marginResponse is the 200 body of /v1/margin.
type marginResponse struct {
	Key      string  `json:"key"`
	Model    string  `json:"model"`
	SigmaOn  float64 `json:"sigma_on"`
	SigmaOff float64 `json:"sigma_off"`
	Rows     int     `json:"rows"`
	Cols     int     `json:"cols"`
	Placed   bool    `json:"placed"`
	// Layers is the wire-layer count of a layered (FLOW-3D) analysis; 0
	// for classic 2D arrays. Rows/Cols are then the stack's footprint
	// projection.
	Layers int                    `json:"layers,omitempty"`
	Report spice.MonteCarloReport `json:"report"`
}

// errMarginUnsupported marks solve outcomes the margin analyzer cannot
// simulate (partitioned plans, arrays past the nodal size cap).
var errMarginUnsupported = errors.New("margin analysis unsupported for this result")

// marginKey extends the synthesis cache key with the margin parameters,
// so reports never alias across models, spreads or sampling setups.
func marginKey(synthKey string, model spice.DeviceModel, v spice.Variation, opts spice.MonteCarloOptions) string {
	sum := sha256.Sum256([]byte(model.Key() + "|" + v.Key() + "|" + opts.Key()))
	return synthKey + "|margin|" + fmt.Sprintf("sha256:%x", sum)
}

// handleMargin is POST /v1/margin.
func (s *Server) handleMargin(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.metrics.marginRequests.Add(1)
	if !s.admit(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // the wire format is strict: typos are 400s
	var req marginRequest
	if err := dec.Decode(&req); err != nil {
		s.clientError(w, codeInvalidRequest, nil, "malformed request: %v", err)
		return
	}
	nw, code, err := s.resolveNetwork(&synthesizeRequest{
		Circuit: req.Circuit, Benchmark: req.Benchmark, Format: req.Format, Name: req.Name,
	})
	if err != nil {
		s.clientError(w, code, nil, "%v", err)
		return
	}
	opts, err := req.Options.toCore(s.cfg.DefaultTimeLimit, s.cfg.MaxTimeLimit)
	if err != nil {
		s.clientError(w, codeInvalidOptions, nil, "invalid options: %v", err)
		return
	}
	modelName, model, variation, mcopts, err := req.Margin.toSpice()
	if err != nil {
		s.clientError(w, codeInvalidOptions, nil, "invalid margin parameters: %v", err)
		return
	}
	key := marginKey(cacheKey(nw, opts), model, variation, mcopts)

	if body, disposition, ok, _ := s.cache.get(key); ok {
		s.countCacheHit(disposition)
		s.writeResult(w, disposition, body)
		return
	}
	fl, leader := s.flights.do(key, func() ([]byte, error) {
		return s.solveMargin(s.base, key, nw, opts, modelName, model, variation, mcopts)
	})
	if leader {
		s.metrics.cacheMisses.Add(1)
	} else {
		s.metrics.cacheShared.Add(1)
	}
	body, err := fl.wait(r.Context())
	switch {
	case err == nil:
		disposition := "miss"
		if !leader {
			disposition = "shared"
		}
		s.writeResult(w, disposition, body)
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil,
		errors.Is(err, context.DeadlineExceeded) && r.Context().Err() != nil:
		writeErrorCode(w, codeRequestAbandoned, nil, "request abandoned: %v", err)
	case errors.Is(err, errMarginUnsupported), errors.Is(err, spice.ErrTooLarge):
		s.metrics.badRequests.Add(1)
		writeErrorCode(w, codeMarginUnsupported, nil, "%v", err)
	default:
		code, detail := classifySolveError(err)
		if code == codeInfeasible || code == codeUnplaceable {
			s.metrics.badRequests.Add(1)
		}
		writeErrorCode(w, code, detail, "%s", solveErrorMessage(code, err))
	}
}

// solveMargin runs one deduplicated margin analysis: synthesize the design
// on the shared worker pool, then run the Monte Carlo under the request's
// remaining budget and cache the marshaled report through both tiers.
func (s *Server) solveMargin(ctx context.Context, key string, nw *logic.Network,
	opts core.Options, modelName string, model spice.DeviceModel, v spice.Variation, mcopts spice.MonteCarloOptions) ([]byte, error) {
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		if s.base.Err() != nil {
			return nil, errShuttingDown
		}
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()
	if s.base.Err() != nil {
		return nil, errShuttingDown
	}

	res, err := s.cfg.Synth(ctx, nw, opts)
	s.metrics.solves.Add(1)
	if err != nil {
		s.metrics.solveErrors.Add(1)
		if s.base.Err() != nil {
			return nil, errShuttingDown
		}
		return nil, err
	}
	if res.Plan != nil || (res.Design == nil && res.Design3D == nil) {
		return nil, fmt.Errorf("%w: partitioned multi-tile plans have no single-array electrical model", errMarginUnsupported)
	}
	if res.Design3D != nil && res.Placement3D != nil {
		// The 3D nodal solver simulates pristine stacks only: layered
		// defect placement has no electrical model (DESIGN.md §15), so a
		// defect-placed layered result is a typed refusal, not a 500.
		return nil, fmt.Errorf("%w: defect-placed layered stacks have no electrical model; rerun without defect options", errMarginUnsupported)
	}

	// The Monte Carlo runs under the same per-request budget policy as the
	// solve; expiry degrades to the anytime best-so-far report.
	mcCtx, cancel := context.WithTimeout(ctx, opts.TimeLimit)
	defer cancel()
	mcopts.Workers = s.cfg.Workers
	resp := marginResponse{
		Key:      key,
		Model:    modelName,
		SigmaOn:  v.SigmaOn,
		SigmaOff: v.SigmaOff,
	}
	t0 := time.Now()
	var rep spice.MonteCarloReport
	if res.Design3D != nil {
		st := res.Design3D.Stats()
		resp.Rows, resp.Cols, resp.Layers = st.R, st.C, st.K
		rep, err = spice.MonteCarlo3DContext(mcCtx, res.Design3D, res.Design3D.Eval,
			res.Design3D.NumVars(), model, v, mcopts)
	} else {
		resp.Rows, resp.Cols = res.Design.Rows, res.Design.Cols
		resp.Placed = res.Placement != nil
		env := spice.Env{Model: model, Defects: res.Defects, Placement: res.Placement}
		rep, err = spice.MonteCarloContext(mcCtx, res.Design, res.Design.Eval, len(res.Design.VarNames), env, v, mcopts)
	}
	s.metrics.marginMillis.Add(float64(time.Since(t0)) / float64(time.Millisecond))
	if err != nil {
		if errors.Is(err, spice.ErrTooLarge) {
			return nil, fmt.Errorf("%w: %v", errMarginUnsupported, err)
		}
		if s.base.Err() != nil {
			return nil, errShuttingDown
		}
		return nil, err
	}
	s.metrics.margins.Add(1)
	resp.Report = rep
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("encoding result: %w", err)
	}
	s.cache.put(key, body)
	return body, nil
}

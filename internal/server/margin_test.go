package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"compact/internal/core"
	"compact/internal/logic"
	"compact/internal/spice"
)

// postMargin sends one /v1/margin request.
func postMargin(t *testing.T, url, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/margin", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("X-Compactd-Cache"), data
}

func marginCircuitRequest(margin string) string {
	return fmt.Sprintf(`{"circuit": %q, "options": {"method": "heuristic"}, "margin": %s}`, andOrBLIF, margin)
}

// TestMarginEndpointDeterministicYield: a fixed (circuit, options, margin)
// triple yields one deterministic report — byte-identical across repeats
// on one server (cache hit) and across servers (fresh solve).
func TestMarginEndpointDeterministicYield(t *testing.T) {
	req := marginCircuitRequest(`{"model": "highcontrast", "sigma": 0.1, "trials": 16, "vectors": 8, "seed": 7}`)

	ts := newTestServer(t, Config{})
	status, disp, first := postMargin(t, ts.URL, req)
	if status != http.StatusOK || disp != "miss" {
		t.Fatalf("first request: status %d, disposition %q, body %s", status, disp, first)
	}
	var mr marginResponse
	if err := json.Unmarshal(first, &mr); err != nil {
		t.Fatalf("unmarshaling response: %v", err)
	}
	if mr.Model != "highcontrast" || mr.SigmaOn != 0.1 || mr.SigmaOff != 0.1 {
		t.Errorf("echoed parameters wrong: %+v", mr)
	}
	if mr.Report.Trials != 16 || mr.Report.RequestedTrials != 16 {
		t.Errorf("trial accounting wrong: %+v", mr.Report)
	}
	// Three inputs: 8 requested vectors exactly cover the space.
	if mr.Report.Vectors != 8 || !mr.Report.Exhaustive {
		t.Errorf("vector accounting wrong: %+v", mr.Report)
	}
	if mr.Report.Yield < 0 || mr.Report.Yield > 1 {
		t.Errorf("yield %v outside [0,1]", mr.Report.Yield)
	}
	if mr.Report.Yield < 0.9 {
		t.Errorf("tight spread on the high-contrast model should give near-unit yield: %+v", mr.Report)
	}

	status, disp, second := postMargin(t, ts.URL, req)
	if status != http.StatusOK || disp != "hit" {
		t.Fatalf("repeat request: status %d, disposition %q", status, disp)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit body differs from the miss body")
	}

	ts2 := newTestServer(t, Config{})
	status, _, fresh := postMargin(t, ts2.URL, req)
	if status != http.StatusOK {
		t.Fatalf("fresh server: status %d, body %s", status, fresh)
	}
	if !bytes.Equal(first, fresh) {
		t.Fatalf("same request on a fresh server produced a different report:\n%s\n%s", first, fresh)
	}
}

// TestMarginSingleflightDedup: N concurrent identical margin requests run
// the synthesis (and hence the simulation behind it) exactly once.
func TestMarginSingleflightDedup(t *testing.T) {
	var solves atomic.Int64
	ts := newTestServer(t, Config{
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			solves.Add(1)
			time.Sleep(200 * time.Millisecond) // hold the flight open for joiners
			return core.SynthesizeContext(ctx, nw, opts)
		},
	})
	const n = 8
	req := marginCircuitRequest(`{"sigma": 0.05, "trials": 8, "vectors": 8, "seed": 1}`)
	var (
		start  sync.WaitGroup
		done   sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
		misses int
	)
	start.Add(1)
	for i := 0; i < n; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			status, disp, body := postMargin(t, ts.URL, req)
			mu.Lock()
			defer mu.Unlock()
			if status != http.StatusOK {
				t.Errorf("status %d, body %s", status, body)
			}
			if disp == "miss" {
				misses++
			}
			bodies = append(bodies, body)
		}()
	}
	start.Done()
	done.Wait()
	if got := solves.Load(); got != 1 {
		t.Fatalf("synthesis ran %d times for %d concurrent identical margin requests, want exactly 1", got, n)
	}
	if misses != 1 {
		t.Errorf("got %d miss dispositions, want exactly 1", misses)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}

// TestMarginEndpointErrors drives the request-validation envelope paths.
func TestMarginEndpointErrors(t *testing.T) {
	ts := newTestServer(t, Config{})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"sigma over cap", marginCircuitRequest(`{"sigma": 5.0}`), http.StatusBadRequest, codeInvalidOptions},
		{"negative sigma", marginCircuitRequest(`{"sigma_on": -0.5}`), http.StatusBadRequest, codeInvalidOptions},
		{"unknown model", marginCircuitRequest(`{"model": "quantum"}`), http.StatusBadRequest, codeInvalidOptions},
		{"trials over cap", marginCircuitRequest(`{"trials": 100000}`), http.StatusBadRequest, codeInvalidOptions},
		{"vectors over cap", marginCircuitRequest(`{"vectors": 10000000}`), http.StatusBadRequest, codeInvalidOptions},
		{"unknown field", marginCircuitRequest(`{"sgma": 0.1}`), http.StatusBadRequest, codeInvalidRequest},
		{"no circuit", `{"margin": {"sigma": 0.1}}`, http.StatusBadRequest, codeInvalidRequest},
		{"unknown benchmark", `{"benchmark": "nope", "margin": {"sigma": 0.1}}`, http.StatusNotFound, codeUnknownBenchmark},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := postMargin(t, ts.URL, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d; body %s", status, tc.wantStatus, body)
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("non-envelope error body %s: %v", body, err)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q (body %s)", env.Error.Code, tc.wantCode, body)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestMarginUnsupportedOnPartitionedResult: a synthesis that returns a
// multi-tile plan has no single-array electrical model; the margin route
// must refuse with the typed 422, not guess.
func TestMarginUnsupportedOnPartitionedResult(t *testing.T) {
	ts := newTestServer(t, Config{
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			opts.Partition = true
			opts.MaxRows = 4
			opts.MaxCols = 3
			return core.SynthesizeContext(ctx, nw, opts)
		},
	})
	req := marginCircuitRequest(`{"sigma": 0.1, "trials": 4, "vectors": 4}`)
	status, _, body := postMargin(t, ts.URL, req)
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-envelope body %s: %v", body, err)
	}
	if env.Error.Code == codeMarginUnsupported {
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("margin_unsupported with status %d", status)
		}
		return
	}
	// The forced caps may let the circuit fit a single tile after all; then
	// the request must simply succeed (the hook changes opts, not the key,
	// so this stays deterministic per test binary).
	if status != http.StatusOK {
		t.Fatalf("status %d, code %q, body %s", status, env.Error.Code, body)
	}
}

// TestMarginLayeredEnvelope pins the /v1/margin contract for FLOW-3D
// requests: a pristine layered stack runs through the 3D nodal solver and
// returns a normal report carrying the layer count; every layered shape
// the analyzer cannot simulate is a typed envelope — never a 500.
func TestMarginLayeredEnvelope(t *testing.T) {
	ts := newTestServer(t, Config{})
	layered := func(options, margin string) string {
		return fmt.Sprintf(`{"circuit": %q, "options": %s, "margin": %s}`, andOrBLIF, options, margin)
	}
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string // empty for a 200
	}{
		{
			"clean layered stack",
			layered(`{"method": "heuristic", "layers": 3}`, `{"sigma": 0.02, "trials": 8, "vectors": 8, "seed": 3}`),
			http.StatusOK, "",
		},
		{
			"defect-placed layered stack",
			layered(`{"method": "heuristic", "layers": 3, "defect_rate": 0.001, "defect_seed": 1}`, `{"sigma": 0.02, "trials": 4, "vectors": 4}`),
			http.StatusUnprocessableEntity, codeMarginUnsupported,
		},
		{
			"layered margin-aware placement",
			layered(`{"method": "heuristic", "layers": 3, "margin_aware": true}`, `{"sigma": 0.02}`),
			http.StatusBadRequest, codeInvalidOptions,
		},
		{
			"layers over cap",
			layered(`{"method": "heuristic", "layers": 99}`, `{"sigma": 0.02}`),
			http.StatusBadRequest, codeInvalidOptions,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := postMargin(t, ts.URL, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d; body %s", status, tc.wantStatus, body)
			}
			if status >= 500 {
				t.Fatalf("layered margin request produced a server error: %s", body)
			}
			if tc.wantCode == "" {
				var mr marginResponse
				if err := json.Unmarshal(body, &mr); err != nil {
					t.Fatalf("non-JSON 200 body %s: %v", body, err)
				}
				if mr.Layers != 3 {
					t.Errorf("layered report carries layers=%d, want 3", mr.Layers)
				}
				if mr.Report.Trials != 8 {
					t.Errorf("trial accounting wrong: %+v", mr.Report)
				}
				if mr.Report.Yield < 0.9 {
					t.Errorf("tight spread should give near-unit yield: %+v", mr.Report)
				}
				return
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("non-envelope error body %s: %v", body, err)
			}
			if env.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q (body %s)", env.Error.Code, tc.wantCode, body)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestMarginKeyDistinguishesParameters: different margin parameters must
// never share a cache slot.
func TestMarginKeyDistinguishesParameters(t *testing.T) {
	base := cacheKey(mustNetwork(t), core.Options{}.Canonical())
	k1 := marginKey(base, spice.Default(), spice.Variation{SigmaOn: 0.1, SigmaOff: 0.1}, spice.MonteCarloOptions{Trials: 8, Seed: 1})
	k2 := marginKey(base, spice.Default(), spice.Variation{SigmaOn: 0.2, SigmaOff: 0.1}, spice.MonteCarloOptions{Trials: 8, Seed: 1})
	k3 := marginKey(base, spice.Default(), spice.Variation{SigmaOn: 0.1, SigmaOff: 0.1}, spice.MonteCarloOptions{Trials: 8, Seed: 2})
	k4 := marginKey(base, spice.HighContrast(), spice.Variation{SigmaOn: 0.1, SigmaOff: 0.1}, spice.MonteCarloOptions{Trials: 8, Seed: 1})
	keys := map[string]bool{k1: true, k2: true, k3: true, k4: true}
	if len(keys) != 4 {
		t.Fatalf("margin keys collide: %v", keys)
	}
	if !strings.Contains(k1, "|margin|") {
		t.Errorf("margin key %q does not extend the synthesis key", k1)
	}
}

func mustNetwork(t *testing.T) *logic.Network {
	t.Helper()
	b := logic.NewBuilder("k")
	b.Output("f", b.Input("a"))
	return b.Build()
}

package server

import (
	"container/list"
	"sync"

	"compact/internal/store"
)

// resultCache is a content-addressed LRU cache of marshaled synthesis
// responses. Keys are "fingerprint|optionskey" strings (see cacheKey);
// values are the exact response bodies served to clients, so a cache hit
// is byte-identical to the miss that populated it. The cache is bounded
// both by entry count and by total body bytes; inserting past either
// bound evicts from the least-recently-used end. All methods are safe for
// concurrent use.
type resultCache struct {
	mu       sync.Mutex
	maxItems int
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache builds a cache bounded by maxItems entries and maxBytes
// total body bytes; zero or negative bounds disable that dimension's
// limit (both disabled means unbounded, which only tests should use).
func newResultCache(maxItems int, maxBytes int64) *resultCache {
	return &resultCache{
		maxItems: maxItems,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached body for key and marks it most recently used.
// The returned slice is shared — callers must not mutate it.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put inserts (or refreshes) key with the given body and evicts as needed.
// Bodies larger than the byte bound are not cached at all.
func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && int64(len(body)) > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(ent.body))
		ent.body = body
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.items[key] = el
		c.bytes += int64(len(body))
	}
	for (c.maxItems > 0 && c.ll.Len() > c.maxItems) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.body))
	}
}

// stats returns the current entry count and byte footprint.
func (c *resultCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}

// tieredCache layers the persistent disk store (internal/store) under the
// in-memory LRU: gets fall through memory to disk (promoting hits back
// into memory), puts write through to both tiers. The disk tier is
// optional (nil when the server runs without -store-dir); it is strictly
// best-effort on the synthesis path — a store I/O failure degrades to a
// miss or an unpersisted result, counted in metrics, never a failed
// response. Routes that *need* the store (a job's /result) inspect the
// error and surface store_unavailable.
type tieredCache struct {
	mem     *resultCache
	disk    *store.Store // nil = memory-only
	metrics *metrics
}

func newTieredCache(mem *resultCache, disk *store.Store, m *metrics) *tieredCache {
	return &tieredCache{mem: mem, disk: disk, metrics: m}
}

// get returns the cached body for key and the cache disposition that
// should be reported for it ("hit" from memory, "disk" from the
// persistent tier). err is non-nil only for disk I/O failures, which are
// also reported as misses; corrupt disk entries are quarantined by the
// store and surface as clean misses.
func (c *tieredCache) get(key string) (body []byte, disposition string, ok bool, err error) {
	if body, ok := c.mem.get(key); ok {
		return body, "hit", true, nil
	}
	if c.disk == nil {
		return nil, "", false, nil
	}
	body, ok, err = c.disk.Get(key)
	c.syncDiskStats()
	if err != nil {
		c.metrics.storeErrors.Add(1)
		return nil, "", false, err
	}
	if !ok {
		return nil, "", false, nil
	}
	// Promote: the next identical request is a memory hit again.
	c.mem.put(key, body)
	return body, "disk", true, nil
}

// put writes through to both tiers and refreshes the cache gauges.
func (c *tieredCache) put(key string, body []byte) {
	c.mem.put(key, body)
	if c.disk != nil {
		if err := c.disk.Put(key, body); err != nil {
			c.metrics.storeErrors.Add(1)
		}
		c.syncDiskStats()
	}
	entries, bytes := c.mem.stats()
	c.metrics.cacheEntries.Set(int64(entries))
	c.metrics.cacheBytes.Set(bytes)
}

// syncDiskStats refreshes the store gauges from the store's own counters.
func (c *tieredCache) syncDiskStats() {
	if c.disk == nil {
		return
	}
	entries, bytes, quarantined, _ := c.disk.Stats()
	c.metrics.storeEntries.Set(int64(entries))
	c.metrics.storeBytes.Set(bytes)
	c.metrics.storeQuarantined.Set(int64(quarantined))
}

package server

import (
	"container/list"
	"sync"
)

// resultCache is a content-addressed LRU cache of marshaled synthesis
// responses. Keys are "fingerprint|optionskey" strings (see cacheKey);
// values are the exact response bodies served to clients, so a cache hit
// is byte-identical to the miss that populated it. The cache is bounded
// both by entry count and by total body bytes; inserting past either
// bound evicts from the least-recently-used end. All methods are safe for
// concurrent use.
type resultCache struct {
	mu       sync.Mutex
	maxItems int
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResultCache builds a cache bounded by maxItems entries and maxBytes
// total body bytes; zero or negative bounds disable that dimension's
// limit (both disabled means unbounded, which only tests should use).
func newResultCache(maxItems int, maxBytes int64) *resultCache {
	return &resultCache{
		maxItems: maxItems,
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// get returns the cached body for key and marks it most recently used.
// The returned slice is shared — callers must not mutate it.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put inserts (or refreshes) key with the given body and evicts as needed.
// Bodies larger than the byte bound are not cached at all.
func (c *resultCache) put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && int64(len(body)) > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(ent.body))
		ent.body = body
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.items[key] = el
		c.bytes += int64(len(body))
	}
	for (c.maxItems > 0 && c.ll.Len() > c.maxItems) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.body))
	}
}

// stats returns the current entry count and byte footprint.
func (c *resultCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}

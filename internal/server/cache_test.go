package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheLRUEntryBound(t *testing.T) {
	c := newResultCache(3, 0)
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if _, ok := c.get("k0"); ok {
		t.Fatalf("k0 should have been evicted as least recently used")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing", i)
		}
	}
	// Touch k1, insert k4: k2 is now the LRU victim.
	c.get("k1")
	c.get("k3")
	c.put("k4", []byte{4})
	if _, ok := c.get("k2"); ok {
		t.Fatalf("k2 should have been evicted after k1/k3 were touched")
	}
	if entries, _ := c.stats(); entries != 3 {
		t.Fatalf("entries = %d, want 3", entries)
	}
}

func TestCacheByteBound(t *testing.T) {
	c := newResultCache(0, 10)
	c.put("a", bytes.Repeat([]byte{1}, 6))
	c.put("b", bytes.Repeat([]byte{2}, 6)) // 12 bytes total: "a" evicted
	if _, ok := c.get("a"); ok {
		t.Fatalf("a should have been evicted by the byte bound")
	}
	if _, ok := c.get("b"); !ok {
		t.Fatalf("b missing")
	}
	if _, bytes := c.stats(); bytes != 6 {
		t.Fatalf("bytes = %d, want 6", bytes)
	}
	// Oversized bodies are not cached at all.
	c.put("huge", make([]byte, 11))
	if _, ok := c.get("huge"); ok {
		t.Fatalf("oversized body should not have been cached")
	}
}

func TestCacheRefreshSameKey(t *testing.T) {
	c := newResultCache(2, 0)
	c.put("k", []byte("one"))
	c.put("k", []byte("three"))
	body, ok := c.get("k")
	if !ok || string(body) != "three" {
		t.Fatalf("refresh lost: %q, %v", body, ok)
	}
	if entries, total := c.stats(); entries != 1 || total != int64(len("three")) {
		t.Fatalf("stats = %d entries, %d bytes", entries, total)
	}
}

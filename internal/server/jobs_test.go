package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"compact/internal/core"
	"compact/internal/logic"
)

// jobDoc mirrors the wire shapes of the jobs routes for decoding.
type jobDoc struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	StatusURL string `json:"status_url"`
	ResultURL string `json:"result_url"`
	Progress  struct {
		RepairAttempts int64 `json:"repair_attempts"`
		TilesDone      int64 `json:"tiles_done"`
	} `json:"progress"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// doJSON issues a request and decodes the body into a jobDoc.
func doJSON(t *testing.T, method, url, body string) (int, jobDoc, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc jobDoc
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
	}
	return resp.StatusCode, doc, raw
}

// pollJob polls a job's status until it reaches a terminal state.
func pollJob(t *testing.T, base, statusURL string, deadline time.Duration) jobDoc {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		status, doc, raw := doJSON(t, http.MethodGet, base+statusURL, "")
		if status != http.StatusOK {
			t.Fatalf("job status: %d %s", status, raw)
		}
		if doc.Status == "done" || doc.Status == "failed" {
			return doc
		}
		if time.Now().After(stop) {
			t.Fatalf("job still %q after %v", doc.Status, deadline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobLifecycle drives the full async happy path: submit, poll to
// done, fetch the result byte-identically to the synchronous route, and
// check DELETE on a terminal job is a no-op.
func TestJobLifecycle(t *testing.T) {
	ts := newTestServer(t, Config{})
	req := circuitRequest(`{"method": "heuristic"}`)

	status, sub, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}
	if sub.ID == "" || sub.StatusURL != "/v1/jobs/"+sub.ID {
		t.Fatalf("submit response malformed: %s", raw)
	}

	doc := pollJob(t, ts.URL, sub.StatusURL, 30*time.Second)
	if doc.Status != "done" {
		t.Fatalf("job finished %q: %+v", doc.Status, doc)
	}
	if doc.ResultURL != sub.StatusURL+"/result" {
		t.Fatalf("done job result_url %q", doc.ResultURL)
	}

	resp, err := http.Get(ts.URL + doc.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	jobBody, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, body %s", resp.StatusCode, jobBody)
	}
	if disp := resp.Header.Get("X-Compactd-Cache"); disp != "hit" {
		t.Fatalf("result disposition %q, want hit", disp)
	}

	// The synchronous route must serve the exact same bytes from cache.
	syncStatus, disp, syncBody := post(t, ts.URL, req)
	if syncStatus != http.StatusOK || disp != "hit" {
		t.Fatalf("sync after job: status %d disposition %q", syncStatus, disp)
	}
	if string(syncBody) != string(jobBody) {
		t.Fatal("job result differs from the synchronous body")
	}

	// DELETE on a terminal job reports the unchanged state.
	status, doc, raw = doJSON(t, http.MethodDelete, ts.URL+sub.StatusURL, "")
	if status != http.StatusOK || doc.Status != "done" {
		t.Fatalf("delete terminal job: status %d, body %s", status, raw)
	}
}

// TestJobCancellationPrompt checks DELETE cancels a running job's solve
// promptly via the derived context.
func TestJobCancellationPrompt(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	ts := newTestServer(t, Config{
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			once.Do(func() { close(started) })
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})

	status, sub, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", circuitRequest(""))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("solve never started")
	}
	t0 := time.Now()
	if status, _, raw := doJSON(t, http.MethodDelete, ts.URL+sub.StatusURL, ""); status != http.StatusOK {
		t.Fatalf("cancel: status %d, body %s", status, raw)
	}
	doc := pollJob(t, ts.URL, sub.StatusURL, 5*time.Second)
	if doc.Status != "failed" || doc.Error == nil || doc.Error.Code != "canceled" {
		t.Fatalf("canceled job state: %+v", doc)
	}
	if elapsed := time.Since(t0); elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestJobInterruptedOnRestart checks a job that was mid-flight when the
// process died resurfaces on restart as failed with the "interrupted"
// code — it never vanishes.
func TestJobInterruptedOnRestart(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{})
	var once sync.Once
	ctxA, cancelA := context.WithCancel(context.Background())
	t.Cleanup(cancelA)
	srvA, err := New(ctxA, Config{
		StoreDir: dir,
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			once.Do(func() { close(started) })
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	t.Cleanup(tsA.Close)

	status, sub, raw := doJSON(t, http.MethodPost, tsA.URL+"/v1/jobs", circuitRequest(""))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("solve never started")
	}
	// Wait for the "running" record to land on disk before "crashing".
	stop := time.Now().Add(5 * time.Second)
	for {
		if _, doc, _ := doJSON(t, http.MethodGet, tsA.URL+sub.StatusURL, ""); doc.Status == "running" {
			break
		}
		if time.Now().After(stop) {
			t.Fatal("job never reached running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A new server over the same store directory simulates the restart;
	// the old process's goroutine is still blocked, like a crash would
	// leave the on-disk record.
	ctxB, cancelB := context.WithCancel(context.Background())
	t.Cleanup(cancelB)
	srvB, err := New(ctxB, Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	t.Cleanup(tsB.Close)

	status, doc, raw := doJSON(t, http.MethodGet, tsB.URL+sub.StatusURL, "")
	if status != http.StatusOK {
		t.Fatalf("recovered job status: %d %s", status, raw)
	}
	if doc.Status != "failed" || doc.Error == nil || doc.Error.Code != "interrupted" {
		t.Fatalf("recovered job state: %s", raw)
	}
}

// TestJobResultBeforeDone checks the 409 job_not_done envelope, and that
// the overloaded table refuses new jobs with 429 rather than evicting
// live work.
func TestJobBackpressure(t *testing.T) {
	release := make(chan struct{})
	ts := newTestServer(t, Config{
		MaxJobs: 1,
		Synth: func(ctx context.Context, nw *logic.Network, opts core.Options) (*core.Result, error) {
			select {
			case <-release:
				return core.SynthesizeContext(ctx, nw, opts)
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(release)

	status, sub, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", circuitRequest(""))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}

	// Result before done: 409 with the typed envelope.
	resp, err := http.Get(ts.URL + sub.StatusURL + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result: status %d, body %s", resp.StatusCode, body)
	}
	if code := envelopeCode(t, body); code != "job_not_done" {
		t.Fatalf("early result code %q: %s", code, body)
	}

	// Table full of live jobs: refuse, don't evict running work.
	status, _, raw = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", circuitRequest(`{"gamma": 0.25}`))
	if status != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: status %d, body %s", status, raw)
	}
	if code := envelopeCode(t, raw); code != "overloaded" {
		t.Fatalf("overloaded code %q: %s", code, raw)
	}
}

// TestJobTerminalEviction checks a full table makes room by dropping the
// oldest finished job.
func TestJobTerminalEviction(t *testing.T) {
	ts := newTestServer(t, Config{MaxJobs: 1})

	status, sub1, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", circuitRequest(""))
	if status != http.StatusAccepted {
		t.Fatalf("submit 1: status %d, body %s", status, raw)
	}
	pollJob(t, ts.URL, sub1.StatusURL, 30*time.Second)

	status, sub2, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", circuitRequest(`{"gamma": 0.25}`))
	if status != http.StatusAccepted {
		t.Fatalf("submit 2 after terminal: status %d, body %s", status, raw)
	}
	pollJob(t, ts.URL, sub2.StatusURL, 30*time.Second)

	status, _, raw = doJSON(t, http.MethodGet, ts.URL+sub1.StatusURL, "")
	if status != http.StatusNotFound {
		t.Fatalf("evicted job lookup: status %d, body %s", status, raw)
	}
	if code := envelopeCode(t, raw); code != "job_not_found" {
		t.Fatalf("evicted job code %q: %s", code, raw)
	}
}

// TestJobResultEvicted checks the 410 result_evicted envelope when a done
// job's body has aged out of both cache tiers (here: a one-entry memory
// cache and no disk tier).
func TestJobResultEvicted(t *testing.T) {
	ts := newTestServer(t, Config{CacheEntries: 1})

	status, sub, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", circuitRequest(""))
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, raw)
	}
	doc := pollJob(t, ts.URL, sub.StatusURL, 30*time.Second)
	if doc.Status != "done" {
		t.Fatalf("job finished %q", doc.Status)
	}

	// Push the job's body out of the single cache slot.
	if status, _, body := post(t, ts.URL, circuitRequest(`{"gamma": 0.25}`)); status != http.StatusOK {
		t.Fatalf("evictor request: status %d, body %s", status, body)
	}

	resp, err := http.Get(ts.URL + doc.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted result: status %d, body %s", resp.StatusCode, body)
	}
	if code := envelopeCode(t, body); code != "result_evicted" {
		t.Fatalf("evicted result code %q: %s", code, body)
	}
}

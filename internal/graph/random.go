package graph

// Random generates a seeded Erdős–Rényi-style G(n, p) graph: every vertex
// pair becomes an edge independently with probability p, decided by a
// deterministic splitmix-style generator so the same (n, p, seed) always
// yields the same graph. It is the shared source of random conflict-graph
// instances for property tests and benchmarks (vertex-cover ILP models,
// labeling stress inputs) across packages — deterministic, dependency-free
// and safe for concurrent use (each call owns its generator state).
func Random(n int, p float64, seed uint64) *Graph {
	g := New(n)
	if p <= 0 {
		return g
	}
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	// 53-bit uniform in [0,1): enough resolution for any practical p.
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if float64(next()>>11)/(1<<53) < p {
				g.addEdge(u, v)
			}
		}
	}
	return g
}

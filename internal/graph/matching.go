package graph

// MaxMatching computes a maximum matching of the bipartite graph g using
// the Hopcroft–Karp algorithm. color must be a proper 2-coloring of g (as
// returned by TwoColor); vertices with color 0 form the left side. The
// result maps every vertex to its mate, or -1 if unmatched.
//
//lint:ignore ctxbound polynomial-time Hopcroft–Karp: O(E√V), needs no budget
func MaxMatching(g *Graph, color []int) []int {
	n := g.N()
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	var left []int
	for v := 0; v < n; v++ {
		if color[v] == 0 && g.Degree(v) > 0 {
			left = append(left, v)
		}
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)

	bfs := func() bool {
		queue := make([]int, 0, len(left))
		for _, u := range left {
			if mate[u] < 0 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Adj(u) {
				w := mate[v]
				if w < 0 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int) bool
	dfs = func(u int) bool {
		for _, v := range g.Adj(u) {
			w := mate[v]
			if w < 0 || (dist[w] == dist[u]+1 && dfs(w)) {
				mate[u] = v
				mate[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for _, u := range left {
			if mate[u] < 0 {
				dfs(u)
			}
		}
	}
	return mate
}

// MatchingSize returns the number of matched pairs in a mate array.
func MatchingSize(mate []int) int {
	c := 0
	for v, m := range mate {
		if m > v {
			c++
		}
	}
	return c
}

// KonigCover computes a minimum vertex cover of the bipartite graph g from
// a maximum matching, via König's theorem: with Z the set of vertices
// reachable from unmatched left vertices by alternating paths, the cover is
// (L \ Z) ∪ (R ∩ Z). color and mate must come from TwoColor and MaxMatching.
func KonigCover(g *Graph, color, mate []int) map[int]bool {
	n := g.N()
	inZ := make([]bool, n)
	var queue []int
	for v := 0; v < n; v++ {
		if color[v] == 0 && mate[v] < 0 && g.Degree(v) > 0 {
			inZ[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if color[u] == 0 {
			// Follow non-matching edges left -> right.
			for _, v := range g.Adj(u) {
				if mate[u] != v && !inZ[v] {
					inZ[v] = true
					queue = append(queue, v)
				}
			}
		} else if m := mate[u]; m >= 0 && !inZ[m] {
			// Follow the matching edge right -> left.
			inZ[m] = true
			queue = append(queue, m)
		}
	}
	cover := make(map[int]bool)
	for v := 0; v < n; v++ {
		if g.Degree(v) == 0 {
			continue
		}
		if color[v] == 0 && !inZ[v] {
			cover[v] = true
		} else if color[v] == 1 && inZ[v] {
			cover[v] = true
		}
	}
	return cover
}

// MinVertexCoverBipartite computes a minimum vertex cover of a bipartite
// graph directly (TwoColor + Hopcroft–Karp + König). It panics if g is not
// bipartite.
//
//lint:ignore ctxbound polynomial-time König construction over one Hopcroft–Karp matching
func MinVertexCoverBipartite(g *Graph) map[int]bool {
	color, ok := g.TwoColor()
	if !ok {
		panic("graph: MinVertexCoverBipartite on non-bipartite graph")
	}
	mate := MaxMatching(g, color)
	return KonigCover(g, color, mate)
}

// LPRelaxVC solves the LP relaxation of minimum vertex cover on an
// arbitrary graph via the bipartite double cover (the relaxation is
// half-integral). The result assigns each vertex 0, 1 or 2 representing
// x=0, x=1/2, x=1 (doubled to stay integral).
//
// This is the Nemhauser–Trotter step: x=1 vertices belong to some optimal
// cover, x=0 vertices avoid some optimal cover, and the kernel is the x=1/2
// set.
func LPRelaxVC(g *Graph) []int {
	n := g.N()
	// Double cover: left copy v, right copy v+n; edge (u,v) gives
	// (u, v+n) and (v, u+n).
	h := New(2 * n)
	for _, e := range g.Edges() {
		h.addEdge(e[0], e[1]+n)
		h.addEdge(e[1], e[0]+n)
	}
	color := make([]int, 2*n)
	for v := n; v < 2*n; v++ {
		color[v] = 1
	}
	mate := MaxMatching(h, color)
	cover := KonigCover(h, color, mate)
	x := make([]int, n)
	for v := 0; v < n; v++ {
		c := 0
		if cover[v] {
			c++
		}
		if cover[v+n] {
			c++
		}
		x[v] = c
	}
	return x
}

package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// graphFromSeed deterministically builds a random graph from a seed.
func graphFromSeed(seed int64, n int, p float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Property: TwoColor succeeds exactly when OddCycle finds nothing, and a
// successful coloring is proper.
func TestQuickBipartiteConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 12, 0.2)
		color, ok := g.TwoColor()
		cyc := g.OddCycle()
		if ok != (cyc == nil) {
			return false
		}
		if ok {
			for _, e := range g.Edges() {
				if color[e[0]] == color[e[1]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every cover returned by MinVertexCover and GreedyVertexCover
// covers all edges, and the exact cover is never larger than the greedy.
func TestQuickCoversAlwaysCover(t *testing.T) {
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 11, 0.3)
		exact := MinVertexCover(g, VCOptions{})
		greedy := GreedyVertexCover(g)
		if !g.VerifyVertexCover(exact.Cover) || !g.VerifyVertexCover(greedy) {
			return false
		}
		return len(exact.Cover) <= len(greedy)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the LP relaxation value is a lower bound for the exact cover,
// and rounding all 1/2-entries up yields a feasible cover (NT rounding).
func TestQuickLPBoundAndRounding(t *testing.T) {
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 10, 0.35)
		x := LPRelaxVC(g)
		sum := 0
		rounded := make(map[int]bool)
		for v, xi := range x {
			sum += xi
			if xi >= 1 {
				rounded[v] = true
			}
		}
		if !g.VerifyVertexCover(rounded) {
			return false
		}
		exact := MinVertexCover(g, VCOptions{})
		// sum is doubled units: LP value = sum/2 <= |exact|.
		return sum <= 2*len(exact.Cover)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: in G □ K2, every vertex gains exactly one neighbor (its twin):
// deg_P(v) = deg_G(v) + 1, and |E(P)| = 2|E(G)| + |V(G)|.
func TestQuickCartesianK2Degrees(t *testing.T) {
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 9, 0.3)
		p := g.CartesianK2()
		if p.M() != 2*g.M()+g.N() {
			return false
		}
		for v := 0; v < g.N(); v++ {
			if p.Degree(v) != g.Degree(v)+1 || p.Degree(v+g.N()) != g.Degree(v)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: components partition the vertex set.
func TestQuickComponentsPartition(t *testing.T) {
	prop := func(seed int64) bool {
		g := graphFromSeed(seed, 14, 0.12)
		seen := make([]bool, g.N())
		total := 0
		for _, comp := range g.Components() {
			for _, v := range comp {
				if seen[v] {
					return false
				}
				seen[v] = true
				total++
			}
		}
		return total == g.N()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Package graph provides the undirected-graph machinery behind COMPACT's
// VH-labeling: bipartiteness testing and 2-coloring, connected components,
// the Cartesian product with K2 used by the odd-cycle-transversal reduction
// (Lemma 1 of the paper), maximum bipartite matching (Hopcroft–Karp), König
// vertex covers, Nemhauser–Trotter LP-based kernelization, and minimum
// vertex cover solvers (exact branch & bound and greedy/local-search).
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..N-1 with adjacency
// lists. Self-loops and parallel edges are rejected by AddEdge.
type Graph struct {
	adj  [][]int
	m    int
	seen map[[2]int]bool
}

// New creates an empty graph with n vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]int, n), seen: make(map[[2]int]bool)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Adj returns the adjacency list of v (not to be mutated).
func (g *Graph) Adj(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// HasEdge reports whether edge {u,v} is present.
func (g *Graph) HasEdge(u, v int) bool { return g.seen[edgeKey(u, v)] }

// AddEdge inserts the undirected edge {u,v}. Duplicate edges are ignored;
// self-loops and out-of-range endpoints are rejected with an error (a
// self-loop has no valid VH-labeling and indicates a caller bug).
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	}
	g.addEdge(u, v)
	return nil
}

// addEdge inserts an already-validated edge. Internal transforms (Clone,
// InducedSubgraph, CartesianK2, the matching double cover) derive their
// edges from a graph that passed AddEdge validation, so they skip it.
func (g *Graph) addEdge(u, v int) {
	k := edgeKey(u, v)
	if g.seen[k] {
		return
	}
	g.seen[k] = true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m++
}

// Edges returns all edges as (u,v) pairs with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u, ns := range g.adj {
		for _, v := range ns {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	for u, ns := range g.adj {
		for _, v := range ns {
			if u < v {
				c.addEdge(u, v)
			}
		}
	}
	return c
}

// InducedSubgraph returns the subgraph induced by keep (vertex set), along
// with the mapping from new vertex ids to original ids.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, []int) {
	idx := make(map[int]int, len(keep))
	orig := make([]int, len(keep))
	for i, v := range keep {
		idx[v] = i
		orig[i] = v
	}
	sub := New(len(keep))
	for i, v := range keep {
		for _, w := range g.adj[v] {
			if j, ok := idx[w]; ok && i < j {
				sub.addEdge(i, j)
			}
		}
	}
	return sub, orig
}

// RemoveVertices returns the subgraph induced by all vertices NOT in the
// given set, plus the new-to-original id mapping.
func (g *Graph) RemoveVertices(remove map[int]bool) (*Graph, []int) {
	var keep []int
	for v := 0; v < len(g.adj); v++ {
		if !remove[v] {
			keep = append(keep, v)
		}
	}
	return g.InducedSubgraph(keep)
}

// TwoColor attempts a proper 2-coloring by BFS. It returns the color slice
// (0/1 per vertex; isolated vertices get color 0) and true on success, or
// nil and false if the graph contains an odd cycle.
func (g *Graph) TwoColor() ([]int, bool) {
	color := make([]int, len(g.adj))
	for i := range color {
		color[i] = -1
	}
	queue := make([]int, 0, len(g.adj))
	for s := range g.adj {
		if color[s] >= 0 {
			continue
		}
		color[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if color[v] < 0 {
					color[v] = 1 - color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return nil, false
				}
			}
		}
	}
	return color, true
}

// IsBipartite reports whether g has no odd cycle.
func (g *Graph) IsBipartite() bool {
	_, ok := g.TwoColor()
	return ok
}

// Components returns the vertex sets of the connected components, each
// sorted, ordered by smallest contained vertex.
func (g *Graph) Components() [][]int {
	comp := make([]int, len(g.adj))
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for s := range g.adj {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		var cur []int
		stack := []int{s}
		comp[s] = id
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cur = append(cur, u)
			for _, v := range g.adj[u] {
				if comp[v] < 0 {
					comp[v] = id
					stack = append(stack, v)
				}
			}
		}
		sort.Ints(cur)
		comps = append(comps, cur)
	}
	return comps
}

// OddCycle returns some odd cycle as a vertex sequence (first == last not
// repeated), or nil if the graph is bipartite. Used by tests and the
// labeling heuristics.
func (g *Graph) OddCycle() []int {
	color := make([]int, len(g.adj))
	parent := make([]int, len(g.adj))
	for i := range color {
		color[i] = -1
		parent[i] = -1
	}
	for s := range g.adj {
		if color[s] >= 0 {
			continue
		}
		color[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.adj[u] {
				if color[v] < 0 {
					color[v] = 1 - color[u]
					parent[v] = u
					queue = append(queue, v)
					continue
				}
				if color[v] != color[u] {
					continue
				}
				// Odd cycle found: join u->root and v->root paths at LCA.
				pu := pathToRoot(parent, u)
				pv := pathToRoot(parent, v)
				iu, iv := len(pu)-1, len(pv)-1
				for iu > 0 && iv > 0 && pu[iu-1] == pv[iv-1] {
					iu--
					iv--
				}
				var cyc []int
				for i := 0; i <= iu; i++ {
					cyc = append(cyc, pu[i])
				}
				for i := iv; i >= 1; i-- {
					cyc = append(cyc, pv[i-1])
				}
				return cyc
			}
		}
	}
	return nil
}

func pathToRoot(parent []int, v int) []int {
	var p []int
	for v >= 0 {
		p = append(p, v)
		v = parent[v]
	}
	return p
}

// CartesianK2 returns the Cartesian product G □ K2: two copies of G (vertex
// v maps to v and v+N) with an edge between each vertex and its copy.
// This is the construction of Lemma 1 (OCT via vertex cover).
func (g *Graph) CartesianK2() *Graph {
	n := len(g.adj)
	p := New(2 * n)
	for u, ns := range g.adj {
		for _, v := range ns {
			if u < v {
				p.addEdge(u, v)
				p.addEdge(u+n, v+n)
			}
		}
	}
	for v := 0; v < n; v++ {
		p.addEdge(v, v+n)
	}
	return p
}

// VerifyVertexCover reports whether cover (as a set) covers every edge.
func (g *Graph) VerifyVertexCover(cover map[int]bool) bool {
	for u, ns := range g.adj {
		for _, v := range ns {
			if u < v && !cover[u] && !cover[v] {
				return false
			}
		}
	}
	return true
}

package graph

import (
	"context"
	"sort"
	"time"
)

// VCResult is the outcome of a vertex cover computation.
type VCResult struct {
	Cover   map[int]bool
	Optimal bool // true if proven minimum
}

// VCOptions tunes MinVertexCover.
type VCOptions struct {
	// TimeLimit bounds the branch & bound search; zero means no limit.
	TimeLimit time.Duration
	// DisableKernel turns off the Nemhauser–Trotter LP kernelization
	// (exposed for ablation benchmarks).
	DisableKernel bool
}

// MinVertexCover computes a minimum vertex cover of an arbitrary graph by
// Nemhauser–Trotter kernelization followed by branch & bound with degree
// reductions and a matching lower bound. If the time limit expires, the
// best cover found so far is returned with Optimal=false (it is always a
// valid cover).
func MinVertexCover(g *Graph, opts VCOptions) VCResult {
	return MinVertexCoverContext(context.Background(), g, opts)
}

// MinVertexCoverContext is MinVertexCover with cooperative cancellation:
// the effective deadline is the earlier of ctx's deadline and
// now+opts.TimeLimit, and a cancelled ctx stops the branch & bound at the
// next step check, returning the best (always valid) cover found so far
// with Optimal=false.
func MinVertexCoverContext(ctx context.Context, g *Graph, opts VCOptions) VCResult {
	if ctx == nil {
		ctx = context.Background()
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = time.Now().Add(opts.TimeLimit)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}

	cover := make(map[int]bool)
	work := g
	orig := identityMap(g.N())

	if !opts.DisableKernel {
		// NT kernelization: fix x=1 vertices into the cover, drop x=0.
		x := LPRelaxVC(g)
		var keep []int
		for v := 0; v < g.N(); v++ {
			switch x[v] {
			case 2:
				cover[v] = true
			case 1:
				keep = append(keep, v)
			}
		}
		work, orig = g.InducedSubgraph(keep)
	}

	sub, optimal := branchAndBoundVC(ctx, work, deadline)
	for v := range sub {
		cover[orig[v]] = true
	}
	if !g.VerifyVertexCover(cover) {
		// Defensive: should be unreachable; fall back to greedy.
		cover = GreedyVertexCover(g)
		optimal = false
	}
	return VCResult{Cover: cover, Optimal: optimal}
}

func identityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// vcState is a mutable view of the residual graph during branch & bound:
// alive vertices with dynamic degrees.
type vcState struct {
	g        *Graph
	alive    []bool
	deg      []int
	aliveCnt int
	edgeCnt  int
}

func newVCState(g *Graph) *vcState {
	s := &vcState{
		g:        g,
		alive:    make([]bool, g.N()),
		deg:      make([]int, g.N()),
		aliveCnt: g.N(),
		edgeCnt:  g.M(),
	}
	for v := range s.alive {
		s.alive[v] = true
		s.deg[v] = g.Degree(v)
	}
	return s
}

// remove deletes v from the residual graph, returning it for undo.
func (s *vcState) remove(v int) {
	s.alive[v] = false
	s.aliveCnt--
	for _, w := range s.g.Adj(v) {
		if s.alive[w] {
			s.deg[w]--
			s.edgeCnt--
		}
	}
}

func (s *vcState) restore(v int) {
	for _, w := range s.g.Adj(v) {
		if s.alive[w] {
			s.deg[w]++
			s.edgeCnt++
		}
	}
	s.alive[v] = true
	s.aliveCnt++
}

// lowerBound computes a greedy maximal-matching bound on the residual graph.
func (s *vcState) lowerBound() int {
	used := make([]bool, s.g.N())
	lb := 0
	for v := 0; v < s.g.N(); v++ {
		if !s.alive[v] || used[v] {
			continue
		}
		for _, w := range s.g.Adj(v) {
			if s.alive[w] && !used[w] && w != v {
				used[v] = true
				used[w] = true
				lb++
				break
			}
		}
	}
	return lb
}

// branchAndBoundVC returns a minimum vertex cover of g (as a set over g's
// vertex ids) and whether optimality was proven before the deadline or
// cancellation.
func branchAndBoundVC(ctx context.Context, g *Graph, deadline time.Time) (map[int]bool, bool) {
	if g.M() == 0 {
		return map[int]bool{}, true
	}
	s := newVCState(g)
	best := GreedyVertexCover(g)
	bestSize := len(best)
	timedOut := false
	var cur []int

	checkTime := func() bool {
		if timedOut {
			return true
		}
		if (!deadline.IsZero() && time.Now().After(deadline)) || ctx.Err() != nil {
			timedOut = true
		}
		return timedOut
	}

	if checkTime() {
		// Dead on arrival (pre-cancelled context or expired deadline):
		// return the greedy cover without opening the search.
		return best, false
	}

	steps := 0
	var rec func()
	rec = func() {
		steps++
		if steps%256 == 0 && checkTime() {
			return
		}
		if timedOut {
			return
		}
		// Reductions: collect degree-0 (drop) and degree-1 (take neighbor).
		var removed []int
		var taken []int
		undo := func() {
			for i := len(removed) - 1; i >= 0; i-- {
				s.restore(removed[i])
			}
			cur = cur[:len(cur)-len(taken)]
		}
		for {
			progress := false
			for v := 0; v < s.g.N(); v++ {
				if !s.alive[v] {
					continue
				}
				switch s.deg[v] {
				case 0:
					s.remove(v)
					removed = append(removed, v)
					progress = true
				case 1:
					// Take v's unique alive neighbor.
					for _, w := range s.g.Adj(v) {
						if s.alive[w] {
							cur = append(cur, w)
							taken = append(taken, w)
							s.remove(w)
							removed = append(removed, w)
							progress = true
							break
						}
					}
				}
			}
			if !progress {
				break
			}
		}
		if s.edgeCnt == 0 {
			if len(cur) < bestSize {
				bestSize = len(cur)
				best = make(map[int]bool, len(cur))
				for _, v := range cur {
					best[v] = true
				}
			}
			undo()
			return
		}
		if len(cur)+s.lowerBound() >= bestSize {
			undo()
			return
		}
		// Branch on a maximum-degree vertex.
		bv, bd := -1, -1
		for v := 0; v < s.g.N(); v++ {
			if s.alive[v] && s.deg[v] > bd {
				bv, bd = v, s.deg[v]
			}
		}
		// Branch 1: bv in cover.
		cur = append(cur, bv)
		s.remove(bv)
		rec()
		s.restore(bv)
		cur = cur[:len(cur)-1]
		// Branch 2: all neighbors of bv in cover.
		var nbrs []int
		for _, w := range s.g.Adj(bv) {
			if s.alive[w] {
				nbrs = append(nbrs, w)
			}
		}
		if len(cur)+len(nbrs) < bestSize {
			for _, w := range nbrs {
				cur = append(cur, w)
				s.remove(w)
			}
			s.remove(bv) // bv is now isolated
			rec()
			s.restore(bv)
			for i := len(nbrs) - 1; i >= 0; i-- {
				s.restore(nbrs[i])
			}
			cur = cur[:len(cur)-len(nbrs)]
		}
		undo()
	}
	rec()
	return best, !timedOut
}

// GreedyVertexCover computes a (not necessarily minimum) vertex cover by
// repeatedly taking a maximum-degree vertex, then pruning redundant picks.
func GreedyVertexCover(g *Graph) map[int]bool {
	deg := make([]int, g.N())
	alive := make([]bool, g.N())
	edges := g.M()
	for v := 0; v < g.N(); v++ {
		deg[v] = g.Degree(v)
		alive[v] = true
	}
	cover := make(map[int]bool)
	for edges > 0 {
		bv, bd := -1, 0
		for v := 0; v < g.N(); v++ {
			if alive[v] && deg[v] > bd {
				bv, bd = v, deg[v]
			}
		}
		cover[bv] = true
		alive[bv] = false
		for _, w := range g.Adj(bv) {
			if alive[w] {
				deg[w]--
				edges--
			}
		}
	}
	pruneRedundant(g, cover)
	return cover
}

// pruneRedundant removes cover vertices all of whose neighbors are also in
// the cover (iterating to a fixed point in a deterministic order).
func pruneRedundant(g *Graph, cover map[int]bool) {
	vs := make([]int, 0, len(cover))
	for v := range cover {
		vs = append(vs, v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vs)))
	for {
		changed := false
		for _, v := range vs {
			if !cover[v] {
				continue
			}
			redundant := true
			for _, w := range g.Adj(v) {
				if !cover[w] {
					redundant = false
					break
				}
			}
			if redundant {
				delete(cover, v)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

package graph

import (
	"math/rand"
	"testing"
	"time"
)

func cycle(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate ignored
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Errorf("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees wrong")
	}
	edges := g.Edges()
	if len(edges) != 2 || edges[0] != [2]int{0, 1} || edges[1] != [2]int{1, 2} {
		t.Errorf("Edges = %v", edges)
	}
	if err := g.AddEdge(2, 2); err == nil {
		t.Errorf("self-loop edge did not error")
	}
	if err := g.AddEdge(1, 9); err == nil {
		t.Errorf("out-of-range edge did not error")
	}
	if g.M() != 2 {
		t.Errorf("rejected edges mutated the graph: M = %d, want 2", g.M())
	}
}

func TestTwoColor(t *testing.T) {
	if _, ok := cycle(6).TwoColor(); !ok {
		t.Errorf("even cycle should be bipartite")
	}
	if _, ok := cycle(5).TwoColor(); ok {
		t.Errorf("odd cycle should not be bipartite")
	}
	color, ok := cycle(8).TwoColor()
	if !ok {
		t.Fatal("C8 not bipartite?")
	}
	for i := 0; i < 8; i++ {
		if color[i] == color[(i+1)%8] {
			t.Errorf("adjacent same color at %d", i)
		}
	}
	// Disconnected graph with one odd component.
	g := New(8)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 2)
	if g.IsBipartite() {
		t.Errorf("triangle component not detected")
	}
}

func TestComponents(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comps := g.Components()
	if len(comps) != 4 { // {0,1,2}, {3}, {4,5}, {6}
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 3 || len(comps[2]) != 2 {
		t.Errorf("components = %v", comps)
	}
}

func TestOddCycle(t *testing.T) {
	if c := cycle(6).OddCycle(); c != nil {
		t.Errorf("even cycle returned odd cycle %v", c)
	}
	for _, n := range []int{3, 5, 7, 9} {
		c := cycle(n).OddCycle()
		if c == nil {
			t.Fatalf("C%d: no odd cycle found", n)
		}
		if len(c)%2 == 0 {
			t.Errorf("C%d: returned cycle of even length %d: %v", n, len(c), c)
		}
		g := cycle(n)
		for i := range c {
			if !g.HasEdge(c[i], c[(i+1)%len(c)]) {
				t.Errorf("C%d: %v not a cycle (missing edge %d-%d)", n, c, c[i], c[(i+1)%len(c)])
			}
		}
	}
	// Random non-bipartite graphs: returned cycle must be a genuine odd cycle.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(rng, 12, 0.25)
		c := g.OddCycle()
		if c == nil {
			if !g.IsBipartite() {
				t.Fatalf("trial %d: bipartite disagreement", trial)
			}
			continue
		}
		if len(c)%2 == 0 {
			t.Fatalf("trial %d: even cycle %v", trial, c)
		}
		for i := range c {
			if !g.HasEdge(c[i], c[(i+1)%len(c)]) {
				t.Fatalf("trial %d: not a cycle: %v", trial, c)
			}
		}
	}
}

func TestCartesianK2(t *testing.T) {
	g := cycle(3)
	p := g.CartesianK2()
	if p.N() != 6 {
		t.Fatalf("N = %d", p.N())
	}
	// Edges: 3 in each copy + 3 rungs = 9.
	if p.M() != 9 {
		t.Errorf("M = %d, want 9", p.M())
	}
	for v := 0; v < 3; v++ {
		if !p.HasEdge(v, v+3) {
			t.Errorf("missing rung %d-%d", v, v+3)
		}
	}
	// G □ K2 of any graph is... C3 □ K2 is the 3-prism, not bipartite.
	if p.IsBipartite() {
		t.Errorf("3-prism should not be bipartite")
	}
	// Product of bipartite graph stays bipartite.
	if !cycle(4).CartesianK2().IsBipartite() {
		t.Errorf("C4 □ K2 should be bipartite")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := complete(5)
	sub, orig := g.InducedSubgraph([]int{1, 3, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3: N=%d M=%d", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[2] != 4 {
		t.Errorf("orig = %v", orig)
	}
	sub2, _ := g.RemoveVertices(map[int]bool{0: true, 2: true})
	if sub2.N() != 3 || sub2.M() != 3 {
		t.Errorf("RemoveVertices: N=%d M=%d", sub2.N(), sub2.M())
	}
}

// bruteMinVC computes the true minimum vertex cover size by enumeration.
func bruteMinVC(g *Graph) int {
	n := g.N()
	edges := g.Edges()
	best := n
	for mask := 0; mask < 1<<n; mask++ {
		size := 0
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				size++
			}
		}
		if size >= best {
			continue
		}
		ok := true
		for _, e := range edges {
			if mask&(1<<e[0]) == 0 && mask&(1<<e[1]) == 0 {
				ok = false
				break
			}
		}
		if ok {
			best = size
		}
	}
	return best
}

func TestMaxMatchingKonig(t *testing.T) {
	// Bipartite random graphs: |max matching| == |min VC| (König).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		nl, nr := 2+rng.Intn(5), 2+rng.Intn(5)
		g := New(nl + nr)
		for u := 0; u < nl; u++ {
			for v := 0; v < nr; v++ {
				if rng.Float64() < 0.4 {
					g.AddEdge(u, nl+v)
				}
			}
		}
		color, ok := g.TwoColor()
		if !ok {
			t.Fatal("bipartite construction not bipartite")
		}
		mate := MaxMatching(g, color)
		ms := MatchingSize(mate)
		cover := KonigCover(g, color, mate)
		if !g.VerifyVertexCover(cover) {
			t.Fatalf("trial %d: König cover invalid", trial)
		}
		if len(cover) != ms {
			t.Fatalf("trial %d: |cover|=%d != |matching|=%d", trial, len(cover), ms)
		}
		if want := bruteMinVC(g); len(cover) != want {
			t.Fatalf("trial %d: cover %d, brute %d", trial, len(cover), want)
		}
		// Matching must be consistent.
		for v, m := range mate {
			if m >= 0 && mate[m] != v {
				t.Fatalf("trial %d: inconsistent mate array", trial)
			}
		}
	}
}

func TestMinVertexCoverBipartiteHelper(t *testing.T) {
	g := cycle(8)
	cover := MinVertexCoverBipartite(g)
	if len(cover) != 4 || !g.VerifyVertexCover(cover) {
		t.Errorf("C8 cover = %v", cover)
	}
}

func TestLPRelaxVC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 10, 0.3)
		x := LPRelaxVC(g)
		// Feasibility: every edge has x_u + x_v >= 2 (doubled units).
		for _, e := range g.Edges() {
			if x[e[0]]+x[e[1]] < 2 {
				t.Fatalf("trial %d: LP infeasible on edge %v: %d+%d", trial, e, x[e[0]], x[e[1]])
			}
		}
		// LP bound: sum(x)/2 <= min VC.
		sum := 0
		for _, v := range x {
			sum += v
		}
		if opt := bruteMinVC(g); sum > 2*opt {
			t.Fatalf("trial %d: LP value %v exceeds 2*opt %d", trial, sum, 2*opt)
		}
	}
	// On an odd cycle the LP is all-halves.
	x := LPRelaxVC(cycle(5))
	for v, xi := range x {
		if xi != 1 {
			t.Errorf("C5 LP x[%d] = %d/2, want 1/2", v, xi)
		}
	}
	// On a star the center is 1, leaves 0.
	star := New(5)
	for i := 1; i < 5; i++ {
		star.AddEdge(0, i)
	}
	xs := LPRelaxVC(star)
	if xs[0] != 2 {
		t.Errorf("star center x = %d/2, want 1", xs[0])
	}
	for i := 1; i < 5; i++ {
		if xs[i] != 0 {
			t.Errorf("star leaf %d x = %d/2, want 0", i, xs[i])
		}
	}
}

func TestMinVertexCoverExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(10)
		g := randomGraph(rng, n, 0.25+0.3*rng.Float64())
		res := MinVertexCover(g, VCOptions{})
		if !res.Optimal {
			t.Fatalf("trial %d: not optimal without time limit", trial)
		}
		if !g.VerifyVertexCover(res.Cover) {
			t.Fatalf("trial %d: invalid cover", trial)
		}
		if want := bruteMinVC(g); len(res.Cover) != want {
			t.Fatalf("trial %d: got %d, want %d", trial, len(res.Cover), want)
		}
		// Kernel-disabled variant must agree.
		res2 := MinVertexCover(g, VCOptions{DisableKernel: true})
		if len(res2.Cover) != len(res.Cover) {
			t.Fatalf("trial %d: kernel on/off disagree: %d vs %d", trial, len(res.Cover), len(res2.Cover))
		}
	}
}

func TestMinVertexCoverKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K5", complete(5), 4},
		{"C5", cycle(5), 3},
		{"C6", cycle(6), 3},
		{"empty", New(6), 0},
		{"K1", New(1), 0},
	}
	for _, c := range cases {
		res := MinVertexCover(c.g, VCOptions{})
		if len(res.Cover) != c.want || !res.Optimal {
			t.Errorf("%s: got %d (optimal=%v), want %d", c.name, len(res.Cover), res.Optimal, c.want)
		}
	}
}

func TestMinVertexCoverTimeLimit(t *testing.T) {
	// A big random graph with a 1ns budget must still return a valid cover.
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 120, 0.2)
	res := MinVertexCover(g, VCOptions{TimeLimit: time.Nanosecond})
	if !g.VerifyVertexCover(res.Cover) {
		t.Fatal("timeout cover invalid")
	}
}

func TestGreedyVertexCover(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 14, 0.3)
		cover := GreedyVertexCover(g)
		if !g.VerifyVertexCover(cover) {
			t.Fatalf("trial %d: greedy cover invalid", trial)
		}
		// No redundant vertices after pruning.
		for v := range cover {
			allCovered := true
			for _, w := range g.Adj(v) {
				if !cover[w] {
					allCovered = false
					break
				}
			}
			if allCovered && g.Degree(v) > 0 {
				t.Errorf("trial %d: redundant cover vertex %d", trial, v)
			}
		}
	}
}

func TestClone(t *testing.T) {
	g := cycle(5)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.M() != 5 || c.M() != 6 {
		t.Errorf("clone not independent: %d %d", g.M(), c.M())
	}
}

package core

import (
	"fmt"

	"compact/internal/oct"
	"compact/internal/xbar"
)

// InfeasibleError is the typed form of a dimension-cap infeasibility: the
// synthesized BDD graph cannot be VH-labeled within Options.MaxRows x
// MaxCols. It carries the quantities that explain the refusal — the graph
// node count n (every valid labeling has semiperimeter S = n + #VH >= n)
// and a lower bound on the odd-cycle-transversal size (#VH >= OCTLowerBound,
// so S >= n + OCTLowerBound) — alongside the violated caps, so callers
// (compactd's 422 body, the partition fallback) can report or reason
// about how far from feasible the request was.
//
// It wraps labeling.ErrInfeasible: errors.Is(err, labeling.ErrInfeasible)
// keeps working everywhere a bare infeasibility used to surface.
type InfeasibleError struct {
	// Nodes is the BDD-graph node count — the unconditional lower bound
	// on the crossbar semiperimeter.
	Nodes int
	// OCTLowerBound is a cheap proven lower bound on the number of VH
	// nodes (vertex-disjoint odd cycle packing); S >= Nodes + OCTLowerBound.
	OCTLowerBound int
	// MaxRows / MaxCols are the caps the request could not meet (0 =
	// unconstrained on that axis).
	MaxRows, MaxCols int
	// Err is the underlying labeling failure (wraps labeling.ErrInfeasible).
	Err error
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("core: labeling: graph of %d nodes (semiperimeter >= %d) cannot fit %dx%d: %v",
		e.Nodes, e.Nodes+e.OCTLowerBound, e.MaxRows, e.MaxCols, e.Err)
}

// Unwrap exposes the underlying labeling error, preserving
// errors.Is(err, labeling.ErrInfeasible) compatibility.
func (e *InfeasibleError) Unwrap() error { return e.Err }

// infeasibleError builds the typed error for a cap violation on bg. The
// odd-cycle packing is only computed here — on the failure path — so the
// success path pays nothing.
func infeasibleError(bg *xbar.BDDGraph, opts Options, err error) *InfeasibleError {
	return &InfeasibleError{
		Nodes:         bg.NumNodes(),
		OCTLowerBound: len(oct.DisjointOddCycles(bg.G)),
		MaxRows:       opts.MaxRows,
		MaxCols:       opts.MaxCols,
		Err:           err,
	}
}

package core

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"compact/internal/bdd"
	"compact/internal/bench"
	"compact/internal/defect"
	"compact/internal/labeling"
	"compact/internal/xbar"
	"compact/internal/xbar3d"
)

// epflTrio is the K-equivalence regression set: the three EPFL control
// benchmarks the paper's Table I reports and flow3dbench sweeps.
var epflTrio = []string{"ctrl", "cavlc", "int2float"}

// TestLayeredK2Equivalence pins the K <= 2 reduction on the EPFL trio:
// SolveK at K=2 must be semiperimeter-identical to the 2D solver, and
// Map3D of its solution must equal the lifted 2D design cell for cell
// under the V/H <-> layer mapping. MethodHeuristic keeps both pipelines
// deterministic.
func TestLayeredK2Equivalence(t *testing.T) {
	for _, name := range epflTrio {
		nw := bench.MustBuild(name)
		m, roots, err := bdd.BuildNetwork(nw, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := xbar.FromBDD(m, roots, nw.OutputNames)
		if err != nil {
			t.Fatal(err)
		}
		lopts := labeling.Options{Method: labeling.MethodHeuristic, Gamma: 0.5}
		sol2, err := labeling.Solve(bg.Problem(true), lopts)
		if err != nil {
			t.Fatalf("%s: 2D solve: %v", name, err)
		}
		solK, err := labeling.SolveK(context.Background(), bg.Problem(true), 2, lopts)
		if err != nil {
			t.Fatalf("%s: SolveK(2): %v", name, err)
		}
		if solK.Stats.S != sol2.Stats.S {
			t.Errorf("%s: K=2 semiperimeter %d differs from 2D %d", name, solK.Stats.S, sol2.Stats.S)
		}
		// K=1 clamps to 2 and must land on the same solution.
		sol1, err := labeling.SolveK(context.Background(), bg.Problem(true), 1, lopts)
		if err != nil {
			t.Fatalf("%s: SolveK(1): %v", name, err)
		}
		if sol1.Stats.S != sol2.Stats.S {
			t.Errorf("%s: K=1 semiperimeter %d differs from 2D %d", name, sol1.Stats.S, sol2.Stats.S)
		}

		d2, err := xbar.Map(bg, sol2.Labels)
		if err != nil {
			t.Fatalf("%s: 2D map: %v", name, err)
		}
		d3, err := xbar3d.Map3D(bg, solK)
		if err != nil {
			t.Fatalf("%s: Map3D: %v", name, err)
		}
		lifted, err := xbar3d.Lift3D(d2)
		if err != nil {
			t.Fatalf("%s: Lift3D: %v", name, err)
		}
		if !reflect.DeepEqual(d3.Widths, lifted.Widths) {
			t.Fatalf("%s: K=2 widths %v differ from lifted 2D %v", name, d3.Widths, lifted.Widths)
		}
		if !reflect.DeepEqual(d3.Cells, lifted.Cells) {
			t.Errorf("%s: K=2 cells differ from the lifted 2D design", name)
		}
		if d3.Input != lifted.Input || !reflect.DeepEqual(d3.Outputs, lifted.Outputs) {
			t.Errorf("%s: K=2 ports differ: input %v vs %v, outputs %v vs %v",
				name, d3.Input, lifted.Input, d3.Outputs, lifted.Outputs)
		}
		if !reflect.DeepEqual(d3.OutputNames, lifted.OutputNames) {
			t.Errorf("%s: K=2 output names differ", name)
		}
	}
}

// TestSynthesizeLayered runs the full Layers>=3 pipeline on the EPFL trio
// and composes both verification tiers over every result.
func TestSynthesizeLayered(t *testing.T) {
	for _, name := range epflTrio {
		nw := bench.MustBuild(name)
		res, err := Synthesize(nw, Options{Layers: 3, Method: labeling.MethodHeuristic})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Design != nil || res.Labeling != nil {
			t.Errorf("%s: layered result carries 2D design/labeling", name)
		}
		if res.Design3D == nil || res.KLabeling == nil {
			t.Fatalf("%s: layered result missing Design3D/KLabeling", name)
		}
		if got := res.Design3D.K(); got != 3 {
			t.Errorf("%s: design has %d wire layers, want 3", name, got)
		}
		if res.KLabeling.Stats.S != res.Design3D.Stats().S {
			t.Errorf("%s: labeling S %d differs from design S %d",
				name, res.KLabeling.Stats.S, res.Design3D.Stats().S)
		}
		if err := res.Verify(14, 512, 1); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := res.FormalVerify(0); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestLayeredSMonotone asserts the FLOW-3D payoff the bench axis reports:
// on the trio, the heuristic's semiperimeter never grows with K and
// strictly shrinks by K=3 on circuits with enough wordlines to fold.
func TestLayeredSMonotone(t *testing.T) {
	improved := 0
	for _, name := range epflTrio {
		nw := bench.MustBuild(name)
		prev := -1
		s2 := 0
		for _, k := range []int{2, 3, 4} {
			res, err := Synthesize(nw, Options{Layers: k, Method: labeling.MethodHeuristic})
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			s := 0
			if k <= 2 {
				s = res.Design.Stats().S
				s2 = s
			} else {
				s = res.Design3D.Stats().S
			}
			if prev >= 0 && s > prev {
				t.Errorf("%s: S grew from %d to %d at K=%d", name, prev, s, k)
			}
			if k == 3 && s < s2 {
				improved++
			}
			prev = s
		}
	}
	if improved < 2 {
		t.Errorf("S strictly improved at K=3 on %d of %d circuits, want >= 2", improved, len(epflTrio))
	}
}

// TestSynthesizeLayeredWithDefects runs the layered verified-repair loop on
// a deterministically placeable configuration. The rate is modest on
// purpose: generated maps cover the stack exactly (no spare wires), so
// dense fault sets are often genuinely unplaceable — the same regime as
// the 2D pipeline on arrays this size, and a typed failure there, not a
// test subject.
func TestSynthesizeLayeredWithDefects(t *testing.T) {
	nw := bench.MustBuild("ctrl")
	res, err := Synthesize(nw, Options{
		Layers: 3, Method: labeling.MethodHeuristic,
		DefectRate: 0.005, DefectSeed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement3D == nil || res.Effective3D == nil {
		t.Fatal("defect-aware layered synthesis missing Placement3D/Effective3D")
	}
	if len(res.DefectMaps3D) != res.Design3D.K()-1 {
		t.Fatalf("%d defect maps for %d device planes", len(res.DefectMaps3D), res.Design3D.K()-1)
	}
	if res.RepairAttempts < 1 {
		t.Errorf("RepairAttempts %d < 1", res.RepairAttempts)
	}
	// The effective design is what the faulty array computes; it must agree
	// with the network (the repair loop already verified it — re-check from
	// the outside).
	bad := res.Effective3D.VerifyAgainst64(nw.Eval64, nw.NumInputs(), 14, 512, 1)
	if bad != nil {
		t.Errorf("effective layered design disagrees with the network on %v", bad)
	}
}

func TestLayeredOptionsValidation(t *testing.T) {
	dm, err := defect.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"default", Options{}, true},
		{"two", Options{Layers: 2}, true},
		{"max", Options{Layers: labeling.MaxLayers}, true},
		{"negative", Options{Layers: -1}, false},
		{"over-cap", Options{Layers: labeling.MaxLayers + 1}, false},
		{"partition", Options{Layers: 3, Partition: true, MaxRows: 8, MaxCols: 8}, false},
		{"margin-aware", Options{Layers: 3, MarginAware: true}, false},
		{"explicit-defects", Options{Layers: 3, Defects: dm}, false},
		{"defect-rate", Options{Layers: 3, DefectRate: 0.05}, true},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid options accepted", tc.name)
		}
	}
}

func TestLayeredOptionsKey(t *testing.T) {
	// Layers 0, 1 and 2 canonicalize identically; 3 must change the key.
	k0 := Options{}.Key()
	if (Options{Layers: 1}).Key() != k0 || (Options{Layers: 2}).Key() != k0 {
		t.Error("Layers 0/1/2 do not share a cache key")
	}
	if (Options{Layers: 3}).Key() == k0 {
		t.Error("Layers 3 shares the 2D cache key")
	}
}

func TestLayeredView(t *testing.T) {
	nw := bench.MustBuild("ctrl")
	res, err := Synthesize(nw, Options{
		Layers: 3, Method: labeling.MethodHeuristic,
		DefectRate: 0.005, DefectSeed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	v := res.View()
	if v.Design != nil || v.Design3D == nil {
		t.Fatal("layered view must carry design3d, not design")
	}
	st := res.Design3D.Stats()
	if v.Crossbar.Layers != 3 || !reflect.DeepEqual(v.Crossbar.LayerWidths, st.Widths) {
		t.Errorf("crossbar view %+v does not reflect the stack %v", v.Crossbar, st.Widths)
	}
	if v.Crossbar.S != st.S || v.Crossbar.Rows != st.R || v.Crossbar.Cols != st.C {
		t.Errorf("crossbar view footprint %+v differs from stats %+v", v.Crossbar, st)
	}
	if v.Labeling.S != res.KLabeling.Stats.S || v.Labeling.Method == "" {
		t.Errorf("labeling view %+v does not reflect the K-solution", v.Labeling)
	}
	if v.Placement == nil || len(v.Placement.LayerPerms) != 3 {
		t.Fatalf("placement view %+v missing layer perms", v.Placement)
	}
	if len(v.Placement.RowPerm) != 0 || len(v.Placement.ColPerm) != 0 {
		t.Errorf("layered placement view carries 2D perms: %+v", v.Placement)
	}
	if !strings.Contains(v.Placement.DefectsDigest, ",") {
		t.Errorf("layered defects digest %q is not per-plane", v.Placement.DefectsDigest)
	}

	// The view is the compactd wire body: it must serialize, and the
	// embedded design must round-trip into an equivalent evaluator.
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Design3D *xbar3d.Design3D `json:"design3d"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Design3D == nil {
		t.Fatal("round-tripped view lost design3d")
	}
	if bad := back.Design3D.VerifyAgainst64(nw.Eval64, nw.NumInputs(), 14, 256, 1); bad != nil {
		t.Errorf("round-tripped design3d disagrees with the network on %v", bad)
	}
}

package core

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"compact/internal/defect"
	"compact/internal/labeling"
)

// DefaultNodeLimit is the BDD construction bound applied when
// Options.NodeLimit is zero.
const DefaultNodeLimit = 4_000_000

// DefaultGamma is the paper's objective weight, used when Gamma is unset.
const DefaultGamma = 0.5

// DefaultRepairAttempts bounds the defect-aware place-verify-retry loop
// when Options.MaxRepairAttempts is zero.
const DefaultRepairAttempts = 3

// DefaultDefectOnFraction is the stuck-ON share of generated defect maps
// when Options.DefectOnFraction is zero.
const DefaultDefectOnFraction = 0.5

// The Gamma zero-value rule
//
// Options is designed so its zero value is the paper's default setup, but
// float64's zero value collides with the legitimate weight γ = 0. The one
// rule, applied everywhere (Canonical, Validate, the synthesis pipeline and
// the compactd wire format):
//
//	Gamma == 0 with GammaSet == false means "defaulted" and resolves to
//	DefaultGamma (0.5). Any other combination — including an explicit
//	Gamma = 0 with GammaSet = true — is taken literally.
//
// Canonical applies the rule and returns options with GammaSet always true,
// so canonicalized options never depend on it again.

// Validate checks that the options are semantically well-formed: Gamma
// must lie in [0,1] (after the zero-value rule above), enum fields must
// hold known values, numeric budgets must be non-negative, and VarOrder —
// when present — must be a permutation of 0..len-1. Synthesize rejects
// invalid options with a descriptive error before doing any work.
func (o Options) Validate() error {
	g := o.Canonical().Gamma
	if g < 0 || g > 1 {
		return fmt.Errorf("core: Gamma %v outside [0,1]", o.Gamma)
	}
	switch o.BDDKind {
	case SBDD, SeparateROBDDs:
	default:
		return fmt.Errorf("core: unknown BDDKind %d", o.BDDKind)
	}
	switch o.Method {
	case labeling.MethodAuto, labeling.MethodOCT, labeling.MethodMIP,
		labeling.MethodHeuristic, labeling.MethodPortfolio:
	default:
		return fmt.Errorf("core: unknown labeling method %d", o.Method)
	}
	if o.TimeLimit < 0 {
		return fmt.Errorf("core: negative TimeLimit %v", o.TimeLimit)
	}
	if o.NodeLimit < 0 {
		return fmt.Errorf("core: negative NodeLimit %d", o.NodeLimit)
	}
	if o.AutoExactLimit < 0 {
		return fmt.Errorf("core: negative AutoExactLimit %d", o.AutoExactLimit)
	}
	if o.MaxRows < 0 || o.MaxCols < 0 {
		return fmt.Errorf("core: negative MaxRows/MaxCols %d/%d", o.MaxRows, o.MaxCols)
	}
	if o.Partition {
		if o.MaxRows < 2 || o.MaxCols < 1 {
			return fmt.Errorf("core: Partition needs per-tile caps (MaxRows >= 2 and MaxCols >= 1, got %d/%d)", o.MaxRows, o.MaxCols)
		}
		if o.Defects != nil && (o.Defects.Rows() < o.MaxRows || o.Defects.Cols() < o.MaxCols) {
			// Every tile is placed onto the same physical array, and tiles
			// may use up to the full per-tile caps — an array smaller than
			// the caps would make placement failures depend on which cuts
			// the splitter happened to choose.
			return fmt.Errorf("core: Partition defect map %dx%d smaller than the per-tile caps %dx%d",
				o.Defects.Rows(), o.Defects.Cols(), o.MaxRows, o.MaxCols)
		}
	}
	// defect.New enforces the same cap on every construction path; this
	// re-check is the options-layer backstop for untrusted request input,
	// so the placement machinery can trust validated options to never name
	// an array whose per-line state would exhaust memory.
	if r, c := o.Defects.Rows(), o.Defects.Cols(); r > defect.MaxDim || c > defect.MaxDim {
		return fmt.Errorf("core: defect map dimensions %dx%d exceed the %d-line cap", r, c, defect.MaxDim)
	}
	if o.VarOrder != nil {
		seen := make([]bool, len(o.VarOrder))
		for _, v := range o.VarOrder {
			if v < 0 || v >= len(o.VarOrder) || seen[v] {
				return fmt.Errorf("core: VarOrder %v is not a permutation of 0..%d", o.VarOrder, len(o.VarOrder)-1)
			}
			seen[v] = true
		}
	}
	if o.DefectRate < 0 || o.DefectRate >= 1 {
		return fmt.Errorf("core: DefectRate %v outside [0,1)", o.DefectRate)
	}
	f := o.Canonical().DefectOnFraction
	if f < 0 || f > 1 {
		return fmt.Errorf("core: DefectOnFraction %v outside [0,1]", o.DefectOnFraction)
	}
	if o.MaxRepairAttempts < 0 {
		return fmt.Errorf("core: negative MaxRepairAttempts %d", o.MaxRepairAttempts)
	}
	if o.Layers < 0 || o.Layers > labeling.MaxLayers {
		return fmt.Errorf("core: Layers %d outside 0..%d", o.Layers, labeling.MaxLayers)
	}
	if o.Layers > 2 {
		// The layered pipeline composes with generated per-plane defect maps
		// only; reject the combinations that would silently fall back to 2D
		// machinery (DESIGN §15).
		if o.Partition {
			return fmt.Errorf("core: Partition is not supported with Layers %d (layered tiling is not implemented)", o.Layers)
		}
		if o.MarginAware {
			return fmt.Errorf("core: MarginAware is not supported with Layers %d (layered placement has no electrical model)", o.Layers)
		}
		if o.Defects != nil {
			return fmt.Errorf("core: explicit Defects maps are 2D; use DefectRate to generate per-plane maps with Layers %d", o.Layers)
		}
	}
	return nil
}

// Canonical returns the options in canonical form: the Gamma zero-value
// rule is applied (GammaSet is always true afterwards), a zero NodeLimit
// is resolved to DefaultNodeLimit, and VarOrder is copied so the canonical
// value shares no mutable state with the receiver. Two Options values that
// configure the same synthesis canonicalize equal (up to VarOrder slice
// identity), which is what Key hashes for the content-addressed result
// cache.
func (o Options) Canonical() Options {
	c := o
	//lint:ignore floatcmp zero-value sentinel: Gamma==0 with GammaSet unset means "defaulted"
	if c.Gamma == 0 && !c.GammaSet {
		c.Gamma = DefaultGamma
	}
	c.GammaSet = true
	if c.NodeLimit <= 0 {
		c.NodeLimit = DefaultNodeLimit
	}
	if c.VarOrder != nil {
		c.VarOrder = append([]int(nil), c.VarOrder...)
	}
	//lint:ignore floatcmp zero-value sentinel: DefectOnFraction==0 means "defaulted" (generate Defects explicitly for all-stuck-OFF maps)
	if c.DefectOnFraction == 0 {
		c.DefectOnFraction = DefaultDefectOnFraction
	}
	if c.MaxRepairAttempts <= 0 {
		c.MaxRepairAttempts = DefaultRepairAttempts
	}
	if c.Defects != nil {
		c.Defects = c.Defects.Clone()
	}
	if c.Layers < 2 {
		// 0 and 1 both mean the classic two-layer crossbar: a crossbar needs
		// two wire layers, and SolveK applies the same clamp.
		c.Layers = 2
	}
	return c
}

// Key returns a stable content hash of the canonicalized options, in the
// same "sha256:<hex>" form as logic.Network.Fingerprint. Together the two
// strings form the compactd synthesis cache key: identical (network,
// options) pairs — regardless of gate numbering or of how the caller
// spelled the defaults — map to identical keys.
func (o Options) Key() string {
	c := o.Canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "compact-options-v5|gamma=%g|method=%s|bdd=%s|align=%t|timelimit=%d|order=%v|sift=%t|nodelimit=%d|octbackend=%d|autoexact=%d|maxrows=%d|maxcols=%d|partition=%t|layers=%d",
		c.Gamma, c.Method, c.BDDKind, !c.NoAlign, int64(c.TimeLimit), c.VarOrder, c.Sift, c.NodeLimit, c.OCTBackend, c.AutoExactLimit, c.MaxRows, c.MaxCols, c.Partition, c.Layers)
	// Defect configuration is part of the synthesis identity: the same
	// network on differently defective arrays yields different placements
	// (and possibly Unplaceable), so cached results must not alias. Map
	// identity enters via its content digest (defect.Map.Digest is nil-safe).
	fmt.Fprintf(&b, "|defects=%s|drate=%g|don=%g|dseed=%d|repair=%d|marginaware=%t",
		c.Defects.Digest(), c.DefectRate, c.DefectOnFraction, c.DefectSeed, c.MaxRepairAttempts, c.MarginAware)
	sum := sha256.Sum256([]byte(b.String()))
	return fmt.Sprintf("sha256:%x", sum)
}

// MethodFromString parses a labeling method name as used by the CLI and
// the compactd wire format: auto, oct, mip, heuristic, portfolio. The
// empty string means MethodAuto.
func MethodFromString(s string) (labeling.Method, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return labeling.MethodAuto, nil
	case "oct":
		return labeling.MethodOCT, nil
	case "mip":
		return labeling.MethodMIP, nil
	case "heuristic":
		return labeling.MethodHeuristic, nil
	case "portfolio":
		return labeling.MethodPortfolio, nil
	}
	return 0, fmt.Errorf("core: unknown labeling method %q (want auto, oct, mip, heuristic or portfolio)", s)
}

// BDDKindFromString parses a BDD representation name: sbdd or robdds. The
// empty string means SBDD.
func BDDKindFromString(s string) (BDDKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "sbdd":
		return SBDD, nil
	case "robdds":
		return SeparateROBDDs, nil
	}
	return 0, fmt.Errorf("core: unknown BDD kind %q (want sbdd or robdds)", s)
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"compact/internal/bdd"
	"compact/internal/defect"
	"compact/internal/logic"
	"compact/internal/partition"
)

// Partitioned synthesis
//
// When Options.Partition is set and the single-crossbar pipeline refuses
// with an infeasibility under MaxRows/MaxCols, SynthesizeContext falls
// back to partition.Build with the pipeline itself as the tile
// synthesizer. The correctness contract is layered:
//
//  1. every tile is synthesized by the ordinary verified pipeline
//     (including defect-aware placement with verified repair, when the
//     options ask for it) and then formally verified against its
//     sub-network — symbolic sneak-path proof when the shared BDD is
//     available, exhaustive-or-sampled simulation as the fallback;
//  2. partition.Build checks the assembled plan for end-to-end Eval
//     parity against the source network before returning it;
//  3. the plan-level symbolic cascade proof (Plan.FormalVerify) is run
//     on top, degrading to the already-passed sampled parity only when
//     the composed BDD blows past the node limit.
//
// A wrong plan is never returned.

// synthesizePartitioned cuts nw into a verified tile cascade. opts must
// be canonical; the shared deadline rides on ctx (tile synthesis runs
// with TimeLimit = 0 so the clock is never restarted per tile).
func synthesizePartitioned(ctx context.Context, nw *logic.Network, opts Options) (*partition.Plan, error) {
	topts := opts
	topts.Partition = false // tiles are single crossbars by definition
	topts.TimeLimit = 0     // the outer ctx already carries the deadline
	topts.VarOrder = nil    // a whole-network order is meaningless per piece
	var tilesDone atomic.Int64
	synth := func(ctx context.Context, sub *logic.Network, salt uint64) (*partition.TileResult, error) {
		o := topts
		// Decorrelate per-tile defect generation and placement seeds
		// deterministically (splitmix64-style odd-constant stride), so the
		// whole plan stays a pure function of (network, options).
		o.DefectSeed = topts.DefectSeed + salt*0x9e3779b97f4a7c15
		if o.DefectRate > 0 && o.Defects == nil {
			// Each tile is its own physical array of the full per-tile cap
			// size, with independently generated faults. Generating here
			// (rather than letting the pipeline size the map to the design)
			// gives tiles smaller than the caps genuine placement slack.
			dm, err := defect.Generate(opts.MaxRows, opts.MaxCols, o.DefectRate, o.DefectOnFraction, o.DefectSeed)
			if err != nil {
				return nil, err
			}
			o.Defects = dm
			o.DefectRate = 0
		}
		res, err := SynthesizeContext(ctx, sub, o)
		if err != nil {
			return nil, err
		}
		if err := res.verifyTileResult(); err != nil {
			return nil, err
		}
		if fn := progressFrom(ctx).TileDone; fn != nil {
			fn(int(tilesDone.Add(1)))
		}
		return &partition.TileResult{
			Design:         res.Design,
			Placement:      res.Placement,
			Defects:        res.Defects,
			RepairAttempts: res.RepairAttempts,
		}, nil
	}
	plan, err := partition.Build(ctx, nw, partition.Options{
		MaxRows: opts.MaxRows,
		MaxCols: opts.MaxCols,
		Synth:   synth,
		Seed:    opts.DefectSeed | 1,
	})
	if err != nil {
		return nil, err
	}
	// Plan-level formal proof by symbolic cascade composition. A node-limit
	// blowup is tolerated — Build's Eval parity already ran — but a genuine
	// counterexample is a bug and must surface, never be returned.
	if err := plan.FormalVerify(nw, opts.NodeLimit); err != nil && !errors.Is(err, bdd.ErrNodeLimit) {
		return nil, fmt.Errorf("core: partitioned plan failed the cascade proof: %w", err)
	}
	return plan, nil
}

// verifyTileResult checks a freshly synthesized tile against its
// sub-network: formal sneak-path proof when the shared BDD manager is
// retained (SBDD mode), with exhaustive-or-sampled simulation as the
// node-limit fallback. Note this verifies the *logical* design; the
// defect-aware placement loop has already verified the effective design
// under the defect map when one was in play.
func (r *Result) verifyTileResult() error {
	if r.mgr != nil {
		err := r.FormalVerify(0)
		if err == nil {
			return nil
		}
		if !errors.Is(err, bdd.ErrNodeLimit) {
			return fmt.Errorf("core: tile failed formal verification: %w", err)
		}
	}
	if err := r.Verify(14, 512, 1); err != nil {
		return fmt.Errorf("core: tile failed verification: %w", err)
	}
	return nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"compact/internal/defect"
	"compact/internal/faultinject"
	"compact/internal/spice"
	"compact/internal/xbar"
)

// The verified-repair loop
//
// A placement search (xbar.Place) only reasons about the compatibility
// table; the loop below treats it as untrusted and re-verifies the
// *effective* design — the function the defective array actually computes
// under the chosen binding — against the source network before a result is
// ever returned:
//
//  1. place the design (greedy first; the final attempt forces the exact
//     ILP engine so the loop never gives up while a placement provably
//     exists within budget);
//  2. materialize the effective design with xbar.UnderDefects;
//  3. verify it — a formal sneak-path equivalence proof for SBDD-mode
//     results, exhaustive-or-sampled simulation otherwise;
//  4. on any mismatch, retry with a fresh placement seed.
//
// A proven *xbar.Unplaceable aborts immediately (retrying cannot help),
// context expiry surfaces as the context error, and exhausting the attempt
// budget returns the last failure — a wrong crossbar is never returned
// silently, which is the robustness contract of this stage.

// defectMap resolves the physical array for this synthesis: the explicit
// Options.Defects map, a generated one when DefectRate > 0 (sized exactly
// to the design, no spare lines), or nil when defect handling is off.
// opts must be canonical.
func (o Options) defectMap(d *xbar.Design) (*defect.Map, error) {
	if o.Defects != nil {
		return o.Defects, nil
	}
	if o.DefectRate <= 0 {
		return nil, nil
	}
	return defect.Generate(d.Rows, d.Cols, o.DefectRate, o.DefectOnFraction, o.DefectSeed)
}

// placeWithRepair runs the verified-repair loop described above and, on
// success, records Placement, Effective, Defects and RepairAttempts on the
// result. opts must be canonical (MaxRepairAttempts resolved).
func (r *Result) placeWithRepair(ctx context.Context, dm *defect.Map, opts Options) error {
	attempts := opts.MaxRepairAttempts
	if attempts <= 0 {
		attempts = DefaultRepairAttempts
	}
	if err := faultinject.Err(faultinject.StagePlace); err != nil {
		return fmt.Errorf("core: placement: %w", err)
	}
	if opts.MarginAware {
		done, err := r.placeMarginAware(ctx, dm, opts)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		// Margin-aware search found nothing it could both verify and keep;
		// the plain loop below is the unconditional fallback.
	}
	var lastErr error
	// rejected fingerprints placements that already failed verification.
	// Every search engine is deterministic in (design, map, seed) — and the
	// identity shortcut and the ILP's near-identity objective ignore the
	// seed entirely — so a fresh attempt can reproduce a rejected binding
	// exactly. Re-verifying it would fail identically; instead the loop
	// escalates straight to the exact engine, and gives up once the exact
	// engine repeats a rejected binding too, because no further attempt can
	// explore anything new.
	rejected := make(map[string]bool)
	forceILP := false
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if fn := progressFrom(ctx).RepairAttempt; fn != nil {
			fn(attempt + 1)
		}
		popts := xbar.PlaceOptions{
			// splitmix64-style odd-constant stride decorrelates attempts
			// while keeping the whole loop a pure function of DefectSeed.
			Seed: opts.DefectSeed + uint64(attempt)*0x9e3779b97f4a7c15,
		}
		if forceILP || attempt == attempts-1 {
			popts.Engine = xbar.PlaceILP
		}
		pl, err := xbar.PlaceContext(ctx, r.Design, dm, popts)
		if err != nil {
			var up *xbar.Unplaceable
			if errors.As(err, &up) && up.Proven {
				return fmt.Errorf("core: placement: %w", err)
			}
			if ctxErr := ctx.Err(); ctxErr != nil {
				return fmt.Errorf("core: placement: %w", ctxErr)
			}
			lastErr = err
			continue
		}
		fp := fmt.Sprint(pl.RowPerm, pl.ColPerm)
		if rejected[fp] {
			if popts.Engine == xbar.PlaceILP {
				return fmt.Errorf("core: defect-aware placement failed after %d attempts: the exact engine reproduces a placement that already failed verification: %w", attempt+1, lastErr)
			}
			forceILP = true
			continue
		}
		eff, err := r.Design.UnderDefects(dm, pl)
		if err != nil {
			// Structural rejection of a search-produced placement is a bug,
			// not a retryable condition.
			return fmt.Errorf("core: placement: %w", err)
		}
		injected := false
		if mode, _ := faultinject.Mode(faultinject.StagePlace); mode == "corrupt" && attempt == 0 {
			// Deterministically hand verification a wrong effective design
			// on the first attempt, so tests can drive the repair path.
			corruptDesign(eff)
			injected = true
		}
		if err := r.verifyEffective(eff); err != nil {
			lastErr = err
			if !injected {
				// An injected corruption says nothing about the placement
				// itself; only genuine failures veto a repeat binding.
				rejected[fp] = true
			}
			continue
		}
		r.Placement = pl
		r.Effective = eff
		r.Defects = dm
		r.RepairAttempts = attempt + 1
		return nil
	}
	return fmt.Errorf("core: defect-aware placement failed after %d attempts: %w", attempts, lastErr)
}

// Margin-aware candidate search tuning: how many distinct placements to
// enumerate, and the Margin sampling budget per candidate (exhaustive up
// to 2^6 assignments, 32 seeded samples beyond).
const (
	marginCandidates      = 4
	marginExhaustiveLimit = 6
	marginSamples         = 32
)

// placeMarginAware implements the Options.MarginAware secondary objective:
// enumerate candidate placements, verify each one's effective design, score
// the survivors by simulated worst-case voltage margin and keep the widest.
// It returns done=false (with a nil error) whenever the plain repair loop
// should run instead — candidate search failed unproven, or no candidate
// verified. Scoring failures (e.g. a design past the nodal solver's size
// cap) demote the candidate's score to -Inf rather than failing: a
// verified placement always beats no placement.
func (r *Result) placeMarginAware(ctx context.Context, dm *defect.Map, opts Options) (bool, error) {
	cands, err := xbar.PlaceCandidates(ctx, r.Design, dm, xbar.PlaceOptions{Seed: opts.DefectSeed}, marginCandidates)
	if err != nil {
		var up *xbar.Unplaceable
		if errors.As(err, &up) && up.Proven {
			return false, fmt.Errorf("core: placement: %w", err)
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return false, fmt.Errorf("core: placement: %w", ctxErr)
		}
		return false, nil
	}
	var (
		bestPl     *xbar.Placement
		bestEff    *xbar.Design
		bestMargin = math.Inf(-1)
		attempts   int
	)
	for _, pl := range cands {
		if ctx.Err() != nil {
			break // keep the best verified candidate so far, if any
		}
		if fn := progressFrom(ctx).RepairAttempt; fn != nil {
			fn(attempts + 1)
		}
		eff, err := r.Design.UnderDefects(dm, pl)
		if err != nil {
			// Structural rejection of a search-produced placement is a bug,
			// not a retryable condition (same contract as the plain loop).
			return false, fmt.Errorf("core: placement: %w", err)
		}
		attempts++
		if err := r.verifyEffective(eff); err != nil {
			continue
		}
		score := math.Inf(-1)
		rep, err := spice.MarginContext(ctx, r.Design, r.Design.Eval, len(r.Design.VarNames),
			marginExhaustiveLimit, marginSamples,
			spice.Env{Model: spice.Default(), Defects: dm, Placement: pl}, opts.DefectSeed)
		if err == nil {
			score = rep.MinOn - rep.MaxOff
		}
		// Strict improvement only: candidate order starts with identity, so
		// on arrays where placement cannot change the electrical picture the
		// margin-aware loop returns exactly what the plain loop would.
		if bestPl == nil || score > bestMargin {
			bestPl, bestEff, bestMargin = pl, eff, score
		}
	}
	if bestPl == nil {
		return false, nil
	}
	r.Placement = bestPl
	r.Effective = bestEff
	r.Defects = dm
	r.RepairAttempts = attempts
	return true, nil
}

// verifyEffective checks the effective design against the source network:
// a formal sneak-path equivalence proof when the shared BDD is available
// (SBDD mode), exhaustive simulation up to 14 inputs and 512 seeded random
// vectors beyond that otherwise.
func (r *Result) verifyEffective(eff *xbar.Design) error {
	if r.mgr != nil {
		return xbar.FormalVerify(eff, r.network, 0)
	}
	if bad := eff.VerifyAgainst64(r.network.Eval64, r.network.NumInputs(), 14, 512, 1); bad != nil {
		return fmt.Errorf("core: effective design disagrees with the network on %v", bad)
	}
	return nil
}

// corruptDesign flips the polarity of the first literal cell — the
// deterministic wrong-design used by the place=corrupt injection mode.
func corruptDesign(d *xbar.Design) {
	for r := range d.Cells {
		for c := range d.Cells[r] {
			if d.Cells[r][c].Kind == xbar.Lit {
				d.Cells[r][c].Neg = !d.Cells[r][c].Neg
				return
			}
		}
	}
}

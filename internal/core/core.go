// Package core is the COMPACT framework: it chains the full synthesis
// pipeline of the paper — Boolean network → (shared) BDD → undirected
// graph → VH-labeling → crossbar design — behind one call, Synthesize.
//
// The pipeline follows Figure 3 of the paper. Options select the BDD kind
// (one shared SBDD, or per-output ROBDDs merged by their 1-terminal as in
// prior work), the labeling method and objective weight γ, the alignment
// constraints of Eq. 7, and the exact-solver time budget. Every produced
// design evaluates on assignments in network-input order and can be
// checked against the source network with Result.Verify.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"compact/internal/bdd"
	"compact/internal/defect"
	"compact/internal/faultinject"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/oct"
	"compact/internal/partition"
	"compact/internal/xbar"
	"compact/internal/xbar3d"
)

// BDDKind selects how multi-output functions are represented.
type BDDKind uint8

// BDD kinds.
const (
	// SBDD builds one shared BDD for all outputs (Section VII-A, the
	// COMPACT default).
	SBDD BDDKind = iota
	// SeparateROBDDs builds one ROBDD per output and merges them by the
	// 1-terminal, modeling the prior-work flow the paper compares against.
	SeparateROBDDs
)

func (k BDDKind) String() string {
	if k == SeparateROBDDs {
		return "robdds"
	}
	return "sbdd"
}

// Options configures Synthesize. The zero value gives the paper's default
// configuration: SBDD, γ = 0.5, alignment on, automatic method selection,
// DFS variable order.
type Options struct {
	// Gamma weighs semiperimeter against maximum dimension; the paper's
	// default is 0.5.
	Gamma float64
	// GammaSet must be true to use Gamma = 0 (distinguishes an explicit 0
	// from an unset field).
	GammaSet bool
	// Method picks the VH-labeling solver (default auto).
	Method labeling.Method
	// BDDKind picks SBDD vs per-output ROBDDs.
	BDDKind BDDKind
	// NoAlign disables the Eq. 7 alignment constraints (they are on by
	// default, matching Section VIII).
	NoAlign bool
	// TimeLimit bounds the whole synthesis: it becomes a deadline on one
	// context shared by every stage, so BDD construction time is deducted
	// from the labeling budget and the total wall clock never exceeds the
	// limit. Zero means unlimited. Expiry degrades the labeling to the
	// best feasible solution found (anytime contract), never to an error.
	TimeLimit time.Duration
	// VarOrder fixes the BDD variable order (permutation of input
	// indices); nil uses the DFS fanin-order heuristic.
	VarOrder []int
	// Sift enables rebuild-based sifting on top of the initial order.
	Sift bool
	// NodeLimit bounds BDD construction (default 4,000,000 nodes).
	NodeLimit int
	// OCTBackend selects the vertex-cover engine for MethodOCT.
	OCTBackend oct.Backend
	// AutoExactLimit overrides the auto-method node threshold.
	AutoExactLimit int
	// MaxRows/MaxCols cap the crossbar dimensions (0 = unconstrained);
	// Synthesize fails with a typed *InfeasibleError (matching
	// labeling.ErrInfeasible via errors.Is) when no design fits. Exact
	// enforcement requires the MIP labeling method.
	MaxRows, MaxCols int
	// Partition enables the multi-crossbar fallback: when single-crossbar
	// synthesis is infeasible under MaxRows/MaxCols, the network is cut
	// into sub-functions and synthesized as a verified tile cascade (see
	// internal/partition); the result then carries Plan instead of
	// Design. Requires both caps set.
	Partition bool
	// Defects describes the stuck-at faults of the physical array the
	// design will be programmed onto. When set, synthesis appends a
	// defect-aware placement stage with a verified-repair loop (see
	// place.go): the result additionally carries the placement, the
	// effective design the array computes, and the repair-attempt count —
	// or fails with a typed *xbar.Unplaceable error.
	Defects *defect.Map
	// DefectRate, when Defects is nil and the rate is positive, generates
	// a seeded random defect map exactly covering the synthesized design's
	// dimensions. Must lie in [0,1).
	DefectRate float64
	// DefectOnFraction is the stuck-ON share of generated faults; zero
	// means the default 0.5. (An all-stuck-OFF map cannot be requested via
	// the rate shortcut — build it with defect.Generate and pass Defects.)
	DefectOnFraction float64
	// DefectSeed seeds both defect generation and the placement search, so
	// a (network, options) pair resolves to one deterministic outcome.
	DefectSeed uint64
	// MaxRepairAttempts bounds the place-verify-retry loop (0 = default 3).
	// The final attempt always escalates to the exact ILP engine.
	MaxRepairAttempts int
	// Layers selects the number of crossbar wire layers. 0 (and 1) mean the
	// classic two-layer crossbar — the 2D pipeline, unchanged. 3 and above
	// enable FLOW-3D synthesis: the BDD graph is K-colored onto a layer
	// stack (labeling.SolveK), mapped to a layered design (xbar3d.Map3D),
	// and the result carries Design3D instead of Design. Capped at
	// labeling.MaxLayers. Layered synthesis composes with DefectRate
	// (per-plane generated maps) but not yet with explicit Defects maps,
	// Partition or MarginAware — Validate rejects those combinations.
	Layers int
	// MarginAware adds a secondary electrical objective to defect-aware
	// placement: several candidate placements are enumerated, each verified
	// placement is scored by its worst-case voltage margin under the
	// default device model (stuck-ON faults near used lines bridge spare
	// lines into the array, so different bindings genuinely differ
	// electrically), and the widest-margin candidate wins. Ties keep the
	// first candidate, so on arrays where placement cannot matter the
	// result is identical to the plain loop. Scoring failures degrade to
	// the plain verified-repair loop — MarginAware never turns a placeable
	// synthesis into a failure.
	MarginAware bool
}

// gamma resolves the effective objective weight via the canonical
// zero-value rule documented in options.go.
func (o Options) gamma() float64 { return o.Canonical().Gamma }

// Result is a synthesized crossbar design plus everything the experiments
// report: BDD statistics, the labeling solution (with solver trace), and
// wall-clock synthesis time.
type Result struct {
	Design   *xbar.Design
	Graph    *xbar.BDDGraph
	Labeling *labeling.Solution
	// Plan is the multi-crossbar cascade produced when Options.Partition
	// is set and single-crossbar synthesis is infeasible under the
	// dimension caps. For partitioned results Design/Graph/Labeling and
	// the BDD statistics are nil/zero; per-tile placements live on the
	// plan's tiles.
	Plan *partition.Plan
	// BDDNodes and BDDEdges use the paper's Table I conventions (nodes
	// include terminals; edges exclude nothing).
	BDDNodes, BDDEdges int
	// Order is the variable order used (input indices, level order).
	Order     []int
	SynthTime time.Duration

	// Placement, Effective and Defects are set when synthesis ran against
	// a defect map: the row/column binding of the logical design onto the
	// physical array, the effective design that array computes under the
	// binding (verified against the source network before the result is
	// returned), and the map itself. RepairAttempts counts the
	// place-verify rounds the repair loop used (1 = first placement
	// verified clean).
	Placement      *xbar.Placement
	Effective      *xbar.Design
	Defects        *defect.Map
	RepairAttempts int

	// Design3D, KLabeling, Placement3D, Effective3D and DefectMaps3D are
	// the layered counterparts of Design/Labeling/Placement/Effective/
	// Defects, set when Options.Layers >= 3 (Design, Labeling and the 2D
	// placement fields stay nil in that case). DefectMaps3D holds one
	// generated map per device plane.
	Design3D     *xbar3d.Design3D
	KLabeling    *labeling.KSolution
	Placement3D  *xbar3d.Placement3D
	Effective3D  *xbar3d.Design3D
	DefectMaps3D []*defect.Map

	network *logic.Network
	mgr     *bdd.Manager // SBDD mode only
	roots   []bdd.Node
}

// Stats returns the crossbar hardware statistics. Partitioned results
// have no single crossbar; their aggregate cost lives in Plan.Stats().
func (r *Result) Stats() xbar.Stats {
	if r.Design == nil {
		return xbar.Stats{}
	}
	return r.Design.Stats()
}

// Synthesize maps the network to a crossbar design.
func Synthesize(nw *logic.Network, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), nw, opts)
}

// SynthesizeContext is Synthesize with cooperative cancellation: ctx (plus
// a deadline derived from opts.TimeLimit, when set) is threaded through the
// labeling stack down to individual simplex pivots and branch & bound node
// expansions. When the budget expires mid-solve the best labeling found so
// far is used; a context that is already dead on entry returns
// (nil, ctx.Err()) promptly.
func SynthesizeContext(ctx context.Context, nw *logic.Network, opts Options) (*Result, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid options: %w", err)
	}
	if opts.TimeLimit > 0 {
		// One shared deadline for the whole pipeline; labeling receives it
		// via ctx (TimeLimit is deliberately NOT passed down as well —
		// that would restart the clock after BDD construction).
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.TimeLimit)
		defer cancel()
	}
	opts = opts.Canonical() // resolve Gamma and NodeLimit defaults once
	res, err := synthesizeSingle(ctx, nw, opts)
	if err != nil {
		if opts.Partition && errors.Is(err, labeling.ErrInfeasible) {
			// The function does not fit one tile: fall back to partitioned
			// multi-crossbar synthesis under the same shared deadline.
			plan, perr := synthesizePartitioned(ctx, nw, opts)
			if perr != nil {
				return nil, fmt.Errorf("core: partitioned synthesis (single crossbar infeasible: %v): %w", err, perr)
			}
			return &Result{Plan: plan, network: nw, SynthTime: time.Since(start)}, nil
		}
		return nil, err
	}
	res.SynthTime = time.Since(start)
	return res, nil
}

// synthesizeSingle runs the single-crossbar pipeline on canonical options
// under an already-derived deadline; SynthTime is the caller's to stamp.
func synthesizeSingle(ctx context.Context, nw *logic.Network, opts Options) (*Result, error) {
	order := opts.VarOrder
	if order == nil {
		order = bdd.DFSOrder(nw)
	}
	if opts.Sift {
		order, _ = bdd.SiftRebuild(nw, order, bdd.SiftRebuildOptions{NodeLimit: opts.NodeLimit})
	}

	if err := faultinject.Err(faultinject.StageBDD); err != nil {
		return nil, fmt.Errorf("core: BDD construction: %w", err)
	}
	var bg *xbar.BDDGraph
	var nodes, edges int
	var mgrKeep *bdd.Manager
	var rootsKeep []bdd.Node
	switch opts.BDDKind {
	case SeparateROBDDs:
		singles, err := bdd.BuildSeparate(nw, order, opts.NodeLimit)
		if err != nil {
			return nil, fmt.Errorf("core: ROBDD construction: %w", err)
		}
		bg, err = xbar.FromSeparate(singles, nw.InputNames())
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		// Merged node/edge counts: shared terminal counted once, plus the
		// (removed) 0-terminal convention of Table I.
		nodes = bg.NumNodes() + 1 // re-add the 0-terminal
		edges = 0
		for _, s := range singles {
			edges += s.Manager.CountEdges(s.Root)
		}
	default:
		m, roots, err := bdd.BuildNetwork(nw, order, opts.NodeLimit)
		if err != nil {
			return nil, fmt.Errorf("core: SBDD construction: %w", err)
		}
		nodes = m.CountNodes(roots...)
		edges = m.CountEdges(roots...)
		bg, err = xbar.FromBDD(m, roots, nw.OutputNames)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		mgrKeep, rootsKeep = m, roots // retained for WriteBDDDOT
	}

	if mode, ok := faultinject.Mode(faultinject.StageLabeling); ok {
		if mode == "infeasible" {
			// Site-specific mode: surface the typed infeasibility error the
			// dimension-cap path produces, so callers' 422 mapping is
			// exercised without crafting an actually infeasible instance.
			return nil, infeasibleError(bg, opts, labeling.ErrInfeasible)
		}
		if err := faultinject.Err(faultinject.StageLabeling); err != nil {
			return nil, fmt.Errorf("core: labeling: %w", err)
		}
	}
	if opts.Layers > 2 {
		return synthesizeLayered(ctx, nw, opts, bg, nodes, edges, order, mgrKeep, rootsKeep)
	}
	sol, err := labeling.SolveContext(ctx, bg.Problem(!opts.NoAlign), labeling.Options{
		Gamma:          opts.gamma(),
		Method:         opts.Method,
		OCTBackend:     opts.OCTBackend,
		AutoExactLimit: opts.AutoExactLimit,
		MaxRows:        opts.MaxRows,
		MaxCols:        opts.MaxCols,
	})
	if err != nil {
		if errors.Is(err, labeling.ErrInfeasible) {
			// Upgrade the sentinel to the typed error carrying the numbers
			// that explain the refusal (node count, OCT lower bound, caps).
			return nil, infeasibleError(bg, opts, err)
		}
		return nil, fmt.Errorf("core: labeling: %w", err)
	}
	if err := faultinject.Err(faultinject.StageMap); err != nil {
		return nil, fmt.Errorf("core: mapping: %w", err)
	}
	design, err := xbar.Map(bg, sol.Labels)
	if err != nil {
		return nil, fmt.Errorf("core: mapping: %w", err)
	}
	if opts.BDDKind != SeparateROBDDs {
		// Shared-manager designs carry BDD-level variable indices; remap
		// into network-input indexing so Eval takes network-order inputs.
		remap := make([]int, len(order))
		copy(remap, order)
		if err := design.RemapVars(remap, nw.InputNames()); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	res := &Result{
		Design:   design,
		Graph:    bg,
		Labeling: sol,
		BDDNodes: nodes,
		BDDEdges: edges,
		Order:    order,
		network:  nw,
		mgr:      mgrKeep,
		roots:    rootsKeep,
	}
	dm, err := opts.defectMap(design)
	if err != nil {
		return nil, fmt.Errorf("core: defect map: %w", err)
	}
	if dm != nil {
		if err := res.placeWithRepair(ctx, dm, opts); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Verify checks the design against the source network, exhaustively for up
// to exhaustiveLimit inputs and with `samples` random vectors beyond. Both
// sides run word-parallel (64 assignments per pass). It returns an error
// naming the first mismatching assignment.
func (r *Result) Verify(exhaustiveLimit, samples int, seed uint64) error {
	if r.Plan != nil {
		if err := r.Plan.Verify64(r.network.Eval64, exhaustiveLimit, samples, seed); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		return nil
	}
	if r.Design3D != nil {
		bad := r.Design3D.VerifyAgainst64(r.network.Eval64, r.network.NumInputs(), exhaustiveLimit, samples, seed)
		if bad != nil {
			return fmt.Errorf("core: layered design disagrees with network on %v", bad)
		}
		return nil
	}
	bad := r.Design.VerifyAgainst64(r.network.Eval64, r.network.NumInputs(), exhaustiveLimit, samples, seed)
	if bad != nil {
		return fmt.Errorf("core: design disagrees with network on %v", bad)
	}
	return nil
}

// FormalVerify proves the design equivalent to the source network for all
// input assignments via the symbolic sneak-path closure (xbar.FormalVerify);
// nodeLimit bounds the verifier's BDD (0 = default). Only available for
// SBDD-mode results, whose designs carry network-input variable order.
// Partitioned results are proven by symbolic cascade composition
// (partition.Plan.FormalVerify) instead.
func (r *Result) FormalVerify(nodeLimit int) error {
	if r.Plan != nil {
		return r.Plan.FormalVerify(r.network, nodeLimit)
	}
	if r.Design3D != nil {
		return xbar3d.FormalVerify3D(r.Design3D, r.network, nodeLimit)
	}
	return xbar.FormalVerify(r.Design, r.network, nodeLimit)
}

// Network returns the source network the result was synthesized from.
func (r *Result) Network() *logic.Network { return r.network }

// WriteBDDDOT renders the shared BDD underlying the design in Graphviz
// format. It errors for designs synthesized in SeparateROBDDs mode.
func (r *Result) WriteBDDDOT(w io.Writer) error {
	if r.mgr == nil {
		return fmt.Errorf("core: no shared BDD retained (SeparateROBDDs mode)")
	}
	return r.mgr.WriteDOT(w, r.roots...)
}

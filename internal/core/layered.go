package core

import (
	"context"
	"errors"
	"fmt"

	"compact/internal/bdd"
	"compact/internal/defect"
	"compact/internal/faultinject"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/xbar"
	"compact/internal/xbar3d"
)

// The FLOW-3D layered pipeline
//
// With Options.Layers >= 3 the back half of the pipeline swaps out: the
// BDD graph is K-colored onto a layer stack (labeling.SolveK — each node
// occupies a contiguous layer interval, each edge a crossing between
// adjacent layers), mapped to a K-layer design (xbar3d.Map3D), and
// verified through the layered sneak-path evaluators. Defect handling
// mirrors the 2D verified-repair loop with one generated map per device
// plane and the greedy sequential matcher (there is no 3D ILP escalation:
// per-plane assignments couple through shared wire layers, so the 2D
// assignment-polytope formulation does not transfer).

// synthesizeLayered runs the K-layer back half on an already-built BDD
// graph; opts must be canonical with Layers >= 3.
func synthesizeLayered(ctx context.Context, nw *logic.Network, opts Options, bg *xbar.BDDGraph,
	nodes, edges int, order []int, mgr *bdd.Manager, roots []bdd.Node) (*Result, error) {

	sol, err := labeling.SolveK(ctx, bg.Problem(!opts.NoAlign), opts.Layers, labeling.Options{
		Gamma:          opts.gamma(),
		Method:         opts.Method,
		OCTBackend:     opts.OCTBackend,
		AutoExactLimit: opts.AutoExactLimit,
		MaxRows:        opts.MaxRows,
		MaxCols:        opts.MaxCols,
	})
	if err != nil {
		if errors.Is(err, labeling.ErrInfeasible) {
			return nil, infeasibleError(bg, opts, err)
		}
		return nil, fmt.Errorf("core: labeling: %w", err)
	}
	if err := faultinject.Err(faultinject.StageMap); err != nil {
		return nil, fmt.Errorf("core: mapping: %w", err)
	}
	design, err := xbar3d.Map3D(bg, sol)
	if err != nil {
		return nil, fmt.Errorf("core: mapping: %w", err)
	}
	if opts.BDDKind != SeparateROBDDs {
		remap := make([]int, len(order))
		copy(remap, order)
		if err := design.RemapVars(remap, nw.InputNames()); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	res := &Result{
		Design3D:  design,
		Graph:     bg,
		KLabeling: sol,
		BDDNodes:  nodes,
		BDDEdges:  edges,
		Order:     order,
		network:   nw,
		mgr:       mgr,
		roots:     roots,
	}
	maps, err := opts.defectMaps3D(design)
	if err != nil {
		return nil, fmt.Errorf("core: defect map: %w", err)
	}
	if maps != nil {
		if err := res.place3DWithRepair(ctx, maps, opts); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// defectMaps3D generates one seeded defect map per device plane when
// DefectRate > 0, each sized exactly to its plane. Plane seeds stride off
// DefectSeed so no two planes share a fault stream. opts must be
// canonical.
func (o Options) defectMaps3D(d *xbar3d.Design3D) ([]*defect.Map, error) {
	if o.DefectRate <= 0 {
		return nil, nil
	}
	maps := make([]*defect.Map, len(d.Cells))
	for dl := range d.Cells {
		m, err := defect.Generate(d.Widths[dl], d.Widths[dl+1], o.DefectRate, o.DefectOnFraction,
			o.DefectSeed+uint64(dl+1)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, err
		}
		maps[dl] = m
	}
	return maps, nil
}

// place3DWithRepair is the layered verified-repair loop: place the stack
// (xbar3d.Place3D), materialize the effective design the faulty planes
// compute, verify it against the source network, and retry with a fresh
// seed on any mismatch — the same untrusted-search contract as the 2D
// loop. A proven *xbar3d.Unplaceable3D aborts immediately, and a repeated
// rejected binding aborts too: every engine is deterministic in (design,
// maps, seed) and the identity shortcut ignores the seed, so a repeat
// proves the search has nothing new to offer.
func (r *Result) place3DWithRepair(ctx context.Context, maps []*defect.Map, opts Options) error {
	attempts := opts.MaxRepairAttempts
	if attempts <= 0 {
		attempts = DefaultRepairAttempts
	}
	if err := faultinject.Err(faultinject.StagePlace); err != nil {
		return fmt.Errorf("core: placement: %w", err)
	}
	var lastErr error
	rejected := make(map[string]bool)
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if fn := progressFrom(ctx).RepairAttempt; fn != nil {
			fn(attempt + 1)
		}
		popts := xbar.PlaceOptions{
			Seed: opts.DefectSeed + uint64(attempt)*0x9e3779b97f4a7c15,
		}
		pl, err := xbar3d.Place3D(ctx, r.Design3D, maps, popts)
		if err != nil {
			var up *xbar3d.Unplaceable3D
			if errors.As(err, &up) && up.Proven {
				return fmt.Errorf("core: placement: %w", err)
			}
			if ctxErr := ctx.Err(); ctxErr != nil {
				return fmt.Errorf("core: placement: %w", ctxErr)
			}
			lastErr = err
			continue
		}
		fp := fmt.Sprint(pl.Perms)
		if rejected[fp] {
			return fmt.Errorf("core: layered placement failed after %d attempts: the search reproduces a placement that already failed verification: %w", attempt+1, lastErr)
		}
		eff, err := r.Design3D.UnderDefects3D(maps, pl)
		if err != nil {
			// Structural rejection of a search-produced placement is a bug,
			// not a retryable condition.
			return fmt.Errorf("core: placement: %w", err)
		}
		injected := false
		if mode, _ := faultinject.Mode(faultinject.StagePlace); mode == "corrupt" && attempt == 0 {
			corruptDesign3D(eff)
			injected = true
		}
		if err := r.verifyEffective3D(eff); err != nil {
			lastErr = err
			if !injected {
				rejected[fp] = true
			}
			continue
		}
		r.Placement3D = pl
		r.Effective3D = eff
		r.DefectMaps3D = maps
		r.RepairAttempts = attempt + 1
		return nil
	}
	return fmt.Errorf("core: layered placement failed after %d attempts: %w", attempts, lastErr)
}

// verifyEffective3D checks the effective layered design against the source
// network: a formal sneak-path equivalence proof when the shared BDD is
// available (SBDD mode), exhaustive-or-sampled word-parallel simulation
// otherwise — the same tiers as verifyEffective.
func (r *Result) verifyEffective3D(eff *xbar3d.Design3D) error {
	if r.mgr != nil {
		return xbar3d.FormalVerify3D(eff, r.network, 0)
	}
	if bad := eff.VerifyAgainst64(r.network.Eval64, r.network.NumInputs(), 14, 512, 1); bad != nil {
		return fmt.Errorf("core: effective layered design disagrees with the network on %v", bad)
	}
	return nil
}

// corruptDesign3D flips the polarity of the first literal cell — the
// layered counterpart of corruptDesign for the place=corrupt injection
// mode.
func corruptDesign3D(d *xbar3d.Design3D) {
	for dl := range d.Cells {
		for r := range d.Cells[dl] {
			for c := range d.Cells[dl][r] {
				if d.Cells[dl][r][c].Kind == xbar.Lit {
					d.Cells[dl][r][c].Neg = !d.Cells[dl][r][c].Neg
					return
				}
			}
		}
	}
}

package core

import (
	"math"
	"strings"
	"time"

	"compact/internal/partition"
	"compact/internal/xbar"
	"compact/internal/xbar3d"
)

// ResultView is the stable, JSON-serializable projection of a Result — the
// body the compactd server returns from /v1/synthesize and the form in
// which synthesis outcomes are archived. It carries everything the
// experiments report (circuit, BDD and crossbar statistics, the labeling
// outcome with per-engine portfolio reports) plus the full design in the
// sparse wire format of xbar.Design's MarshalJSON. The view round-trips:
// decoding the JSON yields a design whose Eval agrees with the original
// everywhere (asserted by TestResultViewRoundTripEvalParity).
type ResultView struct {
	// Fingerprint is the source network's canonical content hash.
	Fingerprint string      `json:"fingerprint"`
	Circuit     CircuitView `json:"circuit"`
	// BDDNodes/BDDEdges use the paper's Table I conventions.
	BDDNodes int `json:"bdd_nodes"`
	BDDEdges int `json:"bdd_edges"`
	// Order is the BDD variable order used (input indices, level order).
	Order    []int        `json:"order,omitempty"`
	Labeling LabelingView `json:"labeling"`
	Crossbar CrossbarView `json:"crossbar"`
	// SynthMillis is the synthesis wall clock in milliseconds.
	SynthMillis float64 `json:"synth_ms"`
	// Design is the programmed crossbar, sparse-encoded; nil for
	// partitioned results (see Partition).
	Design *xbar.Design `json:"design,omitempty"`
	// Design3D is the K-layer stack produced when the request asked for
	// Layers >= 3, in xbar3d's versioned sparse wire format; Design is nil
	// in that case and Crossbar carries the stack's footprint projection.
	Design3D *xbar3d.Design3D `json:"design3d,omitempty"`
	// Placement reports the defect-aware placement outcome; present only
	// when synthesis ran against a defect map.
	Placement *PlacementView `json:"placement,omitempty"`
	// Partition carries the multi-crossbar plan and its summary when the
	// function was synthesized as a tile cascade; Design and Crossbar are
	// zero in that case (per-tile designs live inside the plan).
	Partition *PartitionView `json:"partition,omitempty"`
}

// PartitionView is the wire form of a partitioned synthesis outcome: the
// full plan (tiles, nets, per-tile designs and placements in the plan's
// versioned wire format) plus its aggregate statistics and content
// digest.
type PartitionView struct {
	Tiles   int    `json:"tiles"`
	CutNets int    `json:"cut_nets"`
	TotalS  int    `json:"total_s"`
	MaxRows int    `json:"max_rows"`
	MaxCols int    `json:"max_cols"`
	Devices int    `json:"devices"`
	Depth   int    `json:"depth"`
	Digest  string `json:"digest"`
	// Plan is the complete cascade in partition's wire format v1.
	Plan *partition.Plan `json:"plan"`
}

// PlacementView is the wire form of a defect-aware placement: the binding
// of logical lines onto physical ones, which search engine produced it,
// how many place-verify rounds the repair loop used, and the defect map's
// identity (fault count plus content digest).
type PlacementView struct {
	Engine         string `json:"engine"`
	RowPerm        []int  `json:"row_perm,omitempty"`
	ColPerm        []int  `json:"col_perm,omitempty"`
	RepairAttempts int    `json:"repair_attempts"`
	Defects        int    `json:"defects"`
	DefectsDigest  string `json:"defects_digest"`
	// LayerPerms is the per-layer wire binding of a layered placement
	// (RowPerm/ColPerm are absent in that case); DefectsDigest then joins
	// the per-plane map digests with "," in plane order.
	LayerPerms [][]int `json:"layer_perms,omitempty"`
}

// CircuitView summarizes the source network.
type CircuitView struct {
	Name    string `json:"name"`
	Inputs  int    `json:"inputs"`
	Outputs int    `json:"outputs"`
	Gates   int    `json:"gates"`
	Depth   int    `json:"depth"`
}

// LabelingView summarizes the VH-labeling solution.
type LabelingView struct {
	Method  string  `json:"method"`
	Optimal bool    `json:"optimal"`
	Rows    int     `json:"rows"`
	Cols    int     `json:"cols"`
	S       int     `json:"s"`
	D       int     `json:"d"`
	Millis  float64 `json:"solve_ms"`
	// Engines reports the per-engine outcome of a portfolio race; empty
	// for single-engine methods.
	Engines []EngineView `json:"engines,omitempty"`
}

// EngineView is one portfolio engine's outcome. Objective is omitted when
// the engine produced no labeling (its report carries +Inf, which JSON
// cannot encode).
type EngineView struct {
	Method    string   `json:"method"`
	Objective *float64 `json:"objective,omitempty"`
	Optimal   bool     `json:"optimal"`
	Winner    bool     `json:"winner"`
	Millis    float64  `json:"elapsed_ms"`
	Err       string   `json:"error,omitempty"`
}

// CrossbarView is the design's hardware statistics in wire form. For
// layered results Rows/Cols/S/D are the stack's footprint projection and
// the two layer fields identify the stack shape; both are zero/absent for
// classic 2D designs.
type CrossbarView struct {
	Rows    int `json:"rows"`
	Cols    int `json:"cols"`
	S       int `json:"s"`
	D       int `json:"d"`
	Area    int `json:"area"`
	Devices int `json:"devices"`
	Power   int `json:"power"`
	Delay   int `json:"delay"`
	// Layers is the wire-layer count of a layered result (0 for 2D).
	Layers int `json:"layers,omitempty"`
	// LayerWidths is the per-layer wire count of a layered result.
	LayerWidths []int `json:"layer_widths,omitempty"`
}

// View projects the result into its serializable wire form. The returned
// view shares the Design pointer with the result (designs are effectively
// immutable after synthesis); everything else is copied.
func (r *Result) View() ResultView {
	v := ResultView{
		BDDNodes:    r.BDDNodes,
		BDDEdges:    r.BDDEdges,
		Order:       append([]int(nil), r.Order...),
		SynthMillis: millis(r.SynthTime),
		Design:      r.Design,
	}
	if r.Design != nil {
		st := r.Design.Stats()
		v.Crossbar = CrossbarView{
			Rows: st.Rows, Cols: st.Cols, S: st.S, D: st.D,
			Area: st.Area, Devices: st.LitCells + st.OnCells,
			Power: st.Power, Delay: st.Delay,
		}
	}
	if r.Design3D != nil {
		st := r.Design3D.Stats()
		v.Design3D = r.Design3D
		v.Crossbar = CrossbarView{
			Rows: st.R, Cols: st.C, S: st.S, D: st.D,
			Area: st.Area, Devices: st.LitCells + st.OnCells,
			Power: st.Power, Delay: st.Delay,
			Layers: st.K, LayerWidths: st.Widths,
		}
	}
	if p := r.Plan; p != nil {
		ps := p.Stats()
		v.Partition = &PartitionView{
			Tiles:   ps.Tiles,
			CutNets: ps.CutNets,
			TotalS:  ps.TotalS,
			MaxRows: ps.MaxRows,
			MaxCols: ps.MaxCols,
			Devices: ps.Devices,
			Depth:   ps.Depth,
			Digest:  p.Digest(),
			Plan:    p,
		}
	}
	if r.network != nil {
		ns := r.network.Stats()
		v.Fingerprint = r.network.Fingerprint()
		v.Circuit = CircuitView{
			Name:    r.network.Name,
			Inputs:  ns.Inputs,
			Outputs: ns.Outputs,
			Gates:   ns.Gates,
			Depth:   ns.Depth,
		}
	}
	if pl := r.Placement; pl != nil {
		v.Placement = &PlacementView{
			Engine:         pl.Engine,
			RowPerm:        append([]int(nil), pl.RowPerm...),
			ColPerm:        append([]int(nil), pl.ColPerm...),
			RepairAttempts: r.RepairAttempts,
			Defects:        r.Defects.Len(),
			DefectsDigest:  r.Defects.Digest(),
		}
	}
	if pl := r.Placement3D; pl != nil {
		pv := &PlacementView{
			Engine:         pl.Engine,
			RepairAttempts: r.RepairAttempts,
		}
		for _, p := range pl.Perms {
			pv.LayerPerms = append(pv.LayerPerms, append([]int(nil), p...))
		}
		var digests []string
		for _, m := range r.DefectMaps3D {
			pv.Defects += m.Len()
			digests = append(digests, m.Digest())
		}
		pv.DefectsDigest = strings.Join(digests, ",")
		v.Placement = pv
	}
	if sol := r.KLabeling; sol != nil {
		v.Labeling = LabelingView{
			Method:  sol.Method,
			Optimal: sol.Optimal,
			Rows:    sol.Stats.R,
			Cols:    sol.Stats.C,
			S:       sol.Stats.S,
			D:       sol.Stats.D,
			Millis:  millis(sol.Elapsed),
		}
		for _, er := range sol.Engines {
			ev := EngineView{
				Method:  er.Method,
				Optimal: er.Optimal,
				Winner:  er.Winner,
				Millis:  millis(er.Elapsed),
				Err:     er.Err,
			}
			if !math.IsInf(er.Objective, 0) && !math.IsNaN(er.Objective) {
				obj := er.Objective
				ev.Objective = &obj
			}
			v.Labeling.Engines = append(v.Labeling.Engines, ev)
		}
	}
	if sol := r.Labeling; sol != nil {
		v.Labeling = LabelingView{
			Method:  sol.Method,
			Optimal: sol.Optimal,
			Rows:    sol.Stats.Rows,
			Cols:    sol.Stats.Cols,
			S:       sol.Stats.S,
			D:       sol.Stats.D,
			Millis:  millis(sol.Elapsed),
		}
		for _, er := range sol.Engines {
			ev := EngineView{
				Method:  er.Method,
				Optimal: er.Optimal,
				Winner:  er.Winner,
				Millis:  millis(er.Elapsed),
				Err:     er.Err,
			}
			if !math.IsInf(er.Objective, 0) && !math.IsNaN(er.Objective) {
				obj := er.Objective
				ev.Objective = &obj
			}
			v.Labeling.Engines = append(v.Labeling.Engines, ev)
		}
	}
	return v
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

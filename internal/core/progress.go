package core

import "context"

// Progress receives pipeline milestones during SynthesizeContext, carried
// on the context so deeply nested stages (the repair loop, per-tile
// partitioned synthesis) can report without threading a parameter through
// every signature. compactd's async job API is the consumer: a polling
// client sees repair attempts and completed tiles move while the solve
// runs. Callbacks may fire from the synthesis goroutine at any point
// between entry and return and must be cheap and race-safe; zero-value
// fields are simply not called.
type Progress struct {
	// RepairAttempt reports that the defect-aware verified-repair loop is
	// starting attempt n (1-based).
	RepairAttempt func(n int)
	// TileDone reports that n tiles of a partitioned cascade have
	// completed synthesis and verification so far.
	TileDone func(n int)
}

type progressCtxKey struct{}

// WithProgress returns a context carrying p. SynthesizeContext (and the
// stages below it) report milestones through the carried callbacks.
func WithProgress(ctx context.Context, p Progress) context.Context {
	return context.WithValue(ctx, progressCtxKey{}, p)
}

// progressFrom extracts the carried Progress; the zero value (no
// callbacks) when none was attached.
func progressFrom(ctx context.Context) Progress {
	p, _ := ctx.Value(progressCtxKey{}).(Progress)
	return p
}

package core

import (
	"encoding/json"
	"testing"
	"time"

	"compact/internal/labeling"
	"compact/internal/logic"
)

func synthFig2(t *testing.T, opts Options) (*logic.Network, *Result) {
	t.Helper()
	b := logic.NewBuilder("fig2")
	a, bb, c := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("f", b.Or(b.And(a, bb), c))
	nw := b.Build()
	res, err := Synthesize(nw, opts)
	if err != nil {
		t.Fatal(err)
	}
	return nw, res
}

func TestResultViewRoundTripEvalParity(t *testing.T) {
	nw, res := synthFig2(t, Options{})
	data, err := json.Marshal(res.View())
	if err != nil {
		t.Fatal(err)
	}
	var dec ResultView
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Design == nil {
		t.Fatal("decoded view has no design")
	}
	if dec.Fingerprint != nw.Fingerprint() {
		t.Fatalf("fingerprint mismatch: %s vs %s", dec.Fingerprint, nw.Fingerprint())
	}
	// Eval parity: the decoded design computes exactly the source network.
	for a := 0; a < 1<<3; a++ {
		in := []bool{a&1 != 0, a&2 != 0, a&4 != 0}
		want := nw.Eval(in)
		got := dec.Design.Eval(in)
		for o := range want {
			if want[o] != got[o] {
				t.Fatalf("decoded design disagrees with network on %v output %d", in, o)
			}
		}
	}
	if dec.Crossbar.Rows != res.Design.Rows || dec.Crossbar.Cols != res.Design.Cols {
		t.Fatalf("crossbar view %dx%d vs design %dx%d",
			dec.Crossbar.Rows, dec.Crossbar.Cols, res.Design.Rows, res.Design.Cols)
	}
	if dec.Circuit.Inputs != 3 || dec.Circuit.Outputs != 1 {
		t.Fatalf("circuit view %+v", dec.Circuit)
	}
	if dec.BDDNodes != res.BDDNodes || dec.BDDEdges != res.BDDEdges {
		t.Fatal("BDD stats lost in round trip")
	}
}

func TestResultViewPortfolioEnginesMarshal(t *testing.T) {
	// Portfolio reports can carry +Inf objectives for losing engines;
	// the view must stay JSON-encodable regardless.
	_, res := synthFig2(t, Options{Method: labeling.MethodPortfolio, TimeLimit: 30 * time.Second})
	v := res.View()
	if len(v.Labeling.Engines) == 0 {
		t.Fatal("portfolio result has no engine reports")
	}
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("portfolio view does not marshal: %v", err)
	}
	var dec ResultView
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	winners := 0
	for _, e := range dec.Labeling.Engines {
		if e.Winner {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("decoded view has %d winning engines, want 1", winners)
	}
}

package core

import (
	"errors"
	"testing"
	"time"

	"compact/internal/bench"
	"compact/internal/labeling"
	"compact/internal/logic"
)

func cascadeNet(t *testing.T) *logic.Network {
	t.Helper()
	b := logic.NewBuilder("casc")
	xs := b.Inputs("x", 8)
	carry := xs[0]
	for i := 1; i < len(xs); i++ {
		carry = b.Xor(b.And(carry, xs[i]), b.Or(carry, xs[i]))
	}
	b.Output("y0", carry)
	b.Output("y1", b.Xnor(b.And(xs[0], xs[1], xs[2], xs[3]), b.Or(xs[4], xs[5], xs[6], xs[7])))
	b.Output("y2", b.Mux(xs[0], b.And(xs[1], xs[2]), b.Or(xs[6], xs[7])))
	return b.Build()
}

// TestPartitionSyntheticCascade is the subsystem smoke test: a function
// that cannot fit 6x6 becomes a multi-tile plan with exhaustive Eval
// parity and a passing symbolic cascade proof.
func TestPartitionSyntheticCascade(t *testing.T) {
	nw := cascadeNet(t)
	res, err := Synthesize(nw, Options{Partition: true, MaxRows: 6, MaxCols: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("expected a partitioned plan")
	}
	if res.Design != nil {
		t.Fatal("partitioned result must not also carry a single design")
	}
	st := res.Plan.Stats()
	if st.Tiles < 2 {
		t.Fatalf("expected a multi-tile cascade, got %d tile(s)", st.Tiles)
	}
	if st.MaxRows > 6 || st.MaxCols > 6 {
		t.Fatalf("tile dimensions %dx%d exceed the 6x6 caps", st.MaxRows, st.MaxCols)
	}
	if err := res.Verify(20, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := res.FormalVerify(0); err != nil {
		t.Fatal(err)
	}
	v := res.View()
	if v.Partition == nil || v.Partition.Tiles != st.Tiles || v.Partition.Plan == nil {
		t.Fatalf("view does not reflect the plan: %+v", v.Partition)
	}
	if v.Partition.Digest != res.Plan.Digest() {
		t.Fatal("view digest mismatch")
	}
}

// TestPartitionBenchAcceptance is the issue's acceptance scenario over
// real benchmark circuits: at 32x32 each circuit refuses with a typed
// infeasibility when Partition is off, and returns a verified multi-tile
// plan when it is on.
func TestPartitionBenchAcceptance(t *testing.T) {
	for _, name := range []string{"ctrl", "int2float", "cavlc"} {
		t.Run(name, func(t *testing.T) {
			nw := bench.MustBuild(name)
			// The race detector slows the solver ~10x with a heavy tail,
			// so any fixed wall-clock budget flakes; under race let the go
			// test timeout bound the solve instead.
			limit := 3 * time.Second
			if raceEnabled {
				limit = 0
			}
			opts := Options{MaxRows: 32, MaxCols: 32, TimeLimit: limit}

			_, err := Synthesize(nw, opts)
			if !errors.Is(err, labeling.ErrInfeasible) {
				t.Fatalf("%s at 32x32 without Partition: want ErrInfeasible, got %v", name, err)
			}
			var ie *InfeasibleError
			if !errors.As(err, &ie) {
				t.Fatalf("infeasibility is not the typed *InfeasibleError: %v", err)
			}
			if ie.Nodes <= 64 || ie.MaxRows != 32 || ie.MaxCols != 32 {
				t.Fatalf("typed error carries wrong facts: %+v", ie)
			}
			if ie.Nodes+ie.OCTLowerBound <= ie.MaxRows+ie.MaxCols {
				t.Fatalf("reported bound %d does not exceed the budget", ie.Nodes+ie.OCTLowerBound)
			}

			opts.Partition = true
			res, err := Synthesize(nw, opts)
			if err != nil {
				t.Fatalf("partitioned synthesis failed: %v", err)
			}
			st := res.Plan.Stats()
			if st.Tiles < 2 {
				t.Fatalf("expected multiple tiles, got %d", st.Tiles)
			}
			if st.MaxRows > 32 || st.MaxCols > 32 {
				t.Fatalf("tile dimensions %dx%d exceed the caps", st.MaxRows, st.MaxCols)
			}
			if err := res.Verify(14, 2000, 1); err != nil {
				t.Fatalf("plan lost Eval parity: %v", err)
			}
		})
	}
}

// TestPartitionWithDefects exercises the per-tile defect-aware placement
// path: with a generated defect rate, every tile is its own caps-sized
// physical array with independently generated faults, and every tile must
// come back placed (the placement loop re-verifies the effective design
// internally). Per-tile maps must also be decorrelated — a shared digest
// would mean every tile sees identical faults.
func TestPartitionWithDefects(t *testing.T) {
	nw := cascadeNet(t)
	res, err := Synthesize(nw, Options{
		Partition: true, MaxRows: 8, MaxCols: 8,
		DefectRate: 0.01, DefectSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("expected a plan")
	}
	digests := map[string]int{}
	for _, tl := range res.Plan.Tiles {
		if tl.Placement == nil {
			t.Fatalf("tile %s has no placement despite a defect rate", tl.Name)
		}
		if tl.Defects == nil {
			t.Fatalf("tile %s has no defect map", tl.Name)
		}
		if tl.Defects.Rows() != 8 || tl.Defects.Cols() != 8 {
			t.Fatalf("tile %s map is %dx%d, want the full 8x8 physical array",
				tl.Name, tl.Defects.Rows(), tl.Defects.Cols())
		}
		digests[tl.Defects.Digest()]++
	}
	if len(res.Plan.Tiles) >= 2 && len(digests) < 2 {
		t.Fatalf("all %d tiles share one defect map digest", len(res.Plan.Tiles))
	}
	if err := res.Verify(20, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionOptionValidation(t *testing.T) {
	nw := cascadeNet(t)
	if _, err := Synthesize(nw, Options{Partition: true}); err == nil {
		t.Fatal("Partition without caps must be rejected")
	}
	if _, err := Synthesize(nw, Options{Partition: true, MaxRows: 1, MaxCols: 4}); err == nil {
		t.Fatal("MaxRows < 2 must be rejected (a tile needs a wordline besides the input row)")
	}
}

func TestPartitionChangesCacheKey(t *testing.T) {
	base := Options{MaxRows: 32, MaxCols: 32}
	part := base
	part.Partition = true
	if base.Key() == part.Key() {
		t.Fatal("Partition flag must be part of the options cache key")
	}
}

package core

import (
	"math/rand"
	"testing"
	"time"

	"compact/internal/bench"
	"compact/internal/labeling"
	"compact/internal/logic"
)

func TestFig2Example(t *testing.T) {
	b := logic.NewBuilder("fig2")
	a, bb, c := b.Input("a"), b.Input("b"), b.Input("c")
	b.Output("f", b.Or(b.And(a, bb), c))
	nw := b.Build()
	res, err := Synthesize(nw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(10, 0, 1); err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.Rows == 0 || st.Cols == 0 {
		t.Errorf("degenerate design %+v", st)
	}
	if res.BDDNodes != 5 { // a, b, c, 0, 1
		t.Errorf("BDD nodes = %d, want 5", res.BDDNodes)
	}
	if res.SynthTime <= 0 {
		t.Error("no synth time recorded")
	}
	if res.Network() != nw {
		t.Error("network not carried")
	}
}

func TestPipelineMethodsAgreeOnValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		nw := randomNetwork(rng, 6, 25)
		for _, m := range []labeling.Method{labeling.MethodOCT, labeling.MethodMIP, labeling.MethodHeuristic} {
			res, err := Synthesize(nw, Options{Method: m})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, m, err)
			}
			if err := res.Verify(10, 0, 1); err != nil {
				t.Fatalf("trial %d %v: %v", trial, m, err)
			}
		}
	}
}

func TestSeparateROBDDsLargerThanSBDD(t *testing.T) {
	// Shared logic across outputs: SBDD must not exceed merged ROBDDs in
	// nodes or semiperimeter (Table III's claim).
	b := logic.NewBuilder("share")
	xs := b.Inputs("x", 6)
	common := b.Xor(xs[0], xs[1], xs[2], xs[3])
	b.Output("f", b.And(common, xs[4]))
	b.Output("g", b.Or(common, xs[5]))
	b.Output("h", b.Xor(common, xs[4], xs[5]))
	nw := b.Build()

	sb, err := Synthesize(nw, Options{Method: labeling.MethodHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Synthesize(nw, Options{Method: labeling.MethodHeuristic, BDDKind: SeparateROBDDs})
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Verify(10, 0, 1); err != nil {
		t.Fatalf("sbdd: %v", err)
	}
	if err := rb.Verify(10, 0, 1); err != nil {
		t.Fatalf("robdds: %v", err)
	}
	if sb.BDDNodes > rb.BDDNodes {
		t.Errorf("SBDD nodes %d > merged ROBDD nodes %d", sb.BDDNodes, rb.BDDNodes)
	}
}

func TestROBDDModeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 8; trial++ {
		nw := randomNetwork(rng, 6, 20)
		res, err := Synthesize(nw, Options{BDDKind: SeparateROBDDs, Method: labeling.MethodHeuristic})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Verify(10, 0, 1); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestGammaZeroNeedsGammaSet(t *testing.T) {
	if (Options{}).gamma() != 0.5 {
		t.Error("default gamma not 0.5")
	}
	if (Options{GammaSet: true}).gamma() != 0 {
		t.Error("explicit gamma 0 ignored")
	}
	if (Options{Gamma: 1}).gamma() != 1 {
		t.Error("gamma 1 ignored")
	}
}

func TestSiftOption(t *testing.T) {
	// Comparator with bad natural order: sifting must not break anything
	// and should not increase the BDD size.
	b := logic.NewBuilder("eq")
	xs := b.Inputs("x", 5)
	ys := b.Inputs("y", 5)
	var eqs []int
	for i := range xs {
		eqs = append(eqs, b.Xnor(xs[i], ys[i]))
	}
	b.Output("eq", b.And(eqs...))
	nw := b.Build()
	plain, err := Synthesize(nw, Options{VarOrder: naturalOrder(10), Method: labeling.MethodHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	sifted, err := Synthesize(nw, Options{VarOrder: naturalOrder(10), Sift: true, Method: labeling.MethodHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	if sifted.BDDNodes > plain.BDDNodes {
		t.Errorf("sifting grew BDD: %d -> %d", plain.BDDNodes, sifted.BDDNodes)
	}
	if err := sifted.Verify(10, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func naturalOrder(n int) []int {
	o := make([]int, n)
	for i := range o {
		o[i] = i
	}
	return o
}

func TestNoAlignOption(t *testing.T) {
	// Without alignment the labeling may put roots on bitlines, which Map
	// rejects — OR the mapping succeeds with roots that happen to be H.
	// Either way Synthesize must not return an invalid design silently.
	b := logic.NewBuilder("na")
	x, y := b.Input("x"), b.Input("y")
	b.Output("f", b.Xor(x, y))
	nw := b.Build()
	res, err := Synthesize(nw, Options{NoAlign: true, Method: labeling.MethodMIP})
	if err != nil {
		t.Skipf("mapping rejected unaligned labeling (acceptable): %v", err)
	}
	if err := res.Verify(10, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBenchmarkSmoke(t *testing.T) {
	// End-to-end on small real benchmarks with the heuristic labeler.
	for _, name := range []string{"ctrl", "cavlc", "int2float", "dec"} {
		nw := bench.MustBuild(name)
		res, err := Synthesize(nw, Options{Method: labeling.MethodHeuristic})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Verify(11, 300, 7); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := res.Stats()
		// S must be between n (ideal) and 2n+2 (all-VH).
		n := res.Graph.NumNodes()
		if st.S < n || st.S > 2*n+2 {
			t.Errorf("%s: S = %d outside [n, 2n+2] = [%d, %d]", name, st.S, n, 2*n+2)
		}
	}
}

func TestExactMIPOnCtrl(t *testing.T) {
	if testing.Short() {
		t.Skip("MIP on ctrl takes a few seconds")
	}
	nw := bench.MustBuild("ctrl")
	res, err := Synthesize(nw, Options{Method: labeling.MethodMIP, TimeLimit: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(7, 0, 1); err != nil {
		t.Fatal(err)
	}
	t.Logf("ctrl: %dx%d S=%d D=%d optimal=%v in %v",
		res.Stats().Rows, res.Stats().Cols, res.Stats().S, res.Stats().D,
		res.Labeling.Optimal, res.SynthTime)
}

func randomNetwork(rng *rand.Rand, nIn, nGates int) *logic.Network {
	b := logic.NewBuilder("rand")
	var pool []int
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.Input(string(rune('a'+i))))
	}
	for g := 0; g < nGates; g++ {
		pick := func() int { return pool[rng.Intn(len(pool))] }
		var id int
		switch rng.Intn(5) {
		case 0:
			id = b.And(pick(), pick())
		case 1:
			id = b.Or(pick(), pick())
		case 2:
			id = b.Not(pick())
		case 3:
			id = b.Xor(pick(), pick())
		default:
			id = b.Mux(pick(), pick(), pick())
		}
		pool = append(pool, id)
	}
	b.Output("f", pool[len(pool)-1])
	b.Output("g", pool[len(pool)-2])
	return b.Build()
}

func TestFormalVerifyBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("symbolic closure on benchmarks is slow")
	}
	for _, name := range []string{"ctrl", "cavlc", "int2float", "dec", "router"} {
		nw := bench.MustBuild(name)
		res, err := Synthesize(nw, Options{Method: labeling.MethodHeuristic})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.FormalVerify(8_000_000); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

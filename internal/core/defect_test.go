package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"compact/internal/bench"
	"compact/internal/defect"
	"compact/internal/faultinject"
	"compact/internal/labeling"
	"compact/internal/logic"
	"compact/internal/spice"
	"compact/internal/xbar"
)

// TestDefectSuiteBenchmarks is the acceptance suite: seeded defect maps at
// 1%/5%/10% stuck-at rates over benchmark circuits. Every returned design
// must carry a placement whose effective design passes FormalVerify;
// unplaceable instances must fail with a typed *xbar.Unplaceable carrying
// a witness — never a wrong design, never a panic. The whole suite is a
// pure function of the seeds: a second run must reproduce placements and
// verdicts exactly.
func TestDefectSuiteBenchmarks(t *testing.T) {
	circuits := []string{"ctrl", "cavlc", "int2float"}
	rates := []float64{0.01, 0.05, 0.10}
	for _, name := range circuits {
		nw := bench.MustBuild(name)
		for _, rate := range rates {
			opts := Options{Method: labeling.MethodHeuristic, DefectRate: rate, DefectSeed: 42}
			run := func() (*Result, error) { return Synthesize(nw, opts) }
			res, err := run()
			if err != nil {
				var up *xbar.Unplaceable
				if !errors.As(err, &up) {
					t.Fatalf("%s @%g%%: non-typed failure: %v", name, 100*rate, err)
				}
				if up.LogicalRow < 0 && up.Stage != "dims" {
					t.Errorf("%s @%g%%: Unplaceable without a row witness: %+v", name, 100*rate, up)
				}
				// The unplaceable verdict must reproduce (the detail text may
				// differ on budget-limited exact solves, the type must not).
				if _, err2 := run(); err2 == nil || !errors.As(err2, new(*xbar.Unplaceable)) {
					t.Errorf("%s @%g%%: verdict not reproducible: %v vs %v", name, 100*rate, err, err2)
				}
				continue
			}
			if res.Placement == nil || res.Effective == nil || res.Defects == nil {
				t.Fatalf("%s @%g%%: result missing placement fields", name, 100*rate)
			}
			if res.RepairAttempts < 1 {
				t.Fatalf("%s @%g%%: RepairAttempts = %d", name, 100*rate, res.RepairAttempts)
			}
			if err := xbar.FormalVerify(res.Effective, nw, 0); err != nil {
				t.Fatalf("%s @%g%%: effective design fails formal verification: %v", name, 100*rate, err)
			}
			res2, err := run()
			if err != nil {
				t.Fatalf("%s @%g%%: second run failed: %v", name, 100*rate, err)
			}
			if !equalPerm(res.Placement.RowPerm, res2.Placement.RowPerm) ||
				!equalPerm(res.Placement.ColPerm, res2.Placement.ColPerm) {
				t.Errorf("%s @%g%%: placement not deterministic", name, 100*rate)
			}
			if res.Defects.Digest() != res2.Defects.Digest() {
				t.Errorf("%s @%g%%: defect map not deterministic", name, 100*rate)
			}
		}
	}
}

func equalPerm(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func smallNetwork() *logic.Network {
	b := logic.NewBuilder("small")
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	b.Output("f", b.Or(b.And(x, y), b.And(b.Not(x), z)))
	b.Output("g", b.Xor(x, y, z))
	return b.Build()
}

func TestSynthesizeWithExplicitDefects(t *testing.T) {
	nw := smallNetwork()
	clean, err := Synthesize(nw, Options{Method: labeling.MethodHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	// One spare row/column beyond the design, with faults dense enough to
	// force a real (non-identity) placement for at least some seeds.
	dm, err := defect.Generate(clean.Design.Rows+1, clean.Design.Cols+1, 0.15, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(nw, Options{Method: labeling.MethodHeuristic, Defects: dm, DefectSeed: 3})
	if err != nil {
		var up *xbar.Unplaceable
		if !errors.As(err, &up) {
			t.Fatalf("non-typed failure: %v", err)
		}
		t.Skipf("instance unplaceable (typed, witnessed): %v", up)
	}
	if err := xbar.FormalVerify(res.Effective, nw, 0); err != nil {
		t.Fatalf("effective design fails formal verification: %v", err)
	}
	view := res.View()
	if view.Placement == nil {
		t.Fatal("view missing placement")
	}
	if view.Placement.Defects != dm.Len() || view.Placement.DefectsDigest != dm.Digest() {
		t.Errorf("view placement misreports the defect map: %+v", view.Placement)
	}
	if view.Placement.RepairAttempts != res.RepairAttempts {
		t.Errorf("view repair attempts %d != result %d", view.Placement.RepairAttempts, res.RepairAttempts)
	}
}

func TestDefectRepairLoopRecoversFromCorruption(t *testing.T) {
	t.Setenv(faultinject.EnvVar, "place=corrupt")
	nw := smallNetwork()
	res, err := Synthesize(nw, Options{Method: labeling.MethodHeuristic, DefectRate: 0.02, DefectSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.RepairAttempts < 2 {
		t.Fatalf("corrupted first attempt not retried: RepairAttempts = %d", res.RepairAttempts)
	}
	if err := xbar.FormalVerify(res.Effective, nw, 0); err != nil {
		t.Fatalf("repaired design fails formal verification: %v", err)
	}
}

// TestRepairLoopBailsOnRepeatedPlacement pins the repair loop's
// termination behavior when verification genuinely fails: every placement
// engine is deterministic, so once the exact engine reproduces a binding
// that already failed verification the loop must give up immediately
// instead of burning the whole attempt budget re-verifying the same
// placement. The persistent failure is simulated by verifying against a
// network the design does not implement.
func TestRepairLoopBailsOnRepeatedPlacement(t *testing.T) {
	res, err := Synthesize(smallNetwork(), Options{Method: labeling.MethodHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	b := logic.NewBuilder("other")
	x, y, z := b.Input("x"), b.Input("y"), b.Input("z")
	b.Output("f", b.And(x, y, z))
	b.Output("g", b.Or(x, z))
	r := &Result{Design: res.Design, network: b.Build()}
	// A fault-free map sized to the design: every engine returns the
	// identity binding, so the loop cannot explore anything new.
	dm, err := defect.New(res.Design.Rows, res.Design.Cols)
	if err != nil {
		t.Fatal(err)
	}
	err = r.placeWithRepair(context.Background(), dm, Options{MaxRepairAttempts: 25}.Canonical())
	if err == nil {
		t.Fatal("verification against a mismatched network succeeded")
	}
	if !strings.Contains(err.Error(), "already failed verification") {
		t.Fatalf("repair loop did not report the repeated placement: %v", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("repair loop burned attempts on a repeated placement: %v", err)
	}
}

func TestDefectROBDDModeUsesSimulationVerify(t *testing.T) {
	nw := smallNetwork()
	res, err := Synthesize(nw, Options{
		Method: labeling.MethodHeuristic, BDDKind: SeparateROBDDs,
		DefectRate: 0.02, DefectSeed: 5,
	})
	if err != nil {
		var up *xbar.Unplaceable
		if !errors.As(err, &up) {
			t.Fatalf("non-typed failure: %v", err)
		}
		return
	}
	if bad := res.Effective.VerifyAgainst(nw.Eval, nw.NumInputs(), nw.NumInputs(), 0, 1); bad != nil {
		t.Fatalf("effective ROBDD-mode design disagrees on %v", bad)
	}
}

func TestDefectOptionsValidation(t *testing.T) {
	nw := smallNetwork()
	for _, opts := range []Options{
		{DefectRate: -0.1},
		{DefectRate: 1},
		{DefectOnFraction: 2},
		{DefectOnFraction: -1},
		{MaxRepairAttempts: -1},
	} {
		if _, err := Synthesize(nw, opts); err == nil {
			t.Errorf("options %+v accepted", opts)
		}
	}
}

func TestDefectOptionsKey(t *testing.T) {
	base := Options{}.Key()
	withRate := Options{DefectRate: 0.05}.Key()
	if base == withRate {
		t.Error("defect rate not part of the options key")
	}
	dm, err := defect.Generate(4, 4, 0.2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	withMap := Options{Defects: dm}.Key()
	if withMap == base || withMap == withRate {
		t.Error("defect map not part of the options key")
	}
	dm2, err := defect.Generate(4, 4, 0.2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if (Options{Defects: dm2}).Key() != withMap {
		t.Error("identical defect maps produce different keys")
	}
	if (Options{DefectSeed: 9}).Key() == base {
		t.Error("defect seed not part of the options key")
	}
}

// TestFaultInjectionStageBoundaries drives each pipeline-stage hook and
// asserts the documented degraded response: a structured error wrapping
// faultinject.ErrInjected (or labeling.ErrInfeasible for the site-specific
// mode) — never a panic, never a wrong result.
func TestFaultInjectionStageBoundaries(t *testing.T) {
	nw := smallNetwork()
	for _, tc := range []struct {
		spec string
		want error
	}{
		{"bdd", faultinject.ErrInjected},
		{"bdd=timeout", faultinject.ErrInjected},
		{"labeling", faultinject.ErrInjected},
		{"labeling=infeasible", labeling.ErrInfeasible},
		{"xbar", faultinject.ErrInjected},
		{"place", faultinject.ErrInjected},
	} {
		t.Run(tc.spec, func(t *testing.T) {
			t.Setenv(faultinject.EnvVar, tc.spec)
			opts := Options{Method: labeling.MethodHeuristic}
			if strings.HasPrefix(tc.spec, "place") {
				opts.DefectRate = 0.02
			}
			_, err := Synthesize(nw, opts)
			if !errors.Is(err, tc.want) {
				t.Fatalf("spec %q: error %v does not wrap %v", tc.spec, err, tc.want)
			}
		})
	}
	// And with injection off again, the same synthesis succeeds.
	t.Setenv(faultinject.EnvVar, "")
	if _, err := Synthesize(nw, Options{Method: labeling.MethodHeuristic, DefectRate: 0.02}); err != nil {
		if up := new(xbar.Unplaceable); !errors.As(err, &up) {
			t.Fatalf("clean run failed: %v", err)
		}
	}
}

// placedMargin scores a placed result the same way the margin-aware loop
// does: worst-case simulated voltage margin of the logical design bound to
// the defective array.
func placedMargin(t *testing.T, res *Result, dm *defect.Map, seed uint64) float64 {
	t.Helper()
	rep, err := spice.MarginContext(context.Background(), res.Design, res.Design.Eval,
		len(res.Design.VarNames), marginExhaustiveLimit, marginSamples,
		spice.Env{Model: spice.Default(), Defects: dm, Placement: res.Placement}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return rep.MinOn - rep.MaxOff
}

// TestMarginAwarePlacementImprovesMargin is the before/after proof for the
// placement secondary objective. The defect map adds one spare wordline
// and bitline and sticks ON the two devices joining the spare bitline to
// the physical lines that, under the identity placement, carry the input
// wordline and the first output wordline — an analog sneak bridge straight
// around the logic. Identity remains perfectly *compatible* (the faults
// touch a spare bitline), so the plain repair loop happily returns it; the
// margin-aware loop must notice the collapsed margin and pick a binding
// that keeps the bridge away, at identical array size and semiperimeter.
func TestMarginAwarePlacementImprovesMargin(t *testing.T) {
	nw := smallNetwork()
	clean, err := Synthesize(nw, Options{Method: labeling.MethodHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	d := clean.Design
	dm, err := defect.New(d.Rows+1, d.Cols+1)
	if err != nil {
		t.Fatal(err)
	}
	spareCol := d.Cols
	if err := dm.Set(d.InputRow, spareCol, defect.StuckOn); err != nil {
		t.Fatal(err)
	}
	if err := dm.Set(d.OutputRows[0], spareCol, defect.StuckOn); err != nil {
		t.Fatal(err)
	}

	base := Options{Method: labeling.MethodHeuristic, Defects: dm, DefectSeed: 5}
	plain, err := Synthesize(nw, base)
	if err != nil {
		t.Fatal(err)
	}
	aware := base
	aware.MarginAware = true
	tuned, err := Synthesize(nw, aware)
	if err != nil {
		t.Fatal(err)
	}

	// Both paths must deliver verified hardware of identical dimensions.
	for _, res := range []*Result{plain, tuned} {
		if err := xbar.FormalVerify(res.Effective, nw, 0); err != nil {
			t.Fatalf("effective design fails formal verification: %v", err)
		}
	}
	if tuned.Design.Rows != plain.Design.Rows || tuned.Design.Cols != plain.Design.Cols {
		t.Fatalf("margin-aware changed the design dimensions: %dx%d vs %dx%d",
			tuned.Design.Rows, tuned.Design.Cols, plain.Design.Rows, plain.Design.Cols)
	}

	mPlain := placedMargin(t, plain, dm, base.DefectSeed)
	mAware := placedMargin(t, tuned, dm, base.DefectSeed)
	t.Logf("worst-case margin: plain %.4f, margin-aware %.4f", mPlain, mAware)
	if mAware < mPlain {
		t.Errorf("margin-aware placement is worse than plain: %.4f < %.4f", mAware, mPlain)
	}
	if mAware <= mPlain {
		t.Errorf("margin-aware placement did not improve on the sneak-bridged identity: plain %.4f, aware %.4f", mPlain, mAware)
	}

	// Determinism: the tuned placement is a pure function of its inputs.
	tuned2, err := Synthesize(nw, aware)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPerm(tuned.Placement.RowPerm, tuned2.Placement.RowPerm) ||
		!equalPerm(tuned.Placement.ColPerm, tuned2.Placement.ColPerm) {
		t.Errorf("margin-aware placement not deterministic")
	}
}

// TestMarginAwareNoFaultsMatchesPlain pins the tie rule: on a fault-free
// array the candidate set is exactly the identity placement, so the
// margin-aware and plain loops return identical results (and identical
// cache keys would be wasteful — Key must still differ, since the option
// changes behavior on other inputs).
func TestMarginAwareNoFaultsMatchesPlain(t *testing.T) {
	nw := smallNetwork()
	clean, err := Synthesize(nw, Options{Method: labeling.MethodHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := defect.New(clean.Design.Rows, clean.Design.Cols)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Method: labeling.MethodHeuristic, Defects: dm, DefectSeed: 1}
	plain, err := Synthesize(nw, base)
	if err != nil {
		t.Fatal(err)
	}
	aware := base
	aware.MarginAware = true
	tuned, err := Synthesize(nw, aware)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPerm(plain.Placement.RowPerm, tuned.Placement.RowPerm) ||
		!equalPerm(plain.Placement.ColPerm, tuned.Placement.ColPerm) {
		t.Errorf("fault-free margin-aware placement diverged from plain: %v/%v vs %v/%v",
			tuned.Placement.RowPerm, tuned.Placement.ColPerm, plain.Placement.RowPerm, plain.Placement.ColPerm)
	}
	if base.Key() == aware.Key() {
		t.Error("MarginAware does not enter the options key")
	}
}

package core

import (
	"strings"
	"testing"
	"time"

	"compact/internal/labeling"
	"compact/internal/logic"
)

func TestOptionsCanonicalGammaRule(t *testing.T) {
	// Unset gamma resolves to the paper default.
	c := Options{}.Canonical()
	if c.Gamma != 0.5 || !c.GammaSet {
		t.Fatalf("zero options canonicalize to Gamma=%v GammaSet=%v, want 0.5/true", c.Gamma, c.GammaSet)
	}
	// Explicit zero survives.
	c = Options{Gamma: 0, GammaSet: true}.Canonical()
	if c.Gamma != 0 {
		t.Fatalf("explicit Gamma=0 canonicalized to %v", c.Gamma)
	}
	// Non-zero gamma is literal regardless of GammaSet.
	c = Options{Gamma: 0.25}.Canonical()
	if c.Gamma != 0.25 || !c.GammaSet {
		t.Fatalf("Gamma=0.25 canonicalized to %v/%v", c.Gamma, c.GammaSet)
	}
	if c := (Options{}).Canonical(); c.NodeLimit != DefaultNodeLimit {
		t.Fatalf("NodeLimit default = %d, want %d", c.NodeLimit, DefaultNodeLimit)
	}
	// Canonical must not alias the caller's VarOrder.
	ord := []int{1, 0}
	c = Options{VarOrder: ord}.Canonical()
	ord[0] = 99
	if c.VarOrder[0] != 1 {
		t.Fatal("Canonical aliased the caller's VarOrder slice")
	}
}

func TestOptionsValidate(t *testing.T) {
	valid := []Options{
		{},
		{Gamma: 0, GammaSet: true},
		{Gamma: 1},
		{Method: labeling.MethodPortfolio, TimeLimit: time.Second},
		{VarOrder: []int{2, 0, 1}},
	}
	for i, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("valid options %d rejected: %v", i, err)
		}
	}
	invalid := []struct {
		o    Options
		want string
	}{
		{Options{Gamma: 1.5}, "outside [0,1]"},
		{Options{Gamma: -0.1, GammaSet: true}, "outside [0,1]"},
		{Options{Method: labeling.Method(99)}, "method"},
		{Options{BDDKind: BDDKind(7)}, "BDDKind"},
		{Options{TimeLimit: -time.Second}, "TimeLimit"},
		{Options{NodeLimit: -1}, "NodeLimit"},
		{Options{MaxRows: -2}, "MaxRows"},
		{Options{VarOrder: []int{0, 0}}, "permutation"},
		{Options{VarOrder: []int{0, 2}}, "permutation"},
	}
	for i, tc := range invalid {
		err := tc.o.Validate()
		if err == nil {
			t.Errorf("invalid options %d accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("invalid options %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestOptionsKeyStability(t *testing.T) {
	// Spelled-out defaults and the zero value share a key.
	a := Options{}.Key()
	b := Options{Gamma: 0.5, GammaSet: true, NodeLimit: DefaultNodeLimit}.Key()
	if a != b {
		t.Fatalf("default spellings key differently:\n%s\n%s", a, b)
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Fatalf("malformed key %q", a)
	}
	// Semantic differences change the key.
	diffs := []Options{
		{Gamma: 0, GammaSet: true},
		{Gamma: 0.7},
		{Method: labeling.MethodMIP},
		{BDDKind: SeparateROBDDs},
		{NoAlign: true},
		{TimeLimit: time.Second},
		{Sift: true},
		{VarOrder: []int{0}},
		{MaxRows: 8},
	}
	seen := map[string]int{a: -1}
	for i, o := range diffs {
		k := o.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("options %d and %d share key %s", i, j, k)
		}
		seen[k] = i
	}
}

func TestSynthesizeRejectsInvalidOptions(t *testing.T) {
	b := logic.NewBuilder("tiny")
	b.Output("f", b.And(b.Input("a"), b.Input("b")))
	nw := b.Build()
	if _, err := Synthesize(nw, Options{Gamma: 2}); err == nil || !strings.Contains(err.Error(), "invalid options") {
		t.Fatalf("Synthesize(Gamma=2) = %v, want invalid-options error", err)
	}
}

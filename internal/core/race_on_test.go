//go:build race

package core

// raceEnabled reports whether the race detector is compiled in, so tests
// with wall-clock solver budgets can scale them to the instrumented
// slowdown.
const raceEnabled = true

package lint

// DefaultAnalyzers returns the repository's configured analyzer suite for
// the module with the given root import path (e.g. "compact"):
//
//	floatcmp      exact float ==/!= anywhere in the module
//	panicfree     panics reachable from the modPath façade package
//	errdrop       silently discarded error returns
//	mutableglobal package-level state written at runtime
//	ctxbound      solver entry points without a resource bound
func DefaultAnalyzers(modPath string) []*Analyzer {
	solverPkgs := []string{
		modPath + "/internal/ilp",
		modPath + "/internal/graph",
		modPath + "/internal/oct",
		modPath + "/internal/labeling",
		modPath + "/internal/bdd",
		modPath + "/internal/xbar",
	}
	return []*Analyzer{
		Floatcmp(),
		Panicfree(modPath),
		Errdrop(),
		Mutableglobal(),
		Ctxbound(solverPkgs),
	}
}

package lint

// DefaultAnalyzers returns the repository's configured analyzer suite for
// the module with the given root import path (e.g. "compact"):
//
//	floatcmp      exact float ==/!= anywhere in the module
//	panicfree     panics reachable from the façade API or a cmd/* main
//	errdrop       silently discarded error returns
//	mutableglobal package-level state written at runtime
//	ctxbound      solver entry points without a resource bound
//	allocbound    wire-decoded sizes must be bounds-checked before make
//	ctxflow       no context.Background()/TODO() on paths into solvers
//	gospawn       goroutines must be lifecycle-tied
//	staleignore   //lint:ignore directives must still suppress something
//
// The last four run on compactflow, the interprocedural dataflow layer in
// flow.go.
func DefaultAnalyzers(modPath string) []*Analyzer {
	solverPkgs := []string{
		modPath + "/internal/ilp",
		modPath + "/internal/graph",
		modPath + "/internal/oct",
		modPath + "/internal/labeling",
		modPath + "/internal/bdd",
		modPath + "/internal/xbar",
		modPath + "/internal/xbar3d",
		modPath + "/internal/spice",
	}
	wirePkgs := []string{
		modPath + "/internal/xbar",
		modPath + "/internal/xbar3d",
		modPath + "/internal/defect",
		modPath + "/internal/partition",
		modPath + "/internal/server",
	}
	parsePkgs := []string{
		modPath + "/internal/pla",
	}
	return []*Analyzer{
		Floatcmp(),
		Panicfree(modPath, modPath+"/cmd/*"),
		Errdrop(),
		Mutableglobal(),
		Ctxbound(solverPkgs),
		Allocbound(modPath, wirePkgs, parsePkgs),
		Ctxflow([]string{modPath + "/internal/"}, solverPkgs),
		Gospawn(),
		Staleignore(),
	}
}

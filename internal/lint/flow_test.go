package lint

import (
	"bufio"
	"fmt"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// flowmodCache loads the synthetic testdata/flowmod module once per test
// binary: LoadModule type-checks the standard library from source, which
// is the expensive part, and the Program is read-only for every consumer.
var flowmodCache struct {
	once sync.Once
	prog *Program
	err  error
}

func loadFlowmod(t *testing.T) *Program {
	t.Helper()
	flowmodCache.once.Do(func() {
		flowmodCache.prog, flowmodCache.err = LoadModule(filepath.Join("testdata", "flowmod"))
	})
	if flowmodCache.err != nil {
		t.Fatalf("LoadModule(flowmod): %v", flowmodCache.err)
	}
	return flowmodCache.prog
}

// flowmodAnalyzers is the suite the marker test runs: the four ISSUE-6
// analyzers configured for the synthetic module.
func flowmodAnalyzers() []*Analyzer {
	return []*Analyzer{
		Allocbound("flowmod", []string{"flowmod/wire", "flowmod/regress"}, []string{"flowmod/wire"}),
		Ctxflow([]string{"flowmod/lib"}, []string{"flowmod/solver"}),
		Gospawn(),
		Staleignore(),
	}
}

// moduleWantSet recursively collects "// want <analyzer>" markers under
// root, keyed "basename:analyzer:line" (basenames are unique across the
// fixture module).
func moduleWantSet(t *testing.T, root string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			for _, an := range strings.Fields(text[i+len("// want "):]) {
				want[fmt.Sprintf("%s:%s:%d", d.Name(), an, line)] = true
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFlowmodMarkers runs the four dataflow analyzers over the synthetic
// module and compares every diagnostic against the // want markers:
// missing findings and false positives both fail.
func TestFlowmodMarkers(t *testing.T) {
	prog := loadFlowmod(t)
	diags := RunAnalyzers(prog, flowmodAnalyzers())
	want := moduleWantSet(t, filepath.Join("testdata", "flowmod"))
	got := make(map[string]bool)
	for _, d := range diags {
		got[fmt.Sprintf("%s:%s:%d", filepath.Base(d.Pos.Filename), d.Analyzer, d.Pos.Line)] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing expected finding %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected finding %s", k)
		}
	}
}

// TestFlowmodRegressions pins the historical OOM decoders: the pre-fix
// copies in regress/ must each be flagged by allocbound (the third entry
// is the layered-decoder shape of the same class, guarded in
// xbar3d.NewDesign3D).
func TestFlowmodRegressions(t *testing.T) {
	prog := loadFlowmod(t)
	diags := RunAnalyzers(prog, flowmodAnalyzers())
	for _, file := range []string{"regress_defect.go", "regress_tile.go", "regress_design3d.go"} {
		found := false
		for _, d := range diags {
			if filepath.Base(d.Pos.Filename) == file && d.Analyzer == "allocbound" {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: historical OOM decoder no longer flagged by allocbound", file)
		}
	}
}

// TestStaleignoreOnlyWhenEnabled checks staleignore stays inert unless it
// is in the analyzer list, so a -run subset cannot false-flag directives
// for analyzers that did not run.
func TestStaleignoreOnlyWhenEnabled(t *testing.T) {
	prog := loadFlowmod(t)
	diags := RunAnalyzers(prog, []*Analyzer{Gospawn()})
	for _, d := range diags {
		if d.Analyzer == "staleignore" {
			t.Errorf("staleignore finding without the analyzer enabled: %v", d)
		}
	}
}

// --- call-graph golden tests ---------------------------------------------

// graphName renders a function the way the golden tables name it.
func graphName(fn *types.Func) string {
	if r := receiverTypeName(fn); r != "" {
		return r + "." + fn.Name()
	}
	return fn.Name()
}

func flowFuncByName(t *testing.T, g *flowGraph, pkgPath, name string) *flowFunc {
	t.Helper()
	for _, ff := range g.order {
		if ff.pkg.Path == pkgPath && graphName(ff.fn) == name {
			return ff
		}
	}
	t.Fatalf("function %s not found in %s", name, pkgPath)
	return nil
}

// resolvedCallees returns the sorted set of module functions ff's edges
// reach after dispatch resolution.
func resolvedCallees(g *flowGraph, ff *flowFunc) []string {
	seen := make(map[string]bool)
	for _, e := range ff.edges {
		for _, callee := range g.resolve(e) {
			seen[graphName(callee.fn)] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TestFlowGraphGolden pins the resolved call edges of the graphdemo
// fixture: static branches, interface dispatch fan-out, and dynamic
// function/method value references.
func TestFlowGraphGolden(t *testing.T) {
	g := loadFlowmod(t).flow()
	const pkg = "flowmod/graphdemo"
	want := map[string][]string{
		"Dispatch":         {"Fast.Run", "Slow.Run"},
		"Branches":         {"leaf", "step"},
		"TakesValue":       {"step"},
		"TakesMethodValue": {"Fast.Run"},
		"Slow.Run":         {"step"},
		"leaf":             {},
	}
	for name, callees := range want {
		ff := flowFuncByName(t, g, pkg, name)
		got := resolvedCallees(g, ff)
		if len(got) == 0 && len(callees) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, callees) {
			t.Errorf("%s: resolved callees = %v, want %v", name, got, callees)
		}
	}

	// Dispatch's interface call and the value references are dynamic;
	// Branches' direct calls are not.
	for _, e := range flowFuncByName(t, g, pkg, "Dispatch").edges {
		if !e.dynamic {
			t.Errorf("Dispatch edge to %s: want dynamic (interface dispatch)", e.callee.Name())
		}
	}
	for _, e := range flowFuncByName(t, g, pkg, "Branches").edges {
		if e.dynamic {
			t.Errorf("Branches edge to %s: want static", e.callee.Name())
		}
	}
	for _, e := range flowFuncByName(t, g, pkg, "TakesValue").edges {
		if !e.dynamic || e.call != nil {
			t.Errorf("TakesValue edge: want dynamic value reference, got dynamic=%v call=%v", e.dynamic, e.call)
		}
	}

	// Reverse edges: step's callers.
	step := flowFuncByName(t, g, pkg, "step")
	var callers []string
	for _, c := range step.callers {
		callers = append(callers, graphName(c.fn))
	}
	sort.Strings(callers)
	if want := []string{"Branches", "Slow.Run", "TakesValue"}; !reflect.DeepEqual(callers, want) {
		t.Errorf("step callers = %v, want %v", callers, want)
	}
}

// TestTaintSummaries drives the allocbound config over flowmod and
// inspects the interprocedural summaries directly: result taint out of a
// helper, parameter taint into a helper, and cleanliness after a
// sanitizer.
func TestTaintSummaries(t *testing.T) {
	prog := loadFlowmod(t)
	g := prog.flow()
	cfg := allocboundConfig("flowmod", []string{"flowmod/wire", "flowmod/regress"}, []string{"flowmod/wire"})
	st := newTaintState(prog, cfg)
	st.run()

	parse := flowFuncByName(t, g, "flowmod/wire", "parseCount")
	if fs := st.fstate[parse.fn]; fs == nil || len(fs.results) == 0 || fs.results[0] == nil {
		t.Errorf("parseCount: result summary should be tainted (strconv source)")
	}

	alloc := flowFuncByName(t, g, "flowmod/wire", "allocFor")
	if fs := st.fstate[alloc.fn]; fs == nil || len(fs.params) == 0 || fs.params[0] == nil {
		t.Errorf("allocFor: parameter summary should be tainted (BadCallerTaint passes wire data)")
	}

	checked := flowFuncByName(t, g, "flowmod/wire", "GoodChecked")
	if fs := st.fstate[checked.fn]; fs != nil && len(fs.results) > 0 && fs.results[0] != nil {
		t.Errorf("GoodChecked: result summary should be clean after wirelimit.CheckDim")
	}
}

// TestCarriesSize pins the type filter that keeps allocbound focused on
// sizes: signed ints carry, entropy and validated types do not.
func TestCarriesSize(t *testing.T) {
	carries := func(t types.Type) bool {
		return carriesSize(t, "flowmod", make(map[types.Type]bool))
	}
	intT := types.Typ[types.Int]
	if !carries(intT) {
		t.Error("int must carry size taint")
	}
	if carries(types.Typ[types.Uint64]) {
		t.Error("uint64 (seeds, hashes) must not carry")
	}
	if carries(types.Typ[types.String]) {
		t.Error("string must not carry")
	}
	if !carries(types.NewSlice(intT)) {
		t.Error("[]int must carry (element does)")
	}
	if carries(types.NewSlice(types.Typ[types.String])) {
		t.Error("[]string must not carry")
	}
	fields := []*types.Var{
		types.NewField(0, nil, "Name", types.Typ[types.String], false),
		types.NewField(0, nil, "Rows", intT, false),
	}
	st := types.NewStruct(fields, nil)
	if !carries(st) {
		t.Error("struct with an int field must carry")
	}
	// A self-referential type must not send the walk into a loop.
	named := types.NewNamed(types.NewTypeName(0, nil, "node", nil), nil, nil)
	named.SetUnderlying(types.NewStruct([]*types.Var{
		types.NewField(0, nil, "next", types.NewPointer(named), false),
	}, nil))
	if carries(named) {
		t.Error("pointer-only self-referential struct must not carry")
	}
}

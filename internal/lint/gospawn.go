package lint

// gospawn requires every `go` statement in library code to be tied to a
// lifecycle, so a goroutine cannot outlive the work that spawned it
// unobserved. A spawn passes if the goroutine's body (or, one call level
// deep, a module function it invokes) shows any of:
//
//   - sync.WaitGroup participation (a Done call),
//   - a completion signal (a channel send or a close call), or
//   - context awareness (a ctx.Done() wait, or the goroutine runs a
//     function that takes a context.Context).
//
// Detached fire-and-forget goroutines — the thing that turns into leaks
// and shutdown races once compactd scales out — have none of these.

import (
	"go/ast"
	"go/types"
)

// Gospawn returns the analyzer.
func Gospawn() *Analyzer {
	return &Analyzer{
		Name: "gospawn",
		Doc:  "go statements must be lifecycle-tied: WaitGroup, channel signal, or context",
		RunProgram: func(pass *Pass) {
			g := pass.Prog.flow()
			for _, ff := range g.order {
				ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if !spawnIsTied(g, ff.pkg, gs.Call, 2, make(map[*flowFunc]bool)) {
						pass.Reportf(gs.Pos(),
							"goroutine is not tied to any lifecycle (no WaitGroup, channel signal, or context); use a pool, WaitGroup, or ctx-bounded loop")
					}
					return true
				})
			}
		},
	}
}

// spawnIsTied checks the spawned call for lifecycle evidence, following
// direct calls to module functions up to depth levels deep.
func spawnIsTied(g *flowGraph, pkg *Package, call *ast.CallExpr, depth int, seen map[*flowFunc]bool) bool {
	// A goroutine handed a context is ctx-bounded by contract.
	for _, arg := range call.Args {
		if tv, ok := pkg.Info.Types[arg]; ok && tv.Type != nil && isContextType(tv.Type) {
			return true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return bodyShowsLifecycle(g, pkg, fun.Body, depth, seen)
	default:
		if callee := calleeFunc(pkg.Info, call); callee != nil {
			if sig, ok := callee.Type().(*types.Signature); ok {
				for i := 0; i < sig.Params().Len(); i++ {
					if isContextType(sig.Params().At(i).Type()) {
						return true
					}
				}
			}
			if ff, ok := g.funcs[callee]; ok && depth > 0 && !seen[ff] {
				seen[ff] = true
				return bodyShowsLifecycle(g, ff.pkg, ff.decl.Body, depth-1, seen)
			}
		}
	}
	return false
}

// bodyShowsLifecycle scans a body for WaitGroup.Done, channel sends or
// close calls, ctx.Done() waits, or (recursively) module callees that show
// one.
func bodyShowsLifecycle(g *flowGraph, pkg *Package, body *ast.BlockStmt, depth int, seen map[*flowFunc]bool) bool {
	if body == nil {
		return false
	}
	info := pkg.Info
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			tied = true
		case *ast.CallExpr:
			if isBuiltin(info, x, "close") {
				tied = true
				return false
			}
			callee := calleeFunc(info, x)
			if callee == nil {
				return true
			}
			if isWaitGroupDone(callee) || isContextDone(callee) {
				tied = true
				return false
			}
			if ff, ok := g.funcs[callee]; ok && depth > 0 && !seen[ff] {
				seen[ff] = true
				if bodyShowsLifecycle(g, ff.pkg, ff.decl.Body, depth-1, seen) {
					tied = true
					return false
				}
			}
		}
		return true
	})
	return tied
}

// isWaitGroupDone matches (*sync.WaitGroup).Done.
func isWaitGroupDone(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
		receiverTypeName(fn) == "WaitGroup" && fn.Name() == "Done"
}

// isContextDone matches context.Context.Done.
func isContextDone(fn *types.Func) bool {
	if fn.Name() != "Done" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isContextType(sig.Recv().Type())
}

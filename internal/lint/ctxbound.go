package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxbound checks that exported solver entry points carry an explicit
// resource bound, the pattern xbar.FormalVerify(..., nodeLimit) and
// ilp.Solve(..., Options{TimeLimit}) already follow. COMPACT's exact
// solvers (vertex cover, branch & bound, BDD construction) are worst-case
// exponential; an entry point without a node/iteration/time budget is an
// unbounded computation handed to whoever wires the package into a service.
//
// A function is considered a solver entry point when it is exported, lives
// in one of the configured packages, and its name starts with one of:
// Solve, Find, Build, Search, Sift, Formal, Min, Max. It satisfies the rule
// when its signature carries any of:
//
//   - a context.Context, time.Duration or time.Time parameter (aliases of
//     these count too — the context-accepting SolveContext/FindContext
//     entry points satisfy the rule this way, since the caller's ctx
//     carries the deadline),
//   - an integer parameter whose name contains limit/budget/max, or
//   - a (pointer-to-)struct parameter with an exported field whose name
//     contains Limit, Budget or Deadline, or whose type is one of the
//     bound types above (e.g. Ctx context.Context).
//
// Polynomial-time entry points that genuinely need no budget are suppressed
// in place with //lint:ignore ctxbound <reason>.
func Ctxbound(pkgPaths []string) *Analyzer {
	scope := make(map[string]bool, len(pkgPaths))
	for _, p := range pkgPaths {
		scope[p] = true
	}
	return &Analyzer{
		Name: "ctxbound",
		Doc:  "flags exported solver entry points without a node/iteration/time bound",
		Run: func(pass *Pass) {
			if !scope[pass.Pkg.Path] {
				return
			}
			runCtxbound(pass)
		},
	}
}

var solverPrefixes = []string{"Solve", "Find", "Build", "Search", "Sift", "Formal", "Min", "Max"}

func runCtxbound(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || !hasSolverPrefix(fd.Name.Name) {
				continue
			}
			obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			if signatureHasBound(sig) {
				continue
			}
			pass.Reportf(fd.Name.Pos(), "exported solver entry point %s has no node/iteration/time bound in its signature", fd.Name.Name)
		}
	}
}

func hasSolverPrefix(name string) bool {
	for _, p := range solverPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// signatureHasBound reports whether any parameter provides a resource
// bound per the ctxbound rule.
func signatureHasBound(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if typeIsBound(p.Type()) {
			return true
		}
		if isBoundName(p.Name()) {
			if b, ok := p.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return true
			}
		}
		if st := structUnder(p.Type()); st != nil {
			for j := 0; j < st.NumFields(); j++ {
				fld := st.Field(j)
				if isBoundFieldName(fld.Name()) || typeIsBound(fld.Type()) {
					return true
				}
			}
		}
	}
	return false
}

// typeIsBound recognizes context.Context, time.Duration and time.Time,
// seeing through type aliases (`type Deadline = time.Time` etc.).
func typeIsBound(t types.Type) bool {
	switch tt := types.Unalias(t).(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() {
		case "time":
			return obj.Name() == "Duration" || obj.Name() == "Time"
		case "context":
			return obj.Name() == "Context"
		}
	case *types.Interface:
		// A bare interface parameter named ctx is not a recognized bound.
	}
	return false
}

func isBoundName(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "limit") || strings.Contains(n, "budget") || strings.Contains(n, "max")
}

func isBoundFieldName(name string) bool {
	return strings.Contains(name, "Limit") || strings.Contains(name, "Budget") || strings.Contains(name, "Deadline")
}

// structUnder unwraps aliases, pointers and named types down to a struct,
// or nil.
func structUnder(t types.Type) *types.Struct {
	t = types.Unalias(t)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

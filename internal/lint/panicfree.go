package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Panicfree proves (up to static-call-graph approximation) that no panic()
// is reachable from the public façade of the configured root package. A
// panic that escapes the library boundary crashes whatever service embeds
// the synthesizer; COMPACT's contract is that every failure mode — node
// limits, infeasible budgets, malformed networks — surfaces as a returned
// error.
//
// The root set is every exported function of the root package, plus the
// exported methods of every named type transitively reachable through root
// signatures (results and parameters) — the API surface a downstream user
// can actually touch, e.g. compact.Synthesize → *core.Result →
// Result.Verify → logic.Network.Eval.
//
// The call graph is a static over/under-approximation: direct function and
// method calls are followed (interface callees resolve to the interface
// method only, function values are not tracked), and panics inside function
// literals are attributed to the enclosing declared function. Deliberate
// panics — recover-based control flow à la encoding/json, or preconditions
// on programmer-controlled arguments — are suppressed in place with
// //lint:ignore panicfree <reason>.
func Panicfree(rootPkgPath string) *Analyzer {
	return &Analyzer{
		Name: "panicfree",
		Doc:  "flags panic() calls reachable from the root package's exported API",
		RunProgram: func(pass *Pass) {
			runPanicfree(pass, rootPkgPath)
		},
	}
}

// callGraph is a static call graph over declared functions.
type callGraph struct {
	calls  map[*types.Func][]*types.Func
	panics map[*types.Func][]token.Pos
}

func buildCallGraph(prog *Program) *callGraph {
	cg := &callGraph{
		calls:  make(map[*types.Func][]*types.Func),
		panics: make(map[*types.Func][]token.Pos),
	}
	for _, pkg := range prog.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if isBuiltin(info, call, "panic") {
						cg.panics[fn] = append(cg.panics[fn], call.Pos())
						return true
					}
					if callee := calleeFunc(info, call); callee != nil {
						cg.calls[fn] = append(cg.calls[fn], callee)
					}
					return true
				})
			}
		}
	}
	return cg
}

func runPanicfree(pass *Pass, rootPkgPath string) {
	root := pass.Prog.Lookup(rootPkgPath)
	if root == nil {
		return
	}
	cg := buildCallGraph(pass.Prog)
	roots := apiSurface(root.Types)

	// BFS over the call graph, recording one (shortest) parent chain per
	// reached function for the report.
	parent := make(map[*types.Func]*types.Func)
	seen := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, fn := range roots {
		if !seen[fn] {
			seen[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range cg.calls[fn] {
			if !seen[callee] {
				seen[callee] = true
				parent[callee] = fn
				queue = append(queue, callee)
			}
		}
	}

	for fn, sites := range cg.panics {
		if !seen[fn] {
			continue
		}
		chain := callChain(parent, fn)
		for _, pos := range sites {
			pass.Reportf(pos, "panic reachable from the %s façade (%s); return an error instead", root.Types.Name(), chain)
		}
	}
}

// apiSurface collects the exported functions of pkg plus exported methods
// of every named type transitively reachable through their signatures.
func apiSurface(pkg *types.Package) []*types.Func {
	var fns []*types.Func
	seenFn := make(map[*types.Func]bool)
	seenType := make(map[*types.Named]bool)

	var addFunc func(fn *types.Func)
	var addType func(t types.Type)

	addFunc = func(fn *types.Func) {
		if fn == nil || seenFn[fn] {
			return
		}
		seenFn[fn] = true
		fns = append(fns, fn)
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		for i := 0; i < sig.Params().Len(); i++ {
			addType(sig.Params().At(i).Type())
		}
		for i := 0; i < sig.Results().Len(); i++ {
			addType(sig.Results().At(i).Type())
		}
	}
	addType = func(t types.Type) {
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			addType(tt.Elem())
		case *types.Slice:
			addType(tt.Elem())
		case *types.Array:
			addType(tt.Elem())
		case *types.Map:
			addType(tt.Key())
			addType(tt.Elem())
		case *types.Chan:
			addType(tt.Elem())
		case *types.Named:
			if seenType[tt] {
				return
			}
			seenType[tt] = true
			ms := types.NewMethodSet(types.NewPointer(tt))
			for i := 0; i < ms.Len(); i++ {
				if m, ok := ms.At(i).Obj().(*types.Func); ok && m.Exported() {
					addFunc(m)
				}
			}
			if st, ok := tt.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i).Exported() {
						addType(st.Field(i).Type())
					}
				}
			}
		}
	}

	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			addFunc(o)
		case *types.TypeName:
			addType(o.Type())
		}
	}
	return fns
}

// callChain renders the parent chain root → … → fn, capped for legibility.
func callChain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var rev []string
	for f := fn; f != nil; f = parent[f] {
		rev = append(rev, funcDisplayName(f))
		if len(rev) > 8 {
			rev = append(rev, "…")
			break
		}
	}
	var b strings.Builder
	b.WriteString("via ")
	for i := len(rev) - 1; i >= 0; i-- {
		b.WriteString(rev[i])
		if i > 0 {
			b.WriteString(" → ")
		}
	}
	return b.String()
}

package lint

import (
	"go/types"
	"strings"
)

// Panicfree proves (up to static-call-graph approximation) that no panic()
// is reachable from the public façade of the configured root package. A
// panic that escapes the library boundary crashes whatever service embeds
// the synthesizer; COMPACT's contract is that every failure mode — node
// limits, infeasible budgets, malformed networks — surfaces as a returned
// error.
//
// The root set is every exported function of the root package, plus the
// exported methods of every named type transitively reachable through root
// signatures (results and parameters) — the API surface a downstream user
// can actually touch, e.g. compact.Synthesize → *core.Result →
// Result.Verify → logic.Network.Eval.
//
// The call graph is compactflow's (see flow.go): direct calls, conservative
// interface-dispatch fan-out, and function-value references are followed,
// and panics inside function literals are attributed to the enclosing
// declared function. Deliberate panics — recover-based control flow à la
// encoding/json, or preconditions on programmer-controlled arguments — are
// suppressed in place with //lint:ignore panicfree <reason>.
//
// Roots are package patterns: an exact import path contributes its API
// surface, a trailing "/*" wildcard matches a subtree, and a matched
// package named main contributes its main function — so cmd/* binaries are
// entry points too, not just the library façade.
func Panicfree(rootPatterns ...string) *Analyzer {
	return &Analyzer{
		Name: "panicfree",
		Doc:  "flags panic() calls reachable from entry-point roots (façade API, cmd mains)",
		RunProgram: func(pass *Pass) {
			runPanicfree(pass, rootPatterns)
		},
	}
}

func runPanicfree(pass *Pass, rootPatterns []string) {
	g := pass.Prog.flow()
	var roots []*types.Func
	for _, pkg := range pass.Prog.Pkgs {
		if !pkgPathIn(pkg.Path, rootPatterns) {
			continue
		}
		if pkg.Name == "main" {
			if fn, ok := pkg.Types.Scope().Lookup("main").(*types.Func); ok {
				roots = append(roots, fn)
			}
			continue
		}
		roots = append(roots, apiSurface(pkg.Types)...)
	}

	// BFS over the call graph, recording one (shortest) parent chain per
	// reached function for the report.
	parent := make(map[*types.Func]*types.Func)
	seen := make(map[*types.Func]bool)
	var queue []*types.Func
	enqueue := func(fn, from *types.Func) {
		if fn == nil || seen[fn] {
			return
		}
		seen[fn] = true
		parent[fn] = from
		queue = append(queue, fn)
	}
	for _, fn := range roots {
		enqueue(fn, nil)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		ff, ok := g.funcs[fn]
		if !ok {
			// Interface-method root: fan out to its implementers.
			for _, m := range g.impls[fn] {
				enqueue(m, fn)
			}
			continue
		}
		for _, e := range ff.edges {
			for _, callee := range g.resolve(e) {
				enqueue(callee.fn, fn)
			}
		}
	}

	for _, ff := range g.order {
		if !seen[ff.fn] || len(ff.panics) == 0 {
			continue
		}
		chain := callChain(parent, ff.fn)
		for _, pos := range ff.panics {
			pass.Reportf(pos, "panic reachable from an entry point (%s); return an error instead", chain)
		}
	}
}

// apiSurface collects the exported functions of pkg plus exported methods
// of every named type transitively reachable through their signatures.
func apiSurface(pkg *types.Package) []*types.Func {
	var fns []*types.Func
	seenFn := make(map[*types.Func]bool)
	seenType := make(map[*types.Named]bool)

	var addFunc func(fn *types.Func)
	var addType func(t types.Type)

	addFunc = func(fn *types.Func) {
		if fn == nil || seenFn[fn] {
			return
		}
		seenFn[fn] = true
		fns = append(fns, fn)
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return
		}
		for i := 0; i < sig.Params().Len(); i++ {
			addType(sig.Params().At(i).Type())
		}
		for i := 0; i < sig.Results().Len(); i++ {
			addType(sig.Results().At(i).Type())
		}
	}
	addType = func(t types.Type) {
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			addType(tt.Elem())
		case *types.Slice:
			addType(tt.Elem())
		case *types.Array:
			addType(tt.Elem())
		case *types.Map:
			addType(tt.Key())
			addType(tt.Elem())
		case *types.Chan:
			addType(tt.Elem())
		case *types.Named:
			if seenType[tt] {
				return
			}
			seenType[tt] = true
			ms := types.NewMethodSet(types.NewPointer(tt))
			for i := 0; i < ms.Len(); i++ {
				if m, ok := ms.At(i).Obj().(*types.Func); ok && m.Exported() {
					addFunc(m)
				}
			}
			if st, ok := tt.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if st.Field(i).Exported() {
						addType(st.Field(i).Type())
					}
				}
			}
		}
	}

	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch o := obj.(type) {
		case *types.Func:
			addFunc(o)
		case *types.TypeName:
			addType(o.Type())
		}
	}
	return fns
}

// callChain renders the parent chain root → … → fn, capped for legibility.
func callChain(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var rev []string
	for f := fn; f != nil; f = parent[f] {
		rev = append(rev, funcDisplayName(f))
		if len(rev) > 8 {
			rev = append(rev, "…")
			break
		}
	}
	var b strings.Builder
	b.WriteString("via ")
	for i := len(rev) - 1; i >= 0; i-- {
		b.WriteString(rev[i])
		if i > 0 {
			b.WriteString(" → ")
		}
	}
	return b.String()
}

// Package lint is a zero-dependency static-analysis framework for the
// COMPACT repository, built purely on the standard library's go/parser,
// go/ast, go/types and go/importer. It exists because COMPACT's correctness
// rests on invariants the compiler cannot see — exact float comparisons in
// the simplex, panics escaping the library façade, package-level mutable
// state that would break concurrent Synthesize calls — and those classes of
// bugs are cheap to machine-check at the source level.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis without
// importing it: an Analyzer inspects one type-checked package through a
// Pass (or, for whole-program analyses such as call-graph reachability, the
// entire Program) and reports Diagnostics. Findings can be suppressed at
// the source line with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. A directive
// without a reason is itself reported as a finding, so every suppression in
// the tree documents why the rule does not apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, located in the program's file set.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("compact/internal/ilp")
	Name  string // package name
	Dir   string // directory the files were read from
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a set of type-checked packages sharing one file set.
type Program struct {
	Fset   *token.FileSet
	Pkgs   []*Package // sorted by import path
	byPath map[string]*Package
	flowG  *flowGraph // lazily built by flow(), shared across analyzers
}

// Lookup returns the package with the given import path, or nil.
func (p *Program) Lookup(path string) *Package { return p.byPath[path] }

// Pass carries one package (for per-package analyzers) or the whole program
// (Pkg == nil, for program analyzers) plus the report sink.
type Pass struct {
	Prog     *Program
	Pkg      *Package
	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one lint rule. Exactly one of Run (invoked once per package)
// and RunProgram (invoked once with Pkg == nil) must be set.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass)
	RunProgram func(*Pass)
}

// ignoreDirective is a parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // names, or {"*": true}
	reason    string
	used      bool
}

// collectIgnores maps filename → line → directive for every
// //lint:ignore comment in the program. Malformed directives (no reason)
// are reported directly.
func collectIgnores(prog *Program, diags *[]Diagnostic) map[string]map[int]*ignoreDirective {
	out := make(map[string]map[int]*ignoreDirective)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						*diags = append(*diags, Diagnostic{
							Pos:      pos,
							Analyzer: "lintdirective",
							Message:  "malformed //lint:ignore: need \"//lint:ignore <analyzer> <reason>\"",
						})
						continue
					}
					d := &ignoreDirective{analyzers: make(map[string]bool), reason: strings.Join(fields[1:], " ")}
					for _, name := range strings.Split(fields[0], ",") {
						d.analyzers[name] = true
					}
					if out[pos.Filename] == nil {
						out[pos.Filename] = make(map[int]*ignoreDirective)
					}
					out[pos.Filename][pos.Line] = d
				}
			}
		}
	}
	return out
}

// matches reports whether the directive suppresses the given analyzer.
func (d *ignoreDirective) matches(analyzer string) bool {
	return d.analyzers["*"] || d.analyzers[analyzer]
}

// RunAnalyzers applies every analyzer to the program and returns the
// surviving (non-suppressed) diagnostics, sorted by position.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			a.RunProgram(&Pass{Prog: prog, analyzer: a.Name, diags: &raw})
		case a.Run != nil:
			for _, pkg := range prog.Pkgs {
				a.Run(&Pass{Prog: prog, Pkg: pkg, analyzer: a.Name, diags: &raw})
			}
		}
	}

	var out []Diagnostic
	ignores := collectIgnores(prog, &out)
	for _, d := range raw {
		if dir := lookupIgnore(ignores, d.Pos.Filename, d.Pos.Line); dir != nil && dir.matches(d.Analyzer) {
			dir.used = true
			continue
		}
		out = append(out, d)
	}
	reportStaleIgnores(analyzers, ignores, &out)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// reportStaleIgnores implements the staleignore analyzer: after filtering,
// any directive that suppressed nothing — and whose named analyzers all
// actually ran, so a -run subset cannot false-flag — is itself a finding.
// Active only when "staleignore" is in the analyzer list.
func reportStaleIgnores(analyzers []*Analyzer, ignores map[string]map[int]*ignoreDirective, out *[]Diagnostic) {
	ran := make(map[string]bool, len(analyzers))
	enabled := false
	for _, a := range analyzers {
		ran[a.Name] = true
		if a.Name == "staleignore" {
			enabled = true
		}
	}
	if !enabled {
		return
	}
	for file, byLine := range ignores {
		for line, dir := range byLine {
			if dir.used || dir.analyzers["*"] {
				continue
			}
			allRan := true
			names := make([]string, 0, len(dir.analyzers))
			for name := range dir.analyzers {
				names = append(names, name)
				if !ran[name] {
					allRan = false
				}
			}
			if !allRan {
				continue
			}
			sort.Strings(names)
			*out = append(*out, Diagnostic{
				Pos:      token.Position{Filename: file, Line: line, Column: 1},
				Analyzer: "staleignore",
				Message: fmt.Sprintf("//lint:ignore %s no longer suppresses any finding; delete it",
					strings.Join(names, ",")),
			})
		}
	}
}

// lookupIgnore finds a directive covering the given line: on the line
// itself (trailing comment) or the line directly above.
func lookupIgnore(ignores map[string]map[int]*ignoreDirective, file string, line int) *ignoreDirective {
	byLine := ignores[file]
	if byLine == nil {
		return nil
	}
	if d := byLine[line]; d != nil {
		return d
	}
	return byLine[line-1]
}

// --- small shared helpers used by several analyzers ----------------------

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFunc resolves the static callee of a call expression, or nil for
// dynamic calls (function values, interface methods are still resolved to
// the interface method object).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// funcDisplayName renders fn as pkg.Func or pkg.(Recv).Method.
func funcDisplayName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	pkg := fn.Pkg().Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if n, ok := rt.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", pkg, n.Obj().Name(), fn.Name())
		}
	}
	return pkg + "." + fn.Name()
}

package lint

import (
	"go/ast"
	"go/types"
)

// Errdrop flags call statements that silently discard a returned error: a
// call whose result list includes an error, used as a bare statement (or
// deferred). Assigning the error to the blank identifier (`_ = f()`) is an
// explicit, visible discard and is not flagged.
//
// Calls that provably cannot fail are exempt: fmt.Fprint* writing to a
// *strings.Builder or *bytes.Buffer, and methods on those two types (their
// Write methods are documented to never return a non-nil error). Print
// functions on the standard streams — fmt.Print/Printf/Println, and
// fmt.Fprint* directly to os.Stdout or os.Stderr — follow the standard
// library's own idiom (package flag drops these errors too) and are also
// exempt.
func Errdrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "flags statements that discard a returned error",
		Run:  runErrdrop,
	}
}

func runErrdrop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			if !returnsError(pass.Pkg.Info, call) || errdropExempt(pass.Pkg.Info, call) {
				return true
			}
			pass.Reportf(call.Pos(), "returned error is silently discarded; handle it or assign it to _ explicitly")
			return true
		})
	}
}

// returnsError reports whether the call's result list contains an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// errdropExempt identifies calls whose error is statically known to be nil
// or idiomatically ignored.
func errdropExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if pkg == "fmt" {
		switch name {
		case "Print", "Printf", "Println":
			return true // stdout printing, standard-library idiom
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) == 0 {
				return false
			}
			return isInfallibleWriter(info.Types[call.Args[0]].Type) || isStdStream(info, call.Args[0])
		}
		return false
	}
	// Methods on infallible writers (strings.Builder, bytes.Buffer).
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && isInfallibleWriter(sig.Recv().Type()) {
		return true
	}
	return false
}

// isStdStream reports whether the expression is exactly os.Stdout or
// os.Stderr.
func isStdStream(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Pkg().Path() == "os" && (v.Name() == "Stdout" || v.Name() == "Stderr")
}

// isInfallibleWriter reports whether t is *strings.Builder or *bytes.Buffer
// (whose Write methods never return a non-nil error).
func isInfallibleWriter(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	path, name := n.Obj().Pkg().Path(), n.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

package lint

// ctxflow extends ctxbound (PR 2) from entry-point signatures to whole
// paths: library code under the module's internal/ tree may not originate
// a context with context.Background() or context.TODO() and let it flow
// into a solver entry point — the context must come from the caller, or
// the deadline discipline the signatures promise is a fiction.
//
// Two origination idioms are exempt, because they are how a root context
// legitimately enters the tree:
//
//   - nil-guard fallback: the enclosing function compares a
//     context.Context against nil (`if ctx == nil { ctx = Background() }`)
//     — it accepts a caller context and only defaults when absent.
//   - bridge wrapper: Background() is passed directly as an argument in a
//     return-statement call to a *Context-suffixed function — the
//     one-line `Solve(x) { return SolveContext(ctx.Background(), x) }`
//     compatibility shims.
//
// WithTimeout/WithDeadline results are clean: a bounded context is the
// whole point of the rule.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Ctxflow returns the analyzer. scopePrefixes limits where originations
// are treated as sources (package path prefixes; empty means everywhere);
// sinkPkgs lists the packages whose exported entry points are sinks.
func Ctxflow(scopePrefixes, sinkPkgs []string) *Analyzer {
	exempt := make(map[*flowFunc]map[token.Pos]bool)
	cfg := &taintConfig{
		sourceCall: func(ff *flowFunc, call *ast.CallExpr, callee *types.Func) (int, string, bool) {
			if !calleeIs(callee, "context", "Background") && !calleeIs(callee, "context", "TODO") {
				return 0, "", false
			}
			if len(scopePrefixes) > 0 && !hasAnyPrefix(ff.pkg.Path, scopePrefixes) {
				return 0, "", false
			}
			if exempt[ff] == nil {
				exempt[ff] = ctxExemptSites(ff)
			}
			if exempt[ff][call.Pos()] {
				return 0, "", false
			}
			return -1, "context." + callee.Name() + "()", true
		},
		clean: func(callee *types.Func) bool {
			return calleeIs(callee, "context", "WithTimeout") ||
				calleeIs(callee, "context", "WithDeadline")
		},
		carries: isContextType,
		sinkArgs: func(ff *flowFunc, call *ast.CallExpr, callee *types.Func) (string, []int) {
			if callee == nil || callee.Pkg() == nil || !callee.Exported() {
				return "", nil
			}
			if !pkgPathIn(callee.Pkg().Path(), sinkPkgs) {
				return "", nil
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok {
				return "", nil
			}
			var idxs []int
			for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
				if isContextType(sig.Params().At(i).Type()) {
					idxs = append(idxs, i)
				}
			}
			return "solver entry " + funcDisplayName(callee), idxs
		},
		message: func(sinkDesc, srcDesc string, srcPos token.Position) string {
			return fmt.Sprintf("%s receives a context originated with %s (at %s:%d); accept the context from the caller instead",
				sinkDesc, srcDesc, relBase(srcPos.Filename), srcPos.Line)
		},
	}
	return &Analyzer{
		Name:       "ctxflow",
		Doc:        "internal code must not originate context.Background()/TODO() on paths into solver entry points",
		RunProgram: func(pass *Pass) { runTaint(pass, cfg) },
	}
}

// ctxExemptSites finds Background()/TODO() call positions in ff covered by
// the nil-guard or bridge idioms described above.
func ctxExemptSites(ff *flowFunc) map[token.Pos]bool {
	out := make(map[token.Pos]bool)
	info := ff.pkg.Info

	// Nil-guard: any ==/!= comparison against nil with a context-typed
	// operand anywhere in the function exempts every origination in it.
	nilGuarded := false
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return true
		}
		for _, side := range []ast.Expr{b.X, b.Y} {
			if tv, ok := info.Types[side]; ok && tv.Type != nil && isContextType(tv.Type) {
				other := b.Y
				if side == b.Y {
					other = b.X
				}
				if tv2, ok := info.Types[other]; ok && tv2.IsNil() {
					nilGuarded = true
				}
			}
		}
		return true
	})

	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if !calleeIs(callee, "context", "Background") && !calleeIs(callee, "context", "TODO") {
			return true
		}
		if nilGuarded {
			out[call.Pos()] = true
		}
		return true
	})

	// Bridge: Background() passed directly as an argument of a call that a
	// return statement invokes, where the callee name ends in "Context".
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			call, ok := ast.Unparen(r).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee := calleeFunc(info, call)
			if callee == nil || !strings.HasSuffix(callee.Name(), "Context") {
				continue
			}
			for _, arg := range call.Args {
				inner, ok := ast.Unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				ic := calleeFunc(info, inner)
				if calleeIs(ic, "context", "Background") || calleeIs(ic, "context", "TODO") {
					out[inner.Pos()] = true
				}
			}
		}
		return true
	})
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// hasAnyPrefix reports whether s starts with any element of prefixes.
func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}

// Package directive exercises malformed suppression directives: an ignore
// without a reason is itself a finding and suppresses nothing.
package directive

//lint:ignore floatcmp
func eq(a, b float64) bool { return a == b }

var _ = eq

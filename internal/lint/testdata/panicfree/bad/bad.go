// Package panicbad exercises panics reachable from the exported API
// surface: through a call chain, and through a method of a returned type.
package panicbad

// Do is exported API; the panic two calls down must be attributed to it.
func Do() {
	helper()
}

func helper() {
	deeper()
}

func deeper() {
	panic("boom") // want panicfree
}

// T joins the API surface through New's result type.
type T struct{}

// New returns T, pulling its exported methods into the root set.
func New() *T { return &T{} }

// Boom is reachable through New's result type.
func (t *T) Boom() {
	panic("method boom") // want panicfree
}

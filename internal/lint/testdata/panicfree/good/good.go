// Package panicgood holds panic usage the panicfree analyzer must accept:
// errors at the boundary, unreachable panics, and a documented suppression.
package panicgood

import "errors"

// Do is exported and returns errors instead of panicking.
func Do() error { return errors.New("no") }

// dead panics but is never called from the API surface.
func dead() {
	panic("unreachable")
}

// Checked is exported; its panic is suppressed with a documented reason.
func Checked(ok bool) {
	if !ok {
		//lint:ignore panicfree testdata: documented precondition suppression
		panic("contract")
	}
}

var _ = dead

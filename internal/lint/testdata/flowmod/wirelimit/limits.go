// Package wirelimit is the testdata shim of compact/internal/wirelimit:
// allocbound recognizes sanitizers by the package path suffix
// ("wirelimit") and the Check name prefix, so the module under test
// carries its own copy.
package wirelimit

import "errors"

// MaxDim mirrors the real package's per-dimension cap.
const MaxDim = 1 << 16

var errLimit = errors.New("wirelimit: over cap")

// CheckDim validates a wire-declared dimension: 0 <= n <= MaxDim.
func CheckDim(what string, n int) error {
	if n < 0 || n > MaxDim {
		return errLimit
	}
	return nil
}

// CheckCount validates a wire-declared element count against a cap.
func CheckCount(what string, n, max int) error {
	if n < 0 || n > max {
		return errLimit
	}
	return nil
}

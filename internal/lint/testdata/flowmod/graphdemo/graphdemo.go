// Package graphdemo is the call-graph golden fixture: branches, method
// values, function values, and interface dispatch with conservative
// fan-out.
package graphdemo

// Runner is the interface whose dispatch the graph must fan out to every
// module implementation.
type Runner interface {
	Run(n int) int
}

// Fast implements Runner by value.
type Fast struct{}

func (Fast) Run(n int) int { return n + 1 }

// Slow implements Runner through a pointer receiver.
type Slow struct{}

func (*Slow) Run(n int) int { return step(n) }

func step(n int) int { return n * 2 }

func leaf(n int) int { return n - 1 }

// Dispatch calls through the interface: the edge fans out to Fast.Run and
// (*Slow).Run.
func Dispatch(r Runner, n int) int {
	return r.Run(n)
}

// Branches calls a different helper on each arm.
func Branches(flag bool, n int) int {
	if flag {
		return step(n)
	}
	return leaf(n)
}

// TakesValue references step without calling it: a dynamic reference
// edge, since the engine does not track where the value flows.
func TakesValue() func(int) int {
	return step
}

// TakesMethodValue captures a bound method value, another dynamic edge.
func TakesMethodValue(f Fast) func(int) int {
	return f.Run
}

// Package solver declares the ctxflow sink surface: exported entry
// points that take a context.Context.
package solver

import "context"

// Solve is a solver entry point; its context must come from the caller.
func Solve(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// SolveContext is the ctx-threading variant that bridge wrappers call.
func SolveContext(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Package lib exercises ctxflow: library code must not originate a
// context with Background()/TODO() on a path into a solver entry point,
// except through the two documented exemption idioms.
package lib

import (
	"context"
	"time"

	"flowmod/solver"
)

// BadOrigination manufactures a root context and hands it to the solver.
func BadOrigination(n int) int {
	ctx := context.Background()
	return solver.Solve(ctx, n) // want ctxflow
}

// makeRoot returns a fresh root context; the origination itself is legal
// until it reaches a sink.
func makeRoot() context.Context {
	return context.TODO()
}

// BadIndirect reaches the sink through a helper: the function summaries
// carry the origination across the call.
func BadIndirect(n int) int {
	return solver.Solve(makeRoot(), n) // want ctxflow
}

// GoodNilGuard accepts a caller context and only defaults when absent.
func GoodNilGuard(ctx context.Context, n int) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return solver.Solve(ctx, n)
}

// GoodBridge is the one-line compatibility shim the bridge exemption
// covers.
func GoodBridge(n int) int {
	return solver.SolveContext(context.Background(), n)
}

// GoodBounded derives a deadline before entering the solver, which is the
// whole point of the rule.
func GoodBounded(n int) int {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return solver.Solve(ctx, n)
}
